// Structured-feed workflow (paper §I): ingest a STIX-like indicator
// bundle, hunt with isolated-IOC queries, and contrast with behavior-graph
// hunting from the report the feed was distilled from.
//
//   ./build/examples/stix_feed_hunt

#include <cstdio>
#include <set>

#include "core/threat_raptor.h"
#include "cti/feed.h"
#include "tbql/printer.h"

int main() {
  using namespace raptor;

  ThreatRaptor system;
  audit::WorkloadGenerator gen;
  gen.GenerateBenign(50'000, system.mutable_log());
  audit::AttackTrace attack =
      gen.InjectDataLeakageAttack(system.mutable_log());
  gen.GenerateBenign(50'000, system.mutable_log());
  (void)system.FinalizeStorage();

  // Build the structured-feed view of the same intelligence and print the
  // bundle a feed provider would publish.
  nlp::IocRecognizer recognizer;
  auto indicators = cti::IndicatorsFromText(attack.report_text, recognizer);
  std::printf("=== STIX-like bundle (%zu indicators) ===\n%s\n\n",
              indicators.size(), cti::ToStixBundle(indicators).c_str());

  // Hunt with disconnected per-indicator queries.
  auto truth = system.TranslateEventIds(attack.event_ids);
  std::set<audit::EventId> truth_set(truth.begin(), truth.end());
  size_t ioc_matched = 0, ioc_hits = 0;
  std::set<audit::EventId> seen;
  for (const tbql::Query& query : cti::SynthesizeIocQueries(indicators)) {
    auto result = system.ExecuteQuery(query);
    if (!result.ok()) continue;
    for (audit::EventId id : result->MatchedEvents()) {
      if (!seen.insert(id).second) continue;
      ++ioc_matched;
      ioc_hits += truth_set.count(id);
    }
  }
  std::printf("IOC-only hunting: %zu events flagged, %zu actually part of "
              "the attack (precision %.3f)\n",
              ioc_matched, ioc_hits,
              ioc_matched == 0 ? 0.0 : double(ioc_hits) / ioc_matched);

  // Hunt from the unstructured report (the ThreatRaptor way).
  auto hunt = system.Hunt(attack.report_text);
  if (!hunt.ok()) {
    std::fprintf(stderr, "hunt failed: %s\n",
                 hunt.status().ToString().c_str());
    return 1;
  }
  auto matched = hunt->result.MatchedEvents();
  size_t hits = 0;
  for (audit::EventId id : matched) hits += truth_set.count(id);
  std::printf("Behavior-graph hunting: %zu events flagged, %zu part of the "
              "attack (precision %.3f)\n\n",
              matched.size(), hits,
              matched.empty() ? 0.0 : double(hits) / matched.size());
  std::printf("The difference is the paper's thesis: relations between\n"
              "IOCs — not the IOCs alone — identify the threat scenario.\n");
  return 0;
}
