// The paper's §III demo attack 1: "Password Cracking After Shellshock
// Penetration", plus the human-in-the-loop query-editing workflow the demo
// shows in its web UI: start from the synthesized query, then iterate with
// narrower hand-written TBQL.
//
//   ./build/examples/hunt_password_cracking

#include <cstdio>

#include "core/threat_raptor.h"
#include "tbql/printer.h"

int main() {
  using namespace raptor;

  ThreatRaptor system;
  audit::WorkloadGenerator generator;
  generator.GenerateBenign(50'000, system.mutable_log());
  audit::AttackTrace attack =
      generator.InjectPasswordCrackingAttack(system.mutable_log());
  generator.GenerateBenign(50'000, system.mutable_log());
  (void)system.FinalizeStorage();

  std::printf("=== OSCTI report ===\n%s\n\n", attack.report_text.c_str());

  // Automated hunt.
  auto hunt = system.Hunt(attack.report_text);
  if (!hunt.ok()) {
    std::fprintf(stderr, "hunt failed: %s\n",
                 hunt.status().ToString().c_str());
    return 1;
  }
  std::printf("=== Synthesized TBQL ===\n%s\n", hunt->query_text.c_str());
  std::printf("=== Matched records (%zu rows) ===\n%s\n",
              hunt->result.rows.size(), hunt->result.ToString().c_str());

  // Human-in-the-loop iteration 1: who else read the shadow file?
  std::printf("=== Analyst follow-up 1: all readers of /etc/shadow ===\n");
  auto readers = system.ExecuteTbql(
      "proc p read file f[\"/etc/shadow\"]\nreturn p, p.pid");
  if (readers.ok()) std::printf("%s\n", readers->ToString().c_str());

  // Human-in-the-loop iteration 2: every flow to the C2 address, any
  // process, via a disjunctive operation pattern.
  std::printf("=== Analyst follow-up 2: all traffic to the C2 server ===\n");
  auto c2 = system.ExecuteTbql(
      "proc p connect || send || recv net n[dstip = \"161.35.10.8\"]\n"
      "return p, n.dstport");
  if (c2.ok()) std::printf("%s\n", c2->ToString().c_str());

  // Human-in-the-loop iteration 3: was the cracker started through an
  // intermediate chain? A variable-length path pattern answers directly.
  std::printf(
      "=== Analyst follow-up 3: paths from apache to the shadow file ===\n");
  auto paths = system.ExecuteTbql(
      "proc p[\"%apache2%\"] ~>(1~5)[read] file f[\"/etc/shadow\"]\n"
      "return p, f");
  if (paths.ok()) {
    std::printf("%s(%zu path rows)\n", paths->ToString().c_str(),
                paths->rows.size());
  }
  return 0;
}
