// Interactive TBQL shell over a generated trace — the command-line
// equivalent of the paper's web UI.
//
// Builds a trace containing benign noise plus both §III demo attacks, then
// reads input from stdin. An input block (terminated by a blank line or
// EOF) is either a TBQL query or a colon-command:
//
//   <TBQL query>          execute and print matched records
//   :explain <TBQL>       execute and print the plan (EXPLAIN ANALYZE)
//   :hunt <report text>   full pipeline: extract -> synthesize -> execute
//   :extract <report>     NLP extraction only (behavior graph)
//   :investigate <TBQL>   execute, then expand matches by causal tracking
//   :save <path>          write the trace snapshot
//   :stats                trace statistics
//   :help                 this list
//
// Also works in batch mode: echo 'proc p read file f' | tbql_shell

#include <cstdio>
#include <iostream>
#include <string>

#include "common/strings.h"
#include "core/investigate.h"
#include "core/threat_raptor.h"
#include "engine/explain.h"
#include "tbql/analyzer.h"
#include "tbql/parser.h"
#include "tbql/printer.h"

namespace {

using raptor::Status;
using raptor::ThreatRaptor;

void PrintHelp() {
  std::printf(
      "Commands (end every block with a blank line):\n"
      "  <TBQL query>          execute and print matched records\n"
      "  :explain <TBQL>       execute and print the plan\n"
      "  :hunt <report text>   extract -> synthesize -> execute\n"
      "  :extract <report>     print the extracted behavior graph\n"
      "  :investigate <TBQL>   execute, then causal-track the matches\n"
      "  :save <path>          write the trace snapshot\n"
      "  :stats                trace statistics\n"
      "  :help                 this list\n\n");
}

void RunQuery(ThreatRaptor* system, const std::string& text, bool explain) {
  auto parsed = raptor::tbql::Parse(text);
  if (!parsed.ok()) {
    std::printf("error: %s\n\n", parsed.status().ToString().c_str());
    return;
  }
  Status st = raptor::tbql::Analyze(&*parsed);
  if (!st.ok()) {
    std::printf("error: %s\n\n", st.ToString().c_str());
    return;
  }
  auto result = system->ExecuteQuery(*parsed);
  if (!result.ok()) {
    std::printf("error: %s\n\n", result.status().ToString().c_str());
    return;
  }
  if (explain) {
    std::printf("%s\n", raptor::engine::ExplainAnalyze(*parsed, *result).c_str());
    return;
  }
  std::printf("%s", result->ToString().c_str());
  std::printf("(%zu rows, %.2f ms, %llu rows touched, schedule:",
              result->rows.size(), result->stats.total_ms,
              static_cast<unsigned long long>(
                  result->stats.relational_rows_touched));
  for (const auto& s : result->stats.schedule) std::printf(" %s", s.c_str());
  std::printf(")\n\n");
}

void RunHunt(ThreatRaptor* system, const std::string& report) {
  auto hunt = system->Hunt(report);
  if (!hunt.ok()) {
    std::printf("error: %s\n\n", hunt.status().ToString().c_str());
    return;
  }
  std::printf("behavior graph:\n%s\nsynthesized TBQL:\n%s\nresults:\n%s\n",
              hunt->extraction.graph.ToString().c_str(),
              hunt->query_text.c_str(), hunt->result.ToString().c_str());
}

void RunExtract(ThreatRaptor* system, const std::string& report) {
  auto extraction = system->ExtractBehavior(report);
  std::printf("%zu IOC occurrences, %zu entities, %zu relations\n%s\n",
              extraction.raw_iocs.size(), extraction.graph.num_nodes(),
              extraction.graph.num_edges(),
              extraction.graph.ToString().c_str());
}

void RunInvestigate(ThreatRaptor* system, const std::string& text) {
  auto result = system->ExecuteTbql(text);
  if (!result.ok()) {
    std::printf("error: %s\n\n", result.status().ToString().c_str());
    return;
  }
  auto seeds = result->MatchedEvents();
  auto investigation = raptor::Investigate(*system, seeds);
  if (!investigation.ok()) {
    std::printf("error: %s\n\n",
                investigation.status().ToString().c_str());
    return;
  }
  std::printf("query matched %zu events; tracking expanded to %zu:\n%s\n",
              seeds.size(), investigation->subgraph.events.size(),
              investigation->timeline.c_str());
}

void PrintStats(const ThreatRaptor& system) {
  std::printf(
      "trace: %zu events, %zu entities, CPR %.2fx\n"
      "tables: %zu files, %zu procs, %zu nets; graph: %zu nodes %zu edges\n\n",
      system.log().event_count(), system.log().entity_count(),
      system.cpr_stats().ReductionRatio(),
      system.relational().files().num_rows(),
      system.relational().procs().num_rows(),
      system.relational().nets().num_rows(), system.graph().num_nodes(),
      system.graph().num_edges());
}

void Dispatch(ThreatRaptor* system, const std::string& block) {
  std::string_view text = raptor::Trim(block);
  if (text.empty()) return;
  if (text[0] != ':') {
    RunQuery(system, std::string(text), /*explain=*/false);
    return;
  }
  size_t space = text.find_first_of(" \t\n");
  std::string command(text.substr(0, space));
  std::string rest(space == std::string_view::npos
                       ? ""
                       : raptor::Trim(text.substr(space)));
  if (command == ":help") {
    PrintHelp();
  } else if (command == ":stats") {
    PrintStats(*system);
  } else if (command == ":explain") {
    RunQuery(system, rest, /*explain=*/true);
  } else if (command == ":hunt") {
    RunHunt(system, rest);
  } else if (command == ":extract") {
    RunExtract(system, rest);
  } else if (command == ":investigate") {
    RunInvestigate(system, rest);
  } else if (command == ":save") {
    Status st = system->SaveTraceSnapshot(rest);
    std::printf("%s\n\n", st.ok() ? "saved" : st.ToString().c_str());
  } else {
    std::printf("unknown command %s; try :help\n\n", command.c_str());
  }
}

}  // namespace

int main() {
  std::printf("Building trace: 100k benign events + both demo attacks...\n");
  ThreatRaptor system;
  raptor::audit::WorkloadGenerator generator;
  generator.GenerateBenign(40'000, system.mutable_log());
  generator.InjectDataLeakageAttack(system.mutable_log());
  generator.GenerateBenign(20'000, system.mutable_log());
  generator.InjectPasswordCrackingAttack(system.mutable_log());
  generator.GenerateBenign(40'000, system.mutable_log());
  (void)system.FinalizeStorage();
  std::printf("Ready: %zu events, %zu entities (CPR %.2fx).\n",
              system.log().event_count(), system.log().entity_count(),
              system.cpr_stats().ReductionRatio());
  PrintHelp();

  std::string block;
  std::string line;
  std::printf("tbql> ");
  std::fflush(stdout);
  while (std::getline(std::cin, line)) {
    if (line.empty()) {
      Dispatch(&system, block);
      block.clear();
      std::printf("tbql> ");
      std::fflush(stdout);
      continue;
    }
    block += line + "\n";
  }
  Dispatch(&system, block);  // trailing block in batch mode
  return 0;
}
