// Validates that each file argument (or stdin) parses as JSON, using the
// same raptor::Json parser the system runs. scripts/bench.sh and the
// check.sh --bench-smoke step use this to gate the machine-readable bench
// output; it doubles as a tiny command-line exerciser for the parser.
//
//   ./json_check BENCH_cpr.json ...   # exit 0 iff every file parses
//   ./bench_cpr --json | ./json_check # no arguments: validate stdin

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "common/json.h"

namespace {

bool Check(const std::string& name, const std::string& text) {
  auto json = raptor::Json::Parse(text);
  if (!json.ok()) {
    std::fprintf(stderr, "json_check: %s: %s\n", name.c_str(),
                 json.status().ToString().c_str());
    return false;
  }
  std::printf("json_check: %s: ok (%zu bytes)\n", name.c_str(), text.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool ok = true;
  if (argc < 2) {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    ok = Check("<stdin>", buffer.str());
  }
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i]);
    if (!in) {
      std::fprintf(stderr, "json_check: %s: cannot open\n", argv[i]);
      ok = false;
      continue;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    ok = Check(argv[i], buffer.str()) && ok;
  }
  return ok ? 0 : 1;
}
