// Captures a folded-stack profile of a hunt workload: builds a synthetic
// trace, runs hunts in a loop with the sampling profiler enabled, and
// writes the folded stacks to stdout — ready for flamegraph.pl or
// speedscope. CI runs this to attach a profile artifact to every release
// build (and to assert the profiler actually samples hunt spans).
//
//   ./build/examples/profile_workload --seconds 10 > hunt.folded
//   flamegraph.pl hunt.folded > hunt.svg
//
// Flags: --seconds N (default 10, capture length), --hz N (default 99).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/threat_raptor.h"
#include "obs/profiler.h"

int main(int argc, char** argv) {
  double seconds = 10;
  double hz = 99;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seconds") == 0 && i + 1 < argc) {
      seconds = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--hz") == 0 && i + 1 < argc) {
      hz = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr, "usage: %s [--seconds N] [--hz N]\n", argv[0]);
      return 2;
    }
  }
  if (seconds <= 0 || hz <= 0) {
    std::fprintf(stderr, "--seconds and --hz must be positive\n");
    return 2;
  }

  raptor::ThreatRaptorOptions options;
  options.profiler.enabled = true;
  options.profiler.hz = hz;
  // Force per-hunt traces so span stacks exist for the sampler even
  // though no API server enabled the global tracer.
  options.hunt.collect_profile = true;
  raptor::ThreatRaptor system(options);
  raptor::obs::ProfiledThread profiled("hunter");

  raptor::audit::WorkloadGenerator generator;
  generator.GenerateBenign(20'000, system.mutable_log());
  raptor::audit::AttackTrace attack =
      generator.InjectDataLeakageAttack(system.mutable_log());
  generator.GenerateBenign(20'000, system.mutable_log());
  if (raptor::Status st = system.FinalizeStorage(); !st.ok()) {
    std::fprintf(stderr, "storage error: %s\n", st.ToString().c_str());
    return 1;
  }

  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::duration<double>(seconds);
  size_t hunts = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    auto hunt = system.Hunt(attack.report_text);
    if (!hunt.ok()) {
      std::fprintf(stderr, "hunt failed: %s\n",
                   hunt.status().ToString().c_str());
      return 1;
    }
    ++hunts;
  }

  raptor::obs::ProfileSnapshot snapshot =
      raptor::obs::Profiler::Default().Snapshot();
  std::string folded = raptor::obs::Profiler::RenderFolded(snapshot);
  std::fputs(folded.c_str(), stdout);
  std::fprintf(stderr,
               "profile_workload: %zu hunts, %llu samples over %.1f s at "
               "%.0f Hz, %zu stacks\n",
               hunts, static_cast<unsigned long long>(snapshot.total_samples),
               snapshot.duration_s, snapshot.hz, snapshot.folded.size());

  // CI gate: a working profiler must have sampled inside hunt spans.
  if (folded.find("hunter;hunt") == std::string::npos) {
    std::fprintf(stderr,
                 "profile_workload: FAIL — no 'hunter;hunt' stacks sampled\n");
    return 1;
  }
  return 0;
}
