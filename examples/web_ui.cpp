// The paper's §III deployment: ThreatRaptor behind a web UI. Builds a
// trace with both demo attacks, serves the UI on localhost, and stays up
// until interrupted.
//
//   ./build/examples/web_ui [port]        # default 8777
//
// Then open http://127.0.0.1:8777/ — paste a threat report and Hunt, or
// run TBQL directly. The JSON API behind the page:
//
//   curl -s localhost:8777/api/stats
//   curl -s -X POST --data-binary 'proc p read file f' localhost:8777/api/query

#include <csignal>
#include <cstdio>
#include <cstdlib>

#include <atomic>
#include <chrono>
#include <thread>

#include "core/threat_raptor.h"
#include "server/api.h"

namespace {
std::atomic<bool> g_stop{false};
void HandleSignal(int) { g_stop.store(true); }
}  // namespace

int main(int argc, char** argv) {
  uint16_t port = 8777;
  if (argc > 1) port = static_cast<uint16_t>(std::atoi(argv[1]));

  std::printf("Building trace: 100k benign events + both demo attacks...\n");
  raptor::ThreatRaptor system;
  raptor::audit::WorkloadGenerator generator;
  generator.GenerateBenign(40'000, system.mutable_log());
  generator.InjectDataLeakageAttack(system.mutable_log());
  generator.GenerateBenign(20'000, system.mutable_log());
  generator.InjectPasswordCrackingAttack(system.mutable_log());
  generator.GenerateBenign(40'000, system.mutable_log());
  (void)system.FinalizeStorage();

  raptor::server::HttpServer server;
  raptor::server::RegisterThreatRaptorApi(&server, &system);
  if (raptor::Status st = server.Start(port); !st.ok()) {
    std::fprintf(stderr, "cannot start server: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("ThreatRaptor UI: http://127.0.0.1:%u/  (Ctrl-C to stop)\n",
              server.port());

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (!g_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }
  server.Stop();
  std::printf("\nstopped.\n");
  return 0;
}
