// The paper's Figure 2 walkthrough: "Data Leakage After Shellshock
// Penetration", shown stage by stage — IOC recognition and protection,
// the threat behavior graph (text and Graphviz dot), the synthesized TBQL
// query with its SQL and Cypher compilation targets, the execution
// schedule, and the final scoring against ground truth.
//
//   ./build/examples/hunt_data_leakage

#include <cstdio>
#include <set>

#include "core/threat_raptor.h"
#include "engine/translate.h"
#include "nlp/ioc.h"
#include "tbql/printer.h"

int main() {
  using namespace raptor;

  ThreatRaptor system;
  audit::WorkloadGenerator generator;
  generator.GenerateBenign(50'000, system.mutable_log());
  audit::AttackTrace attack =
      generator.InjectDataLeakageAttack(system.mutable_log());
  generator.GenerateBenign(50'000, system.mutable_log());
  (void)system.FinalizeStorage();

  std::printf("=== OSCTI report ===\n%s\n\n", attack.report_text.c_str());

  // Stage 1: IOC recognition + protection (what the NLP modules see).
  nlp::IocRecognizer recognizer;
  nlp::ProtectedText protected_text =
      nlp::ProtectIocs(attack.report_text, recognizer);
  std::printf("=== After IOC protection (%zu IOCs shielded) ===\n%s\n\n",
              protected_text.replacements.size(),
              protected_text.text.c_str());

  // Stage 2: the full extraction pipeline.
  nlp::ExtractionResult extraction =
      system.ExtractBehavior(attack.report_text);
  std::printf("=== Threat behavior graph ===\n%s\n",
              extraction.graph.ToString().c_str());
  std::printf("=== Graphviz (paste into dot) ===\n%s\n",
              extraction.graph.ToDot().c_str());

  // Stage 3: query synthesis and the backend translations.
  auto synthesis = system.SynthesizeQuery(extraction.graph);
  if (!synthesis.ok()) {
    std::fprintf(stderr, "synthesis failed: %s\n",
                 synthesis.status().ToString().c_str());
    return 1;
  }
  std::printf("=== Synthesized TBQL ===\n%s\n",
              tbql::Print(synthesis->query).c_str());
  std::printf("=== Compiled SQL (relational backend) ===\n%s\n\n",
              engine::RenderSql(synthesis->query).c_str());
  std::printf("=== Compiled Cypher (graph backend) ===\n%s\n\n",
              engine::RenderCypher(synthesis->query).c_str());

  // Stage 4: scheduled execution.
  auto result = system.ExecuteQuery(synthesis->query);
  if (!result.ok()) {
    std::fprintf(stderr, "execution failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("=== Execution ===\nschedule:");
  for (size_t i = 0; i < result->stats.schedule.size(); ++i) {
    std::printf(" %s(%zu)", result->stats.schedule[i].c_str(),
                result->stats.matches_per_pattern[i]);
  }
  std::printf("\nrows touched: %llu, time: %.2f ms\n\n",
              static_cast<unsigned long long>(
                  result->stats.relational_rows_touched),
              result->stats.total_ms);
  std::printf("=== Matched records ===\n%s\n", result->ToString().c_str());

  // Stage 5: scoring against the generator's ground truth.
  auto matched = result->MatchedEvents();
  auto truth = system.TranslateEventIds(attack.core_event_ids);
  std::set<audit::EventId> truth_set(truth.begin(), truth.end());
  size_t tp = 0;
  for (audit::EventId id : matched) tp += truth_set.count(id);
  std::printf("ground truth: %zu narrated events; matched %zu; "
              "precision %.2f recall %.2f\n",
              truth.size(), matched.size(),
              matched.empty() ? 0.0 : double(tp) / matched.size(),
              truth.empty() ? 0.0 : double(tp) / truth.size());
  for (audit::EventId id : matched) {
    std::printf("  %s\n",
                audit::LogParser::FormatEvent(system.log(),
                                              system.log().event(id))
                    .c_str());
  }
  return 0;
}
