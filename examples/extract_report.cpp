// Threat behavior extraction as a standalone tool: reads an OSCTI report
// from stdin (or uses a built-in sample) and prints the recognized IOCs,
// the extracted relations, the behavior graph, and its Graphviz rendering.
//
//   ./build/examples/extract_report < report.txt
//   ./build/examples/extract_report            # built-in sample

#include <unistd.h>

#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include "nlp/pipeline.h"

int main() {
  using namespace raptor::nlp;

  std::string document;
  if (!isatty(fileno(stdin))) {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    document = buffer.str();
  }
  if (document.empty()) {
    document =
        "# Sample intrusion report\n"
        "\n"
        "The implant /opt/svc/updaterd read the file /etc/hosts and "
        "connected to the IP 203.0.113.9. It downloaded the module "
        "/tmp/mod_keylog.so from the C2 server.\n"
        "\n"
        "In the second stage, the process /tmp/mod_keylog.so read "
        "/home/admin/.ssh/id_rsa and sent the key to the IP 203.0.113.9.\n";
    std::printf("(no stdin — using the built-in sample report)\n\n");
  }

  ExtractionPipeline pipeline;
  ExtractionResult result = pipeline.Extract(document);

  std::printf("=== IOC occurrences (%zu) ===\n", result.raw_iocs.size());
  for (const IocSpan& s : result.raw_iocs) {
    std::printf("  [%-8s] %s\n",
                std::string(IocTypeName(s.type)).c_str(), s.text.c_str());
  }

  std::printf("\n=== Merged IOC entities (%zu) ===\n",
              result.graph.num_nodes());
  for (const IocEntity& n : result.graph.nodes()) {
    std::printf("  #%d [%-8s] %s", n.id,
                std::string(IocTypeName(n.type)).c_str(), n.text.c_str());
    if (!n.aliases.empty()) {
      std::printf("  (aliases:");
      for (const auto& a : n.aliases) std::printf(" %s", a.c_str());
      std::printf(")");
    }
    std::printf("\n");
  }

  std::printf("\n=== Threat behavior graph (%zu edges) ===\n%s",
              result.graph.num_edges(), result.graph.ToString().c_str());
  std::printf("\n=== Graphviz ===\n%s", result.graph.ToDot().c_str());
  return 0;
}
