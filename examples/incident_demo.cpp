// Incident capture end to end: starts the embedded API server under a
// manual clock, burns the HTTP error budget with injected handler faults,
// walks the http_error_rate SLO to firing, and prints the captured
// incident — frozen debug bundle and history windows included — from
// GET /api/incidents to stdout.
//
//   ./build/examples/incident_demo > incident.json
//
// CI runs this to attach a real incident document to every release build.
// Exits 0 when the incident was captured with a bundle and history, 1
// otherwise.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <memory>
#include <string>
#include <string_view>

#include "common/fault_injection.h"
#include "common/json.h"
#include "core/threat_raptor.h"
#include "obs/clock.h"
#include "obs/slo.h"
#include "server/api.h"
#include "server/http.h"

namespace {

using raptor::Json;
using raptor::Status;

/// Fails the server request handler for a scripted number of hits —
/// loopback 500s that burn the HTTP error budget like a real outage.
class HandlerFaults : public raptor::FaultInjector {
 public:
  explicit HandlerFaults(int times) : remaining_(times) {
    raptor::SetFaultInjector(this);
  }
  ~HandlerFaults() override { raptor::SetFaultInjector(nullptr); }

  Status OnPoint(std::string_view point) override {
    if (point == "server.handler" && remaining_ > 0) {
      --remaining_;
      return Status::Internal("incident_demo: injected outage");
    }
    return Status::OK();
  }

 private:
  int remaining_;
};

std::string Get(uint16_t port, const std::string& path) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  std::string wire = "GET " + path + " HTTP/1.1\r\nHost: demo\r\n\r\n";
  std::string out;
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0 &&
      ::send(fd, wire.data(), wire.size(), 0) ==
          static_cast<ssize_t>(wire.size())) {
    char buffer[4096];
    ssize_t n;
    while ((n = ::recv(fd, buffer, sizeof(buffer), 0)) > 0) {
      out.append(buffer, static_cast<size_t>(n));
    }
  }
  ::close(fd);
  size_t pos = out.find("\r\n\r\n");
  return pos == std::string::npos ? "" : out.substr(pos + 4);
}

}  // namespace

int main() {
  // A manual clock shared by the history store and the SLO engine makes
  // the walk deterministic: each /api/alerts poll evaluates exactly one
  // new sample timestamp.
  auto clock = std::make_shared<raptor::obs::ManualClock>();
  raptor::ThreatRaptorOptions options;
  options.history.clock = clock;
  options.slo.http_error_objective = 0.5;  // generous budget: 8 faults blow it
  options.slo.pending_for_s = 0;
  options.slo.eval_interval_ms = 60'000;  // polls drive every step below
  raptor::ThreatRaptor system(options);

  raptor::audit::WorkloadGenerator generator;
  generator.GenerateBenign(3'000, system.mutable_log());
  if (!system.FinalizeStorage().ok()) {
    std::fprintf(stderr, "incident_demo: storage finalize failed\n");
    return 1;
  }

  raptor::server::HttpServer server;
  raptor::server::RegisterThreatRaptorApi(&server, &system);
  if (!server.Start(0).ok()) {
    std::fprintf(stderr, "incident_demo: server start failed\n");
    return 1;
  }

  auto poll_alerts = [&] {
    clock->AdvanceSeconds(1);
    return Get(server.port(), "/api/alerts");
  };

  poll_alerts();  // Baseline sample: every SLO ok.
  {
    HandlerFaults faults(/*times=*/8);
    for (int i = 0; i < 8; ++i) Get(server.port(), "/api/healthz");
  }
  poll_alerts();  // Burn over threshold: ok -> pending.
  poll_alerts();  // Still burning, no dwell: pending -> firing + capture.

  std::string body = Get(server.port(), "/api/incidents");
  auto doc = Json::Parse(body);
  if (!doc.ok() || (*doc)["incidents"].AsArray().empty()) {
    std::fprintf(stderr, "incident_demo: no incident captured: %s\n",
                 body.substr(0, 400).c_str());
    return 1;
  }
  const Json& incident = (*doc)["incidents"][0];
  bool ok = incident["slo"].AsString() == "http_error_rate" &&
            incident["bundle"]["build"].is_object() &&
            !incident["history"].AsArray().empty();
  std::fprintf(stderr,
               "incident_demo: captured incident #%.0f for %s "
               "(short_burn=%.2f, %zu history windows): %s\n",
               incident["id"].AsNumber(), incident["slo"].AsString().c_str(),
               incident["short_burn"].AsNumber(),
               incident["history"].AsArray().size(), ok ? "OK" : "INCOMPLETE");
  std::printf("%s\n", body.c_str());

  raptor::obs::SloEngine::Default().Stop();
  return ok ? 0 : 1;
}
