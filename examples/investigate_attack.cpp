// Hunt, then investigate: the hunt retrieves the events the OSCTI report
// narrates; causal dependency tracking expands them into the complete
// attack — the Shellshock penetration, the forks, the chmod — none of
// which the report mentioned. Prints the timeline and a Graphviz
// provenance graph.
//
//   ./build/examples/investigate_attack

#include <cstdio>
#include <set>

#include "core/investigate.h"
#include "core/threat_raptor.h"

int main() {
  using namespace raptor;

  ThreatRaptor system;
  audit::WorkloadGenerator gen;
  gen.GenerateBenign(30'000, system.mutable_log());
  audit::AttackTrace attack =
      gen.InjectPasswordCrackingAttack(system.mutable_log());
  gen.GenerateBenign(30'000, system.mutable_log());
  (void)system.FinalizeStorage();

  // Step 1: hunt.
  auto hunt = system.Hunt(attack.report_text);
  if (!hunt.ok()) {
    std::fprintf(stderr, "hunt failed: %s\n",
                 hunt.status().ToString().c_str());
    return 1;
  }
  auto seeds = hunt->result.MatchedEvents();
  std::printf("Hunt matched %zu narrated events.\n\n", seeds.size());

  // Step 2: investigate — expand the seeds through causal tracking.
  graph::TrackingOptions opts;
  opts.max_depth = 6;
  auto investigation = Investigate(system, seeds, opts);
  if (!investigation.ok()) {
    std::fprintf(stderr, "investigation failed: %s\n",
                 investigation.status().ToString().c_str());
    return 1;
  }

  std::printf("=== Reconstructed attack timeline "
              "(* = hunted seed, others recovered by tracking) ===\n%s\n",
              investigation->timeline.c_str());

  // Step 3: how complete is the reconstruction?
  auto truth = system.TranslateEventIds(attack.event_ids);
  std::set<audit::EventId> tracked(investigation->subgraph.events.begin(),
                                   investigation->subgraph.events.end());
  size_t recovered = 0;
  for (audit::EventId id : truth) recovered += tracked.count(id);
  std::printf(
      "Attack events: %zu total, %zu narrated by the report.\n"
      "Hunting matched %zu; tracking recovered %zu/%zu (%.0f%%),\n"
      "including the un-narrated penetration and fork steps.\n\n",
      truth.size(), seeds.size(), seeds.size(), recovered, truth.size(),
      100.0 * recovered / truth.size());

  std::printf("=== Provenance graph (Graphviz) ===\n%s",
              investigation->dot.c_str());
  return 0;
}
