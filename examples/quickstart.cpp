// Quickstart: the whole THREATRAPTOR pipeline in ~40 lines.
//
// Builds a synthetic audit trace (benign background + the paper's data
// leakage attack), then hunts for the attack by feeding the threat report
// text to the system: NLP extraction -> threat behavior graph -> TBQL
// query synthesis -> scheduled execution over the storage backends.
//
//   ./build/examples/quickstart

#include <cstdio>

#include "core/threat_raptor.h"
#include "tbql/printer.h"

int main() {
  raptor::ThreatRaptor system;

  // 1. Data collection: in production this would be Sysdig-parsed audit
  //    logs (ThreatRaptor::IngestLogText); here the built-in generator
  //    emits 200k benign events around the scripted attack.
  raptor::audit::WorkloadGenerator generator;
  generator.GenerateBenign(100'000, system.mutable_log());
  raptor::audit::AttackTrace attack =
      generator.InjectDataLeakageAttack(system.mutable_log());
  generator.GenerateBenign(100'000, system.mutable_log());

  // 2. Data storage: Causality-Preserved Reduction, then load the
  //    relational and graph backends.
  if (raptor::Status st = system.FinalizeStorage(); !st.ok()) {
    std::fprintf(stderr, "storage error: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("Trace ready: %zu events after %.2fx CPR reduction\n\n",
              system.log().event_count(),
              system.cpr_stats().ReductionRatio());

  // 3. The hunt: one call from OSCTI text to matched audit records.
  std::printf("OSCTI report:\n%s\n\n", attack.report_text.c_str());
  auto hunt = system.Hunt(attack.report_text);
  if (!hunt.ok()) {
    std::fprintf(stderr, "hunt failed: %s\n",
                 hunt.status().ToString().c_str());
    return 1;
  }

  std::printf("Extracted threat behavior graph:\n%s\n",
              hunt->extraction.graph.ToString().c_str());
  std::printf("Synthesized TBQL query:\n%s\n", hunt->query_text.c_str());
  std::printf("Matched system auditing records (%zu rows, %.2f ms):\n%s",
              hunt->result.rows.size(), hunt->result.stats.total_ms,
              hunt->result.ToString().c_str());
  return 0;
}
