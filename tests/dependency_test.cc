// Tests for causal dependency tracking (src/storage/graph/dependency.*).

#include <gtest/gtest.h>

#include <set>

#include "audit/generator.h"
#include "core/threat_raptor.h"
#include "storage/graph/dependency.h"

namespace raptor::graph {
namespace {

using audit::AuditLog;
using audit::EntityId;
using audit::EventId;
using audit::Operation;
using audit::SystemEvent;

EventId Add(AuditLog* log, EntityId subj, EntityId obj, Operation op,
            audit::Timestamp t, uint64_t bytes = 10) {
  SystemEvent ev;
  ev.subject = subj;
  ev.object = obj;
  ev.op = op;
  ev.start_time = ev.end_time = t;
  ev.bytes = bytes;
  return log->AddEvent(ev);
}

/// Classic exfiltration chain plus decoys:
///   t=10  wget  recv  <- c2        (payload arrives)
///   t=20  wget  write /tmp/x       (drops file)
///   t=30  bash  read  /tmp/x       (stages)
///   t=40  bash  send  -> c2        (exfiltrates)
///   t=50  cat   read  /tmp/x       (later unrelated read)
///   t=5   vim   write /tmp/x       (earlier write: backward-relevant)
///   t=35  bash  read  /etc/hosts   (flows into bash before send)
struct Fixture {
  AuditLog log;
  EntityId wget, bash, cat, vim, file, hosts, c2;
  EventId recv, drop, stage, exfil, later_read, early_write, hosts_read;

  Fixture() {
    wget = log.InternProcess(1, "/usr/bin/wget");
    bash = log.InternProcess(2, "/bin/bash");
    cat = log.InternProcess(3, "/bin/cat");
    vim = log.InternProcess(4, "/usr/bin/vim");
    file = log.InternFile("/tmp/x");
    hosts = log.InternFile("/etc/hosts");
    c2 = log.InternNetwork("10.0.0.5", 5000, "161.35.10.8", 443);
    early_write = Add(&log, vim, file, Operation::kWrite, 5);
    recv = Add(&log, wget, c2, Operation::kRecv, 10);
    drop = Add(&log, wget, file, Operation::kWrite, 20);
    stage = Add(&log, bash, file, Operation::kRead, 30);
    hosts_read = Add(&log, bash, hosts, Operation::kRead, 35);
    exfil = Add(&log, bash, c2, Operation::kSend, 40);
    later_read = Add(&log, cat, file, Operation::kRead, 50);
  }
};

TEST(DependencyTest, BackwardFromExfiltration) {
  Fixture fx;
  GraphStore g(fx.log);
  auto sub = TrackBackward(g, {fx.exfil});
  std::set<EventId> events(sub.events.begin(), sub.events.end());
  // Everything that flowed into bash before t=40.
  EXPECT_TRUE(events.count(fx.exfil));
  EXPECT_TRUE(events.count(fx.stage));
  EXPECT_TRUE(events.count(fx.hosts_read));
  // ... and transitively into /tmp/x before t=30.
  EXPECT_TRUE(events.count(fx.drop));
  EXPECT_TRUE(events.count(fx.early_write));
  // ... and into wget before t=20.
  EXPECT_TRUE(events.count(fx.recv));
  // The later unrelated read is NOT backward-relevant.
  EXPECT_FALSE(events.count(fx.later_read));
}

TEST(DependencyTest, BackwardRespectsTime) {
  Fixture fx;
  GraphStore g(fx.log);
  // From the staging read at t=30: the exfil (t=40) is not in its past.
  auto sub = TrackBackward(g, {fx.stage});
  std::set<EventId> events(sub.events.begin(), sub.events.end());
  EXPECT_FALSE(events.count(fx.exfil));
  EXPECT_FALSE(events.count(fx.hosts_read));
  EXPECT_TRUE(events.count(fx.drop));
}

TEST(DependencyTest, ForwardFromInitialRecv) {
  Fixture fx;
  GraphStore g(fx.log);
  auto sub = TrackForward(g, {fx.recv});
  std::set<EventId> events(sub.events.begin(), sub.events.end());
  // Payload propagates: wget writes file, bash reads it, bash sends out,
  // cat reads the file later.
  EXPECT_TRUE(events.count(fx.drop));
  EXPECT_TRUE(events.count(fx.stage));
  EXPECT_TRUE(events.count(fx.exfil));
  EXPECT_TRUE(events.count(fx.later_read));
  // The early vim write precedes the recv: not forward-reachable.
  EXPECT_FALSE(events.count(fx.early_write));
}

TEST(DependencyTest, BidirectionalIsUnion) {
  Fixture fx;
  GraphStore g(fx.log);
  auto both = TrackBidirectional(g, {fx.stage});
  auto back = TrackBackward(g, {fx.stage});
  auto fwd = TrackForward(g, {fx.stage});
  std::set<EventId> expected(back.events.begin(), back.events.end());
  expected.insert(fwd.events.begin(), fwd.events.end());
  EXPECT_EQ(std::set<EventId>(both.events.begin(), both.events.end()),
            expected);
}

TEST(DependencyTest, EntitiesCoverIncludedEvents) {
  Fixture fx;
  GraphStore g(fx.log);
  auto sub = TrackBackward(g, {fx.exfil});
  std::set<EntityId> entities(sub.entities.begin(), sub.entities.end());
  for (EventId id : sub.events) {
    EXPECT_TRUE(entities.count(fx.log.event(id).subject));
    EXPECT_TRUE(entities.count(fx.log.event(id).object));
  }
}

TEST(DependencyTest, DepthBoundsClosure) {
  Fixture fx;
  GraphStore g(fx.log);
  TrackingOptions opts;
  opts.max_depth = 1;
  auto sub = TrackBackward(g, {fx.exfil}, opts);
  std::set<EventId> events(sub.events.begin(), sub.events.end());
  // One expansion: things flowing into bash; not into /tmp/x.
  EXPECT_TRUE(events.count(fx.stage));
  EXPECT_FALSE(events.count(fx.drop));
}

TEST(DependencyTest, TimeFences) {
  Fixture fx;
  GraphStore g(fx.log);
  TrackingOptions opts;
  opts.not_before = 8;  // exclude the early vim write at t=5
  auto sub = TrackBackward(g, {fx.exfil}, opts);
  std::set<EventId> events(sub.events.begin(), sub.events.end());
  EXPECT_FALSE(events.count(fx.early_write));
  EXPECT_TRUE(events.count(fx.recv));
}

TEST(DependencyTest, UnknownSeedsIgnored) {
  Fixture fx;
  GraphStore g(fx.log);
  auto sub = TrackBackward(g, {9999});
  EXPECT_TRUE(sub.events.empty());
}

TEST(DependencyTest, HuntPlusTrackingRecoversFullAttack) {
  // The end-to-end story: hunting retrieves the narrated events; tracking
  // from those seeds reconstructs the entire attack, including the steps
  // the report never mentioned (the shellshock recv, the forks, the
  // chmod). Precision stays perfect w.r.t. benign noise.
  ThreatRaptor system;
  audit::WorkloadGenerator gen;
  gen.GenerateBenign(20000, system.mutable_log());
  auto attack = gen.InjectPasswordCrackingAttack(system.mutable_log());
  gen.GenerateBenign(20000, system.mutable_log());
  ASSERT_TRUE(system.FinalizeStorage().ok());

  auto hunt = system.Hunt(attack.report_text);
  ASSERT_TRUE(hunt.ok());
  auto seeds = hunt->result.MatchedEvents();

  TrackingOptions opts;
  opts.max_depth = 6;
  auto sub = TrackBidirectional(system.graph(), seeds, opts);

  auto truth_all = system.TranslateEventIds(attack.event_ids);
  std::set<EventId> tracked(sub.events.begin(), sub.events.end());
  size_t recovered = 0;
  for (EventId id : truth_all) recovered += tracked.count(id);
  // Full attack recall (hunting alone only reaches the narrated subset).
  EXPECT_EQ(recovered, truth_all.size());
  EXPECT_GT(truth_all.size(), seeds.size());
}

}  // namespace
}  // namespace raptor::graph
