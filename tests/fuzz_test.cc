// Randomized property tests across module boundaries:
//  - TBQL printer/parser fixpoint over randomly generated queries;
//  - scheduled vs unscheduled execution equivalence over random queries
//    and random traces;
//  - audit log text round-trip over random traces.

#include <gtest/gtest.h>

#include <memory>

#include "audit/generator.h"
#include "audit/parser.h"
#include "common/rng.h"
#include "engine/engine.h"
#include "server/http.h"
#include "storage/graph/graph_store.h"
#include "storage/relational/database.h"
#include "tbql/analyzer.h"
#include "tbql/parser.h"
#include "tbql/printer.h"

namespace raptor {
namespace {

/// Generates a random valid TBQL query AST as source text.
std::string RandomQuerySource(Rng* rng) {
  static const char* const kFileOps[] = {"read", "write", "execute",
                                         "delete", "chmod"};
  static const char* const kNetOps[] = {"connect", "send", "recv"};
  static const char* const kExeFilters[] = {"%tar%", "%bash%", "%curl%",
                                            "/usr/sbin/apache2", "%svc%"};
  static const char* const kFileFilters[] = {
      "/etc/passwd", "%/tmp/%", "/var/log/syslog", "%.txt", "%data%"};
  static const char* const kIps[] = {"161.35.10.8", "151.101.1.1",
                                     "108.160.172.1"};

  size_t num_patterns = 1 + rng->Uniform(4);
  std::string src;
  std::vector<std::string> pattern_ids;
  for (size_t i = 0; i < num_patterns; ++i) {
    // Built with += to dodge a GCC 12 -Wrestrict false positive in the
    // inlined operator+(const char*, string&&) (GCC bug 105651).
    std::string id = "e";
    id += std::to_string(i + 1);
    pattern_ids.push_back(id);
    src += id + ": proc p" + std::to_string(rng->Uniform(num_patterns) + 1);
    if (rng->Chance(0.6)) {
      src += std::string("[\"") + kExeFilters[rng->Uniform(5)] + "\"]";
    }
    bool net = rng->Chance(0.3);
    bool path = !net && rng->Chance(0.2);
    std::string op = net ? kNetOps[rng->Uniform(3)] : kFileOps[rng->Uniform(5)];
    if (path) {
      size_t lo = 1 + rng->Uniform(2);
      size_t hi = lo + rng->Uniform(3);
      src += " ~>(" + std::to_string(lo) + "~" + std::to_string(hi) + ")[" +
             op + "] ";
    } else {
      src += " " + op;
      if (rng->Chance(0.2)) {
        src += std::string(" || ") +
               (net ? kNetOps[rng->Uniform(3)] : kFileOps[rng->Uniform(5)]);
      }
      src += " ";
    }
    if (net) {
      src += "net n" + std::to_string(i + 1);
      if (rng->Chance(0.7)) {
        src += std::string("[dstip = \"") + kIps[rng->Uniform(3)] + "\"]";
      }
    } else {
      src += "file f" + std::to_string(rng->Uniform(num_patterns) + 1);
      if (rng->Chance(0.6)) {
        src += std::string("[\"") + kFileFilters[rng->Uniform(5)] + "\"]";
      }
    }
    src += "\n";
  }
  if (num_patterns > 1 && rng->Chance(0.6)) {
    src += "with ";
    for (size_t i = 0; i + 1 < num_patterns; ++i) {
      if (i > 0) src += ", ";
      src += pattern_ids[i] + " before " + pattern_ids[i + 1];
    }
    src += "\n";
  }
  return src;
}

class QueryFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(QueryFuzzTest, PrintParseFixpoint) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 60; ++trial) {
    std::string src = RandomQuerySource(&rng);
    auto q1 = tbql::Parse(src);
    ASSERT_TRUE(q1.ok()) << src << "\n" << q1.status().ToString();
    ASSERT_TRUE(tbql::Analyze(&*q1).ok()) << src;
    std::string printed1 = tbql::Print(*q1);
    auto q2 = tbql::Parse(printed1);
    ASSERT_TRUE(q2.ok()) << printed1;
    ASSERT_TRUE(tbql::Analyze(&*q2).ok()) << printed1;
    EXPECT_EQ(tbql::Print(*q2), printed1) << src;
  }
}

TEST_P(QueryFuzzTest, SchedulingNeverChangesResults) {
  Rng rng(GetParam() * 31 + 7);

  audit::GeneratorOptions gopts;
  gopts.seed = GetParam();
  audit::AuditLog log;
  audit::WorkloadGenerator gen(gopts);
  gen.GenerateBenign(3000, &log);
  gen.InjectDataLeakageAttack(&log);
  gen.InjectForkChain("/usr/bin/svc_1", 2, audit::Operation::kRead,
                      "/etc/passwd", &log);
  gen.GenerateBenign(3000, &log);

  rel::RelationalDatabase rel_db;
  rel_db.Load(log);
  graph::GraphStore graph_db(log);
  engine::QueryEngine engine(&log, &rel_db, &graph_db);

  engine::ExecutionOptions scheduled;
  engine::ExecutionOptions unscheduled;
  unscheduled.use_pruning_scores = false;
  unscheduled.propagate_constraints = false;
  // Cap rows so pathological random queries stay fast; the cap must be
  // large enough that capped queries are excluded from comparison.
  scheduled.max_rows = 20000;
  unscheduled.max_rows = 20000;

  for (int trial = 0; trial < 25; ++trial) {
    std::string src = RandomQuerySource(&rng);
    auto q = tbql::Parse(src);
    ASSERT_TRUE(q.ok()) << src;
    ASSERT_TRUE(tbql::Analyze(&*q).ok()) << src;
    auto r1 = engine.Execute(*q, scheduled);
    auto r2 = engine.Execute(*q, unscheduled);
    ASSERT_TRUE(r1.ok() && r2.ok()) << src;
    if (r1->rows.size() >= scheduled.max_rows ||
        r2->rows.size() >= unscheduled.max_rows) {
      continue;  // truncated result sets may legally differ
    }
    // Join order differs, so compare as multisets of projected rows.
    auto rows1 = r1->rows;
    auto rows2 = r2->rows;
    std::sort(rows1.begin(), rows1.end());
    std::sort(rows2.begin(), rows2.end());
    EXPECT_EQ(rows1, rows2) << src;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueryFuzzTest,
                         ::testing::Values(1, 5, 13, 101));

class LogRoundTripFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LogRoundTripFuzzTest, FormatParseIdentity) {
  audit::GeneratorOptions opts;
  opts.seed = GetParam();
  audit::AuditLog log;
  audit::WorkloadGenerator gen(opts);
  gen.GenerateBenign(2000, &log);
  gen.InjectPasswordCrackingAttack(&log);

  std::string text;
  for (const auto& ev : log.events()) {
    text += audit::LogParser::FormatEvent(log, ev) + "\n";
  }
  audit::AuditLog log2;
  ASSERT_TRUE(audit::LogParser::ParseText(text, &log2).ok());
  ASSERT_EQ(log2.event_count(), log.event_count());
  ASSERT_EQ(log2.entity_count(), log.entity_count());
  for (size_t i = 0; i < log.event_count(); ++i) {
    const auto& a = log.event(i);
    const auto& b = log2.event(i);
    EXPECT_EQ(a.op, b.op);
    EXPECT_EQ(a.start_time, b.start_time);
    EXPECT_EQ(a.bytes, b.bytes);
    EXPECT_EQ(log.entity(a.subject).Key(), log2.entity(b.subject).Key());
    EXPECT_EQ(log.entity(a.object).Key(), log2.entity(b.object).Key());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LogRoundTripFuzzTest,
                         ::testing::Values(2, 42, 777));

// --- Malformed-input fuzzing: parsers must fail with ParseError, never
// crash, on truncated, corrupted, or binary input. ---

/// Applies 1-4 random byte-level mutations: truncation, byte flips (any
/// value, including NUL and non-UTF8 0x80..0xFF), insertions, deletions.
std::string MutateBytes(std::string s, Rng* rng) {
  size_t num_mutations = 1 + rng->Uniform(4);
  for (size_t m = 0; m < num_mutations && !s.empty(); ++m) {
    size_t pos = rng->Uniform(s.size());
    switch (rng->Uniform(4)) {
      case 0:  // truncate
        s.resize(pos);
        break;
      case 1:  // flip a byte to an arbitrary value
        s[pos] = static_cast<char>(rng->Uniform(256));
        break;
      case 2:  // insert arbitrary bytes
        s.insert(s.begin() + static_cast<ptrdiff_t>(pos), 1 + rng->Uniform(8),
                 static_cast<char>(rng->Uniform(256)));
        break;
      case 3:  // delete a span
        s.erase(pos, 1 + rng->Uniform(8));
        break;
    }
  }
  return s;
}

class MalformedInputFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MalformedInputFuzzTest, LogParserNeverCrashes) {
  static const char* const kBaseLines[] = {
      "ts=100 pid=42 exe=/bin/tar op=read obj=file path=/etc/passwd "
      "bytes=4096",
      "ts=5 pid=1 exe=/sbin/init op=fork obj=proc cpid=2 cexe=/bin/bash",
      "ts=7 pid=3 exe=/usr/bin/curl op=connect obj=net srcip=10.0.0.5 "
      "srcport=51532 dstip=103.5.8.9 dstport=443 proto=tcp",
  };
  Rng rng(GetParam());
  audit::AuditLog log;
  for (int trial = 0; trial < 400; ++trial) {
    std::string line = MutateBytes(kBaseLines[rng.Uniform(3)], &rng);
    auto result = audit::LogParser::ParseLine(line, &log);
    if (!result.ok()) {
      EXPECT_TRUE(result.status().IsParseError()) << result.status().ToString();
    }
  }
  // Targeted nasties: truncated key=value pairs, bare keys, embedded NULs,
  // non-UTF8 bytes, and an overlong line.
  const std::string kNasty[] = {
      "ts=", "ts", "=", "ts=1 pid", "ts=1 pid=",
      "ts=1 pid=1 exe=/a op=read obj=file path=",
      std::string("ts=1\0pid=1 exe=/a op=read obj=file path=/x", 42),
      "ts=1 pid=1 exe=/\x80\xfe\xff op=read obj=file path=/x",
      "ts=1 pid=1 exe=/a op=read obj=file path=/" + std::string(100000, 'a'),
  };
  for (const std::string& line : kNasty) {
    auto result = audit::LogParser::ParseLine(line, &log);
    if (!result.ok()) {
      EXPECT_TRUE(result.status().IsParseError()) << line;
    }
  }
}

TEST_P(MalformedInputFuzzTest, HttpRequestHeadParserNeverCrashes) {
  static const char* const kBaseHeads[] = {
      "POST /api/query?x=1 HTTP/1.1\r\nHost: localhost\r\n"
      "Content-Length: 12\r\n\r\n",
      "GET / HTTP/1.1\r\nX-CuStOm: Value\r\nAccept: */*\r\n\r\n",
  };
  Rng rng(GetParam() * 17 + 3);
  for (int trial = 0; trial < 400; ++trial) {
    std::string head = MutateBytes(kBaseHeads[rng.Uniform(2)], &rng);
    auto result = server::ParseRequestHead(head);
    if (!result.ok()) {
      EXPECT_TRUE(result.status().IsParseError()) << result.status().ToString();
    }
  }
  // Every prefix of a valid head parses or fails cleanly — the truncated
  // head (no trailing CRLF) must not step past the buffer.
  std::string head(kBaseHeads[0]);
  for (size_t len = 0; len <= head.size(); ++len) {
    auto result = server::ParseRequestHead(
        std::string_view(head).substr(0, len));
    if (!result.ok()) {
      EXPECT_TRUE(result.status().IsParseError()) << len;
    }
  }
  // Oversized single header and NUL/non-UTF8 header bytes: the parser
  // itself has no limits (the server enforces those); it just must not die.
  EXPECT_TRUE(server::ParseRequestHead("GET / HTTP/1.1\r\nX-Big: " +
                                       std::string(100000, 'h') + "\r\n\r\n")
                  .ok());
  auto nul = server::ParseRequestHead(
      std::string("GET / HTTP/1.1\r\nX\0Y: v\r\n\r\n", 26));
  if (!nul.ok()) {
    EXPECT_TRUE(nul.status().IsParseError());
  }
  auto bin = server::ParseRequestHead(
      "GET /\x80\xff HTTP/1.1\r\nH: \xfe\r\n\r\n");
  if (!bin.ok()) {
    EXPECT_TRUE(bin.status().IsParseError());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MalformedInputFuzzTest,
                         ::testing::Values(3, 17, 271, 9001));

}  // namespace
}  // namespace raptor
