// Tests for IOC recognition and protection (src/nlp/ioc.*).

#include <gtest/gtest.h>

#include "nlp/ioc.h"

namespace raptor::nlp {
namespace {

const IocRecognizer& Recognizer() {
  static const IocRecognizer* r = new IocRecognizer();
  return *r;
}

struct RecognizeCase {
  const char* text;
  const char* expected_ioc;
  IocType expected_type;
};

class RecognizeOneTest : public ::testing::TestWithParam<RecognizeCase> {};

TEST_P(RecognizeOneTest, FindsExactlyOne) {
  const RecognizeCase& c = GetParam();
  auto spans = Recognizer().Recognize(c.text);
  ASSERT_EQ(spans.size(), 1u) << c.text;
  EXPECT_EQ(spans[0].text, c.expected_ioc);
  EXPECT_EQ(spans[0].type, c.expected_type);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, RecognizeOneTest,
    ::testing::Values(
        RecognizeCase{"read the file /etc/passwd today", "/etc/passwd",
                      IocType::kFilepath},
        RecognizeCase{"path /tmp/data.tar.gz was written", "/tmp/data.tar.gz",
                      IocType::kFilepath},
        RecognizeCase{"the host 161.35.10.8 responded", "161.35.10.8",
                      IocType::kIp},
        RecognizeCase{"connects to 10.0.0.1:8080 first", "10.0.0.1:8080",
                      IocType::kIp},
        RecognizeCase{"fetches http://evil.example/payload.bin now",
                      "http://evil.example/payload.bin", IocType::kUrl},
        RecognizeCase{"mail to admin@corp.example.com please",
                      "admin@corp.example.com", IocType::kEmail},
        RecognizeCase{"tracked as CVE-2014-6271 by NVD", "CVE-2014-6271",
                      IocType::kCve},
        RecognizeCase{"dropped dropper.exe on disk", "dropper.exe",
                      IocType::kFilename},
        RecognizeCase{"beacons to evil-c2.com daily", "evil-c2.com",
                      IocType::kDomain},
        RecognizeCase{
            "hash d41d8cd98f00b204e9800998ecf8427e matched",
            "d41d8cd98f00b204e9800998ecf8427e", IocType::kHashMd5},
        RecognizeCase{
            "hash da39a3ee5e6b4b0d3255bfef95601890afd80709 found",
            "da39a3ee5e6b4b0d3255bfef95601890afd80709", IocType::kHashSha1},
        RecognizeCase{"key HKLM\\Software\\Evil\\Run persisted",
                      "HKLM\\Software\\Evil\\Run", IocType::kRegistry},
        RecognizeCase{"path C:\\Windows\\evil.dll loaded",
                      "C:\\Windows\\evil.dll", IocType::kFilepath}));

TEST(IocRecognizerTest, Sha256) {
  std::string h(64, 'a');
  auto spans = Recognizer().Recognize("hash " + h + " seen");
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].type, IocType::kHashSha256);
}

TEST(IocRecognizerTest, TrailingSentencePeriodStripped) {
  auto spans = Recognizer().Recognize("wrote to /tmp/data.tar.");
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].text, "/tmp/data.tar");
}

TEST(IocRecognizerTest, MultipleIocsLeftToRight) {
  auto spans = Recognizer().Recognize(
      "/bin/tar read /etc/passwd and sent it to 161.35.10.8");
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].text, "/bin/tar");
  EXPECT_EQ(spans[1].text, "/etc/passwd");
  EXPECT_EQ(spans[2].text, "161.35.10.8");
  EXPECT_LT(spans[0].offset, spans[1].offset);
  EXPECT_LT(spans[1].offset, spans[2].offset);
}

TEST(IocRecognizerTest, UrlWinsOverEmbeddedDomainAndPath) {
  auto spans = Recognizer().Recognize("see https://evil.com/drop/a.exe here");
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].type, IocType::kUrl);
}

TEST(IocRecognizerTest, NoIocsInPlainText) {
  auto spans = Recognizer().Recognize(
      "The attacker scanned the system for valuable assets.");
  EXPECT_TRUE(spans.empty());
}

TEST(IocRecognizerTest, HashNotMatchedInsideLongerHexRun) {
  std::string h(70, 'b');  // longer than SHA256
  auto spans = Recognizer().Recognize("blob " + h + " end");
  EXPECT_TRUE(spans.empty());
}

TEST(IocRecognizerTest, SpansCarryCorrectOffsets) {
  std::string text = "proc /bin/tar ran";
  auto spans = Recognizer().Recognize(text);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(text.substr(spans[0].offset, spans[0].length), spans[0].text);
}

// --- Protection. ---

TEST(ProtectTest, ReplacesIocsWithDummy) {
  ProtectedText p =
      ProtectIocs("/bin/tar read /etc/passwd.", Recognizer());
  EXPECT_EQ(p.text, "something read something.");
  ASSERT_EQ(p.replacements.size(), 2u);
  EXPECT_EQ(p.replacements[0].ioc.text, "/bin/tar");
  EXPECT_EQ(p.replacements[1].ioc.text, "/etc/passwd");
}

TEST(ProtectTest, ReplacementOffsetsPointAtDummies) {
  ProtectedText p = ProtectIocs("see /a/b and /c/d now", Recognizer());
  for (const auto& r : p.replacements) {
    EXPECT_EQ(p.text.substr(r.offset, kIocDummy.size()), kIocDummy);
    EXPECT_EQ(p.FindAtOffset(r.offset), &r);
  }
  EXPECT_EQ(p.FindAtOffset(9999), nullptr);
}

TEST(ProtectTest, NoIocsIsIdentity) {
  ProtectedText p = ProtectIocs("nothing interesting here", Recognizer());
  EXPECT_EQ(p.text, "nothing interesting here");
  EXPECT_TRUE(p.replacements.empty());
}

TEST(ProtectTest, PreservesSurroundingText) {
  ProtectedText p = ProtectIocs("a /x/y b", Recognizer());
  EXPECT_EQ(p.text, "a something b");
}

TEST(IocTypeTest, NameRoundTrip) {
  for (IocType t : {IocType::kFilepath, IocType::kFilename, IocType::kIp,
                    IocType::kUrl, IocType::kDomain, IocType::kEmail,
                    IocType::kHashMd5, IocType::kHashSha1,
                    IocType::kHashSha256, IocType::kRegistry, IocType::kCve}) {
    auto parsed = ParseIocType(IocTypeName(t));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, t);
  }
  EXPECT_FALSE(ParseIocType("Nope").ok());
}

}  // namespace
}  // namespace raptor::nlp
