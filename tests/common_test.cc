// Tests for src/common: Status/Result, string utilities, RNG.

#include <gtest/gtest.h>

#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/strings.h"

namespace raptor {
namespace {

// --- Status. ---

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::ParseError("bad token");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsParseError());
  EXPECT_FALSE(s.IsNotFound());
  EXPECT_EQ(s.message(), "bad token");
  EXPECT_EQ(s.ToString(), "ParseError: bad token");
}

TEST(StatusTest, EachConstructorSetsItsCode) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::TypeError("x").IsTypeError());
  EXPECT_TRUE(Status::Unsupported("x").IsUnsupported());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto f = [](bool fail) -> Status {
    RAPTOR_RETURN_NOT_OK(fail ? Status::Internal("boom") : Status::OK());
    return Status::OK();
  };
  EXPECT_TRUE(f(false).ok());
  EXPECT_TRUE(f(true).IsInternal());
}

// --- Result. ---

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto inner = [](bool fail) -> Result<int> {
    if (fail) return Status::Internal("x");
    return 5;
  };
  auto outer = [&](bool fail) -> Result<int> {
    RAPTOR_ASSIGN_OR_RETURN(int v, inner(fail));
    return v + 1;
  };
  EXPECT_EQ(*outer(false), 6);
  EXPECT_TRUE(outer(true).status().IsInternal());
}

// --- Strings. ---

TEST(StringsTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(Split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("x", ','), (std::vector<std::string>{"x"}));
}

TEST(StringsTest, SplitWhitespaceDropsEmpty) {
  EXPECT_EQ(SplitWhitespace("  a \t b\nc  "),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitWhitespace("   ").empty());
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim(" \t\n "), "");
  EXPECT_EQ(Trim("abc"), "abc");
}

TEST(StringsTest, JoinToLowerContains) {
  EXPECT_EQ(Join({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(ToLower("AbC/12"), "abc/12");
  EXPECT_TRUE(Contains("abcdef", "cde"));
  EXPECT_FALSE(Contains("abc", "x"));
}

TEST(StringsTest, StartsEndsWithAndCaseInsensitive) {
  EXPECT_TRUE(StartsWith("/etc/passwd", "/etc"));
  EXPECT_FALSE(StartsWith("/etc", "/etc/passwd"));
  EXPECT_TRUE(EndsWith("data.tar.gz", ".gz"));
  EXPECT_TRUE(EqualsIgnoreCase("PROC", "proc"));
  EXPECT_FALSE(EqualsIgnoreCase("proc", "procs"));
}

TEST(StringsTest, ReplaceAll) {
  EXPECT_EQ(ReplaceAll("a%b%c", "%", ".*"), "a.*b.*c");
  EXPECT_EQ(ReplaceAll("aaa", "aa", "b"), "ba");
  EXPECT_EQ(ReplaceAll("x", "", "y"), "x");
}

TEST(StringsTest, Levenshtein) {
  EXPECT_EQ(LevenshteinDistance("", ""), 0u);
  EXPECT_EQ(LevenshteinDistance("abc", "abc"), 0u);
  EXPECT_EQ(LevenshteinDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(LevenshteinDistance("abc", ""), 3u);
}

TEST(StringsTest, BigramDice) {
  EXPECT_DOUBLE_EQ(BigramDiceSimilarity("night", "night"), 1.0);
  EXPECT_DOUBLE_EQ(BigramDiceSimilarity("a", "a"), 1.0);  // identical short
  EXPECT_EQ(BigramDiceSimilarity("ab", "cd"), 0.0);
  double sim = BigramDiceSimilarity("/tmp/payload.bin", "/tmp/payload2.bin");
  EXPECT_GT(sim, 0.8);
  EXPECT_LT(sim, 1.0);
}

struct LikeCase {
  const char* value;
  const char* pattern;
  bool match;
};

class LikeMatchTest : public ::testing::TestWithParam<LikeCase> {};

TEST_P(LikeMatchTest, Matches) {
  const LikeCase& c = GetParam();
  EXPECT_EQ(LikeMatch(c.value, c.pattern), c.match)
      << c.value << " LIKE " << c.pattern;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, LikeMatchTest,
    ::testing::Values(
        LikeCase{"/bin/tar", "%/bin/tar%", true},
        LikeCase{"/usr/bin/tar", "%tar%", true},
        LikeCase{"/bin/tar", "/bin/tar", true},
        LikeCase{"/bin/tarx", "/bin/tar", false},
        LikeCase{"abc", "%", true},
        LikeCase{"", "%", true},
        LikeCase{"", "", true},
        LikeCase{"abc", "a%c", true},
        LikeCase{"ac", "a%c", true},
        LikeCase{"abd", "a%c", false},
        LikeCase{"aXbXc", "a%b%c", true},
        LikeCase{"tar", "%/bin/tar%", false},
        LikeCase{"xx/bin/tar-yy", "%/bin/tar%", true}));

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 3, "x"), "3-x");
  EXPECT_EQ(StrFormat("%s", ""), "");
}

// --- Rng. ---

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) any_diff |= (a.Next() != b.Next());
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, UniformInBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(10), 10u);
    int64_t v = rng.UniformRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, SkewedFavorsLowIndexes) {
  Rng rng(9);
  size_t low = 0, high = 0;
  for (int i = 0; i < 10000; ++i) {
    size_t v = rng.Skewed(100);
    ASSERT_LT(v, 100u);
    if (v < 25) ++low;
    if (v >= 75) ++high;
  }
  EXPECT_GT(low, high * 2);
}

TEST(RngTest, PickReturnsElement) {
  Rng rng(11);
  std::vector<int> v{1, 2, 3};
  for (int i = 0; i < 50; ++i) {
    int x = rng.Pick(v);
    EXPECT_TRUE(x >= 1 && x <= 3);
  }
}

}  // namespace
}  // namespace raptor
