// Tests for the embedded HTTP server and the ThreatRaptor JSON API
// (src/server).

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <thread>

#include "common/json.h"
#include "core/threat_raptor.h"
#include "fault_injection.h"
#include "obs/clock.h"
#include "obs/history.h"
#include "obs/incident.h"
#include "obs/log.h"
#include "obs/misestimate_journal.h"
#include "obs/profiler.h"
#include "obs/slo.h"
#include "obs/trace.h"
#include "server/api.h"
#include "server/http.h"

namespace raptor::server {
namespace {

// --- Request-head parsing. ---

TEST(HttpParseTest, RequestLineAndHeaders) {
  auto req = ParseRequestHead(
      "POST /api/query?x=1 HTTP/1.1\r\n"
      "Host: localhost\r\n"
      "Content-Length: 12\r\n"
      "\r\n");
  ASSERT_TRUE(req.ok()) << req.status().ToString();
  EXPECT_EQ(req->method, "POST");
  EXPECT_EQ(req->path, "/api/query");
  EXPECT_EQ(req->query, "x=1");
  EXPECT_EQ(req->headers.at("host"), "localhost");
  EXPECT_EQ(req->headers.at("content-length"), "12");
}

TEST(HttpParseTest, HeaderNamesLowercased) {
  auto req = ParseRequestHead("GET / HTTP/1.1\r\nX-CuStOm: Value\r\n\r\n");
  ASSERT_TRUE(req.ok());
  EXPECT_EQ(req->headers.at("x-custom"), "Value");
}

TEST(HttpParseTest, RejectsMalformed) {
  EXPECT_FALSE(ParseRequestHead("").ok());
  EXPECT_FALSE(ParseRequestHead("GET /\r\n\r\n").ok());           // no version
  EXPECT_FALSE(ParseRequestHead("GET / SPDY/3\r\n\r\n").ok());    // bad proto
  EXPECT_FALSE(
      ParseRequestHead("GET / HTTP/1.1\r\nbroken header\r\n\r\n").ok());
}

TEST(HttpParseTest, HeadWithoutTrailingCrlfIsHandled) {
  // Regression: the header loop used to advance pos = next + 2 past
  // head.size() when the last header line lacked its CRLF.
  auto req = ParseRequestHead("GET / HTTP/1.1\r\nHost: x");
  ASSERT_TRUE(req.ok()) << req.status().ToString();
  EXPECT_EQ(req->headers.at("host"), "x");
  // Every prefix of a valid head parses or fails cleanly.
  std::string head =
      "POST /p?q=1 HTTP/1.1\r\nHost: localhost\r\nContent-Length: 3\r\n\r\n";
  for (size_t len = 0; len <= head.size(); ++len) {
    auto r = ParseRequestHead(std::string_view(head).substr(0, len));
    if (!r.ok()) {
      EXPECT_TRUE(r.status().IsParseError()) << len;
    }
  }
}

TEST(HttpParseTest, SerializeResponseHasFraming) {
  HttpResponse response{200, "application/json", "{}"};
  std::string wire = SerializeResponse(response);
  EXPECT_NE(wire.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Content-Length: 2\r\n"), std::string::npos);
  EXPECT_TRUE(wire.ends_with("\r\n\r\n{}"));
}

// --- Loopback client helper. ---

std::string RawRequest(uint16_t port, const std::string& wire) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  EXPECT_EQ(::send(fd, wire.data(), wire.size(), 0),
            static_cast<ssize_t>(wire.size()));
  std::string out;
  char buffer[4096];
  ssize_t n;
  while ((n = ::recv(fd, buffer, sizeof(buffer), 0)) > 0) {
    out.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

std::string Post(uint16_t port, const std::string& path,
                 const std::string& body) {
  std::string wire = "POST " + path + " HTTP/1.1\r\nHost: t\r\n" +
                     "Content-Length: " + std::to_string(body.size()) +
                     "\r\n\r\n" + body;
  return RawRequest(port, wire);
}

std::string Get(uint16_t port, const std::string& path) {
  return RawRequest(port, "GET " + path + " HTTP/1.1\r\nHost: t\r\n\r\n");
}

/// Body of a response (after the blank line).
std::string Body(const std::string& wire) {
  size_t pos = wire.find("\r\n\r\n");
  return pos == std::string::npos ? "" : wire.substr(pos + 4);
}

// --- End-to-end over loopback. ---

struct ServerFixture {
  ThreatRaptor system;
  HttpServer server;

  ServerFixture() {
    audit::WorkloadGenerator gen;
    gen.GenerateBenign(3000, system.mutable_log());
    gen.InjectDataLeakageAttack(system.mutable_log());
    gen.GenerateBenign(3000, system.mutable_log());
    EXPECT_TRUE(system.FinalizeStorage().ok());
    RegisterThreatRaptorApi(&server, &system);
    EXPECT_TRUE(server.Start(0).ok());  // ephemeral port
  }
};

TEST(ServerTest, ServesIndexPage) {
  ServerFixture fx;
  std::string response = Get(fx.server.port(), "/");
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("ThreatRaptor"), std::string::npos);
  EXPECT_NE(response.find("text/html"), std::string::npos);
}

TEST(ServerTest, StatsEndpoint) {
  ServerFixture fx;
  std::string response = Get(fx.server.port(), "/api/stats");
  auto json = Json::Parse(Body(response));
  ASSERT_TRUE(json.ok()) << Body(response);
  EXPECT_GT((*json)["events"].AsNumber(), 0);
  EXPECT_GE((*json)["cpr_reduction"].AsNumber(), 1.0);
}

TEST(ServerTest, QueryEndpoint) {
  ServerFixture fx;
  std::string response =
      Post(fx.server.port(), "/api/query",
           "proc p[\"%tar%\"] read file f[\"/etc/passwd\"]\nreturn p, f");
  auto json = Json::Parse(Body(response));
  ASSERT_TRUE(json.ok()) << Body(response);
  ASSERT_EQ((*json)["rows"].AsArray().size(), 1u);
  EXPECT_EQ((*json)["rows"][0][0].AsString(), "/bin/tar");
  EXPECT_EQ((*json)["rows"][0][1].AsString(), "/etc/passwd");
  EXPECT_FALSE((*json)["stats"]["schedule"].AsArray().empty());
}

TEST(ServerTest, QueryErrorsAreJson) {
  ServerFixture fx;
  std::string response =
      Post(fx.server.port(), "/api/query", "widget w read file f");
  EXPECT_NE(response.find("400"), std::string::npos);
  auto json = Json::Parse(Body(response));
  ASSERT_TRUE(json.ok());
  EXPECT_NE((*json)["error"].AsString().find("ParseError"),
            std::string::npos);
}

TEST(ServerTest, HuntEndpoint) {
  ServerFixture fx;
  std::string response = Post(
      fx.server.port(), "/api/hunt",
      "The process /bin/tar read the file /etc/passwd. /bin/tar then "
      "wrote the collected data to /tmp/data.tar.");
  auto json = Json::Parse(Body(response));
  ASSERT_TRUE(json.ok()) << Body(response);
  EXPECT_NE((*json)["tbql"].AsString().find("evt1"), std::string::npos);
  EXPECT_EQ((*json)["behavior_graph"]["edges"].AsArray().size(), 2u);
  EXPECT_EQ((*json)["result"]["rows"].AsArray().size(), 1u);
}

TEST(ServerTest, ExtractEndpoint) {
  ServerFixture fx;
  std::string response =
      Post(fx.server.port(), "/api/extract",
           "The process /bin/a read /etc/x and connected to the IP "
           "9.9.9.9.");
  auto json = Json::Parse(Body(response));
  ASSERT_TRUE(json.ok());
  EXPECT_EQ((*json)["edges"].AsArray().size(), 2u);
}

TEST(ServerTest, ExplainEndpoint) {
  ServerFixture fx;
  std::string response =
      Post(fx.server.port(), "/api/explain", "proc p read file f\nlimit 1");
  auto json = Json::Parse(Body(response));
  ASSERT_TRUE(json.ok()) << Body(response);
  EXPECT_NE((*json)["explain"].AsString().find("EXPLAIN ANALYZE"),
            std::string::npos);
}

// --- Observability endpoints. ---

TEST(ServerTest, MetricsEndpointScrapesAfterHunt) {
  ServerFixture fx;
  std::string hunt = Post(
      fx.server.port(), "/api/hunt?profile=1",
      "The process /bin/tar read the file /etc/passwd. /bin/tar then "
      "wrote the collected data to /tmp/data.tar.");
  EXPECT_NE(hunt.find("200 OK"), std::string::npos);

  std::string response = Get(fx.server.port(), "/api/metrics");
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  std::string body = Body(response);
  // Valid Prometheus text: every non-comment line is `name[{labels}] value`.
  size_t samples = 0;
  size_t start = 0;
  while (start < body.size()) {
    size_t nl = body.find('\n', start);
    if (nl == std::string::npos) nl = body.size();
    std::string line = body.substr(start, nl - start);
    start = nl + 1;
    if (line.empty()) continue;
    if (line[0] == '#') {
      EXPECT_TRUE(line.rfind("# HELP ", 0) == 0 ||
                  line.rfind("# TYPE ", 0) == 0)
          << line;
      continue;
    }
    size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    EXPECT_FALSE(line.substr(0, space).empty()) << line;
    EXPECT_NE(line.substr(space + 1), "") << line;
    ++samples;
  }
  EXPECT_GT(samples, 0u);
  // The catalog the hunt exercises end to end.
  EXPECT_NE(body.find("raptor_hunts_total"), std::string::npos);
  EXPECT_NE(body.find("raptor_relational_rows_touched_total"),
            std::string::npos);
  EXPECT_NE(body.find("raptor_graph_edges_traversed_total"),
            std::string::npos);
  EXPECT_NE(body.find("raptor_query_truncations_total"), std::string::npos);
  EXPECT_NE(body.find("raptor_http_request_ms_bucket"), std::string::npos);
  EXPECT_NE(body.find("route=\"/api/hunt\""), std::string::npos);
  // Build identity: constant 1 with version/git_sha labels.
  size_t build = body.find("raptor_build_info{");
  ASSERT_NE(build, std::string::npos);
  std::string build_line =
      body.substr(build, body.find('\n', build) - build);
  EXPECT_NE(build_line.find("version=\""), std::string::npos);
  EXPECT_NE(build_line.find("git_sha=\""), std::string::npos);
  EXPECT_EQ(build_line.substr(build_line.rfind(' ') + 1), "1");
  // The estimator's q-error histogram scrapes after an estimated query.
  Post(fx.server.port(), "/api/query", "proc p read file f\nlimit 1");
  std::string after = Body(Get(fx.server.port(), "/api/metrics"));
  EXPECT_NE(after.find("raptor_estimate_qerror_bucket"), std::string::npos);
}

TEST(ServerTest, HuntProfileStagesSumCloseToTotal) {
  ServerFixture fx;
  std::string response = Post(
      fx.server.port(), "/api/hunt?profile=1",
      "The process /bin/tar read the file /etc/passwd. /bin/tar then "
      "wrote the collected data to /tmp/data.tar.");
  auto json = Json::Parse(Body(response));
  ASSERT_TRUE(json.ok()) << Body(response);
  const Json& profile = (*json)["profile"];
  double total = profile["total_ms"].AsNumber();
  EXPECT_GT(total, 0.0);
  double top_level = 0;
  bool saw_extract = false, saw_execute = false;
  for (const Json& stage : profile["stages"].AsArray()) {
    const std::string& name = stage["stage"].AsString();
    EXPECT_GE(stage["ms"].AsNumber(), 0.0) << name;
    EXPECT_GE(stage["count"].AsNumber(), 1.0) << name;
    if (name.find('/') == std::string::npos) {
      top_level += stage["ms"].AsNumber();
    }
    if (name == "extract") saw_extract = true;
    if (name == "execute") saw_execute = true;
  }
  EXPECT_TRUE(saw_extract);
  EXPECT_TRUE(saw_execute);
  // The top-level stages partition the hunt; their sum must land within
  // 20% of the reported total.
  EXPECT_GT(top_level, 0.8 * total);
  EXPECT_LE(top_level, 1.2 * total);
}

TEST(ServerTest, QueryProfileFlag) {
  ServerFixture fx;
  std::string with = Post(fx.server.port(), "/api/query?profile=1",
                          "proc p read file f\nlimit 1");
  auto json = Json::Parse(Body(with));
  ASSERT_TRUE(json.ok()) << Body(with);
  EXPECT_FALSE((*json)["profile"]["stages"].AsArray().empty());

  // Without the flag the response omits the profile.
  std::string without =
      Post(fx.server.port(), "/api/query", "proc p read file f\nlimit 1");
  auto plain = Json::Parse(Body(without));
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(Body(without).find("\"profile\""), std::string::npos);
}

TEST(ServerTest, TracesEndpointListsAndFetchesById) {
  ServerFixture fx;
  obs::Tracer::Default().Clear();
  Post(fx.server.port(), "/api/query", "proc p read file f\nlimit 1");
  std::string listing = Get(fx.server.port(), "/api/traces");
  auto json = Json::Parse(Body(listing));
  ASSERT_TRUE(json.ok()) << Body(listing);
  const auto& traces = (*json)["traces"].AsArray();
  ASSERT_FALSE(traces.empty());
  EXPECT_EQ(traces[0]["name"].AsString(), "execute");

  // Fetch the full trace by id; it carries the span tree.
  int64_t id = static_cast<int64_t>(traces[0]["id"].AsNumber());
  std::string detail =
      Get(fx.server.port(), "/api/traces/" + std::to_string(id));
  auto trace = Json::Parse(Body(detail));
  ASSERT_TRUE(trace.ok()) << Body(detail);
  EXPECT_FALSE((*trace)["spans"].AsArray().empty());
  EXPECT_EQ((*trace)["spans"][0]["name"].AsString(), "execute");

  // Bad ids are handled, not crashes.
  EXPECT_NE(Get(fx.server.port(), "/api/traces/999999999").find("404"),
            std::string::npos);
  EXPECT_NE(Get(fx.server.port(), "/api/traces/abc").find("400"),
            std::string::npos);
}

TEST(ServerTest, StatsEndpointCarriesObservabilityCounters) {
  ServerFixture fx;
  Post(fx.server.port(), "/api/query", "proc p read file f\nlimit 1");
  std::string response = Get(fx.server.port(), "/api/stats");
  auto json = Json::Parse(Body(response));
  ASSERT_TRUE(json.ok()) << Body(response);
  EXPECT_GE((*json)["uptime_s"].AsNumber(), 0.0);
  EXPECT_GT((*json)["http_requests"].AsNumber(), 0.0);
  EXPECT_GT((*json)["queries"].AsNumber(), 0.0);
  EXPECT_GE((*json)["hunts"].AsNumber(), 0.0);
  EXPECT_GE((*json)["queries_truncated"].AsNumber(), 0.0);
}

TEST(ServerTest, StatsEndpointCarriesBuildInfo) {
  ServerFixture fx;
  std::string response = Get(fx.server.port(), "/api/stats");
  auto json = Json::Parse(Body(response));
  ASSERT_TRUE(json.ok()) << Body(response);
  EXPECT_EQ((*json)["build"]["name"].AsString(), "ThreatRaptor");
  EXPECT_FALSE((*json)["build"]["version"].AsString().empty());
  EXPECT_FALSE((*json)["build"]["git_sha"].AsString().empty());
}

TEST(ServerTest, DataStatsEndpoint) {
  ServerFixture fx;
  std::string response = Get(fx.server.port(), "/api/datastats");
  auto json = Json::Parse(Body(response));
  ASSERT_TRUE(json.ok()) << Body(response);
  EXPECT_TRUE((*json)["storage_ready"].AsBool());
  EXPECT_TRUE((*json)["statistics_enabled"].AsBool());
  EXPECT_GT((*json)["statistics_bytes"].AsNumber(), 0.0);

  const auto& tables = (*json)["tables"].AsArray();
  ASSERT_EQ(tables.size(), 4u);
  EXPECT_EQ(tables[0]["name"].AsString(), "files");
  EXPECT_EQ(tables[3]["name"].AsString(), "events");
  EXPECT_GT(tables[3]["rows"].AsNumber(), 0.0);

  // The events table carries the estimator's key inputs: per-op counts on
  // the optype column and a time histogram whose mass reads in table-row
  // units even under sampling.
  bool saw_optype = false, saw_starttime_histogram = false;
  double events_rows = tables[3]["rows"].AsNumber();
  for (const auto& col : tables[3]["columns"].AsArray()) {
    if (col["name"].AsString() == "optype") {
      saw_optype = true;
      EXPECT_GT(col["ndv"].AsNumber(), 0.0);
      ASSERT_TRUE(col.Contains("heavy_hitters"));
      EXPECT_FALSE(col["heavy_hitters"].AsArray().empty());
    }
    if (col["name"].AsString() == "starttime" && col.Contains("histogram")) {
      saw_starttime_histogram = true;
      double mass = 0;
      for (const auto& b : col["histogram"].AsArray()) {
        EXPECT_LE(b["lo"].AsNumber(), b["hi"].AsNumber());
        mass += b["est_count"].AsNumber();
      }
      EXPECT_GT(mass, 0.5 * events_rows);
      EXPECT_LT(mass, 2.0 * events_rows);
    }
  }
  EXPECT_TRUE(saw_optype);
  EXPECT_TRUE(saw_starttime_histogram);

  const auto& degrees = (*json)["degree_distributions"];
  for (const char* type : {"file", "process", "network"}) {
    ASSERT_TRUE(degrees.Contains(type)) << type;
    EXPECT_GE(degrees[type]["out"]["nodes"].AsNumber(), 0.0);
    EXPECT_GE(degrees[type]["in"]["avg_degree"].AsNumber(), 0.0);
  }
  EXPECT_GT(degrees["process"]["out"]["total_degree"].AsNumber(), 0.0);
}

TEST(ServerTest, MisestimatesEndpointRecordsAndServesWorstFirst) {
  ServerFixture fx;
  // Threshold 0 records every estimated execution; restored below so the
  // process-wide journal does not leak into other tests.
  obs::MisestimateJournal& journal = obs::MisestimateJournal::Default();
  const obs::MisestimateJournalOptions saved = journal.options();
  journal.Configure({/*q_error_threshold=*/0.0, /*capacity=*/8});
  journal.Clear();

  Post(fx.server.port(), "/api/query", "proc p read file f");
  Post(fx.server.port(), "/api/query", "proc p write file f");

  std::string response = Get(fx.server.port(), "/api/misestimates");
  auto json = Json::Parse(Body(response));
  ASSERT_TRUE(json.ok()) << Body(response);
  EXPECT_DOUBLE_EQ((*json)["q_error_threshold"].AsNumber(), 0.0);
  const auto& entries = (*json)["entries"].AsArray();
  ASSERT_GE(entries.size(), 2u);
  for (size_t i = 1; i < entries.size(); ++i) {
    EXPECT_GE(entries[i - 1]["worst_q_error"].AsNumber(),
              entries[i]["worst_q_error"].AsNumber());
  }
  const auto& first = entries[0];
  EXPECT_EQ(first["kind"].AsString(), "query");
  EXPECT_FALSE(first["query"].AsString().empty());
  EXPECT_FALSE(first["stats_snapshot"].AsString().empty());
  const auto& ops = first["operators"].AsArray();
  ASSERT_FALSE(ops.empty());
  EXPECT_GE(ops[0]["est_rows"].AsNumber(), 0.0);
  EXPECT_GE(ops[0]["actual_rows"].AsNumber(), 0.0);
  EXPECT_GE(ops[0]["q_error"].AsNumber(), 1.0);

  // ?limit=1 keeps the worst entry only; a bad limit is a 400.
  std::string limited = Get(fx.server.port(), "/api/misestimates?limit=1");
  auto lim = Json::Parse(Body(limited));
  ASSERT_TRUE(lim.ok());
  EXPECT_EQ((*lim)["entries"].AsArray().size(), 1u);
  EXPECT_NE(Get(fx.server.port(), "/api/misestimates?limit=abc").find("400"),
            std::string::npos);

  journal.Configure(saved);
  journal.Clear();
}

// --- Structured logs, explain format=json, and the diagnostic bundle. ---

/// Sum of every sample of `name` in a Prometheus text body (all label
/// children).
double MetricSum(const std::string& body, const std::string& name) {
  double sum = 0;
  size_t start = 0;
  while (start < body.size()) {
    size_t nl = body.find('\n', start);
    if (nl == std::string::npos) nl = body.size();
    std::string line = body.substr(start, nl - start);
    start = nl + 1;
    if (line.rfind(name, 0) != 0) continue;
    char next = line.size() > name.size() ? line[name.size()] : '\0';
    if (next != ' ' && next != '{') continue;  // prefix of a longer name
    size_t space = line.rfind(' ');
    if (space == std::string::npos) continue;
    sum += std::strtod(line.c_str() + space + 1, nullptr);
  }
  return sum;
}

/// Fixture whose engine row cap is tiny: any broad query truncates with
/// reason "row_cap", which exercises the WARN path and the structured
/// truncation reporting.
struct TruncatingFixture {
  ThreatRaptor system;
  HttpServer server;

  static ThreatRaptorOptions MakeOptions() {
    ThreatRaptorOptions options;
    options.execution.max_rows = 1;
    return options;
  }

  TruncatingFixture() : system(MakeOptions()) {
    audit::WorkloadGenerator gen;
    gen.GenerateBenign(3000, system.mutable_log());
    gen.InjectDataLeakageAttack(system.mutable_log());
    EXPECT_TRUE(system.FinalizeStorage().ok());
    RegisterThreatRaptorApi(&server, &system);
    EXPECT_TRUE(server.Start(0).ok());
  }
};

TEST(ServerTest, ExplainJsonFormat) {
  TruncatingFixture fx;
  std::string response =
      Post(fx.server.port(), "/api/explain?format=json&profile=1",
           "proc p read file f\nreturn p, f");
  auto json = Json::Parse(Body(response));
  ASSERT_TRUE(json.ok()) << Body(response);
  const auto& steps = (*json)["steps"].AsArray();
  ASSERT_FALSE(steps.empty());
  EXPECT_EQ(steps[0]["step"].AsNumber(), 1.0);
  EXPECT_FALSE(steps[0]["backend"].AsString().empty());
  EXPECT_GE(steps[0]["matches"].AsNumber(), 0.0);
  // Estimate-vs-actual observability rides every estimated step.
  ASSERT_TRUE(steps[0].Contains("est_rows"));
  EXPECT_GE(steps[0]["est_rows"].AsNumber(), 0.0);
  EXPECT_GE(steps[0]["q_error"].AsNumber(), 1.0);
  EXPECT_GT((*json)["totals"]["total_ms"].AsNumber(), 0.0);
  EXPECT_FALSE((*json)["profile"]["stages"].AsArray().empty());
  // `limit 1` truncates this query, and the structured form says why.
  EXPECT_TRUE((*json)["truncated"].AsBool());
  EXPECT_FALSE((*json)["truncation_reason"].AsString().empty());

  // The default (no format param) still returns the text plan, now with
  // the truncation line.
  std::string text = Post(fx.server.port(), "/api/explain",
                          "proc p read file f\nreturn p, f");
  auto plain = Json::Parse(Body(text));
  ASSERT_TRUE(plain.ok()) << Body(text);
  EXPECT_NE((*plain)["explain"].AsString().find("truncated:"),
            std::string::npos);
}

TEST(ServerTest, LogsEndpointFiltersByLevelSubsystemAndLimit) {
  TruncatingFixture fx;
  obs::Logger::Default().Clear();
  // Generate some server-request records plus one engine WARN (the broad
  // query overflows the fixture's one-row cap).
  Post(fx.server.port(), "/api/query", "proc p read file f\nreturn p, f");
  Get(fx.server.port(), "/api/stats");

  std::string all = Body(Get(fx.server.port(), "/api/logs"));
  auto json = Json::Parse(all);
  ASSERT_TRUE(json.ok()) << all;
  ASSERT_FALSE((*json)["records"].AsArray().empty());

  std::string engine_only =
      Body(Get(fx.server.port(), "/api/logs?subsystem=engine"));
  auto engine_json = Json::Parse(engine_only);
  ASSERT_TRUE(engine_json.ok());
  for (const Json& record : (*engine_json)["records"].AsArray()) {
    EXPECT_EQ(record["subsystem"].AsString(), "engine");
  }

  std::string warns = Body(Get(fx.server.port(), "/api/logs?level=warn"));
  auto warn_json = Json::Parse(warns);
  ASSERT_TRUE(warn_json.ok());
  ASSERT_FALSE((*warn_json)["records"].AsArray().empty());
  for (const Json& record : (*warn_json)["records"].AsArray()) {
    const std::string& level = record["level"].AsString();
    EXPECT_TRUE(level == "warn" || level == "error") << level;
  }

  std::string limited = Body(Get(fx.server.port(), "/api/logs?limit=2"));
  auto limited_json = Json::Parse(limited);
  ASSERT_TRUE(limited_json.ok());
  EXPECT_EQ((*limited_json)["records"].AsArray().size(), 2u);

  // Bad parameters are 400s, not silent empties.
  EXPECT_NE(Get(fx.server.port(), "/api/logs?level=loud").find("400"),
            std::string::npos);
  EXPECT_NE(Get(fx.server.port(), "/api/logs?trace=abc").find("400"),
            std::string::npos);
}

TEST(ServerTest, WarnRecordsDuringHuntCarryTraceId) {
  ServerFixture fx;
  obs::Tracer::Default().Clear();
  obs::Logger::Default().Clear();
  // Fail the full behavior query once so the hunt degrades: the core and
  // fault subsystems emit WARNs inside the hunt's trace.
  testing::ScriptedFaults faults;
  faults.FailAt("engine.execute", Status::Internal("injected engine fault"),
                /*after=*/0, /*times=*/1);
  std::string hunt = Post(
      fx.server.port(), "/api/hunt?degraded=1",
      "The process /bin/tar read the file /etc/passwd. /bin/tar then "
      "wrote the collected data to /tmp/data.tar.");
  ASSERT_NE(hunt.find("200 OK"), std::string::npos) << hunt;

  std::string listing = Body(Get(fx.server.port(), "/api/traces"));
  auto traces = Json::Parse(listing);
  ASSERT_TRUE(traces.ok()) << listing;
  ASSERT_FALSE((*traces)["traces"].AsArray().empty());
  EXPECT_EQ((*traces)["traces"][0]["name"].AsString(), "hunt");
  uint64_t id =
      static_cast<uint64_t>((*traces)["traces"][0]["id"].AsNumber());
  ASSERT_NE(id, 0u);

  // The trace filter returns exactly the hunt's records...
  std::string correlated = Body(
      Get(fx.server.port(), "/api/logs?trace=" + std::to_string(id)));
  auto correlated_json = Json::Parse(correlated);
  ASSERT_TRUE(correlated_json.ok()) << correlated;
  const auto& hunt_records = (*correlated_json)["records"].AsArray();
  ASSERT_FALSE(hunt_records.empty());
  bool saw_degrade_warn = false;
  for (const Json& record : hunt_records) {
    EXPECT_EQ(static_cast<uint64_t>(record["trace_id"].AsNumber()), id);
    if (record["level"].AsString() == "warn" &&
        record["subsystem"].AsString() == "core") {
      saw_degrade_warn = true;
    }
  }
  EXPECT_TRUE(saw_degrade_warn) << correlated;

  // ...and matches a client-side filter of the full dump: same sequence
  // numbers, nothing more, nothing less. Every WARN/ERROR since the clear
  // came from the hunt, so each one carries its trace id.
  std::string all = Body(Get(fx.server.port(), "/api/logs"));
  auto all_json = Json::Parse(all);
  ASSERT_TRUE(all_json.ok());
  std::vector<double> expected_seqs, got_seqs;
  for (const Json& record : (*all_json)["records"].AsArray()) {
    if (static_cast<uint64_t>(record["trace_id"].AsNumber()) == id) {
      expected_seqs.push_back(record["seq"].AsNumber());
    }
    const std::string& level = record["level"].AsString();
    if (level == "warn" || level == "error") {
      EXPECT_EQ(static_cast<uint64_t>(record["trace_id"].AsNumber()), id)
          << record["subsystem"].AsString() << ": "
          << record["message"].AsString();
    }
  }
  for (const Json& record : hunt_records) {
    got_seqs.push_back(record["seq"].AsNumber());
  }
  EXPECT_EQ(got_seqs, expected_seqs);
}

TEST(ServerTest, StatsAgreeWithMetrics) {
  ServerFixture fx;
  Post(fx.server.port(), "/api/query", "proc p read file f\nlimit 1");
  std::string stats_body = Body(Get(fx.server.port(), "/api/stats"));
  auto stats = Json::Parse(stats_body);
  ASSERT_TRUE(stats.ok()) << stats_body;
  std::string metrics = Body(Get(fx.server.port(), "/api/metrics"));

  // /api/stats is a view over the same registry /api/metrics scrapes;
  // counters that only the two requests above could move must agree
  // exactly.
  EXPECT_EQ((*stats)["events"].AsNumber(),
            MetricSum(metrics, "raptor_storage_events"));
  EXPECT_EQ((*stats)["entities"].AsNumber(),
            MetricSum(metrics, "raptor_storage_entities"));
  EXPECT_EQ((*stats)["queries"].AsNumber(),
            MetricSum(metrics, "raptor_queries_total"));
  EXPECT_EQ((*stats)["hunts"].AsNumber(),
            MetricSum(metrics, "raptor_hunts_total"));
  EXPECT_EQ((*stats)["hunts_degraded"].AsNumber(),
            MetricSum(metrics, "raptor_hunts_degraded_total"));
  EXPECT_EQ((*stats)["queries_truncated"].AsNumber(),
            MetricSum(metrics, "raptor_query_truncations_total"));
  // The requests after /api/stats rendered keep moving their own
  // counters (each request logs itself), so these two only grow.
  EXPECT_GE(MetricSum(metrics, "raptor_http_requests_total"),
            (*stats)["http_requests"].AsNumber());
  EXPECT_GE(MetricSum(metrics, "raptor_log_records_total"),
            (*stats)["log_records"].AsNumber());
}

TEST(ServerTest, DebugBundleParsesAndCarriesEverySection) {
  ServerFixture fx;
  Post(fx.server.port(), "/api/query", "proc p read file f\nlimit 1");
  std::string body = Body(Get(fx.server.port(), "/api/debug/bundle"));
  auto bundle = Json::Parse(body);
  ASSERT_TRUE(bundle.ok()) << body.substr(0, 400);

  EXPECT_EQ((*bundle)["build"]["name"].AsString(), "ThreatRaptor");
  EXPECT_FALSE((*bundle)["build"]["compiler"].AsString().empty());
  EXPECT_GE((*bundle)["uptime_s"].AsNumber(), 0.0);
  EXPECT_GT((*bundle)["stats"]["events"].AsNumber(), 0.0);
  EXPECT_GT((*bundle)["options"]["execution"]["max_rows"].AsNumber(), 0.0);
  EXPECT_NE((*bundle)["metrics"].AsString().find("raptor_queries_total"),
            std::string::npos);
  EXPECT_FALSE((*bundle)["traces"].AsArray().empty());
  EXPECT_FALSE((*bundle)["logs"].AsArray().empty());

  // Round-trip: re-serializing the parsed bundle yields the same document.
  auto again = Json::Parse(bundle->Dump());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->Dump(), bundle->Dump());
}

TEST(ServerTest, DebugBundleValidatesWithJsonCheck) {
  // The same gate scripts/bench.sh applies to bench output: the bundle
  // must satisfy the standalone json_check tool. ctest runs with the test
  // binary's directory as cwd, so the examples tree is a sibling.
  const char* tool = "../examples/json_check";
  if (::access(tool, X_OK) != 0) {
    GTEST_SKIP() << "json_check not built next to this test binary";
  }
  ServerFixture fx;
  std::string body = Body(Get(fx.server.port(), "/api/debug/bundle"));
  ASSERT_FALSE(body.empty());
  std::ofstream out("debug_bundle_roundtrip.json", std::ios::trunc);
  out << body;
  out.close();
  int rc = std::system("../examples/json_check debug_bundle_roundtrip.json");
  EXPECT_EQ(rc, 0);
}

// --- The ?threads= parameter and pool stats. ---

TEST(ServerTest, ThreadsParamValidatedAndCapped) {
  ServerFixture fx;
  const std::string query =
      "proc p[\"%tar%\"] read file f[\"/etc/passwd\"]\nreturn p, f";
  // Valid thread counts run and return the same rows as the default —
  // results are byte-identical at any thread count.
  for (const char* t : {"1", "2", "8"}) {
    std::string response = Post(
        fx.server.port(), std::string("/api/query?threads=") + t, query);
    EXPECT_NE(response.find("200 OK"), std::string::npos) << t;
    auto json = Json::Parse(Body(response));
    ASSERT_TRUE(json.ok()) << Body(response);
    ASSERT_EQ((*json)["rows"].AsArray().size(), 1u) << t;
    EXPECT_EQ((*json)["rows"][0][0].AsString(), "/bin/tar");
    EXPECT_EQ((*json)["rows"][0][1].AsString(), "/etc/passwd");
  }
  // The in-range maximum is capped to hardware concurrency, not rejected.
  std::string capped =
      Post(fx.server.port(), "/api/query?threads=1024", query);
  EXPECT_NE(capped.find("200 OK"), std::string::npos);
  // Non-numeric, zero, negative, oversized, and empty values are 400s.
  for (const char* bad : {"abc", "0", "-1", "1025", "99999", ""}) {
    std::string response = Post(
        fx.server.port(), std::string("/api/query?threads=") + bad, query);
    EXPECT_NE(response.find("400"), std::string::npos) << "'" << bad << "'";
    auto json = Json::Parse(Body(response));
    ASSERT_TRUE(json.ok()) << Body(response);
    EXPECT_NE((*json)["error"].AsString().find("threads"), std::string::npos)
        << "'" << bad << "'";
  }
  // Hunt and explain take the parameter too, with the same validation.
  EXPECT_NE(Post(fx.server.port(), "/api/explain?threads=2",
                 "proc p read file f\nlimit 1")
                .find("200 OK"),
            std::string::npos);
  EXPECT_NE(Post(fx.server.port(), "/api/explain?threads=abc",
                 "proc p read file f\nlimit 1")
                .find("400"),
            std::string::npos);
  EXPECT_NE(
      Post(fx.server.port(), "/api/hunt?threads=0", "any report").find("400"),
      std::string::npos);
}

TEST(ServerTest, StatsAndBundleCarryPoolCounters) {
  ServerFixture fx;
  std::string response = Get(fx.server.port(), "/api/stats");
  auto json = Json::Parse(Body(response));
  ASSERT_TRUE(json.ok()) << Body(response);
  // RegisterThreatRaptorApi warms the shared pool (sized at least 4), so
  // the gauge is live before any parallel query ran.
  EXPECT_GE((*json)["pool_threads"].AsNumber(), 4.0);
  EXPECT_GE((*json)["pool_busy_workers"].AsNumber(), 0.0);
  EXPECT_GE((*json)["pool_tasks"].AsNumber(), 0.0);
  EXPECT_GE((*json)["pool_parallel_regions"].AsNumber(), 0.0);

  // The diagnostic bundle records the thread knobs alongside the rest of
  // the option set.
  std::string bundle = Body(Get(fx.server.port(), "/api/debug/bundle"));
  auto parsed = Json::Parse(bundle);
  ASSERT_TRUE(parsed.ok()) << bundle.substr(0, 400);
  EXPECT_GE((*parsed)["options"]["execution"]["num_threads"].AsNumber(), 0.0);
  EXPECT_GE((*parsed)["options"]["hunt"]["num_threads"].AsNumber(), 0.0);
  EXPECT_GE((*parsed)["stats"]["pool_threads"].AsNumber(), 4.0);
}

TEST(ServerTest, UnknownPathIs404AndWrongMethodIs405) {
  ServerFixture fx;
  EXPECT_NE(Get(fx.server.port(), "/nope").find("404"), std::string::npos);
  EXPECT_NE(Get(fx.server.port(), "/api/query").find("405"),
            std::string::npos);
}

TEST(ServerTest, MalformedRequestIs400) {
  ServerFixture fx;
  std::string response = RawRequest(fx.server.port(), "garbage\r\n\r\n");
  EXPECT_NE(response.find("400"), std::string::npos);
}

TEST(ServerTest, StopIsIdempotentAndRestartable) {
  ServerFixture fx;
  uint16_t port = fx.server.port();
  EXPECT_GT(port, 0);
  fx.server.Stop();
  fx.server.Stop();
  EXPECT_FALSE(fx.server.running());
  // A fresh server can bind a fresh port.
  HttpServer second;
  second.Route("GET", "/ping", [](const HttpRequest&) {
    return HttpResponse{200, "text/plain", "pong"};
  });
  ASSERT_TRUE(second.Start(0).ok());
  EXPECT_EQ(Body(Get(second.port(), "/ping")), "pong");
}

TEST(ServerTest, SequentialRequestsAreServed) {
  ServerFixture fx;
  for (int i = 0; i < 10; ++i) {
    std::string response = Get(fx.server.port(), "/api/stats");
    EXPECT_NE(response.find("200 OK"), std::string::npos) << i;
  }
}

// --- Health and readiness. ---

TEST(ServerTest, HealthzIsAlwaysOk) {
  ServerFixture fx;
  std::string response = Get(fx.server.port(), "/api/healthz");
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_EQ(Body(response), "ok\n");
}

TEST(ServerTest, ReadyzGatesOnStorageSyncState) {
  // Before FinalizeStorage the system cannot serve hunts: readiness must
  // say 503 so a load balancer keeps traffic away.
  ThreatRaptor system;
  HttpServer server;
  RegisterThreatRaptorApi(&server, &system);
  ASSERT_TRUE(server.Start(0).ok());
  std::string before = Get(server.port(), "/api/readyz");
  EXPECT_NE(before.find("503"), std::string::npos);
  EXPECT_EQ(Body(before), "storage not finalized\n");
  // Liveness is independent of readiness.
  EXPECT_NE(Get(server.port(), "/api/healthz").find("200 OK"),
            std::string::npos);

  ASSERT_TRUE(system.FinalizeStorage().ok());
  std::string after = Get(server.port(), "/api/readyz");
  EXPECT_NE(after.find("200 OK"), std::string::npos);
  EXPECT_EQ(Body(after), "ready\n");
}

// --- Resource gauges. ---

TEST(ServerTest, MetricsAndStatsCarryMemoryGauges) {
  ServerFixture fx;
  std::string metrics = Body(Get(fx.server.port(), "/api/metrics"));
  // Finalized storage charged the relational/graph/ingest components; the
  // engine gauge exists (pre-registered) even before any query ran.
  for (const char* component : {"relational", "graph", "ingest", "engine"}) {
    EXPECT_NE(metrics.find("raptor_mem_live_bytes{component=\"" +
                           std::string(component) + "\"}"),
              std::string::npos)
        << component << "\n"
        << metrics.substr(0, 400);
    EXPECT_NE(metrics.find("raptor_mem_peak_bytes{component=\"" +
                           std::string(component) + "\"}"),
              std::string::npos)
        << component;
  }
  std::string stats = Body(Get(fx.server.port(), "/api/stats"));
  auto json = Json::Parse(stats);
  ASSERT_TRUE(json.ok()) << stats;
  const Json& mem = (*json)["mem"];
  EXPECT_GT(mem["relational"]["live_bytes"].AsNumber(), 0.0);
  EXPECT_GT(mem["graph"]["live_bytes"].AsNumber(), 0.0);
  EXPECT_GT(mem["ingest"]["live_bytes"].AsNumber(), 0.0);
  EXPECT_GE(mem["relational"]["peak_bytes"].AsNumber(),
            mem["relational"]["live_bytes"].AsNumber());
}

// --- The slow journal endpoint. ---

/// Fixture whose slow-journal latency threshold is microscopic: every
/// query and hunt lands in the journal.
struct SlowJournalFixture {
  ThreatRaptor system;
  HttpServer server;

  static ThreatRaptorOptions MakeOptions() {
    ThreatRaptorOptions options;
    options.slow_journal.latency_threshold_ms = 1e-6;
    options.slow_journal.capacity = 16;
    return options;
  }

  SlowJournalFixture() : system(MakeOptions()) {
    obs::SlowJournal::Default().Clear();
    audit::WorkloadGenerator gen;
    gen.GenerateBenign(3000, system.mutable_log());
    gen.InjectDataLeakageAttack(system.mutable_log());
    EXPECT_TRUE(system.FinalizeStorage().ok());
    RegisterThreatRaptorApi(&server, &system);
    EXPECT_TRUE(server.Start(0).ok());
  }
};

TEST(ServerTest, SlowEndpointServesOverThresholdExecutions) {
  SlowJournalFixture fx;
  Post(fx.server.port(), "/api/query", "proc p read file f\nlimit 1");
  std::string response = Body(Get(fx.server.port(), "/api/slow"));
  auto json = Json::Parse(response);
  ASSERT_TRUE(json.ok()) << response;
  EXPECT_DOUBLE_EQ((*json)["latency_threshold_ms"].AsNumber(), 1e-6);
  EXPECT_GT((*json)["bytes_threshold"].AsNumber(), 0.0);
  const auto& entries = (*json)["entries"].AsArray();
  ASSERT_FALSE(entries.empty());
  const Json& entry = entries[0];
  EXPECT_EQ(entry["kind"].AsString(), "query");
  EXPECT_EQ(entry["trigger"].AsString(), "latency");
  EXPECT_NE(entry["query"].AsString().find("read"), std::string::npos);
  EXPECT_GT(entry["total_ms"].AsNumber(), 0.0);
  const auto& ops = entry["operators"].AsArray();
  ASSERT_FALSE(ops.empty());
  EXPECT_FALSE(ops[0]["access"].AsString().empty());
  EXPECT_GE(ops[0]["rows_examined"].AsNumber(),
            ops[0]["rows_emitted"].AsNumber());
  EXPECT_GT(ops[0]["bytes"].AsNumber(), 0.0);
}

TEST(ServerTest, SlowJournalRetainsHuntProfile) {
  SlowJournalFixture fx;
  std::string hunt = Post(
      fx.server.port(), "/api/hunt?profile=1",
      "The process /bin/tar read the file /etc/passwd. Then /bin/tar wrote "
      "the file /tmp/data.tar.");
  ASSERT_NE(hunt.find("200 OK"), std::string::npos);
  std::string response = Body(Get(fx.server.port(), "/api/slow?limit=1"));
  auto json = Json::Parse(response);
  ASSERT_TRUE(json.ok()) << response;
  const auto& entries = (*json)["entries"].AsArray();
  ASSERT_EQ(entries.size(), 1u);
  const Json& entry = entries[0];
  EXPECT_EQ(entry["kind"].AsString(), "hunt");
  // The report excerpt stands in for the query text, and the full span
  // profile rode along ("find the hunt that ate the memory" needs both).
  EXPECT_NE(entry["query"].AsString().find("/bin/tar"), std::string::npos);
  EXPECT_FALSE(entry["profile"]["stages"].AsArray().empty());
  std::string bundle = Body(Get(fx.server.port(), "/api/debug/bundle"));
  auto parsed = Json::Parse(bundle);
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE((*parsed)["slow"].AsArray().empty());
}

// --- Unified query-parameter validation. ---

TEST(ServerTest, ListLimitsValidateConsistentlyAcrossEndpoints) {
  ServerFixture fx;
  // Malformed limits get the same 400 on every list endpoint.
  for (const char* path :
       {"/api/logs?limit=abc", "/api/logs?limit=-1", "/api/logs?limit=",
        "/api/traces?limit=abc", "/api/traces?limit=-5",
        "/api/slow?limit=xyz", "/api/slow?limit=-1",
        "/api/watch?count=abc", "/api/watch?interval_ms=-1"}) {
    std::string response = Get(fx.server.port(), path);
    EXPECT_NE(response.find("400"), std::string::npos) << path;
    auto json = Json::Parse(Body(response));
    ASSERT_TRUE(json.ok()) << path;
    EXPECT_NE((*json)["error"].AsString().find("non-negative integer"),
              std::string::npos)
        << path;
  }
  // Oversized limits clamp to the documented cap instead of erroring.
  EXPECT_NE(Get(fx.server.port(), "/api/traces?limit=99999999")
                .find("200 OK"),
            std::string::npos);
  // A valid limit keeps only the newest traces.
  Post(fx.server.port(), "/api/query", "proc p read file f\nlimit 1");
  Post(fx.server.port(), "/api/query", "proc p write file f\nlimit 1");
  std::string limited = Body(Get(fx.server.port(), "/api/traces?limit=1"));
  auto json = Json::Parse(limited);
  ASSERT_TRUE(json.ok()) << limited;
  EXPECT_EQ((*json)["traces"].AsArray().size(), 1u);
}

// --- Live metrics stream. ---

TEST(ServerTest, WatchStreamsBoundedServerSentEvents) {
  ServerFixture fx;
  std::string wire =
      Get(fx.server.port(), "/api/watch?count=2&interval_ms=10");
  EXPECT_NE(wire.find("200 OK"), std::string::npos);
  EXPECT_NE(wire.find("text/event-stream"), std::string::npos);
  // Streaming framing: no Content-Length, Connection: close delimits.
  EXPECT_EQ(wire.find("Content-Length"), std::string::npos);
  // Exactly the requested number of SSE blocks, each carrying the stats
  // document as its data payload.
  size_t events = 0;
  for (size_t pos = wire.find("event: metrics"); pos != std::string::npos;
       pos = wire.find("event: metrics", pos + 1)) {
    ++events;
  }
  EXPECT_EQ(events, 2u);
  size_t data = wire.find("data: ");
  ASSERT_NE(data, std::string::npos);
  size_t end = wire.find('\n', data);
  auto json = Json::Parse(wire.substr(data + 6, end - data - 6));
  ASSERT_TRUE(json.ok()) << wire.substr(data, 200);
  EXPECT_GE((*json)["events"].AsNumber(), 0.0);
  EXPECT_TRUE((*json)["mem"].is_object());
}

// --- Explain determinism across thread counts. ---

TEST(ServerTest, ExplainJsonOperatorStatsAreThreadCountInvariant) {
  ServerFixture fx;
  const std::string query =
      "e1: proc p read file f1[\"%/etc/%\"]\n"
      "e2: proc p write file f2\n"
      "return p, f1, f2\n"
      "limit 100";
  auto fetch = [&](const std::string& threads) {
    std::string response = Post(
        fx.server.port(), "/api/explain?format=json&threads=" + threads,
        query);
    auto json = Json::Parse(Body(response));
    EXPECT_TRUE(json.ok()) << Body(response);
    return *json;
  };
  Json serial = fetch("1");
  Json parallel = fetch("8");
  const auto& s_steps = serial["steps"].AsArray();
  const auto& p_steps = parallel["steps"].AsArray();
  ASSERT_EQ(s_steps.size(), p_steps.size());
  ASSERT_FALSE(s_steps.empty());
  for (size_t i = 0; i < s_steps.size(); ++i) {
    // Every per-operator value except wall time is part of the determinism
    // contract: identical at threads=1 and threads=8.
    for (const char* key :
         {"pattern", "backend", "access", "rows_examined", "rows_emitted",
          "selectivity", "bytes", "index_probes", "full_scans", "matches",
          "constrained"}) {
      EXPECT_EQ(s_steps[i][key].Dump(), p_steps[i][key].Dump())
          << "step " << i << " key " << key;
    }
  }
  for (const char* key :
       {"rows_touched", "graph_edges_traversed", "bytes_touched",
        "intermediate_result_bytes"}) {
    EXPECT_EQ(serial["totals"][key].Dump(), parallel["totals"][key].Dump())
        << key;
  }
}

// --- Structured metrics dump (?format=json). ---

TEST(ServerTest, MetricsJsonFormatMirrorsTheRegistry) {
  ServerFixture fx;
  Post(fx.server.port(), "/api/query", "proc p read file f\nlimit 1");
  std::string body = Body(Get(fx.server.port(), "/api/metrics?format=json"));
  auto json = Json::Parse(body);
  ASSERT_TRUE(json.ok()) << body.substr(0, 400);
  const auto& families = (*json)["families"].AsArray();
  ASSERT_FALSE(families.empty());
  bool saw_counter = false, saw_histogram = false;
  for (const Json& family : families) {
    const std::string& name = family["name"].AsString();
    if (name == "raptor_queries_total") {
      saw_counter = true;
      EXPECT_EQ(family["type"].AsString(), "counter");
      ASSERT_FALSE(family["samples"].AsArray().empty());
      EXPECT_GE(family["samples"][0]["value"].AsNumber(), 1.0);
    }
    if (name == "raptor_http_request_ms") {
      saw_histogram = true;
      EXPECT_EQ(family["type"].AsString(), "histogram");
      ASSERT_FALSE(family["samples"].AsArray().empty());
      const Json& sample = family["samples"][0];
      const auto& buckets = sample["buckets"].AsArray();
      ASSERT_GE(buckets.size(), 2u);
      // Finite bounds are numbers; the implicit +Inf bucket closes the list
      // and equals the sample count.
      EXPECT_TRUE(buckets[0]["le"].is_number());
      EXPECT_EQ(buckets.back()["le"].AsString(), "+Inf");
      EXPECT_EQ(buckets.back()["count"].AsNumber(),
                sample["count"].AsNumber());
      EXPECT_GE(sample["sum"].AsNumber(), 0.0);
      EXPECT_FALSE(sample["labels"]["route"].AsString().empty());
    }
  }
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_histogram);

  // The explicit text format is the Prometheus exposition.
  std::string text = Get(fx.server.port(), "/api/metrics?format=text");
  EXPECT_NE(text.find("200 OK"), std::string::npos);
  EXPECT_NE(Body(text).find("# TYPE"), std::string::npos);
}

TEST(ServerTest, UnknownFormatIs400OnEveryFormatEndpoint) {
  ServerFixture fx;
  struct Case {
    const char* method;
    const char* path;
    const char* choices;
  };
  for (const Case& c : {Case{"GET", "/api/metrics?format=xml", "text|json"},
                        Case{"GET", "/api/profile?format=yaml",
                             "folded|json"}}) {
    std::string response = Get(fx.server.port(), c.path);
    EXPECT_NE(response.find("400"), std::string::npos) << c.path;
    auto json = Json::Parse(Body(response));
    ASSERT_TRUE(json.ok()) << c.path;
    EXPECT_NE((*json)["error"].AsString().find(c.choices), std::string::npos)
        << c.path << ": " << (*json)["error"].AsString();
  }
  // /api/explain shares the same validator: unknown formats are rejected
  // before the query executes.
  std::string response = Post(fx.server.port(), "/api/explain?format=yaml",
                              "proc p read file f\nlimit 1");
  EXPECT_NE(response.find("400"), std::string::npos);
  auto json = Json::Parse(Body(response));
  ASSERT_TRUE(json.ok());
  EXPECT_NE((*json)["error"].AsString().find("text|json"), std::string::npos);
}

// --- Latency quantiles in /api/stats. ---

TEST(ServerTest, StatsCarryLatencyQuantiles) {
  ServerFixture fx;
  Post(fx.server.port(), "/api/hunt",
       "The process /bin/tar read the file /etc/passwd. /bin/tar then "
       "wrote the collected data to /tmp/data.tar.");
  Post(fx.server.port(), "/api/query", "proc p read file f\nlimit 1");
  std::string body = Body(Get(fx.server.port(), "/api/stats"));
  auto json = Json::Parse(body);
  ASSERT_TRUE(json.ok()) << body;
  const Json& latency = (*json)["latency"];
  EXPECT_GE(latency["hunt_ms"]["count"].AsNumber(), 1.0);
  EXPECT_GT(latency["hunt_ms"]["p50"].AsNumber(), 0.0);
  EXPECT_GE(latency["hunt_ms"]["p99"].AsNumber(),
            latency["hunt_ms"]["p50"].AsNumber());
  EXPECT_GE(latency["query_ms"]["count"].AsNumber(), 1.0);
  EXPECT_GE(latency["query_ms"]["p95"].AsNumber(), 0.0);
  // Per-route HTTP latency: the hunt we just made has a quantile row.
  const Json& hunt_route = latency["http_request_ms"]["/api/hunt"];
  EXPECT_GE(hunt_route["count"].AsNumber(), 1.0);
  EXPECT_GE(hunt_route["p99"].AsNumber(), 0.0);
}

// --- SSE heartbeats. ---

TEST(ServerTest, WatchEmitsHeartbeatCommentFramesBetweenEvents) {
  ServerFixture fx;
  // A 150 ms interval sliced by a 50 ms heartbeat: the single inter-event
  // gap yields exactly two comment frames (the third slice ends the wait).
  std::string wire = Get(
      fx.server.port(),
      "/api/watch?count=2&interval_ms=150&heartbeat_ms=50");
  EXPECT_NE(wire.find("200 OK"), std::string::npos);
  size_t events = 0;
  for (size_t pos = wire.find("event: metrics"); pos != std::string::npos;
       pos = wire.find("event: metrics", pos + 1)) {
    ++events;
  }
  EXPECT_EQ(events, 2u);
  size_t heartbeats = 0;
  for (size_t pos = wire.find(": heartbeat"); pos != std::string::npos;
       pos = wire.find(": heartbeat", pos + 1)) {
    ++heartbeats;
  }
  EXPECT_EQ(heartbeats, 2u);
  // heartbeat_ms=0 disables the frames entirely.
  std::string quiet = Get(
      fx.server.port(),
      "/api/watch?count=2&interval_ms=50&heartbeat_ms=0");
  EXPECT_EQ(quiet.find(": heartbeat"), std::string::npos);
  // And the parameter validates like every other bounded integer.
  EXPECT_NE(Get(fx.server.port(), "/api/watch?heartbeat_ms=abc").find("400"),
            std::string::npos);
}

// --- The sampling profiler endpoint. ---

/// Fixture with the profiler always on, so both the windowed capture and
/// the cumulative (?seconds=0) read have samples to serve.
struct ProfilerFixture {
  ThreatRaptor system;
  HttpServer server;

  static ThreatRaptorOptions MakeOptions() {
    ThreatRaptorOptions options;
    options.profiler.enabled = true;
    options.profiler.hz = 199;  // faster than default: shorter test windows
    return options;
  }

  ProfilerFixture() : system(MakeOptions()) {
    audit::WorkloadGenerator gen;
    gen.GenerateBenign(3000, system.mutable_log());
    gen.InjectDataLeakageAttack(system.mutable_log());
    EXPECT_TRUE(system.FinalizeStorage().ok());
    RegisterThreatRaptorApi(&server, &system);
    EXPECT_TRUE(server.Start(0).ok());
  }

  ~ProfilerFixture() { obs::Profiler::Default().Configure({}); }
};

TEST(ServerTest, ProfileEndpointCapturesHuntSpanStacks) {
  ProfilerFixture fx;
  // A hunter thread keeps span stacks live while the capture window runs.
  std::atomic<bool> stop{false};
  std::thread hunter([&fx, &stop] {
    obs::ProfiledThread profiled("hunter");
    const std::string report =
        "The process /bin/tar read the file /etc/passwd. /bin/tar then "
        "wrote the collected data to /tmp/data.tar.";
    while (!stop.load()) {
      auto hunt = fx.system.Hunt(report);
      EXPECT_TRUE(hunt.ok());
    }
  });

  std::string response =
      Get(fx.server.port(), "/api/profile?seconds=1&format=folded");
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("text/plain"), std::string::npos);
  std::string folded = Body(response);
  // The acceptance gate: folded stacks rooted at the hunter thread with
  // hunt-pipeline span leaves.
  EXPECT_NE(folded.find("hunter;hunt"), std::string::npos) << folded;

  // The cumulative read (?seconds=0) serves without blocking, structured.
  std::string body =
      Body(Get(fx.server.port(), "/api/profile?seconds=0&format=json"));
  stop.store(true);
  hunter.join();
  auto json = Json::Parse(body);
  ASSERT_TRUE(json.ok()) << body.substr(0, 400);
  EXPECT_DOUBLE_EQ((*json)["hz"].AsNumber(), 199.0);
  EXPECT_GT((*json)["samples"].AsNumber(), 0.0);
  EXPECT_GT((*json)["duration_s"].AsNumber(), 0.0);
  bool saw_hunt_stack = false;
  for (const Json& entry : (*json)["stacks"].AsArray()) {
    EXPECT_GE(entry["samples"].AsNumber(), 1.0);
    if (entry["stack"].AsString().rfind("hunter;hunt", 0) == 0) {
      saw_hunt_stack = true;
    }
  }
  EXPECT_TRUE(saw_hunt_stack) << body.substr(0, 400);
}

TEST(ServerTest, ProfileEndpointValidatesParameters) {
  ServerFixture fx;  // profiler disabled (the default)
  // The cumulative read needs a running profiler.
  std::string off = Get(fx.server.port(), "/api/profile?seconds=0");
  EXPECT_NE(off.find("400"), std::string::npos);
  auto json = Json::Parse(Body(off));
  ASSERT_TRUE(json.ok());
  EXPECT_NE((*json)["error"].AsString().find("not running"),
            std::string::npos);
  // Malformed seconds values get the shared bounded-integer 400.
  EXPECT_NE(Get(fx.server.port(), "/api/profile?seconds=abc").find("400"),
            std::string::npos);
  EXPECT_NE(Get(fx.server.port(), "/api/profile?seconds=-1").find("400"),
            std::string::npos);
}

// --- SLO burn-rate alerts end to end. ---

/// Fixture tuned so a handful of injected 500s blow the HTTP error budget:
/// generous objective (50% budget), no pending dwell, and a background
/// evaluator tick long enough that the /api/alerts polls drive every
/// state-machine step deterministically.
struct SloFixture {
  std::shared_ptr<obs::ManualClock> clock = std::make_shared<obs::ManualClock>();
  ThreatRaptor system;
  HttpServer server;

  static ThreatRaptorOptions MakeOptions(std::shared_ptr<obs::ManualClock> clock) {
    ThreatRaptorOptions options;
    options.slo.http_error_objective = 0.5;
    options.slo.pending_for_s = 0;
    options.slo.eval_interval_ms = 60000;
    // Evaluation is idempotent per sample timestamp, so the fixture owns a
    // manual clock and steps it between polls; the constructor propagates it
    // to the SLO engine as well.
    options.history.clock = clock;
    return options;
  }

  SloFixture() : system(MakeOptions(clock)) {
    audit::WorkloadGenerator gen;
    gen.GenerateBenign(3000, system.mutable_log());
    EXPECT_TRUE(system.FinalizeStorage().ok());
    RegisterThreatRaptorApi(&server, &system);
    EXPECT_TRUE(server.Start(0).ok());
  }

  ~SloFixture() { obs::SloEngine::Default().Stop(); }

  /// Advances the clock one second and polls /api/alerts (each poll
  /// evaluates synchronously at the new timestamp) and returns the parsed
  /// document.
  Json Alerts() {
    clock->AdvanceSeconds(1);
    std::string body = Body(Get(server.port(), "/api/alerts"));
    auto json = Json::Parse(body);
    EXPECT_TRUE(json.ok()) << body.substr(0, 400);
    return json.ok() ? *json : Json();
  }

  static std::string StateOf(const Json& doc, const std::string& slo) {
    for (const Json& alert : doc["alerts"].AsArray()) {
      if (alert["slo"].AsString() == slo) return alert["state"].AsString();
    }
    return "missing";
  }
};

TEST(ServerTest, AlertsWalkPendingFiringResolvedOnInjectedErrors) {
  SloFixture fx;
  // Baseline: the full default catalog, everything ok.
  Json baseline = fx.Alerts();
  EXPECT_TRUE(baseline["evaluator_running"].AsBool());
  ASSERT_EQ(baseline["alerts"].AsArray().size(), 4u);
  for (const Json& alert : baseline["alerts"].AsArray()) {
    EXPECT_EQ(alert["state"].AsString(), "ok") << alert["slo"].AsString();
  }

  // Burn the error budget: eight injected 500s, no successes in between.
  {
    testing::ScriptedFaults faults;
    faults.FailAt("server.handler",
                  Status::Internal("injected server fault"),
                  /*after=*/0, /*times=*/8);
    for (int i = 0; i < 8; ++i) {
      EXPECT_NE(Get(fx.server.port(), "/api/healthz").find("500"),
                std::string::npos)
          << i;
    }
  }

  // Poll 1: burn = (8/9) / 0.5 ≈ 1.8 over both windows -> pending.
  Json pending = fx.Alerts();
  EXPECT_EQ(SloFixture::StateOf(pending, "http_error_rate"), "pending");
  // Poll 2: still burning, pending dwell is zero -> firing.
  Json firing = fx.Alerts();
  EXPECT_EQ(SloFixture::StateOf(firing, "http_error_rate"), "firing");
  for (const Json& alert : firing["alerts"].AsArray()) {
    if (alert["slo"].AsString() != "http_error_rate") continue;
    EXPECT_GT(alert["short_burn"].AsNumber(), 1.0);
    EXPECT_GT(alert["long_burn"].AsNumber(), 1.0);
    EXPECT_GT(alert["error_ratio"].AsNumber(), 0.5);
    EXPECT_GT(alert["state_since_unix_ms"].AsNumber(), 0.0);
  }
  // The firing state is scrape-visible as the labeled gauge.
  std::string metrics = Body(Get(fx.server.port(), "/api/metrics"));
  EXPECT_NE(metrics.find("raptor_alert_state{slo=\"http_error_rate\"} 2"),
            std::string::npos);

  // Recovery: a flood of successes dilutes the window ratio under the
  // threshold; the next evaluation resolves the alert.
  for (int i = 0; i < 80; ++i) {
    EXPECT_NE(Get(fx.server.port(), "/api/healthz").find("200 OK"),
              std::string::npos);
  }
  Json resolved = fx.Alerts();
  EXPECT_EQ(SloFixture::StateOf(resolved, "http_error_rate"), "ok");
  metrics = Body(Get(fx.server.port(), "/api/metrics"));
  EXPECT_NE(metrics.find("raptor_alert_state{slo=\"http_error_rate\"} 0"),
            std::string::npos);

  // The transition history tells the whole story, newest first.
  std::vector<std::string> steps;
  for (const Json& t : resolved["transitions"].AsArray()) {
    if (t["slo"].AsString() != "http_error_rate") continue;
    steps.push_back(t["from"].AsString() + "->" + t["to"].AsString());
    EXPECT_GT(t["unix_ms"].AsNumber(), 0.0);
  }
  ASSERT_EQ(steps.size(), 3u);
  EXPECT_EQ(steps[0], "firing->ok");
  EXPECT_EQ(steps[1], "pending->firing");
  EXPECT_EQ(steps[2], "ok->pending");
}

TEST(ServerTest, AlertTransitionsEmitTraceCorrelatedLogs) {
  SloFixture fx;
  obs::Logger::Default().Clear();
  fx.Alerts();
  {
    testing::ScriptedFaults faults;
    faults.FailAt("server.handler",
                  Status::Internal("injected server fault"),
                  /*after=*/0, /*times=*/8);
    for (int i = 0; i < 8; ++i) Get(fx.server.port(), "/api/healthz");
  }
  fx.Alerts();  // -> pending
  fx.Alerts();  // -> firing (logged at WARN)
  std::string warns =
      Body(Get(fx.server.port(), "/api/logs?level=warn&subsystem=slo"));
  auto json = Json::Parse(warns);
  ASSERT_TRUE(json.ok()) << warns;
  bool saw_firing = false;
  for (const Json& record : (*json)["records"].AsArray()) {
    EXPECT_EQ(record["subsystem"].AsString(), "slo");
    if (record["fields"]["to"].AsString() == "firing" &&
        record["fields"]["slo"].AsString() == "http_error_rate") {
      saw_firing = true;
      EXPECT_EQ(record["fields"]["from"].AsString(), "pending");
    }
  }
  EXPECT_TRUE(saw_firing) << warns;
}

TEST(ServerTest, DebugBundleCarriesAlertsSection) {
  ServerFixture fx;
  std::string body = Body(Get(fx.server.port(), "/api/debug/bundle"));
  auto bundle = Json::Parse(body);
  ASSERT_TRUE(bundle.ok()) << body.substr(0, 400);
  const Json& alerts = (*bundle)["alerts"];
  ASSERT_EQ(alerts["alerts"].AsArray().size(), 4u);
  EXPECT_EQ(alerts["alerts"][0]["slo"].AsString(), "hunt_latency_p99");
  EXPECT_TRUE(alerts["transitions"].is_array());
}

TEST(ServerTest, DebugBundleCarriesBuildAndDataStatsSections) {
  ServerFixture fx;
  std::string body = Body(Get(fx.server.port(), "/api/debug/bundle"));
  auto bundle = Json::Parse(body);
  ASSERT_TRUE(bundle.ok()) << body.substr(0, 400);
  EXPECT_FALSE((*bundle)["build"]["git_sha"].AsString().empty());
  EXPECT_TRUE((*bundle)["misestimates"].is_array());
  const Json& datastats = (*bundle)["datastats"];
  EXPECT_TRUE(datastats["storage_ready"].AsBool());
  EXPECT_EQ(datastats["tables"].AsArray().size(), 4u);
}

TEST(ServerTest, DebugBundleCarriesHistoryOptionsAndIncidentsSections) {
  ServerFixture fx;
  std::string body = Body(Get(fx.server.port(), "/api/debug/bundle"));
  auto bundle = Json::Parse(body);
  ASSERT_TRUE(bundle.ok()) << body.substr(0, 400);
  const Json& history = (*bundle)["options"]["history"];
  EXPECT_TRUE(history["enabled"].AsBool());
  EXPECT_EQ(history["tiers"].AsArray().size(), 3u);
  EXPECT_GT(history["sample_interval_s"].AsNumber(), 0.0);
  const Json& incidents = (*bundle)["incidents"];
  EXPECT_TRUE(incidents["incidents"].is_array());
  EXPECT_GT(incidents["capacity"].AsNumber(), 0.0);
}

// --- Metrics history: range queries, incidents, dashboard. ---

/// Fixture owning a manual clock shared by the history store and the SLO
/// engine, with a helper to drive deterministic collector ticks.
struct HistoryFixture {
  std::shared_ptr<obs::ManualClock> clock =
      std::make_shared<obs::ManualClock>();
  ThreatRaptor system;
  HttpServer server;

  static ThreatRaptorOptions MakeOptions(
      std::shared_ptr<obs::ManualClock> clock) {
    ThreatRaptorOptions options;
    options.history.clock = clock;
    return options;
  }

  HistoryFixture() : system(MakeOptions(clock)) {
    audit::WorkloadGenerator gen;
    gen.GenerateBenign(3000, system.mutable_log());
    EXPECT_TRUE(system.FinalizeStorage().ok());
    RegisterThreatRaptorApi(&server, &system);
    EXPECT_TRUE(server.Start(0).ok());
  }

  ~HistoryFixture() {
    obs::SloEngine::Default().Stop();
    obs::MetricsHistory::Default().Stop();
  }

  /// One deterministic collector tick at clock+1s. Background ticks reuse
  /// the unchanged manual timestamp, so their appends are dropped as
  /// duplicates and only these stepped ticks land in the store.
  void Tick() {
    clock->AdvanceSeconds(1);
    obs::MetricsHistory::Default().CollectNow();
  }
};

TEST(ServerTest, MetricsRangeServesCounterRatesUnderManualClock) {
  HistoryFixture fx;
  uint64_t base_s = fx.clock->NowUnixMs() / 1000;
  // The connection counter registers lazily on the first connection; handle
  // one before the baseline sample so every bucket below has a left edge.
  Get(fx.server.port(), "/api/healthz");
  obs::MetricsHistory::Default().CollectNow();  // Baseline edge sample.
  for (int i = 0; i < 4; ++i) {
    // Two connections per second: raptor_http_requests_total counts each.
    Get(fx.server.port(), "/api/healthz");
    Get(fx.server.port(), "/api/healthz");
    fx.Tick();
  }
  std::string body = Body(Get(
      fx.server.port(),
      "/api/metrics/range?name=raptor_http_requests_total&agg=rate&start_s=" +
          std::to_string(base_s) + "&end_s=" + std::to_string(base_s + 4) +
          "&step_s=1"));
  auto json = Json::Parse(body);
  ASSERT_TRUE(json.ok()) << body.substr(0, 400);
  EXPECT_EQ((*json)["kind"].AsString(), "counter");
  EXPECT_EQ((*json)["agg"].AsString(), "rate");
  EXPECT_EQ((*json)["step_s"].AsNumber(), 1.0);
  EXPECT_EQ((*json)["tier"].AsNumber(), 0.0);
  ASSERT_EQ((*json)["series"].AsArray().size(), 1u) << body;
  const Json::Array& points = (*json)["series"][0]["points"].AsArray();
  ASSERT_EQ(points.size(), 4u) << body;
  for (size_t i = 0; i < points.size(); ++i) {
    // Points are stamped at their bucket start.
    EXPECT_EQ(points[i][0].AsNumber(), static_cast<double>(base_s + i));
    EXPECT_EQ(points[i][1].AsNumber(), 2.0) << "bucket " << i;
  }
  // Omitting agg picks the kind's default: counters answer rates.
  std::string defaulted = Body(Get(
      fx.server.port(),
      "/api/metrics/range?name=raptor_http_requests_total&start_s=" +
          std::to_string(base_s) + "&end_s=" + std::to_string(base_s + 4) +
          "&step_s=1"));
  auto djson = Json::Parse(defaulted);
  ASSERT_TRUE(djson.ok()) << defaulted.substr(0, 400);
  EXPECT_EQ((*djson)["agg"].AsString(), "rate");
}

TEST(ServerTest, MetricsRangeValidatesParameters) {
  ServerFixture fx;
  struct Case {
    const char* path;
    const char* needle;
  };
  for (const Case& c : std::initializer_list<Case>{
           {"/api/metrics/range", "name is required"},
           {"/api/metrics/range?name=x&label=nokey", "key=value"},
           {"/api/metrics/range?name=x&label==v", "key=value"},
           {"/api/metrics/range?name=x&agg=bogus", "unknown agg"},
           {"/api/metrics/range?name=x&start_s=abc", "start_s"},
           {"/api/metrics/range?name=x&end_s=-1", "end_s"},
           {"/api/metrics/range?name=x&start_s=10&end_s=5", ""}}) {
    std::string response = Get(fx.server.port(), c.path);
    EXPECT_NE(response.find("400"), std::string::npos) << c.path;
    auto json = Json::Parse(Body(response));
    ASSERT_TRUE(json.ok()) << c.path;
    EXPECT_NE((*json)["error"].AsString().find(c.needle), std::string::npos)
        << c.path << " -> " << (*json)["error"].AsString();
  }
  // An unknown-but-well-formed family is an empty answer, not an error.
  std::string empty =
      Body(Get(fx.server.port(), "/api/metrics/range?name=no_such_metric"));
  auto json = Json::Parse(empty);
  ASSERT_TRUE(json.ok()) << empty;
  EXPECT_TRUE((*json)["series"].AsArray().empty());
}

TEST(ServerTest, IncidentsCaptureFiringSloWithBundleAndHistory) {
  SloFixture fx;
  fx.Alerts();  // Baseline sample: everything ok.
  std::string before = Body(Get(fx.server.port(), "/api/incidents"));
  auto none = Json::Parse(before);
  ASSERT_TRUE(none.ok()) << before;
  EXPECT_EQ((*none)["incidents"].AsArray().size(), 0u);

  {
    testing::ScriptedFaults faults;
    faults.FailAt("server.handler",
                  Status::Internal("injected server fault"),
                  /*after=*/0, /*times=*/8);
    for (int i = 0; i < 8; ++i) Get(fx.server.port(), "/api/healthz");
  }
  fx.Alerts();  // -> pending
  fx.Alerts();  // -> firing: captures the incident

  std::string body = Body(Get(fx.server.port(), "/api/incidents"));
  auto json = Json::Parse(body);
  ASSERT_TRUE(json.ok()) << body.substr(0, 400);
  ASSERT_EQ((*json)["incidents"].AsArray().size(), 1u);
  const Json& incident = (*json)["incidents"][0];
  EXPECT_EQ(incident["slo"].AsString(), "http_error_rate");
  EXPECT_FALSE(incident["resolved"].AsBool());
  EXPECT_GT(incident["fired_at_unix_ms"].AsNumber(), 0.0);
  EXPECT_GT(incident["short_burn"].AsNumber(), 1.0);
  EXPECT_EQ(incident["metric"].AsString(), "raptor_http_errors_total");
  // The frozen bundle is the full diagnostic document from the moment of
  // firing: the alert inside it is still in the firing state even after
  // later polls move on.
  EXPECT_FALSE(incident["bundle"]["build"]["git_sha"].AsString().empty());
  EXPECT_EQ(
      SloFixture::StateOf(incident["bundle"]["alerts"], "http_error_rate"),
      "firing");
  // The frozen history carries the SLO's own burn trajectory.
  bool saw_burn = false;
  for (const Json& window : incident["history"].AsArray()) {
    if (window["name"].AsString() != "raptor_slo_short_burn") continue;
    saw_burn = true;
    EXPECT_EQ(window["labels"]["slo"].AsString(), "http_error_rate");
    EXPECT_FALSE(window["points"].AsArray().empty());
  }
  EXPECT_TRUE(saw_burn) << body.substr(0, 800);
  // The journal is scrape-visible.
  std::string metrics = Body(Get(fx.server.port(), "/api/metrics"));
  EXPECT_NE(metrics.find("raptor_incidents_total{slo=\"http_error_rate\"} 1"),
            std::string::npos);
  // The diagnostic bundle carries the journal without nested bundles.
  std::string bundle_body = Body(Get(fx.server.port(), "/api/debug/bundle"));
  auto bundle = Json::Parse(bundle_body);
  ASSERT_TRUE(bundle.ok()) << bundle_body.substr(0, 400);
  ASSERT_EQ((*bundle)["incidents"]["incidents"].AsArray().size(), 1u);
  EXPECT_TRUE((*bundle)["incidents"]["incidents"][0]["bundle"].is_null());

  // Recovery resolves the captured incident in place.
  for (int i = 0; i < 80; ++i) Get(fx.server.port(), "/api/healthz");
  fx.Alerts();  // -> ok
  std::string resolved = Body(Get(fx.server.port(), "/api/incidents"));
  auto rjson = Json::Parse(resolved);
  ASSERT_TRUE(rjson.ok()) << resolved.substr(0, 400);
  EXPECT_TRUE((*rjson)["incidents"][0]["resolved"].AsBool());
  EXPECT_GT((*rjson)["incidents"][0]["resolved_at_unix_ms"].AsNumber(), 0.0);
}

TEST(ServerTest, DashboardServesSelfContainedHtml) {
  ServerFixture fx;
  std::string response = Get(fx.server.port(), "/api/dashboard");
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("text/html"), std::string::npos);
  std::string body = Body(response);
  EXPECT_NE(body.find("ThreatRaptor dashboard"), std::string::npos);
  // The page polls the range API and ships every asset inline.
  EXPECT_NE(body.find("/api/metrics/range"), std::string::npos);
  EXPECT_NE(body.find("<style>"), std::string::npos);
  EXPECT_NE(body.find("<script>"), std::string::npos);
  // No external fetches: every src/href would have to leave the host.
  EXPECT_EQ(body.find("src=\"http"), std::string::npos);
  EXPECT_EQ(body.find("href=\"http"), std::string::npos);
  EXPECT_EQ(body.find("@import"), std::string::npos);
}

TEST(ServerTest, WatchMetricFilterStreamsMatchingFamilies) {
  ServerFixture fx;
  // The raptor_history_* self-metrics are pre-registered before the
  // collector starts, so the prefix matches regardless of which snapshot
  // (collector tick or direct fallback) serves the frame.
  std::string wire = Get(
      fx.server.port(),
      "/api/watch?count=2&interval_ms=10&metric=raptor_history");
  EXPECT_NE(wire.find("200 OK"), std::string::npos);
  EXPECT_NE(wire.find("text/event-stream"), std::string::npos);
  size_t frames = 0;
  for (size_t pos = wire.find("data: "); pos != std::string::npos;
       pos = wire.find("data: ", pos + 1)) {
    size_t end = wire.find('\n', pos);
    std::string payload = wire.substr(pos + 6, end - pos - 6);
    auto frame = Json::Parse(payload);
    ASSERT_TRUE(frame.ok()) << payload.substr(0, 200);
    EXPECT_GT((*frame)["t_unix_ms"].AsNumber(), 0.0);
    const Json::Array& families = (*frame)["families"].AsArray();
    EXPECT_FALSE(families.empty());
    for (const Json& family : families) {
      EXPECT_EQ(family["name"].AsString().rfind("raptor_history", 0), 0u)
          << family["name"].AsString();
    }
    ++frames;
  }
  EXPECT_EQ(frames, 2u);
  // A prefix matching nothing still streams well-formed (empty) frames.
  std::string nothing = Get(
      fx.server.port(), "/api/watch?count=1&interval_ms=10&metric=zzz_nope");
  size_t pos = nothing.find("data: ");
  ASSERT_NE(pos, std::string::npos);
  size_t end = nothing.find('\n', pos);
  auto frame = Json::Parse(nothing.substr(pos + 6, end - pos - 6));
  ASSERT_TRUE(frame.ok());
  EXPECT_TRUE((*frame)["families"].AsArray().empty());
}

TEST(ServerTest, MetricsRangeByteIdenticalAcrossQueryThreads) {
  ThreatRaptorOptions options;
  options.slo.enabled = false;
  options.history.enabled = false;  // No background threads: ticks are ours.
  ThreatRaptor system(options);
  audit::WorkloadGenerator gen;
  gen.GenerateBenign(3000, system.mutable_log());
  gen.InjectDataLeakageAttack(system.mutable_log());
  ASSERT_TRUE(system.FinalizeStorage().ok());
  HttpServer server;
  RegisterThreatRaptorApi(&server, &system);
  ASSERT_TRUE(server.Start(0).ok());

  const std::string query = "proc p read file f";
  // Warm the plan cache and any lazily-built access paths so every phase
  // below runs the identical plan.
  Post(server.port(), "/api/query?threads=1", query);

  // Each phase restarts history at the same manual-clock base, runs the
  // query at a different thread count, and asks for the one-second query
  // rate. Execution counters are thread-invariant and the clock restarts
  // identically, so the three HTTP bodies must match byte for byte.
  auto phase = [&](int threads) {
    auto clock = std::make_shared<obs::ManualClock>();
    obs::HistoryOptions history;
    history.clock = clock;
    obs::MetricsHistory::Default().Configure(history);
    obs::MetricsHistory::Default().CollectNow();  // Baseline edge sample.
    Post(server.port(), "/api/query?threads=" + std::to_string(threads),
         query);
    clock->AdvanceSeconds(1);
    obs::MetricsHistory::Default().CollectNow();
    return Body(Get(
        server.port(),
        "/api/metrics/range?name=raptor_queries_total"
        "&agg=rate&start_s=1700000000&end_s=1700000001&step_s=1"));
  };

  std::string one = phase(1);
  auto json = Json::Parse(one);
  ASSERT_TRUE(json.ok()) << one.substr(0, 400);
  ASSERT_EQ((*json)["series"].AsArray().size(), 1u) << one;
  const Json::Array& points = (*json)["series"][0]["points"].AsArray();
  ASSERT_EQ(points.size(), 1u) << one;
  // Exactly the one query executed inside the phase window.
  EXPECT_EQ(points[0][1].AsNumber(), 1.0);
  EXPECT_EQ(phase(2), one);
  EXPECT_EQ(phase(8), one);
}

// --- Debug-bundle capture on suite failure (CI artifact). ---

/// When the suite fails and RAPTOR_DEBUG_BUNDLE_DIR is set (the CI wires
/// it), capture /api/debug/bundle — with the obs rings still holding the
/// failing run's traces, logs, and slow entries — for artifact upload.
class BundleOnFailure : public ::testing::Environment {
 public:
  void TearDown() override {
    const char* dir = std::getenv("RAPTOR_DEBUG_BUNDLE_DIR");
    if (dir == nullptr || !::testing::UnitTest::GetInstance()->Failed()) {
      return;
    }
    ThreatRaptor system;
    HttpServer server;
    RegisterThreatRaptorApi(&server, &system);
    if (!server.Start(0).ok()) return;
    std::string bundle = Body(Get(server.port(), "/api/debug/bundle"));
    std::ofstream out(std::string(dir) + "/server_test_bundle.json");
    out << bundle;
  }
};

const ::testing::Environment* const kBundleOnFailure =
    ::testing::AddGlobalTestEnvironment(new BundleOnFailure);

}  // namespace
}  // namespace raptor::server
