// Tests for the synthetic OSCTI report generator and the pipeline's
// accuracy properties over generated reports.

#include <gtest/gtest.h>

#include <set>

#include "nlp/pipeline.h"
#include "nlp/report_gen.h"

namespace raptor::nlp {
namespace {

TEST(ReportGenTest, DeterministicForSeed) {
  ReportGenOptions opts;
  opts.seed = 42;
  ReportGenerator a(opts), b(opts);
  auto sa = a.RandomScript(6);
  auto sb = b.RandomScript(6);
  ASSERT_EQ(sa.size(), sb.size());
  for (size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(sa[i].subject, sb[i].subject);
    EXPECT_EQ(sa[i].object, sb[i].object);
  }
  EXPECT_EQ(a.Render(sa).text, b.Render(sb).text);
}

TEST(ReportGenTest, RenderMentionsEveryIoc) {
  ReportGenerator gen;
  auto script = gen.RandomScript(8);
  auto report = gen.Render(script);
  for (const std::string& ioc : report.iocs) {
    EXPECT_NE(report.text.find(ioc), std::string::npos) << ioc;
  }
  EXPECT_EQ(report.relations.size(), script.size());
}

TEST(ReportGenTest, LabelsUseLemmas) {
  ReportGenerator gen;
  auto report = gen.Render(gen.RandomScript(20));
  const Lexicon& lex = Lexicon::Default();
  for (const GeneratedLabel& label : report.relations) {
    EXPECT_TRUE(lex.IsRelationVerb(label.verb)) << label.verb;
  }
}

TEST(ReportGenTest, ScriptStepsRespectVerbObjectTypes) {
  ReportGenerator gen;
  IocRecognizer recognizer;
  for (const ScriptStep& step : gen.RandomScript(50)) {
    auto spans = recognizer.Recognize(step.object);
    ASSERT_EQ(spans.size(), 1u) << step.object;
    bool is_ip = spans[0].type == IocType::kIp;
    bool wants_ip = step.verb == VerbClass::kConnect ||
                    step.verb == VerbClass::kSend;
    EXPECT_EQ(is_ip, wants_ip) << step.object;
  }
}

/// Property: on generated reports the full pipeline's extraction stays
/// above realistic accuracy floors, and the no-protection ablation is
/// strictly worse. (The exact values for the default seed are reported by
/// bench_extraction E1b.)
class GeneratedAccuracyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GeneratedAccuracyTest, PipelineBeatsAblation) {
  ReportGenOptions opts;
  opts.seed = GetParam();
  ReportGenerator gen(opts);

  size_t full_tp = 0, full_fp = 0, full_fn = 0;
  size_t ablated_tp = 0, ablated_found = 0;
  ExtractionPipeline full;
  PipelineOptions no_protection;
  no_protection.enable_ioc_protection = false;
  ExtractionPipeline ablated(no_protection);

  for (int d = 0; d < 15; ++d) {
    auto report = gen.Render(gen.RandomScript(4 + d % 6));
    std::set<std::string> truth;
    for (const auto& r : report.relations) {
      truth.insert(r.subject + "|" + r.verb + "|" + r.object);
    }
    auto score = [&truth](const ExtractionResult& result, size_t* tp,
                          size_t* fp, size_t* fn) {
      std::set<std::string> got;
      for (const auto& e : result.graph.edges()) {
        got.insert(result.graph.node(e.src).text + "|" + e.verb + "|" +
                   result.graph.node(e.dst).text);
      }
      for (const auto& g : got) {
        if (truth.count(g) > 0) {
          ++*tp;
        } else if (fp != nullptr) {
          ++*fp;
        }
      }
      if (fn != nullptr) {
        for (const auto& t : truth) {
          if (got.count(t) == 0) ++*fn;
        }
      }
      return got.size();
    };
    score(full.Extract(report.text), &full_tp, &full_fp, &full_fn);
    ablated_found +=
        score(ablated.Extract(report.text), &ablated_tp, nullptr, nullptr);
  }

  double precision =
      full_tp + full_fp == 0
          ? 0.0
          : static_cast<double>(full_tp) / (full_tp + full_fp);
  double recall = full_tp + full_fn == 0
                      ? 0.0
                      : static_cast<double>(full_tp) / (full_tp + full_fn);
  EXPECT_GE(precision, 0.75) << "seed " << GetParam();
  EXPECT_GE(recall, 0.85) << "seed " << GetParam();
  // The ablation extracts far fewer correct relations.
  EXPECT_LT(ablated_tp, full_tp / 2) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratedAccuracyTest,
                         ::testing::Values(3, 11, 29, 47));

TEST(ReportGenTest, GeneratedReportSynthesizesAndHunts) {
  // A generated report must flow through the whole downstream pipeline:
  // extraction -> synthesis succeeds with mappable patterns.
  ReportGenerator gen;
  ExtractionPipeline pipeline;
  auto report = gen.Render(gen.RandomScript(6));
  auto extraction = pipeline.Extract(report.text);
  EXPECT_GT(extraction.graph.num_edges(), 0u);
}

}  // namespace
}  // namespace raptor::nlp
