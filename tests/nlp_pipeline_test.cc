// Tests for the full threat behavior extraction pipeline (Algorithm 1).

#include <gtest/gtest.h>

#include <set>

#include "nlp/pipeline.h"

namespace raptor::nlp {
namespace {

/// Edge set of a graph as "src verb dst" strings for order-free comparison.
std::set<std::string> EdgeSet(const ThreatBehaviorGraph& g) {
  std::set<std::string> out;
  for (const BehaviorEdge& e : g.edges()) {
    out.insert(g.node(e.src).text + " " + e.verb + " " + g.node(e.dst).text);
  }
  return out;
}

constexpr const char* kLeakageReport =
    "The attacker exploited the Shellshock vulnerability to penetrate into "
    "the victim host. After the penetration, the attacker scanned the file "
    "system for valuable assets. The process /bin/tar read the file "
    "/etc/passwd. /bin/tar then wrote the collected data to /tmp/data.tar. "
    "The process /bin/gzip read /tmp/data.tar and wrote the compressed "
    "archive /tmp/data.tar.gz. Finally, the process /usr/bin/curl read "
    "/tmp/data.tar.gz and sent the archive to the IP 161.35.10.8.";

TEST(PipelineTest, DataLeakageReportExtractsExpectedEdges) {
  ExtractionPipeline pipeline;
  ExtractionResult result = pipeline.Extract(kLeakageReport);
  std::set<std::string> expected = {
      "/bin/tar read /etc/passwd",
      "/bin/tar write /tmp/data.tar",
      "/bin/gzip read /tmp/data.tar",
      "/bin/gzip write /tmp/data.tar.gz",
      "/usr/bin/curl read /tmp/data.tar.gz",
      "/usr/bin/curl send /tmp/data.tar.gz",  // "sent the archive" coref
      "/usr/bin/curl send 161.35.10.8",
  };
  EXPECT_EQ(EdgeSet(result.graph), expected);
}

TEST(PipelineTest, SequenceNumbersFollowTextOrder) {
  ExtractionPipeline pipeline;
  ExtractionResult result = pipeline.Extract(kLeakageReport);
  const auto& edges = result.graph.edges();
  ASSERT_GE(edges.size(), 2u);
  for (size_t i = 0; i < edges.size(); ++i) {
    EXPECT_EQ(edges[i].sequence, static_cast<int>(i) + 1);
    if (i > 0) {
      EXPECT_GE(edges[i].text_offset, edges[i - 1].text_offset);
    }
  }
}

TEST(PipelineTest, PronounCoreference) {
  ExtractionPipeline pipeline;
  auto result = pipeline.Extract(
      "The process /bin/bash read /etc/shadow. It then connected to the IP "
      "161.35.10.8.");
  auto edges = EdgeSet(result.graph);
  EXPECT_TRUE(edges.count("/bin/bash connect 161.35.10.8")) << [&] {
    std::string s;
    for (auto& e : edges) s += e + "\n";
    return s;
  }();
}

TEST(PipelineTest, DefiniteNpCoreference) {
  ExtractionPipeline pipeline;
  auto result = pipeline.Extract(
      "The process /bin/gzip wrote /tmp/data.tar.gz. The process "
      "/usr/bin/scp sent the archive to the IP 161.35.10.8.");
  auto edges = EdgeSet(result.graph);
  EXPECT_TRUE(edges.count("/usr/bin/scp send /tmp/data.tar.gz"));
  EXPECT_TRUE(edges.count("/usr/bin/scp send 161.35.10.8"));
}

TEST(PipelineTest, CorefDisabledDropsPronounEdges) {
  PipelineOptions opts;
  opts.enable_coreference = false;
  ExtractionPipeline pipeline(opts);
  auto result = pipeline.Extract(
      "The process /bin/bash read /etc/shadow. It then connected to the IP "
      "161.35.10.8.");
  EXPECT_FALSE(EdgeSet(result.graph).count("/bin/bash connect 161.35.10.8"));
}

TEST(PipelineTest, IocMergeUnifiesVariants) {
  ExtractionPipeline pipeline;
  auto result = pipeline.Extract(
      "The malware dropped /tmp/payload_v1.bin on the host. The process "
      "/bin/bash executed /tmp/payload_v2.bin immediately.");
  // The two payload variants merge into one node (same type, same
  // extension, high character overlap).
  int payload_nodes = 0;
  for (const IocEntity& n : result.graph.nodes()) {
    if (n.text.find("payload") != std::string::npos) ++payload_nodes;
  }
  EXPECT_EQ(payload_nodes, 1);
}

TEST(PipelineTest, MergeKeepsDistinctDerivedFiles) {
  ExtractionPipeline pipeline;
  auto result = pipeline.Extract(
      "The process /bin/gzip read /tmp/data.tar and wrote "
      "/tmp/data.tar.gz.");
  // Archive and compressed archive must stay separate entities.
  std::set<std::string> names;
  for (const IocEntity& n : result.graph.nodes()) names.insert(n.text);
  EXPECT_TRUE(names.count("/tmp/data.tar"));
  EXPECT_TRUE(names.count("/tmp/data.tar.gz"));
}

TEST(PipelineTest, MergeDisabledKeepsVariantsSeparate) {
  PipelineOptions opts;
  opts.enable_ioc_merge = false;
  ExtractionPipeline pipeline(opts);
  auto result = pipeline.Extract(
      "The malware dropped /tmp/payload_v1.bin on the host. The process "
      "/bin/bash executed /tmp/payload_v2.bin immediately.");
  int payload_nodes = 0;
  for (const IocEntity& n : result.graph.nodes()) {
    if (n.text.find("payload") != std::string::npos) ++payload_nodes;
  }
  EXPECT_EQ(payload_nodes, 2);
}

TEST(PipelineTest, PassiveVoiceRelation) {
  ExtractionPipeline pipeline;
  auto result = pipeline.Extract(
      "The file /tmp/cracker was downloaded by /bin/bash.");
  auto edges = EdgeSet(result.graph);
  EXPECT_TRUE(edges.count("/bin/bash download /tmp/cracker")) << [&] {
    std::string s;
    for (auto& e : edges) s += e + "\n";
    return s;
  }();
}

TEST(PipelineTest, WithoutProtectionRecallCollapses) {
  ExtractionPipeline full;
  PipelineOptions ablated_opts;
  ablated_opts.enable_ioc_protection = false;
  ExtractionPipeline ablated(ablated_opts);

  auto full_result = full.Extract(kLeakageReport);
  auto ablated_result = ablated.Extract(kLeakageReport);
  // The paper's headline ablation: without IOC protection the tokenizer
  // shatters the path-like indicators, so both IOC and relation recall
  // collapse.
  EXPECT_GT(full_result.raw_iocs.size(), ablated_result.raw_iocs.size());
  EXPECT_GT(full_result.graph.num_edges(),
            ablated_result.graph.num_edges());
}

TEST(PipelineTest, MultiBlockDocument) {
  ExtractionPipeline pipeline;
  auto result = pipeline.Extract(
      "# Threat report\n"
      "\n"
      "The process /bin/a read /etc/x.\n"
      "\n"
      "The process /bin/b wrote /tmp/y.\n");
  auto edges = EdgeSet(result.graph);
  EXPECT_TRUE(edges.count("/bin/a read /etc/x"));
  EXPECT_TRUE(edges.count("/bin/b write /tmp/y"));
}

TEST(PipelineTest, CorefDoesNotCrossBlocks) {
  ExtractionPipeline pipeline;
  auto result = pipeline.Extract(
      "The process /bin/a read /etc/x.\n"
      "\n"
      "It connected to the IP 1.2.3.4.\n");
  // "It" has no antecedent within its own block.
  EXPECT_FALSE(EdgeSet(result.graph).count("/bin/a connect 1.2.3.4"));
}

TEST(PipelineTest, EmptyAndIrrelevantInput) {
  ExtractionPipeline pipeline;
  EXPECT_EQ(pipeline.Extract("").graph.num_edges(), 0u);
  auto result = pipeline.Extract(
      "Lorem ipsum dolor sit amet, consectetur adipiscing elit.");
  EXPECT_EQ(result.graph.num_edges(), 0u);
  EXPECT_TRUE(result.raw_iocs.empty());
}

TEST(PipelineTest, DuplicateRelationsDeduplicated) {
  ExtractionPipeline pipeline;
  auto result = pipeline.Extract(
      "/bin/tar read /etc/passwd. /bin/tar read /etc/passwd.");
  int count = 0;
  for (const BehaviorEdge& e : result.graph.edges()) {
    if (e.verb == "read") ++count;
  }
  EXPECT_EQ(count, 1);
}

TEST(PipelineTest, RelationVerbClosestToObjectWins) {
  ExtractionPipeline pipeline;
  auto result = pipeline.Extract(
      "The process /bin/gzip read /tmp/data.tar and wrote "
      "/tmp/data.tar.gz.");
  auto edges = EdgeSet(result.graph);
  EXPECT_TRUE(edges.count("/bin/gzip read /tmp/data.tar"));
  EXPECT_TRUE(edges.count("/bin/gzip write /tmp/data.tar.gz"));
  EXPECT_FALSE(edges.count("/bin/gzip read /tmp/data.tar.gz"));
}

TEST(PipelineTest, UnmappableTypesStillBecomeNodes) {
  ExtractionPipeline pipeline;
  auto result = pipeline.Extract(
      "The dropper used CVE-2014-6271 and contacted evil-c2.com. The "
      "process /bin/bash read /etc/shadow.");
  bool saw_cve = false;
  for (const IocEntity& n : result.graph.nodes()) {
    if (n.type == IocType::kCve) saw_cve = true;
  }
  EXPECT_TRUE(saw_cve);
}

TEST(PipelineTest, GraphRenderings) {
  ExtractionPipeline pipeline;
  auto result = pipeline.Extract("/bin/tar read /etc/passwd.");
  EXPECT_NE(result.graph.ToString().find("-[read]->"), std::string::npos);
  std::string dot = result.graph.ToDot();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("/etc/passwd"), std::string::npos);
}


TEST(PipelineTest, ObjectListCoordination) {
  ExtractionPipeline pipeline;
  auto result = pipeline.Extract(
      "The process /bin/tar read /etc/passwd, /etc/shadow, and "
      "/etc/hosts.");
  auto edges = EdgeSet(result.graph);
  EXPECT_TRUE(edges.count("/bin/tar read /etc/passwd"));
  EXPECT_TRUE(edges.count("/bin/tar read /etc/shadow"));
  EXPECT_TRUE(edges.count("/bin/tar read /etc/hosts"));
  EXPECT_EQ(result.graph.num_edges(), 3u);
}

TEST(PipelineTest, AsWellAsCoordination) {
  ExtractionPipeline pipeline;
  auto result = pipeline.Extract(
      "The malware /tmp/evil.bin deleted /var/log/auth.log as well as "
      "/var/log/syslog.");
  auto edges = EdgeSet(result.graph);
  EXPECT_TRUE(edges.count("/tmp/evil.bin delete /var/log/auth.log"));
  EXPECT_TRUE(edges.count("/tmp/evil.bin delete /var/log/syslog"));
}

TEST(PipelineTest, SubjectCoordination) {
  ExtractionPipeline pipeline;
  auto result = pipeline.Extract(
      "/bin/curl and /usr/bin/wget connected to the IP 203.0.113.9.");
  auto edges = EdgeSet(result.graph);
  EXPECT_TRUE(edges.count("/bin/curl connect 203.0.113.9"));
  EXPECT_TRUE(edges.count("/usr/bin/wget connect 203.0.113.9"));
}

}  // namespace
}  // namespace raptor::nlp
