// Tests for durable trace snapshots (src/storage/persist/snapshot.*).

#include <gtest/gtest.h>

#include <cstdio>

#include "audit/generator.h"
#include "storage/persist/snapshot.h"

namespace raptor::persist {
namespace {

using audit::AuditLog;

AuditLog MakeTrace(size_t benign = 2000) {
  AuditLog log;
  audit::WorkloadGenerator gen;
  gen.GenerateBenign(benign, &log);
  gen.InjectDataLeakageAttack(&log);
  return log;
}

void ExpectLogsEqual(const AuditLog& a, const AuditLog& b) {
  ASSERT_EQ(a.entity_count(), b.entity_count());
  ASSERT_EQ(a.event_count(), b.event_count());
  for (size_t i = 0; i < a.entity_count(); ++i) {
    EXPECT_EQ(a.entity(i).Key(), b.entity(i).Key());
  }
  for (size_t i = 0; i < a.event_count(); ++i) {
    const auto& x = a.event(i);
    const auto& y = b.event(i);
    EXPECT_EQ(x.subject, y.subject);
    EXPECT_EQ(x.object, y.object);
    EXPECT_EQ(x.op, y.op);
    EXPECT_EQ(x.start_time, y.start_time);
    EXPECT_EQ(x.end_time, y.end_time);
    EXPECT_EQ(x.bytes, y.bytes);
    EXPECT_EQ(x.merged_count, y.merged_count);
  }
}

TEST(SnapshotTest, EncodeDecodeRoundTrip) {
  AuditLog log = MakeTrace();
  std::string data = EncodeSnapshot(log);
  auto loaded = DecodeSnapshot(data);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectLogsEqual(log, *loaded);
}

TEST(SnapshotTest, EmptyLogRoundTrips) {
  AuditLog log;
  auto loaded = DecodeSnapshot(EncodeSnapshot(log));
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->entity_count(), 0u);
  EXPECT_EQ(loaded->event_count(), 0u);
}

TEST(SnapshotTest, RejectsBadMagic) {
  std::string data = EncodeSnapshot(MakeTrace(50));
  data[0] = 'X';
  EXPECT_TRUE(DecodeSnapshot(data).status().IsParseError());
}

TEST(SnapshotTest, RejectsTruncation) {
  std::string data = EncodeSnapshot(MakeTrace(50));
  for (size_t keep : {data.size() - 5, data.size() / 2, size_t{10}}) {
    EXPECT_FALSE(DecodeSnapshot(data.substr(0, keep)).ok()) << keep;
  }
}

TEST(SnapshotTest, RejectsBitFlip) {
  std::string data = EncodeSnapshot(MakeTrace(50));
  data[data.size() / 2] ^= 0x40;
  EXPECT_TRUE(DecodeSnapshot(data).status().IsParseError());
}

TEST(SnapshotTest, RejectsFutureVersion) {
  AuditLog log;
  std::string data = EncodeSnapshot(log);
  data[8] = 99;  // version byte (little endian u32 after 8-byte magic)
  // Fix the checksum so only the version check can fire.
  uint32_t crc = Crc32(std::string_view(data).substr(0, data.size() - 4));
  for (int i = 0; i < 4; ++i) {
    data[data.size() - 4 + static_cast<size_t>(i)] =
        static_cast<char>((crc >> (8 * i)) & 0xFF);
  }
  EXPECT_TRUE(DecodeSnapshot(data).status().IsUnsupported());
}

TEST(SnapshotTest, SaveLoadFile) {
  std::string path = ::testing::TempDir() + "/raptor_snapshot_test.bin";
  AuditLog log = MakeTrace();
  ASSERT_TRUE(SaveSnapshot(log, path).ok());
  auto loaded = LoadSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectLogsEqual(log, *loaded);
  std::remove(path.c_str());
}

TEST(SnapshotTest, LoadMissingFileIsNotFound) {
  EXPECT_TRUE(
      LoadSnapshot("/nonexistent/raptor.bin").status().IsNotFound());
}

TEST(SnapshotTest, Crc32KnownVector) {
  // Standard IEEE CRC32 of "123456789".
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0u);
}

TEST(SnapshotTest, DeterministicEncoding) {
  AuditLog a = MakeTrace(300);
  AuditLog b = MakeTrace(300);
  EXPECT_EQ(EncodeSnapshot(a), EncodeSnapshot(b));
}

}  // namespace
}  // namespace raptor::persist
