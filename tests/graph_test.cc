// Tests for the embedded graph backend (src/storage/graph).

#include <gtest/gtest.h>

#include "audit/generator.h"
#include "storage/graph/graph_store.h"

namespace raptor::graph {
namespace {

using audit::AuditLog;
using audit::EntityId;
using audit::EntityType;
using audit::Operation;
using audit::SystemEvent;

SystemEvent MakeEvent(EntityId subj, EntityId obj, Operation op,
                      audit::Timestamp ts) {
  SystemEvent ev;
  ev.subject = subj;
  ev.object = obj;
  ev.op = op;
  ev.start_time = ts;
  ev.end_time = ts;
  return ev;
}

/// Builds: bash -fork-> w1 -fork-> w2 -read-> /etc/secret, plus a direct
/// bash -read-> /etc/secret at the end.
struct ChainFixture {
  AuditLog log;
  EntityId bash, w1, w2, secret;

  ChainFixture() {
    bash = log.InternProcess(1, "/bin/bash");
    w1 = log.InternProcess(2, "/w1");
    w2 = log.InternProcess(3, "/w2");
    secret = log.InternFile("/etc/secret");
    log.AddEvent(MakeEvent(bash, w1, Operation::kFork, 10));
    log.AddEvent(MakeEvent(w1, w2, Operation::kFork, 20));
    log.AddEvent(MakeEvent(w2, secret, Operation::kRead, 30));
    log.AddEvent(MakeEvent(bash, secret, Operation::kRead, 40));
  }
};

NodePredicate IsFile(const std::string& path) {
  return [path](const audit::SystemEntity& e) {
    return e.type == EntityType::kFile && e.path == path;
  };
}

TEST(GraphStoreTest, BuildsAdjacency) {
  ChainFixture fx;
  GraphStore g(fx.log);
  EXPECT_EQ(g.num_nodes(), fx.log.entity_count());
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.OutEdges(fx.bash).size(), 2u);
  EXPECT_EQ(g.InEdges(fx.secret).size(), 2u);
  EXPECT_EQ(g.OutEdges(fx.secret).size(), 0u);
}

TEST(GraphStoreTest, FindNodes) {
  ChainFixture fx;
  GraphStore g(fx.log);
  auto files = g.FindNodes([](const audit::SystemEntity& e) {
    return e.type == EntityType::kFile;
  });
  ASSERT_EQ(files.size(), 1u);
  EXPECT_EQ(files[0], fx.secret);
}

TEST(GraphStoreTest, SingleHopPath) {
  ChainFixture fx;
  GraphStore g(fx.log);
  PathConstraints c;
  c.min_hops = 1;
  c.max_hops = 1;
  c.final_ops = {Operation::kRead};
  auto paths = g.FindPaths({fx.bash}, IsFile("/etc/secret"), c);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].hops.size(), 1u);
  EXPECT_EQ(paths[0].source, fx.bash);
  EXPECT_EQ(paths[0].sink, fx.secret);
}

TEST(GraphStoreTest, MultiHopPathThroughForkChain) {
  ChainFixture fx;
  GraphStore g(fx.log);
  PathConstraints c;
  c.min_hops = 1;
  c.max_hops = 3;
  c.final_ops = {Operation::kRead};
  auto paths = g.FindPaths({fx.bash}, IsFile("/etc/secret"), c);
  // Direct read (1 hop) and fork-fork-read (3 hops).
  ASSERT_EQ(paths.size(), 2u);
}

TEST(GraphStoreTest, MinHopsExcludesShortPaths) {
  ChainFixture fx;
  GraphStore g(fx.log);
  PathConstraints c;
  c.min_hops = 2;
  c.max_hops = 3;
  c.final_ops = {Operation::kRead};
  auto paths = g.FindPaths({fx.bash}, IsFile("/etc/secret"), c);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].hops.size(), 3u);
}

TEST(GraphStoreTest, MaxHopsExcludesLongPaths) {
  ChainFixture fx;
  GraphStore g(fx.log);
  PathConstraints c;
  c.min_hops = 1;
  c.max_hops = 2;
  c.final_ops = {Operation::kRead};
  auto paths = g.FindPaths({fx.bash}, IsFile("/etc/secret"), c);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].hops.size(), 1u);
}

TEST(GraphStoreTest, FinalOpFilters) {
  ChainFixture fx;
  GraphStore g(fx.log);
  PathConstraints c;
  c.min_hops = 1;
  c.max_hops = 3;
  c.final_ops = {Operation::kWrite};
  EXPECT_TRUE(g.FindPaths({fx.bash}, IsFile("/etc/secret"), c).empty());
  c.final_ops.clear();  // empty accepts any op
  EXPECT_FALSE(g.FindPaths({fx.bash}, IsFile("/etc/secret"), c).empty());
}

TEST(GraphStoreTest, MonotonicTimeEnforced) {
  AuditLog log;
  EntityId a = log.InternProcess(1, "/a");
  EntityId b = log.InternProcess(2, "/b");
  EntityId f = log.InternFile("/x");
  // Fork happens AFTER the read: the 2-hop path a->b->f violates time order.
  log.AddEvent(MakeEvent(a, b, Operation::kFork, 100));
  log.AddEvent(MakeEvent(b, f, Operation::kRead, 50));
  GraphStore g(log);
  PathConstraints c;
  c.min_hops = 2;
  c.max_hops = 2;
  auto paths = g.FindPaths({a}, IsFile("/x"), c);
  EXPECT_TRUE(paths.empty());
  c.monotonic_time = false;
  EXPECT_EQ(g.FindPaths({a}, IsFile("/x"), c).size(), 1u);
}

TEST(GraphStoreTest, TimeWindowFiltersHops) {
  ChainFixture fx;
  GraphStore g(fx.log);
  PathConstraints c;
  c.min_hops = 1;
  c.max_hops = 3;
  c.final_ops = {Operation::kRead};
  c.window_start = 35;  // only the direct read at t=40 qualifies
  auto paths = g.FindPaths({fx.bash}, IsFile("/etc/secret"), c);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].hops.size(), 1u);
}

TEST(GraphStoreTest, IntermediateOpsRestrictChaining) {
  AuditLog log;
  EntityId a = log.InternProcess(1, "/a");
  EntityId b = log.InternProcess(2, "/b");
  EntityId f = log.InternFile("/x");
  // Chain via a kill event (not a default chaining op).
  log.AddEvent(MakeEvent(a, b, Operation::kKill, 1));
  log.AddEvent(MakeEvent(b, f, Operation::kRead, 2));
  GraphStore g(log);
  PathConstraints c;
  c.min_hops = 2;
  c.max_hops = 2;
  EXPECT_TRUE(g.FindPaths({a}, IsFile("/x"), c).empty());
  c.intermediate_ops = {Operation::kKill};
  EXPECT_EQ(g.FindPaths({a}, IsFile("/x"), c).size(), 1u);
}

TEST(GraphStoreTest, CyclesDoNotLoopForever) {
  AuditLog log;
  EntityId a = log.InternProcess(1, "/a");
  EntityId b = log.InternProcess(2, "/b");
  EntityId f = log.InternFile("/x");
  // a forks b, b forks a (cycle), b reads f.
  log.AddEvent(MakeEvent(a, b, Operation::kFork, 1));
  log.AddEvent(MakeEvent(b, a, Operation::kFork, 2));
  log.AddEvent(MakeEvent(b, f, Operation::kRead, 3));
  GraphStore g(log);
  PathConstraints c;
  c.min_hops = 1;
  c.max_hops = 8;
  auto paths = g.FindPaths({a}, IsFile("/x"), c);
  // Simple paths only: a->b->f.
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].hops.size(), 2u);
}

TEST(GraphStoreTest, MultipleSources) {
  ChainFixture fx;
  GraphStore g(fx.log);
  PathConstraints c;
  c.min_hops = 1;
  c.max_hops = 1;
  c.final_ops = {Operation::kRead};
  auto paths = g.FindPaths({fx.bash, fx.w2}, IsFile("/etc/secret"), c);
  EXPECT_EQ(paths.size(), 2u);
}

TEST(GraphStoreTest, StatsCountTraversals) {
  ChainFixture fx;
  GraphStore g(fx.log);
  g.ResetStats();
  PathConstraints c;
  c.min_hops = 1;
  c.max_hops = 3;
  (void)g.FindPaths({fx.bash}, IsFile("/etc/secret"), c);
  EXPECT_GT(g.stats().edges_traversed, 0u);
  EXPECT_GT(g.stats().nodes_expanded, 0u);
  g.ResetStats();
  EXPECT_EQ(g.stats().edges_traversed, 0u);
}

TEST(GraphStoreTest, LargeWorkloadSmoke) {
  AuditLog log;
  audit::WorkloadGenerator gen;
  gen.GenerateBenign(20000, &log);
  auto ids = gen.InjectForkChain("/evil/root", 3, Operation::kWrite,
                                 "/tmp/out", &log);
  GraphStore g(log);
  PathConstraints c;
  c.min_hops = 4;
  c.max_hops = 4;
  c.final_ops = {Operation::kWrite};
  auto sources = g.FindNodes([](const audit::SystemEntity& e) {
    return e.type == EntityType::kProcess && e.exename == "/evil/root";
  });
  auto paths = g.FindPaths(sources, IsFile("/tmp/out"), c);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].hops, ids);
}

}  // namespace
}  // namespace raptor::graph
