// Tests for the data-statistics subsystem (storage/stats/) and its
// consumers: the streaming sketches, per-table/per-column statistics with
// warmup + deterministic row sampling, resource accounting, graph degree
// distributions, the cardinality estimator's accuracy gate (median q-error
// <= 2 on a bench-scale corpus) and robustness on degenerate inputs, and
// the bounded misestimate journal's worst-kept retention.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "audit/generator.h"
#include "audit/log.h"
#include "engine/engine.h"
#include "engine/estimator.h"
#include "obs/misestimate_journal.h"
#include "obs/resource.h"
#include "storage/graph/graph_store.h"
#include "storage/relational/database.h"
#include "storage/stats/sketches.h"
#include "storage/stats/table_statistics.h"
#include "tbql/analyzer.h"
#include "tbql/parser.h"

namespace raptor {
namespace {

// --- Sketches. ---

TEST(DataStatsSketchTest, HyperLogLogIsNearExactAtSmallCardinality) {
  stats::HyperLogLog hll;
  for (uint64_t i = 0; i < 200; ++i) hll.Add(stats::MixHash(i));
  // Linear counting covers this regime; expect a tight answer.
  EXPECT_NEAR(hll.Estimate(), 200.0, 10.0);
  EXPECT_EQ(hll.AddCount(), 200u);
}

TEST(DataStatsSketchTest, HyperLogLogWithinRelativeErrorAtLargeCardinality) {
  stats::HyperLogLog hll;
  constexpr uint64_t kDistinct = 50'000;
  for (uint64_t i = 0; i < kDistinct; ++i) hll.Add(stats::MixHash(i));
  // Precision 10 gives ~3.2% standard error; 10% is three sigmas.
  EXPECT_NEAR(hll.Estimate(), static_cast<double>(kDistinct),
              0.10 * kDistinct);
}

TEST(DataStatsSketchTest, HyperLogLogIgnoresDuplicates) {
  stats::HyperLogLog hll;
  for (uint64_t i = 0; i < 10'000; ++i) hll.Add(stats::MixHash(i % 100));
  EXPECT_NEAR(hll.Estimate(), 100.0, 10.0);
}

TEST(DataStatsSketchTest, SpaceSavingIsExactUnderCapacity) {
  stats::SpaceSavingTopK sketch(8);
  for (int i = 0; i < 5; ++i) sketch.Add("a");
  for (int i = 0; i < 3; ++i) sketch.Add("b");
  sketch.Add("c");
  auto top = sketch.TopK();
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].key, "a");
  EXPECT_EQ(top[0].count, 5u);
  EXPECT_EQ(top[0].error, 0u);
  EXPECT_EQ(top[1].key, "b");
  EXPECT_EQ(top[1].count, 3u);
  EXPECT_EQ(top[2].key, "c");
  EXPECT_EQ(top[2].count, 1u);
  EXPECT_EQ(sketch.TotalCount(), 9u);
  EXPECT_EQ(sketch.MaxGuaranteedCount(), 5u);
  ASSERT_TRUE(sketch.EstimateCount("b").has_value());
  EXPECT_EQ(*sketch.EstimateCount("b"), 3u);
  EXPECT_FALSE(sketch.EstimateCount("zz").has_value());
}

TEST(DataStatsSketchTest, SpaceSavingKeepsHeavyValueUnderEviction) {
  // One value takes 50 of 150 adds, interleaved with 100 singletons that
  // force constant eviction in a capacity-4 sketch. The Space-Saving
  // guarantee: any value with true count > total/capacity stays tracked,
  // its reported count is an upper bound, and count - error a lower bound.
  stats::SpaceSavingTopKInt sketch(4);
  for (int64_t i = 0; i < 100; ++i) {
    sketch.Add(0);
    sketch.Add(1000 + i);
    if (i % 2 == 0) sketch.Add(0);
  }
  auto est = sketch.EstimateCount(0);
  ASSERT_TRUE(est.has_value());
  EXPECT_GE(*est, 150u);
  auto top = sketch.TopK();
  ASSERT_FALSE(top.empty());
  EXPECT_EQ(top[0].key, 0);
  EXPECT_LE(top[0].count - top[0].error, 150u);
  EXPECT_EQ(sketch.TrackedCount(), 4u);
}

TEST(DataStatsSketchTest, SpaceSavingIsDeterministic) {
  stats::SpaceSavingTopK a(4), b(4);
  for (int i = 0; i < 500; ++i) {
    const std::string key = "k" + std::to_string(i % 23);
    a.Add(key);
    b.Add(key);
  }
  auto ta = a.TopK(), tb = b.TopK();
  ASSERT_EQ(ta.size(), tb.size());
  for (size_t i = 0; i < ta.size(); ++i) {
    EXPECT_EQ(ta[i].key, tb[i].key);
    EXPECT_EQ(ta[i].count, tb[i].count);
    EXPECT_EQ(ta[i].error, tb[i].error);
  }
}

TEST(DataStatsSketchTest, EquiDepthHistogramUniformSelectivity) {
  stats::EquiDepthHistogram hist;
  for (int64_t v = 0; v < 10'000; ++v) hist.Add(v);
  EXPECT_EQ(hist.Count(), 10'000u);
  EXPECT_NEAR(hist.SelectivityBetween(0, 4999), 0.5, 0.05);
  EXPECT_NEAR(hist.SelectivityBetween(std::nullopt, 4999), 0.5, 0.05);
  EXPECT_NEAR(hist.SelectivityBetween(2500, std::nullopt), 0.75, 0.05);
  EXPECT_DOUBLE_EQ(hist.SelectivityBetween(std::nullopt, std::nullopt), 1.0);
  auto buckets = hist.Buckets();
  ASSERT_FALSE(buckets.empty());
  uint64_t mass = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    if (i > 0) {
      EXPECT_GE(buckets[i].lo, buckets[i - 1].lo);
    }
    EXPECT_LE(buckets[i].lo, buckets[i].hi);
    mass += buckets[i].est_count;
  }
  // Equal-mass buckets scaled to the true count.
  EXPECT_NEAR(static_cast<double>(mass), 10'000.0, 1'000.0);
}

TEST(DataStatsSketchTest, EquiDepthHistogramOutsideObservedRangeIsZero) {
  // Regression: a queried range entirely outside the observed [min, max]
  // must clamp to exactly 0, never extrapolate from the sample.
  stats::EquiDepthHistogram hist;
  for (int64_t v = 100; v <= 200; ++v) hist.Add(v);
  EXPECT_DOUBLE_EQ(hist.SelectivityBetween(201, 300), 0.0);
  EXPECT_DOUBLE_EQ(hist.SelectivityBetween(std::nullopt, 99), 0.0);
  EXPECT_DOUBLE_EQ(hist.SelectivityBetween(201, std::nullopt), 0.0);
  EXPECT_DOUBLE_EQ(hist.SelectivityBetween(0, 50), 0.0);
  // Ranges touching the exact extremes are NOT outside.
  EXPECT_GT(hist.SelectivityBetween(200, 300), 0.0);
  EXPECT_GT(hist.SelectivityBetween(std::nullopt, 100), 0.0);
}

TEST(DataStatsSketchTest,
     EquiDepthHistogramClampsAgainstTrueExtremesNotSample) {
  // The reservoir may evict the true minimum/maximum from the sample; the
  // clamp must use the exact streaming min/max, so a range beyond the
  // sampled values but inside the observed extremes still answers from the
  // sample (possibly 0) while a range beyond the true extremes is 0 by
  // the clamp even though the sample can no longer witness that.
  stats::EquiDepthHistogram hist(/*sample_capacity=*/64, /*num_buckets=*/8);
  for (int64_t v = 0; v < 100'000; ++v) hist.Add(v);
  ASSERT_EQ(hist.Min(), std::optional<int64_t>{0});
  ASSERT_EQ(hist.Max(), std::optional<int64_t>{99'999});
  EXPECT_DOUBLE_EQ(hist.SelectivityBetween(100'000, 200'000), 0.0);
  EXPECT_DOUBLE_EQ(hist.SelectivityBetween(std::nullopt, -1), 0.0);
  // Inside the observed range the estimate stays sane (fraction in [0,1]).
  double mid = hist.SelectivityBetween(25'000, 75'000);
  EXPECT_GE(mid, 0.0);
  EXPECT_LE(mid, 1.0);
}

TEST(DataStatsSketchTest, EquiDepthHistogramEmptyIsZero) {
  stats::EquiDepthHistogram hist;
  EXPECT_EQ(hist.Count(), 0u);
  EXPECT_DOUBLE_EQ(hist.SelectivityBetween(0, 100), 0.0);
  EXPECT_FALSE(hist.Min().has_value());
  EXPECT_FALSE(hist.Max().has_value());
  EXPECT_TRUE(hist.Buckets().empty());
}

TEST(DataStatsSketchTest, StringReservoirIsBoundedAndDeterministic) {
  stats::StringReservoir a(256), b(256);
  for (int i = 0; i < 10'000; ++i) {
    const std::string v = "/path/" + std::to_string(i);
    a.Add(v);
    b.Add(v);
  }
  EXPECT_EQ(a.Count(), 10'000u);
  EXPECT_EQ(a.Sample().size(), 256u);
  EXPECT_EQ(a.Sample(), b.Sample());
}

// --- TableStatistics: warmup, sampling, batch reconciliation. ---

rel::Schema TestSchema() {
  return rel::Schema{{"id", rel::ColumnType::kInt64},
                     {"name", rel::ColumnType::kString},
                     {"code", rel::ColumnType::kInt64}};
}

TEST(DataStatsTableTest, SmallTableStaysExact) {
  stats::TableStatistics st("t", TestSchema());
  for (int64_t i = 0; i < 100; ++i) {
    st.AddRow({i, rel::Value("n" + std::to_string(i % 10)), i % 5});
  }
  st.EndBatch();
  EXPECT_EQ(st.RowCount(), 100u);

  const stats::ColumnStatistics* id = st.Column("id");
  const stats::ColumnStatistics* name = st.Column("name");
  const stats::ColumnStatistics* code = st.Column("code");
  ASSERT_NE(id, nullptr);
  ASSERT_NE(name, nullptr);
  ASSERT_NE(code, nullptr);
  EXPECT_EQ(st.Column("nosuch"), nullptr);

  // Inside the warmup every row feeds the sketch tier: no scaling.
  EXPECT_DOUBLE_EQ(code->SketchScale(), 1.0);
  // Unique-id columns report the exact row count as NDV.
  EXPECT_DOUBLE_EQ(id->Ndv(), 100.0);
  EXPECT_TRUE(id->HeavyHitters().empty());
  EXPECT_NEAR(name->Ndv(), 10.0, 1.0);

  auto hh = code->HeavyHitters();
  ASSERT_EQ(hh.size(), 5u);
  for (const auto& h : hh) {
    EXPECT_EQ(h.count, 20u);
    EXPECT_EQ(h.error, 0u);
  }
  EXPECT_NEAR(code->EqualitySelectivity(rel::Value(int64_t{3}), 100), 0.2,
              0.01);

  ASSERT_TRUE(id->Min().has_value());
  ASSERT_TRUE(id->Max().has_value());
  EXPECT_EQ(*id->Min()->IfInt(), 0);
  EXPECT_EQ(*id->Max()->IfInt(), 99);
  ASSERT_TRUE(name->Min().has_value());
  EXPECT_EQ(*name->Min()->IfString(), "n0");
  EXPECT_EQ(*name->Max()->IfString(), "n9");
}

TEST(DataStatsTableTest, SamplingPastWarmupKeepsFractionsUnbiased) {
  stats::TableStatistics st("t", TestSchema());
  constexpr int64_t kRows = 50'000;
  for (int64_t i = 0; i < kRows; ++i) {
    // The code column is uniform but decorrelated from insertion order:
    // the warmup sketches the first 1024 rows exactly, so an
    // order-correlated column would (by design) overweight early values.
    st.AddRow({i, rel::Value("n" + std::to_string(i % 10)),
               (i * 48271) % kRows});
  }
  st.EndBatch();
  EXPECT_EQ(st.RowCount(), static_cast<uint64_t>(kRows));

  const stats::ColumnStatistics* id = st.Column("id");
  const stats::ColumnStatistics* name = st.Column("name");
  const stats::ColumnStatistics* code = st.Column("code");

  // EndBatch reconciled the per-column count, so the unique-id NDV is the
  // exact row count even though almost no rows hit the sketch tier.
  EXPECT_DOUBLE_EQ(id->Ndv(), static_cast<double>(kRows));

  // 1-in-16 sampling past the 1024-row warmup: the scale factor sits
  // around rows / (warmup + (rows - warmup)/16) ~= 12.
  EXPECT_GT(name->SketchScale(), 8.0);
  EXPECT_LT(name->SketchScale(), 20.0);

  // Fraction-valued answers are computed against the sampled stream and
  // stay unbiased; count-valued answers are scaled back up.
  EXPECT_NEAR(name->Ndv(), 10.0, 2.0);
  EXPECT_NEAR(name->EqualitySelectivity(rel::Value(std::string("n3")), kRows),
              0.1, 0.05);
  EXPECT_NEAR(code->RangeSelectivity(0, kRows / 2 - 1), 0.5, 0.1);

  auto hh = name->HeavyHitters();
  ASSERT_FALSE(hh.empty());
  // Heavy-hitter counts read in table-row units under sampling.
  EXPECT_NEAR(static_cast<double>(hh[0].count), kRows / 10.0,
              0.5 * kRows / 10.0);
}

TEST(DataStatsTableTest, EndBatchReconcilesUniqueIdCount) {
  stats::TableStatistics st("t", TestSchema());
  for (int64_t i = 0; i < 2'000; ++i) {
    st.AddRow({i, rel::Value(std::string("x")), int64_t{0}});
  }
  // Before reconciliation the unique-id column has only seen the sampled
  // subset; EndBatch snaps it to the row count.
  st.EndBatch();
  EXPECT_DOUBLE_EQ(st.Column("id")->Ndv(), 2'000.0);
}

TEST(DataStatsTableTest, AdaptiveDropReleasesUselessHeavyHitterSketch) {
  // A non-id string column where every value is distinct: nothing heavy
  // ever surfaces, so once enough sampled adds accumulate the sketch drops
  // itself and HeavyHitters() comes back empty.
  stats::TableStatistics st("t", TestSchema());
  constexpr int64_t kRows = 120'000;  // ~8k sampled adds, past the probe.
  for (int64_t i = 0; i < kRows; ++i) {
    st.AddRow({i, rel::Value("u" + std::to_string(i)), i});
  }
  st.EndBatch();
  EXPECT_TRUE(st.Column("name")->HeavyHitters().empty());
  // The column is still otherwise served: NDV and range come back.
  EXPECT_GT(st.Column("name")->Ndv(), 1.0);
  EXPECT_GT(st.Column("name")->EqualitySelectivity(
                rel::Value(std::string("u1")), kRows),
            0.0);
}

TEST(DataStatsTableTest, StatisticsAreDeterministicAcrossInstances) {
  stats::TableStatistics a("t", TestSchema()), b("t", TestSchema());
  for (int64_t i = 0; i < 5'000; ++i) {
    rel::Row row{i, rel::Value("n" + std::to_string(i % 37)), (i * 7) % 113};
    a.AddRow(row);
    b.AddRow(row);
  }
  a.EndBatch();
  b.EndBatch();
  for (const char* col : {"id", "name", "code"}) {
    const auto* ca = a.Column(col);
    const auto* cb = b.Column(col);
    EXPECT_DOUBLE_EQ(ca->Ndv(), cb->Ndv()) << col;
    EXPECT_DOUBLE_EQ(ca->SketchScale(), cb->SketchScale()) << col;
    auto ha = ca->HeavyHitters(), hb = cb->HeavyHitters();
    ASSERT_EQ(ha.size(), hb.size()) << col;
    for (size_t i = 0; i < ha.size(); ++i) {
      EXPECT_EQ(ha[i].key, hb[i].key) << col;
      EXPECT_EQ(ha[i].count, hb[i].count) << col;
    }
  }
  EXPECT_DOUBLE_EQ(a.Column("code")->RangeSelectivity(0, 56),
                   b.Column("code")->RangeSelectivity(0, 56));
}

// --- Database integration and resource accounting. ---

TEST(DataStatsDatabaseTest, LoadMaintainsStatistics) {
  audit::AuditLog log;
  audit::WorkloadGenerator gen;
  gen.GenerateBenign(3'000, &log);

  rel::RelationalDatabase db;
  EXPECT_TRUE(db.statistics_enabled());
  db.Load(log);

  EXPECT_EQ(db.events_statistics().RowCount(), log.event_count());
  uint64_t entity_rows = 0;
  for (auto type : {audit::EntityType::kFile, audit::EntityType::kProcess,
                    audit::EntityType::kNetwork}) {
    entity_rows += db.EntityStatistics(type).RowCount();
  }
  EXPECT_EQ(entity_rows, log.entity_count());

  auto all = db.AllStatistics();
  ASSERT_EQ(all.size(), 4u);
  EXPECT_EQ(all[0]->name(), "files");
  EXPECT_EQ(all[1]->name(), "procs");
  EXPECT_EQ(all[2]->name(), "nets");
  EXPECT_EQ(all[3]->name(), "events");
  EXPECT_GT(db.StatisticsBytes(), 0u);

  // The optype column drives the estimator's per-op counts: low
  // cardinality, so Space-Saving tracks every operation exactly-ish.
  const stats::ColumnStatistics* optype =
      db.events_statistics().Column("optype");
  ASSERT_NE(optype, nullptr);
  EXPECT_FALSE(optype->HeavyHitters().empty());
}

TEST(DataStatsDatabaseTest, DisabledStatisticsStayEmpty) {
  audit::AuditLog log;
  audit::WorkloadGenerator gen;
  gen.GenerateBenign(500, &log);

  rel::RelationalDatabase db;
  db.SetStatisticsEnabled(false);
  EXPECT_FALSE(db.statistics_enabled());
  db.Load(log);
  EXPECT_EQ(db.events_statistics().RowCount(), 0u);
  EXPECT_GT(db.events().num_rows(), 0u);  // The data itself still loads.
}

TEST(DataStatsDatabaseTest, StatsBytesChargedToResourceTracker) {
  auto& tracker = obs::ResourceTracker::Default();
  const int64_t before = tracker.LiveBytes(obs::Component::kStats);
  {
    audit::AuditLog log;
    audit::WorkloadGenerator gen;
    gen.GenerateBenign(2'000, &log);
    rel::RelationalDatabase db;
    db.Load(log);
    EXPECT_GE(tracker.LiveBytes(obs::Component::kStats),
              before + static_cast<int64_t>(db.StatisticsBytes()));
  }
  // Destruction releases the charge.
  EXPECT_EQ(tracker.LiveBytes(obs::Component::kStats), before);
}

// --- Degree distributions. ---

TEST(DataStatsDegreeTest, BucketsFollowBitWidth) {
  stats::DegreeDistribution dd;
  for (int i = 0; i < 3; ++i) dd.AddNode();
  // Node A reaches degree 5, node B degree 1, node C stays at 0.
  for (uint64_t d = 0; d < 5; ++d) dd.IncrementDegree(d);
  dd.IncrementDegree(0);
  EXPECT_EQ(dd.Nodes(), 3u);
  EXPECT_EQ(dd.TotalDegree(), 6u);
  EXPECT_EQ(dd.MaxDegree(), 5u);
  EXPECT_DOUBLE_EQ(dd.AvgDegree(), 2.0);

  auto buckets = dd.Buckets();
  // Expected occupancy: degree 0 -> one node, degree 1 -> one node,
  // degrees 4..7 -> one node. (Log2 buckets: [0,0] [1,1] [2,3] [4,7] ...)
  ASSERT_EQ(buckets.size(), 3u);
  EXPECT_EQ(buckets[0].lo, 0u);
  EXPECT_EQ(buckets[0].hi, 0u);
  EXPECT_EQ(buckets[0].nodes, 1u);
  EXPECT_EQ(buckets[1].lo, 1u);
  EXPECT_EQ(buckets[1].hi, 1u);
  EXPECT_EQ(buckets[1].nodes, 1u);
  EXPECT_EQ(buckets[2].lo, 4u);
  EXPECT_EQ(buckets[2].hi, 7u);
  EXPECT_EQ(buckets[2].nodes, 1u);
}

TEST(DataStatsDegreeTest, GraphStoreDegreeTotalsMatchLog) {
  audit::AuditLog log;
  audit::WorkloadGenerator gen;
  gen.GenerateBenign(2'000, &log);

  graph::GraphStore graph(log);
  ASSERT_TRUE(graph.degree_statistics_enabled());
  uint64_t out_total = 0, in_total = 0, nodes = 0;
  for (auto type : {audit::EntityType::kFile, audit::EntityType::kProcess,
                    audit::EntityType::kNetwork}) {
    out_total += graph.OutDegreeStatistics(type).TotalDegree();
    in_total += graph.InDegreeStatistics(type).TotalDegree();
    nodes += graph.OutDegreeStatistics(type).Nodes();
    EXPECT_EQ(graph.OutDegreeStatistics(type).Nodes(),
              graph.InDegreeStatistics(type).Nodes());
  }
  EXPECT_EQ(out_total, log.event_count());
  EXPECT_EQ(in_total, log.event_count());
  EXPECT_EQ(nodes, log.entity_count());
}

TEST(DataStatsDegreeTest, DisabledDegreeStatisticsStayEmpty) {
  audit::AuditLog log;
  audit::WorkloadGenerator gen;
  gen.GenerateBenign(500, &log);
  graph::GraphStore graph(log, /*degree_statistics=*/false);
  EXPECT_FALSE(graph.degree_statistics_enabled());
  EXPECT_EQ(graph.OutDegreeStatistics(audit::EntityType::kProcess).Nodes(),
            0u);
}

// --- Estimator accuracy: the acceptance gate. ---

struct CorpusFixture {
  audit::AuditLog log;
  std::unique_ptr<rel::RelationalDatabase> rel_db;
  std::unique_ptr<graph::GraphStore> graph_db;
  std::unique_ptr<engine::QueryEngine> engine;

  explicit CorpusFixture(size_t benign_events) {
    audit::WorkloadGenerator gen;
    gen.GenerateBenign(benign_events / 2, &log);
    gen.InjectDataLeakageAttack(&log);
    gen.GenerateBenign(benign_events / 2, &log);
    for (int i = 0; i < 4; ++i) {
      gen.InjectForkChain("/bin/bash", 3, audit::Operation::kWrite,
                          "/tmp/stolen", &log);
    }
    rel_db = std::make_unique<rel::RelationalDatabase>();
    rel_db->Load(log);
    graph_db = std::make_unique<graph::GraphStore>(log);
    engine = std::make_unique<engine::QueryEngine>(&log, rel_db.get(),
                                                   graph_db.get());
  }

  engine::QueryResult Run(const std::string& src) {
    auto q = tbql::Parse(src);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    Status st = tbql::Analyze(&*q);
    EXPECT_TRUE(st.ok()) << st.ToString();
    auto result = engine->Execute(*q, engine::ExecutionOptions{});
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return *std::move(result);
  }
};

TEST(DataStatsEstimatorTest, MedianQErrorAtMostTwoOnBenchCorpus) {
  CorpusFixture fx(40'000);

  // A representative hunting mix: full-table event scans, operation
  // disjunctions, LIKE and equality entity filters, a time window over the
  // middle of the trace, multi-pattern queries, and a fork pattern.
  int64_t tmin = std::numeric_limits<int64_t>::max(), tmax = 0;
  for (size_t i = 0; i < fx.log.event_count(); ++i) {
    tmin = std::min(tmin, fx.log.event(i).start_time);
    tmax = std::max(tmax, fx.log.event(i).start_time);
  }
  const int64_t tmid = tmin + (tmax - tmin) / 2;
  const std::vector<std::string> corpus = {
      "proc p read file f",
      "proc p write file f",
      "proc p read || write file f",
      "proc p send net n",
      "proc p[\"%bash%\"] read file f",
      "proc p read file f[\"%/etc/%\"]",
      "proc p write file f[\"/tmp/stolen\"]",
      "proc p fork proc q\nreturn q",
      "proc p read file f from " + std::to_string(tmin) + " to " +
          std::to_string(tmid),
      "e1: proc p read file f1\ne2: proc p write file f2",
  };

  std::vector<double> q_errors;
  for (const std::string& src : corpus) {
    auto r = fx.Run(src);
    ASSERT_EQ(r.stats.pattern_est_rows.size(),
              r.stats.pattern_q_error.size());
    ASSERT_FALSE(r.stats.pattern_q_error.empty()) << src;
    for (size_t i = 0; i < r.stats.pattern_q_error.size(); ++i) {
      EXPECT_TRUE(std::isfinite(r.stats.pattern_est_rows[i])) << src;
      EXPECT_GE(r.stats.pattern_est_rows[i], 0.0) << src;
      EXPECT_GE(r.stats.pattern_q_error[i], 1.0) << src;
      q_errors.push_back(r.stats.pattern_q_error[i]);
    }
  }

  ASSERT_GE(q_errors.size(), corpus.size());
  std::sort(q_errors.begin(), q_errors.end());
  const double median = q_errors[q_errors.size() / 2];
  EXPECT_LE(median, 2.0) << "median q-error over " << q_errors.size()
                         << " estimated patterns (worst "
                         << q_errors.back() << ")";
}

TEST(DataStatsEstimatorTest, QErrorIsSymmetricAndFloored) {
  EXPECT_DOUBLE_EQ(engine::QError(0.0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(engine::QError(10.0, 10.0), 1.0);
  EXPECT_DOUBLE_EQ(engine::QError(10.0, 5.0), 2.0);
  EXPECT_DOUBLE_EQ(engine::QError(5.0, 10.0), 2.0);
  EXPECT_DOUBLE_EQ(engine::QError(0.0, 100.0), 100.0);
}

// --- Estimator robustness on degenerate inputs. ---

tbql::Query ParseQuery(const std::string& src) {
  auto q = tbql::Parse(src);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  Status st = tbql::Analyze(&*q);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return *std::move(q);
}

TEST(DataStatsEstimatorFuzzTest, EmptyDatabaseEstimatesAreFinite) {
  audit::AuditLog log;  // No entities, no events.
  rel::RelationalDatabase db;
  db.Load(log);
  graph::GraphStore graph(log);
  engine::CardinalityEstimator est(&db, &graph);

  for (const std::string& src : std::vector<std::string>{
           "proc p read file f",
           "proc p[\"%x%\"] write file f[\"/a\"]",
           "proc p ~>(1~5)[read] file f",
           "proc p send net n[dstip = \"1.2.3.4\", dstport = 80]",
       }) {
    tbql::Query q = ParseQuery(src);
    for (const tbql::Pattern& p : q.patterns) {
      const double rows = est.EstimatePattern(p);
      EXPECT_TRUE(std::isfinite(rows)) << src;
      EXPECT_GE(rows, 0.0) << src;
      EXPECT_TRUE(std::isfinite(est.EstimateEntityMatches(p.subject))) << src;
      EXPECT_TRUE(std::isfinite(est.EstimateEntityMatches(p.object))) << src;
    }
  }

  // End-to-end: executing over the empty trace records perfect q-errors.
  engine::QueryEngine eng(&log, &db, &graph);
  tbql::Query q = ParseQuery("proc p read file f");
  auto r = eng.Execute(q, engine::ExecutionOptions{});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->rows.empty());
  for (double qe : r->stats.pattern_q_error) EXPECT_DOUBLE_EQ(qe, 1.0);
}

TEST(DataStatsEstimatorFuzzTest, NeverMatchingConstantsStayFinite) {
  CorpusFixture fx(8'000);
  for (const std::string& src : std::vector<std::string>{
           "proc p read file f[\"/no/such/file/anywhere\"]",
           "proc p[exename = \"/does/not/exist\"] write file f",
           "proc p send net n[dstip = \"255.255.255.255\", dstport = 1]",
           "proc p read file f[\"%never-matching-fragment%\"]",
           "proc p read file f from 999999999 to 1000000000",
       }) {
    auto r = fx.Run(src);
    EXPECT_TRUE(r.rows.empty()) << src;
    for (size_t i = 0; i < r.stats.pattern_q_error.size(); ++i) {
      EXPECT_TRUE(std::isfinite(r.stats.pattern_est_rows[i])) << src;
      EXPECT_TRUE(std::isfinite(r.stats.pattern_q_error[i])) << src;
    }
  }
}

TEST(DataStatsEstimatorFuzzTest, NullGraphStoreFallsBack) {
  audit::AuditLog log;
  audit::WorkloadGenerator gen;
  gen.GenerateBenign(1'000, &log);
  rel::RelationalDatabase db;
  db.Load(log);
  engine::CardinalityEstimator est(&db, nullptr);
  tbql::Query q = ParseQuery("proc p ~>(1~4)[read || write] file f");
  for (const tbql::Pattern& p : q.patterns) {
    const double rows = est.EstimatePattern(p);
    EXPECT_TRUE(std::isfinite(rows));
    EXPECT_GE(rows, 0.0);
  }
}

// --- Misestimate journal. ---

obs::MisestimateEntry MakeEntry(double worst, const std::string& query) {
  obs::MisestimateEntry e;
  e.kind = "query";
  e.query = query;
  e.worst_q_error = worst;
  e.ops.push_back(
      obs::MisestimateOperator{"e1", "relational", worst, 1, worst});
  return e;
}

TEST(DataStatsJournalTest, ThresholdGatesRecording) {
  obs::MisestimateJournal journal;
  journal.Configure({/*q_error_threshold=*/4.0, /*capacity=*/8});
  EXPECT_FALSE(journal.ShouldRecord(3.9));
  EXPECT_TRUE(journal.ShouldRecord(4.0));
  EXPECT_TRUE(journal.ShouldRecord(100.0));
  journal.Configure({/*q_error_threshold=*/0.0, /*capacity=*/8});
  EXPECT_TRUE(journal.ShouldRecord(1.0));
}

TEST(DataStatsJournalTest, KeepsWorstOffendersWhenFull) {
  obs::MisestimateJournal journal;
  journal.Configure({/*q_error_threshold=*/0.0, /*capacity=*/2});

  const uint64_t id10 = journal.Record(MakeEntry(10.0, "q10"));
  const uint64_t id5 = journal.Record(MakeEntry(5.0, "q5"));
  EXPECT_NE(id10, 0u);
  EXPECT_NE(id5, 0u);

  // Milder than everything retained: dropped.
  EXPECT_EQ(journal.Record(MakeEntry(3.0, "q3")), 0u);
  auto snap = journal.Snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_DOUBLE_EQ(snap[0].worst_q_error, 10.0);  // Worst-first.
  EXPECT_DOUBLE_EQ(snap[1].worst_q_error, 5.0);

  // Worse than the mildest: evicts it.
  const uint64_t id7 = journal.Record(MakeEntry(7.0, "q7"));
  EXPECT_NE(id7, 0u);
  snap = journal.Snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_DOUBLE_EQ(snap[0].worst_q_error, 10.0);
  EXPECT_DOUBLE_EQ(snap[1].worst_q_error, 7.0);

  EXPECT_TRUE(journal.Find(id10).has_value());
  EXPECT_EQ(journal.Find(id10)->query, "q10");
  EXPECT_FALSE(journal.Find(id5).has_value());  // Evicted.

  // Snapshot limit returns the worst entries only.
  auto top1 = journal.Snapshot(1);
  ASSERT_EQ(top1.size(), 1u);
  EXPECT_DOUBLE_EQ(top1[0].worst_q_error, 10.0);

  journal.Clear();
  EXPECT_TRUE(journal.Snapshot().empty());
}

TEST(DataStatsJournalTest, RecordAssignsIdsAndTimestamps) {
  obs::MisestimateJournal journal;
  journal.Configure({/*q_error_threshold=*/0.0, /*capacity=*/4});
  const uint64_t a = journal.Record(MakeEntry(2.0, "a"));
  const uint64_t b = journal.Record(MakeEntry(3.0, "b"));
  EXPECT_LT(a, b);
  auto found = journal.Find(b);
  ASSERT_TRUE(found.has_value());
  EXPECT_GT(found->unix_ms, 0u);
  EXPECT_EQ(found->ops.size(), 1u);
}

}  // namespace
}  // namespace raptor
