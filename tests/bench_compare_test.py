#!/usr/bin/env python3
"""ctest-registered checks for scripts/bench_compare.py.

Exercises both bench JSON formats the repo emits (bench_util tables and
google-benchmark documents), the 25% regression gate, the 0.05 ms noise
floor, and the missing-baseline exit codes — against synthetic documents,
so the test is machine-speed independent.

Usage: bench_compare_test.py /path/to/bench_compare.py
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

COMPARE = None  # set from argv[1] in __main__


def gbench_doc(entries):
    """google-benchmark format: [(name, real_time, unit), ...]."""
    return {
        "benchmarks": [
            {"name": n, "real_time": t, "time_unit": u, "run_type": "iteration"}
            for (n, t, u) in entries
        ]
    }


def table_doc(name, columns, rows):
    """bench_util format: one table."""
    return {"bench": name, "tables": [{"name": name, "columns": columns,
                                       "rows": rows}]}


class BenchCompareTest(unittest.TestCase):
    def run_compare(self, baseline_docs, current_docs, extra_args=()):
        """Writes the synthetic documents into two temp dirs and runs the
        script; returns (exit_code, stdout+stderr)."""
        with tempfile.TemporaryDirectory() as tmp:
            base_dir = os.path.join(tmp, "base")
            cur_dir = os.path.join(tmp, "cur")
            os.mkdir(base_dir)
            os.mkdir(cur_dir)
            for fname, doc in baseline_docs.items():
                with open(os.path.join(base_dir, fname), "w") as f:
                    json.dump(doc, f)
            for fname, doc in current_docs.items():
                with open(os.path.join(cur_dir, fname), "w") as f:
                    json.dump(doc, f)
            proc = subprocess.run(
                [sys.executable, COMPARE, "--baseline-dir", base_dir,
                 "--current-dir", cur_dir] + list(extra_args),
                capture_output=True, text=True)
            return proc.returncode, proc.stdout + proc.stderr

    def test_identical_runs_pass(self):
        doc = gbench_doc([("hunt/off", 2.0, "ms")])
        code, out = self.run_compare({"BENCH_x.json": doc},
                                     {"BENCH_x.json": doc})
        self.assertEqual(code, 0, out)
        self.assertIn("OK", out)

    def test_gbench_regression_over_threshold_fails(self):
        base = gbench_doc([("hunt/off", 2.0, "ms"), ("steady", 1.0, "ms")])
        cur = gbench_doc([("hunt/off", 2.6, "ms"), ("steady", 1.0, "ms")])
        code, out = self.run_compare({"BENCH_x.json": base},
                                     {"BENCH_x.json": cur})
        self.assertEqual(code, 1, out)
        self.assertIn("hunt/off", out)
        self.assertIn("30% slower", out)

    def test_gbench_slowdown_under_threshold_passes(self):
        base = gbench_doc([("hunt/off", 2.0, "ms")])
        cur = gbench_doc([("hunt/off", 2.4, "ms")])  # +20% < 25%
        code, out = self.run_compare({"BENCH_x.json": base},
                                     {"BENCH_x.json": cur})
        self.assertEqual(code, 0, out)

    def test_time_units_normalize(self):
        # 2e6 ns == 2 ms: a baseline in ns compared against a current run
        # in ms must not spuriously regress.
        base = gbench_doc([("op", 2.0e6, "ns")])
        cur = gbench_doc([("op", 2.0, "ms")])
        code, out = self.run_compare({"BENCH_x.json": base},
                                     {"BENCH_x.json": cur})
        self.assertEqual(code, 0, out)

    def test_table_format_regression_fails(self):
        base = table_doc("paths", ["query", "events", "ms"],
                         [["q1", 1000, 5.0], ["q2", 1000, 1.0]])
        cur = table_doc("paths", ["query", "events", "ms"],
                        [["q1", 1000, 9.0], ["q2", 1000, 1.0]])
        code, out = self.run_compare({"BENCH_paths.json": base},
                                     {"BENCH_paths.json": cur})
        self.assertEqual(code, 1, out)
        self.assertIn("paths[q1/1000]", out)

    def test_table_repeated_keys_keep_max(self):
        # Sweeps over a hidden variable repeat a key; the max is the
        # baseline, so only a regression beyond every repetition fires.
        base = table_doc("paths", ["query", "ms"],
                         [["q1", 1.0], ["q1", 4.0]])
        cur = table_doc("paths", ["query", "ms"], [["q1", 4.5]])
        code, out = self.run_compare({"BENCH_paths.json": base},
                                     {"BENCH_paths.json": cur})
        self.assertEqual(code, 0, out)  # 4.5 vs max(1,4)=4: +12.5%

    def test_noise_floor_skips_tiny_baselines(self):
        # 0.01 ms baseline doubling would be a 100% "regression", but it is
        # below the 0.05 ms noise floor.
        base = gbench_doc([("micro", 0.01, "ms")])
        cur = gbench_doc([("micro", 0.02, "ms")])
        code, out = self.run_compare({"BENCH_x.json": base},
                                     {"BENCH_x.json": cur})
        self.assertEqual(code, 0, out)
        self.assertIn("below 0.050 ms noise floor", out)

    def test_custom_threshold_and_min_ms(self):
        base = gbench_doc([("hunt", 2.0, "ms")])
        cur = gbench_doc([("hunt", 2.3, "ms")])  # +15%
        code, out = self.run_compare({"BENCH_x.json": base},
                                     {"BENCH_x.json": cur},
                                     extra_args=["--threshold", "0.10"])
        self.assertEqual(code, 1, out)
        # A min-ms above the baseline mutes the same regression.
        code, out = self.run_compare({"BENCH_x.json": base},
                                     {"BENCH_x.json": cur},
                                     extra_args=["--threshold", "0.10",
                                                 "--min-ms", "3.0"])
        self.assertEqual(code, 0, out)

    def test_no_baselines_is_exit_2(self):
        code, out = self.run_compare({}, {})
        self.assertEqual(code, 2, out)
        self.assertIn("no BENCH_*.json baselines", out)

    def test_missing_current_file_is_skipped_not_failed(self):
        base = gbench_doc([("hunt", 2.0, "ms")])
        code, out = self.run_compare({"BENCH_x.json": base}, {})
        self.assertEqual(code, 0, out)
        self.assertIn("not produced by current run, skipped", out)

    def test_missing_key_in_current_is_skipped(self):
        base = gbench_doc([("hunt", 2.0, "ms"), ("gone", 2.0, "ms")])
        cur = gbench_doc([("hunt", 2.0, "ms")])
        code, out = self.run_compare({"BENCH_x.json": base},
                                     {"BENCH_x.json": cur})
        self.assertEqual(code, 0, out)
        self.assertIn("missing from current run, skipped", out)

    def test_aggregate_entries_are_ignored(self):
        base = gbench_doc([("hunt", 2.0, "ms")])
        cur = gbench_doc([("hunt", 2.0, "ms")])
        cur["benchmarks"].append({"name": "hunt_mean", "real_time": 99.0,
                                  "time_unit": "ms",
                                  "run_type": "aggregate"})
        base["benchmarks"].append({"name": "hunt_mean", "real_time": 1.0,
                                   "time_unit": "ms",
                                   "run_type": "aggregate"})
        code, out = self.run_compare({"BENCH_x.json": base},
                                     {"BENCH_x.json": cur})
        self.assertEqual(code, 0, out)


if __name__ == "__main__":
    if len(sys.argv) < 2 or not os.path.exists(sys.argv[1]):
        print("usage: bench_compare_test.py /path/to/bench_compare.py",
              file=sys.stderr)
        sys.exit(2)
    COMPARE = sys.argv.pop(1)
    unittest.main()
