// Unit tests for the metrics time-series history store (src/obs/history.*):
// multi-resolution tier fold-down, retention eviction, range-query
// aggregation semantics, counter-reset handling, and determinism under
// concurrent readers. Everything runs against a stepped ManualClock, so
// tier boundaries and range output are exact.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/clock.h"
#include "obs/history.h"
#include "obs/metrics.h"
#include "obs/resource.h"

namespace raptor::obs {
namespace {

/// A base instant aligned to every tier interval (divisible by 60 s), so
/// bucket arithmetic in expectations stays in round numbers.
constexpr uint64_t kBaseMs = 1'700'000'040'000ull;

/// A history store with the default three tiers (1s x 15min, 10s x 2h,
/// 60s x 24h) on a ManualClock parked at kBaseMs.
struct TieredFixture {
  std::shared_ptr<ManualClock> clock = std::make_shared<ManualClock>();
  MetricsHistory history;

  TieredFixture() {
    clock->Set(kBaseMs);
    HistoryOptions options;
    options.clock = clock;
    history.Configure(options);
  }

  /// One gauge/counter sample per second: value = f(i) at kBaseMs + i s.
  template <typename F>
  void AppendPerSecond(std::string_view name, SeriesKind kind, int n, F f) {
    for (int i = 0; i < n; ++i) {
      history.Append(name, {}, kind, kBaseMs + static_cast<uint64_t>(i) * 1000,
                     f(i));
    }
    clock->Set(kBaseMs + static_cast<uint64_t>(n - 1) * 1000);
  }

  RangeResult Query(std::string_view name, RangeAgg agg, uint64_t start_ms,
                    uint64_t end_ms, uint64_t step_ms = 0) {
    RangeRequest request;
    request.name = std::string(name);
    request.agg = agg;
    request.start_ms = start_ms;
    request.end_ms = end_ms;
    request.step_ms = step_ms;
    return history.Range(request);
  }
};

// =====================================================================
// Tier fold-down across all three resolutions.
// =====================================================================

TEST(HistoryTierTest, GaugeFoldsDeterministicallyAcrossAllThreeTiers) {
  TieredFixture fx;
  // 181 one-second samples, value == second offset: crosses eighteen 10 s
  // boundaries and three 60 s boundaries.
  fx.AppendPerSecond("g", SeriesKind::kGauge, 181,
                     [](int i) { return static_cast<double>(i); });

  // Raw tier (start is 180 s old, inside the 900 s retention): each 10 s
  // step bucket averages the ten raw points inside it.
  RangeResult raw = fx.Query("g", RangeAgg::kAvg, kBaseMs,
                             kBaseMs + 180'000, 10'000);
  ASSERT_TRUE(raw.error.empty()) << raw.error;
  EXPECT_EQ(raw.tier, 0u);
  EXPECT_EQ(raw.step_ms, 10'000u);
  ASSERT_EQ(raw.series.size(), 1u);
  ASSERT_EQ(raw.series[0].points.size(), 18u);
  for (size_t k = 0; k < 18; ++k) {
    const RangePoint& p = raw.series[0].points[k];
    EXPECT_EQ(p.t_ms, kBaseMs + k * 10'000);
    // Bucket (10k, 10k+10]: raw offsets 10k+1 .. 10k+10.
    EXPECT_DOUBLE_EQ(p.value, 10.0 * static_cast<double>(k) + 5.5);
  }

  // Mid tier: age the window past the raw retention (900 s) without new
  // samples; the same query is now served from the 10 s fold-downs, whose
  // points carry the completed bucket's avg/min/max.
  fx.clock->Set(kBaseMs + 1'000'000);
  RangeResult mid = fx.Query("g", RangeAgg::kAvg, kBaseMs, kBaseMs + 180'000);
  ASSERT_TRUE(mid.error.empty()) << mid.error;
  EXPECT_EQ(mid.tier, 1u);
  EXPECT_EQ(mid.step_ms, 10'000u);  // step 0 clamps up to the tier interval
  ASSERT_EQ(mid.series.size(), 1u);
  ASSERT_EQ(mid.series[0].points.size(), 18u);
  for (size_t k = 0; k < 18; ++k) {
    // Fold of offsets 10k .. 10k+9, flushed at the bucket's END.
    EXPECT_DOUBLE_EQ(mid.series[0].points[k].value,
                     10.0 * static_cast<double>(k) + 4.5);
  }
  RangeResult mid_min =
      fx.Query("g", RangeAgg::kMin, kBaseMs, kBaseMs + 180'000);
  RangeResult mid_max =
      fx.Query("g", RangeAgg::kMax, kBaseMs, kBaseMs + 180'000);
  ASSERT_EQ(mid_min.series[0].points.size(), 18u);
  EXPECT_DOUBLE_EQ(mid_min.series[0].points[3].value, 30.0);
  EXPECT_DOUBLE_EQ(mid_max.series[0].points[3].value, 39.0);

  // Coarse tier: age past the mid retention (7200 s); the 60 s fold-downs
  // answer (three completed minutes).
  fx.clock->Set(kBaseMs + 8'000'000);
  RangeResult coarse =
      fx.Query("g", RangeAgg::kAvg, kBaseMs, kBaseMs + 180'000);
  ASSERT_TRUE(coarse.error.empty()) << coarse.error;
  EXPECT_EQ(coarse.tier, 2u);
  EXPECT_EQ(coarse.step_ms, 60'000u);
  ASSERT_EQ(coarse.series.size(), 1u);
  ASSERT_EQ(coarse.series[0].points.size(), 3u);
  EXPECT_DOUBLE_EQ(coarse.series[0].points[0].value, 29.5);
  EXPECT_DOUBLE_EQ(coarse.series[0].points[1].value, 89.5);
  EXPECT_DOUBLE_EQ(coarse.series[0].points[2].value, 149.5);
}

TEST(HistoryTierTest, CounterRateIsStableAcrossTierBoundaries) {
  TieredFixture fx;
  // A counter climbing 5/s.
  fx.AppendPerSecond("c", SeriesKind::kCounter, 181,
                     [](int i) { return 5.0 * i; });

  RangeResult raw =
      fx.Query("c", RangeAgg::kRate, kBaseMs, kBaseMs + 180'000, 10'000);
  ASSERT_TRUE(raw.error.empty()) << raw.error;
  ASSERT_EQ(raw.series.size(), 1u);
  ASSERT_EQ(raw.series[0].points.size(), 18u);
  for (const RangePoint& p : raw.series[0].points) {
    EXPECT_DOUBLE_EQ(p.value, 5.0);
  }

  // The same query from the mid tier: coarser points, identical rate.
  fx.clock->Set(kBaseMs + 1'000'000);
  RangeResult mid =
      fx.Query("c", RangeAgg::kRate, kBaseMs, kBaseMs + 180'000, 10'000);
  ASSERT_TRUE(mid.error.empty()) << mid.error;
  EXPECT_EQ(mid.tier, 1u);
  ASSERT_EQ(mid.series.size(), 1u);
  ASSERT_GE(mid.series[0].points.size(), 17u);
  for (const RangePoint& p : mid.series[0].points) {
    EXPECT_DOUBLE_EQ(p.value, 5.0);
  }

  // last: the newest cumulative value inside each bucket.
  fx.clock->Set(kBaseMs + 180'000);
  RangeResult last =
      fx.Query("c", RangeAgg::kLast, kBaseMs, kBaseMs + 180'000, 10'000);
  ASSERT_EQ(last.series[0].points.size(), 18u);
  EXPECT_DOUBLE_EQ(last.series[0].points[0].value, 50.0);
  EXPECT_DOUBLE_EQ(last.series[0].points[17].value, 900.0);
}

// =====================================================================
// Retention eviction.
// =====================================================================

TEST(HistoryRetentionTest, TiersEvictBeyondRetentionKeepingNewest) {
  auto clock = std::make_shared<ManualClock>();
  clock->Set(kBaseMs);
  MetricsHistory history;
  HistoryOptions options;
  options.clock = clock;
  options.tiers = {{1, 30}, {10, 120}};  // tiny retentions for the test
  history.Configure(options);

  for (int i = 0; i < 200; ++i) {
    history.Append("e", {}, SeriesKind::kGauge,
                   kBaseMs + static_cast<uint64_t>(i) * 1000,
                   static_cast<double>(i));
  }
  clock->Set(kBaseMs + 199'000);

  // Raw tier holds only the trailing 30 s.
  RangeRequest recent;
  recent.name = "e";
  recent.agg = RangeAgg::kLast;
  recent.start_ms = kBaseMs + 170'000;
  recent.end_ms = kBaseMs + 199'000;
  recent.step_ms = 1000;
  RangeResult raw = history.Range(recent);
  ASSERT_TRUE(raw.error.empty()) << raw.error;
  EXPECT_EQ(raw.tier, 0u);
  EXPECT_EQ(raw.series[0].points.size(), 29u);

  // A full-span ask falls to the coarsest tier, which itself evicted
  // everything older than its 120 s retention: the first answered bucket
  // starts at ~70 s, not 0.
  RangeRequest full;
  full.name = "e";
  full.agg = RangeAgg::kAvg;
  full.start_ms = kBaseMs;
  full.end_ms = kBaseMs + 199'000;
  RangeResult coarse = history.Range(full);
  ASSERT_TRUE(coarse.error.empty()) << coarse.error;
  EXPECT_EQ(coarse.tier, 1u);
  ASSERT_FALSE(coarse.series[0].points.empty());
  // Fold-downs flushed at 10..190 s; eviction (newest 190 s - 120 s
  // retention) kept the 70..190 s flush points, which land in the step
  // buckets starting at 60..180 s.
  EXPECT_EQ(coarse.series[0].points.front().t_ms, kBaseMs + 60'000);
  EXPECT_EQ(coarse.series[0].points.size(), 13u);

  // The evicted early window is gone from every tier.
  EXPECT_FALSE(
      history.Window("e", {}, kBaseMs, kBaseMs + 50'000).has_value());

  // Memory stays bounded: roughly the retained points, not the 200
  // appended ones.
  EXPECT_LT(history.ApproxBytes(), 8192u);
}

// =====================================================================
// Range-query semantics: empty, partial, invalid.
// =====================================================================

TEST(HistoryRangeTest, EmptyAndPartialRangesAndValidation) {
  TieredFixture fx;
  fx.AppendPerSecond("p", SeriesKind::kGauge, 10,
                     [](int i) { return static_cast<double>(i); });

  // Unknown family: an empty answer, not an error.
  RangeResult unknown =
      fx.Query("no_such_metric", RangeAgg::kAvg, kBaseMs, kBaseMs + 60'000);
  EXPECT_TRUE(unknown.error.empty());
  EXPECT_TRUE(unknown.series.empty());

  // Inverted window: an error.
  RangeResult inverted =
      fx.Query("p", RangeAgg::kAvg, kBaseMs + 60'000, kBaseMs);
  EXPECT_FALSE(inverted.error.empty());

  // Aggregation/kind mismatch: gauges cannot answer rate.
  RangeResult mismatch =
      fx.Query("p", RangeAgg::kRate, kBaseMs, kBaseMs + 60'000);
  EXPECT_NE(mismatch.error.find("gauge"), std::string::npos);

  // Too many output steps: an explicit error, not a truncated answer.
  RangeResult wide = fx.Query("p", RangeAgg::kAvg, kBaseMs,
                              kBaseMs + 20'000'000, 1000);
  EXPECT_NE(wide.error.find("10000"), std::string::npos);

  // Partial coverage: only buckets holding points are emitted (sparse
  // output; empty buckets are skipped, not zero-filled).
  RangeResult partial =
      fx.Query("p", RangeAgg::kAvg, kBaseMs, kBaseMs + 60'000, 10'000);
  ASSERT_TRUE(partial.error.empty()) << partial.error;
  ASSERT_EQ(partial.series.size(), 1u);
  ASSERT_EQ(partial.series[0].points.size(), 1u);
  EXPECT_EQ(partial.series[0].points[0].t_ms, kBaseMs);
  EXPECT_DOUBLE_EQ(partial.series[0].points[0].value, 5.0);
}

TEST(HistoryRangeTest, LabelFilterSelectsOneChild) {
  TieredFixture fx;
  fx.history.Append("lbl", {{"kind", "a"}}, SeriesKind::kGauge, kBaseMs + 1000,
                    1.0);
  fx.history.Append("lbl", {{"kind", "b"}}, SeriesKind::kGauge, kBaseMs + 1000,
                    2.0);
  RangeRequest request;
  request.name = "lbl";
  request.agg = RangeAgg::kLast;
  request.label_key = "kind";
  request.label_value = "b";
  request.start_ms = kBaseMs;
  request.end_ms = kBaseMs + 10'000;
  RangeResult result = fx.history.Range(request);
  ASSERT_TRUE(result.error.empty()) << result.error;
  ASSERT_EQ(result.series.size(), 1u);
  ASSERT_EQ(result.series[0].points.size(), 1u);
  EXPECT_DOUBLE_EQ(result.series[0].points[0].value, 2.0);
}

// =====================================================================
// Counter resets.
// =====================================================================

TEST(HistoryCounterTest, ResetContributesPostResetValue) {
  TieredFixture fx;
  const double values[] = {0, 10, 20, 5, 15};  // reset between 20 and 5
  for (int i = 0; i < 5; ++i) {
    fx.history.Append("r", {}, SeriesKind::kCounter,
                      kBaseMs + static_cast<uint64_t>(i) * 1000, values[i]);
  }
  fx.clock->Set(kBaseMs + 4000);

  // Prometheus-style increase: 10 + 10 + (reset: 5) + 10.
  auto window = fx.history.Window("r", {}, kBaseMs, kBaseMs + 4000);
  ASSERT_TRUE(window.has_value());
  EXPECT_DOUBLE_EQ(window->increase, 35.0);

  RangeResult rate =
      fx.Query("r", RangeAgg::kRate, kBaseMs, kBaseMs + 4000, 4000);
  ASSERT_TRUE(rate.error.empty()) << rate.error;
  ASSERT_EQ(rate.series[0].points.size(), 1u);
  EXPECT_DOUBLE_EQ(rate.series[0].points[0].value, 35.0 / 4.0);
}

// =====================================================================
// Out-of-order samples, series cap, kind mismatch.
// =====================================================================

TEST(HistoryStoreTest, OutOfOrderAndDuplicateTimestampsAreDropped) {
  TieredFixture fx;
  fx.history.Append("o", {}, SeriesKind::kGauge, kBaseMs + 2000, 2.0);
  fx.history.Append("o", {}, SeriesKind::kGauge, kBaseMs + 2000, 99.0);
  fx.history.Append("o", {}, SeriesKind::kGauge, kBaseMs + 1000, 98.0);
  fx.history.Append("o", {}, SeriesKind::kGauge, kBaseMs + 3000, 3.0);
  fx.clock->Set(kBaseMs + 3000);
  auto window = fx.history.Window("o", {}, kBaseMs, kBaseMs + 3000);
  ASSERT_TRUE(window.has_value());
  EXPECT_EQ(window->points, 2u);
  EXPECT_DOUBLE_EQ(window->first, 2.0);
  EXPECT_DOUBLE_EQ(window->last, 3.0);
}

TEST(HistoryStoreTest, MaxSeriesCapDropsNewSeries) {
  auto clock = std::make_shared<ManualClock>();
  clock->Set(kBaseMs);
  MetricsHistory history;
  HistoryOptions options;
  options.clock = clock;
  options.max_series = 2;
  history.Configure(options);
  history.Append("cap", {{"i", "1"}}, SeriesKind::kGauge, kBaseMs + 1000, 1);
  history.Append("cap", {{"i", "2"}}, SeriesKind::kGauge, kBaseMs + 1000, 2);
  history.Append("cap", {{"i", "3"}}, SeriesKind::kGauge, kBaseMs + 1000, 3);
  EXPECT_EQ(history.SeriesCount(), 2u);
}

TEST(HistoryStoreTest, KindMismatchDropsSampleInsteadOfMixing) {
  TieredFixture fx;
  fx.history.Append("k", {}, SeriesKind::kGauge, kBaseMs + 1000, 1.0);
  fx.history.Append("k", {}, SeriesKind::kCounter, kBaseMs + 2000, 2.0);
  fx.clock->Set(kBaseMs + 2000);
  ASSERT_TRUE(fx.history.Kind("k").has_value());
  EXPECT_EQ(*fx.history.Kind("k"), SeriesKind::kGauge);
  auto window = fx.history.Window("k", {}, kBaseMs, kBaseMs + 2000);
  ASSERT_TRUE(window.has_value());
  EXPECT_EQ(window->points, 1u);
}

// =====================================================================
// Histograms end-to-end through CollectNow (the collector path).
// =====================================================================

TEST(HistoryHistogramTest, CollectNowCapturesQuantilesAndEventRates) {
  auto clock = std::make_shared<ManualClock>();
  clock->Set(kBaseMs);
  MetricsHistory history;
  HistoryOptions options;
  options.clock = clock;
  history.Configure(options);

  Histogram* h = Registry::Default().GetHistogram(
      "history_test_lat_ms", "test latency", {1, 2, 4, 8});
  history.CollectNow();  // tick 1: count 0

  clock->AdvanceSeconds(1);
  for (int i = 0; i < 10; ++i) h->Observe(1.5);  // all land in (1, 2]
  history.CollectNow();  // tick 2

  clock->AdvanceSeconds(1);
  for (int i = 0; i < 10; ++i) h->Observe(3.0);  // all land in (2, 4]
  history.CollectNow();  // tick 3

  EXPECT_EQ(history.Ticks(), 3u);
  ASSERT_NE(history.LatestSnapshot(), nullptr);
  ASSERT_TRUE(history.Kind("history_test_lat_ms").has_value());
  EXPECT_EQ(*history.Kind("history_test_lat_ms"), SeriesKind::kHistogram);

  RangeRequest request;
  request.name = "history_test_lat_ms";
  request.agg = RangeAgg::kP50;
  request.start_ms = kBaseMs;
  request.end_ms = kBaseMs + 2000;
  request.step_ms = 1000;
  RangeResult p50 = history.Range(request);
  ASSERT_TRUE(p50.error.empty()) << p50.error;
  ASSERT_EQ(p50.series.size(), 1u);
  ASSERT_EQ(p50.series[0].points.size(), 2u);
  // First second: ten observations in (1, 2] -> p50 interpolates to 1.5.
  EXPECT_DOUBLE_EQ(p50.series[0].points[0].value, 1.5);
  // Second second: ten in (2, 4] -> 3.0.
  EXPECT_DOUBLE_EQ(p50.series[0].points[1].value, 3.0);

  request.agg = RangeAgg::kP99;
  RangeResult p99 = history.Range(request);
  ASSERT_TRUE(p99.error.empty()) << p99.error;
  EXPECT_DOUBLE_EQ(p99.series[0].points[0].value, 1.0 + 0.99);
  EXPECT_DOUBLE_EQ(p99.series[0].points[1].value, 2.0 + 2.0 * 0.99);

  request.agg = RangeAgg::kRate;
  RangeResult rate = history.Range(request);
  ASSERT_TRUE(rate.error.empty()) << rate.error;
  ASSERT_EQ(rate.series[0].points.size(), 2u);
  EXPECT_DOUBLE_EQ(rate.series[0].points[0].value, 10.0);
  EXPECT_DOUBLE_EQ(rate.series[0].points[1].value, 10.0);

  // Self-accounting: the retained bytes are charged to the tracker and
  // mirrored in the self-metrics.
  EXPECT_GT(history.ApproxBytes(), 0u);
  EXPECT_EQ(
      ResourceTracker::Default().LiveBytes(Component::kHistory),
      static_cast<int64_t>(history.ApproxBytes()));
  EXPECT_GT(
      Registry::Default().GaugeValue("raptor_history_series"), 0);
}

// =====================================================================
// Determinism: identical answers under concurrent readers.
// =====================================================================

/// Serializes a range answer so runs can be compared byte-for-byte.
std::string Serialize(const RangeResult& result) {
  std::ostringstream out;
  out << result.error << '|' << static_cast<int>(result.kind) << '|'
      << result.tier << '|' << result.step_ms;
  for (const RangeSeries& s : result.series) {
    out << "\ns";
    for (const auto& [k, v] : s.labels) out << ' ' << k << '=' << v;
    for (const RangePoint& p : s.points) {
      out << '\n' << p.t_ms << ' ' << std::hexfloat << p.value;
    }
  }
  return out.str();
}

TEST(HistoryDeterminismTest, ConcurrentReadersGetByteIdenticalAnswers) {
  TieredFixture fx;
  fx.AppendPerSecond("d", SeriesKind::kGauge, 181,
                     [](int i) { return 0.25 * i * ((i % 7) + 1); });

  RangeRequest request;
  request.name = "d";
  request.agg = RangeAgg::kAvg;
  request.start_ms = kBaseMs;
  request.end_ms = kBaseMs + 180'000;
  request.step_ms = 10'000;
  const std::string baseline = Serialize(fx.history.Range(request));
  ASSERT_FALSE(baseline.empty());

  for (size_t readers : {1u, 2u, 8u}) {
    std::vector<std::string> answers(readers);
    std::vector<std::thread> threads;
    threads.reserve(readers);
    for (size_t i = 0; i < readers; ++i) {
      threads.emplace_back([&, i] {
        answers[i] = Serialize(fx.history.Range(request));
      });
    }
    for (std::thread& t : threads) t.join();
    for (const std::string& answer : answers) {
      EXPECT_EQ(answer, baseline) << readers << " readers";
    }
  }
}

}  // namespace
}  // namespace raptor::obs
