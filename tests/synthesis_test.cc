// Tests for TBQL query synthesis (src/synthesis).

#include <gtest/gtest.h>

#include "nlp/behavior_graph.h"
#include "synthesis/rules.h"
#include "synthesis/synthesizer.h"
#include "tbql/printer.h"

namespace raptor::synth {
namespace {

using audit::EntityType;
using audit::Operation;
using nlp::BehaviorEdge;
using nlp::IocEntity;
using nlp::IocType;
using nlp::ThreatBehaviorGraph;

// --- Mapping rules. ---

TEST(RulesTest, AuditableTypes) {
  EXPECT_TRUE(IsAuditableIocType(IocType::kFilepath));
  EXPECT_TRUE(IsAuditableIocType(IocType::kFilename));
  EXPECT_TRUE(IsAuditableIocType(IocType::kIp));
  EXPECT_FALSE(IsAuditableIocType(IocType::kCve));
  EXPECT_FALSE(IsAuditableIocType(IocType::kHashMd5));
  EXPECT_FALSE(IsAuditableIocType(IocType::kRegistry));
  EXPECT_FALSE(IsAuditableIocType(IocType::kDomain));
}

struct RuleCase {
  const char* verb;
  IocType subj;
  IocType obj;
  Operation expected_op;
  EntityType expected_obj_type;
};

class MapRelationTest : public ::testing::TestWithParam<RuleCase> {};

TEST_P(MapRelationTest, Maps) {
  const RuleCase& c = GetParam();
  auto mapped = MapRelation(c.verb, c.subj, c.obj);
  ASSERT_TRUE(mapped.has_value()) << c.verb;
  EXPECT_EQ(mapped->op, c.expected_op) << c.verb;
  EXPECT_EQ(mapped->object_type, c.expected_obj_type) << c.verb;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, MapRelationTest,
    ::testing::Values(
        // The paper's example: "download" between two Filepath IOCs -> write.
        RuleCase{"download", IocType::kFilepath, IocType::kFilepath,
                 Operation::kWrite, EntityType::kFile},
        RuleCase{"read", IocType::kFilepath, IocType::kFilepath,
                 Operation::kRead, EntityType::kFile},
        RuleCase{"scan", IocType::kFilepath, IocType::kFilename,
                 Operation::kRead, EntityType::kFile},
        RuleCase{"write", IocType::kFilepath, IocType::kFilepath,
                 Operation::kWrite, EntityType::kFile},
        RuleCase{"compress", IocType::kFilepath, IocType::kFilepath,
                 Operation::kWrite, EntityType::kFile},
        RuleCase{"execute", IocType::kFilepath, IocType::kFilepath,
                 Operation::kExecute, EntityType::kFile},
        RuleCase{"delete", IocType::kFilepath, IocType::kFilepath,
                 Operation::kDelete, EntityType::kFile},
        RuleCase{"chmod", IocType::kFilepath, IocType::kFilepath,
                 Operation::kChmod, EntityType::kFile},
        // Process-creating verbs retarget the object to a process entity.
        RuleCase{"spawn", IocType::kFilepath, IocType::kFilepath,
                 Operation::kFork, EntityType::kProcess},
        RuleCase{"fork", IocType::kFilepath, IocType::kFilename,
                 Operation::kFork, EntityType::kProcess},
        // "send the archive": file object of a send verb is a read.
        RuleCase{"send", IocType::kFilepath, IocType::kFilepath,
                 Operation::kRead, EntityType::kFile},
        // Network objects.
        RuleCase{"connect", IocType::kFilepath, IocType::kIp,
                 Operation::kConnect, EntityType::kNetwork},
        RuleCase{"send", IocType::kFilepath, IocType::kIp, Operation::kSend,
                 EntityType::kNetwork},
        RuleCase{"exfiltrate", IocType::kFilepath, IocType::kIp,
                 Operation::kSend, EntityType::kNetwork},
        RuleCase{"download", IocType::kFilepath, IocType::kIp,
                 Operation::kRecv, EntityType::kNetwork},
        RuleCase{"beacon", IocType::kFilepath, IocType::kIp,
                 Operation::kConnect, EntityType::kNetwork}));

TEST(RulesTest, UnmappableCombinations) {
  // IP subject cannot be a process.
  EXPECT_FALSE(MapRelation("read", IocType::kIp, IocType::kFilepath));
  // Unknown verb.
  EXPECT_FALSE(
      MapRelation("ponder", IocType::kFilepath, IocType::kFilepath));
  // Connect verb against a file object.
  EXPECT_FALSE(
      MapRelation("connect", IocType::kFilepath, IocType::kFilepath));
}

// --- Synthesizer. ---

/// Builds the Figure-2-style behavior graph used by most tests.
ThreatBehaviorGraph LeakageGraph() {
  ThreatBehaviorGraph g;
  int tar = g.AddNode({-1, IocType::kFilepath, "/bin/tar", {}});
  int passwd = g.AddNode({-1, IocType::kFilepath, "/etc/passwd", {}});
  int archive = g.AddNode({-1, IocType::kFilepath, "/tmp/data.tar", {}});
  int c2 = g.AddNode({-1, IocType::kIp, "161.35.10.8", {}});
  g.AddEdge({tar, passwd, "read", 1, 10});
  g.AddEdge({tar, archive, "write", 2, 20});
  g.AddEdge({tar, c2, "send", 3, 30});
  return g;
}

TEST(SynthesizerTest, BasicSynthesis) {
  QuerySynthesizer synth;
  auto result = synth.Synthesize(LeakageGraph());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const tbql::Query& q = result->query;
  ASSERT_EQ(q.patterns.size(), 3u);
  EXPECT_EQ(q.patterns[0].op.names[0], "read");
  EXPECT_EQ(q.patterns[1].op.names[0], "write");
  EXPECT_EQ(q.patterns[2].op.names[0], "send");
  // Shared subject entity id across all three patterns.
  EXPECT_EQ(q.patterns[0].subject.id, q.patterns[1].subject.id);
  EXPECT_EQ(q.patterns[1].subject.id, q.patterns[2].subject.id);
}

TEST(SynthesizerTest, SubjectUsesLikeFilter) {
  QuerySynthesizer synth;
  auto result = synth.Synthesize(LeakageGraph());
  ASSERT_TRUE(result.ok());
  const auto& f = result->query.patterns[0].subject.filters[0];
  EXPECT_EQ(f.attr, "exename");
  EXPECT_EQ(f.op, rel::CompareOp::kLike);
  EXPECT_EQ(f.string_value, "%/bin/tar%");
}

TEST(SynthesizerTest, FileObjectUsesExactMatchByDefault) {
  QuerySynthesizer synth;
  auto result = synth.Synthesize(LeakageGraph());
  ASSERT_TRUE(result.ok());
  const auto& f = result->query.patterns[0].object.filters[0];
  EXPECT_EQ(f.attr, "name");
  EXPECT_EQ(f.op, rel::CompareOp::kEq);
  EXPECT_EQ(f.string_value, "/etc/passwd");
}

TEST(SynthesizerTest, LikeMatchFilesPlan) {
  SynthesisPlan plan;
  plan.like_match_files = true;
  QuerySynthesizer synth(plan);
  auto result = synth.Synthesize(LeakageGraph());
  ASSERT_TRUE(result.ok());
  const auto& f = result->query.patterns[0].object.filters[0];
  EXPECT_EQ(f.op, rel::CompareOp::kLike);
  EXPECT_EQ(f.string_value, "%/etc/passwd%");
}

TEST(SynthesizerTest, TemporalChainFollowsSequence) {
  QuerySynthesizer synth;
  auto result = synth.Synthesize(LeakageGraph());
  ASSERT_TRUE(result.ok());
  const auto& temporal = result->query.temporal;
  ASSERT_EQ(temporal.size(), 2u);
  EXPECT_EQ(temporal[0].first, "evt1");
  EXPECT_EQ(temporal[0].second, "evt2");
  EXPECT_EQ(temporal[1].first, "evt2");
  EXPECT_EQ(temporal[1].second, "evt3");
}

TEST(SynthesizerTest, ScreeningDropsNonAuditableNodes) {
  ThreatBehaviorGraph g;
  int bash = g.AddNode({-1, IocType::kFilepath, "/bin/bash", {}});
  int shadow = g.AddNode({-1, IocType::kFilepath, "/etc/shadow", {}});
  int cve = g.AddNode({-1, IocType::kCve, "CVE-2014-6271", {}});
  int domain = g.AddNode({-1, IocType::kDomain, "evil.com", {}});
  g.AddEdge({bash, cve, "exploit", 1, 5});
  g.AddEdge({bash, shadow, "read", 2, 10});
  g.AddEdge({bash, domain, "contact", 3, 15});

  QuerySynthesizer synth;
  auto result = synth.Synthesize(g);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->query.patterns.size(), 1u);
  EXPECT_EQ(result->screened_nodes.size(), 2u);
}

TEST(SynthesizerTest, UnmappedEdgesRecorded) {
  ThreatBehaviorGraph g;
  int a = g.AddNode({-1, IocType::kFilepath, "/bin/a", {}});
  int b = g.AddNode({-1, IocType::kFilepath, "/tmp/b", {}});
  g.AddEdge({a, b, "mention", 1, 5});  // no rule for "mention"
  g.AddEdge({a, b, "read", 2, 10});
  QuerySynthesizer synth;
  auto result = synth.Synthesize(g);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->query.patterns.size(), 1u);
  EXPECT_EQ(result->unmapped_edges.size(), 1u);
}

TEST(SynthesizerTest, AllEdgesScreenedIsNotFound) {
  ThreatBehaviorGraph g;
  int cve = g.AddNode({-1, IocType::kCve, "CVE-1-2", {}});
  int dom = g.AddNode({-1, IocType::kDomain, "x.com", {}});
  g.AddEdge({cve, dom, "use", 1, 5});
  QuerySynthesizer synth;
  auto result = synth.Synthesize(g);
  EXPECT_TRUE(result.status().IsNotFound());
}

TEST(SynthesizerTest, EmptyGraphIsNotFound) {
  QuerySynthesizer synth;
  EXPECT_TRUE(synth.Synthesize(ThreatBehaviorGraph()).status().IsNotFound());
}

TEST(SynthesizerTest, DuplicateMappedEdgesCollapse) {
  ThreatBehaviorGraph g;
  int p = g.AddNode({-1, IocType::kFilepath, "/bin/p", {}});
  int f = g.AddNode({-1, IocType::kFilepath, "/tmp/f", {}});
  // "read" and "send" (file object) both map to the read operation.
  g.AddEdge({p, f, "read", 1, 5});
  g.AddEdge({p, f, "send", 2, 10});
  QuerySynthesizer synth;
  auto result = synth.Synthesize(g);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->query.patterns.size(), 1u);
  EXPECT_TRUE(result->query.temporal.empty());
}

TEST(SynthesizerTest, NetworkEntitiesAreNotShared) {
  ThreatBehaviorGraph g;
  int bash = g.AddNode({-1, IocType::kFilepath, "/bin/bash", {}});
  int cracker = g.AddNode({-1, IocType::kFilepath, "/tmp/cracker", {}});
  int c2 = g.AddNode({-1, IocType::kIp, "161.35.10.8", {}});
  g.AddEdge({bash, c2, "connect", 1, 5});
  g.AddEdge({cracker, c2, "send", 2, 10});
  QuerySynthesizer synth;
  auto result = synth.Synthesize(g);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->query.patterns.size(), 2u);
  // Two different flows to the same IP: distinct network entity ids.
  EXPECT_NE(result->query.patterns[0].object.id,
            result->query.patterns[1].object.id);
}

TEST(SynthesizerTest, FileAndProcessRolesOfSameIocAreDistinctEntities) {
  ThreatBehaviorGraph g;
  int bash = g.AddNode({-1, IocType::kFilepath, "/bin/bash", {}});
  int cracker = g.AddNode({-1, IocType::kFilepath, "/tmp/cracker", {}});
  int shadow = g.AddNode({-1, IocType::kFilepath, "/etc/shadow", {}});
  g.AddEdge({bash, cracker, "download", 1, 5});   // cracker as file
  g.AddEdge({cracker, shadow, "read", 2, 10});    // cracker as process
  QuerySynthesizer synth;
  auto result = synth.Synthesize(g);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->query.patterns.size(), 2u);
  EXPECT_NE(result->query.patterns[0].object.id,
            result->query.patterns[1].subject.id);
  EXPECT_EQ(result->query.patterns[0].object.type, EntityType::kFile);
  EXPECT_EQ(result->query.patterns[1].subject.type, EntityType::kProcess);
}

TEST(SynthesizerTest, PathPatternPlan) {
  SynthesisPlan plan;
  plan.use_path_patterns = true;
  plan.path_min_hops = 1;
  plan.path_max_hops = 3;
  QuerySynthesizer synth(plan);
  ThreatBehaviorGraph g;
  int bash = g.AddNode({-1, IocType::kFilepath, "/bin/bash", {}});
  int shadow = g.AddNode({-1, IocType::kFilepath, "/etc/shadow", {}});
  int child = g.AddNode({-1, IocType::kFilepath, "/tmp/child", {}});
  g.AddEdge({bash, shadow, "read", 1, 5});
  g.AddEdge({bash, child, "spawn", 2, 10});
  auto result = synth.Synthesize(g);
  ASSERT_TRUE(result.ok());
  // File edge becomes a path pattern; the fork edge stays single-hop.
  EXPECT_TRUE(result->query.patterns[0].is_path);
  EXPECT_EQ(result->query.patterns[0].max_hops, 3u);
  EXPECT_FALSE(result->query.patterns[1].is_path);
}

TEST(SynthesizerTest, WindowPlan) {
  SynthesisPlan plan;
  plan.window = {100, 200};
  QuerySynthesizer synth(plan);
  auto result = synth.Synthesize(LeakageGraph());
  ASSERT_TRUE(result.ok());
  for (const auto& p : result->query.patterns) {
    ASSERT_TRUE(p.window_start.has_value());
    EXPECT_EQ(*p.window_start, 100);
    EXPECT_EQ(*p.window_end, 200);
  }
}

TEST(SynthesizerTest, SynthesizedQueryIsAnalyzed) {
  QuerySynthesizer synth;
  auto result = synth.Synthesize(LeakageGraph());
  ASSERT_TRUE(result.ok());
  // Defaults were expanded: every filter has an attribute, returns exist.
  for (const auto& p : result->query.patterns) {
    for (const auto& f : p.subject.filters) EXPECT_FALSE(f.attr.empty());
    for (const auto& f : p.object.filters) EXPECT_FALSE(f.attr.empty());
  }
  EXPECT_FALSE(result->query.returns.empty());
  // And it pretty-prints.
  EXPECT_FALSE(tbql::Print(result->query).empty());
}

}  // namespace
}  // namespace raptor::synth
