// Tests for the structured OSCTI feed module (src/cti).

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "core/threat_raptor.h"
#include "cti/feed.h"

namespace raptor::cti {
namespace {

constexpr const char* kBundle = R"({
  "type": "bundle",
  "objects": [
    {"type": "indicator", "id": "indicator--1", "name": "cracker",
     "pattern": "[file:name = '/tmp/cracker']"},
    {"type": "indicator", "id": "indicator--2",
     "pattern": "[ipv4-addr:value = '161.35.10.8']"},
    {"type": "indicator", "id": "indicator--3",
     "pattern": "[domain-name:value = 'evil-c2.com']"},
    {"type": "indicator", "id": "indicator--4",
     "pattern": "[file:hashes.'SHA-256' = 'aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa']"},
    {"type": "malware", "id": "malware--1", "name": "not an indicator"}
  ]
})";

TEST(StixTest, ParsesBundle) {
  auto indicators = ParseStixBundle(kBundle);
  ASSERT_TRUE(indicators.ok()) << indicators.status().ToString();
  ASSERT_EQ(indicators->size(), 4u);  // the malware object is skipped
  EXPECT_EQ((*indicators)[0].value, "/tmp/cracker");
  EXPECT_EQ((*indicators)[0].type, nlp::IocType::kFilepath);
  EXPECT_EQ((*indicators)[0].name, "cracker");
  EXPECT_EQ((*indicators)[1].type, nlp::IocType::kIp);
  EXPECT_EQ((*indicators)[2].type, nlp::IocType::kDomain);
  EXPECT_EQ((*indicators)[3].type, nlp::IocType::kHashSha256);
}

TEST(StixTest, FileNameWithoutSlashIsFilename) {
  auto indicators = ParseStixBundle(
      R"({"type":"bundle","objects":[
           {"type":"indicator","pattern":"[file:name = 'dropper.exe']"}]})");
  ASSERT_TRUE(indicators.ok());
  EXPECT_EQ((*indicators)[0].type, nlp::IocType::kFilename);
}

TEST(StixTest, RejectsNonBundle) {
  EXPECT_TRUE(ParseStixBundle(R"({"type":"report"})")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ParseStixBundle("not json").status().IsParseError());
}

TEST(StixTest, RejectsUnsupportedPattern) {
  auto r = ParseStixBundle(
      R"({"type":"bundle","objects":[
           {"type":"indicator","pattern":"[x509:serial = '1']"}]})");
  EXPECT_TRUE(r.status().IsUnsupported());
}

TEST(StixTest, RejectsMalformedPattern) {
  for (const char* pattern :
       {"file:name = '/x'", "[file:name '/x']", "[file:name = /x]"}) {
    std::string bundle =
        std::string(R"({"type":"bundle","objects":[
             {"type":"indicator","pattern":")") +
        pattern + R"("}]})";
    EXPECT_FALSE(ParseStixBundle(bundle).ok()) << pattern;
  }
}

TEST(StixTest, RoundTripThroughBundleText) {
  auto indicators = ParseStixBundle(kBundle);
  ASSERT_TRUE(indicators.ok());
  std::string serialized = ToStixBundle(*indicators);
  auto reparsed = ParseStixBundle(serialized);
  ASSERT_TRUE(reparsed.ok()) << serialized;
  ASSERT_EQ(reparsed->size(), indicators->size());
  for (size_t i = 0; i < indicators->size(); ++i) {
    EXPECT_EQ((*reparsed)[i].type, (*indicators)[i].type);
    EXPECT_EQ((*reparsed)[i].value, (*indicators)[i].value);
  }
}

TEST(IndicatorsFromTextTest, ExtractsAndDeduplicates) {
  nlp::IocRecognizer recognizer;
  auto indicators = IndicatorsFromText(
      "/bin/tar read /etc/passwd and again /etc/passwd, then sent data to "
      "161.35.10.8.",
      recognizer);
  ASSERT_EQ(indicators.size(), 3u);
  EXPECT_EQ(indicators[0].value, "/bin/tar");
  EXPECT_EQ(indicators[1].value, "/etc/passwd");
  EXPECT_EQ(indicators[2].value, "161.35.10.8");
}

TEST(IocQueriesTest, SynthesizesPerAuditableIndicator) {
  std::vector<Indicator> indicators = {
      {"", "", nlp::IocType::kFilepath, "/etc/shadow"},
      {"", "", nlp::IocType::kIp, "161.35.10.8"},
      {"", "", nlp::IocType::kCve, "CVE-2014-6271"},   // not auditable
      {"", "", nlp::IocType::kDomain, "evil.com"},     // not auditable
  };
  auto queries = SynthesizeIocQueries(indicators);
  ASSERT_EQ(queries.size(), 2u);
  EXPECT_EQ(queries[0].patterns[0].object.type, audit::EntityType::kFile);
  EXPECT_EQ(queries[1].patterns[0].object.type, audit::EntityType::kNetwork);
  // Queries are analyzed: default return clauses were synthesized.
  EXPECT_FALSE(queries[0].returns.empty());
}

TEST(IocQueriesTest, ExecutesAgainstTrace) {
  ThreatRaptor system;
  audit::WorkloadGenerator gen;
  gen.GenerateBenign(5000, system.mutable_log());
  auto attack = gen.InjectPasswordCrackingAttack(system.mutable_log());
  gen.GenerateBenign(5000, system.mutable_log());
  ASSERT_TRUE(system.FinalizeStorage().ok());

  std::vector<Indicator> indicators = {
      {"", "", nlp::IocType::kFilepath, "/etc/shadow"},
  };
  auto queries = SynthesizeIocQueries(indicators);
  ASSERT_EQ(queries.size(), 1u);
  auto result = system.ExecuteQuery(queries[0]);
  ASSERT_TRUE(result.ok());
  // The cracker touched the shadow file — and so did legitimate sshd
  // logins: the isolated-IOC query cannot tell them apart.
  std::set<std::string> processes;
  for (const auto& row : result->bindings) {
    processes.insert(
        system.log().entity(row.at("p")).exename);
  }
  EXPECT_TRUE(processes.count("/tmp/cracker") > 0);
  EXPECT_TRUE(processes.count("/usr/sbin/sshd") > 0);
}

TEST(IocQueriesTest, BehaviorHuntExcludesBenignTouches) {
  // The contrast experiment (E10) as a regression test: behavior-graph
  // hunting keeps precision 1.0 in the presence of benign sensitive
  // touches that fool isolated-IOC matching.
  ThreatRaptor system;
  audit::WorkloadGenerator gen;
  gen.GenerateBenign(20000, system.mutable_log());
  auto attack = gen.InjectPasswordCrackingAttack(system.mutable_log());
  gen.GenerateBenign(20000, system.mutable_log());
  ASSERT_TRUE(system.FinalizeStorage().ok());

  auto hunt = system.Hunt(attack.report_text);
  ASSERT_TRUE(hunt.ok());
  auto truth = system.TranslateEventIds(attack.event_ids);
  std::set<audit::EventId> truth_set(truth.begin(), truth.end());
  for (audit::EventId id : hunt->result.MatchedEvents()) {
    EXPECT_TRUE(truth_set.count(id) > 0)
        << "behavior hunt flagged non-attack event " << id;
  }
}

}  // namespace
}  // namespace raptor::cti
