// Tests for segmentation, tokenization, POS tagging, lemmatization, and
// word embeddings (src/nlp).

#include <gtest/gtest.h>

#include "nlp/embeddings.h"
#include "nlp/lexicon.h"
#include "nlp/pos_tagger.h"
#include "nlp/segmenter.h"

namespace raptor::nlp {
namespace {

// --- Block segmentation. ---

TEST(SegmenterTest, BlocksSplitOnBlankLines) {
  auto blocks = SegmentBlocks("para one line a\nline b\n\npara two\n");
  ASSERT_EQ(blocks.size(), 2u);
  EXPECT_EQ(blocks[0].text, "para one line a\nline b");
  EXPECT_EQ(blocks[1].text, "para two");
  EXPECT_EQ(blocks[1].offset, 17u + 7u);  // after "para one line a\nline b\n\n"
}

TEST(SegmenterTest, HeadersAreOwnBlocks) {
  auto blocks = SegmentBlocks("# Title\nbody text\nmore body");
  ASSERT_EQ(blocks.size(), 2u);
  EXPECT_EQ(blocks[0].text, "# Title");
  EXPECT_EQ(blocks[1].text, "body text\nmore body");
}

TEST(SegmenterTest, EmptyDocument) {
  EXPECT_TRUE(SegmentBlocks("").empty());
  EXPECT_TRUE(SegmentBlocks("\n\n\n").empty());
}

// --- Sentence segmentation. ---

TEST(SegmenterTest, SentencesSplitOnTerminators) {
  auto sents = SegmentSentences("First one. Second one! Third one?");
  ASSERT_EQ(sents.size(), 3u);
  EXPECT_EQ(sents[0].text, "First one.");
  EXPECT_EQ(sents[1].text, "Second one!");
  EXPECT_EQ(sents[2].text, "Third one?");
}

TEST(SegmenterTest, AbbreviationsDoNotSplit) {
  auto sents = SegmentSentences("Files, e.g. shadow files, were read.");
  ASSERT_EQ(sents.size(), 1u);
}

TEST(SegmenterTest, NoTrailingTerminator) {
  auto sents = SegmentSentences("One. Two without period");
  ASSERT_EQ(sents.size(), 2u);
  EXPECT_EQ(sents[1].text, "Two without period");
}

TEST(SegmenterTest, SentenceOffsetsIndexIntoBlock) {
  std::string block = "Alpha beta. Gamma delta.";
  auto sents = SegmentSentences(block);
  ASSERT_EQ(sents.size(), 2u);
  for (const auto& s : sents) {
    EXPECT_EQ(block.substr(s.offset, s.text.size()), s.text);
  }
}

// --- Tokenizer. ---

TEST(TokenizerTest, BasicWordsAndPunct) {
  auto toks = Tokenize("The process read it.");
  ASSERT_EQ(toks.size(), 5u);
  EXPECT_EQ(toks[0].text, "The");
  EXPECT_EQ(toks[3].text, "it");
  EXPECT_EQ(toks[4].text, ".");
  EXPECT_EQ(toks[4].pos, Pos::kPunct);
}

TEST(TokenizerTest, OffsetsIndexIntoText) {
  std::string text = "abc, def (ghi)";
  for (const Token& t : Tokenize(text)) {
    EXPECT_EQ(text.substr(t.offset, t.text.size()), t.text);
  }
}

TEST(TokenizerTest, SplitsInternalSlashesLikeGeneralTokenizers) {
  // This is the behavior that shatters unprotected IOCs (see segmenter.cc).
  auto toks = Tokenize("/etc/passwd");
  ASSERT_EQ(toks.size(), 4u);
  EXPECT_EQ(toks[0].text, "/");
  EXPECT_EQ(toks[1].text, "etc");
  EXPECT_EQ(toks[2].text, "/");
  EXPECT_EQ(toks[3].text, "passwd");
}

TEST(TokenizerTest, ProtectedDummySurvivesWhole) {
  auto toks = Tokenize("read something now");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[1].text, "something");
}

TEST(TokenizerTest, HyphensAndUnderscoresStayInside) {
  auto toks = Tokenize("command-and-control my_var");
  ASSERT_EQ(toks.size(), 2u);
  EXPECT_EQ(toks[0].text, "command-and-control");
  EXPECT_EQ(toks[1].text, "my_var");
}

TEST(TokenizerTest, LeadingAndTrailingPunct) {
  auto toks = Tokenize("(hello),");
  ASSERT_EQ(toks.size(), 4u);
  EXPECT_EQ(toks[0].text, "(");
  EXPECT_EQ(toks[1].text, "hello");
  EXPECT_EQ(toks[2].text, ")");
  EXPECT_EQ(toks[3].text, ",");
}

// --- Lexicon + lemmatizer. ---

TEST(LexiconTest, ClosedClasses) {
  const Lexicon& lex = Lexicon::Default();
  EXPECT_TRUE(lex.IsDeterminer("the"));
  EXPECT_TRUE(lex.IsPronoun("it"));
  EXPECT_TRUE(lex.IsPreposition("into"));
  EXPECT_TRUE(lex.IsConjunction("and"));
  EXPECT_TRUE(lex.IsAuxiliary("was"));
  EXPECT_TRUE(lex.IsAdverb("finally"));
  EXPECT_FALSE(lex.IsDeterminer("tar"));
}

struct LemmaCase {
  const char* form;
  const char* lemma;
};

class VerbLemmaTest : public ::testing::TestWithParam<LemmaCase> {};

TEST_P(VerbLemmaTest, Lemmatizes) {
  EXPECT_EQ(Lexicon::Default().LemmatizeVerb(GetParam().form),
            GetParam().lemma);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, VerbLemmaTest,
    ::testing::Values(
        LemmaCase{"wrote", "write"}, LemmaCase{"written", "write"},
        LemmaCase{"sent", "send"}, LemmaCase{"read", "read"},
        LemmaCase{"ran", "run"}, LemmaCase{"stole", "steal"},
        LemmaCase{"connected", "connect"}, LemmaCase{"connects", "connect"},
        LemmaCase{"connecting", "connect"}, LemmaCase{"downloaded",
                                                      "download"},
        LemmaCase{"downloads", "download"}, LemmaCase{"executes", "execute"},
        LemmaCase{"executed", "execute"}, LemmaCase{"running", "run"},
        LemmaCase{"dropped", "drop"}, LemmaCase{"dropping", "drop"},
        LemmaCase{"copies", "copy"}, LemmaCase{"copied", "copy"},
        LemmaCase{"received", "receive"}, LemmaCase{"receives", "receive"},
        LemmaCase{"uses", "use"}, LemmaCase{"scanned", "scan"},
        LemmaCase{"was", "be"}, LemmaCase{"launch", "launch"}));

TEST(LexiconTest, NounLemmatizer) {
  const Lexicon& lex = Lexicon::Default();
  EXPECT_EQ(lex.LemmatizeNoun("files"), "file");
  EXPECT_EQ(lex.LemmatizeNoun("processes"), "process");
  EXPECT_EQ(lex.LemmatizeNoun("binaries"), "binary");
  EXPECT_EQ(lex.LemmatizeNoun("pass"), "pass");   // -ss untouched
  EXPECT_EQ(lex.LemmatizeNoun("virus"), "virus");  // -us untouched
}

TEST(LexiconTest, RelationVerbsAreKnownVerbs) {
  const Lexicon& lex = Lexicon::Default();
  for (const char* v : {"read", "write", "download", "connect", "send",
                        "execute", "exfiltrate"}) {
    EXPECT_TRUE(lex.IsRelationVerb(v)) << v;
    EXPECT_TRUE(lex.IsKnownVerb(v)) << v;
  }
  EXPECT_FALSE(lex.IsRelationVerb("seem"));
}

// --- POS tagger. ---

std::vector<Token> Tag(const std::string& text) {
  auto toks = Tokenize(text);
  TagPos(&toks, Lexicon::Default());
  return toks;
}

TEST(PosTaggerTest, SimpleClause) {
  auto toks = Tag("The process something read the file something.");
  ASSERT_EQ(toks.size(), 8u);
  EXPECT_EQ(toks[0].pos, Pos::kDet);
  EXPECT_EQ(toks[1].pos, Pos::kNoun);
  EXPECT_EQ(toks[2].pos, Pos::kPron);
  EXPECT_EQ(toks[3].pos, Pos::kVerb);
  EXPECT_EQ(toks[3].lemma, "read");
  EXPECT_EQ(toks[7].pos, Pos::kPunct);
}

TEST(PosTaggerTest, BaseFormVerbAfterDeterminerIsNoun) {
  auto toks = Tag("the download finished");
  EXPECT_EQ(toks[1].pos, Pos::kNoun);
}

TEST(PosTaggerTest, ParticipleBeforeNounIsAdjective) {
  auto toks = Tag("wrote the collected data there");
  EXPECT_EQ(toks[2].pos, Pos::kAdj);   // collected
  EXPECT_EQ(toks[3].pos, Pos::kNoun);  // data
}

TEST(PosTaggerTest, ChainedNpInternalRepair) {
  auto toks = Tag("wrote the compressed archive something");
  EXPECT_EQ(toks[2].pos, Pos::kAdj);   // compressed
  EXPECT_EQ(toks[3].pos, Pos::kNoun);  // archive (base-form verb in NP)
}

TEST(PosTaggerTest, InflectedVerbAfterNounStaysVerb) {
  auto toks = Tag("the attacker downloaded something");
  EXPECT_EQ(toks[2].pos, Pos::kVerb);
  EXPECT_EQ(toks[2].lemma, "download");
}

TEST(PosTaggerTest, PassiveAuxiliary) {
  auto toks = Tag("something was downloaded by something");
  EXPECT_EQ(toks[1].pos, Pos::kAux);
  EXPECT_EQ(toks[2].pos, Pos::kVerb);
  EXPECT_EQ(toks[3].pos, Pos::kAdp);
}

TEST(PosTaggerTest, ToBeforeVerbIsParticle) {
  auto toks = Tag("attempted to connect immediately");
  EXPECT_EQ(toks[1].pos, Pos::kPart);
  EXPECT_EQ(toks[2].pos, Pos::kVerb);
  EXPECT_EQ(toks[3].pos, Pos::kAdv);
}

TEST(PosTaggerTest, ToBeforeNounIsPreposition) {
  auto toks = Tag("wrote data to something");
  EXPECT_EQ(toks[2].pos, Pos::kAdp);
}

TEST(PosTaggerTest, NumbersTagged) {
  auto toks = Tag("sent 4096 bytes");
  EXPECT_EQ(toks[1].pos, Pos::kNum);
}

// --- Embeddings. ---

TEST(EmbeddingsTest, IdenticalWordsHaveSimilarityOne) {
  Embedding a = EmbedWord("/tmp/payload.bin");
  EXPECT_NEAR(CosineSimilarity(a, a), 1.0, 1e-5);
}

TEST(EmbeddingsTest, SimilarStringsScoreHigherThanDissimilar) {
  Embedding a = EmbedWord("/tmp/payload.bin");
  Embedding b = EmbedWord("/tmp/payload2.bin");
  Embedding c = EmbedWord("161.35.10.8");
  EXPECT_GT(CosineSimilarity(a, b), CosineSimilarity(a, c));
  EXPECT_GT(CosineSimilarity(a, b), 0.8);
}

TEST(EmbeddingsTest, ShortWordsAreZeroVectors) {
  Embedding a = EmbedWord("ab");  // below the 3-gram minimum
  EXPECT_DOUBLE_EQ(CosineSimilarity(a, a), 0.0);
}

TEST(EmbeddingsTest, Deterministic) {
  Embedding a = EmbedWord("/bin/tar");
  Embedding b = EmbedWord("/bin/tar");
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace raptor::nlp
