// Cross-module integration and property tests: the full pipeline under
// varied seeds, CPR on/off equivalence, scheduling equivalence at scale,
// and robustness to report paraphrasing.

#include <gtest/gtest.h>

#include <set>

#include "core/threat_raptor.h"
#include "engine/translate.h"
#include "tbql/printer.h"

namespace raptor {
namespace {

struct HuntScore {
  double precision = 0;
  double recall = 0;
  size_t rows = 0;
};

HuntScore ScoreHunt(ThreatRaptor* system, const audit::AttackTrace& attack,
                    const std::string& report) {
  auto hunt = system->Hunt(report);
  EXPECT_TRUE(hunt.ok()) << hunt.status().ToString();
  if (!hunt.ok()) return {};
  auto matched = hunt->result.MatchedEvents();
  auto truth = system->TranslateEventIds(attack.core_event_ids);
  std::set<audit::EventId> truth_set(truth.begin(), truth.end());
  size_t tp = 0;
  for (audit::EventId id : matched) tp += truth_set.count(id);
  HuntScore score;
  score.rows = hunt->result.rows.size();
  score.precision =
      matched.empty() ? 0.0 : static_cast<double>(tp) / matched.size();
  score.recall =
      truth.empty() ? 0.0 : static_cast<double>(tp) / truth.size();
  return score;
}

class SeededHuntTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SeededHuntTest, LeakageHuntExactAcrossSeeds) {
  audit::GeneratorOptions gopts;
  gopts.seed = GetParam();
  ThreatRaptor system;
  audit::WorkloadGenerator gen(gopts);
  gen.GenerateBenign(10000, system.mutable_log());
  auto attack = gen.InjectDataLeakageAttack(system.mutable_log());
  gen.GenerateBenign(10000, system.mutable_log());
  ASSERT_TRUE(system.FinalizeStorage().ok());
  HuntScore score = ScoreHunt(&system, attack, attack.report_text);
  EXPECT_DOUBLE_EQ(score.precision, 1.0) << "seed " << GetParam();
  EXPECT_DOUBLE_EQ(score.recall, 1.0) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededHuntTest,
                         ::testing::Values(7, 21, 99, 1234, 88888));

TEST(IntegrationTest, CprOnAndOffFindSameAttackEvents) {
  // CPR must not change what a hunt finds — only how much storage it scans.
  auto run = [](bool cpr) {
    ThreatRaptorOptions opts;
    opts.apply_cpr = cpr;
    auto system = std::make_unique<ThreatRaptor>(opts);
    audit::WorkloadGenerator gen;
    gen.GenerateBenign(20000, system->mutable_log());
    auto attack = gen.InjectPasswordCrackingAttack(system->mutable_log());
    gen.GenerateBenign(20000, system->mutable_log());
    EXPECT_TRUE(system->FinalizeStorage().ok());
    auto hunt = system->Hunt(attack.report_text);
    EXPECT_TRUE(hunt.ok());
    // Compare results by projected rows (ids differ after reduction).
    return hunt.ok() ? hunt->result.rows
                     : std::vector<std::vector<std::string>>{};
  };
  EXPECT_EQ(run(true), run(false));
}

TEST(IntegrationTest, BothAttacksInOneTraceAreSeparable) {
  ThreatRaptor system;
  audit::WorkloadGenerator gen;
  gen.GenerateBenign(10000, system.mutable_log());
  auto leak = gen.InjectDataLeakageAttack(system.mutable_log());
  gen.GenerateBenign(10000, system.mutable_log());
  auto crack = gen.InjectPasswordCrackingAttack(system.mutable_log());
  gen.GenerateBenign(10000, system.mutable_log());
  ASSERT_TRUE(system.FinalizeStorage().ok());

  HuntScore leak_score = ScoreHunt(&system, leak, leak.report_text);
  EXPECT_DOUBLE_EQ(leak_score.precision, 1.0);
  EXPECT_DOUBLE_EQ(leak_score.recall, 1.0);
  HuntScore crack_score = ScoreHunt(&system, crack, crack.report_text);
  EXPECT_DOUBLE_EQ(crack_score.precision, 1.0);
  EXPECT_DOUBLE_EQ(crack_score.recall, 1.0);
}

TEST(IntegrationTest, ParaphrasedReportStillHunts) {
  ThreatRaptor system;
  audit::WorkloadGenerator gen;
  gen.GenerateBenign(5000, system.mutable_log());
  auto attack = gen.InjectDataLeakageAttack(system.mutable_log());
  gen.GenerateBenign(5000, system.mutable_log());
  ASSERT_TRUE(system.FinalizeStorage().ok());

  // A differently-worded description of the same behavior (passive voice,
  // pronouns, different verbs).
  const char* paraphrase =
      "After breaking in, the adversary collected credentials: the file "
      "/etc/passwd was read by /bin/tar. /bin/tar stored the stolen data in "
      "/tmp/data.tar. Later /bin/gzip read /tmp/data.tar and created "
      "/tmp/data.tar.gz. /usr/bin/curl read /tmp/data.tar.gz and "
      "exfiltrated the archive to 161.35.10.8.";
  HuntScore score = ScoreHunt(&system, attack, paraphrase);
  EXPECT_GE(score.recall, 0.8);
  EXPECT_DOUBLE_EQ(score.precision, 1.0);
  EXPECT_GE(score.rows, 1u);
}

TEST(IntegrationTest, HumanInTheLoopQueryEditing) {
  // The demo's query-editing path: synthesize, narrow, re-execute.
  ThreatRaptor system;
  audit::WorkloadGenerator gen;
  gen.GenerateBenign(5000, system.mutable_log());
  auto attack = gen.InjectDataLeakageAttack(system.mutable_log());
  gen.GenerateBenign(5000, system.mutable_log());
  ASSERT_TRUE(system.FinalizeStorage().ok());

  auto extraction = system.ExtractBehavior(attack.report_text);
  auto synthesis = system.SynthesizeQuery(extraction.graph);
  ASSERT_TRUE(synthesis.ok());
  std::string text = tbql::Print(synthesis->query);

  // Analyst narrows the hunt to the exfiltration step only.
  auto narrowed = system.ExecuteTbql(
      "proc p[\"%curl%\"] send net n[dstip = \"161.35.10.8\"]\n"
      "return p, n");
  ASSERT_TRUE(narrowed.ok());
  ASSERT_EQ(narrowed->rows.size(), 1u);
  EXPECT_EQ(narrowed->rows[0][0], "/usr/bin/curl");
  EXPECT_EQ(narrowed->rows[0][1], "161.35.10.8");
}

TEST(IntegrationTest, ScalesToLargerTraces) {
  ThreatRaptor system;
  audit::WorkloadGenerator gen;
  gen.GenerateBenign(100000, system.mutable_log());
  auto attack = gen.InjectDataLeakageAttack(system.mutable_log());
  gen.GenerateBenign(100000, system.mutable_log());
  ASSERT_TRUE(system.FinalizeStorage().ok());
  HuntScore score = ScoreHunt(&system, attack, attack.report_text);
  EXPECT_DOUBLE_EQ(score.precision, 1.0);
  EXPECT_DOUBLE_EQ(score.recall, 1.0);
}

TEST(IntegrationTest, SqlAndCypherRenderForSynthesizedQueries) {
  ThreatRaptor system;
  audit::WorkloadGenerator gen;
  auto attack = gen.InjectPasswordCrackingAttack(system.mutable_log());
  ASSERT_TRUE(system.FinalizeStorage().ok());
  auto extraction = system.ExtractBehavior(attack.report_text);
  auto synthesis = system.SynthesizeQuery(extraction.graph);
  ASSERT_TRUE(synthesis.ok());
  std::string sql = engine::RenderSql(synthesis->query);
  std::string cypher = engine::RenderCypher(synthesis->query);
  EXPECT_NE(sql.find("SELECT"), std::string::npos);
  EXPECT_NE(cypher.find("MATCH"), std::string::npos);
  // TBQL stays the most concise of the three (paper's conciseness claim).
  std::string tbql_text = tbql::Print(synthesis->query);
  EXPECT_LT(tbql_text.size(), sql.size());
  EXPECT_LT(tbql_text.size(), cypher.size());
}

TEST(IntegrationTest, RoundTripLogSerialization) {
  // Generate -> format -> parse -> hunt gives the same answer as hunting
  // the original log.
  audit::AuditLog original;
  audit::WorkloadGenerator gen;
  gen.GenerateBenign(3000, &original);
  auto attack = gen.InjectDataLeakageAttack(&original);
  gen.GenerateBenign(3000, &original);

  std::string text;
  for (const auto& ev : original.events()) {
    text += audit::LogParser::FormatEvent(original, ev) + "\n";
  }

  ThreatRaptor system;
  ASSERT_TRUE(system.IngestLogText(text).ok());
  ASSERT_TRUE(system.FinalizeStorage().ok());
  auto hunt = system.Hunt(attack.report_text);
  ASSERT_TRUE(hunt.ok());
  EXPECT_EQ(hunt->result.rows.size(), 1u);
}

}  // namespace
}  // namespace raptor
