// Tests for src/audit: the event model, log interning, the textual parser,
// and the workload generator.

#include <gtest/gtest.h>

#include "audit/generator.h"
#include "audit/log.h"
#include "audit/parser.h"
#include "audit/types.h"

namespace raptor::audit {
namespace {

// --- Types. ---

class OperationRoundTripTest : public ::testing::TestWithParam<Operation> {};

TEST_P(OperationRoundTripTest, NameParsesBack) {
  Operation op = GetParam();
  auto parsed = ParseOperation(OperationName(op));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, op);
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, OperationRoundTripTest,
    ::testing::Values(Operation::kRead, Operation::kWrite, Operation::kExecute,
                      Operation::kDelete, Operation::kRename,
                      Operation::kChmod, Operation::kFork, Operation::kStart,
                      Operation::kKill, Operation::kConnect,
                      Operation::kAccept, Operation::kSend, Operation::kRecv));

TEST(TypesTest, OperationAliases) {
  EXPECT_EQ(*ParseOperation("exec"), Operation::kExecute);
  EXPECT_EQ(*ParseOperation("unlink"), Operation::kDelete);
  EXPECT_FALSE(ParseOperation("frobnicate").ok());
}

TEST(TypesTest, EntityTypeParse) {
  EXPECT_EQ(*ParseEntityType("file"), EntityType::kFile);
  EXPECT_EQ(*ParseEntityType("proc"), EntityType::kProcess);
  EXPECT_EQ(*ParseEntityType("process"), EntityType::kProcess);
  EXPECT_EQ(*ParseEntityType("net"), EntityType::kNetwork);
  EXPECT_FALSE(ParseEntityType("disk").ok());
}

TEST(TypesTest, CategoryAndObjectType) {
  EXPECT_EQ(CategoryOf(Operation::kRead), EventCategory::kFileEvent);
  EXPECT_EQ(CategoryOf(Operation::kFork), EventCategory::kProcessEvent);
  EXPECT_EQ(CategoryOf(Operation::kSend), EventCategory::kNetworkEvent);
  EXPECT_EQ(ObjectTypeOf(Operation::kWrite), EntityType::kFile);
  EXPECT_EQ(ObjectTypeOf(Operation::kKill), EntityType::kProcess);
  EXPECT_EQ(ObjectTypeOf(Operation::kConnect), EntityType::kNetwork);
}

TEST(TypesTest, EntityKeyDistinguishesTypes) {
  SystemEntity f;
  f.type = EntityType::kFile;
  f.path = "/x";
  SystemEntity p;
  p.type = EntityType::kProcess;
  p.pid = 1;
  p.exename = "/x";
  EXPECT_NE(f.Key(), p.Key());
}

// --- AuditLog interning. ---

TEST(AuditLogTest, InternDeduplicates) {
  AuditLog log;
  EntityId a = log.InternFile("/etc/passwd");
  EntityId b = log.InternFile("/etc/passwd");
  EntityId c = log.InternFile("/etc/shadow");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(log.entity_count(), 2u);
}

TEST(AuditLogTest, ProcessIdentityIsPidPlusExe) {
  AuditLog log;
  EntityId a = log.InternProcess(1, "/bin/bash");
  EntityId b = log.InternProcess(2, "/bin/bash");
  EntityId c = log.InternProcess(1, "/bin/bash");
  EXPECT_NE(a, b);
  EXPECT_EQ(a, c);
}

TEST(AuditLogTest, NetworkIdentityIsFiveTuple) {
  AuditLog log;
  EntityId a = log.InternNetwork("10.0.0.1", 1000, "8.8.8.8", 443);
  EntityId b = log.InternNetwork("10.0.0.1", 1001, "8.8.8.8", 443);
  EntityId c = log.InternNetwork("10.0.0.1", 1000, "8.8.8.8", 443);
  EXPECT_NE(a, b);
  EXPECT_EQ(a, c);
}

TEST(AuditLogTest, AddEventAssignsSequentialIds) {
  AuditLog log;
  EntityId p = log.InternProcess(1, "/bin/a");
  EntityId f = log.InternFile("/x");
  SystemEvent ev;
  ev.subject = p;
  ev.object = f;
  ev.op = Operation::kRead;
  EXPECT_EQ(log.AddEvent(ev), 0u);
  EXPECT_EQ(log.AddEvent(ev), 1u);
  EXPECT_EQ(log.event(1).id, 1u);
}

TEST(AuditLogTest, FindByKey) {
  AuditLog log;
  EntityId a = log.InternFile("/x");
  EXPECT_EQ(log.FindByKey("file:/x"), a);
  EXPECT_EQ(log.FindByKey("file:/y"), kInvalidEntityId);
}

// --- Parser. ---

TEST(LogParserTest, ParsesFileEvent) {
  AuditLog log;
  auto id = LogParser::ParseLine(
      "ts=100 pid=42 exe=/bin/tar op=read obj=file path=/etc/passwd "
      "bytes=4096",
      &log);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  const SystemEvent& ev = log.event(*id);
  EXPECT_EQ(ev.op, Operation::kRead);
  EXPECT_EQ(ev.start_time, 100);
  EXPECT_EQ(ev.bytes, 4096u);
  EXPECT_EQ(log.entity(ev.subject).exename, "/bin/tar");
  EXPECT_EQ(log.entity(ev.object).path, "/etc/passwd");
}

TEST(LogParserTest, ParsesProcessEvent) {
  AuditLog log;
  auto id = LogParser::ParseLine(
      "ts=5 pid=1 exe=/sbin/init op=fork obj=proc cpid=2 cexe=/bin/bash",
      &log);
  ASSERT_TRUE(id.ok());
  const SystemEvent& ev = log.event(*id);
  EXPECT_EQ(ev.op, Operation::kFork);
  EXPECT_EQ(log.entity(ev.object).pid, 2u);
  EXPECT_EQ(log.entity(ev.object).exename, "/bin/bash");
}

TEST(LogParserTest, ParsesNetworkEventWithDefaults) {
  AuditLog log;
  auto id = LogParser::ParseLine(
      "ts=7 pid=3 exe=/usr/bin/curl op=connect obj=net srcip=10.0.0.5 "
      "srcport=51532 dstip=103.5.8.9 dstport=443",
      &log);
  ASSERT_TRUE(id.ok());
  const SystemEntity& obj = log.entity(log.event(*id).object);
  EXPECT_EQ(obj.dst_ip, "103.5.8.9");
  EXPECT_EQ(obj.dst_port, 443);
  EXPECT_EQ(obj.protocol, "tcp");  // default
}

TEST(LogParserTest, FieldsInAnyOrder) {
  AuditLog log;
  auto id = LogParser::ParseLine(
      "path=/x obj=file op=write exe=/bin/a pid=9 ts=50", &log);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(log.event(*id).op, Operation::kWrite);
}

struct BadLine {
  const char* line;
  const char* reason;
};

class LogParserErrorTest : public ::testing::TestWithParam<BadLine> {};

TEST_P(LogParserErrorTest, Rejects) {
  AuditLog log;
  auto result = LogParser::ParseLine(GetParam().line, &log);
  EXPECT_FALSE(result.ok()) << GetParam().reason;
  EXPECT_TRUE(result.status().IsParseError());
}

INSTANTIATE_TEST_SUITE_P(
    Cases, LogParserErrorTest,
    ::testing::Values(
        BadLine{"pid=1 exe=/a op=read obj=file path=/x", "missing ts"},
        BadLine{"ts=1 exe=/a op=read obj=file path=/x", "missing pid"},
        BadLine{"ts=1 pid=1 op=read obj=file path=/x", "missing exe"},
        BadLine{"ts=1 pid=1 exe=/a obj=file path=/x", "missing op"},
        BadLine{"ts=1 pid=1 exe=/a op=read path=/x", "missing obj"},
        BadLine{"ts=1 pid=1 exe=/a op=read obj=file", "missing path"},
        BadLine{"ts=1 pid=1 exe=/a op=read obj=net srcip=1.2.3.4 srcport=1 "
                "dstip=5.6.7.8 dstport=2",
                "op/obj type mismatch"},
        BadLine{"ts=xx pid=1 exe=/a op=read obj=file path=/x", "bad integer"},
        BadLine{"ts=1 pid=1 exe=/a op=zap obj=file path=/x", "bad op"},
        BadLine{"garbage", "no key=value"}));

TEST(LogParserTest, ParseTextSkipsCommentsAndBlanks) {
  AuditLog log;
  Status st = LogParser::ParseText(
      "# header\n"
      "\n"
      "ts=1 pid=1 exe=/a op=read obj=file path=/x\n"
      "  ts=2 pid=1 exe=/a op=write obj=file path=/x  \n",
      &log);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(log.event_count(), 2u);
}

TEST(LogParserTest, ParseTextReportsLineNumber) {
  AuditLog log;
  Status st = LogParser::ParseText(
      "ts=1 pid=1 exe=/a op=read obj=file path=/x\nbroken line\n", &log);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("line 2"), std::string::npos) << st.ToString();
}

TEST(LogParserTest, FormatEventRoundTrips) {
  AuditLog log;
  WorkloadGenerator gen;
  gen.GenerateBenign(200, &log);
  AuditLog log2;
  for (const SystemEvent& ev : log.events()) {
    std::string line = LogParser::FormatEvent(log, ev);
    auto id = LogParser::ParseLine(line, &log2);
    ASSERT_TRUE(id.ok()) << line << ": " << id.status().ToString();
    const SystemEvent& ev2 = log2.event(*id);
    EXPECT_EQ(ev.op, ev2.op);
    EXPECT_EQ(ev.start_time, ev2.start_time);
    EXPECT_EQ(ev.bytes, ev2.bytes);
    EXPECT_EQ(log.entity(ev.subject).Key(), log2.entity(ev2.subject).Key());
    EXPECT_EQ(log.entity(ev.object).Key(), log2.entity(ev2.object).Key());
  }
  EXPECT_EQ(log.event_count(), log2.event_count());
}

// --- Generator. ---

TEST(GeneratorTest, DeterministicForSeed) {
  GeneratorOptions opts;
  opts.seed = 99;
  AuditLog a, b;
  WorkloadGenerator ga(opts), gb(opts);
  ga.GenerateBenign(500, &a);
  gb.GenerateBenign(500, &b);
  ASSERT_EQ(a.event_count(), b.event_count());
  for (size_t i = 0; i < a.event_count(); ++i) {
    EXPECT_EQ(a.event(i).start_time, b.event(i).start_time);
    EXPECT_EQ(a.event(i).op, b.event(i).op);
  }
}

TEST(GeneratorTest, GeneratesRequestedCount) {
  AuditLog log;
  WorkloadGenerator gen;
  gen.GenerateBenign(1234, &log);
  EXPECT_EQ(log.event_count(), 1234u);
}

TEST(GeneratorTest, TimestampsMonotonic) {
  AuditLog log;
  WorkloadGenerator gen;
  gen.GenerateBenign(100, &log);
  auto attack = gen.InjectDataLeakageAttack(&log);
  gen.GenerateBenign(100, &log);
  for (size_t i = 1; i < log.event_count(); ++i) {
    EXPECT_GE(log.event(i).start_time, log.event(i - 1).start_time);
  }
}

TEST(GeneratorTest, AttackSubjectsAreProcesses) {
  AuditLog log;
  WorkloadGenerator gen;
  for (auto attack : {gen.InjectDataLeakageAttack(&log),
                      gen.InjectPasswordCrackingAttack(&log)}) {
    EXPECT_FALSE(attack.event_ids.empty());
    EXPECT_FALSE(attack.core_event_ids.empty());
    EXPECT_FALSE(attack.report_text.empty());
    for (EventId id : attack.event_ids) {
      EXPECT_EQ(log.entity(log.event(id).subject).type, EntityType::kProcess);
    }
  }
}

TEST(GeneratorTest, CoreEventsAreSubsetOfAll) {
  AuditLog log;
  WorkloadGenerator gen;
  auto attack = gen.InjectPasswordCrackingAttack(&log);
  for (EventId id : attack.core_event_ids) {
    EXPECT_NE(std::find(attack.event_ids.begin(), attack.event_ids.end(), id),
              attack.event_ids.end());
  }
}

TEST(GeneratorTest, DataLeakageChainEntities) {
  AuditLog log;
  WorkloadGenerator gen;
  auto attack = gen.InjectDataLeakageAttack(&log);
  // The chain touches tar, gzip, curl and the C2 address.
  bool saw_tar = false, saw_c2 = false;
  for (EventId id : attack.event_ids) {
    const SystemEvent& ev = log.event(id);
    if (log.entity(ev.subject).exename == "/bin/tar") saw_tar = true;
    const SystemEntity& obj = log.entity(ev.object);
    if (obj.type == EntityType::kNetwork &&
        obj.dst_ip == WorkloadGenerator::kC2Ip) {
      saw_c2 = true;
    }
  }
  EXPECT_TRUE(saw_tar);
  EXPECT_TRUE(saw_c2);
}

TEST(GeneratorTest, ForkChainHasRequestedLength) {
  AuditLog log;
  WorkloadGenerator gen;
  auto ids = gen.InjectForkChain("/usr/bin/launcher", 4, Operation::kRead,
                                 "/etc/secret", &log);
  ASSERT_EQ(ids.size(), 5u);  // 4 forks + final read
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(log.event(ids[i]).op, Operation::kFork);
    if (i > 0) {
      // Chained: previous fork's child is this fork's subject.
      EXPECT_EQ(log.event(ids[i]).subject, log.event(ids[i - 1]).object);
    }
  }
  EXPECT_EQ(log.event(ids[4]).op, Operation::kRead);
  EXPECT_EQ(log.entity(log.event(ids[4]).object).path, "/etc/secret");
}

}  // namespace
}  // namespace raptor::audit
