// Unit tests for the observability substrate (src/obs/): metrics registry
// semantics, Prometheus text exposition, histogram bucket edges, span
// nesting, trace-ring eviction, and profile aggregation.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/resource.h"
#include "obs/slow_journal.h"
#include "obs/trace.h"

namespace raptor::obs {
namespace {

// =====================================================================
// Registry semantics.
// =====================================================================

TEST(RegistryTest, CounterIsStableAndMonotonic) {
  Registry registry;
  Counter* c = registry.GetCounter("test_total", "help");
  c->Increment();
  c->Increment(41);
  EXPECT_EQ(c->Value(), 42u);
  // Same (name, labels) returns the same instrument.
  EXPECT_EQ(registry.GetCounter("test_total"), c);
  EXPECT_EQ(registry.CounterValue("test_total"), 42u);
}

TEST(RegistryTest, LabeledChildrenAreIndependent) {
  Registry registry;
  Counter* a = registry.GetCounter("reqs_total", "", {{"code", "200"}});
  Counter* b = registry.GetCounter("reqs_total", "", {{"code", "500"}});
  EXPECT_NE(a, b);
  a->Increment(3);
  b->Increment();
  EXPECT_EQ(registry.CounterValue("reqs_total", {{"code", "200"}}), 3u);
  EXPECT_EQ(registry.CounterValue("reqs_total", {{"code", "500"}}), 1u);
}

TEST(RegistryTest, ReadOfUnregisteredCounterIsZeroAndDoesNotRegister) {
  Registry registry;
  EXPECT_EQ(registry.CounterValue("never_registered_total"), 0u);
  EXPECT_EQ(registry.RenderPrometheus().find("never_registered_total"),
            std::string::npos);
}

TEST(RegistryTest, TypeConflictReturnsDetachedDummy) {
  Registry registry;
  Counter* c = registry.GetCounter("thing", "first registration wins");
  c->Increment(7);
  // Asking for the same family as a gauge must not corrupt it.
  Gauge* g = registry.GetGauge("thing");
  ASSERT_NE(g, nullptr);
  g->Set(999);
  EXPECT_EQ(registry.CounterValue("thing"), 7u);
  std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("thing 7"), std::string::npos) << text;
  EXPECT_EQ(text.find("999"), std::string::npos) << text;
}

TEST(RegistryTest, GaugeSetAndAdd) {
  Registry registry;
  Gauge* g = registry.GetGauge("events", "stored events");
  g->Set(10);
  g->Add(-3);
  EXPECT_EQ(g->Value(), 7);
}

TEST(RegistryTest, ConcurrentRegistrationAndIncrements) {
  Registry registry;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&registry] {
      for (int i = 0; i < 1000; ++i) {
        registry.GetCounter("shared_total")->Increment();
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(registry.CounterValue("shared_total"), 4000u);
}

// =====================================================================
// Histogram bucket edges.
// =====================================================================

TEST(HistogramTest, LeSemanticsAtBucketEdges) {
  Histogram h({1.0, 5.0, 10.0});
  h.Observe(1.0);   // exactly on a bound: le="1" bucket
  h.Observe(1.001);  // just above: le="5" bucket
  h.Observe(10.0);  // last finite bucket
  h.Observe(10.5);  // +Inf bucket
  EXPECT_EQ(h.BucketCount(0), 1u);
  EXPECT_EQ(h.BucketCount(1), 1u);
  EXPECT_EQ(h.BucketCount(2), 1u);
  EXPECT_EQ(h.BucketCount(3), 1u);  // +Inf
  EXPECT_EQ(h.Count(), 4u);
  EXPECT_DOUBLE_EQ(h.Sum(), 1.0 + 1.001 + 10.0 + 10.5);
}

TEST(HistogramTest, RenderedBucketsAreCumulativeWithInf) {
  Registry registry;
  Histogram* h = registry.GetHistogram("lat_ms", "latency", {1.0, 5.0});
  h->Observe(0.5);
  h->Observe(0.7);
  h->Observe(3.0);
  h->Observe(100.0);
  std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("# TYPE lat_ms histogram"), std::string::npos) << text;
  EXPECT_NE(text.find("lat_ms_bucket{le=\"1\"} 2"), std::string::npos) << text;
  EXPECT_NE(text.find("lat_ms_bucket{le=\"5\"} 3"), std::string::npos) << text;
  EXPECT_NE(text.find("lat_ms_bucket{le=\"+Inf\"} 4"), std::string::npos)
      << text;
  EXPECT_NE(text.find("lat_ms_count 4"), std::string::npos) << text;
  EXPECT_NE(text.find("lat_ms_sum "), std::string::npos) << text;
}

TEST(HistogramTest, LabeledHistogramSplicesLeAfterLabels) {
  Registry registry;
  registry.GetHistogram("req_ms", "", {1.0}, {{"route", "/api/hunt"}})
      ->Observe(0.2);
  std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("req_ms_bucket{route=\"/api/hunt\",le=\"1\"} 1"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("req_ms_count{route=\"/api/hunt\"} 1"),
            std::string::npos)
      << text;
}

TEST(HistogramTest, ExponentialBuckets) {
  std::vector<double> bounds = ExponentialBuckets(1.0, 2.0, 4);
  ASSERT_EQ(bounds.size(), 4u);
  EXPECT_DOUBLE_EQ(bounds[0], 1.0);
  EXPECT_DOUBLE_EQ(bounds[3], 8.0);
}

// =====================================================================
// Prometheus exposition format.
// =====================================================================

TEST(PrometheusTest, HelpAndTypeLines) {
  Registry registry;
  registry.GetCounter("widgets_total", "Widgets made")->Increment();
  std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("# HELP widgets_total Widgets made"), std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE widgets_total counter"), std::string::npos)
      << text;
  EXPECT_NE(text.find("widgets_total 1\n"), std::string::npos) << text;
}

TEST(PrometheusTest, LabelValueEscaping) {
  Registry registry;
  registry
      .GetCounter("odd_total", "",
                  {{"path", "C:\\dir"}, {"quote", "say \"hi\""},
                   {"nl", "a\nb"}})
      ->Increment();
  std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("path=\"C:\\\\dir\""), std::string::npos) << text;
  EXPECT_NE(text.find("quote=\"say \\\"hi\\\"\""), std::string::npos) << text;
  EXPECT_NE(text.find("nl=\"a\\nb\""), std::string::npos) << text;
}

TEST(PrometheusTest, IntegralValuesRenderWithoutFraction) {
  Registry registry;
  registry.GetCounter("n_total")->Increment(123);
  registry.GetGauge("g")->Set(-5);
  std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("n_total 123\n"), std::string::npos) << text;
  EXPECT_NE(text.find("g -5\n"), std::string::npos) << text;
}

// =====================================================================
// Tracing: span nesting, subtree extraction, ring eviction.
// =====================================================================

TEST(TraceTest, StartSpanIsInertWithoutActiveTrace) {
  Span span = Tracer::Default().StartSpan("orphan");
  EXPECT_FALSE(span.active());
  span.SetAttr("k", std::string_view("v"));  // must be a no-op, not a crash
  span.Annotate("note");
}

TEST(TraceTest, ForcedTraceRecordsNestedSpans) {
  Tracer& tracer = Tracer::Default();
  TraceScope scope = tracer.BeginTrace("root", /*force=*/true);
  ASSERT_TRUE(scope.active());
  {
    Span outer = tracer.StartSpan("outer");
    ASSERT_TRUE(outer.active());
    outer.SetAttr("items", static_cast<int64_t>(3));
    Span inner = tracer.StartSpan("inner");
    inner.End();
    outer.End();
  }
  std::optional<Trace> trace = scope.Finish();
  ASSERT_TRUE(trace.has_value());
  ASSERT_EQ(trace->spans.size(), 3u);
  EXPECT_EQ(trace->spans[0].name, "root");
  EXPECT_EQ(trace->spans[0].parent, trace->spans[0].id);  // root: own parent
  EXPECT_EQ(trace->spans[1].name, "outer");
  EXPECT_EQ(trace->spans[1].parent, trace->spans[0].id);
  EXPECT_EQ(trace->spans[2].name, "inner");
  EXPECT_EQ(trace->spans[2].parent, trace->spans[1].id);
  ASSERT_EQ(trace->spans[1].attrs.size(), 1u);
  EXPECT_EQ(trace->spans[1].attrs[0].first, "items");
  EXPECT_EQ(trace->spans[1].attrs[0].second, "3");
}

TEST(TraceTest, NestedBeginTraceYieldsSubtreeAndParentKeepsRecording) {
  Tracer& tracer = Tracer::Default();
  TraceScope outer = tracer.BeginTrace("hunt", /*force=*/true);
  ASSERT_TRUE(outer.active());
  {
    TraceScope inner = tracer.BeginTrace("execute", /*force=*/true);
    Span scan = tracer.StartSpan("scan");
    scan.End();
    std::optional<Trace> subtree = inner.Finish();
    ASSERT_TRUE(subtree.has_value());
    ASSERT_EQ(subtree->spans.size(), 2u);
    EXPECT_EQ(subtree->spans[0].name, "execute");
    EXPECT_EQ(subtree->spans[1].name, "scan");
    EXPECT_EQ(subtree->spans[1].parent, subtree->spans[0].id);
  }
  std::optional<Trace> full = outer.Finish();
  ASSERT_TRUE(full.has_value());
  // The parent trace still holds the whole tree.
  ASSERT_EQ(full->spans.size(), 3u);
  EXPECT_EQ(full->spans[0].name, "hunt");
  EXPECT_EQ(full->spans[1].name, "execute");
  EXPECT_EQ(full->spans[2].name, "scan");
}

TEST(TraceTest, RingKeepsNewestAndEvictsOldest) {
  Tracer& tracer = Tracer::Default();
  tracer.Clear();
  tracer.set_capacity(2);
  bool was_enabled = tracer.enabled();
  tracer.set_enabled(true);
  uint64_t last_id = 0;
  for (int i = 0; i < 3; ++i) {
    TraceScope scope = tracer.BeginTrace("t");
    std::optional<Trace> t = scope.Finish();
    ASSERT_TRUE(t.has_value());
    last_id = t->id;
  }
  std::vector<Trace> recent = tracer.RecentTraces();
  ASSERT_EQ(recent.size(), 2u);
  EXPECT_EQ(recent[0].id, last_id);  // newest first
  EXPECT_EQ(recent[1].id, last_id - 1);
  EXPECT_FALSE(tracer.FindTrace(last_id - 2).has_value());  // evicted
  EXPECT_TRUE(tracer.FindTrace(last_id).has_value());
  tracer.set_enabled(was_enabled);
  tracer.set_capacity(64);
  tracer.Clear();
}

TEST(TraceTest, DisabledTracerRecordsNothingWithoutForce) {
  Tracer& tracer = Tracer::Default();
  tracer.Clear();
  bool was_enabled = tracer.enabled();
  tracer.set_enabled(false);
  TraceScope scope = tracer.BeginTrace("idle");
  EXPECT_FALSE(scope.active());
  EXPECT_FALSE(Tracer::TraceActive());
  EXPECT_FALSE(scope.Finish().has_value());
  EXPECT_TRUE(tracer.RecentTraces().empty());
  tracer.set_enabled(was_enabled);
}

TEST(TraceTest, ForcedTraceIsNotPublishedWhenDisabled) {
  Tracer& tracer = Tracer::Default();
  tracer.Clear();
  bool was_enabled = tracer.enabled();
  tracer.set_enabled(false);
  TraceScope scope = tracer.BeginTrace("profile-only", /*force=*/true);
  ASSERT_TRUE(scope.active());
  EXPECT_TRUE(scope.Finish().has_value());
  // ?profile=1 with the sink detached: the caller gets the trace, the ring
  // stays empty.
  EXPECT_TRUE(tracer.RecentTraces().empty());
  tracer.set_enabled(was_enabled);
}

// =====================================================================
// Profile aggregation.
// =====================================================================

TEST(ProfileTest, AggregatesStagesByPathAndCountsRepeats) {
  Tracer& tracer = Tracer::Default();
  TraceScope scope = tracer.BeginTrace("execute", /*force=*/true);
  for (int i = 0; i < 2; ++i) {
    Span scan = tracer.StartSpan("scan");
    scan.End();
  }
  {
    Span join = tracer.StartSpan("join");
    Span probe = tracer.StartSpan("probe");
    probe.End();
    join.End();
  }
  std::optional<Trace> trace = scope.Finish();
  ASSERT_TRUE(trace.has_value());
  Profile profile = AggregateProfile(*trace);
  EXPECT_FALSE(profile.empty());
  EXPECT_GE(profile.total_ms, 0.0);
  ASSERT_EQ(profile.stages.size(), 3u);
  EXPECT_EQ(profile.stages[0].stage, "scan");
  EXPECT_EQ(profile.stages[0].count, 2u);
  EXPECT_EQ(profile.stages[1].stage, "join");
  EXPECT_EQ(profile.stages[1].count, 1u);
  EXPECT_EQ(profile.stages[2].stage, "join/probe");
  // Top-level stages (no '/') partition the root's time.
  EXPECT_LE(profile.TopLevelMs(), profile.total_ms + 1e-6);
}

TEST(ProfileTest, EmptyTraceYieldsEmptyProfile) {
  Profile profile = AggregateProfile(Trace{});
  EXPECT_TRUE(profile.empty());
  EXPECT_EQ(profile.TopLevelMs(), 0.0);
}

// =====================================================================
// Resource accounting.
// =====================================================================

TEST(ResourceTrackerTest, ChargeReleaseAndPeakWatermark) {
  ResourceTracker tracker;
  tracker.Charge(Component::kRelational, 100);
  tracker.Charge(Component::kRelational, 50);
  EXPECT_EQ(tracker.LiveBytes(Component::kRelational), 150);
  EXPECT_EQ(tracker.PeakBytes(Component::kRelational), 150);
  tracker.Charge(Component::kRelational, -120);
  EXPECT_EQ(tracker.LiveBytes(Component::kRelational), 30);
  // Releases never move the watermark.
  EXPECT_EQ(tracker.PeakBytes(Component::kRelational), 150);
  // Components are independent.
  EXPECT_EQ(tracker.LiveBytes(Component::kGraph), 0);
  EXPECT_EQ(tracker.PeakBytes(Component::kGraph), 0);
}

TEST(ResourceTrackerTest, ResetClearsLiveAndPeak) {
  ResourceTracker tracker;
  tracker.Charge(Component::kEngine, 1 << 20);
  tracker.Reset();
  EXPECT_EQ(tracker.LiveBytes(Component::kEngine), 0);
  EXPECT_EQ(tracker.PeakBytes(Component::kEngine), 0);
}

TEST(ResourceTrackerTest, ConcurrentChargesBalance) {
  ResourceTracker tracker;
  constexpr int kThreads = 4;
  constexpr int kIters = 1000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&tracker] {
      for (int i = 0; i < kIters; ++i) {
        tracker.Charge(Component::kIngest, 64);
        tracker.Charge(Component::kIngest, -64);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(tracker.LiveBytes(Component::kIngest), 0);
  EXPECT_GE(tracker.PeakBytes(Component::kIngest), 64);
}

TEST(ResourceTrackerTest, PublishSetsPerComponentGauges) {
  ResourceTracker& tracker = ResourceTracker::Default();
  tracker.Charge(Component::kGraph, 4096);
  tracker.Publish();
  Registry& registry = Registry::Default();
  EXPECT_GE(registry.GaugeValue("raptor_mem_live_bytes",
                                {{"component", "graph"}}),
            4096);
  EXPECT_GE(registry.GaugeValue("raptor_mem_peak_bytes",
                                {{"component", "graph"}}),
            4096);
  tracker.Charge(Component::kGraph, -4096);
}

TEST(MemoryScopeTest, ReleasesOnDestructionLeavingPeak) {
  ResourceTracker tracker;
  {
    MemoryScope scope(Component::kEngine, &tracker);
    scope.Charge(1000);
    scope.Charge(500);
    EXPECT_EQ(scope.charged(), 1500);
    EXPECT_EQ(tracker.LiveBytes(Component::kEngine), 1500);
  }
  EXPECT_EQ(tracker.LiveBytes(Component::kEngine), 0);
  EXPECT_EQ(tracker.PeakBytes(Component::kEngine), 1500);
}

// =====================================================================
// Slow journal.
// =====================================================================

SlowEntry MakeEntry(std::string kind, double ms, uint64_t bytes) {
  SlowEntry entry;
  entry.kind = std::move(kind);
  entry.query = "proc p read file f return p, f";
  entry.total_ms = ms;
  entry.bytes = bytes;
  return entry;
}

TEST(SlowJournalTest, ThresholdsGateRecording) {
  SlowJournal journal;
  journal.Configure({.latency_threshold_ms = 100,
                     .bytes_threshold = 1 << 20,
                     .capacity = 8});
  EXPECT_FALSE(journal.ShouldRecord(99.0, 1000));
  EXPECT_TRUE(journal.ShouldRecord(100.0, 0));  // Latency trigger.
  EXPECT_TRUE(journal.ShouldRecord(0.0, 1 << 20));  // Bytes trigger.
  // A zero threshold disables that trigger entirely.
  journal.Configure(
      {.latency_threshold_ms = 0, .bytes_threshold = 1 << 20, .capacity = 8});
  EXPECT_FALSE(journal.ShouldRecord(1e9, 0));
  EXPECT_TRUE(journal.ShouldRecord(1e9, 1 << 20));
  journal.Configure(
      {.latency_threshold_ms = 0, .bytes_threshold = 0, .capacity = 8});
  EXPECT_FALSE(journal.ShouldRecord(1e9, 1ull << 40));
}

TEST(SlowJournalTest, RecordAssignsIdsTimestampsAndTriggers) {
  SlowJournal journal;
  journal.Configure({.latency_threshold_ms = 100,
                     .bytes_threshold = 1 << 20,
                     .capacity = 8});
  uint64_t first = journal.Record(MakeEntry("query", 500.0, 0));
  uint64_t second = journal.Record(MakeEntry("hunt", 1.0, 2 << 20));
  EXPECT_LT(first, second);
  std::optional<SlowEntry> slow_query = journal.Find(first);
  ASSERT_TRUE(slow_query.has_value());
  EXPECT_EQ(slow_query->trigger, "latency");
  EXPECT_GT(slow_query->unix_ms, 0u);
  std::optional<SlowEntry> slow_hunt = journal.Find(second);
  ASSERT_TRUE(slow_hunt.has_value());
  EXPECT_EQ(slow_hunt->trigger, "bytes");
  EXPECT_FALSE(journal.Find(9999).has_value());
}

TEST(SlowJournalTest, SnapshotIsNewestFirstAndBounded) {
  SlowJournal journal;
  journal.Configure(
      {.latency_threshold_ms = 1, .bytes_threshold = 0, .capacity = 3});
  for (int i = 0; i < 5; ++i) {
    journal.Record(MakeEntry("query", 10.0 + i, 0));
  }
  // Capacity 3: the two oldest entries were evicted.
  std::vector<SlowEntry> all = journal.Snapshot();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_GT(all[0].id, all[1].id);
  EXPECT_GT(all[1].id, all[2].id);
  EXPECT_DOUBLE_EQ(all[0].total_ms, 14.0);
  std::vector<SlowEntry> top = journal.Snapshot(1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].id, all[0].id);
  journal.Clear();
  EXPECT_TRUE(journal.Snapshot().empty());
}

TEST(SlowJournalTest, EntryRetainsProfileAndOperators) {
  SlowJournal journal;
  journal.Configure(
      {.latency_threshold_ms = 1, .bytes_threshold = 0, .capacity = 4});
  SlowEntry entry = MakeEntry("hunt", 42.0, 4096);
  entry.profile.total_ms = 42.0;
  entry.profile.stages.push_back({"execute", 40.0, 1});
  SlowOperator op;
  op.name = "p1: read(p, f)";
  op.backend = "relational";
  op.access = "index";
  op.rows_examined = 100;
  op.rows_emitted = 7;
  op.bytes = 4096;
  entry.ops.push_back(op);
  uint64_t id = journal.Record(std::move(entry));
  std::optional<SlowEntry> found = journal.Find(id);
  ASSERT_TRUE(found.has_value());
  ASSERT_EQ(found->ops.size(), 1u);
  EXPECT_EQ(found->ops[0].access, "index");
  EXPECT_EQ(found->ops[0].rows_examined, 100u);
  ASSERT_FALSE(found->profile.empty());
  EXPECT_EQ(found->profile.stages[0].stage, "execute");
}

}  // namespace
}  // namespace raptor::obs
