// Unit tests for the observability substrate (src/obs/): metrics registry
// semantics, Prometheus text exposition, histogram bucket edges, span
// nesting, trace-ring eviction, and profile aggregation.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "obs/clock.h"
#include "obs/history.h"
#include "obs/incident.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/profiler.h"
#include "obs/resource.h"
#include "obs/slo.h"
#include "obs/slow_journal.h"
#include "obs/trace.h"

namespace raptor::obs {
namespace {

// =====================================================================
// Registry semantics.
// =====================================================================

TEST(RegistryTest, CounterIsStableAndMonotonic) {
  Registry registry;
  Counter* c = registry.GetCounter("test_total", "help");
  c->Increment();
  c->Increment(41);
  EXPECT_EQ(c->Value(), 42u);
  // Same (name, labels) returns the same instrument.
  EXPECT_EQ(registry.GetCounter("test_total"), c);
  EXPECT_EQ(registry.CounterValue("test_total"), 42u);
}

TEST(RegistryTest, LabeledChildrenAreIndependent) {
  Registry registry;
  Counter* a = registry.GetCounter("reqs_total", "", {{"code", "200"}});
  Counter* b = registry.GetCounter("reqs_total", "", {{"code", "500"}});
  EXPECT_NE(a, b);
  a->Increment(3);
  b->Increment();
  EXPECT_EQ(registry.CounterValue("reqs_total", {{"code", "200"}}), 3u);
  EXPECT_EQ(registry.CounterValue("reqs_total", {{"code", "500"}}), 1u);
}

TEST(RegistryTest, ReadOfUnregisteredCounterIsZeroAndDoesNotRegister) {
  Registry registry;
  EXPECT_EQ(registry.CounterValue("never_registered_total"), 0u);
  EXPECT_EQ(registry.RenderPrometheus().find("never_registered_total"),
            std::string::npos);
}

TEST(RegistryTest, TypeConflictReturnsDetachedDummy) {
  Registry registry;
  Counter* c = registry.GetCounter("thing", "first registration wins");
  c->Increment(7);
  // Asking for the same family as a gauge must not corrupt it.
  Gauge* g = registry.GetGauge("thing");
  ASSERT_NE(g, nullptr);
  g->Set(999);
  EXPECT_EQ(registry.CounterValue("thing"), 7u);
  std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("thing 7"), std::string::npos) << text;
  EXPECT_EQ(text.find("999"), std::string::npos) << text;
}

TEST(RegistryTest, GaugeSetAndAdd) {
  Registry registry;
  Gauge* g = registry.GetGauge("events", "stored events");
  g->Set(10);
  g->Add(-3);
  EXPECT_EQ(g->Value(), 7);
}

TEST(RegistryTest, ConcurrentRegistrationAndIncrements) {
  Registry registry;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&registry] {
      for (int i = 0; i < 1000; ++i) {
        registry.GetCounter("shared_total")->Increment();
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(registry.CounterValue("shared_total"), 4000u);
}

// =====================================================================
// Histogram bucket edges.
// =====================================================================

TEST(HistogramTest, LeSemanticsAtBucketEdges) {
  Histogram h({1.0, 5.0, 10.0});
  h.Observe(1.0);   // exactly on a bound: le="1" bucket
  h.Observe(1.001);  // just above: le="5" bucket
  h.Observe(10.0);  // last finite bucket
  h.Observe(10.5);  // +Inf bucket
  EXPECT_EQ(h.BucketCount(0), 1u);
  EXPECT_EQ(h.BucketCount(1), 1u);
  EXPECT_EQ(h.BucketCount(2), 1u);
  EXPECT_EQ(h.BucketCount(3), 1u);  // +Inf
  EXPECT_EQ(h.Count(), 4u);
  EXPECT_DOUBLE_EQ(h.Sum(), 1.0 + 1.001 + 10.0 + 10.5);
}

TEST(HistogramTest, RenderedBucketsAreCumulativeWithInf) {
  Registry registry;
  Histogram* h = registry.GetHistogram("lat_ms", "latency", {1.0, 5.0});
  h->Observe(0.5);
  h->Observe(0.7);
  h->Observe(3.0);
  h->Observe(100.0);
  std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("# TYPE lat_ms histogram"), std::string::npos) << text;
  EXPECT_NE(text.find("lat_ms_bucket{le=\"1\"} 2"), std::string::npos) << text;
  EXPECT_NE(text.find("lat_ms_bucket{le=\"5\"} 3"), std::string::npos) << text;
  EXPECT_NE(text.find("lat_ms_bucket{le=\"+Inf\"} 4"), std::string::npos)
      << text;
  EXPECT_NE(text.find("lat_ms_count 4"), std::string::npos) << text;
  EXPECT_NE(text.find("lat_ms_sum "), std::string::npos) << text;
}

TEST(HistogramTest, LabeledHistogramSplicesLeAfterLabels) {
  Registry registry;
  registry.GetHistogram("req_ms", "", {1.0}, {{"route", "/api/hunt"}})
      ->Observe(0.2);
  std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("req_ms_bucket{route=\"/api/hunt\",le=\"1\"} 1"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("req_ms_count{route=\"/api/hunt\"} 1"),
            std::string::npos)
      << text;
}

TEST(HistogramTest, ExponentialBuckets) {
  std::vector<double> bounds = ExponentialBuckets(1.0, 2.0, 4);
  ASSERT_EQ(bounds.size(), 4u);
  EXPECT_DOUBLE_EQ(bounds[0], 1.0);
  EXPECT_DOUBLE_EQ(bounds[3], 8.0);
}

// =====================================================================
// Prometheus exposition format.
// =====================================================================

TEST(PrometheusTest, HelpAndTypeLines) {
  Registry registry;
  registry.GetCounter("widgets_total", "Widgets made")->Increment();
  std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("# HELP widgets_total Widgets made"), std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE widgets_total counter"), std::string::npos)
      << text;
  EXPECT_NE(text.find("widgets_total 1\n"), std::string::npos) << text;
}

TEST(PrometheusTest, LabelValueEscaping) {
  Registry registry;
  registry
      .GetCounter("odd_total", "",
                  {{"path", "C:\\dir"}, {"quote", "say \"hi\""},
                   {"nl", "a\nb"}})
      ->Increment();
  std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("path=\"C:\\\\dir\""), std::string::npos) << text;
  EXPECT_NE(text.find("quote=\"say \\\"hi\\\"\""), std::string::npos) << text;
  EXPECT_NE(text.find("nl=\"a\\nb\""), std::string::npos) << text;
}

TEST(PrometheusTest, IntegralValuesRenderWithoutFraction) {
  Registry registry;
  registry.GetCounter("n_total")->Increment(123);
  registry.GetGauge("g")->Set(-5);
  std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("n_total 123\n"), std::string::npos) << text;
  EXPECT_NE(text.find("g -5\n"), std::string::npos) << text;
}

// =====================================================================
// Tracing: span nesting, subtree extraction, ring eviction.
// =====================================================================

TEST(TraceTest, StartSpanIsInertWithoutActiveTrace) {
  Span span = Tracer::Default().StartSpan("orphan");
  EXPECT_FALSE(span.active());
  span.SetAttr("k", std::string_view("v"));  // must be a no-op, not a crash
  span.Annotate("note");
}

TEST(TraceTest, ForcedTraceRecordsNestedSpans) {
  Tracer& tracer = Tracer::Default();
  TraceScope scope = tracer.BeginTrace("root", /*force=*/true);
  ASSERT_TRUE(scope.active());
  {
    Span outer = tracer.StartSpan("outer");
    ASSERT_TRUE(outer.active());
    outer.SetAttr("items", static_cast<int64_t>(3));
    Span inner = tracer.StartSpan("inner");
    inner.End();
    outer.End();
  }
  std::optional<Trace> trace = scope.Finish();
  ASSERT_TRUE(trace.has_value());
  ASSERT_EQ(trace->spans.size(), 3u);
  EXPECT_EQ(trace->spans[0].name, "root");
  EXPECT_EQ(trace->spans[0].parent, trace->spans[0].id);  // root: own parent
  EXPECT_EQ(trace->spans[1].name, "outer");
  EXPECT_EQ(trace->spans[1].parent, trace->spans[0].id);
  EXPECT_EQ(trace->spans[2].name, "inner");
  EXPECT_EQ(trace->spans[2].parent, trace->spans[1].id);
  ASSERT_EQ(trace->spans[1].attrs.size(), 1u);
  EXPECT_EQ(trace->spans[1].attrs[0].first, "items");
  EXPECT_EQ(trace->spans[1].attrs[0].second, "3");
}

TEST(TraceTest, NestedBeginTraceYieldsSubtreeAndParentKeepsRecording) {
  Tracer& tracer = Tracer::Default();
  TraceScope outer = tracer.BeginTrace("hunt", /*force=*/true);
  ASSERT_TRUE(outer.active());
  {
    TraceScope inner = tracer.BeginTrace("execute", /*force=*/true);
    Span scan = tracer.StartSpan("scan");
    scan.End();
    std::optional<Trace> subtree = inner.Finish();
    ASSERT_TRUE(subtree.has_value());
    ASSERT_EQ(subtree->spans.size(), 2u);
    EXPECT_EQ(subtree->spans[0].name, "execute");
    EXPECT_EQ(subtree->spans[1].name, "scan");
    EXPECT_EQ(subtree->spans[1].parent, subtree->spans[0].id);
  }
  std::optional<Trace> full = outer.Finish();
  ASSERT_TRUE(full.has_value());
  // The parent trace still holds the whole tree.
  ASSERT_EQ(full->spans.size(), 3u);
  EXPECT_EQ(full->spans[0].name, "hunt");
  EXPECT_EQ(full->spans[1].name, "execute");
  EXPECT_EQ(full->spans[2].name, "scan");
}

TEST(TraceTest, RingKeepsNewestAndEvictsOldest) {
  Tracer& tracer = Tracer::Default();
  tracer.Clear();
  tracer.set_capacity(2);
  bool was_enabled = tracer.enabled();
  tracer.set_enabled(true);
  uint64_t last_id = 0;
  for (int i = 0; i < 3; ++i) {
    TraceScope scope = tracer.BeginTrace("t");
    std::optional<Trace> t = scope.Finish();
    ASSERT_TRUE(t.has_value());
    last_id = t->id;
  }
  std::vector<Trace> recent = tracer.RecentTraces();
  ASSERT_EQ(recent.size(), 2u);
  EXPECT_EQ(recent[0].id, last_id);  // newest first
  EXPECT_EQ(recent[1].id, last_id - 1);
  EXPECT_FALSE(tracer.FindTrace(last_id - 2).has_value());  // evicted
  EXPECT_TRUE(tracer.FindTrace(last_id).has_value());
  tracer.set_enabled(was_enabled);
  tracer.set_capacity(64);
  tracer.Clear();
}

TEST(TraceTest, DisabledTracerRecordsNothingWithoutForce) {
  Tracer& tracer = Tracer::Default();
  tracer.Clear();
  bool was_enabled = tracer.enabled();
  tracer.set_enabled(false);
  TraceScope scope = tracer.BeginTrace("idle");
  EXPECT_FALSE(scope.active());
  EXPECT_FALSE(Tracer::TraceActive());
  EXPECT_FALSE(scope.Finish().has_value());
  EXPECT_TRUE(tracer.RecentTraces().empty());
  tracer.set_enabled(was_enabled);
}

TEST(TraceTest, ForcedTraceIsNotPublishedWhenDisabled) {
  Tracer& tracer = Tracer::Default();
  tracer.Clear();
  bool was_enabled = tracer.enabled();
  tracer.set_enabled(false);
  TraceScope scope = tracer.BeginTrace("profile-only", /*force=*/true);
  ASSERT_TRUE(scope.active());
  EXPECT_TRUE(scope.Finish().has_value());
  // ?profile=1 with the sink detached: the caller gets the trace, the ring
  // stays empty.
  EXPECT_TRUE(tracer.RecentTraces().empty());
  tracer.set_enabled(was_enabled);
}

// =====================================================================
// Profile aggregation.
// =====================================================================

TEST(ProfileTest, AggregatesStagesByPathAndCountsRepeats) {
  Tracer& tracer = Tracer::Default();
  TraceScope scope = tracer.BeginTrace("execute", /*force=*/true);
  for (int i = 0; i < 2; ++i) {
    Span scan = tracer.StartSpan("scan");
    scan.End();
  }
  {
    Span join = tracer.StartSpan("join");
    Span probe = tracer.StartSpan("probe");
    probe.End();
    join.End();
  }
  std::optional<Trace> trace = scope.Finish();
  ASSERT_TRUE(trace.has_value());
  Profile profile = AggregateProfile(*trace);
  EXPECT_FALSE(profile.empty());
  EXPECT_GE(profile.total_ms, 0.0);
  ASSERT_EQ(profile.stages.size(), 3u);
  EXPECT_EQ(profile.stages[0].stage, "scan");
  EXPECT_EQ(profile.stages[0].count, 2u);
  EXPECT_EQ(profile.stages[1].stage, "join");
  EXPECT_EQ(profile.stages[1].count, 1u);
  EXPECT_EQ(profile.stages[2].stage, "join/probe");
  // Top-level stages (no '/') partition the root's time.
  EXPECT_LE(profile.TopLevelMs(), profile.total_ms + 1e-6);
}

TEST(ProfileTest, EmptyTraceYieldsEmptyProfile) {
  Profile profile = AggregateProfile(Trace{});
  EXPECT_TRUE(profile.empty());
  EXPECT_EQ(profile.TopLevelMs(), 0.0);
}

// =====================================================================
// Resource accounting.
// =====================================================================

TEST(ResourceTrackerTest, ChargeReleaseAndPeakWatermark) {
  ResourceTracker tracker;
  tracker.Charge(Component::kRelational, 100);
  tracker.Charge(Component::kRelational, 50);
  EXPECT_EQ(tracker.LiveBytes(Component::kRelational), 150);
  EXPECT_EQ(tracker.PeakBytes(Component::kRelational), 150);
  tracker.Charge(Component::kRelational, -120);
  EXPECT_EQ(tracker.LiveBytes(Component::kRelational), 30);
  // Releases never move the watermark.
  EXPECT_EQ(tracker.PeakBytes(Component::kRelational), 150);
  // Components are independent.
  EXPECT_EQ(tracker.LiveBytes(Component::kGraph), 0);
  EXPECT_EQ(tracker.PeakBytes(Component::kGraph), 0);
}

TEST(ResourceTrackerTest, ResetClearsLiveAndPeak) {
  ResourceTracker tracker;
  tracker.Charge(Component::kEngine, 1 << 20);
  tracker.Reset();
  EXPECT_EQ(tracker.LiveBytes(Component::kEngine), 0);
  EXPECT_EQ(tracker.PeakBytes(Component::kEngine), 0);
}

TEST(ResourceTrackerTest, ConcurrentChargesBalance) {
  ResourceTracker tracker;
  constexpr int kThreads = 4;
  constexpr int kIters = 1000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&tracker] {
      for (int i = 0; i < kIters; ++i) {
        tracker.Charge(Component::kIngest, 64);
        tracker.Charge(Component::kIngest, -64);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(tracker.LiveBytes(Component::kIngest), 0);
  EXPECT_GE(tracker.PeakBytes(Component::kIngest), 64);
}

TEST(ResourceTrackerTest, PublishSetsPerComponentGauges) {
  ResourceTracker& tracker = ResourceTracker::Default();
  tracker.Charge(Component::kGraph, 4096);
  tracker.Publish();
  Registry& registry = Registry::Default();
  EXPECT_GE(registry.GaugeValue("raptor_mem_live_bytes",
                                {{"component", "graph"}}),
            4096);
  EXPECT_GE(registry.GaugeValue("raptor_mem_peak_bytes",
                                {{"component", "graph"}}),
            4096);
  tracker.Charge(Component::kGraph, -4096);
}

TEST(MemoryScopeTest, ReleasesOnDestructionLeavingPeak) {
  ResourceTracker tracker;
  {
    MemoryScope scope(Component::kEngine, &tracker);
    scope.Charge(1000);
    scope.Charge(500);
    EXPECT_EQ(scope.charged(), 1500);
    EXPECT_EQ(tracker.LiveBytes(Component::kEngine), 1500);
  }
  EXPECT_EQ(tracker.LiveBytes(Component::kEngine), 0);
  EXPECT_EQ(tracker.PeakBytes(Component::kEngine), 1500);
}

// =====================================================================
// Slow journal.
// =====================================================================

SlowEntry MakeEntry(std::string kind, double ms, uint64_t bytes) {
  SlowEntry entry;
  entry.kind = std::move(kind);
  entry.query = "proc p read file f return p, f";
  entry.total_ms = ms;
  entry.bytes = bytes;
  return entry;
}

TEST(SlowJournalTest, ThresholdsGateRecording) {
  SlowJournal journal;
  journal.Configure({.latency_threshold_ms = 100,
                     .bytes_threshold = 1 << 20,
                     .capacity = 8});
  EXPECT_FALSE(journal.ShouldRecord(99.0, 1000));
  EXPECT_TRUE(journal.ShouldRecord(100.0, 0));  // Latency trigger.
  EXPECT_TRUE(journal.ShouldRecord(0.0, 1 << 20));  // Bytes trigger.
  // A zero threshold disables that trigger entirely.
  journal.Configure(
      {.latency_threshold_ms = 0, .bytes_threshold = 1 << 20, .capacity = 8});
  EXPECT_FALSE(journal.ShouldRecord(1e9, 0));
  EXPECT_TRUE(journal.ShouldRecord(1e9, 1 << 20));
  journal.Configure(
      {.latency_threshold_ms = 0, .bytes_threshold = 0, .capacity = 8});
  EXPECT_FALSE(journal.ShouldRecord(1e9, 1ull << 40));
}

TEST(SlowJournalTest, RecordAssignsIdsTimestampsAndTriggers) {
  SlowJournal journal;
  journal.Configure({.latency_threshold_ms = 100,
                     .bytes_threshold = 1 << 20,
                     .capacity = 8});
  uint64_t first = journal.Record(MakeEntry("query", 500.0, 0));
  uint64_t second = journal.Record(MakeEntry("hunt", 1.0, 2 << 20));
  EXPECT_LT(first, second);
  std::optional<SlowEntry> slow_query = journal.Find(first);
  ASSERT_TRUE(slow_query.has_value());
  EXPECT_EQ(slow_query->trigger, "latency");
  EXPECT_GT(slow_query->unix_ms, 0u);
  std::optional<SlowEntry> slow_hunt = journal.Find(second);
  ASSERT_TRUE(slow_hunt.has_value());
  EXPECT_EQ(slow_hunt->trigger, "bytes");
  EXPECT_FALSE(journal.Find(9999).has_value());
}

TEST(SlowJournalTest, SnapshotIsNewestFirstAndBounded) {
  SlowJournal journal;
  journal.Configure(
      {.latency_threshold_ms = 1, .bytes_threshold = 0, .capacity = 3});
  for (int i = 0; i < 5; ++i) {
    journal.Record(MakeEntry("query", 10.0 + i, 0));
  }
  // Capacity 3: the two oldest entries were evicted.
  std::vector<SlowEntry> all = journal.Snapshot();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_GT(all[0].id, all[1].id);
  EXPECT_GT(all[1].id, all[2].id);
  EXPECT_DOUBLE_EQ(all[0].total_ms, 14.0);
  std::vector<SlowEntry> top = journal.Snapshot(1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].id, all[0].id);
  journal.Clear();
  EXPECT_TRUE(journal.Snapshot().empty());
}

TEST(SlowJournalTest, EntryRetainsProfileAndOperators) {
  SlowJournal journal;
  journal.Configure(
      {.latency_threshold_ms = 1, .bytes_threshold = 0, .capacity = 4});
  SlowEntry entry = MakeEntry("hunt", 42.0, 4096);
  entry.profile.total_ms = 42.0;
  entry.profile.stages.push_back({"execute", 40.0, 1});
  SlowOperator op;
  op.name = "p1: read(p, f)";
  op.backend = "relational";
  op.access = "index";
  op.rows_examined = 100;
  op.rows_emitted = 7;
  op.bytes = 4096;
  entry.ops.push_back(op);
  uint64_t id = journal.Record(std::move(entry));
  std::optional<SlowEntry> found = journal.Find(id);
  ASSERT_TRUE(found.has_value());
  ASSERT_EQ(found->ops.size(), 1u);
  EXPECT_EQ(found->ops[0].access, "index");
  EXPECT_EQ(found->ops[0].rows_examined, 100u);
  ASSERT_FALSE(found->profile.empty());
  EXPECT_EQ(found->profile.stages[0].stage, "execute");
}

// =====================================================================
// Registry structured snapshot, family sums, quantiles.
// =====================================================================

TEST(RegistrySnapshotTest, FamiliesCarryTypesValuesAndCumulativeBuckets) {
  Registry registry;
  registry.GetCounter("snap_total", "a counter", {{"kind", "x"}})
      ->Increment(3);
  registry.GetGauge("snap_gauge")->Set(-2);
  Histogram* h = registry.GetHistogram("snap_ms", "a histogram", {1.0, 5.0});
  h->Observe(0.5);
  h->Observe(3.0);
  h->Observe(100.0);
  std::vector<FamilySnapshot> families = registry.Snapshot();
  ASSERT_EQ(families.size(), 3u);
  const FamilySnapshot* hist = nullptr;
  for (const FamilySnapshot& f : families) {
    if (f.name == "snap_total") {
      EXPECT_EQ(f.type, "counter");
      EXPECT_EQ(f.help, "a counter");
      ASSERT_EQ(f.samples.size(), 1u);
      EXPECT_DOUBLE_EQ(f.samples[0].value, 3.0);
      ASSERT_EQ(f.samples[0].labels.size(), 1u);
      EXPECT_EQ(f.samples[0].labels[0].second, "x");
    } else if (f.name == "snap_gauge") {
      EXPECT_EQ(f.type, "gauge");
      ASSERT_EQ(f.samples.size(), 1u);
      EXPECT_DOUBLE_EQ(f.samples[0].value, -2.0);
    } else if (f.name == "snap_ms") {
      hist = &f;
    }
  }
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->type, "histogram");
  ASSERT_EQ(hist->samples.size(), 1u);
  const MetricSample& s = hist->samples[0];
  // Buckets are cumulative over the finite bounds; +Inf is the count.
  ASSERT_EQ(s.buckets.size(), 2u);
  EXPECT_DOUBLE_EQ(s.buckets[0].first, 1.0);
  EXPECT_EQ(s.buckets[0].second, 1u);
  EXPECT_DOUBLE_EQ(s.buckets[1].first, 5.0);
  EXPECT_EQ(s.buckets[1].second, 2u);
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.sum, 103.5);
}

TEST(RegistrySnapshotTest, CounterFamilySumSpansAllChildren) {
  Registry registry;
  registry.GetCounter("fam_total", "", {{"code", "200"}})->Increment(5);
  registry.GetCounter("fam_total", "", {{"code", "500"}})->Increment(2);
  EXPECT_EQ(registry.CounterFamilySum("fam_total"), 7u);
  EXPECT_EQ(registry.CounterFamilySum("missing_total"), 0u);
}

TEST(RegistrySnapshotTest, FindHistogramAndChildren) {
  Registry registry;
  registry.GetHistogram("find_ms", "", {1.0}, {{"route", "/a"}})
      ->Observe(0.5);
  registry.GetHistogram("find_ms", "", {1.0}, {{"route", "/b"}})
      ->Observe(2.0);
  EXPECT_EQ(registry.FindHistogram("find_ms"), nullptr);  // no unlabeled child
  EXPECT_NE(registry.FindHistogram("find_ms", {{"route", "/a"}}), nullptr);
  auto children = registry.HistogramChildren("find_ms");
  ASSERT_EQ(children.size(), 2u);
  for (const auto& [labels, h] : children) {
    ASSERT_EQ(labels.size(), 1u);
    EXPECT_EQ(labels[0].first, "route");
    EXPECT_EQ(h->Count(), 1u);
  }
}

TEST(RegistrySnapshotTest, ParseRenderedLabelsUndoesEscapes) {
  LabelSet labels =
      ParseRenderedLabels(R"({path="C:\\dir",quote="say \"hi\"",nl="a\nb"})");
  ASSERT_EQ(labels.size(), 3u);
  EXPECT_EQ(labels[0].first, "path");
  EXPECT_EQ(labels[0].second, "C:\\dir");
  EXPECT_EQ(labels[1].second, "say \"hi\"");
  EXPECT_EQ(labels[2].second, "a\nb");
  EXPECT_TRUE(ParseRenderedLabels("").empty());
}

TEST(HistogramQuantileTest, InterpolatesWithinBuckets) {
  Histogram h({10.0, 20.0, 40.0});
  for (int i = 0; i < 10; ++i) h.Observe(5.0);   // le=10
  for (int i = 0; i < 10; ++i) h.Observe(15.0);  // le=20
  // p50: target rank 10 lands exactly at the end of the first bucket.
  EXPECT_DOUBLE_EQ(HistogramQuantile(h, 0.5), 10.0);
  // p75: rank 15 is midway through the (10, 20] bucket.
  EXPECT_DOUBLE_EQ(HistogramQuantile(h, 0.75), 15.0);
  EXPECT_DOUBLE_EQ(HistogramQuantile(h, 1.0), 20.0);
}

TEST(HistogramQuantileTest, InfBucketClampsToLastFiniteBound) {
  Histogram h({10.0});
  h.Observe(1000.0);  // lands in +Inf
  EXPECT_DOUBLE_EQ(HistogramQuantile(h, 0.99), 10.0);
}

TEST(HistogramQuantileTest, EmptyHistogramIsZero) {
  Histogram h({1.0});
  EXPECT_DOUBLE_EQ(HistogramQuantile(h, 0.99), 0.0);
}

TEST(HistogramQuantileTest, NegativeFirstBoundNeverInterpolatesFromZero) {
  // Regression: the first bucket spans (-inf, bounds[0]]. Interpolating
  // from 0 when bounds[0] is negative returned a value ABOVE the bucket's
  // own upper bound (q=1 gave 0.0 > -5.0); the lower edge must clamp to
  // min(0, bounds[0]).
  Histogram h({-5.0, 10.0});
  h.Observe(-7.0);
  // The unbounded bucket has no finite width to interpolate across, so
  // every quantile inside it clamps to the bound itself.
  EXPECT_DOUBLE_EQ(HistogramQuantile(h, 1.0), -5.0);
  EXPECT_DOUBLE_EQ(HistogramQuantile(h, 0.5), -5.0);
}

TEST(HistogramQuantileTest, QuantileArgumentIsClamped) {
  Histogram h({10.0});
  h.Observe(5.0);
  // Out-of-range q behaves as 0 and 1, not as garbage ranks.
  EXPECT_DOUBLE_EQ(HistogramQuantile(h, -3.0), HistogramQuantile(h, 0.0));
  EXPECT_DOUBLE_EQ(HistogramQuantile(h, 7.0), HistogramQuantile(h, 1.0));
  EXPECT_DOUBLE_EQ(HistogramQuantile(h, 7.0), 10.0);
}

TEST(HistogramQuantileTest, SingleBucketInterpolatesFromZero) {
  Histogram h({100.0});
  for (int i = 0; i < 4; ++i) h.Observe(1.0);
  EXPECT_DOUBLE_EQ(HistogramQuantile(h, 0.25), 25.0);
  EXPECT_DOUBLE_EQ(HistogramQuantile(h, 1.0), 100.0);
}

// =====================================================================
// Sampling profiler.
// =====================================================================

TEST(ProfilerTest, RenderFoldedEmitsSortedStackLines) {
  ProfileSnapshot snapshot;
  snapshot.folded["worker;hunt;scan"] = 12;
  snapshot.folded["http;idle"] = 3;
  EXPECT_EQ(Profiler::RenderFolded(snapshot),
            "http;idle 3\nworker;hunt;scan 12\n");
}

TEST(ProfilerTest, DisabledByDefaultAndTrackingFollowsRunState) {
  Profiler& profiler = Profiler::Default();
  profiler.Configure({});  // defaults: disabled
  EXPECT_FALSE(profiler.running());
  EXPECT_FALSE(profiler_internal::Tracking());
  ProfilerOptions on;
  on.enabled = true;
  on.hz = 500;
  profiler.Configure(on);
  EXPECT_TRUE(profiler.running());
  EXPECT_TRUE(profiler_internal::Tracking());
  profiler.Configure({});
  EXPECT_FALSE(profiler.running());
  EXPECT_FALSE(profiler_internal::Tracking());
}

TEST(ProfilerTest, SamplesRegisteredThreadSpanStacks) {
  Profiler& profiler = Profiler::Default();
  ProfilerOptions options;
  options.enabled = true;
  options.hz = 1000;
  profiler.Configure(options);

  std::atomic<bool> stop{false};
  std::thread worker([&stop] {
    ProfiledThread profiled("sampler-test");
    Tracer& tracer = Tracer::Default();
    TraceScope scope = tracer.BeginTrace("outer", /*force=*/true);
    Span inner = tracer.StartSpan("inner");
    while (!stop.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    inner.End();
  });
  // At 1 kHz, 100 ms yields ~100 samples of the open outer;inner stack.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  stop.store(true);
  worker.join();
  profiler.Stop();

  ProfileSnapshot snapshot = profiler.Snapshot();
  EXPECT_GT(snapshot.total_samples, 0u);
  EXPECT_GT(snapshot.duration_s, 0.0);
  auto it = snapshot.folded.find("sampler-test;outer;inner");
  ASSERT_NE(it, snapshot.folded.end())
      << Profiler::RenderFolded(snapshot);
  EXPECT_GT(it->second, 0u);
  profiler.Configure({});
}

TEST(ProfilerTest, SpanNamesAreSanitizedInFoldedKeys) {
  Profiler& profiler = Profiler::Default();
  ProfilerOptions options;
  options.enabled = true;
  options.hz = 1000;
  profiler.Configure(options);
  {
    ProfiledThread profiled("bad;name here");
    Tracer& tracer = Tracer::Default();
    TraceScope scope = tracer.BeginTrace("semi;colon", /*force=*/true);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  profiler.Stop();
  ProfileSnapshot snapshot = profiler.Snapshot();
  profiler.Configure({});
  ASSERT_FALSE(snapshot.folded.empty());
  auto it = snapshot.folded.find("bad_name_here;semi_colon");
  ASSERT_NE(it, snapshot.folded.end()) << Profiler::RenderFolded(snapshot);
}

TEST(ProfilerTest, UnregisteredThreadsAreInvisible) {
  Profiler& profiler = Profiler::Default();
  size_t before = profiler.registered_threads();
  {
    ProfiledThread profiled("ephemeral");
    EXPECT_EQ(profiler.registered_threads(), before + 1);
  }
  EXPECT_EQ(profiler.registered_threads(), before);
}

// =====================================================================
// SLO burn-rate engine.
// =====================================================================

/// Points the global history store and the SLO engine at one shared
/// ManualClock so evaluations are clock-stepped and deterministic. The
/// engine is history-backed: every burn window reads MetricsHistory.
std::shared_ptr<ManualClock> InstallSloTestClock(SloOptions* options) {
  auto clock = std::make_shared<ManualClock>();
  HistoryOptions history;
  history.clock = clock;
  MetricsHistory::Default().Configure(history);
  options->clock = clock;
  return clock;
}

/// Drives a cumulative SLO through ok -> pending -> firing -> resolved by
/// steering closure-owned good/bad tallies between evaluations. The clock
/// advances between evaluations: the engine is idempotent per timestamp,
/// so same-instant re-evaluation would be a no-op (see the idempotence
/// test below).
TEST(SloEngineTest, StateMachineWalksPendingFiringResolved) {
  SloEngine& engine = SloEngine::Default();
  SloOptions bare;
  bare.enabled = false;  // no default catalog, no evaluator thread
  std::shared_ptr<ManualClock> clock = InstallSloTestClock(&bare);
  engine.Configure(bare);

  auto tallies = std::make_shared<SloSample>();
  SloSpec spec;
  spec.name = "obs_test_slo";
  spec.description = "unit-test slo";
  spec.kind = SloKind::kCumulative;
  spec.objective = 0.9;  // error budget 0.1
  spec.short_window_s = 60;
  spec.long_window_s = 300;
  spec.burn_threshold = 1.0;
  spec.pending_for_s = 0;
  spec.sample = [tallies] { return *tallies; };
  engine.AddSlo(spec);

  auto state_of = [&engine]() {
    std::vector<AlertStatus> all = engine.Snapshot();
    EXPECT_EQ(all.size(), 1u);
    return all.empty() ? AlertState::kOk : all[0].state;
  };

  // Eval 1: single point, no delta yet -> ok.
  engine.EvaluateNow();
  EXPECT_EQ(state_of(), AlertState::kOk);

  // Eval 2: 10 new bad events, 0 good -> ratio 1.0, burn 10 -> pending.
  clock->AdvanceSeconds(1);
  tallies->bad = 10;
  engine.EvaluateNow();
  EXPECT_EQ(state_of(), AlertState::kPending);
  EXPECT_EQ(Registry::Default().GaugeValue("raptor_alert_state",
                                           {{"slo", "obs_test_slo"}}),
            1);

  // Eval 3: still burning and pending_for elapsed (0 s) -> firing.
  clock->AdvanceSeconds(1);
  engine.EvaluateNow();
  EXPECT_EQ(state_of(), AlertState::kFiring);
  EXPECT_EQ(Registry::Default().GaugeValue("raptor_alert_state",
                                           {{"slo", "obs_test_slo"}}),
            2);

  // Eval 4: a flood of good events dilutes the window ratio -> resolved.
  clock->AdvanceSeconds(1);
  tallies->good = 1000;
  engine.EvaluateNow();
  EXPECT_EQ(state_of(), AlertState::kOk);
  EXPECT_EQ(Registry::Default().GaugeValue("raptor_alert_state",
                                           {{"slo", "obs_test_slo"}}),
            0);

  std::vector<AlertTransition> transitions = engine.Transitions();
  ASSERT_EQ(transitions.size(), 3u);  // newest first
  EXPECT_EQ(transitions[0].from, AlertState::kFiring);
  EXPECT_EQ(transitions[0].to, AlertState::kOk);
  EXPECT_EQ(transitions[1].from, AlertState::kPending);
  EXPECT_EQ(transitions[1].to, AlertState::kFiring);
  EXPECT_EQ(transitions[2].from, AlertState::kOk);
  EXPECT_EQ(transitions[2].to, AlertState::kPending);
  EXPECT_GT(transitions[1].short_burn, 1.0);

  engine.Configure(bare);
}

TEST(SloEngineTest, InstantKindAveragesPerSampleRatios) {
  SloEngine& engine = SloEngine::Default();
  SloOptions bare;
  bare.enabled = false;
  std::shared_ptr<ManualClock> clock = InstallSloTestClock(&bare);
  engine.Configure(bare);

  auto tallies = std::make_shared<SloSample>();
  SloSpec spec;
  spec.name = "obs_test_instant";
  spec.kind = SloKind::kInstant;
  spec.objective = 0;  // burn == utilization, the memory_headroom shape
  spec.burn_threshold = 0.8;
  spec.pending_for_s = 0;
  spec.sample = [tallies] { return *tallies; };
  engine.AddSlo(spec);

  auto step = [&] {
    clock->AdvanceSeconds(1);
    engine.EvaluateNow();
  };

  tallies->bad = 10;   // 10% utilization
  tallies->good = 90;
  step();
  std::vector<AlertStatus> all = engine.Snapshot();
  ASSERT_EQ(all.size(), 1u);
  EXPECT_NEAR(all[0].short_burn, 0.1, 1e-9);
  EXPECT_EQ(all[0].state, AlertState::kOk);

  tallies->bad = 100;  // 100% utilization: each new instant sample is
  tallies->good = 0;   // averaged with the initial 0.1 point.
  step();  // mean of {0.1, 1.0} = 0.55
  step();  // mean of {0.1, 1.0 x2} = 0.7
  step();  // mean of {0.1, 1.0 x3} = 0.775 < 0.8
  all = engine.Snapshot();
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0].state, AlertState::kOk);
  step();  // mean of {0.1, 1.0 x4} = 0.82 > 0.8 -> pending
  all = engine.Snapshot();
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0].state, AlertState::kPending);

  engine.Configure(bare);
}

/// Regression: /api/alerts used to call EvaluateNow() per poll while the
/// background evaluator was also stepping the windows, double-advancing
/// rolling state. Evaluation is now idempotent per clock timestamp.
TEST(SloEngineTest, EvaluationIsIdempotentPerTimestamp) {
  SloEngine& engine = SloEngine::Default();
  SloOptions bare;
  bare.enabled = false;
  std::shared_ptr<ManualClock> clock = InstallSloTestClock(&bare);
  engine.Configure(bare);

  auto tallies = std::make_shared<SloSample>();
  SloSpec spec;
  spec.name = "obs_test_idem";
  spec.kind = SloKind::kInstant;
  spec.objective = 0;
  spec.burn_threshold = 100;  // never alerts; we only count points
  spec.sample = [tallies] { return *tallies; };
  engine.AddSlo(spec);

  tallies->bad = 1;
  tallies->good = 1;
  clock->AdvanceSeconds(1);
  engine.EvaluateNow();
  engine.EvaluateNow();  // same timestamp: must not append a second point
  engine.EvaluateNow();
  std::vector<AlertStatus> all = engine.Snapshot();
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0].samples, 1u);

  clock->AdvanceSeconds(1);
  engine.EvaluateNow();
  all = engine.Snapshot();
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0].samples, 2u);

  engine.Configure(bare);
}

/// A pending -> firing transition freezes an incident: the offending
/// metric's history window, the SLO's burn trajectory, and a debug bundle
/// from the installed hook. Resolution stamps the incident.
TEST(SloEngineTest, FiringCapturesIncidentWithHistoryWindows) {
  SloEngine& engine = SloEngine::Default();
  SloOptions bare;
  bare.enabled = false;
  std::shared_ptr<ManualClock> clock = InstallSloTestClock(&bare);
  engine.Configure(bare);
  IncidentJournal& journal = IncidentJournal::Default();
  journal.SetBundleHook([] { return std::string("{\"frozen\":true}"); });

  MetricsHistory& history = MetricsHistory::Default();
  auto tallies = std::make_shared<SloSample>();
  SloSpec spec;
  spec.name = "obs_test_incident";
  spec.kind = SloKind::kCumulative;
  spec.objective = 0.9;
  spec.short_window_s = 60;
  spec.long_window_s = 300;
  spec.burn_threshold = 1.0;
  spec.pending_for_s = 0;
  spec.history_metric = "obs_test_offender";
  spec.sample = [tallies] { return *tallies; };
  engine.AddSlo(spec);

  auto step = [&] {
    clock->AdvanceSeconds(1);
    // The offending metric the incident should freeze a window of.
    history.Append("obs_test_offender", {}, SeriesKind::kGauge,
                   clock->NowUnixMs(), static_cast<double>(tallies->bad));
    engine.EvaluateNow();
  };

  step();                // baseline point
  tallies->bad = 10;
  step();                // ok -> pending
  step();                // pending -> firing: incident captured
  ASSERT_EQ(journal.size(), 1u);
  std::vector<Incident> incidents = journal.Snapshot();
  ASSERT_EQ(incidents.size(), 1u);
  const Incident& incident = incidents[0];
  EXPECT_EQ(incident.slo, "obs_test_incident");
  EXPECT_EQ(incident.metric, "obs_test_offender");
  EXPECT_EQ(incident.resolved_at_ms, 0u);
  EXPECT_GT(incident.short_burn, 1.0);
  EXPECT_EQ(incident.bundle_json, "{\"frozen\":true}");
  // Frozen windows: the offender plus the SLO's own burn series.
  bool offender = false, short_burn = false, long_burn = false;
  for (const SeriesWindow& window : incident.windows) {
    if (window.name == "obs_test_offender") {
      offender = true;
      EXPECT_EQ(window.points.size(), 3u);
      EXPECT_EQ(window.points.back().value, 10.0);
    }
    if (window.name == "raptor_slo_short_burn") short_burn = true;
    if (window.name == "raptor_slo_long_burn") long_burn = true;
  }
  EXPECT_TRUE(offender);
  EXPECT_TRUE(short_burn);
  EXPECT_TRUE(long_burn);
  EXPECT_EQ(Registry::Default().CounterValue("raptor_incidents_total",
                                             {{"slo", "obs_test_incident"}}),
            1u);

  // A flood of good events resolves the alert and stamps the incident.
  clock->AdvanceSeconds(1);
  tallies->good = 1000;
  engine.EvaluateNow();
  incidents = journal.Snapshot();
  ASSERT_EQ(incidents.size(), 1u);
  EXPECT_EQ(incidents[0].resolved_at_ms, clock->NowUnixMs());

  history.RemoveSeries("obs_test_offender", {});
  journal.SetBundleHook(nullptr);
  engine.Configure(bare);
}

TEST(SloEngineTest, DefaultCatalogInstallsFourSlosWithoutThread) {
  SloEngine& engine = SloEngine::Default();
  // Wall-clock history (the serving default) after the stepped-clock tests.
  MetricsHistory::Default().Configure(HistoryOptions{});
  SloOptions options;  // enabled by default
  engine.Configure(options);
  EXPECT_FALSE(engine.running());  // the API server starts the evaluator
  std::vector<AlertStatus> all = engine.Snapshot();
  ASSERT_EQ(all.size(), 4u);
  EXPECT_EQ(all[0].name, "hunt_latency_p99");
  EXPECT_EQ(all[1].name, "http_error_rate");
  EXPECT_EQ(all[2].name, "degraded_hunt_fraction");
  EXPECT_EQ(all[3].name, "memory_headroom");
  // The memory SLO keeps its own threshold, not the shared one.
  EXPECT_DOUBLE_EQ(all[3].burn_threshold, options.memory_burn_threshold);
  EXPECT_DOUBLE_EQ(all[0].burn_threshold, options.burn_threshold);
  // All four evaluate cleanly against the live registry.
  engine.EvaluateNow();
  for (const AlertStatus& status : engine.Snapshot()) {
    EXPECT_EQ(status.state, AlertState::kOk) << status.name;
  }
  SloOptions bare;
  bare.enabled = false;
  engine.Configure(bare);
}

}  // namespace
}  // namespace raptor::obs
