// Tests for explicit attribute relationships in the with clause
// ("evt1.srcid = evt2.srcid", paper §II-D) — parsing, analysis, printing,
// and execution semantics, including equivalence with the shared-entity-id
// sugar.

#include <gtest/gtest.h>

#include <memory>

#include "audit/generator.h"
#include "engine/engine.h"
#include "storage/graph/graph_store.h"
#include "storage/relational/database.h"
#include "tbql/analyzer.h"
#include "tbql/parser.h"
#include "tbql/printer.h"

namespace raptor::tbql {
namespace {

Query MustParseAnalyzed(const std::string& src) {
  auto q = Parse(src);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  Status st = Analyze(&*q);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return *std::move(q);
}

TEST(AttrRelationshipTest, Parses) {
  Query q = MustParseAnalyzed(
      "e1: proc p read file f\n"
      "e2: proc q write file g\n"
      "with e1.srcid = e2.srcid, e1 before e2");
  ASSERT_EQ(q.attr_relationships.size(), 1u);
  EXPECT_EQ(q.attr_relationships[0].first_pattern, "e1");
  EXPECT_TRUE(q.attr_relationships[0].first_is_subject);
  EXPECT_EQ(q.attr_relationships[0].second_pattern, "e2");
  EXPECT_TRUE(q.attr_relationships[0].second_is_subject);
  ASSERT_EQ(q.temporal.size(), 1u);
}

TEST(AttrRelationshipTest, DstidRole) {
  Query q = MustParseAnalyzed(
      "e1: proc p write file f\n"
      "e2: proc q read file g\n"
      "with e1.dstid = e2.dstid");
  EXPECT_FALSE(q.attr_relationships[0].first_is_subject);
  EXPECT_FALSE(q.attr_relationships[0].second_is_subject);
}

TEST(AttrRelationshipTest, PrintRoundTrip) {
  Query q = MustParseAnalyzed(
      "e1: proc p read file f\n"
      "e2: proc q write file g\n"
      "with e1 before e2, e1.srcid = e2.srcid");
  std::string printed = Print(q);
  EXPECT_NE(printed.find("e1.srcid = e2.srcid"), std::string::npos);
  Query q2 = MustParseAnalyzed(printed);
  EXPECT_EQ(Print(q2), printed);
}

TEST(AttrRelationshipTest, RejectsBadRole) {
  auto q = Parse(
      "e1: proc p read file f\ne2: proc q write file g\n"
      "with e1.pid = e2.pid");
  EXPECT_FALSE(q.ok());
}

TEST(AttrRelationshipTest, RejectsUnknownPattern) {
  auto q = Parse(
      "e1: proc p read file f\nwith e1.srcid = e9.srcid");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(Analyze(&*q).IsNotFound());
}

TEST(AttrRelationshipTest, RejectsSelfRelation) {
  auto q = Parse("e1: proc p read file f\nwith e1.srcid = e1.srcid");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(Analyze(&*q).IsInvalidArgument());
}

TEST(AttrRelationshipTest, RejectsCrossTypeComparison) {
  // e1's object is a file, e2's object is a connection.
  auto q = Parse(
      "e1: proc p read file f\ne2: proc q send net n\n"
      "with e1.dstid = e2.dstid");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(Analyze(&*q).IsTypeError());
}

// --- Execution semantics. ---

struct EngineFixture {
  audit::AuditLog log;
  std::unique_ptr<rel::RelationalDatabase> rel_db;
  std::unique_ptr<graph::GraphStore> graph_db;
  std::unique_ptr<engine::QueryEngine> engine;

  explicit EngineFixture(size_t benign = 2000) {
    audit::WorkloadGenerator gen;
    gen.GenerateBenign(benign, &log);
    gen.InjectDataLeakageAttack(&log);
    gen.GenerateBenign(benign, &log);
    rel_db = std::make_unique<rel::RelationalDatabase>();
    rel_db->Load(log);
    graph_db = std::make_unique<graph::GraphStore>(log);
    engine = std::make_unique<engine::QueryEngine>(&log, rel_db.get(),
                                                   graph_db.get());
  }

  engine::QueryResult Run(const std::string& src) {
    Query q = MustParseAnalyzed(src);
    auto r = engine->Execute(q);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return *std::move(r);
  }
};

TEST(AttrRelationshipTest, ExplicitFormMatchesSharedIdSugar) {
  EngineFixture fx;
  // Sugar: same entity id p in both patterns.
  auto sugar = fx.Run(
      "e1: proc p read file f1[\"/etc/passwd\"]\n"
      "e2: proc p write file f2[\"/tmp/data.tar\"]\n"
      "return p");
  // Explicit: distinct ids, related via srcid equality.
  auto explicit_form = fx.Run(
      "e1: proc p read file f1[\"/etc/passwd\"]\n"
      "e2: proc q write file f2[\"/tmp/data.tar\"]\n"
      "with e1.srcid = e2.srcid\n"
      "return p");
  ASSERT_EQ(sugar.rows.size(), explicit_form.rows.size());
  EXPECT_EQ(sugar.rows, explicit_form.rows);
  EXPECT_FALSE(sugar.rows.empty());
}

TEST(AttrRelationshipTest, FiltersOutNonMatchingPairs) {
  EngineFixture fx;
  // Without the relationship: cross product of readers and writers.
  auto unrelated = fx.Run(
      "e1: proc p read file f1[\"/etc/passwd\"]\n"
      "e2: proc q write file f2[\"/tmp/data.tar\"]\n"
      "return p, q");
  // With it: only same-process pairs survive.
  auto related = fx.Run(
      "e1: proc p read file f1[\"/etc/passwd\"]\n"
      "e2: proc q write file f2[\"/tmp/data.tar\"]\n"
      "with e1.srcid = e2.srcid\n"
      "return p, q");
  EXPECT_GE(unrelated.rows.size(), related.rows.size());
  for (const auto& row : related.rows) {
    EXPECT_EQ(row[0], row[1]);  // p.exename == q.exename
  }
  EXPECT_FALSE(related.rows.empty());
}

TEST(AttrRelationshipTest, ObjectChaining) {
  EngineFixture fx;
  // The file written by tar is the file read by gzip — expressed via
  // dstid equality instead of a shared file id.
  auto r = fx.Run(
      "e1: proc p[\"%tar%\"] write file f1\n"
      "e2: proc q[\"%gzip%\"] read file f2\n"
      "with e1.dstid = e2.dstid\n"
      "return f1, f2");
  ASSERT_FALSE(r.rows.empty());
  for (const auto& row : r.rows) {
    EXPECT_EQ(row[0], row[1]);
  }
}

}  // namespace
}  // namespace raptor::tbql
