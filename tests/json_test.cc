// Tests for the minimal JSON parser/writer (src/common/json.*).

#include <gtest/gtest.h>

#include "common/json.h"

namespace raptor {
namespace {

TEST(JsonTest, ParsesScalars) {
  EXPECT_TRUE(Json::Parse("null")->is_null());
  EXPECT_EQ(Json::Parse("true")->AsBool(), true);
  EXPECT_EQ(Json::Parse("false")->AsBool(), false);
  EXPECT_DOUBLE_EQ(Json::Parse("3.5")->AsNumber(), 3.5);
  EXPECT_DOUBLE_EQ(Json::Parse("-42")->AsNumber(), -42);
  EXPECT_DOUBLE_EQ(Json::Parse("1e3")->AsNumber(), 1000);
  EXPECT_EQ(Json::Parse("\"hi\"")->AsString(), "hi");
}

TEST(JsonTest, ParsesContainers) {
  auto j = Json::Parse(R"({"a": [1, 2, {"b": "c"}], "d": null})");
  ASSERT_TRUE(j.ok()) << j.status().ToString();
  EXPECT_TRUE(j->is_object());
  EXPECT_EQ((*j)["a"][1].AsNumber(), 2);
  EXPECT_EQ((*j)["a"][2]["b"].AsString(), "c");
  EXPECT_TRUE((*j)["d"].is_null());
  EXPECT_TRUE(j->Contains("a"));
  EXPECT_FALSE(j->Contains("z"));
}

TEST(JsonTest, MissingLookupsChainSafely) {
  auto j = Json::Parse("{}");
  EXPECT_TRUE((*j)["nope"]["deeper"][3].is_null());
  EXPECT_EQ((*j)["nope"].AsString(), "");
}

TEST(JsonTest, StringEscapes) {
  auto j = Json::Parse(R"("a\"b\\c\nA\t")");
  ASSERT_TRUE(j.ok());
  EXPECT_EQ(j->AsString(), "a\"b\\c\nA\t");
}

TEST(JsonTest, RawUtf8PassesThrough) {
  auto j = Json::Parse("\"\xC3\xA9\xE4\xB8\xAD\"");  // é中 as raw UTF-8
  ASSERT_TRUE(j.ok());
  EXPECT_EQ(j->AsString(), "\xC3\xA9\xE4\xB8\xAD");
}

TEST(JsonTest, UnicodeEscapesEncodeUtf8) {
  auto j = Json::Parse(R"("\u00e9\u4e2d\u0041")");  // e-acute, zhong, A
  ASSERT_TRUE(j.ok());
  EXPECT_EQ(j->AsString(), "\xC3\xA9\xE4\xB8\xAD\x41");
}

TEST(JsonTest, AsciiUnicodeEscape) {
  auto j = Json::Parse(R"("\u0041z")");
  ASSERT_TRUE(j.ok());
  EXPECT_EQ(j->AsString(), "Az");
}

TEST(JsonTest, EmptyContainers) {
  EXPECT_TRUE(Json::Parse("[]")->AsArray().empty());
  EXPECT_TRUE(Json::Parse("{}")->AsObject().empty());
}

struct BadJson {
  const char* text;
  const char* what;
};

class JsonErrorTest : public ::testing::TestWithParam<BadJson> {};

TEST_P(JsonErrorTest, Rejects) {
  auto j = Json::Parse(GetParam().text);
  EXPECT_FALSE(j.ok()) << GetParam().what;
  EXPECT_TRUE(j.status().IsParseError());
}

INSTANTIATE_TEST_SUITE_P(
    Cases, JsonErrorTest,
    ::testing::Values(BadJson{"", "empty"}, BadJson{"{", "unclosed object"},
                      BadJson{"[1,", "unclosed array"},
                      BadJson{"\"abc", "unterminated string"},
                      BadJson{"{\"a\" 1}", "missing colon"},
                      BadJson{"{a: 1}", "unquoted key"},
                      BadJson{"[1 2]", "missing comma"},
                      BadJson{"tru", "bad literal"},
                      BadJson{"1.2.3", "bad number"},
                      BadJson{"{} extra", "trailing content"},
                      BadJson{"\"\\q\"", "bad escape"}));

TEST(JsonTest, ErrorsCarryLineNumbers) {
  auto j = Json::Parse("{\n  \"a\": 1,\n  oops\n}");
  ASSERT_FALSE(j.ok());
  EXPECT_NE(j.status().message().find("line 3"), std::string::npos)
      << j.status().ToString();
}

TEST(JsonTest, DumpRoundTrips) {
  const char* docs[] = {
      R"({"a":[1,2,3],"b":{"c":"d"},"e":null,"f":true})",
      R"([{"x":1.5},[],{},"s"])",
      R"("plain")",
  };
  for (const char* doc : docs) {
    auto j1 = Json::Parse(doc);
    ASSERT_TRUE(j1.ok()) << doc;
    std::string dumped = j1->Dump();
    auto j2 = Json::Parse(dumped);
    ASSERT_TRUE(j2.ok()) << dumped;
    EXPECT_EQ(j2->Dump(), dumped);
  }
}

TEST(JsonTest, PrettyPrintIndents) {
  auto j = Json::Parse(R"({"a": [1]})");
  std::string pretty = j->Dump(2);
  EXPECT_NE(pretty.find("{\n  \"a\": [\n    1\n  ]\n}"), std::string::npos)
      << pretty;
}

TEST(JsonTest, IntegersDumpWithoutDecimals) {
  EXPECT_EQ(Json(42).Dump(), "42");
  EXPECT_EQ(Json(1.25).Dump(), "1.25");
}

}  // namespace
}  // namespace raptor
