// Tests for the Sysdig default-format parser (src/audit/sysdig_parser.*).

#include <gtest/gtest.h>

#include "audit/generator.h"
#include "audit/sysdig_parser.h"

namespace raptor::audit {
namespace {

TEST(SysdigParserTest, FileRead) {
  AuditLog log;
  auto id = SysdigParser::ParseLine(
      "100123 16:31:57.779817000 0 tar (842) < read res=4096 "
      "data=root:x:0:0 fd=5(<f>/etc/passwd)",
      &log);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  const SystemEvent& ev = log.event(*id);
  EXPECT_EQ(ev.op, Operation::kRead);
  EXPECT_EQ(ev.bytes, 4096u);
  EXPECT_EQ(log.entity(ev.subject).pid, 842u);
  EXPECT_EQ(log.entity(ev.subject).exename, "tar");
  EXPECT_EQ(log.entity(ev.object).path, "/etc/passwd");
  // 16:31:57.779817000 since midnight.
  EXPECT_EQ(ev.start_time,
            ((16LL * 60 + 31) * 60 + 57) * 1'000'000'000LL + 779'817'000LL);
}

TEST(SysdigParserTest, WriteOnSocketIsSend) {
  AuditLog log;
  auto id = SysdigParser::ParseLine(
      "7 01:02:03.5 0 curl (905) < write res=1024 "
      "fd=3(<4t>10.10.2.15:51710->161.35.10.8:8080)",
      &log);
  ASSERT_TRUE(id.ok());
  const SystemEvent& ev = log.event(*id);
  EXPECT_EQ(ev.op, Operation::kSend);
  const SystemEntity& net = log.entity(ev.object);
  EXPECT_EQ(net.type, EntityType::kNetwork);
  EXPECT_EQ(net.dst_ip, "161.35.10.8");
  EXPECT_EQ(net.dst_port, 8080);
  EXPECT_EQ(net.src_port, 51710);
  EXPECT_EQ(net.protocol, "tcp");
}

TEST(SysdigParserTest, ReadOnSocketIsRecv) {
  AuditLog log;
  auto id = SysdigParser::ParseLine(
      "8 01:02:03.5 0 curl (905) < read res=64 "
      "fd=3(<4u>10.0.0.1:999->8.8.8.8:53)",
      &log);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(log.event(*id).op, Operation::kRecv);
  EXPECT_EQ(log.entity(log.event(*id).object).protocol, "udp");
}

TEST(SysdigParserTest, ConnectAndAccept) {
  AuditLog log;
  auto c = SysdigParser::ParseLine(
      "9 00:00:01 0 bash (900) < connect res=0 "
      "fd=3(<4t>10.10.2.15:51620->108.160.172.1:443)",
      &log);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(log.event(*c).op, Operation::kConnect);
  auto a = SysdigParser::ParseLine(
      "10 00:00:02 0 apache2 (800) < accept res=4 "
      "fd=7(<4t>162.211.33.7:45612->10.10.2.15:80)",
      &log);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(log.event(*a).op, Operation::kAccept);
}

TEST(SysdigParserTest, CloneParentSideBecomesFork) {
  AuditLog log;
  auto id = SysdigParser::ParseLine(
      "11 00:00:03 0 bash (900) < clone res=901 exe=/tmp/cracker", &log);
  ASSERT_TRUE(id.ok());
  const SystemEvent& ev = log.event(*id);
  EXPECT_EQ(ev.op, Operation::kFork);
  EXPECT_EQ(log.entity(ev.object).pid, 901u);
  EXPECT_EQ(log.entity(ev.object).exename, "/tmp/cracker");
}

TEST(SysdigParserTest, CloneChildCopySkipped) {
  AuditLog log;
  auto id = SysdigParser::ParseLine(
      "12 00:00:03 0 bash (901) < clone res=0 exe=/bin/bash", &log);
  EXPECT_TRUE(id.status().IsNotFound());
}

TEST(SysdigParserTest, ExecveUnlinkRenameChmod) {
  AuditLog log;
  auto e = SysdigParser::ParseLine(
      "13 00:00:04 0 cracker (901) < execve res=0 exe=/tmp/cracker", &log);
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(log.event(*e).op, Operation::kExecute);
  auto u = SysdigParser::ParseLine(
      "14 00:00:05 0 rm (902) < unlink res=0 name=/var/log/auth.log", &log);
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(log.event(*u).op, Operation::kDelete);
  auto r = SysdigParser::ParseLine(
      "15 00:00:06 0 mv (903) < rename res=0 oldpath=/tmp/a newpath=/tmp/b",
      &log);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(log.event(*r).op, Operation::kRename);
  EXPECT_EQ(log.entity(log.event(*r).object).path, "/tmp/a");
  auto c = SysdigParser::ParseLine(
      "16 00:00:07 0 chmod (904) < chmod res=0 filename=/tmp/cracker "
      "mode=0755",
      &log);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(log.event(*c).op, Operation::kChmod);
}

TEST(SysdigParserTest, EnterEventsSkipped) {
  AuditLog log;
  auto id = SysdigParser::ParseLine(
      "17 00:00:08 0 tar (842) > read fd=5(<f>/etc/passwd)", &log);
  EXPECT_TRUE(id.status().IsNotFound());
}

TEST(SysdigParserTest, UnsupportedSyscallSkipped) {
  AuditLog log;
  auto id = SysdigParser::ParseLine(
      "18 00:00:09 0 tar (842) < futex addr=7F00 op=129", &log);
  EXPECT_TRUE(id.status().IsNotFound());
}

TEST(SysdigParserTest, ReadWithoutFdInfoSkipped) {
  AuditLog log;
  auto id = SysdigParser::ParseLine(
      "19 00:00:10 0 tar (842) < read res=512 fd=5(<p>pipe)", &log);
  EXPECT_TRUE(id.status().IsNotFound());
}

struct BadSysdig {
  const char* line;
  const char* what;
};

class SysdigMalformedTest : public ::testing::TestWithParam<BadSysdig> {};

TEST_P(SysdigMalformedTest, Rejects) {
  AuditLog log;
  auto id = SysdigParser::ParseLine(GetParam().line, &log);
  EXPECT_TRUE(id.status().IsParseError()) << GetParam().what;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SysdigMalformedTest,
    ::testing::Values(
        BadSysdig{"short line", "too few fields"},
        BadSysdig{"1 xx:00:00 0 tar (842) < read res=1 fd=5(<f>/x)",
                  "bad timestamp"},
        BadSysdig{"1 00:00:00 0 tar 842 < read res=1 fd=5(<f>/x)",
                  "pid not parenthesized"},
        BadSysdig{"1 00:00:00 0 tar (abc) < read res=1 fd=5(<f>/x)",
                  "pid not a number"},
        BadSysdig{"1 00:00:00 0 tar (842) ? read res=1 fd=5(<f>/x)",
                  "bad direction"}));

TEST(SysdigParserTest, ParseTextCountsOutcomes) {
  AuditLog log;
  SysdigParseStats stats = SysdigParser::ParseText(
      "1 00:00:01 0 tar (842) < read res=10 fd=5(<f>/etc/passwd)\n"
      "2 00:00:02 0 tar (842) > write fd=5(<f>/etc/passwd)\n"
      "3 00:00:03 0 tar (842) < futex addr=1\n"
      "garbage\n"
      "\n"
      "4 00:00:04 0 tar (842) < write res=20 fd=6(<f>/tmp/out)\n",
      &log);
  EXPECT_EQ(stats.lines, 5u);
  EXPECT_EQ(stats.events, 2u);
  EXPECT_EQ(stats.skipped, 2u);
  EXPECT_EQ(stats.malformed, 1u);
  EXPECT_EQ(log.event_count(), 2u);
}

TEST(SysdigParserTest, FormatRoundTripsGeneratedTrace) {
  AuditLog log;
  WorkloadGenerator gen;
  gen.GenerateBenign(500, &log);
  gen.InjectDataLeakageAttack(&log);

  AuditLog log2;
  uint64_t number = 0;
  size_t round_tripped = 0;
  for (const SystemEvent& ev : log.events()) {
    if (ev.op == Operation::kKill || ev.op == Operation::kStart) continue;
    std::string line = SysdigParser::FormatEvent(log, ev, ++number);
    auto id = SysdigParser::ParseLine(line, &log2);
    ASSERT_TRUE(id.ok()) << line << "\n" << id.status().ToString();
    const SystemEvent& ev2 = log2.event(*id);
    EXPECT_EQ(ev.op, ev2.op) << line;
    EXPECT_EQ(ev.bytes, ev2.bytes);
    // Time round-trips modulo the day boundary.
    EXPECT_EQ(ev.start_time % 86'400'000'000'000LL, ev2.start_time);
    ++round_tripped;
  }
  EXPECT_GT(round_tripped, 500u);
}

}  // namespace
}  // namespace raptor::audit
