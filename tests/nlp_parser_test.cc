// Tests for the rule-based dependency parser (src/nlp/dep_parser.*).

#include <gtest/gtest.h>

#include "nlp/dep_parser.h"
#include "nlp/pos_tagger.h"
#include "nlp/segmenter.h"

namespace raptor::nlp {
namespace {

DepTree ParseSentence(const std::string& text) {
  auto toks = Tokenize(text);
  TagPos(&toks, Lexicon::Default());
  return ParseDependency(std::move(toks), Lexicon::Default());
}

/// Index of the first node whose token text equals `text`; -1 if absent.
int Find(const DepTree& tree, const std::string& text) {
  for (size_t i = 0; i < tree.nodes.size(); ++i) {
    if (tree.nodes[i].token.text == text) return static_cast<int>(i);
  }
  return -1;
}

TEST(DepParserTest, SimpleSvo) {
  // Protected form of "The process /bin/tar read the file /etc/passwd."
  DepTree t = ParseSentence("The process something read the file bravo.");
  int verb = Find(t, "read");
  int subj = Find(t, "something");
  int obj = Find(t, "bravo");
  ASSERT_GE(verb, 0);
  EXPECT_EQ(t.root, verb);
  EXPECT_EQ(t.nodes[verb].rel, DepRel::kRoot);
  EXPECT_EQ(t.nodes[subj].head, verb);
  EXPECT_EQ(t.nodes[subj].rel, DepRel::kNsubj);
  EXPECT_EQ(t.nodes[obj].head, verb);
  EXPECT_EQ(t.nodes[obj].rel, DepRel::kDobj);
}

TEST(DepParserTest, NpInternalStructure) {
  DepTree t = ParseSentence("The process something ran.");
  int head = Find(t, "something");
  int det = Find(t, "The");
  int compound = Find(t, "process");
  EXPECT_EQ(t.nodes[det].head, head);
  EXPECT_EQ(t.nodes[det].rel, DepRel::kDet);
  EXPECT_EQ(t.nodes[compound].head, head);
  EXPECT_EQ(t.nodes[compound].rel, DepRel::kCompound);
}

TEST(DepParserTest, PrepositionalPhrase) {
  DepTree t = ParseSentence("something wrote data to bravo.");
  int verb = Find(t, "wrote");
  int to = Find(t, "to");
  int pobj = Find(t, "bravo");
  EXPECT_EQ(t.nodes[to].head, verb);
  EXPECT_EQ(t.nodes[to].rel, DepRel::kPrep);
  EXPECT_EQ(t.nodes[pobj].head, to);
  EXPECT_EQ(t.nodes[pobj].rel, DepRel::kPobj);
}

TEST(DepParserTest, CoordinatedVerbsShareNoFalseSubject) {
  DepTree t = ParseSentence("something read one and wrote bravo.");
  int read = Find(t, "read");
  int wrote = Find(t, "wrote");
  int one = Find(t, "one");
  ASSERT_GE(wrote, 0);
  EXPECT_EQ(t.nodes[wrote].head, read);
  EXPECT_EQ(t.nodes[wrote].rel, DepRel::kConj);
  // "one" is the object of read, not the subject of wrote.
  EXPECT_EQ(t.nodes[one].head, read);
  EXPECT_EQ(t.nodes[one].rel, DepRel::kDobj);
}

TEST(DepParserTest, SecondClauseWithOwnSubject) {
  DepTree t =
      ParseSentence("something read one and the process manager wrote two.");
  int wrote = Find(t, "wrote");
  int subj2 = Find(t, "manager");
  ASSERT_GE(wrote, 0);
  ASSERT_GE(subj2, 0);
  EXPECT_EQ(t.nodes[subj2].head, wrote);
  EXPECT_EQ(t.nodes[subj2].rel, DepRel::kNsubj);
}

TEST(DepParserTest, PassiveVoice) {
  DepTree t = ParseSentence("something was downloaded by bravo.");
  int verb = Find(t, "downloaded");
  int subj = Find(t, "something");
  int by = Find(t, "by");
  int agent = Find(t, "bravo");
  EXPECT_EQ(t.nodes[subj].rel, DepRel::kNsubjPass);
  EXPECT_EQ(t.nodes[subj].head, verb);
  EXPECT_EQ(t.nodes[Find(t, "was")].rel, DepRel::kAuxPass);
  EXPECT_EQ(t.nodes[by].rel, DepRel::kPrep);
  EXPECT_EQ(t.nodes[agent].head, by);
  EXPECT_EQ(t.nodes[agent].rel, DepRel::kPobj);
}

TEST(DepParserTest, NpCoordination) {
  DepTree t = ParseSentence("something read one and two.");
  int one = Find(t, "one");
  int two = Find(t, "two");
  EXPECT_EQ(t.nodes[one].rel, DepRel::kDobj);
  EXPECT_EQ(t.nodes[two].head, one);
  EXPECT_EQ(t.nodes[two].rel, DepRel::kConj);
}

TEST(DepParserTest, AdverbAttachesToVerb) {
  DepTree t = ParseSentence("something then connected to bravo.");
  int adv = Find(t, "then");
  int verb = Find(t, "connected");
  EXPECT_EQ(t.nodes[adv].head, verb);
  EXPECT_EQ(t.nodes[adv].rel, DepRel::kAdvmod);
}

TEST(DepParserTest, NoVerbSentenceStillBuildsTree) {
  DepTree t = ParseSentence("The quick summary.");
  ASSERT_GE(t.root, 0);
  // Every non-root node has a head; the structure is a tree.
  for (size_t i = 0; i < t.nodes.size(); ++i) {
    if (static_cast<int>(i) == t.root) {
      EXPECT_EQ(t.nodes[i].head, -1);
    } else {
      EXPECT_GE(t.nodes[i].head, 0);
    }
  }
}

TEST(DepParserTest, EmptySentence) {
  DepTree t = ParseSentence("");
  EXPECT_TRUE(t.nodes.empty());
  EXPECT_EQ(t.root, -1);
}

TEST(DepParserTest, EveryTokenGetsAHead) {
  for (const char* s :
       {"After the penetration, the attacker scanned the file system for "
        "valuable assets.",
        "Finally, the process something read bravo and sent the archive "
        "to the IP third.",
        "something was encoded in the metadata, and bravo read third."}) {
    DepTree t = ParseSentence(s);
    ASSERT_GE(t.root, 0) << s;
    size_t headless = 0;
    for (size_t i = 0; i < t.nodes.size(); ++i) {
      if (static_cast<int>(i) != t.root && t.nodes[i].head < 0) ++headless;
    }
    EXPECT_EQ(headless, 0u) << s;
  }
}

TEST(DepParserTest, TreeIsAcyclic) {
  DepTree t = ParseSentence(
      "The process something connected to the IP bravo and downloaded the "
      "image third.");
  for (size_t i = 0; i < t.nodes.size(); ++i) {
    auto path = t.PathToRoot(static_cast<int>(i));
    EXPECT_LE(path.size(), t.nodes.size());
    EXPECT_EQ(path.back(), t.root);
  }
}

TEST(DepTreeTest, LcaBasics) {
  DepTree t = ParseSentence("something read one and wrote bravo.");
  int subj = Find(t, "something");
  int one = Find(t, "one");
  int bravo = Find(t, "bravo");
  int read = Find(t, "read");
  EXPECT_EQ(t.Lca(subj, one), read);
  EXPECT_EQ(t.Lca(subj, bravo), read);
  EXPECT_EQ(t.Lca(subj, subj), subj);
  EXPECT_EQ(t.Lca(read, one), read);
}

TEST(DepTreeTest, ToStringContainsTokens) {
  DepTree t = ParseSentence("something read bravo.");
  std::string dump = t.ToString();
  EXPECT_NE(dump.find("read/VERB (root)"), std::string::npos);
  EXPECT_NE(dump.find("(nsubj)"), std::string::npos);
}

}  // namespace
}  // namespace raptor::nlp
