// Tests for Causality-Preserved Reduction (src/audit/cpr.*): merging
// behavior, causality barriers, the old->new id mapping, and the key
// property — dependency (reachability) equivalence before and after
// reduction.

#include <gtest/gtest.h>

#include <queue>
#include <set>

#include "audit/cpr.h"
#include "audit/generator.h"
#include "audit/log.h"

namespace raptor::audit {
namespace {

SystemEvent MakeEvent(EntityId subj, EntityId obj, Operation op, Timestamp ts,
                      uint64_t bytes = 100) {
  SystemEvent ev;
  ev.subject = subj;
  ev.object = obj;
  ev.op = op;
  ev.start_time = ts;
  ev.end_time = ts;
  ev.bytes = bytes;
  return ev;
}

TEST(CprTest, MergesBurstBetweenSamePair) {
  AuditLog log;
  EntityId p = log.InternProcess(1, "/bin/a");
  EntityId f = log.InternFile("/x");
  for (int i = 0; i < 10; ++i) {
    log.AddEvent(MakeEvent(p, f, Operation::kRead, 100 + i));
  }
  CprStats stats = ReduceLog(&log);
  EXPECT_EQ(stats.events_before, 10u);
  EXPECT_EQ(stats.events_after, 1u);
  EXPECT_DOUBLE_EQ(stats.ReductionRatio(), 10.0);
  const SystemEvent& merged = log.event(0);
  EXPECT_EQ(merged.merged_count, 10u);
  EXPECT_EQ(merged.bytes, 1000u);
  EXPECT_EQ(merged.start_time, 100);
  EXPECT_EQ(merged.end_time, 109);
}

TEST(CprTest, DifferentOperationsDoNotMerge) {
  AuditLog log;
  EntityId p = log.InternProcess(1, "/bin/a");
  EntityId f = log.InternFile("/x");
  log.AddEvent(MakeEvent(p, f, Operation::kRead, 1));
  log.AddEvent(MakeEvent(p, f, Operation::kWrite, 2));
  log.AddEvent(MakeEvent(p, f, Operation::kRead, 3));
  CprStats stats = ReduceLog(&log);
  EXPECT_EQ(stats.events_after, 3u);
}

TEST(CprTest, InterleavingEventOnSharedEntityBlocksMerge) {
  AuditLog log;
  EntityId p1 = log.InternProcess(1, "/bin/a");
  EntityId p2 = log.InternProcess(2, "/bin/b");
  EntityId f = log.InternFile("/x");
  // p1 reads f, then p2 writes f (a causality barrier on f), then p1 reads
  // f again: the two reads must NOT merge or dependency tracking would lose
  // the read-after-write ordering.
  log.AddEvent(MakeEvent(p1, f, Operation::kRead, 1));
  log.AddEvent(MakeEvent(p2, f, Operation::kWrite, 2));
  log.AddEvent(MakeEvent(p1, f, Operation::kRead, 3));
  CprStats stats = ReduceLog(&log);
  EXPECT_EQ(stats.events_after, 3u);
}

TEST(CprTest, UnrelatedInterleavingDoesNotBlockMerge) {
  AuditLog log;
  EntityId p1 = log.InternProcess(1, "/bin/a");
  EntityId p2 = log.InternProcess(2, "/bin/b");
  EntityId f = log.InternFile("/x");
  EntityId g = log.InternFile("/y");
  // The p2->g event shares no entity with the p1->f reads.
  log.AddEvent(MakeEvent(p1, f, Operation::kRead, 1));
  log.AddEvent(MakeEvent(p2, g, Operation::kWrite, 2));
  log.AddEvent(MakeEvent(p1, f, Operation::kRead, 3));
  CprStats stats = ReduceLog(&log);
  EXPECT_EQ(stats.events_after, 2u);
}

TEST(CprTest, GapLargerThanLimitSplitsGroups) {
  AuditLog log;
  EntityId p = log.InternProcess(1, "/bin/a");
  EntityId f = log.InternFile("/x");
  log.AddEvent(MakeEvent(p, f, Operation::kRead, 0));
  log.AddEvent(MakeEvent(p, f, Operation::kRead, 10));
  log.AddEvent(MakeEvent(p, f, Operation::kRead, 10'000'000'000LL));
  CprOptions opts;
  opts.max_merge_gap_ns = 1'000'000'000;  // 1 s
  CprStats stats = ReduceLog(&log, opts);
  EXPECT_EQ(stats.events_after, 2u);
}

TEST(CprTest, OldToNewMappingCoversEveryEvent) {
  AuditLog log;
  WorkloadGenerator gen;
  gen.GenerateBenign(5000, &log);
  size_t before = log.event_count();
  std::vector<EventId> old_to_new;
  CprStats stats = ReduceLog(&log, CprOptions{}, &old_to_new);
  ASSERT_EQ(old_to_new.size(), before);
  for (EventId nid : old_to_new) {
    ASSERT_LT(nid, stats.events_after);
  }
  // Each original's mapped event has the same subject/object/op.
  // (Reconstruct the original to compare: regenerate.)
  AuditLog orig;
  WorkloadGenerator gen2;
  gen2.GenerateBenign(5000, &orig);
  for (EventId old_id = 0; old_id < before; ++old_id) {
    const SystemEvent& o = orig.event(old_id);
    const SystemEvent& n = log.event(old_to_new[old_id]);
    EXPECT_EQ(o.subject, n.subject);
    EXPECT_EQ(o.object, n.object);
    EXPECT_EQ(o.op, n.op);
    EXPECT_GE(o.start_time, n.start_time);
    EXPECT_LE(o.end_time, n.end_time);
  }
}

TEST(CprTest, MergedCountsSumToOriginalCount) {
  AuditLog log;
  WorkloadGenerator gen;
  gen.GenerateBenign(10000, &log);
  size_t before = log.event_count();
  ReduceLog(&log);
  uint64_t total = 0;
  for (const SystemEvent& ev : log.events()) total += ev.merged_count;
  EXPECT_EQ(total, before);
}

TEST(CprTest, BurstyWorkloadReducesMoreThanUniform) {
  GeneratorOptions bursty;
  bursty.burst_probability = 0.5;
  bursty.burst_max_len = 16;
  GeneratorOptions uniform;
  uniform.burst_probability = 0.0;

  AuditLog a, b;
  WorkloadGenerator ga(bursty), gb(uniform);
  ga.GenerateBenign(20000, &a);
  gb.GenerateBenign(20000, &b);
  double ra = ReduceLog(&a).ReductionRatio();
  double rb = ReduceLog(&b).ReductionRatio();
  EXPECT_GT(ra, rb);
}

// --- The causality-preservation property itself. ---
//
// Forward dependency closure: starting from an entity, the set of entities
// reachable by time-respecting event traversal must be identical before and
// after reduction.

std::set<EntityId> ForwardClosure(const AuditLog& log, EntityId start) {
  // Collect (time, subject, object) triples and propagate reachability in
  // time order: an event e makes object reachable if subject is reachable
  // no later than e's end (and vice versa for reads... keep the simple
  // directional model used by the storage graph: subject -> object).
  std::vector<const SystemEvent*> events;
  events.reserve(log.event_count());
  for (const SystemEvent& ev : log.events()) events.push_back(&ev);
  std::sort(events.begin(), events.end(),
            [](const SystemEvent* a, const SystemEvent* b) {
              return a->start_time < b->start_time;
            });
  std::set<EntityId> reach{start};
  bool changed = true;
  while (changed) {
    changed = false;
    for (const SystemEvent* ev : events) {
      if (reach.count(ev->subject) > 0 && reach.count(ev->object) == 0) {
        reach.insert(ev->object);
        changed = true;
      }
    }
  }
  return reach;
}

TEST(CprTest, ForwardReachabilityPreserved) {
  AuditLog log;
  WorkloadGenerator gen;
  gen.GenerateBenign(2000, &log);
  auto attack = gen.InjectDataLeakageAttack(&log);
  gen.GenerateBenign(2000, &log);

  // Reachability from the attack's bash process before reduction.
  EntityId bash = kInvalidEntityId;
  for (const SystemEntity& e : log.entities()) {
    if (e.type == EntityType::kProcess && e.exename == "/bin/bash") {
      bash = e.id;
    }
  }
  ASSERT_NE(bash, kInvalidEntityId);

  std::set<EntityId> before = ForwardClosure(log, bash);
  ReduceLog(&log);
  std::set<EntityId> after = ForwardClosure(log, bash);
  EXPECT_EQ(before, after);
}

class CprSeedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CprSeedTest, ReachabilityPreservedAcrossSeeds) {
  GeneratorOptions opts;
  opts.seed = GetParam();
  opts.burst_probability = 0.3;
  AuditLog log;
  WorkloadGenerator gen(opts);
  gen.GenerateBenign(3000, &log);
  // Check closure from every distinct process exe's first entity.
  std::vector<EntityId> probes;
  for (const SystemEntity& e : log.entities()) {
    if (e.type == EntityType::kProcess && probes.size() < 5) {
      probes.push_back(e.id);
    }
  }
  std::vector<std::set<EntityId>> before;
  for (EntityId p : probes) before.push_back(ForwardClosure(log, p));
  ReduceLog(&log);
  for (size_t i = 0; i < probes.size(); ++i) {
    EXPECT_EQ(before[i], ForwardClosure(log, probes[i])) << "probe " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CprSeedTest,
                         ::testing::Values(1, 2, 3, 17, 1234));

}  // namespace
}  // namespace raptor::audit
