// Tests for the structured logger / flight recorder (src/obs/log).

#include "obs/log.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace raptor::obs {
namespace {

/// Value of `key` in a record's fields, or "" when absent.
std::string FieldValue(const LogRecord& record, std::string_view key) {
  for (const auto& [k, v] : record.fields) {
    if (k == key) return v;
  }
  return "";
}

TEST(LogLevelTest, NamesRoundTrip) {
  for (LogLevel level : {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn,
                         LogLevel::kError}) {
    auto parsed = ParseLogLevel(LogLevelName(level));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, level);
  }
  EXPECT_EQ(ParseLogLevel("WARN"), LogLevel::kWarn);  // case-insensitive
  EXPECT_EQ(ParseLogLevel("warning"), LogLevel::kWarn);
  EXPECT_FALSE(ParseLogLevel("loud").has_value());
  EXPECT_FALSE(ParseLogLevel("").has_value());
}

TEST(LoggerTest, DisabledLoggerIsInert) {
  Logger logger;
  LogEvent event = logger.Log(LogLevel::kError, "engine", "boom");
  EXPECT_FALSE(event.active());
  event.Field("k", "v");  // no-op, must not crash
  event.Commit();
  EXPECT_TRUE(logger.Snapshot().empty());
  EXPECT_EQ(logger.records_committed(), 0u);
}

TEST(LoggerTest, MinLevelGatesEmission) {
  Logger logger;
  logger.set_enabled(true);
  logger.set_min_level(LogLevel::kWarn);
  logger.Log(LogLevel::kInfo, "engine", "chatty");
  logger.Log(LogLevel::kWarn, "engine", "notable");
  logger.Log(LogLevel::kError, "engine", "broken");
  auto records = logger.Snapshot();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].message, "notable");
  EXPECT_EQ(records[1].message, "broken");
}

TEST(LoggerTest, FieldsSerializeEveryType) {
  Logger logger;
  logger.set_enabled(true);
  logger.Log(LogLevel::kInfo, "engine", "typed")
      .Field("s", "text")
      .Field("i", static_cast<int64_t>(-7))
      .Field("u", static_cast<uint64_t>(42))
      .Field("d", 1.5)
      .Field("b", true);
  auto records = logger.Snapshot();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(FieldValue(records[0], "s"), "text");
  EXPECT_EQ(FieldValue(records[0], "i"), "-7");
  EXPECT_EQ(FieldValue(records[0], "u"), "42");
  EXPECT_EQ(FieldValue(records[0], "d"), "1.5");
  EXPECT_EQ(FieldValue(records[0], "b"), "true");
}

TEST(LoggerTest, RecordsCarryActiveTraceId) {
  Logger logger;
  logger.set_enabled(true);
  logger.Log(LogLevel::kInfo, "core", "outside");
  {
    TraceScope scope = Tracer::Default().BeginTrace("hunt", /*force=*/true);
    ASSERT_TRUE(scope.active());
    logger.Log(LogLevel::kWarn, "core", "inside");
  }
  auto records = logger.Snapshot();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].trace_id, 0u);
  EXPECT_NE(records[1].trace_id, 0u);

  LogFilter filter;
  filter.trace_id = records[1].trace_id;
  auto correlated = logger.Snapshot(filter);
  ASSERT_EQ(correlated.size(), 1u);
  EXPECT_EQ(correlated[0].message, "inside");
}

TEST(LoggerTest, RingEvictsOldestAndCountsDrops) {
  Registry& registry = Registry::Default();
  uint64_t evicted_before = registry.CounterValue(
      "raptor_log_dropped_total", {{"subsystem", "evict_test"},
                                   {"level", "info"},
                                   {"reason", "ring_evicted"}});
  Logger logger;
  logger.set_enabled(true);
  logger.set_capacity(4);
  for (int i = 0; i < 10; ++i) {
    logger.Log(LogLevel::kInfo, "evict_test", "r")
        .Field("i", static_cast<int64_t>(i));
  }
  auto records = logger.Snapshot();
  ASSERT_EQ(records.size(), 4u);
  // Oldest-first, and only the newest four survive.
  EXPECT_EQ(FieldValue(records[0], "i"), "6");
  EXPECT_EQ(FieldValue(records[3], "i"), "9");
  EXPECT_LT(records[0].seq, records[3].seq);
  // Commits count emissions, not survivors.
  EXPECT_EQ(logger.records_committed(), 10u);
  uint64_t evicted_after = registry.CounterValue(
      "raptor_log_dropped_total", {{"subsystem", "evict_test"},
                                   {"level", "info"},
                                   {"reason", "ring_evicted"}});
  EXPECT_EQ(evicted_after - evicted_before, 6u);
}

TEST(LoggerTest, ShrinkingCapacityTrimsRing) {
  Logger logger;
  logger.set_enabled(true);
  for (int i = 0; i < 8; ++i) logger.Log(LogLevel::kInfo, "core", "r");
  logger.set_capacity(3);
  EXPECT_EQ(logger.Snapshot().size(), 3u);
  EXPECT_EQ(logger.capacity(), 3u);
}

TEST(LoggerTest, SnapshotFilters) {
  Logger logger;
  logger.set_enabled(true);
  logger.set_min_level(LogLevel::kDebug);
  logger.Log(LogLevel::kDebug, "engine", "scheduling");
  logger.Log(LogLevel::kWarn, "engine", "truncated");
  logger.Log(LogLevel::kWarn, "audit", "malformed");
  logger.Log(LogLevel::kError, "audit", "budget");

  LogFilter by_level;
  by_level.min_level = LogLevel::kWarn;
  EXPECT_EQ(logger.Snapshot(by_level).size(), 3u);

  LogFilter by_subsystem;
  by_subsystem.subsystem = "audit";
  auto audit = logger.Snapshot(by_subsystem);
  ASSERT_EQ(audit.size(), 2u);
  EXPECT_EQ(audit[0].message, "malformed");

  LogFilter combined;
  combined.min_level = LogLevel::kError;
  combined.subsystem = "audit";
  auto errors = logger.Snapshot(combined);
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors[0].message, "budget");

  // limit keeps the newest matches, still oldest-first.
  LogFilter limited;
  limited.limit = 2;
  auto newest = logger.Snapshot(limited);
  ASSERT_EQ(newest.size(), 2u);
  EXPECT_EQ(newest[0].message, "malformed");
  EXPECT_EQ(newest[1].message, "budget");
}

TEST(LogSamplerTest, AdmitsBurstThenSuppresses) {
  LogSampler sampler(/*burst=*/3.0, /*refill_per_sec=*/0.0);
  EXPECT_TRUE(sampler.Admit());
  EXPECT_TRUE(sampler.Admit());
  EXPECT_TRUE(sampler.Admit());
  EXPECT_FALSE(sampler.Admit());
  EXPECT_FALSE(sampler.Admit());
  EXPECT_EQ(sampler.suppressed_total(), 2u);
  EXPECT_EQ(sampler.TakeSuppressed(), 2u);
  EXPECT_EQ(sampler.TakeSuppressed(), 0u);  // tally was consumed
}

TEST(LoggerTest, SampledDeclinesCountUnderSampledReason) {
  Registry& registry = Registry::Default();
  uint64_t sampled_before = registry.CounterValue(
      "raptor_log_dropped_total", {{"subsystem", "sample_test"},
                                   {"level", "warn"},
                                   {"reason", "sampled"}});
  Logger logger;
  logger.set_enabled(true);
  // A zero-refill sampler models the inside of one burst window: the first
  // record commits, the next two are dropped and counted.
  LogSampler sampler(/*burst=*/1.0, /*refill_per_sec=*/0.0);
  EXPECT_TRUE(logger.Sampled(LogLevel::kWarn, "sample_test", "hot", &sampler)
                  .active());
  EXPECT_FALSE(logger.Sampled(LogLevel::kWarn, "sample_test", "hot", &sampler)
                   .active());
  EXPECT_FALSE(logger.Sampled(LogLevel::kWarn, "sample_test", "hot", &sampler)
                   .active());
  uint64_t sampled_after = registry.CounterValue(
      "raptor_log_dropped_total", {{"subsystem", "sample_test"},
                                   {"level", "warn"},
                                   {"reason", "sampled"}});
  EXPECT_EQ(sampled_after - sampled_before, 2u);
  EXPECT_EQ(logger.Snapshot().size(), 1u);
}

TEST(LoggerTest, SampledRecordCarriesSuppressedField) {
  // Force the sequence decline,decline,admit through one sampler by
  // draining a burst of 1 and then waiting for a fast refill.
  Logger logger;
  logger.set_enabled(true);
  LogSampler sampler(/*burst=*/1.0, /*refill_per_sec=*/200.0);
  EXPECT_TRUE(logger.Sampled(LogLevel::kWarn, "audit", "hot", &sampler)
                  .active());
  int declined = 0;
  LogEvent admitted;
  for (int i = 0; i < 10000; ++i) {
    LogEvent event = logger.Sampled(LogLevel::kWarn, "audit", "hot", &sampler);
    if (event.active()) {
      admitted = std::move(event);
      break;
    }
    ++declined;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(admitted.active());
  ASSERT_GT(declined, 0);
  admitted.Commit();
  auto records = logger.Snapshot();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[1].suppressed, static_cast<uint64_t>(declined));
  EXPECT_EQ(FieldValue(records[1], "suppressed"),
            std::to_string(declined));
}

TEST(LoggerTest, ConcurrentWritersKeepRingConsistent) {
  Logger logger;
  logger.set_enabled(true);
  logger.set_capacity(64);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&logger, t] {
      for (int i = 0; i < kPerThread; ++i) {
        logger.Log(LogLevel::kInfo, "core", "concurrent")
            .Field("thread", static_cast<int64_t>(t))
            .Field("i", static_cast<int64_t>(i));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(logger.records_committed(),
            static_cast<uint64_t>(kThreads * kPerThread));
  auto records = logger.Snapshot();
  EXPECT_EQ(records.size(), 64u);
  // Sequence numbers are unique. (They are assigned before the ring lock,
  // so two racing commits may land out of order — order is not asserted.)
  std::set<uint64_t> seqs;
  for (const LogRecord& record : records) seqs.insert(record.seq);
  EXPECT_EQ(seqs.size(), records.size());
}

TEST(LoggerTest, ClearEmptiesRingButKeepsCounters) {
  Logger logger;
  logger.set_enabled(true);
  logger.Log(LogLevel::kInfo, "core", "r");
  EXPECT_EQ(logger.Snapshot().size(), 1u);
  logger.Clear();
  EXPECT_TRUE(logger.Snapshot().empty());
  EXPECT_EQ(logger.records_committed(), 1u);
}

}  // namespace
}  // namespace raptor::obs
