// End-to-end resilience tests: error-budgeted ingestion, bounded query
// execution, degraded-mode hunting, and the hardened HTTP server — driven
// by corrupt inputs, tight deadlines, scripted faults (tests/
// fault_injection.h), and misbehaving loopback clients.

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <memory>
#include <stdexcept>
#include <string>

#include "audit/generator.h"
#include "audit/log.h"
#include "audit/parser.h"
#include "common/strings.h"
#include "core/threat_raptor.h"
#include "engine/engine.h"
#include "fault_injection.h"
#include "server/http.h"
#include "storage/graph/graph_store.h"
#include "storage/relational/database.h"
#include "tbql/analyzer.h"
#include "tbql/parser.h"

namespace raptor {
namespace {

using audit::AuditLog;
using audit::LogParser;
using audit::ParseOptions;
using engine::ExecutionOptions;
using engine::QueryResult;
using testing::ScriptedFaults;

// =====================================================================
// Error-budgeted ingestion.
// =====================================================================

/// A generated workload rendered back to the textual log format, plus the
/// same text with `garbage_lines` malformed lines interleaved.
struct Corpus {
  std::string clean_text;
  std::string corrupt_text;
  size_t events = 0;
  size_t garbage_lines = 0;
  audit::AttackTrace attack;
};

Corpus MakeCorpus(size_t benign_per_side) {
  static const char* kGarbage[] = {
      "!!! corrupted frame 0xdeadbeef",
      "ts=notanumber pid=1 exe=/a op=read obj=file path=/x",
      "ts=1 pid=2 exe=/b op=read obj=file",  // missing path
  };
  Corpus corpus;
  AuditLog source;
  audit::WorkloadGenerator gen;
  gen.GenerateBenign(benign_per_side, &source);
  corpus.attack = gen.InjectDataLeakageAttack(&source);
  gen.GenerateBenign(benign_per_side, &source);
  corpus.events = source.event_count();
  for (size_t i = 0; i < source.event_count(); ++i) {
    std::string line = LogParser::FormatEvent(source, source.event(i)) + "\n";
    corpus.clean_text += line;
    if (i % 500 == 250) {
      corpus.corrupt_text += kGarbage[corpus.garbage_lines % 3];
      corpus.corrupt_text += "\n";
      ++corpus.garbage_lines;
    }
    corpus.corrupt_text += line;
  }
  return corpus;
}

TEST(ErrorBudgetTest, CorruptLogWithinBudgetHuntsLikeCleanLog) {
  Corpus corpus = MakeCorpus(1500);
  ASSERT_GT(corpus.garbage_lines, 0u);

  ThreatRaptor clean;
  ASSERT_TRUE(clean.IngestLogText(corpus.clean_text).ok());
  ASSERT_TRUE(clean.FinalizeStorage().ok());

  ThreatRaptor corrupt;
  auto stats = corrupt.IngestLogText(corpus.corrupt_text,
                                     ParseOptions{.error_budget = 10});
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->events, corpus.events);
  EXPECT_EQ(stats->skipped, corpus.garbage_lines);
  EXPECT_EQ(stats->lines, corpus.events + corpus.garbage_lines);
  EXPECT_FALSE(stats->error_samples.empty());
  ASSERT_TRUE(corrupt.FinalizeStorage().ok());

  auto clean_hunt = clean.Hunt(corpus.attack.report_text);
  auto corrupt_hunt = corrupt.Hunt(corpus.attack.report_text);
  ASSERT_TRUE(clean_hunt.ok()) << clean_hunt.status().ToString();
  ASSERT_TRUE(corrupt_hunt.ok()) << corrupt_hunt.status().ToString();
  EXPECT_FALSE(clean_hunt->result.rows.empty());
  EXPECT_EQ(clean_hunt->result.rows, corrupt_hunt->result.rows);
  EXPECT_FALSE(corrupt_hunt->degradation.degraded);
}

TEST(ErrorBudgetTest, StrictModeStillRejectsCorruptLog) {
  Corpus corpus = MakeCorpus(300);
  ThreatRaptor strict;
  Status st = strict.IngestLogText(corpus.corrupt_text);
  EXPECT_TRUE(st.IsParseError()) << st.ToString();
  // The zero-budget options overload behaves identically.
  ThreatRaptor strict2;
  auto stats = strict2.IngestLogText(corpus.corrupt_text, ParseOptions{});
  EXPECT_TRUE(stats.status().IsParseError());
}

TEST(ErrorBudgetTest, ExceededBudgetFailsButKeepsParsedPrefix) {
  std::string text;
  for (int i = 0; i < 4; ++i) {
    text += StrFormat("ts=%d pid=7 exe=/bin/w op=write obj=file path=/t%d\n",
                      i + 1, i);
    text += "broken record\n";
  }
  AuditLog log;
  auto stats =
      LogParser::ParseText(text, &log, ParseOptions{.error_budget = 2});
  EXPECT_TRUE(stats.status().IsParseError()) << stats.status().ToString();
  EXPECT_NE(stats.status().ToString().find("error budget"), std::string::npos);
  // Everything parsed before the abort stays in the log.
  EXPECT_EQ(log.event_count(), 3u);

  AuditLog log2;
  auto ok_stats =
      LogParser::ParseText(text, &log2, ParseOptions{.error_budget = 4});
  ASSERT_TRUE(ok_stats.ok());
  EXPECT_EQ(ok_stats->events, 4u);
  EXPECT_EQ(ok_stats->skipped, 4u);
}

TEST(ErrorBudgetTest, ErrorSamplesAreCappedAndNumbered) {
  std::string text = "ts=1 pid=1 exe=/a op=read obj=file path=/x\n";
  for (int i = 0; i < 6; ++i) text += "junk\n";
  AuditLog log;
  auto stats = LogParser::ParseText(
      text, &log, ParseOptions{.error_budget = 10, .max_error_samples = 2});
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->skipped, 6u);
  ASSERT_EQ(stats->error_samples.size(), 2u);
  EXPECT_NE(stats->error_samples[0].find("line 2:"), std::string::npos);
}

TEST(ErrorBudgetTest, InjectedParserFaultsCountAgainstBudget) {
  std::string text;
  for (int i = 0; i < 10; ++i) {
    text += StrFormat("ts=%d pid=7 exe=/bin/w op=write obj=file path=/t%d\n",
                      i + 1, i);
  }
  ScriptedFaults faults;
  faults.FailAt("audit.parser.line", Status::ParseError("injected fault"),
                /*after=*/5, /*times=*/2);
  AuditLog log;
  auto stats =
      LogParser::ParseText(text, &log, ParseOptions{.error_budget = 2});
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->events, 8u);
  EXPECT_EQ(stats->skipped, 2u);
  ASSERT_FALSE(stats->error_samples.empty());
  EXPECT_NE(stats->error_samples[0].find("injected fault"),
            std::string::npos);
  EXPECT_EQ(faults.hits("audit.parser.line"), 10);
}

// =====================================================================
// Bounded query execution.
// =====================================================================

struct EngineFixture {
  AuditLog log;
  std::unique_ptr<rel::RelationalDatabase> rel_db;
  std::unique_ptr<graph::GraphStore> graph_db;
  std::unique_ptr<engine::QueryEngine> engine;

  void Finish() {
    rel_db = std::make_unique<rel::RelationalDatabase>();
    rel_db->Load(log);
    graph_db = std::make_unique<graph::GraphStore>(log);
    engine = std::make_unique<engine::QueryEngine>(&log, rel_db.get(),
                                                   graph_db.get());
  }

  Result<QueryResult> Run(const std::string& src,
                          const ExecutionOptions& opts = {}) {
    auto q = tbql::Parse(src);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    Status st = tbql::Analyze(&*q);
    EXPECT_TRUE(st.ok()) << st.ToString();
    return engine->Execute(*q, opts);
  }
};

TEST(BoundedExecutionTest, TightDeadlineReturnsTruncatedPartialResult) {
  EngineFixture fx;
  audit::WorkloadGenerator gen;
  gen.GenerateBenign(50000, &fx.log);
  fx.Finish();
  // An unconstrained variable-length path search over a 50k-edge graph is
  // far more than 1 ms of work; the engine must give up mid-search and say
  // so instead of hanging.
  ExecutionOptions opts;
  opts.deadline_ms = 1;
  auto r = fx.Run(
      "e1: proc p ~>(1~10)[read] file f\n"
      "e2: proc q write file g\n"
      "return p, g",
      opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->truncated);
  EXPECT_NE(r->stats.truncation_reason.find("deadline"), std::string::npos)
      << r->stats.truncation_reason;
}

TEST(BoundedExecutionTest, InjectedDelayTripsDeadlineBetweenPatterns) {
  EngineFixture fx;
  audit::WorkloadGenerator gen;
  gen.GenerateBenign(300, &fx.log);
  fx.Finish();
  ScriptedFaults faults;
  faults.DelayAt("engine.pattern", std::chrono::milliseconds(50));
  ExecutionOptions opts;
  opts.deadline_ms = 5;
  auto r = fx.Run(
      "e1: proc p read file f\n"
      "e2: proc q write file g\n"
      "return p, g",
      opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->truncated);
  EXPECT_NE(r->stats.truncation_reason.find("deadline"), std::string::npos);
  // Only the first pattern got to run before the budget expired.
  EXPECT_EQ(faults.hits("engine.pattern"), 1);
}

TEST(BoundedExecutionTest, MaxGraphEdgesBoundsPathSearch) {
  EngineFixture fx;
  audit::WorkloadGenerator gen;
  gen.GenerateBenign(5000, &fx.log);
  gen.InjectForkChain("/evil/root", 3, audit::Operation::kRead, "/etc/secret",
                      &fx.log);
  fx.Finish();
  ExecutionOptions opts;
  opts.max_graph_edges = 10;
  auto r = fx.Run("proc p ~>(1~10)[read] file f\nreturn p, f", opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->truncated);
  EXPECT_NE(r->stats.truncation_reason.find("max_graph_edges"),
            std::string::npos)
      << r->stats.truncation_reason;
  // The search stopped early: nowhere near the whole graph was traversed.
  EXPECT_LT(r->stats.graph_edges_traversed, fx.graph_db->num_edges());
}

TEST(BoundedExecutionTest, UserLimitIsNotTruncation) {
  EngineFixture fx;
  audit::WorkloadGenerator gen;
  gen.GenerateBenign(2000, &fx.log);
  fx.Finish();
  auto limited = fx.Run("proc p read file f\nreturn p, f\nlimit 3");
  ASSERT_TRUE(limited.ok());
  EXPECT_EQ(limited->rows.size(), 3u);
  EXPECT_FALSE(limited->truncated);

  // The same cap imposed by the engine's safety net IS truncation.
  ExecutionOptions opts;
  opts.max_rows = 3;
  auto capped = fx.Run("proc p read file f\nreturn p, f", opts);
  ASSERT_TRUE(capped.ok());
  EXPECT_EQ(capped->rows.size(), 3u);
  EXPECT_TRUE(capped->truncated);
  EXPECT_NE(capped->stats.truncation_reason.find("row cap"),
            std::string::npos);
}

// ExecutionStats keeps ten per-pattern vectors parallel (schedule,
// matches_per_pattern, pattern_scores, pattern_used_graph, per_pattern_ms,
// pattern_was_constrained, plus the four per-operator resource vectors).
// Truncation paths stop mid-loop, which is exactly where a missed
// push_back would skew them.
void ExpectStatsVectorsParallel(const engine::ExecutionStats& stats) {
  size_t n = stats.schedule.size();
  EXPECT_EQ(stats.matches_per_pattern.size(), n);
  EXPECT_EQ(stats.pattern_scores.size(), n);
  EXPECT_EQ(stats.pattern_used_graph.size(), n);
  EXPECT_EQ(stats.per_pattern_ms.size(), n);
  EXPECT_EQ(stats.pattern_was_constrained.size(), n);
  EXPECT_EQ(stats.pattern_rows_examined.size(), n);
  EXPECT_EQ(stats.pattern_bytes_touched.size(), n);
  EXPECT_EQ(stats.pattern_index_probes.size(), n);
  EXPECT_EQ(stats.pattern_full_scans.size(), n);
}

TEST(BoundedExecutionTest, TruncationKeepsStatsVectorsParallel) {
  EngineFixture fx;
  audit::WorkloadGenerator gen;
  gen.GenerateBenign(300, &fx.log);
  fx.Finish();
  ScriptedFaults faults;
  faults.DelayAt("engine.pattern", std::chrono::milliseconds(50));
  ExecutionOptions opts;
  opts.deadline_ms = 5;
  auto r = fx.Run(
      "e1: proc p read file f\n"
      "e2: proc q write file g\n"
      "return p, g",
      opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_TRUE(r->truncated);
  ExpectStatsVectorsParallel(r->stats);
}

TEST(BoundedExecutionTest, EngineFaultPointFailsExecution) {
  EngineFixture fx;
  audit::WorkloadGenerator gen;
  gen.GenerateBenign(100, &fx.log);
  fx.Finish();
  ScriptedFaults faults;
  faults.FailAt("engine.execute", Status::Internal("injected engine fault"));
  auto r = fx.Run("proc p read file f\nreturn p, f");
  EXPECT_TRUE(r.status().IsInternal()) << r.status().ToString();
}

// =====================================================================
// Degraded-mode hunting.
// =====================================================================

struct HuntFixture {
  ThreatRaptor system;
  audit::AttackTrace attack;

  HuntFixture() {
    audit::WorkloadGenerator gen;
    gen.GenerateBenign(2000, system.mutable_log());
    attack = gen.InjectDataLeakageAttack(system.mutable_log());
    gen.GenerateBenign(2000, system.mutable_log());
    EXPECT_TRUE(system.FinalizeStorage().ok());
  }
};

TEST(DegradedHuntTest, SynthesisFailureFallsBackToPerIocQueries) {
  HuntFixture fx;
  ScriptedFaults faults;
  faults.FailAt("synthesis.synthesize",
                Status::Internal("injected synthesis fault"));

  // Without degraded mode the hunt surfaces the original error.
  auto strict = fx.system.Hunt(fx.attack.report_text);
  EXPECT_TRUE(strict.status().IsInternal()) << strict.status().ToString();

  HuntOptions degraded;
  degraded.allow_degraded = true;
  auto hunt = fx.system.Hunt(fx.attack.report_text, degraded);
  ASSERT_TRUE(hunt.ok()) << hunt.status().ToString();
  EXPECT_TRUE(hunt->degradation.degraded);
  ASSERT_EQ(hunt->degradation.failures.size(), 1u);
  EXPECT_EQ(hunt->degradation.failures[0].stage, "synthesis");
  EXPECT_NE(hunt->degradation.failures[0].error.find("injected"),
            std::string::npos);
  EXPECT_GT(hunt->degradation.subqueries_attempted, 0u);
  EXPECT_GT(hunt->degradation.subqueries_succeeded, 0u);
  // Per-IOC sub-queries still surface the attack's events.
  ASSERT_EQ(hunt->result.columns.size(), 4u);
  EXPECT_EQ(hunt->result.columns[0], "subquery");
  EXPECT_FALSE(hunt->result.rows.empty());
  EXPECT_FALSE(hunt->result.MatchedEvents().empty());
  EXPECT_NE(hunt->degradation.ToString().find("synthesis failed"),
            std::string::npos);
}

TEST(DegradedHuntTest, ExecutionFailureFallsBackToPerPatternQueries) {
  HuntFixture fx;
  ScriptedFaults faults;
  // Only the full behavior query fails; the per-pattern sub-queries (the
  // 2nd..Nth Execute calls) succeed.
  faults.FailAt("engine.execute", Status::Internal("injected engine fault"),
                /*after=*/0, /*times=*/1);
  HuntOptions degraded;
  degraded.allow_degraded = true;
  auto hunt = fx.system.Hunt(fx.attack.report_text, degraded);
  ASSERT_TRUE(hunt.ok()) << hunt.status().ToString();
  EXPECT_TRUE(hunt->degradation.degraded);
  ASSERT_EQ(hunt->degradation.failures.size(), 1u);
  EXPECT_EQ(hunt->degradation.failures[0].stage, "execution");
  EXPECT_GT(hunt->degradation.subqueries_attempted, 0u);
  EXPECT_EQ(hunt->degradation.subqueries_succeeded,
            hunt->degradation.subqueries_attempted);
  // The synthesized query survived, so the report still carries it.
  EXPECT_FALSE(hunt->query_text.empty());
  EXPECT_FALSE(hunt->result.rows.empty());
  // The per-pattern labels come from the synthesized query's pattern ids.
  EXPECT_EQ(hunt->result.rows[0][1].substr(0, 3), "evt");
  EXPECT_GT(faults.hits("engine.execute"), 1);
}

TEST(DegradedHuntTest, MergedStatsVectorsStayParallel) {
  HuntFixture fx;
  ScriptedFaults faults;
  faults.FailAt("engine.execute", Status::Internal("injected engine fault"),
                /*after=*/0, /*times=*/1);
  HuntOptions degraded;
  degraded.allow_degraded = true;
  auto hunt = fx.system.Hunt(fx.attack.report_text, degraded);
  ASSERT_TRUE(hunt.ok()) << hunt.status().ToString();
  ASSERT_TRUE(hunt->degradation.degraded);
  // The merged result appends per-pattern stats across every successful
  // sub-query; all six vectors must stay the same length.
  EXPECT_FALSE(hunt->result.stats.schedule.empty());
  ExpectStatsVectorsParallel(hunt->result.stats);
}

TEST(DegradedHuntTest, ExecutionFailureWithoutDegradedModeIsAnError) {
  HuntFixture fx;
  ScriptedFaults faults;
  faults.FailAt("engine.execute", Status::Internal("injected engine fault"));
  auto hunt = fx.system.Hunt(fx.attack.report_text);
  EXPECT_TRUE(hunt.status().IsInternal()) << hunt.status().ToString();
}

// =====================================================================
// Hardened HTTP server.
// =====================================================================

std::string RawRequest(uint16_t port, const std::string& wire,
                       bool half_close = false) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  if (!wire.empty()) {
    EXPECT_EQ(::send(fd, wire.data(), wire.size(), 0),
              static_cast<ssize_t>(wire.size()));
  }
  if (half_close) ::shutdown(fd, SHUT_WR);
  std::string out;
  char buffer[4096];
  ssize_t n;
  while ((n = ::recv(fd, buffer, sizeof(buffer), 0)) > 0) {
    out.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

struct SmallServer {
  server::HttpServer http;

  SmallServer()
      : http(server::HttpServerOptions{.recv_timeout_ms = 200,
                                       .max_header_bytes = 256,
                                       .max_body_bytes = 1024}) {
    http.Route("GET", "/ping", [](const server::HttpRequest&) {
      return server::HttpResponse{200, "text/plain", "pong"};
    });
    http.Route("POST", "/echo", [](const server::HttpRequest& req) {
      return server::HttpResponse{200, "text/plain", req.body};
    });
    http.Route("GET", "/boom",
               [](const server::HttpRequest&) -> server::HttpResponse {
                 throw std::runtime_error("kaboom");
               });
    EXPECT_TRUE(http.Start(0).ok());
  }
};

TEST(HardenedServerTest, SlowlorisClientGets408AndServerRecovers) {
  SmallServer fx;
  // Dribble a few bytes and then stall: the server must give up after its
  // read budget (200 ms) instead of blocking the accept loop forever.
  std::string response = RawRequest(fx.http.port(), "GET /ping HT");
  EXPECT_NE(response.find("408"), std::string::npos) << response;
  // The next well-behaved client is served normally.
  response = RawRequest(fx.http.port(), "GET /ping HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_TRUE(response.ends_with("pong"));
}

TEST(HardenedServerTest, OversizedHeadGets413) {
  SmallServer fx;
  std::string wire = "GET /ping HTTP/1.1\r\nX-Pad: " +
                     std::string(600, 'a') + "\r\n\r\n";
  std::string response = RawRequest(fx.http.port(), wire);
  EXPECT_NE(response.find("413"), std::string::npos) << response;
}

TEST(HardenedServerTest, OversizedBodyGets413) {
  SmallServer fx;
  std::string wire =
      "POST /echo HTTP/1.1\r\nHost: t\r\nContent-Length: 5000\r\n\r\n";
  std::string response = RawRequest(fx.http.port(), wire);
  EXPECT_NE(response.find("413"), std::string::npos) << response;
  // A body within the limit still round-trips.
  std::string ok = RawRequest(fx.http.port(),
                              "POST /echo HTTP/1.1\r\nHost: t\r\n"
                              "Content-Length: 5\r\n\r\nhello");
  EXPECT_TRUE(ok.ends_with("hello"));
}

TEST(HardenedServerTest, TruncatedBodyGets400) {
  SmallServer fx;
  std::string wire =
      "POST /echo HTTP/1.1\r\nHost: t\r\nContent-Length: 100\r\n\r\nhalf";
  std::string response =
      RawRequest(fx.http.port(), wire, /*half_close=*/true);
  EXPECT_NE(response.find("400"), std::string::npos) << response;
  EXPECT_NE(response.find("truncated body"), std::string::npos);
}

TEST(HardenedServerTest, ThrowingHandlerGets500AndServerSurvives) {
  SmallServer fx;
  std::string response = RawRequest(fx.http.port(),
                                    "GET /boom HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_NE(response.find("500"), std::string::npos) << response;
  EXPECT_NE(response.find("kaboom"), std::string::npos);
  response = RawRequest(fx.http.port(),
                        "GET /ping HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_NE(response.find("200 OK"), std::string::npos);
}

TEST(HardenedServerTest, HandlerFaultPointGets500) {
  SmallServer fx;
  {
    ScriptedFaults faults;
    faults.FailAt("server.handler",
                  Status::Internal("injected handler fault"));
    std::string response = RawRequest(
        fx.http.port(), "GET /ping HTTP/1.1\r\nHost: t\r\n\r\n");
    EXPECT_NE(response.find("500"), std::string::npos) << response;
    EXPECT_NE(response.find("injected handler fault"), std::string::npos);
  }
  // Fault uninstalled: back to normal.
  std::string response = RawRequest(fx.http.port(),
                                    "GET /ping HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_NE(response.find("200 OK"), std::string::npos);
}

// =====================================================================
// Live-ingestion consistency under partial failure.
// =====================================================================

TEST(LiveIngestConsistencyTest, StrictFailureMidBatchLeavesBackendsInSync) {
  ThreatRaptor system;
  ASSERT_TRUE(system
                  .IngestLogText(
                      "ts=1 pid=1 exe=/sbin/init op=read obj=file "
                      "path=/boot/config\n")
                  .ok());
  ASSERT_TRUE(system.FinalizeStorage().ok());
  size_t base = system.log().event_count();

  Status st = system.IngestLiveText(
      "ts=10 pid=5 exe=/live/agent op=write obj=file path=/tmp/live1\n"
      "ts=11 pid=5 exe=/live/agent op=write obj=file path=/tmp/live2\n"
      "BROKEN LINE\n"
      "ts=12 pid=5 exe=/live/agent op=write obj=file path=/tmp/live3\n");
  EXPECT_TRUE(st.IsParseError()) << st.ToString();

  // The two events before the malformed line landed, and every backend
  // agrees with the log — no torn state.
  EXPECT_EQ(system.log().event_count(), base + 2);
  EXPECT_EQ(system.relational().events().num_rows(),
            system.log().event_count());
  EXPECT_EQ(system.graph().num_edges(), system.log().event_count());
  auto r = system.ExecuteTbql("proc p[\"%live%\"] write file f\nreturn p, f");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows.size(), 2u);
}

TEST(LiveIngestConsistencyTest, BudgetedLiveIngestSkipsAndStaysInSync) {
  ThreatRaptor system;
  ASSERT_TRUE(system
                  .IngestLogText(
                      "ts=1 pid=1 exe=/sbin/init op=read obj=file "
                      "path=/boot/config\n")
                  .ok());
  ASSERT_TRUE(system.FinalizeStorage().ok());
  size_t base = system.log().event_count();

  auto stats = system.IngestLiveText(
      "ts=10 pid=5 exe=/live/agent op=write obj=file path=/tmp/live1\n"
      "BROKEN LINE\n"
      "ts=11 pid=5 exe=/live/agent op=write obj=file path=/tmp/live2\n"
      "ts=12 pid=5 exe=/live/agent op=write obj=file path=/tmp/live3\n",
      ParseOptions{.error_budget = 1});
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->events, 3u);
  EXPECT_EQ(stats->skipped, 1u);

  EXPECT_EQ(system.log().event_count(), base + 3);
  EXPECT_EQ(system.relational().events().num_rows(),
            system.log().event_count());
  EXPECT_EQ(system.graph().num_edges(), system.log().event_count());
  auto r = system.ExecuteTbql("proc p[\"%live%\"] write file f\nreturn p, f");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows.size(), 3u);
}

}  // namespace
}  // namespace raptor
