// Tests for the parallel execution layer (src/common/thread_pool.h and its
// consumers): pool semantics, trace propagation into workers, partitioned
// relational scans, parallel graph path search, the engine's determinism
// contract (byte-identical results at any thread count, including under
// budget truncation and fault injection), and parallel ingestion (parser
// chunking + CPR's parallel stable sort).
//
// Every suite here is named Parallel* so the TSAN CI job can select the
// whole concurrency surface with `ctest -R Parallel`.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "audit/cpr.h"
#include "audit/generator.h"
#include "audit/log.h"
#include "audit/parser.h"
#include "common/thread_pool.h"
#include "core/threat_raptor.h"
#include "engine/engine.h"
#include "engine/explain.h"
#include "fault_injection.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "storage/graph/graph_store.h"
#include "storage/relational/database.h"
#include "tbql/analyzer.h"
#include "tbql/parser.h"

namespace raptor {
namespace {

// --- The pool itself. ---

TEST(ParallelPoolTest, SharedPoolHasAtLeastFourWorkers) {
  // The shared pool is floored at 4 so concurrency tests interleave even on
  // single-core machines.
  EXPECT_GE(ThreadPool::Shared().size(), 4u);
  EXPECT_GE(ThreadPool::HardwareThreads(), 1u);
}

TEST(ParallelPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool& pool = ThreadPool::Shared();
  for (size_t total : std::vector<size_t>{1, 7, 64, 1000}) {
    for (size_t grain : std::vector<size_t>{1, 3, 64}) {
      std::vector<std::atomic<int>> hits(total);
      pool.ParallelFor(total, grain, [&](size_t, size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
      });
      for (size_t i = 0; i < total; ++i) {
        ASSERT_EQ(hits[i].load(), 1) << "index " << i << " total " << total
                                     << " grain " << grain;
      }
    }
  }
}

TEST(ParallelPoolTest, ParallelForZeroTotalIsNoop) {
  bool ran = false;
  ThreadPool::Shared().ParallelFor(0, 1,
                                   [&](size_t, size_t, size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ParallelPoolTest, NumThreadsOneRunsOnTheCallingThread) {
  std::vector<std::thread::id> seen(100);
  ThreadPool::Shared().ParallelFor(
      100, 10,
      [&](size_t, size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) seen[i] = std::this_thread::get_id();
      },
      /*num_threads=*/1);
  for (const std::thread::id& id : seen) {
    EXPECT_EQ(id, std::this_thread::get_id());
  }
}

TEST(ParallelPoolTest, SubmitPropagatesValueAndException) {
  ThreadPool& pool = ThreadPool::Shared();
  std::future<int> ok = pool.Submit([] { return 41 + 1; });
  EXPECT_EQ(ok.get(), 42);
  std::future<void> bad =
      pool.Submit([]() -> void { throw std::runtime_error("submit boom"); });
  EXPECT_THROW(bad.get(), std::runtime_error);
}

TEST(ParallelPoolTest, ParallelForRethrowsAnException) {
  EXPECT_THROW(ThreadPool::Shared().ParallelFor(
                   64, 1,
                   [](size_t, size_t begin, size_t) {
                     if (begin == 0) throw std::runtime_error("chunk boom");
                   }),
               std::runtime_error);
}

TEST(ParallelPoolTest, NestedParallelForCompletes) {
  // A worker running the outer body issues an inner ParallelFor; the
  // caller-participates design means this cannot deadlock on a full queue.
  std::atomic<int> count{0};
  ThreadPool::Shared().ParallelFor(4, 1, [&](size_t, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      ThreadPool::Shared().ParallelFor(
          64, 1, [&](size_t, size_t b, size_t e) {
            count.fetch_add(static_cast<int>(e - b));
          });
    }
  });
  EXPECT_EQ(count.load(), 4 * 64);
}

TEST(ParallelPoolTest, ExportsPoolMetrics) {
  obs::Registry& registry = obs::Registry::Default();
  ThreadPool::Shared().ParallelFor(1000, 1, [](size_t, size_t, size_t) {});
  // The instant body above can be claimed entirely by the caller before any
  // helper dequeues, and the task counter bumps on the worker side — so use
  // a Submit, whose future orders the bump before the read.
  ThreadPool::Shared().Submit([] {}).get();
  EXPECT_GE(registry.GaugeValue("raptor_pool_threads"), 4);
  EXPECT_GT(registry.CounterValue("raptor_pool_parallel_regions_total"), 0u);
  EXPECT_GT(registry.CounterValue("raptor_pool_tasks_total"), 0u);
}

// --- Trace propagation into workers. ---

TEST(ParallelTraceTest, WorkerSpansAndLogsStayTraceCorrelated) {
  obs::Tracer& tracer = obs::Tracer::Default();
  constexpr size_t kTasks = 32;
  std::vector<std::atomic<uint64_t>> ids(kTasks);
  obs::TraceScope scope = tracer.BeginTrace("parallel-root", /*force=*/true);
  ASSERT_TRUE(scope.active());
  const uint64_t root_id = obs::Tracer::CurrentTraceId();
  ASSERT_NE(root_id, 0u);
  ThreadPool::Shared().ParallelFor(kTasks, 1, [&](size_t, size_t begin,
                                                  size_t end) {
    for (size_t i = begin; i < end; ++i) {
      obs::Span span = obs::Tracer::Default().StartSpan("worker-span");
      span.SetAttr("index", static_cast<int64_t>(i));
      // The captured trace id is what log records correlate on.
      ids[i].store(obs::Tracer::CurrentTraceId());
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  std::optional<obs::Trace> trace = scope.Finish();
  ASSERT_TRUE(trace.has_value());
  EXPECT_EQ(trace->id, root_id);
  for (size_t i = 0; i < kTasks; ++i) {
    EXPECT_EQ(ids[i].load(), root_id) << "task " << i;
  }
  // Every worker span was merged back into the parent trace.
  size_t worker_spans = 0;
  for (const obs::SpanData& s : trace->spans) {
    if (s.name == "worker-span") ++worker_spans;
  }
  EXPECT_EQ(worker_spans, kTasks);
}

// --- Partitioned relational scans. ---

TEST(ParallelScanTest, PartitionedFullScanMatchesSerial) {
  audit::AuditLog log;
  audit::WorkloadGenerator gen;
  gen.GenerateBenign(20000, &log);
  rel::RelationalDatabase db;
  db.Load(log);
  const rel::Table& events = db.events();
  // `bytes` has no index, so this predicate forces a full scan.
  rel::ColumnId c_bytes = events.schema().Find("bytes");
  ASSERT_NE(c_bytes, rel::kInvalidColumn);
  rel::Conjunction preds{
      rel::Predicate{c_bytes, rel::CompareOp::kGt, rel::Value(int64_t{512})}};

  std::vector<rel::RowId> serial = events.Select(preds);
  ASSERT_FALSE(serial.empty());
  for (size_t t : std::vector<size_t>{2, 4, 8}) {
    rel::TableStats call;
    rel::ScanOptions scan{&ThreadPool::Shared(), t, /*grain=*/256, &call};
    std::vector<rel::RowId> parallel = events.Select(preds, scan);
    EXPECT_EQ(parallel, serial) << t << " threads";
    // Per-call attribution sees the whole scan regardless of who ran it.
    EXPECT_EQ(call.rows_scanned, events.num_rows()) << t << " threads";
  }
}

TEST(ParallelScanTest, ConcurrentSelectsAreSafeAndConsistent) {
  audit::AuditLog log;
  audit::WorkloadGenerator gen;
  gen.GenerateBenign(8000, &log);
  rel::RelationalDatabase db;
  db.Load(log);
  const rel::Table& events = db.events();
  rel::ColumnId c_bytes = events.schema().Find("bytes");
  rel::Conjunction preds{
      rel::Predicate{c_bytes, rel::CompareOp::kGe, rel::Value(int64_t{0})}};
  std::vector<rel::RowId> expected = events.Select(preds);
  // Many parallel Selects racing on one table: results stay identical and
  // the shared stats counters (updated atomically) don't corrupt.
  ThreadPool::Shared().ParallelFor(16, 1, [&](size_t, size_t begin,
                                              size_t end) {
    for (size_t i = begin; i < end; ++i) {
      rel::ScanOptions scan{&ThreadPool::Shared(), 4, 256, nullptr};
      std::vector<rel::RowId> got = events.Select(preds, scan);
      ASSERT_EQ(got.size(), expected.size());
      ASSERT_EQ(got, expected);
    }
  });
}

// --- Parallel graph path search. ---

TEST(ParallelGraphTest, FindPathsMatchesSerialIncludingTruncation) {
  audit::AuditLog log;
  audit::WorkloadGenerator gen;
  gen.GenerateBenign(3000, &log);
  for (int i = 0; i < 8; ++i) {
    gen.InjectForkChain("/bin/bash", 3, audit::Operation::kWrite, "/tmp/out",
                        &log);
  }
  graph::GraphStore g(log);
  std::vector<audit::EntityId> sources;
  for (const audit::SystemEntity& e : log.entities()) {
    if (e.type == audit::EntityType::kProcess) sources.push_back(e.id);
  }
  ASSERT_GT(sources.size(), 8u);
  graph::NodePredicate sink = [](const audit::SystemEntity& e) {
    return e.type == audit::EntityType::kFile && e.path == "/tmp/out";
  };
  graph::PathConstraints c;
  c.min_hops = 1;
  c.max_hops = 4;
  c.final_ops = {audit::Operation::kWrite};

  // Unbounded, loose bound, and a bound tight enough to truncate: the
  // parallel search must reproduce the serial matches, limit verdict, and
  // committed-effort counters exactly.
  for (uint64_t max_edges : std::vector<uint64_t>{0, 40, 100000}) {
    graph::SearchLimits serial_limits;
    serial_limits.max_edges = max_edges;
    std::vector<graph::PathMatch> serial =
        g.FindPaths(sources, sink, c, &serial_limits);

    for (size_t t : std::vector<size_t>{2, 8}) {
      graph::SearchLimits limits;
      limits.max_edges = max_edges;
      graph::SearchParallelism par{&ThreadPool::Shared(), t,
                                   /*min_sources_per_task=*/1};
      std::vector<graph::PathMatch> parallel =
          g.FindPaths(sources, sink, c, &limits, &par);
      ASSERT_EQ(parallel.size(), serial.size())
          << t << " threads, max_edges " << max_edges;
      for (size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(parallel[i].hops, serial[i].hops) << i;
        EXPECT_EQ(parallel[i].source, serial[i].source) << i;
        EXPECT_EQ(parallel[i].sink, serial[i].sink) << i;
      }
      EXPECT_EQ(limits.hit, serial_limits.hit);
      EXPECT_EQ(std::string(limits.reason), std::string(serial_limits.reason));
      EXPECT_EQ(limits.edges_traversed, serial_limits.edges_traversed);
      EXPECT_EQ(limits.nodes_expanded, serial_limits.nodes_expanded);
    }
  }
}

// --- Engine determinism at any thread count. ---

struct EngineFixture {
  audit::AuditLog log;
  std::unique_ptr<rel::RelationalDatabase> rel_db;
  std::unique_ptr<graph::GraphStore> graph_db;
  std::unique_ptr<engine::QueryEngine> engine;

  EngineFixture() {
    audit::WorkloadGenerator gen;
    gen.GenerateBenign(6000, &log);
    gen.InjectDataLeakageAttack(&log);
    gen.GenerateBenign(6000, &log);
    for (int i = 0; i < 4; ++i) {
      gen.InjectForkChain("/bin/bash", 3, audit::Operation::kWrite,
                          "/tmp/stolen", &log);
    }
    rel_db = std::make_unique<rel::RelationalDatabase>();
    rel_db->Load(log);
    graph_db = std::make_unique<graph::GraphStore>(log);
    engine = std::make_unique<engine::QueryEngine>(&log, rel_db.get(),
                                                   graph_db.get());
  }

  engine::QueryResult Run(const std::string& src,
                          engine::ExecutionOptions opts) {
    auto q = tbql::Parse(src);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    Status st = tbql::Analyze(&*q);
    EXPECT_TRUE(st.ok()) << st.ToString();
    auto result = engine->Execute(*q, opts);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return *std::move(result);
  }
};

/// Everything in a QueryResult that is part of the determinism contract —
/// all fields except wall-clock timings and the thread-count diagnostics.
void ExpectSameResult(const engine::QueryResult& a,
                      const engine::QueryResult& b, const std::string& label) {
  EXPECT_EQ(a.columns, b.columns) << label;
  EXPECT_EQ(a.rows, b.rows) << label;
  EXPECT_EQ(a.truncated, b.truncated) << label;
  EXPECT_EQ(a.stats.truncation_reason, b.stats.truncation_reason) << label;
  EXPECT_EQ(a.stats.schedule, b.stats.schedule) << label;
  EXPECT_EQ(a.stats.matches_per_pattern, b.stats.matches_per_pattern)
      << label;
  EXPECT_EQ(a.stats.pattern_scores, b.stats.pattern_scores) << label;
  EXPECT_EQ(a.stats.pattern_used_graph, b.stats.pattern_used_graph) << label;
  EXPECT_EQ(a.stats.pattern_was_constrained, b.stats.pattern_was_constrained)
      << label;
  EXPECT_EQ(a.stats.relational_rows_touched, b.stats.relational_rows_touched)
      << label;
  EXPECT_EQ(a.stats.graph_edges_traversed, b.stats.graph_edges_traversed)
      << label;
  // Per-operator resource statistics are committed in schedule order from
  // the serial commit loop, so they inherit the same contract.
  EXPECT_EQ(a.stats.pattern_rows_examined, b.stats.pattern_rows_examined)
      << label;
  EXPECT_EQ(a.stats.pattern_bytes_touched, b.stats.pattern_bytes_touched)
      << label;
  EXPECT_EQ(a.stats.pattern_index_probes, b.stats.pattern_index_probes)
      << label;
  EXPECT_EQ(a.stats.pattern_full_scans, b.stats.pattern_full_scans) << label;
  EXPECT_EQ(a.stats.bytes_touched, b.stats.bytes_touched) << label;
  EXPECT_EQ(a.stats.intermediate_result_bytes, b.stats.intermediate_result_bytes)
      << label;
  // Cardinality estimates are a pure function of the load-time statistics
  // (which only advance on the serial sync path), so est/actual/q-error
  // are bitwise identical at any thread count.
  EXPECT_EQ(a.stats.pattern_est_rows, b.stats.pattern_est_rows) << label;
  EXPECT_EQ(a.stats.pattern_q_error, b.stats.pattern_q_error) << label;
}

TEST(ParallelEngineTest, MultiPatternQueryIsByteIdentical) {
  EngineFixture fx;
  // e1/e2 share p; e3 is entity-disjoint, so with a pool e3 can share a
  // scheduling wave with one of them.
  // The limit keeps the combinatorial join bounded; row_cap truncation is
  // itself part of the deterministic contract (the join is serial and runs
  // over identical per-pattern matches).
  const std::string query =
      "e1: proc p read file f1[\"%/etc/%\"]\n"
      "e2: proc p write file f2\n"
      "e3: proc q send net n\n"
      "with e1 before e2\n"
      "return p, f1, f2\n"
      "limit 200";
  engine::ExecutionOptions base;
  base.num_threads = 1;
  engine::QueryResult serial = fx.Run(query, base);
  EXPECT_EQ(serial.stats.num_threads, 1u);
  for (size_t t : std::vector<size_t>{2, 8}) {
    engine::ExecutionOptions opts;
    opts.num_threads = t;
    engine::QueryResult parallel = fx.Run(query, opts);
    EXPECT_EQ(parallel.stats.num_threads, t);
    ExpectSameResult(serial, parallel,
                     "threads=" + std::to_string(t));
  }
}

TEST(ParallelEngineTest, PathQueryWithEdgeBudgetIsByteIdentical) {
  EngineFixture fx;
  const std::string query =
      "e1: proc p[\"%bash%\"] ~>(1~4)[write] file f[\"/tmp/stolen\"]\n"
      "e2: proc q read file f2[\"%/etc/%\"]\n"
      "return p, f";
  // Sweep the budget from "truncates almost immediately" to "unbounded";
  // the committed matches, effort counters, and truncation verdict must
  // agree with the serial engine at every setting.
  for (uint64_t budget : std::vector<uint64_t>{5, 200, 0}) {
    engine::ExecutionOptions base;
    base.num_threads = 1;
    base.max_graph_edges = budget;
    engine::QueryResult serial = fx.Run(query, base);
    for (size_t t : std::vector<size_t>{2, 8}) {
      engine::ExecutionOptions opts = base;
      opts.num_threads = t;
      ExpectSameResult(serial, fx.Run(query, opts),
                       "budget=" + std::to_string(budget) +
                           " threads=" + std::to_string(t));
    }
  }
}

TEST(ParallelEngineTest, FaultInjectionTripsAtTheSamePoint) {
  EngineFixture fx;
  const std::string query =
      "e1: proc p read file f1[\"%/etc/%\"]\n"
      "e2: proc q send net n\n"
      "return p";
  auto run = [&](size_t threads) -> Status {
    testing::ScriptedFaults faults;
    faults.FailAt("engine.pattern", Status::Internal("injected pattern fault"),
                  /*after=*/1, /*times=*/1);
    auto q = tbql::Parse(query);
    EXPECT_TRUE(q.ok());
    EXPECT_TRUE(tbql::Analyze(&*q).ok());
    engine::ExecutionOptions opts;
    opts.num_threads = threads;
    return fx.engine->Execute(*q, opts).status();
  };
  Status serial = run(1);
  EXPECT_FALSE(serial.ok());
  for (size_t t : std::vector<size_t>{2, 8}) {
    EXPECT_EQ(run(t).ToString(), serial.ToString()) << t << " threads";
  }
}

TEST(ParallelEngineTest, ExplainEstimateLinesAreByteIdenticalAcrossThreads) {
  // The explain text mixes wall-clock timings (not deterministic) with the
  // est_rows/actual_rows/q_error lines fed by the cardinality estimator
  // (deterministic: estimates read load-time statistics that are frozen
  // during execution). Extract just the estimate lines and require them
  // byte-identical at 1/2/8 threads.
  EngineFixture fx;
  const std::string query =
      "e1: proc p read file f1[\"%/etc/%\"]\n"
      "e2: proc p write file f2\n"
      "e3: proc q send net n\n"
      "return p, f1, f2\n"
      "limit 200";
  auto est_lines = [&](size_t threads) {
    auto q = tbql::Parse(query);
    EXPECT_TRUE(q.ok());
    EXPECT_TRUE(tbql::Analyze(&*q).ok());
    engine::ExecutionOptions opts;
    opts.num_threads = threads;
    auto r = fx.engine->Execute(*q, opts);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    std::string text = engine::ExplainAnalyze(*q, *r);
    std::string lines;
    size_t pos = 0;
    while ((pos = text.find("est_rows=", pos)) != std::string::npos) {
      size_t eol = text.find('\n', pos);
      lines += text.substr(pos, eol - pos);
      lines += '\n';
      pos = eol;
    }
    EXPECT_FALSE(lines.empty()) << "explain carried no estimate lines";
    return lines;
  };
  const std::string serial = est_lines(1);
  for (size_t t : std::vector<size_t>{2, 8}) {
    EXPECT_EQ(est_lines(t), serial) << t << " threads";
  }
}

TEST(ParallelEngineTest, SharedScansAndCachedPlansAreByteIdentical) {
  // The columnar additions to the determinism contract: (a) batch
  // execution, where filterless patterns share one segment scan, and (b)
  // plan-cache reuse, where a plan built at one thread count serves
  // executions at another (thread count is deliberately not in the cache
  // key). Rows, matches, and the per-pattern segment counters must be
  // byte-identical at 1/2/8 threads, batch and solo, cold and cached.
  EngineFixture fx;
  std::vector<std::string> sources = {
      "proc p read file f1\nreturn p, f1\nlimit 500",
      "proc p write file f2\nreturn p, f2\nlimit 500",
      "e1: proc p read file f1[\"%/etc/%\"]\n"
      "e2: proc p write file f2\n"
      "with e1 before e2\nreturn p, f1, f2\nlimit 200",
  };
  std::vector<tbql::Query> parsed;
  for (const std::string& src : sources) {
    auto q = tbql::Parse(src);
    ASSERT_TRUE(q.ok());
    ASSERT_TRUE(tbql::Analyze(&*q).ok());
    parsed.push_back(std::move(*q));
  }
  auto append_result = [](const engine::QueryResult& r, std::string* out) {
    for (const auto& row : r.rows) {
      for (const std::string& cell : row) {
        *out += cell;
        *out += ',';
      }
      *out += ';';
    }
    for (size_t m : r.stats.matches_per_pattern) {
      *out += std::to_string(m) + '+';
    }
    for (uint64_t s : r.stats.pattern_segments_scanned) {
      *out += std::to_string(s) + '/';
    }
    for (uint64_t s : r.stats.pattern_segments_pruned) {
      *out += std::to_string(s) + '\\';
    }
    *out += '\n';
  };
  auto transcript = [&](size_t threads) {
    engine::ExecutionOptions opts;
    opts.num_threads = threads;
    std::string out;
    std::vector<const tbql::Query*> refs;
    for (const tbql::Query& q : parsed) refs.push_back(&q);
    for (Result<engine::QueryResult>& r :
         fx.engine->ExecuteBatch(refs, opts)) {
      EXPECT_TRUE(r.ok()) << r.status().ToString();
      append_result(*r, &out);
    }
    for (const tbql::Query& q : parsed) {
      auto r = fx.engine->Execute(q, opts);
      EXPECT_TRUE(r.ok()) << r.status().ToString();
      append_result(*r, &out);
    }
    return out;
  };
  const std::string serial = transcript(1);
  EXPECT_FALSE(serial.empty());
  // From the second run on, every plan comes from the cache.
  EXPECT_GT(fx.engine->plan_cache().size(), 0u);
  for (size_t t : std::vector<size_t>{2, 8}) {
    EXPECT_EQ(transcript(t), serial) << t << " threads";
  }
  EXPECT_GT(fx.engine->plan_cache().hits(), 0u);
}

TEST(ParallelEngineTest, DeadlineTruncationIsReportedAtEveryThreadCount) {
  // Deadline truncation depends on the wall clock, so the exact cut point
  // is not part of the byte-identical contract; what must hold at every
  // thread count is that an expired deadline truncates (never errors, never
  // returns unbounded work) and reports the deadline reason.
  EngineFixture fx;
  const std::string query =
      "e1: proc p read file f1\n"
      "e2: proc q send net n\n"
      "return p";
  for (size_t t : std::vector<size_t>{1, 2, 8}) {
    testing::ScriptedFaults faults;
    faults.DelayAt("engine.pattern", std::chrono::milliseconds(80));
    engine::ExecutionOptions opts;
    opts.num_threads = t;
    opts.deadline_ms = 20;
    engine::QueryResult r = fx.Run(query, opts);
    EXPECT_TRUE(r.truncated) << t << " threads";
    EXPECT_NE(r.stats.truncation_reason.find("deadline"), std::string::npos)
        << t << " threads: " << r.stats.truncation_reason;
  }
}

TEST(ParallelEngineTest, ProfileMergesPoolWorkerSpansOnce) {
  // ?profile=1 + ?threads=N: AggregateProfile merges spans by path, so each
  // stage path — including the pool workers' "pool-task" spans — must
  // appear exactly once in the merged profile at every thread count (the
  // repeat count lives in StageStat::count, not in duplicate rows).
  EngineFixture fx;
  const std::string query =
      "e1: proc p read file f1\n"
      "e2: proc q write file f2\n"
      "return p\n"
      "limit 50";
  for (size_t t : std::vector<size_t>{1, 2, 8}) {
    engine::ExecutionOptions opts;
    opts.num_threads = t;
    opts.collect_profile = true;
    engine::QueryResult r = fx.Run(query, opts);
    ASSERT_FALSE(r.profile.empty()) << t << " threads";
    std::set<std::string> seen;
    size_t pool_spans = 0;
    for (const obs::StageStat& stage : r.profile.stages) {
      EXPECT_TRUE(seen.insert(stage.stage).second)
          << "duplicate stage path '" << stage.stage << "' at " << t
          << " threads";
      if (stage.stage.find("pool-task") != std::string::npos) {
        pool_spans += 1;
        EXPECT_GE(stage.count, 1u) << stage.stage;
      }
    }
    if (t == 1) {
      // Serial execution never enters the pool.
      EXPECT_EQ(pool_spans, 0u) << "threads=1 must not use pool workers";
    }
  }
}

// --- End-to-end hunts through the facade. ---

TEST(ParallelHuntTest, HuntResultsAreByteIdenticalAcrossThreadCounts) {
  auto build = [] {
    auto system = std::make_unique<ThreatRaptor>();
    audit::WorkloadGenerator gen;
    gen.GenerateBenign(4000, system->mutable_log());
    gen.InjectDataLeakageAttack(system->mutable_log());
    gen.GenerateBenign(4000, system->mutable_log());
    EXPECT_TRUE(system->FinalizeStorage().ok());
    return system;
  };
  auto system = build();
  audit::WorkloadGenerator gen;  // deterministic: same attack text
  audit::AuditLog scratch;
  std::string report = gen.InjectDataLeakageAttack(&scratch).report_text;

  HuntOptions serial_opts;
  serial_opts.num_threads = 1;
  auto serial = system->Hunt(report, serial_opts);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  ASSERT_FALSE(serial->result.rows.empty());
  for (size_t t : std::vector<size_t>{2, 8}) {
    HuntOptions opts;
    opts.num_threads = t;
    auto parallel = system->Hunt(report, opts);
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    EXPECT_EQ(parallel->query_text, serial->query_text) << t;
    ExpectSameResult(serial->result, parallel->result,
                     "hunt threads=" + std::to_string(t));
  }
}

TEST(ParallelHuntTest, ProfilerEnabledHuntsAreByteIdenticalAcrossThreads) {
  // The sampling profiler is an observer: with it running at a high rate —
  // span stacks published from the hunt thread and every pool worker, the
  // sampler reading them concurrently — hunt results must stay
  // byte-identical to the serial, profiler-off baseline at every thread
  // count.
  ThreatRaptorOptions options;
  options.profiler.enabled = true;
  options.profiler.hz = 500;
  options.hunt.collect_profile = true;  // spans exist even with no server
  ThreatRaptor system(options);
  audit::WorkloadGenerator gen;
  gen.GenerateBenign(4000, system.mutable_log());
  gen.InjectDataLeakageAttack(system.mutable_log());
  gen.GenerateBenign(4000, system.mutable_log());
  ASSERT_TRUE(system.FinalizeStorage().ok());
  audit::AuditLog scratch;
  audit::WorkloadGenerator gen2;
  std::string report = gen2.InjectDataLeakageAttack(&scratch).report_text;

  obs::ProfiledThread profiled("hunt-test");
  ASSERT_TRUE(obs::Profiler::Default().running());
  HuntOptions serial_opts;
  serial_opts.num_threads = 1;
  auto serial = system.Hunt(report, serial_opts);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  ASSERT_FALSE(serial->result.rows.empty());
  for (size_t t : std::vector<size_t>{2, 8}) {
    HuntOptions opts;
    opts.num_threads = t;
    auto parallel = system.Hunt(report, opts);
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    ExpectSameResult(serial->result, parallel->result,
                     "profiled hunt threads=" + std::to_string(t));
  }
  // The profiler observed the hunts it rode along with.
  obs::ProfileSnapshot snapshot = obs::Profiler::Default().Snapshot();
  EXPECT_GT(snapshot.total_samples, 0u);
  obs::Profiler::Default().Configure({});  // leave the profiler off
}

TEST(ParallelHuntTest, DegradedHuntIsByteIdenticalAcrossThreadCounts) {
  ThreatRaptor system;
  audit::WorkloadGenerator gen;
  gen.GenerateBenign(3000, system.mutable_log());
  gen.InjectDataLeakageAttack(system.mutable_log());
  ASSERT_TRUE(system.FinalizeStorage().ok());
  audit::AuditLog scratch;
  audit::WorkloadGenerator gen2;
  std::string report = gen2.InjectDataLeakageAttack(&scratch).report_text;

  auto run = [&](size_t threads) {
    // Fail the full behavior query once; the degraded per-pattern
    // sub-queries (which also honor num_threads) take over.
    testing::ScriptedFaults faults;
    faults.FailAt("engine.execute", Status::Internal("injected engine fault"),
                  /*after=*/0, /*times=*/1);
    HuntOptions opts;
    opts.allow_degraded = true;
    opts.num_threads = threads;
    return system.Hunt(report, opts);
  };
  auto serial = run(1);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  ASSERT_TRUE(serial->degradation.degraded);
  for (size_t t : std::vector<size_t>{2, 8}) {
    auto parallel = run(t);
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    EXPECT_TRUE(parallel->degradation.degraded) << t;
    EXPECT_EQ(parallel->result.rows, serial->result.rows) << t;
    EXPECT_EQ(parallel->result.columns, serial->result.columns) << t;
    EXPECT_EQ(parallel->degradation.subqueries_attempted,
              serial->degradation.subqueries_attempted)
        << t;
    EXPECT_EQ(parallel->degradation.subqueries_succeeded,
              serial->degradation.subqueries_succeeded)
        << t;
  }
}

// --- Parallel ingestion: parser. ---

TEST(ParallelIngestTest, ParserMatchesSerialByteForByte) {
  // Build a >=64 KiB corpus (the parallel gate) from a generated log, with
  // comments, blank lines, and malformed records sprinkled in.
  audit::AuditLog src;
  audit::WorkloadGenerator gen;
  gen.GenerateBenign(4000, &src);
  std::string text;
  size_t line_no = 0;
  for (const audit::SystemEvent& ev : src.events()) {
    text += audit::LogParser::FormatEvent(src, ev);
    text += '\n';
    ++line_no;
    if (line_no % 97 == 0) text += "# comment line\n\n";
    if (line_no % 211 == 0) {
      text += "ts=notanumber pid=1 exe=/x op=read obj=file path=/y\n";
    }
  }
  ASSERT_GE(text.size(), 64u * 1024);

  audit::ParseOptions serial_opts;
  serial_opts.error_budget = 100;
  serial_opts.max_error_samples = 3;
  serial_opts.num_threads = 1;
  audit::AuditLog serial_log;
  auto serial = audit::LogParser::ParseText(text, &serial_log, serial_opts);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  ASSERT_GT(serial->skipped, 0u);

  for (size_t t : std::vector<size_t>{2, 4, 8}) {
    audit::ParseOptions opts = serial_opts;
    opts.num_threads = t;
    audit::AuditLog log;
    auto stats = audit::LogParser::ParseText(text, &log, opts);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_EQ(stats->lines, serial->lines) << t;
    EXPECT_EQ(stats->events, serial->events) << t;
    EXPECT_EQ(stats->skipped, serial->skipped) << t;
    EXPECT_EQ(stats->error_samples, serial->error_samples) << t;
    // Interned entity ids and event records are byte-identical: parallel
    // chunks commit in input order against the real log.
    ASSERT_EQ(log.entity_count(), serial_log.entity_count()) << t;
    ASSERT_EQ(log.event_count(), serial_log.event_count()) << t;
    for (size_t i = 0; i < log.entity_count(); ++i) {
      ASSERT_EQ(log.entities()[i].Key(), serial_log.entities()[i].Key())
          << t << " threads, entity " << i;
    }
    for (size_t i = 0; i < log.event_count(); ++i) {
      const audit::SystemEvent& a = log.events()[i];
      const audit::SystemEvent& b = serial_log.events()[i];
      ASSERT_EQ(a.subject, b.subject) << i;
      ASSERT_EQ(a.object, b.object) << i;
      ASSERT_EQ(a.op, b.op) << i;
      ASSERT_EQ(a.start_time, b.start_time) << i;
      ASSERT_EQ(a.end_time, b.end_time) << i;
      ASSERT_EQ(a.bytes, b.bytes) << i;
    }
  }
}

TEST(ParallelIngestTest, ParserBudgetFailureMatchesSerial) {
  audit::AuditLog src;
  audit::WorkloadGenerator gen;
  gen.GenerateBenign(3000, &src);
  std::string text;
  size_t line_no = 0;
  for (const audit::SystemEvent& ev : src.events()) {
    text += audit::LogParser::FormatEvent(src, ev);
    text += '\n';
    if (++line_no % 200 == 0) text += "op=read this line is broken\n";
  }
  ASSERT_GE(text.size(), 64u * 1024);

  audit::ParseOptions serial_opts;
  serial_opts.error_budget = 3;  // exceeded partway through the corpus
  serial_opts.num_threads = 1;
  audit::AuditLog serial_log;
  auto serial = audit::LogParser::ParseText(text, &serial_log, serial_opts);
  ASSERT_FALSE(serial.ok());

  for (size_t t : std::vector<size_t>{2, 8}) {
    audit::ParseOptions opts = serial_opts;
    opts.num_threads = t;
    audit::AuditLog log;
    auto stats = audit::LogParser::ParseText(text, &log, opts);
    ASSERT_FALSE(stats.ok()) << t;
    // Identical failure, and identical prefix already committed.
    EXPECT_EQ(stats.status().ToString(), serial.status().ToString()) << t;
    EXPECT_EQ(log.event_count(), serial_log.event_count()) << t;
    EXPECT_EQ(log.entity_count(), serial_log.entity_count()) << t;
  }
}

// --- Parallel ingestion: CPR's stable sort. ---

TEST(ParallelIngestTest, CprMatchesSerialOnTieHeavyData) {
  // 40k events (over the 32k parallel-sort gate) with heavy start-time ties
  // so stable-sort order is load-bearing.
  auto build = [](audit::AuditLog* log) {
    audit::EntityId proc = log->InternProcess(1, "/bin/worker");
    std::vector<audit::EntityId> files = {log->InternFile("/data/a"),
                                          log->InternFile("/data/b")};
    for (size_t i = 0; i < 40000; ++i) {
      audit::SystemEvent ev;
      ev.subject = proc;
      // Runs of 8 per (subject, object) key, 16-way start-time ties: each
      // tie straddles a key switch, so what CPR folds together depends on
      // the stable order within the tie, and distinct `bytes` values make
      // the fold composition visible in the merged records.
      ev.object = files[(i / 8) % 2];
      ev.op = audit::Operation::kRead;
      ev.start_time = static_cast<audit::Timestamp>((i / 16) * 1000);
      ev.end_time = ev.start_time + 10;
      ev.bytes = i;
      log->AddEvent(ev);
    }
  };
  audit::AuditLog serial_log, parallel_log;
  build(&serial_log);
  build(&parallel_log);

  audit::CprOptions serial_opts;
  serial_opts.num_threads = 1;
  std::vector<audit::EventId> serial_map;
  audit::CprStats serial_stats =
      audit::ReduceLog(&serial_log, serial_opts, &serial_map);
  ASSERT_LT(serial_stats.events_after, serial_stats.events_before);

  audit::CprOptions opts;
  opts.num_threads = 8;
  std::vector<audit::EventId> parallel_map;
  audit::CprStats stats = audit::ReduceLog(&parallel_log, opts, &parallel_map);

  EXPECT_EQ(stats.events_before, serial_stats.events_before);
  EXPECT_EQ(stats.events_after, serial_stats.events_after);
  EXPECT_EQ(parallel_map, serial_map);
  ASSERT_EQ(parallel_log.event_count(), serial_log.event_count());
  for (size_t i = 0; i < serial_log.event_count(); ++i) {
    const audit::SystemEvent& a = parallel_log.events()[i];
    const audit::SystemEvent& b = serial_log.events()[i];
    ASSERT_EQ(a.subject, b.subject) << i;
    ASSERT_EQ(a.object, b.object) << i;
    ASSERT_EQ(a.op, b.op) << i;
    ASSERT_EQ(a.start_time, b.start_time) << i;
    ASSERT_EQ(a.end_time, b.end_time) << i;
    ASSERT_EQ(a.bytes, b.bytes) << i;
    ASSERT_EQ(a.merged_count, b.merged_count) << i;
  }
}

}  // namespace
}  // namespace raptor
