// Tests for the TBQL language front end: lexer, parser, analyzer, printer.

#include <gtest/gtest.h>

#include "tbql/analyzer.h"
#include "tbql/lexer.h"
#include "tbql/parser.h"
#include "tbql/printer.h"

namespace raptor::tbql {
namespace {

// --- Lexer. ---

TEST(LexerTest, TokenKinds) {
  auto tokens = Lex(R"(evt1: proc p1["%tar%"] ~>(2~4)[read] file f1 ; -> != <= >= || && 42)");
  ASSERT_TRUE(tokens.ok());
  std::vector<TokenKind> kinds;
  for (const auto& t : *tokens) kinds.push_back(t.kind);
  EXPECT_EQ(kinds,
            (std::vector<TokenKind>{
                TokenKind::kIdent, TokenKind::kColon, TokenKind::kIdent,
                TokenKind::kIdent, TokenKind::kLBracket, TokenKind::kString,
                TokenKind::kRBracket, TokenKind::kPathArrow,
                TokenKind::kLParen, TokenKind::kInt, TokenKind::kTilde,
                TokenKind::kInt, TokenKind::kRParen, TokenKind::kLBracket,
                TokenKind::kIdent, TokenKind::kRBracket, TokenKind::kIdent,
                TokenKind::kIdent, TokenKind::kSemicolon, TokenKind::kArrow,
                TokenKind::kNe, TokenKind::kLe, TokenKind::kGe,
                TokenKind::kOrOr, TokenKind::kAndAnd, TokenKind::kInt,
                TokenKind::kEof}));
}

TEST(LexerTest, StringsAndEscapes) {
  auto tokens = Lex(R"("a b" 'c d' "e\"f")");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "a b");
  EXPECT_EQ((*tokens)[1].text, "c d");
  EXPECT_EQ((*tokens)[2].text, "e\"f");
}

TEST(LexerTest, CommentsSkipped) {
  auto tokens = Lex("proc // comment\n# another\np1");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 3u);  // proc, p1, EOF
}

TEST(LexerTest, UnterminatedString) {
  auto tokens = Lex("\"oops");
  ASSERT_FALSE(tokens.ok());
  EXPECT_TRUE(tokens.status().IsParseError());
}

TEST(LexerTest, LineColumnTracking) {
  auto tokens = Lex("a\n  b");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].line, 1u);
  EXPECT_EQ((*tokens)[1].line, 2u);
  EXPECT_EQ((*tokens)[1].column, 3u);
}

TEST(LexerTest, UnexpectedCharacter) {
  auto tokens = Lex("proc @");
  ASSERT_FALSE(tokens.ok());
  EXPECT_NE(tokens.status().message().find("'@'"), std::string::npos);
}

// --- Parser. ---

Query MustParse(const std::string& src) {
  auto q = Parse(src);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return *std::move(q);
}

TEST(ParserTest, FigureTwoStyleQuery) {
  Query q = MustParse(R"(
    evt1: proc p1["%/bin/tar%"] read file f1[name = "/etc/passwd"]
    evt2: proc p1 write file f2["/tmp/data.tar"]
    with evt1 before evt2
    return p1, f1.name, f2
  )");
  ASSERT_EQ(q.patterns.size(), 2u);
  EXPECT_EQ(q.patterns[0].id, "evt1");
  EXPECT_EQ(q.patterns[0].subject.id, "p1");
  EXPECT_EQ(q.patterns[0].subject.type, audit::EntityType::kProcess);
  ASSERT_EQ(q.patterns[0].subject.filters.size(), 1u);
  EXPECT_TRUE(q.patterns[0].subject.filters[0].attr.empty());  // sugar
  EXPECT_EQ(q.patterns[0].op.names, std::vector<std::string>{"read"});
  ASSERT_EQ(q.temporal.size(), 1u);
  EXPECT_EQ(q.temporal[0].first, "evt1");
  EXPECT_EQ(q.temporal[0].second, "evt2");
  ASSERT_EQ(q.returns.size(), 3u);
  EXPECT_EQ(q.returns[1].attr, "name");
  EXPECT_TRUE(q.returns[0].attr.empty());  // default sugar
}

TEST(ParserTest, AutoNamedPatterns) {
  Query q = MustParse("proc p read file f\nproc p write file g");
  EXPECT_EQ(q.patterns[0].id, "evt1");
  EXPECT_EQ(q.patterns[1].id, "evt2");
}

TEST(ParserTest, PathPatternWithBounds) {
  Query q = MustParse("proc p ~>(2~4)[read] file f[\"/etc/shadow\"]");
  ASSERT_EQ(q.patterns.size(), 1u);
  EXPECT_TRUE(q.patterns[0].is_path);
  EXPECT_EQ(q.patterns[0].min_hops, 2u);
  EXPECT_EQ(q.patterns[0].max_hops, 4u);
}

TEST(ParserTest, PathPatternDefaultBounds) {
  Query q = MustParse("proc p ~>[read] file f");
  EXPECT_TRUE(q.patterns[0].is_path);
  EXPECT_EQ(q.patterns[0].min_hops, 1u);
  EXPECT_GE(q.patterns[0].max_hops, q.patterns[0].min_hops);
}

TEST(ParserTest, OperationDisjunction) {
  Query q = MustParse("proc p read || write file f");
  EXPECT_EQ(q.patterns[0].op.names,
            (std::vector<std::string>{"read", "write"}));
  Query q2 = MustParse("proc p read or write file f");
  EXPECT_EQ(q2.patterns[0].op.names, q.patterns[0].op.names);
}

TEST(ParserTest, TimeWindow) {
  Query q = MustParse("proc p read file f from 100 to 200");
  ASSERT_TRUE(q.patterns[0].window_start.has_value());
  EXPECT_EQ(*q.patterns[0].window_start, 100);
  EXPECT_EQ(*q.patterns[0].window_end, 200);
}

TEST(ParserTest, AfterAndArrowTemporalForms) {
  Query q = MustParse(
      "e1: proc p read file f\ne2: proc p write file g\n"
      "with e2 after e1, e1 -> e2");
  ASSERT_EQ(q.temporal.size(), 2u);
  EXPECT_EQ(q.temporal[0].first, "e1");
  EXPECT_EQ(q.temporal[0].second, "e2");
  EXPECT_EQ(q.temporal[1].first, "e1");
}

TEST(ParserTest, MultipleFiltersAndComparators) {
  Query q = MustParse(
      R"(proc p[exename = "%x%", pid > 100] read file f[name != "/y"])");
  ASSERT_EQ(q.patterns[0].subject.filters.size(), 2u);
  EXPECT_EQ(q.patterns[0].subject.filters[1].op, rel::CompareOp::kGt);
  EXPECT_EQ(q.patterns[0].subject.filters[1].int_value, 100);
  EXPECT_EQ(q.patterns[0].object.filters[0].op, rel::CompareOp::kNe);
}

struct BadQuery {
  const char* src;
  const char* what;
};

class ParserErrorTest : public ::testing::TestWithParam<BadQuery> {};

TEST_P(ParserErrorTest, Rejects) {
  auto q = Parse(GetParam().src);
  EXPECT_FALSE(q.ok()) << GetParam().what;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ParserErrorTest,
    ::testing::Values(
        BadQuery{"", "empty"},
        BadQuery{"return p1", "no patterns"},
        BadQuery{"proc p read file", "missing object id"},
        BadQuery{"widget w read file f", "bad entity type"},
        BadQuery{"proc p read file f with", "truncated with"},
        BadQuery{"proc p read file f with e1 around e2", "bad temporal op"},
        BadQuery{"proc p ~>(4~2 [read] file f", "unclosed bounds"},
        BadQuery{"proc p[name ~ \"x\"] read file f", "bad comparator"},
        BadQuery{"proc p read file f return p extra", "trailing garbage"}));

// --- Analyzer. ---

Status AnalyzeSrc(const std::string& src, Query* out = nullptr) {
  auto q = Parse(src);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  Status st = Analyze(&*q);
  if (out != nullptr) *out = *std::move(q);
  return st;
}

TEST(AnalyzerTest, DefaultAttributeSugar) {
  Query q;
  ASSERT_TRUE(AnalyzeSrc(
                  R"(proc p["%/bin/tar%"] read file f["/etc/passwd"]
                     return p, f)",
                  &q)
                  .ok());
  EXPECT_EQ(q.patterns[0].subject.filters[0].attr, "exename");
  EXPECT_EQ(q.patterns[0].object.filters[0].attr, "name");
  EXPECT_EQ(q.returns[0].attr, "exename");
  EXPECT_EQ(q.returns[1].attr, "name");
}

TEST(AnalyzerTest, PercentBecomesLike) {
  Query q;
  ASSERT_TRUE(AnalyzeSrc(R"(proc p["%tar%"] read file f["/exact"])", &q).ok());
  EXPECT_EQ(q.patterns[0].subject.filters[0].op, rel::CompareOp::kLike);
  EXPECT_EQ(q.patterns[0].object.filters[0].op, rel::CompareOp::kEq);
}

TEST(AnalyzerTest, SharedEntityFiltersPropagate) {
  Query q;
  ASSERT_TRUE(AnalyzeSrc(
                  R"(evt1: proc p1["%tar%"] read file f1
                     evt2: proc p1 write file f2)",
                  &q)
                  .ok());
  // evt2's p1 inherits the filter declared in evt1.
  ASSERT_EQ(q.patterns[1].subject.filters.size(), 1u);
  EXPECT_EQ(q.patterns[1].subject.filters[0].string_value, "%tar%");
}

TEST(AnalyzerTest, EmptyReturnDefaultsToAllEntities) {
  Query q;
  ASSERT_TRUE(AnalyzeSrc("proc p read file f", &q).ok());
  ASSERT_EQ(q.returns.size(), 2u);
}

TEST(AnalyzerTest, OperationsResolved) {
  Query q;
  ASSERT_TRUE(AnalyzeSrc("proc p read || write file f", &q).ok());
  EXPECT_EQ(q.patterns[0].op.ops,
            (std::vector<audit::Operation>{audit::Operation::kRead,
                                           audit::Operation::kWrite}));
}

struct BadSemantics {
  const char* src;
  const char* what;
};

class AnalyzerErrorTest : public ::testing::TestWithParam<BadSemantics> {};

TEST_P(AnalyzerErrorTest, Rejects) {
  auto q = Parse(GetParam().src);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_FALSE(Analyze(&*q).ok()) << GetParam().what;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, AnalyzerErrorTest,
    ::testing::Values(
        BadSemantics{"e1: proc p read file f\ne1: proc p write file g",
                     "duplicate pattern id"},
        BadSemantics{"file f read file g", "subject must be process"},
        BadSemantics{"proc p read net n", "op/object type mismatch"},
        BadSemantics{"proc p frobnicate file f", "unknown operation"},
        BadSemantics{"proc p read proc q", "read needs file object"},
        BadSemantics{"proc p ~>(3~2)[read] file f", "min > max"},
        BadSemantics{"proc p ~>(1~99)[read] file f", "bound too large"},
        BadSemantics{"proc p read file f from 200 to 100", "window reversed"},
        BadSemantics{"proc p[srcip = \"1.2.3.4\"] read file f",
                     "attr not valid for type"},
        BadSemantics{"proc p read file f\nwith e1 before e9",
                     "unknown pattern in with"},
        BadSemantics{"e1: proc p read file f\nwith e1 before e1",
                     "self temporal"},
        BadSemantics{"e1: proc p read file f\ne2: proc p write file g\n"
                     "with e1 before e2, e2 before e1",
                     "temporal cycle"},
        BadSemantics{"proc p read file f return zz", "unknown return entity"},
        BadSemantics{"proc p read file f return f.pid",
                     "attr invalid for entity"},
        BadSemantics{"e1: proc x read file f\ne2: file x read file g",
                     "entity type conflict"}));

// --- Printer round trip. ---

class PrinterRoundTripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(PrinterRoundTripTest, PrintParseAnalyzeFixpoint) {
  auto q1 = Parse(GetParam());
  ASSERT_TRUE(q1.ok()) << q1.status().ToString();
  ASSERT_TRUE(Analyze(&*q1).ok());
  std::string printed1 = Print(*q1);

  auto q2 = Parse(printed1);
  ASSERT_TRUE(q2.ok()) << printed1 << "\n" << q2.status().ToString();
  ASSERT_TRUE(Analyze(&*q2).ok());
  EXPECT_EQ(Print(*q2), printed1);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, PrinterRoundTripTest,
    ::testing::Values(
        "proc p1[\"%/bin/tar%\"] read file f1[\"/etc/passwd\"]",
        "evt1: proc p read || write file f from 5 to 10\n"
        "evt2: proc p send net n[dstip = \"1.2.3.4\"]\n"
        "with evt1 before evt2\nreturn p.pid, n.dstport",
        "proc p ~>(2~4)[read] file f",
        "proc p[pid > 100] fork proc q\nreturn q",
        "e: proc p[exename != \"%sshd%\"] delete file f"));

TEST(PrinterTest, RendersWithAndReturn) {
  Query q;
  ASSERT_TRUE(AnalyzeSrc(
                  "e1: proc p read file f\ne2: proc p write file f\n"
                  "with e1 before e2\nreturn p, f",
                  &q)
                  .ok());
  std::string out = Print(q);
  EXPECT_NE(out.find("with e1 before e2"), std::string::npos);
  EXPECT_NE(out.find("return p.exename, f.name"), std::string::npos);
}


TEST(ParserTest, ReturnCountAndLimit) {
  Query q = MustParse("proc p read file f\nreturn count\nlimit 10");
  EXPECT_TRUE(q.return_count);
  EXPECT_TRUE(q.returns.empty());
  ASSERT_TRUE(q.limit.has_value());
  EXPECT_EQ(*q.limit, 10u);
  EXPECT_TRUE(Analyze(&q).ok());
}

TEST(ParserTest, LimitWithoutReturn) {
  Query q = MustParse("proc p read file f\nlimit 3");
  ASSERT_TRUE(q.limit.has_value());
  EXPECT_EQ(*q.limit, 3u);
}

TEST(ParserTest, LimitMustBePositive) {
  EXPECT_FALSE(Parse("proc p read file f\nlimit 0").ok());
}

TEST(AnalyzerTest, CountCannotMixWithItems) {
  // 'count' consumes the return clause; a following item is a parse error
  // (trailing content), and the analyzer also rejects a hand-built mix.
  EXPECT_FALSE(Parse("proc p read file f\nreturn count, p").ok());
  Query q = MustParse("proc p read file f\nreturn p");
  q.return_count = true;
  EXPECT_TRUE(Analyze(&q).IsInvalidArgument());
}

TEST(PrinterTest, CountAndLimitRoundTrip) {
  Query q = MustParse("proc p read file f\nreturn count\nlimit 5");
  ASSERT_TRUE(Analyze(&q).ok());
  std::string printed = Print(q);
  EXPECT_NE(printed.find("return count"), std::string::npos);
  EXPECT_NE(printed.find("limit 5"), std::string::npos);
  auto q2 = Parse(printed);
  ASSERT_TRUE(q2.ok());
  ASSERT_TRUE(Analyze(&*q2).ok());
  EXPECT_EQ(Print(*q2), printed);
}

}  // namespace
}  // namespace raptor::tbql
