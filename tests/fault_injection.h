// Scripted fault injection for resilience tests.
//
// ScriptedFaults installs itself as the process-wide FaultInjector for its
// lifetime (RAII) and fails or delays configured fault points. Hit counting
// lets a script fail only the Nth..(N+k)th hits of a point — e.g. "the full
// behavior query fails, the degraded sub-queries succeed".
//
// The registered point names live in src/common/fault_injection.h.

#pragma once

#include <chrono>
#include <map>
#include <mutex>
#include <string>
#include <thread>

#include "common/fault_injection.h"

namespace raptor::testing {

class ScriptedFaults : public FaultInjector {
 public:
  ScriptedFaults() { SetFaultInjector(this); }
  ~ScriptedFaults() override { SetFaultInjector(nullptr); }

  ScriptedFaults(const ScriptedFaults&) = delete;
  ScriptedFaults& operator=(const ScriptedFaults&) = delete;

  /// Fails hits of `point` with `status`, starting after `after` clean
  /// hits, for `times` hits (-1 = forever). Hits are counted per point.
  ScriptedFaults& FailAt(std::string point, Status status, int after = 0,
                         int times = -1) {
    std::lock_guard<std::mutex> lock(mu_);
    Script& s = scripts_[std::move(point)];
    s.status = std::move(status);
    s.after = after;
    s.times = times;
    return *this;
  }

  /// Sleeps `delay` on every hit of `point` (latency injection).
  ScriptedFaults& DelayAt(std::string point,
                          std::chrono::milliseconds delay) {
    std::lock_guard<std::mutex> lock(mu_);
    scripts_[std::move(point)].delay = delay;
    return *this;
  }

  /// How many times `point` was hit so far.
  int hits(const std::string& point) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = hits_.find(point);
    return it == hits_.end() ? 0 : it->second;
  }

  Status OnPoint(std::string_view point) override {
    std::chrono::milliseconds delay{0};
    Status result = Status::OK();
    {
      std::lock_guard<std::mutex> lock(mu_);
      std::string key(point);
      int hit = hits_[key]++;  // 0-based index of this hit
      auto it = scripts_.find(key);
      if (it != scripts_.end()) {
        const Script& s = it->second;
        delay = s.delay;
        bool in_window = hit >= s.after &&
                         (s.times < 0 || hit < s.after + s.times);
        if (!s.status.ok() && in_window) result = s.status;
      }
    }
    if (delay.count() > 0) std::this_thread::sleep_for(delay);
    return result;
  }

 private:
  struct Script {
    Status status;  ///< OK = delay-only script.
    int after = 0;
    int times = -1;
    std::chrono::milliseconds delay{0};
  };

  mutable std::mutex mu_;
  std::map<std::string, Script> scripts_;
  mutable std::map<std::string, int> hits_;
};

}  // namespace raptor::testing
