// Tests for the TBQL query execution engine (src/engine).

#include <gtest/gtest.h>

#include <memory>

#include "audit/generator.h"
#include "common/strings.h"
#include "engine/engine.h"
#include "engine/explain.h"
#include "engine/translate.h"
#include "obs/metrics.h"
#include "storage/relational/database.h"
#include "tbql/analyzer.h"
#include "tbql/parser.h"

namespace raptor::engine {
namespace {

using audit::AuditLog;
using audit::EntityId;
using audit::Operation;
using audit::SystemEvent;

/// Harness owning a log and both backends.
struct Fixture {
  AuditLog log;
  std::unique_ptr<rel::RelationalDatabase> rel_db;
  std::unique_ptr<graph::GraphStore> graph_db;
  std::unique_ptr<QueryEngine> engine;

  void Finish() {
    rel_db = std::make_unique<rel::RelationalDatabase>();
    rel_db->Load(log);
    graph_db = std::make_unique<graph::GraphStore>(log);
    engine = std::make_unique<QueryEngine>(&log, rel_db.get(), graph_db.get());
  }

  QueryResult Run(const std::string& src, ExecutionOptions opts = {}) {
    auto q = tbql::Parse(src);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    Status st = tbql::Analyze(&*q);
    EXPECT_TRUE(st.ok()) << st.ToString();
    auto result = engine->Execute(*q, opts);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return *std::move(result);
  }
};

/// Small hand-built trace:
///   t=10  tar(1)  read  /etc/passwd
///   t=20  tar(1)  write /tmp/out
///   t=30  cat(2)  read  /etc/passwd
///   t=40  bash(3) fork  tar(1)       (out of order on purpose? no: t=5)
///   t=50  curl(4) send  -> 9.9.9.9:443
Fixture MakeSmallFixture() {
  Fixture fx;
  EntityId tar = fx.log.InternProcess(1, "/bin/tar");
  EntityId cat = fx.log.InternProcess(2, "/bin/cat");
  EntityId bash = fx.log.InternProcess(3, "/bin/bash");
  EntityId curl = fx.log.InternProcess(4, "/usr/bin/curl");
  EntityId passwd = fx.log.InternFile("/etc/passwd");
  EntityId out = fx.log.InternFile("/tmp/out");
  EntityId net = fx.log.InternNetwork("10.0.0.1", 5000, "9.9.9.9", 443);
  auto add = [&](EntityId s, EntityId o, Operation op, audit::Timestamp t,
                 uint64_t bytes = 0) {
    SystemEvent ev;
    ev.subject = s;
    ev.object = o;
    ev.op = op;
    ev.start_time = t;
    ev.end_time = t;
    ev.bytes = bytes;
    fx.log.AddEvent(ev);
  };
  add(bash, tar, Operation::kFork, 5);
  add(tar, passwd, Operation::kRead, 10, 100);
  add(tar, out, Operation::kWrite, 20, 200);
  add(cat, passwd, Operation::kRead, 30, 50);
  add(curl, net, Operation::kSend, 50, 1024);
  fx.Finish();
  return fx;
}

TEST(EngineTest, SinglePatternWithFilters) {
  Fixture fx = MakeSmallFixture();
  auto r = fx.Run(R"(proc p["%tar%"] read file f["/etc/passwd"])");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.columns, (std::vector<std::string>{"f.name", "p.exename"}));
  EXPECT_EQ(r.rows[0], (std::vector<std::string>{"/etc/passwd", "/bin/tar"}));
}

TEST(EngineTest, UnfilteredPatternMatchesAllOfOp) {
  Fixture fx = MakeSmallFixture();
  auto r = fx.Run("proc p read file f");
  EXPECT_EQ(r.rows.size(), 2u);  // tar and cat reads
}

TEST(EngineTest, OperationDisjunction) {
  Fixture fx = MakeSmallFixture();
  auto r = fx.Run("proc p[\"%tar%\"] read || write file f");
  EXPECT_EQ(r.rows.size(), 2u);
}

TEST(EngineTest, SharedEntityJoin) {
  Fixture fx = MakeSmallFixture();
  // Same process must read passwd AND write /tmp/out: only tar qualifies.
  auto r = fx.Run(
      "e1: proc p read file f1[\"/etc/passwd\"]\n"
      "e2: proc p write file f2[\"/tmp/out\"]\n"
      "return p");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0], "/bin/tar");
}

TEST(EngineTest, TemporalOrderFilters) {
  Fixture fx = MakeSmallFixture();
  // Write before read: tar wrote at 20, read at 10 -> violates e1 before e2.
  auto r = fx.Run(
      "e1: proc p write file f2[\"/tmp/out\"]\n"
      "e2: proc p read file f1[\"/etc/passwd\"]\n"
      "with e1 before e2\nreturn p");
  EXPECT_TRUE(r.rows.empty());
  // The satisfiable direction.
  auto r2 = fx.Run(
      "e1: proc p read file f1[\"/etc/passwd\"]\n"
      "e2: proc p write file f2[\"/tmp/out\"]\n"
      "with e1 before e2\nreturn p");
  EXPECT_EQ(r2.rows.size(), 1u);
}

TEST(EngineTest, TimeWindowRestricts) {
  Fixture fx = MakeSmallFixture();
  EXPECT_EQ(fx.Run("proc p read file f from 25 to 35").rows.size(), 1u);
  EXPECT_EQ(fx.Run("proc p read file f from 100 to 200").rows.size(), 0u);
}

TEST(EngineTest, NetworkPatternAttributes) {
  Fixture fx = MakeSmallFixture();
  auto r = fx.Run(
      "proc p send net n[dstip = \"9.9.9.9\", dstport = 443]\n"
      "return p, n.dstport");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0], "/usr/bin/curl");
  EXPECT_EQ(r.rows[0][1], "443");
}

TEST(EngineTest, ForkPatternProcessObject) {
  Fixture fx = MakeSmallFixture();
  auto r = fx.Run("proc p[\"%bash%\"] fork proc q\nreturn q");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0], "/bin/tar");
}

TEST(EngineTest, IntAttributeFilter) {
  Fixture fx = MakeSmallFixture();
  auto r = fx.Run("proc p[pid = 2] read file f\nreturn p.pid");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0], "2");
}

TEST(EngineTest, PathPatternFindsForkChain) {
  Fixture fx;
  audit::WorkloadGenerator gen;
  gen.GenerateBenign(500, &fx.log);
  gen.InjectForkChain("/evil/root", 2, Operation::kRead, "/etc/secret",
                      &fx.log);
  fx.Finish();
  auto r = fx.Run(
      "proc p[exename = \"/evil/root\"] ~>(1~5)[read] file f[\"/etc/secret\"]\n"
      "return p, f");
  ASSERT_EQ(r.rows.size(), 1u);
  // 2 forks + final read = 3 hops.
  EXPECT_EQ(r.matches[0].at("evt1").events.size(), 3u);
}

TEST(EngineTest, PathPatternBoundsExcludeChain) {
  Fixture fx;
  audit::WorkloadGenerator gen;
  gen.InjectForkChain("/evil/root", 4, Operation::kRead, "/etc/secret",
                      &fx.log);
  fx.Finish();
  auto r = fx.Run(
      "proc p[exename = \"/evil/root\"] ~>(1~3)[read] file f[\"/etc/secret\"]");
  EXPECT_TRUE(r.rows.empty());
}

TEST(EngineTest, MixedEventAndPathPatterns) {
  Fixture fx;
  audit::WorkloadGenerator gen;
  gen.GenerateBenign(200, &fx.log);
  auto ids = gen.InjectForkChain("/evil/root", 2, Operation::kWrite,
                                 "/tmp/stolen", &fx.log);
  (void)ids;
  fx.Finish();
  // Run unscheduled so e1 executes without being constrained by e2's empty
  // binding of f (with propagation on, the engine correctly skips the path
  // search entirely -- nobody read /tmp/stolen).
  ExecutionOptions opts;
  opts.use_pruning_scores = false;
  opts.propagate_constraints = false;
  auto r = fx.Run(
      "e1: proc p[exename = \"/evil/root\"] ~>(1~4)[write] file f[\"/tmp/stolen\"]\n"
      "e2: proc q read file f\n"
      "return p, f", opts);
  // No benign process read /tmp/stolen, so the join is empty; but e1 alone
  // matched (visible in stats).
  EXPECT_TRUE(r.rows.empty());
  bool found_e1 = false;
  for (size_t i = 0; i < r.stats.schedule.size(); ++i) {
    if (r.stats.schedule[i] == "e1") {
      found_e1 = true;
      EXPECT_EQ(r.stats.matches_per_pattern[i], 1u);
    }
  }
  EXPECT_TRUE(found_e1);
}

// --- Pruning scores. ---

tbql::Query ParseAnalyzed(const std::string& src) {
  auto q = tbql::Parse(src);
  EXPECT_TRUE(q.ok());
  EXPECT_TRUE(tbql::Analyze(&*q).ok());
  return *std::move(q);
}

TEST(PruningScoreTest, MoreConstraintsScoreHigher) {
  auto q = ParseAnalyzed(
      "e1: proc p read file f\n"
      "e2: proc p2[\"%tar%\"] read file f2[\"/etc/passwd\"]");
  EXPECT_GT(QueryEngine::PruningScore(q.patterns[1]),
            QueryEngine::PruningScore(q.patterns[0]));
}

TEST(PruningScoreTest, WindowCounts) {
  auto q = ParseAnalyzed(
      "e1: proc p read file f\n"
      "e2: proc p2 read file f2 from 1 to 2");
  EXPECT_GT(QueryEngine::PruningScore(q.patterns[1]),
            QueryEngine::PruningScore(q.patterns[0]));
}

TEST(PruningScoreTest, ShorterPathScoresHigher) {
  auto q = ParseAnalyzed(
      "e1: proc p ~>(1~8)[read] file f[\"/x\"]\n"
      "e2: proc p2 ~>(1~2)[read] file f2[\"/x\"]");
  EXPECT_GT(QueryEngine::PruningScore(q.patterns[1]),
            QueryEngine::PruningScore(q.patterns[0]));
}

// --- Scheduling. ---

TEST(SchedulingTest, ConstrainedPatternRunsFirst) {
  Fixture fx = MakeSmallFixture();
  auto r = fx.Run(
      "e1: proc p read file f\n"  // unconstrained
      "e2: proc p write file f2[\"/tmp/out\"]\n");  // constrained
  ASSERT_EQ(r.stats.schedule.size(), 2u);
  EXPECT_EQ(r.stats.schedule[0], "e2");
  EXPECT_EQ(r.stats.schedule[1], "e1");
}

TEST(SchedulingTest, DeclarationOrderWhenDisabled) {
  Fixture fx = MakeSmallFixture();
  ExecutionOptions opts;
  opts.use_pruning_scores = false;
  opts.propagate_constraints = false;
  auto r = fx.Run(
      "e1: proc p read file f\n"
      "e2: proc p write file f2[\"/tmp/out\"]\n",
      opts);
  EXPECT_EQ(r.stats.schedule[0], "e1");
}

TEST(SchedulingTest, ScheduledAndUnscheduledAgreeOnResults) {
  // Property: the optimization changes work, not answers.
  Fixture fx;
  audit::WorkloadGenerator gen;
  gen.GenerateBenign(5000, &fx.log);
  auto attack = gen.InjectDataLeakageAttack(&fx.log);
  gen.GenerateBenign(5000, &fx.log);
  (void)attack;
  fx.Finish();
  const char* src =
      "e1: proc p1[\"%/bin/tar%\"] read file f1[\"/etc/passwd\"]\n"
      "e2: proc p1 write file f2[\"/tmp/data.tar\"]\n"
      "e3: proc p2[\"%gzip%\"] read file f2\n"
      "with e1 before e2, e2 before e3\n"
      "return p1, p2, f1, f2";
  ExecutionOptions fast;
  ExecutionOptions slow;
  slow.use_pruning_scores = false;
  slow.propagate_constraints = false;
  auto r1 = fx.Run(src, fast);
  auto r2 = fx.Run(src, slow);
  EXPECT_EQ(r1.rows, r2.rows);
  EXPECT_FALSE(r1.rows.empty());
}

TEST(SchedulingTest, PropagationReducesRowsTouched) {
  Fixture fx;
  audit::WorkloadGenerator gen;
  gen.GenerateBenign(20000, &fx.log);
  gen.InjectDataLeakageAttack(&fx.log);
  gen.GenerateBenign(20000, &fx.log);
  fx.Finish();
  // e1 is wholly unconstrained: without propagation it scans every read
  // event; with propagation, e2 runs first and binds p to the single tar
  // process, turning e1 into an index probe.
  const char* src =
      "e1: proc p read file f1\n"
      "e2: proc p write file f2[\"/tmp/data.tar\"]\n";
  ExecutionOptions fast;
  auto r1 = fx.Run(src, fast);
  uint64_t fast_rows = r1.stats.relational_rows_touched;
  ExecutionOptions slow;
  slow.use_pruning_scores = false;
  slow.propagate_constraints = false;
  auto r2 = fx.Run(src, slow);
  uint64_t slow_rows = r2.stats.relational_rows_touched;
  EXPECT_EQ(r1.rows, r2.rows);
  EXPECT_LT(fast_rows, slow_rows);
}

// --- Result assembly. ---

TEST(EngineTest, MatchedEventsDeduplicated) {
  Fixture fx = MakeSmallFixture();
  auto r = fx.Run("proc p read file f[\"/etc/passwd\"]");
  auto events = r.MatchedEvents();
  EXPECT_EQ(events.size(), 2u);
  EXPECT_TRUE(std::is_sorted(events.begin(), events.end()));
}

TEST(EngineTest, ToStringHasHeaderAndRows) {
  Fixture fx = MakeSmallFixture();
  auto r = fx.Run("proc p[\"%curl%\"] send net n\nreturn n.dstip");
  std::string s = r.ToString();
  EXPECT_NE(s.find("n.dstip"), std::string::npos);
  EXPECT_NE(s.find("9.9.9.9"), std::string::npos);
}

TEST(EngineTest, MaxRowsCap) {
  Fixture fx = MakeSmallFixture();
  ExecutionOptions opts;
  opts.max_rows = 1;
  auto r = fx.Run("proc p read file f", opts);
  EXPECT_EQ(r.rows.size(), 1u);
}

// --- Translation (paper §II-F compilation targets). ---

TEST(TranslateTest, SqlJoinsEntityAndEventTables) {
  auto q = ParseAnalyzed(
      "e1: proc p1[\"%/bin/tar%\"] read file f1[\"/etc/passwd\"]\n"
      "e2: proc p1 write file f2[\"/tmp/data.tar\"]\n"
      "with e1 before e2\nreturn p1, f1");
  std::string sql = RenderSql(q);
  EXPECT_NE(sql.find("FROM events AS e1"), std::string::npos);
  EXPECT_NE(sql.find("procs AS p1"), std::string::npos);
  EXPECT_NE(sql.find("e1.subject = p1.id"), std::string::npos);
  EXPECT_NE(sql.find("p1.exename LIKE '%/bin/tar%'"), std::string::npos);
  EXPECT_NE(sql.find("e1.starttime < e2.starttime"), std::string::npos);
  // Entity alias appears once even though p1 is used twice.
  size_t first = sql.find("procs AS p1");
  EXPECT_EQ(sql.find("procs AS p1", first + 1), std::string::npos);
}

TEST(TranslateTest, CypherUsesPathSyntaxForPaths) {
  auto q = ParseAnalyzed("proc p ~>(2~4)[read] file f[\"/etc/shadow\"]");
  std::string cy = RenderCypher(q);
  EXPECT_NE(cy.find("[:EVENT*2..4]"), std::string::npos);
  EXPECT_NE(cy.find("RETURN"), std::string::npos);
}

TEST(TranslateTest, TbqlIsMoreConciseThanSqlAndCypher) {
  // The paper's conciseness claim, as a regression test.
  std::string tbql_src =
      "e1: proc p1[\"%/bin/tar%\"] read file f1[\"/etc/passwd\"]\n"
      "e2: proc p1 write file f2[\"/tmp/data.tar\"]\n"
      "e3: proc p2[\"%gzip%\"] read file f2\n"
      "with e1 before e2, e2 before e3\n"
      "return p1, p2, f1, f2";
  auto q = ParseAnalyzed(tbql_src);
  EXPECT_LT(tbql_src.size(), RenderSql(q).size());
  EXPECT_LT(tbql_src.size(), RenderCypher(q).size());
}


TEST(ExplainTest, RendersScheduleAndBackends) {
  Fixture fx = MakeSmallFixture();
  auto q = tbql::Parse(
      "e1: proc p read file f\n"
      "e2: proc p write file f2[\"/tmp/out\"]\n"
      "with e1 before e2");
  ASSERT_TRUE(q.ok());
  ASSERT_TRUE(tbql::Analyze(&*q).ok());
  auto r = fx.engine->Execute(*q, {});
  ASSERT_TRUE(r.ok());
  std::string text = ExplainAnalyze(*q, *r);
  // Constrained pattern runs first; the unconstrained one is marked as
  // narrowed by propagation.
  EXPECT_NE(text.find("step 1: e2"), std::string::npos) << text;
  EXPECT_NE(text.find("constrained-by-propagation"), std::string::npos);
  EXPECT_NE(text.find("relational (SQL-equivalent)"), std::string::npos);
  EXPECT_NE(text.find("1 temporal"), std::string::npos);
  EXPECT_NE(text.find("result rows"), std::string::npos);
}

TEST(ExplainTest, PathPatternShowsGraphBackend) {
  Fixture fx;
  audit::WorkloadGenerator gen;
  gen.InjectForkChain("/evil/root", 2, Operation::kRead, "/etc/secret",
                      &fx.log);
  fx.Finish();
  auto q = tbql::Parse(
      "proc p[exename = \"/evil/root\"] ~>(1~4)[read] file f");
  ASSERT_TRUE(q.ok());
  ASSERT_TRUE(tbql::Analyze(&*q).ok());
  auto r = fx.engine->Execute(*q, {});
  ASSERT_TRUE(r.ok());
  std::string text = ExplainAnalyze(*q, *r);
  EXPECT_NE(text.find("graph (Cypher-equivalent)"), std::string::npos)
      << text;
  EXPECT_NE(text.find("~>(1~4)"), std::string::npos);
}


TEST(EngineTest, ReturnCount) {
  Fixture fx = MakeSmallFixture();
  auto r = fx.Run("proc p read file f\nreturn count");
  ASSERT_EQ(r.columns, std::vector<std::string>{"count"});
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0], "2");
  // Count mode does not materialize bindings.
  EXPECT_TRUE(r.bindings.empty());
}

TEST(EngineTest, LimitCapsRows) {
  Fixture fx = MakeSmallFixture();
  auto r = fx.Run("proc p read file f\nreturn p\nlimit 1");
  EXPECT_EQ(r.rows.size(), 1u);
}

TEST(EngineTest, CountWithLimitCapsTheCount) {
  Fixture fx = MakeSmallFixture();
  auto r = fx.Run("proc p read file f\nreturn count\nlimit 1");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0], "1");
}

// --- Per-operator resource statistics. ---

TEST(OperatorStatsTest, PerPatternVectorsAlignWithSchedule) {
  Fixture fx = MakeSmallFixture();
  auto r = fx.Run(
      "e1: proc p read file f1[\"/etc/passwd\"]\n"
      "e2: proc p write file f2[\"/tmp/out\"]\n"
      "return p");
  const ExecutionStats& stats = r.stats;
  ASSERT_EQ(stats.schedule.size(), 2u);
  EXPECT_EQ(stats.pattern_rows_examined.size(), stats.schedule.size());
  EXPECT_EQ(stats.pattern_bytes_touched.size(), stats.schedule.size());
  EXPECT_EQ(stats.pattern_index_probes.size(), stats.schedule.size());
  EXPECT_EQ(stats.pattern_full_scans.size(), stats.schedule.size());
  // Each pattern examined at least its own matches.
  for (size_t i = 0; i < stats.schedule.size(); ++i) {
    EXPECT_GE(stats.pattern_rows_examined[i], stats.matches_per_pattern[i])
        << "step " << i;
    EXPECT_GT(stats.pattern_bytes_touched[i], 0u) << "step " << i;
  }
  // Totals are the sum of the per-pattern contributions.
  uint64_t summed = 0;
  for (uint64_t b : stats.pattern_bytes_touched) summed += b;
  EXPECT_EQ(stats.bytes_touched, summed);
  EXPECT_GT(stats.intermediate_result_bytes, 0u);
}

TEST(OperatorStatsTest, AccessPathLabelsReflectBackendChoice) {
  Fixture fx = MakeSmallFixture();
  auto r = fx.Run(R"(proc p["%tar%"] read file f["/etc/passwd"])");
  ASSERT_EQ(r.stats.schedule.size(), 1u);
  // An exact file-name filter goes through the name index into columnar
  // entity probes ("columnar" with the default options, "index"/"mixed"
  // when columnar is disabled); never "none".
  std::string_view label = AccessPathLabel(r.stats, 0);
  EXPECT_TRUE(label == "columnar" || label == "index" || label == "mixed" ||
              label == "fullscan")
      << label;
  // Out-of-range steps degrade to "none" rather than crashing.
  EXPECT_EQ(AccessPathLabel(r.stats, 99), "none");
}

TEST(OperatorStatsTest, ExplainAnalyzeRendersOperatorLines) {
  Fixture fx = MakeSmallFixture();
  auto parsed = tbql::Parse("proc p read file f");
  ASSERT_TRUE(parsed.ok());
  ASSERT_TRUE(tbql::Analyze(&*parsed).ok());
  auto result = fx.engine->Execute(*parsed, {});
  ASSERT_TRUE(result.ok());
  std::string text = ExplainAnalyze(*parsed, *result);
  EXPECT_NE(text.find("access="), std::string::npos) << text;
  EXPECT_NE(text.find("rows_examined="), std::string::npos) << text;
  EXPECT_NE(text.find("selectivity="), std::string::npos) << text;
  EXPECT_NE(text.find("bytes touched"), std::string::npos) << text;
}

// --- Columnar segments, shared scans, and the plan cache (ROADMAP 2). ---

/// A generator-built trace big enough for several segments, with both
/// attack chains injected so selective queries have real matches.
Fixture MakeTraceFixture(size_t benign = 3000) {
  Fixture fx;
  audit::WorkloadGenerator gen;
  gen.GenerateBenign(benign / 2, &fx.log);
  gen.InjectDataLeakageAttack(&fx.log);
  gen.GenerateBenign(benign / 2, &fx.log);
  fx.Finish();
  return fx;
}

TEST(ColumnarTest, ColumnarAndRowStoreResultsAreByteIdentical) {
  Fixture fx = MakeTraceFixture();
  const auto& events = fx.log.events();
  int64_t t0 = events.front().start_time;
  int64_t t1 = events.back().start_time;
  int64_t mid = t0 + (t1 - t0) / 2;
  std::vector<std::string> queries = {
      // Entity-filtered probes (cases A/B).
      "proc p[\"%tar%\"] read file f\nreturn p, f",
      // Unconstrained operation scan (case C).
      "proc p write file f\nreturn p, f",
      // Windowed unconstrained scan: the zone-map pruning path.
      StrFormat("proc p read file f from %lld to %lld\nreturn p, f",
                static_cast<long long>(t0),
                static_cast<long long>(mid)),
      // Multi-pattern with propagation and a temporal constraint.
      "e1: proc p read file f1[\"/etc/passwd\"]\n"
      "e2: proc p write file f2\n"
      "with e1 before e2\nreturn p, f1, f2",
  };
  for (const std::string& src : queries) {
    ExecutionOptions row_opts;
    row_opts.use_columnar = false;
    row_opts.use_plan_cache = false;
    QueryResult columnar = fx.Run(src);
    QueryResult row = fx.Run(src, row_opts);
    EXPECT_EQ(columnar.columns, row.columns) << src;
    EXPECT_EQ(columnar.rows, row.rows) << src;
    EXPECT_EQ(columnar.stats.matches_per_pattern,
              row.stats.matches_per_pattern)
        << src;
    // The columnar arm actually took columnar access paths.
    uint64_t segments = 0;
    for (uint64_t s : columnar.stats.pattern_segments_scanned) segments += s;
    for (uint64_t s : columnar.stats.pattern_segments_pruned) segments += s;
    EXPECT_GT(segments, 0u) << src;
  }
}

TEST(ColumnarTest, AllSegmentsPrunedHuntScansNothing) {
  Fixture fx = MakeSmallFixture();
  // The small fixture's events live at t=5..50; this window is far beyond.
  QueryResult r =
      fx.Run("proc p read file f from 100000 to 200000\nreturn p, f");
  EXPECT_TRUE(r.rows.empty());
  ASSERT_EQ(r.stats.pattern_segments_scanned.size(), 1u);
  EXPECT_EQ(r.stats.pattern_segments_scanned[0], 0u);
  EXPECT_EQ(r.stats.pattern_segments_pruned[0],
            fx.rel_db->event_segments().num_segments());
  EXPECT_EQ(r.stats.relational_rows_touched, 0u);
}

TEST(ColumnarTest, EmptyLogExecutesCleanly) {
  Fixture fx;
  fx.Finish();  // no events at all: zero segments
  QueryResult r = fx.Run("proc p read file f\nreturn p, f");
  EXPECT_TRUE(r.rows.empty());
  EXPECT_FALSE(r.truncated);
}

TEST(PlanCacheTest, HitMissAndInvalidationCounters) {
  obs::Registry& registry = obs::Registry::Default();
  uint64_t hits0 = registry.CounterValue("raptor_plan_cache_hits_total");
  uint64_t misses0 = registry.CounterValue("raptor_plan_cache_misses_total");
  uint64_t evict0 = registry.CounterValue("raptor_plan_cache_evictions_total");

  Fixture fx = MakeSmallFixture();
  const std::string src = "proc p read file f\nreturn p, f";
  QueryResult first = fx.Run(src);
  EXPECT_FALSE(first.stats.plan_cache_hit);
  EXPECT_EQ(fx.engine->plan_cache().misses(), 1u);
  EXPECT_EQ(fx.engine->plan_cache().hits(), 0u);
  EXPECT_EQ(fx.engine->plan_cache().size(), 1u);

  QueryResult second = fx.Run(src);
  EXPECT_TRUE(second.stats.plan_cache_hit);
  EXPECT_EQ(fx.engine->plan_cache().hits(), 1u);
  EXPECT_EQ(second.rows, first.rows);

  // Different plan-affecting options are a different fingerprint.
  ExecutionOptions no_est;
  no_est.use_cardinality_estimates = false;
  QueryResult third = fx.Run(src, no_est);
  EXPECT_FALSE(third.stats.plan_cache_hit);
  EXPECT_EQ(third.rows, first.rows);

  // New data bumps the database generation: the stale entry is evicted and
  // the lookup re-plans.
  audit::SystemEvent ev;
  ev.subject = fx.log.InternProcess(99, "/bin/late");
  ev.object = fx.log.InternFile("/tmp/late");
  ev.op = Operation::kRead;
  ev.start_time = 60;
  ev.end_time = 60;
  fx.log.AddEvent(ev);
  fx.rel_db->SyncWith(fx.log);
  QueryResult fourth = fx.Run(src);
  EXPECT_FALSE(fourth.stats.plan_cache_hit);
  EXPECT_GE(fx.engine->plan_cache().evictions(), 1u);
  // The re-planned execution sees the new event.
  EXPECT_EQ(fourth.rows.size(), first.rows.size() + 1);

  // The registry mirrors the per-engine counters (global across engines,
  // so compare as deltas).
  EXPECT_GT(registry.CounterValue("raptor_plan_cache_hits_total"), hits0);
  EXPECT_GT(registry.CounterValue("raptor_plan_cache_misses_total"), misses0);
  EXPECT_GT(registry.CounterValue("raptor_plan_cache_evictions_total"),
            evict0);
}

TEST(PlanCacheTest, CachedWindowedPlanReusesSegmentListIdentically) {
  Fixture fx = MakeTraceFixture(2000);
  const auto& events = fx.log.events();
  int64_t t0 = events.front().start_time;
  int64_t t1 = events.back().start_time;
  std::string src = StrFormat(
      "proc p read file f from %lld to %lld\nreturn p, f",
      static_cast<long long>(t0 + (t1 - t0) / 4),
      static_cast<long long>(t0 + (t1 - t0) / 3));
  QueryResult cold = fx.Run(src);
  QueryResult warm = fx.Run(src);
  EXPECT_FALSE(cold.stats.plan_cache_hit);
  EXPECT_TRUE(warm.stats.plan_cache_hit);
  EXPECT_EQ(warm.rows, cold.rows);
  EXPECT_EQ(warm.stats.pattern_segments_scanned,
            cold.stats.pattern_segments_scanned);
  EXPECT_EQ(warm.stats.pattern_segments_pruned,
            cold.stats.pattern_segments_pruned);
}

TEST(BatchTest, ExecuteBatchMatchesIndividualExecution) {
  Fixture fx = MakeTraceFixture(2000);
  std::vector<std::string> sources = {
      "proc p read file f\nreturn p, f",
      "proc p write file f\nreturn p, f",
      "proc p[\"%tar%\"] read file f\nreturn p, f",
  };
  std::vector<tbql::Query> parsed;
  for (const std::string& src : sources) {
    auto q = tbql::Parse(src);
    ASSERT_TRUE(q.ok());
    ASSERT_TRUE(tbql::Analyze(&*q).ok());
    parsed.push_back(std::move(*q));
  }
  std::vector<const tbql::Query*> refs;
  for (const tbql::Query& q : parsed) refs.push_back(&q);
  std::vector<Result<QueryResult>> batch =
      fx.engine->ExecuteBatch(refs, ExecutionOptions{});
  ASSERT_EQ(batch.size(), sources.size());
  bool any_shared = false;
  for (size_t i = 0; i < sources.size(); ++i) {
    ASSERT_TRUE(batch[i].ok()) << sources[i];
    QueryResult solo = fx.Run(sources[i]);
    EXPECT_EQ(batch[i]->rows, solo.rows) << sources[i];
    EXPECT_EQ(batch[i]->columns, solo.columns) << sources[i];
    any_shared |= batch[i]->stats.shared_scan_patterns > 0;
  }
  // The two filterless single-pattern queries rode one shared segment scan.
  EXPECT_TRUE(any_shared);
  // Degenerate batches are fine.
  EXPECT_TRUE(fx.engine->ExecuteBatch({}, ExecutionOptions{}).empty());
  std::vector<Result<QueryResult>> one =
      fx.engine->ExecuteBatch({refs[0]}, ExecutionOptions{});
  ASSERT_EQ(one.size(), 1u);
  EXPECT_TRUE(one[0].ok());
}

}  // namespace
}  // namespace raptor::engine
