// Tests for the ThreatRaptor facade (src/core).

#include <gtest/gtest.h>

#include <cstdio>
#include <set>

#include "core/investigate.h"
#include "core/threat_raptor.h"
#include "obs/metrics.h"

namespace raptor {
namespace {

TEST(ThreatRaptorTest, IngestLogText) {
  ThreatRaptor system;
  Status st = system.IngestLogText(
      "ts=1 pid=1 exe=/bin/a op=read obj=file path=/x\n"
      "ts=2 pid=1 exe=/bin/a op=write obj=file path=/y\n");
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(system.log().event_count(), 2u);
  EXPECT_FALSE(system.storage_ready());
}

TEST(ThreatRaptorTest, IngestRejectsBadText) {
  ThreatRaptor system;
  EXPECT_TRUE(system.IngestLogText("nonsense").IsParseError());
}

TEST(ThreatRaptorTest, FinalizeFreezesIngestion) {
  ThreatRaptor system;
  ASSERT_TRUE(system
                  .IngestLogText(
                      "ts=1 pid=1 exe=/bin/a op=read obj=file path=/x\n")
                  .ok());
  ASSERT_TRUE(system.FinalizeStorage().ok());
  EXPECT_TRUE(system.storage_ready());
  EXPECT_EQ(system.mutable_log(), nullptr);
  EXPECT_TRUE(system.IngestLogText("ts=2 pid=1 exe=/b op=read obj=file "
                                   "path=/y")
                  .IsInvalidArgument());
  // Idempotent.
  EXPECT_TRUE(system.FinalizeStorage().ok());
}

TEST(ThreatRaptorTest, QueriesRequireFinalizedStorage) {
  ThreatRaptor system;
  auto result = system.ExecuteTbql("proc p read file f");
  EXPECT_TRUE(result.status().IsInvalidArgument());
  auto hunt = system.Hunt("The process /bin/a read /etc/x.");
  EXPECT_TRUE(hunt.status().IsInvalidArgument());
}

TEST(ThreatRaptorTest, CprAppliedByDefault) {
  ThreatRaptor system;
  audit::WorkloadGenerator gen;
  gen.GenerateBenign(10000, system.mutable_log());
  ASSERT_TRUE(system.FinalizeStorage().ok());
  EXPECT_GT(system.cpr_stats().ReductionRatio(), 1.0);
  EXPECT_LT(system.log().event_count(), 10000u);
}

TEST(ThreatRaptorTest, CprCanBeDisabled) {
  ThreatRaptorOptions opts;
  opts.apply_cpr = false;
  ThreatRaptor system(opts);
  audit::WorkloadGenerator gen;
  gen.GenerateBenign(5000, system.mutable_log());
  ASSERT_TRUE(system.FinalizeStorage().ok());
  EXPECT_EQ(system.log().event_count(), 5000u);
  EXPECT_DOUBLE_EQ(system.cpr_stats().ReductionRatio(), 1.0);
}

TEST(ThreatRaptorTest, TranslateEventIdsAfterCpr) {
  ThreatRaptor system;
  audit::WorkloadGenerator gen;
  gen.GenerateBenign(5000, system.mutable_log());
  auto attack = gen.InjectDataLeakageAttack(system.mutable_log());
  ASSERT_TRUE(system.FinalizeStorage().ok());
  auto translated = system.TranslateEventIds(attack.event_ids);
  EXPECT_FALSE(translated.empty());
  EXPECT_LE(translated.size(), attack.event_ids.size());
  for (audit::EventId id : translated) {
    ASSERT_LT(id, system.log().event_count());
  }
}

TEST(ThreatRaptorTest, ExecuteTbqlParsesAndRuns) {
  ThreatRaptor system;
  ASSERT_TRUE(system
                  .IngestLogText(
                      "ts=1 pid=1 exe=/bin/tar op=read obj=file "
                      "path=/etc/passwd\n")
                  .ok());
  ASSERT_TRUE(system.FinalizeStorage().ok());
  auto result =
      system.ExecuteTbql(R"(proc p["%tar%"] read file f  return f)");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0][0], "/etc/passwd");
}

TEST(ThreatRaptorTest, ExecuteTbqlBatchMatchesIndividualRuns) {
  ThreatRaptor system;
  audit::WorkloadGenerator gen;
  gen.GenerateBenign(2000, system.mutable_log());
  ASSERT_TRUE(system.FinalizeStorage().ok());
  std::vector<std::string> sources = {
      "proc p read file f\nreturn p, f\nlimit 100",
      "proc p read widget w",  // parse error: isolated to its slot
      "proc p write file f\nreturn p, f\nlimit 100",
  };
  auto batch = system.ExecuteTbqlBatch(sources);
  ASSERT_EQ(batch.size(), 3u);
  ASSERT_TRUE(batch[0].ok());
  EXPECT_TRUE(batch[1].status().IsParseError());
  ASSERT_TRUE(batch[2].ok());
  for (size_t i : {size_t{0}, size_t{2}}) {
    auto solo = system.ExecuteTbql(sources[i]);
    ASSERT_TRUE(solo.ok());
    EXPECT_EQ(batch[i]->rows, solo->rows) << sources[i];
  }
}

TEST(ThreatRaptorTest, RepeatedHuntsHitThePlanCache) {
  obs::Registry& registry = obs::Registry::Default();
  uint64_t hits0 = registry.CounterValue("raptor_plan_cache_hits_total");
  uint64_t misses0 = registry.CounterValue("raptor_plan_cache_misses_total");
  ThreatRaptor system;
  audit::WorkloadGenerator gen;
  gen.GenerateBenign(2000, system.mutable_log());
  audit::AttackTrace attack = gen.InjectDataLeakageAttack(system.mutable_log());
  ASSERT_TRUE(system.FinalizeStorage().ok());
  auto first = system.Hunt(attack.report_text);
  ASSERT_TRUE(first.ok());
  uint64_t misses_after_first =
      registry.CounterValue("raptor_plan_cache_misses_total");
  uint64_t hits_after_first =
      registry.CounterValue("raptor_plan_cache_hits_total");
  EXPECT_GT(misses_after_first, misses0);  // cold: the hunt's plan is built
  auto second = system.Hunt(attack.report_text);
  ASSERT_TRUE(second.ok());
  // Warm: the identical synthesized query reuses the cached plan, with
  // byte-identical results.
  EXPECT_GT(registry.CounterValue("raptor_plan_cache_hits_total"),
            hits_after_first);
  EXPECT_EQ(registry.CounterValue("raptor_plan_cache_misses_total"),
            misses_after_first);
  EXPECT_EQ(second->result.rows, first->result.rows);
  EXPECT_TRUE(second->result.stats.plan_cache_hit);
}

TEST(ThreatRaptorTest, ExecuteTbqlReportsSyntaxErrors) {
  ThreatRaptor system;
  ASSERT_TRUE(system.FinalizeStorage().ok());
  EXPECT_TRUE(system.ExecuteTbql("proc p read widget w")
                  .status()
                  .IsParseError());
  EXPECT_FALSE(system.ExecuteTbql("proc p read net n").ok());  // analyzer
}

TEST(ThreatRaptorTest, ExtractBehaviorWorksWithoutStorage) {
  ThreatRaptor system;
  auto extraction =
      system.ExtractBehavior("The process /bin/a read /etc/x.");
  EXPECT_EQ(extraction.graph.num_edges(), 1u);
}

class HuntBothAttacksTest : public ::testing::TestWithParam<int> {};

TEST_P(HuntBothAttacksTest, PerfectPrecisionRecallOnCoreEvents) {
  ThreatRaptor system;
  audit::WorkloadGenerator gen;
  gen.GenerateBenign(15000, system.mutable_log());
  audit::AttackTrace attack =
      GetParam() == 0 ? gen.InjectDataLeakageAttack(system.mutable_log())
                      : gen.InjectPasswordCrackingAttack(system.mutable_log());
  gen.GenerateBenign(15000, system.mutable_log());
  ASSERT_TRUE(system.FinalizeStorage().ok());

  auto hunt = system.Hunt(attack.report_text);
  ASSERT_TRUE(hunt.ok()) << hunt.status().ToString();
  EXPECT_FALSE(hunt->query_text.empty());
  EXPECT_GE(hunt->result.rows.size(), 1u);

  auto matched = hunt->result.MatchedEvents();
  auto truth = system.TranslateEventIds(attack.core_event_ids);
  std::set<audit::EventId> truth_set(truth.begin(), truth.end());
  size_t tp = 0;
  for (audit::EventId id : matched) tp += truth_set.count(id);
  ASSERT_FALSE(matched.empty());
  EXPECT_DOUBLE_EQ(static_cast<double>(tp) / matched.size(), 1.0);
  EXPECT_DOUBLE_EQ(static_cast<double>(tp) / truth.size(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Attacks, HuntBothAttacksTest, ::testing::Values(0, 1));

TEST(ThreatRaptorTest, HuntFailsCleanlyOnIrrelevantReport) {
  ThreatRaptor system;
  ASSERT_TRUE(system.FinalizeStorage().ok());
  auto hunt = system.Hunt("Nothing security-relevant is described here.");
  EXPECT_TRUE(hunt.status().IsNotFound());
}

TEST(ThreatRaptorTest, HuntReportCarriesAllArtifacts) {
  ThreatRaptor system;
  audit::WorkloadGenerator gen;
  auto attack = gen.InjectDataLeakageAttack(system.mutable_log());
  ASSERT_TRUE(system.FinalizeStorage().ok());
  auto hunt = system.Hunt(attack.report_text);
  ASSERT_TRUE(hunt.ok());
  EXPECT_GT(hunt->extraction.graph.num_edges(), 0u);
  EXPECT_GT(hunt->synthesis.query.patterns.size(), 0u);
  EXPECT_NE(hunt->query_text.find("with"), std::string::npos);
  EXPECT_GE(hunt->cpr.events_before, hunt->cpr.events_after);
}

TEST(ThreatRaptorTest, PathPatternPlanHuntsOmittedIntermediates) {
  // The report says bash wrote the file, but in the trace bash forked a
  // helper that wrote it — the §II-D motivation for path patterns. The
  // default plan misses it; the user-defined path plan finds it.
  const char* report = "The process /bin/bash wrote the file /tmp/loot.";

  auto build = [](ThreatRaptor* system) {
    audit::AuditLog* log = system->mutable_log();
    audit::EntityId bash = log->InternProcess(50, "/bin/bash");
    audit::EntityId helper = log->InternProcess(51, "/usr/bin/helper");
    audit::SystemEvent fork;
    fork.subject = bash;
    fork.object = helper;
    fork.op = audit::Operation::kFork;
    fork.start_time = fork.end_time = 100;
    log->AddEvent(fork);
    audit::SystemEvent write;
    write.subject = helper;
    write.object = log->InternFile("/tmp/loot");
    write.op = audit::Operation::kWrite;
    write.start_time = write.end_time = 200;
    log->AddEvent(write);
    ASSERT_TRUE(system->FinalizeStorage().ok());
  };

  ThreatRaptor plain;
  build(&plain);
  auto miss = plain.Hunt(report);
  ASSERT_TRUE(miss.ok());
  EXPECT_TRUE(miss->result.rows.empty());

  ThreatRaptorOptions opts;
  opts.synthesis.use_path_patterns = true;
  opts.synthesis.path_max_hops = 3;
  ThreatRaptor pathy(opts);
  build(&pathy);
  auto hit = pathy.Hunt(report);
  ASSERT_TRUE(hit.ok()) << hit.status().ToString();
  ASSERT_EQ(hit->result.rows.size(), 1u);
  EXPECT_EQ(hit->result.matches[0].at("evt1").events.size(), 2u);
}


TEST(ThreatRaptorTest, IngestSysdigText) {
  ThreatRaptor system;
  auto stats = system.IngestSysdigText(
      "1 00:00:01 0 tar (842) < read res=10 fd=5(<f>/etc/passwd)\n"
      "2 00:00:02 0 tar (842) > write fd=5(<f>/etc/passwd)\n"
      "3 00:00:03 0 tar (842) < write res=20 fd=6(<f>/tmp/out)\n");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->events, 2u);
  EXPECT_EQ(stats->skipped, 1u);
  EXPECT_EQ(system.log().event_count(), 2u);
  ASSERT_TRUE(system.FinalizeStorage().ok());
  auto result = system.ExecuteTbql("proc p read file f  return f");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0][0], "/etc/passwd");
}

TEST(ThreatRaptorTest, SnapshotRoundTripPreservesHunts) {
  std::string path = ::testing::TempDir() + "/raptor_core_snapshot.bin";
  audit::AttackTrace attack;
  std::vector<std::vector<std::string>> original_rows;
  {
    ThreatRaptor system;
    audit::WorkloadGenerator gen;
    gen.GenerateBenign(3000, system.mutable_log());
    attack = gen.InjectDataLeakageAttack(system.mutable_log());
    gen.GenerateBenign(3000, system.mutable_log());
    ASSERT_TRUE(system.SaveTraceSnapshot(path).ok());
    ASSERT_TRUE(system.FinalizeStorage().ok());
    auto hunt = system.Hunt(attack.report_text);
    ASSERT_TRUE(hunt.ok());
    original_rows = hunt->result.rows;
  }
  {
    ThreatRaptor restored;
    ASSERT_TRUE(restored.LoadTraceSnapshot(path).ok());
    ASSERT_TRUE(restored.FinalizeStorage().ok());
    auto hunt = restored.Hunt(attack.report_text);
    ASSERT_TRUE(hunt.ok());
    EXPECT_EQ(hunt->result.rows, original_rows);
    EXPECT_FALSE(hunt->result.rows.empty());
  }
  std::remove(path.c_str());
}

TEST(ThreatRaptorTest, SnapshotOpsFrozenAfterFinalize) {
  ThreatRaptor system;
  ASSERT_TRUE(system.FinalizeStorage().ok());
  EXPECT_TRUE(system.IngestSysdigText("x").status().IsInvalidArgument());
  EXPECT_TRUE(
      system.LoadTraceSnapshot("/tmp/whatever").IsInvalidArgument());
}


TEST(ThreatRaptorTest, LiveIngestionVisibleToQueries) {
  ThreatRaptor system;
  audit::WorkloadGenerator gen;
  gen.GenerateBenign(2000, system.mutable_log());
  ASSERT_TRUE(system.FinalizeStorage().ok());

  // Nothing touches /srv/secret.db yet.
  auto before = system.ExecuteTbql(
      "proc p read file f[\"/srv/secret.db\"]");
  ASSERT_TRUE(before.ok());
  EXPECT_TRUE(before->rows.empty());

  // A live record arrives.
  ASSERT_TRUE(system
                  .IngestLiveText("ts=9999999999 pid=77 exe=/usr/bin/exfil "
                                  "op=read obj=file path=/srv/secret.db")
                  .ok());
  auto after = system.ExecuteTbql(
      "proc p read file f[\"/srv/secret.db\"]\nreturn p");
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(after->rows.size(), 1u);
  EXPECT_EQ(after->rows[0][0], "/usr/bin/exfil");
}

TEST(ThreatRaptorTest, LiveIngestionFeedsPathPatterns) {
  ThreatRaptor system;
  ASSERT_TRUE(system
                  .IngestLogText("ts=1 pid=1 exe=/bin/init op=fork obj=proc "
                                 "cpid=2 cexe=/bin/stage1")
                  .ok());
  ASSERT_TRUE(system.FinalizeStorage().ok());
  ASSERT_TRUE(system
                  .IngestLiveText(
                      "ts=2 pid=2 exe=/bin/stage1 op=fork obj=proc cpid=3 "
                      "cexe=/bin/stage2\n"
                      "ts=3 pid=3 exe=/bin/stage2 op=read obj=file "
                      "path=/etc/target")
                  .ok());
  auto r = system.ExecuteTbql(
      "proc p[\"%init%\"] ~>(3~3)[read] file f[\"/etc/target\"]");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 1u);
}

TEST(ThreatRaptorTest, LiveIngestionRequiresFinalizedStorage) {
  ThreatRaptor system;
  EXPECT_TRUE(system.IngestLiveText("x").IsInvalidArgument());
  EXPECT_TRUE(system.IngestLiveSysdig("x").status().IsInvalidArgument());
}

TEST(ThreatRaptorTest, LiveSysdigIngestion) {
  ThreatRaptor system;
  ASSERT_TRUE(system.FinalizeStorage().ok());
  auto stats = system.IngestLiveSysdig(
      "1 00:00:01 0 evil (9) < read res=10 fd=5(<f>/etc/shadow)");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->events, 1u);
  auto r = system.ExecuteTbql("proc p read file f[\"/etc/shadow\"]");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 1u);
}

TEST(InvestigateTest, RequiresFinalizedStorage) {
  ThreatRaptor system;
  EXPECT_TRUE(
      Investigate(system, {}).status().IsInvalidArgument());
}

TEST(InvestigateTest, HuntSeedsReconstructFullAttack) {
  ThreatRaptor system;
  audit::WorkloadGenerator gen;
  gen.GenerateBenign(10000, system.mutable_log());
  auto attack = gen.InjectDataLeakageAttack(system.mutable_log());
  gen.GenerateBenign(10000, system.mutable_log());
  ASSERT_TRUE(system.FinalizeStorage().ok());

  auto hunt = system.Hunt(attack.report_text);
  ASSERT_TRUE(hunt.ok());
  auto investigation = Investigate(system, hunt->result.MatchedEvents());
  ASSERT_TRUE(investigation.ok());

  auto truth = system.TranslateEventIds(attack.event_ids);
  std::set<audit::EventId> tracked(
      investigation->subgraph.events.begin(),
      investigation->subgraph.events.end());
  for (audit::EventId id : truth) {
    EXPECT_TRUE(tracked.count(id) > 0) << "missed attack event " << id;
  }
  // Timeline marks seeds and is chronological.
  EXPECT_NE(investigation->timeline.find("* "), std::string::npos);
  EXPECT_NE(investigation->dot.find("digraph provenance"),
            std::string::npos);
  EXPECT_NE(investigation->dot.find("color=red"), std::string::npos);
}

}  // namespace
}  // namespace raptor
