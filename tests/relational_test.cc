// Tests for the embedded relational engine (src/storage/relational).

#include <gtest/gtest.h>

#include <functional>
#include <optional>
#include <unordered_set>
#include <vector>

#include "audit/generator.h"
#include "common/rng.h"
#include "storage/relational/column.h"
#include "storage/relational/database.h"
#include "storage/relational/segment.h"
#include "storage/relational/table.h"

namespace raptor::rel {
namespace {

// --- Value. ---

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value(int64_t{3}).is_int());
  EXPECT_TRUE(Value(3.5).is_double());
  EXPECT_TRUE(Value("x").is_string());
  EXPECT_EQ(Value(int64_t{3}).AsInt(), 3);
  EXPECT_DOUBLE_EQ(Value(int64_t{3}).AsDouble(), 3.0);
  EXPECT_EQ(Value("abc").AsString(), "abc");
}

TEST(ValueTest, NumericCrossTypeComparison) {
  EXPECT_EQ(Value(int64_t{3}), Value(3.0));
  EXPECT_LT(Value(int64_t{2}), Value(2.5));
  EXPECT_GT(Value(3.5), Value(int64_t{3}));
}

TEST(ValueTest, StringComparison) {
  EXPECT_LT(Value("abc"), Value("abd"));
  EXPECT_EQ(Value("x"), Value("x"));
  // Mixed numeric/string ordering is stable: numerics first.
  EXPECT_LT(Value(int64_t{999}), Value("0"));
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value(int64_t{42}).ToString(), "42");
  EXPECT_EQ(Value("hi").ToString(), "hi");
}

// --- Predicates. ---

struct PredCase {
  CompareOp op;
  Value cell;
  Value rhs;
  bool expect;
};

class PredicateTest : public ::testing::TestWithParam<PredCase> {};

TEST_P(PredicateTest, Matches) {
  const PredCase& c = GetParam();
  Predicate p{0, c.op, c.rhs};
  Row row{c.cell};
  EXPECT_EQ(p.Matches(row), c.expect);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, PredicateTest,
    ::testing::Values(
        PredCase{CompareOp::kEq, Value(int64_t{5}), Value(int64_t{5}), true},
        PredCase{CompareOp::kEq, Value(int64_t{5}), Value(int64_t{6}), false},
        PredCase{CompareOp::kNe, Value("a"), Value("b"), true},
        PredCase{CompareOp::kLt, Value(int64_t{1}), Value(int64_t{2}), true},
        PredCase{CompareOp::kLe, Value(int64_t{2}), Value(int64_t{2}), true},
        PredCase{CompareOp::kGt, Value(int64_t{3}), Value(int64_t{2}), true},
        PredCase{CompareOp::kGe, Value(int64_t{1}), Value(int64_t{2}), false},
        PredCase{CompareOp::kLike, Value("/bin/tar"), Value("%tar%"), true},
        PredCase{CompareOp::kLike, Value("/bin/cat"), Value("%tar%"), false},
        PredCase{CompareOp::kNotLike, Value("/bin/cat"), Value("%tar%"),
                 true},
        PredCase{CompareOp::kLike, Value(int64_t{5}), Value("%5%"), false}));

TEST(PredicateTest, MatchesAllIsConjunction) {
  Conjunction preds{{0, CompareOp::kGe, Value(int64_t{10})},
                    {0, CompareOp::kLe, Value(int64_t{20})}};
  EXPECT_TRUE(MatchesAll(preds, Row{Value(int64_t{15})}));
  EXPECT_FALSE(MatchesAll(preds, Row{Value(int64_t{25})}));
  EXPECT_TRUE(MatchesAll({}, Row{Value(int64_t{1})}));
}

TEST(PredicateTest, ToStringRendering) {
  Schema schema{{"name", ColumnType::kString}};
  Predicate p{0, CompareOp::kLike, Value("%x%")};
  EXPECT_EQ(p.ToString(schema), "name LIKE '%x%'");
}

// --- Table. ---

Table MakePeopleTable() {
  Table t("people", Schema{{"id", ColumnType::kInt64},
                           {"name", ColumnType::kString},
                           {"age", ColumnType::kInt64}});
  const char* names[] = {"alice", "bob", "carol", "dave", "erin",
                         "frank", "grace", "heidi"};
  for (int i = 0; i < 8; ++i) {
    t.Insert({int64_t{i}, names[i], int64_t{20 + (i * 7) % 30}});
  }
  return t;
}

TEST(TableTest, InsertAndRowAccess) {
  Table t = MakePeopleTable();
  EXPECT_EQ(t.num_rows(), 8u);
  EXPECT_EQ(t.row(2)[1].AsString(), "carol");
}

TEST(TableTest, SelectFullScanWithoutIndex) {
  Table t = MakePeopleTable();
  ColumnId name = t.schema().Find("name");
  auto rows = t.Select({{name, CompareOp::kEq, Value("dave")}});
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], 3u);
  EXPECT_GT(t.stats().rows_scanned, 0u);
  EXPECT_EQ(t.stats().index_probes, 0u);
}

TEST(TableTest, SelectUsesIndexWhenAvailable) {
  Table t = MakePeopleTable();
  ASSERT_TRUE(t.CreateIndex("name").ok());
  t.ResetStats();
  auto rows = t.Select({{t.schema().Find("name"), CompareOp::kEq,
                         Value("dave")}});
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(t.stats().index_probes, 1u);
  EXPECT_EQ(t.stats().rows_scanned, 0u);
}

TEST(TableTest, IndexMaintainedAcrossInserts) {
  Table t("t", Schema{{"k", ColumnType::kInt64}});
  ASSERT_TRUE(t.CreateIndex("k").ok());
  for (int i = 0; i < 100; ++i) t.Insert({int64_t{i % 10}});
  auto rows = t.Select({{0, CompareOp::kEq, Value(int64_t{3})}});
  EXPECT_EQ(rows.size(), 10u);
}

TEST(TableTest, CreateIndexUnknownColumnFails) {
  Table t("t", Schema{{"k", ColumnType::kInt64}});
  EXPECT_TRUE(t.CreateIndex("nope").IsNotFound());
  EXPECT_TRUE(t.CreateIndex("k").ok());
  EXPECT_TRUE(t.CreateIndex("k").ok());  // idempotent
}

TEST(TableTest, RangeSelectViaIndex) {
  Table t("t", Schema{{"k", ColumnType::kInt64}});
  ASSERT_TRUE(t.CreateIndex("k").ok());
  for (int i = 0; i < 50; ++i) t.Insert({int64_t{i}});
  auto rows = t.Select({{0, CompareOp::kGe, Value(int64_t{40})}});
  EXPECT_EQ(rows.size(), 10u);
  rows = t.Select({{0, CompareOp::kLt, Value(int64_t{5})}});
  EXPECT_EQ(rows.size(), 5u);
  rows = t.Select({{0, CompareOp::kGt, Value(int64_t{44})},
                   {0, CompareOp::kLe, Value(int64_t{47})}});
  EXPECT_EQ(rows.size(), 3u);
}

TEST(TableTest, LikePrefixUsesIndexRange) {
  Table t("t", Schema{{"name", ColumnType::kString}});
  ASSERT_TRUE(t.CreateIndex("name").ok());
  t.Insert({"/bin/tar"});
  t.Insert({"/bin/cat"});
  t.Insert({"/usr/bin/tar"});
  t.ResetStats();
  auto rows = t.Select({{0, CompareOp::kLike, Value("/bin/%")}});
  EXPECT_EQ(rows.size(), 2u);
  EXPECT_EQ(t.stats().index_probes, 1u);
  EXPECT_EQ(t.stats().rows_scanned, 0u);
  // A leading-wildcard pattern cannot use the index.
  t.ResetStats();
  rows = t.Select({{0, CompareOp::kLike, Value("%tar%")}});
  EXPECT_EQ(rows.size(), 2u);
  EXPECT_GT(t.stats().rows_scanned, 0u);
}

TEST(TableTest, EmptyPredicatesReturnAllRows) {
  Table t = MakePeopleTable();
  EXPECT_EQ(t.Select({}).size(), 8u);
}

TEST(TableTest, EstimateEqualityMatches) {
  Table t("t", Schema{{"k", ColumnType::kInt64}});
  ASSERT_TRUE(t.CreateIndex("k").ok());
  for (int i = 0; i < 30; ++i) t.Insert({int64_t{i % 3}});
  EXPECT_EQ(t.EstimateEqualityMatches(0, Value(int64_t{1})), 10u);
  EXPECT_EQ(t.EstimateEqualityMatches(0, Value(int64_t{9})), 0u);
}

// Property: index-backed selection returns exactly what a full scan does.
class TableEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TableEquivalenceTest, IndexAndScanAgree) {
  raptor::Rng rng(GetParam());
  Table indexed("a", Schema{{"k", ColumnType::kInt64},
                            {"s", ColumnType::kString}});
  Table plain("b", Schema{{"k", ColumnType::kInt64},
                          {"s", ColumnType::kString}});
  ASSERT_TRUE(indexed.CreateIndex("k").ok());
  ASSERT_TRUE(indexed.CreateIndex("s").ok());
  for (int i = 0; i < 500; ++i) {
    int64_t k = static_cast<int64_t>(rng.Uniform(40));
    std::string s = "item_" + std::to_string(rng.Uniform(20));
    indexed.Insert({k, s});
    plain.Insert({k, s});
  }
  for (int trial = 0; trial < 50; ++trial) {
    Conjunction preds;
    if (rng.Chance(0.7)) {
      auto op = static_cast<CompareOp>(rng.Uniform(6));
      preds.push_back({0, op, Value(static_cast<int64_t>(rng.Uniform(40)))});
    }
    if (rng.Chance(0.5)) {
      preds.push_back({1, CompareOp::kEq,
                       Value("item_" + std::to_string(rng.Uniform(20)))});
    }
    if (rng.Chance(0.3)) {
      preds.push_back({1, CompareOp::kLike, Value("item_1%")});
    }
    EXPECT_EQ(indexed.Select(preds), plain.Select(preds));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TableEquivalenceTest,
                         ::testing::Values(11, 22, 33, 44));

// --- RelationalDatabase. ---

TEST(DatabaseTest, LoadsAllEntitiesAndEvents) {
  audit::AuditLog log;
  audit::WorkloadGenerator gen;
  gen.GenerateBenign(2000, &log);
  RelationalDatabase db;
  db.Load(log);
  EXPECT_EQ(db.events().num_rows(), log.event_count());
  size_t entity_rows = db.files().num_rows() + db.procs().num_rows() +
                       db.nets().num_rows();
  EXPECT_EQ(entity_rows, log.entity_count());
}

TEST(DatabaseTest, EntityTableDispatch) {
  RelationalDatabase db;
  EXPECT_EQ(&db.EntityTable(audit::EntityType::kFile), &db.files());
  EXPECT_EQ(&db.EntityTable(audit::EntityType::kProcess), &db.procs());
  EXPECT_EQ(&db.EntityTable(audit::EntityType::kNetwork), &db.nets());
}

TEST(DatabaseTest, ExenameIndexProbeFindsProcess) {
  audit::AuditLog log;
  audit::WorkloadGenerator gen;
  gen.GenerateBenign(1000, &log);
  RelationalDatabase db;
  db.Load(log);
  db.ResetStats();
  ColumnId exe = db.procs().schema().Find("exename");
  auto rows = db.procs().Select({{exe, CompareOp::kEq,
                                  Value("/usr/sbin/apache2")}});
  EXPECT_FALSE(rows.empty());
  EXPECT_GT(db.procs().stats().index_probes, 0u);
}

TEST(DatabaseTest, StatsAccumulateAndReset) {
  audit::AuditLog log;
  audit::WorkloadGenerator gen;
  gen.GenerateBenign(100, &log);
  RelationalDatabase db;
  db.Load(log);
  db.ResetStats();
  EXPECT_EQ(db.TotalRowsTouched(), 0u);
  (void)db.events().Select({});
  EXPECT_EQ(db.TotalRowsTouched(), log.event_count());
}

// --- Resource accounting (bytes touched, access-path counters). ---

TEST(TableTest, FullScanChargesWholeTableBytes) {
  Table t = MakePeopleTable();
  ASSERT_GT(t.ApproxDataBytes(), 0u);
  t.ResetStats();
  ColumnId name = t.schema().Find("name");
  (void)t.Select({{name, CompareOp::kEq, Value("dave")}});
  EXPECT_EQ(t.stats().full_scans, 1u);
  // A scan reads every row: bytes touched is the whole data footprint.
  EXPECT_EQ(t.stats().bytes_touched, t.ApproxDataBytes());
}

TEST(TableTest, IndexProbeChargesOnlyMatchedRows) {
  Table t = MakePeopleTable();
  ASSERT_TRUE(t.CreateIndex("name").ok());
  t.ResetStats();
  (void)t.Select({{t.schema().Find("name"), CompareOp::kEq, Value("dave")}});
  EXPECT_EQ(t.stats().full_scans, 0u);
  // One matched row: bytes touched is the average row width, far below the
  // whole table.
  EXPECT_EQ(t.stats().bytes_touched, t.AvgRowBytes());
  EXPECT_LT(t.stats().bytes_touched, t.ApproxDataBytes());
}

TEST(TableTest, EmptyPredicateSelectIsAFullScan) {
  Table t = MakePeopleTable();
  t.ResetStats();
  (void)t.Select({});
  EXPECT_EQ(t.stats().full_scans, 1u);
  EXPECT_EQ(t.stats().bytes_touched, t.ApproxDataBytes());
}

TEST(TableTest, ApproxBytesGrowWithRowsAndIndexes) {
  Table t("t", Schema{{"k", ColumnType::kInt64},
                      {"s", ColumnType::kString}});
  EXPECT_EQ(t.ApproxDataBytes(), 0u);
  EXPECT_EQ(t.AvgRowBytes(), 0u);
  t.Insert({int64_t{1}, "some string payload"});
  size_t one_row = t.ApproxDataBytes();
  EXPECT_GT(one_row, 0u);
  t.Insert({int64_t{2}, "another string payload"});
  EXPECT_GT(t.ApproxDataBytes(), one_row);
  EXPECT_GT(t.AvgRowBytes(), 0u);
  EXPECT_EQ(t.ApproxIndexBytes(), 0u);
  ASSERT_TRUE(t.CreateIndex("k").ok());
  EXPECT_GT(t.ApproxIndexBytes(), 0u);
  EXPECT_EQ(t.ApproxBytes(), t.ApproxDataBytes() + t.ApproxIndexBytes());
}

TEST(DatabaseTest, ApproxBytesCoverLoadedTables) {
  audit::AuditLog log;
  audit::WorkloadGenerator gen;
  gen.GenerateBenign(200, &log);
  RelationalDatabase db;
  db.Load(log);
  // Four tables of real rows plus their indexes: the footprint estimate
  // must be material, and at least the sum of the event rows.
  EXPECT_GT(db.ApproxBytes(), db.events().ApproxDataBytes());
}

// --- Columnar building blocks (column.h). ---

TEST(BitmapTest, SetTestCountAndAscendingIteration) {
  Bitmap bm(200);
  for (size_t i : {size_t{0}, size_t{63}, size_t{64}, size_t{130},
                   size_t{199}}) {
    bm.Set(i);
  }
  EXPECT_TRUE(bm.Test(63));
  EXPECT_FALSE(bm.Test(62));
  EXPECT_EQ(bm.Count(), 5u);
  std::vector<size_t> seen;
  bm.ForEachSet([&](size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, (std::vector<size_t>{0, 63, 64, 130, 199}));
}

TEST(DictionaryTest, FirstAppearanceCodesAreStable) {
  Dictionary dict;
  EXPECT_EQ(dict.Intern(500), 0u);
  EXPECT_EQ(dict.Intern(-7), 1u);
  EXPECT_EQ(dict.Intern(500), 0u);  // idempotent
  EXPECT_EQ(dict.size(), 2u);
  EXPECT_EQ(dict.value(1), -7);
  EXPECT_EQ(dict.Find(500), std::optional<uint32_t>{0});
  EXPECT_EQ(dict.Find(999), std::nullopt);
}

TEST(BloomFilterTest, NeverFalseNegative) {
  BloomFilter bloom(64);
  for (uint64_t k = 0; k < 64; ++k) bloom.Add(k * 7919);
  for (uint64_t k = 0; k < 64; ++k) EXPECT_TRUE(bloom.MayContain(k * 7919));
}

TEST(BloomFilterTest, DefaultConstructedContainsNothing) {
  BloomFilter bloom;
  EXPECT_FALSE(bloom.MayContain(42));
}

// --- Columnar event segments (segment.h). ---

/// Builds a store with tiny segments (4 rows) so multi-segment behavior is
/// reachable with hand-countable data. Rows r=0..n-1 get start time
/// 100 + 10*r, subject 1 + (r % 3), object 50 + r, operation op.
EventSegmentStore MakeTinyStore(size_t rows, int64_t op = 1) {
  EventSegmentStore store(/*segment_rows=*/4);
  for (size_t r = 0; r < rows; ++r) {
    store.Append(/*id=*/static_cast<int64_t>(r),
                 /*subject=*/1 + static_cast<int64_t>(r % 3),
                 /*object=*/50 + static_cast<int64_t>(r), op,
                 /*start_time=*/100 + 10 * static_cast<int64_t>(r),
                 /*end_time=*/105 + 10 * static_cast<int64_t>(r));
  }
  return store;
}

TEST(SegmentStoreTest, AppendSegmentsAndRecordRoundTrip) {
  EventSegmentStore store = MakeTinyStore(10);
  EXPECT_EQ(store.num_rows(), 10u);
  EXPECT_EQ(store.num_segments(), 3u);  // 4 + 4 + 2
  EXPECT_EQ(store.segment_rows(), 4u);
  EventRecord r = store.Record(7);
  EXPECT_EQ(r.id, 7);
  EXPECT_EQ(r.subject, 1 + 7 % 3);
  EXPECT_EQ(r.object, 57);
  EXPECT_EQ(r.op, 1);
  EXPECT_EQ(r.start_time, 170);
  EXPECT_EQ(r.end_time, 175);
  EXPECT_GT(store.ApproxBytes(), 0u);
}

TEST(SegmentStoreTest, EmptyStoreHasNoSegmentsAndPrunesToNothing) {
  EventSegmentStore store(4);
  EXPECT_EQ(store.num_rows(), 0u);
  EXPECT_EQ(store.num_segments(), 0u);
  EXPECT_TRUE(store.PruneByWindow(std::nullopt, std::nullopt).empty());
  std::vector<EventRecord> out;
  SegmentProbeStats stats;
  store.ProbeEntity(EventSegmentStore::Side::kSubject, 1, {}, std::nullopt,
                    std::nullopt, nullptr, &out, &stats);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(stats.probes, 1u);
  EXPECT_EQ(stats.segments_considered, 0u);
}

TEST(SegmentStoreTest, PruneByWindowZoneMaps) {
  // Segments cover starts [100..130], [140..170], [180..190].
  EventSegmentStore store = MakeTinyStore(10);
  EXPECT_EQ(store.PruneByWindow(std::nullopt, std::nullopt),
            (std::vector<uint32_t>{0, 1, 2}));
  // Entirely before / after the data: everything pruned.
  EXPECT_TRUE(store.PruneByWindow(int64_t{0}, int64_t{50}).empty());
  EXPECT_TRUE(store.PruneByWindow(int64_t{500}, std::nullopt).empty());
  // Inside one segment.
  EXPECT_EQ(store.PruneByWindow(int64_t{145}, int64_t{150}),
            (std::vector<uint32_t>{1}));
  // Straddling the segment 0 / segment 1 time boundary (130 and 140).
  EXPECT_EQ(store.PruneByWindow(int64_t{130}, int64_t{140}),
            (std::vector<uint32_t>{0, 1}));
  // Exact boundary values are inclusive.
  EXPECT_EQ(store.PruneByWindow(int64_t{190}, int64_t{190}),
            (std::vector<uint32_t>{2}));
}

TEST(SegmentStoreTest, ProbeEntityEmitsAscendingRowsAcrossSegments) {
  // Subject 1 appears at rows 0, 3, 6, 9 — spanning all three segments.
  EventSegmentStore store = MakeTinyStore(10);
  std::vector<EventRecord> out;
  SegmentProbeStats stats;
  store.ProbeEntity(EventSegmentStore::Side::kSubject, 1, {}, std::nullopt,
                    std::nullopt, nullptr, &out, &stats);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0].id, 0);
  EXPECT_EQ(out[1].id, 3);
  EXPECT_EQ(out[2].id, 6);
  EXPECT_EQ(out[3].id, 9);
  EXPECT_EQ(stats.probes, 1u);
  EXPECT_EQ(stats.segments_considered, 3u);
  EXPECT_EQ(stats.segments_scanned, 3u);
  EXPECT_EQ(stats.rows_scanned, 4u);
}

TEST(SegmentStoreTest, ProbeEntityAppliesWindowOpAndOtherFilters) {
  EventSegmentStore store = MakeTinyStore(10);
  // Window [160, 200] keeps rows 6..9; zone maps prune segment 0 entirely.
  std::vector<EventRecord> out;
  SegmentProbeStats stats;
  store.ProbeEntity(EventSegmentStore::Side::kSubject, 1, {}, int64_t{160},
                    int64_t{200}, nullptr, &out, &stats);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].id, 6);
  EXPECT_EQ(out[1].id, 9);
  EXPECT_GE(stats.segments_pruned_zone, 1u);
  // An operation set that matches nothing ingested yields zero rows.
  out.clear();
  SegmentProbeStats stats2;
  store.ProbeEntity(EventSegmentStore::Side::kSubject, 1, {int64_t{99}},
                    std::nullopt, std::nullopt, nullptr, &out, &stats2);
  EXPECT_TRUE(out.empty());
  // Opposite-side filter: keep only object 53 (row 3).
  std::unordered_set<uint64_t> others{53};
  out.clear();
  SegmentProbeStats stats3;
  store.ProbeEntity(EventSegmentStore::Side::kSubject, 1, {}, std::nullopt,
                    std::nullopt, &others, &out, &stats3);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].id, 3);
}

TEST(SegmentStoreTest, ProbeObjectSideUsesObjectPostings) {
  EventSegmentStore store = MakeTinyStore(10);
  std::vector<EventRecord> out;
  SegmentProbeStats stats;
  store.ProbeEntity(EventSegmentStore::Side::kObject, 55, {}, std::nullopt,
                    std::nullopt, nullptr, &out, &stats);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].id, 5);
  // Objects are unique per row, so every other segment is zone- or
  // bloom-pruned before its rows are read.
  EXPECT_EQ(stats.rows_scanned, 1u);
}

TEST(SegmentStoreTest, ProbeForUnknownEntityTouchesNoSegment) {
  EventSegmentStore store = MakeTinyStore(10);
  std::vector<EventRecord> out;
  SegmentProbeStats stats;
  store.ProbeEntity(EventSegmentStore::Side::kSubject, 424242, {},
                    std::nullopt, std::nullopt, nullptr, &out, &stats);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(stats.probes, 1u);
  EXPECT_EQ(stats.segments_considered, 0u);  // dictionary miss short-circuits
}

TEST(SegmentStoreTest, BloomFalsePositiveFallsBackToSegmentLookup) {
  // Segment 0 holds two far-apart subject ids {100, 200000}, so every
  // probed id in between passes its entity zone map and reaches its bloom
  // filter. The probed ids live in later segments (they must be in the
  // global dictionary to be probed at all). Segment 0's bloom is 64 bits
  // with <= 4 set, so a sweep of thousands of candidates deterministically
  // finds false positives; the contract under test: a false positive costs
  // one posting-list lookup (segments_scanned + bloom_false_positives) but
  // contributes zero rows — results stay exact.
  EventSegmentStore store(4);
  for (int i = 0; i < 4; ++i) {
    store.Append(i, /*subject=*/i % 2 == 0 ? 100 : 200000, 900 + i, 1,
                 10 + i, 10 + i);
  }
  for (int64_t candidate = 101; candidate < 4000; ++candidate) {
    store.Append(candidate, /*subject=*/candidate, 900, 1, 20, 20);
  }
  uint64_t false_positives = 0, bloom_pruned = 0;
  for (int64_t candidate = 101; candidate < 4000; ++candidate) {
    std::vector<EventRecord> out;
    SegmentProbeStats stats;
    store.ProbeEntity(EventSegmentStore::Side::kSubject, candidate, {},
                      std::nullopt, std::nullopt, nullptr, &out, &stats);
    // Exactly the candidate's own row, never a phantom from segment 0.
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].id, candidate);
    false_positives += stats.bloom_false_positives;
    bloom_pruned += stats.segments_pruned_bloom;
  }
  EXPECT_GT(false_positives, 0u);
  EXPECT_GT(bloom_pruned, 0u);  // ...and the bloom does prune the majority
  EXPECT_GT(bloom_pruned, false_positives);
}

TEST(SegmentStoreTest, SharedOpScanMatchesIndependentScans) {
  // Interleave two operations so per-op buckets matter.
  EventSegmentStore store(4);
  for (size_t r = 0; r < 12; ++r) {
    store.Append(static_cast<int64_t>(r), 1, 50 + static_cast<int64_t>(r),
                 /*op=*/static_cast<int64_t>(r % 2),
                 100 + 10 * static_cast<int64_t>(r),
                 100 + 10 * static_cast<int64_t>(r));
  }
  EventSegmentStore::OpScanProbe a;
  a.ops = {1, 0};  // declared order reversed vs ingestion
  a.window_start = int64_t{120};
  a.window_end = int64_t{180};
  EventSegmentStore::OpScanProbe b;
  b.ops = {0};
  std::vector<std::vector<EventRecord>> shared_out, solo_a, solo_b;
  std::vector<SegmentProbeStats> shared_stats, solo_stats;
  EXPECT_TRUE(store.SharedOpScan({a, b}, nullptr, &shared_out, &shared_stats));
  EXPECT_TRUE(store.SharedOpScan({a}, nullptr, &solo_a, &solo_stats));
  EXPECT_TRUE(store.SharedOpScan({b}, nullptr, &solo_b, &solo_stats));
  ASSERT_EQ(shared_out.size(), 2u);
  auto ids = [](const std::vector<EventRecord>& v) {
    std::vector<int64_t> out;
    for (const EventRecord& r : v) out.push_back(r.id);
    return out;
  };
  EXPECT_EQ(ids(shared_out[0]), ids(solo_a[0]));
  EXPECT_EQ(ids(shared_out[1]), ids(solo_b[0]));
  // Probe a: window keeps rows 2..8; op 1 (odd rows) first in declared
  // order, then op 0 (even rows), each ascending.
  EXPECT_EQ(ids(shared_out[0]),
            (std::vector<int64_t>{3, 5, 7, 2, 4, 6, 8}));
}

TEST(SegmentStoreTest, SharedOpScanHonorsCachedSegmentListAndStop) {
  EventSegmentStore store = MakeTinyStore(12);
  // A pinned segment list (as a cached plan would supply) limits the scan.
  std::vector<uint32_t> only_middle{1};
  EventSegmentStore::OpScanProbe probe;
  probe.ops = {1};
  probe.segments = &only_middle;
  std::vector<std::vector<EventRecord>> out;
  std::vector<SegmentProbeStats> stats;
  EXPECT_TRUE(store.SharedOpScan({probe}, nullptr, &out, &stats));
  ASSERT_EQ(out[0].size(), 4u);
  EXPECT_EQ(out[0][0].id, 4);
  EXPECT_EQ(out[0][3].id, 7);
  EXPECT_EQ(stats[0].segments_scanned, 1u);
  // A tripped stop callback reports an incomplete scan.
  std::function<bool()> stop = [] { return true; };
  EventSegmentStore::OpScanProbe full;
  full.ops = {1};
  EXPECT_FALSE(store.SharedOpScan({full}, &stop, &out, &stats));
  EXPECT_TRUE(out[0].empty());
}

TEST(DatabaseTest, SyncKeepsSegmentStoreAlignedAndBumpsGeneration) {
  audit::AuditLog log;
  audit::WorkloadGenerator gen;
  gen.GenerateBenign(100, &log);
  RelationalDatabase db;
  db.Load(log);
  EXPECT_EQ(db.event_segments().num_rows(), db.events().num_rows());
  uint64_t gen0 = db.generation();
  db.SyncWith(log);  // no new data: generation must hold
  EXPECT_EQ(db.generation(), gen0);
  gen.GenerateBenign(50, &log);
  db.SyncWith(log);
  EXPECT_EQ(db.event_segments().num_rows(), db.events().num_rows());
  EXPECT_GT(db.generation(), gen0);
}

}  // namespace
}  // namespace raptor::rel
