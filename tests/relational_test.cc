// Tests for the embedded relational engine (src/storage/relational).

#include <gtest/gtest.h>

#include "audit/generator.h"
#include "common/rng.h"
#include "storage/relational/database.h"
#include "storage/relational/table.h"

namespace raptor::rel {
namespace {

// --- Value. ---

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value(int64_t{3}).is_int());
  EXPECT_TRUE(Value(3.5).is_double());
  EXPECT_TRUE(Value("x").is_string());
  EXPECT_EQ(Value(int64_t{3}).AsInt(), 3);
  EXPECT_DOUBLE_EQ(Value(int64_t{3}).AsDouble(), 3.0);
  EXPECT_EQ(Value("abc").AsString(), "abc");
}

TEST(ValueTest, NumericCrossTypeComparison) {
  EXPECT_EQ(Value(int64_t{3}), Value(3.0));
  EXPECT_LT(Value(int64_t{2}), Value(2.5));
  EXPECT_GT(Value(3.5), Value(int64_t{3}));
}

TEST(ValueTest, StringComparison) {
  EXPECT_LT(Value("abc"), Value("abd"));
  EXPECT_EQ(Value("x"), Value("x"));
  // Mixed numeric/string ordering is stable: numerics first.
  EXPECT_LT(Value(int64_t{999}), Value("0"));
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value(int64_t{42}).ToString(), "42");
  EXPECT_EQ(Value("hi").ToString(), "hi");
}

// --- Predicates. ---

struct PredCase {
  CompareOp op;
  Value cell;
  Value rhs;
  bool expect;
};

class PredicateTest : public ::testing::TestWithParam<PredCase> {};

TEST_P(PredicateTest, Matches) {
  const PredCase& c = GetParam();
  Predicate p{0, c.op, c.rhs};
  Row row{c.cell};
  EXPECT_EQ(p.Matches(row), c.expect);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, PredicateTest,
    ::testing::Values(
        PredCase{CompareOp::kEq, Value(int64_t{5}), Value(int64_t{5}), true},
        PredCase{CompareOp::kEq, Value(int64_t{5}), Value(int64_t{6}), false},
        PredCase{CompareOp::kNe, Value("a"), Value("b"), true},
        PredCase{CompareOp::kLt, Value(int64_t{1}), Value(int64_t{2}), true},
        PredCase{CompareOp::kLe, Value(int64_t{2}), Value(int64_t{2}), true},
        PredCase{CompareOp::kGt, Value(int64_t{3}), Value(int64_t{2}), true},
        PredCase{CompareOp::kGe, Value(int64_t{1}), Value(int64_t{2}), false},
        PredCase{CompareOp::kLike, Value("/bin/tar"), Value("%tar%"), true},
        PredCase{CompareOp::kLike, Value("/bin/cat"), Value("%tar%"), false},
        PredCase{CompareOp::kNotLike, Value("/bin/cat"), Value("%tar%"),
                 true},
        PredCase{CompareOp::kLike, Value(int64_t{5}), Value("%5%"), false}));

TEST(PredicateTest, MatchesAllIsConjunction) {
  Conjunction preds{{0, CompareOp::kGe, Value(int64_t{10})},
                    {0, CompareOp::kLe, Value(int64_t{20})}};
  EXPECT_TRUE(MatchesAll(preds, Row{Value(int64_t{15})}));
  EXPECT_FALSE(MatchesAll(preds, Row{Value(int64_t{25})}));
  EXPECT_TRUE(MatchesAll({}, Row{Value(int64_t{1})}));
}

TEST(PredicateTest, ToStringRendering) {
  Schema schema{{"name", ColumnType::kString}};
  Predicate p{0, CompareOp::kLike, Value("%x%")};
  EXPECT_EQ(p.ToString(schema), "name LIKE '%x%'");
}

// --- Table. ---

Table MakePeopleTable() {
  Table t("people", Schema{{"id", ColumnType::kInt64},
                           {"name", ColumnType::kString},
                           {"age", ColumnType::kInt64}});
  const char* names[] = {"alice", "bob", "carol", "dave", "erin",
                         "frank", "grace", "heidi"};
  for (int i = 0; i < 8; ++i) {
    t.Insert({int64_t{i}, names[i], int64_t{20 + (i * 7) % 30}});
  }
  return t;
}

TEST(TableTest, InsertAndRowAccess) {
  Table t = MakePeopleTable();
  EXPECT_EQ(t.num_rows(), 8u);
  EXPECT_EQ(t.row(2)[1].AsString(), "carol");
}

TEST(TableTest, SelectFullScanWithoutIndex) {
  Table t = MakePeopleTable();
  ColumnId name = t.schema().Find("name");
  auto rows = t.Select({{name, CompareOp::kEq, Value("dave")}});
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], 3u);
  EXPECT_GT(t.stats().rows_scanned, 0u);
  EXPECT_EQ(t.stats().index_probes, 0u);
}

TEST(TableTest, SelectUsesIndexWhenAvailable) {
  Table t = MakePeopleTable();
  ASSERT_TRUE(t.CreateIndex("name").ok());
  t.ResetStats();
  auto rows = t.Select({{t.schema().Find("name"), CompareOp::kEq,
                         Value("dave")}});
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(t.stats().index_probes, 1u);
  EXPECT_EQ(t.stats().rows_scanned, 0u);
}

TEST(TableTest, IndexMaintainedAcrossInserts) {
  Table t("t", Schema{{"k", ColumnType::kInt64}});
  ASSERT_TRUE(t.CreateIndex("k").ok());
  for (int i = 0; i < 100; ++i) t.Insert({int64_t{i % 10}});
  auto rows = t.Select({{0, CompareOp::kEq, Value(int64_t{3})}});
  EXPECT_EQ(rows.size(), 10u);
}

TEST(TableTest, CreateIndexUnknownColumnFails) {
  Table t("t", Schema{{"k", ColumnType::kInt64}});
  EXPECT_TRUE(t.CreateIndex("nope").IsNotFound());
  EXPECT_TRUE(t.CreateIndex("k").ok());
  EXPECT_TRUE(t.CreateIndex("k").ok());  // idempotent
}

TEST(TableTest, RangeSelectViaIndex) {
  Table t("t", Schema{{"k", ColumnType::kInt64}});
  ASSERT_TRUE(t.CreateIndex("k").ok());
  for (int i = 0; i < 50; ++i) t.Insert({int64_t{i}});
  auto rows = t.Select({{0, CompareOp::kGe, Value(int64_t{40})}});
  EXPECT_EQ(rows.size(), 10u);
  rows = t.Select({{0, CompareOp::kLt, Value(int64_t{5})}});
  EXPECT_EQ(rows.size(), 5u);
  rows = t.Select({{0, CompareOp::kGt, Value(int64_t{44})},
                   {0, CompareOp::kLe, Value(int64_t{47})}});
  EXPECT_EQ(rows.size(), 3u);
}

TEST(TableTest, LikePrefixUsesIndexRange) {
  Table t("t", Schema{{"name", ColumnType::kString}});
  ASSERT_TRUE(t.CreateIndex("name").ok());
  t.Insert({"/bin/tar"});
  t.Insert({"/bin/cat"});
  t.Insert({"/usr/bin/tar"});
  t.ResetStats();
  auto rows = t.Select({{0, CompareOp::kLike, Value("/bin/%")}});
  EXPECT_EQ(rows.size(), 2u);
  EXPECT_EQ(t.stats().index_probes, 1u);
  EXPECT_EQ(t.stats().rows_scanned, 0u);
  // A leading-wildcard pattern cannot use the index.
  t.ResetStats();
  rows = t.Select({{0, CompareOp::kLike, Value("%tar%")}});
  EXPECT_EQ(rows.size(), 2u);
  EXPECT_GT(t.stats().rows_scanned, 0u);
}

TEST(TableTest, EmptyPredicatesReturnAllRows) {
  Table t = MakePeopleTable();
  EXPECT_EQ(t.Select({}).size(), 8u);
}

TEST(TableTest, EstimateEqualityMatches) {
  Table t("t", Schema{{"k", ColumnType::kInt64}});
  ASSERT_TRUE(t.CreateIndex("k").ok());
  for (int i = 0; i < 30; ++i) t.Insert({int64_t{i % 3}});
  EXPECT_EQ(t.EstimateEqualityMatches(0, Value(int64_t{1})), 10u);
  EXPECT_EQ(t.EstimateEqualityMatches(0, Value(int64_t{9})), 0u);
}

// Property: index-backed selection returns exactly what a full scan does.
class TableEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TableEquivalenceTest, IndexAndScanAgree) {
  raptor::Rng rng(GetParam());
  Table indexed("a", Schema{{"k", ColumnType::kInt64},
                            {"s", ColumnType::kString}});
  Table plain("b", Schema{{"k", ColumnType::kInt64},
                          {"s", ColumnType::kString}});
  ASSERT_TRUE(indexed.CreateIndex("k").ok());
  ASSERT_TRUE(indexed.CreateIndex("s").ok());
  for (int i = 0; i < 500; ++i) {
    int64_t k = static_cast<int64_t>(rng.Uniform(40));
    std::string s = "item_" + std::to_string(rng.Uniform(20));
    indexed.Insert({k, s});
    plain.Insert({k, s});
  }
  for (int trial = 0; trial < 50; ++trial) {
    Conjunction preds;
    if (rng.Chance(0.7)) {
      auto op = static_cast<CompareOp>(rng.Uniform(6));
      preds.push_back({0, op, Value(static_cast<int64_t>(rng.Uniform(40)))});
    }
    if (rng.Chance(0.5)) {
      preds.push_back({1, CompareOp::kEq,
                       Value("item_" + std::to_string(rng.Uniform(20)))});
    }
    if (rng.Chance(0.3)) {
      preds.push_back({1, CompareOp::kLike, Value("item_1%")});
    }
    EXPECT_EQ(indexed.Select(preds), plain.Select(preds));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TableEquivalenceTest,
                         ::testing::Values(11, 22, 33, 44));

// --- RelationalDatabase. ---

TEST(DatabaseTest, LoadsAllEntitiesAndEvents) {
  audit::AuditLog log;
  audit::WorkloadGenerator gen;
  gen.GenerateBenign(2000, &log);
  RelationalDatabase db;
  db.Load(log);
  EXPECT_EQ(db.events().num_rows(), log.event_count());
  size_t entity_rows = db.files().num_rows() + db.procs().num_rows() +
                       db.nets().num_rows();
  EXPECT_EQ(entity_rows, log.entity_count());
}

TEST(DatabaseTest, EntityTableDispatch) {
  RelationalDatabase db;
  EXPECT_EQ(&db.EntityTable(audit::EntityType::kFile), &db.files());
  EXPECT_EQ(&db.EntityTable(audit::EntityType::kProcess), &db.procs());
  EXPECT_EQ(&db.EntityTable(audit::EntityType::kNetwork), &db.nets());
}

TEST(DatabaseTest, ExenameIndexProbeFindsProcess) {
  audit::AuditLog log;
  audit::WorkloadGenerator gen;
  gen.GenerateBenign(1000, &log);
  RelationalDatabase db;
  db.Load(log);
  db.ResetStats();
  ColumnId exe = db.procs().schema().Find("exename");
  auto rows = db.procs().Select({{exe, CompareOp::kEq,
                                  Value("/usr/sbin/apache2")}});
  EXPECT_FALSE(rows.empty());
  EXPECT_GT(db.procs().stats().index_probes, 0u);
}

TEST(DatabaseTest, StatsAccumulateAndReset) {
  audit::AuditLog log;
  audit::WorkloadGenerator gen;
  gen.GenerateBenign(100, &log);
  RelationalDatabase db;
  db.Load(log);
  db.ResetStats();
  EXPECT_EQ(db.TotalRowsTouched(), 0u);
  (void)db.events().Select({});
  EXPECT_EQ(db.TotalRowsTouched(), log.event_count());
}

// --- Resource accounting (bytes touched, access-path counters). ---

TEST(TableTest, FullScanChargesWholeTableBytes) {
  Table t = MakePeopleTable();
  ASSERT_GT(t.ApproxDataBytes(), 0u);
  t.ResetStats();
  ColumnId name = t.schema().Find("name");
  (void)t.Select({{name, CompareOp::kEq, Value("dave")}});
  EXPECT_EQ(t.stats().full_scans, 1u);
  // A scan reads every row: bytes touched is the whole data footprint.
  EXPECT_EQ(t.stats().bytes_touched, t.ApproxDataBytes());
}

TEST(TableTest, IndexProbeChargesOnlyMatchedRows) {
  Table t = MakePeopleTable();
  ASSERT_TRUE(t.CreateIndex("name").ok());
  t.ResetStats();
  (void)t.Select({{t.schema().Find("name"), CompareOp::kEq, Value("dave")}});
  EXPECT_EQ(t.stats().full_scans, 0u);
  // One matched row: bytes touched is the average row width, far below the
  // whole table.
  EXPECT_EQ(t.stats().bytes_touched, t.AvgRowBytes());
  EXPECT_LT(t.stats().bytes_touched, t.ApproxDataBytes());
}

TEST(TableTest, EmptyPredicateSelectIsAFullScan) {
  Table t = MakePeopleTable();
  t.ResetStats();
  (void)t.Select({});
  EXPECT_EQ(t.stats().full_scans, 1u);
  EXPECT_EQ(t.stats().bytes_touched, t.ApproxDataBytes());
}

TEST(TableTest, ApproxBytesGrowWithRowsAndIndexes) {
  Table t("t", Schema{{"k", ColumnType::kInt64},
                      {"s", ColumnType::kString}});
  EXPECT_EQ(t.ApproxDataBytes(), 0u);
  EXPECT_EQ(t.AvgRowBytes(), 0u);
  t.Insert({int64_t{1}, "some string payload"});
  size_t one_row = t.ApproxDataBytes();
  EXPECT_GT(one_row, 0u);
  t.Insert({int64_t{2}, "another string payload"});
  EXPECT_GT(t.ApproxDataBytes(), one_row);
  EXPECT_GT(t.AvgRowBytes(), 0u);
  EXPECT_EQ(t.ApproxIndexBytes(), 0u);
  ASSERT_TRUE(t.CreateIndex("k").ok());
  EXPECT_GT(t.ApproxIndexBytes(), 0u);
  EXPECT_EQ(t.ApproxBytes(), t.ApproxDataBytes() + t.ApproxIndexBytes());
}

TEST(DatabaseTest, ApproxBytesCoverLoadedTables) {
  audit::AuditLog log;
  audit::WorkloadGenerator gen;
  gen.GenerateBenign(200, &log);
  RelationalDatabase db;
  db.Load(log);
  // Four tables of real rows plus their indexes: the footprint estimate
  // must be material, and at least the sum of the event rows.
  EXPECT_GT(db.ApproxBytes(), db.events().ApproxDataBytes());
}

}  // namespace
}  // namespace raptor::rel
