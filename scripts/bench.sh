#!/usr/bin/env bash
# Runs the bench suite in machine-readable mode and writes one
# BENCH_<name>.json per bench at the repo root — the perf trajectory that
# later optimization PRs diff against.
#
# Custom experiment harnesses use their --json mode; google-benchmark
# binaries use --benchmark_format=json. Every document is validated with
# the json_check tool before it lands.
#
# Usage: scripts/bench.sh [build-dir] [--compare]   (default dir: build)
#
# --compare: instead of overwriting the committed BENCH_*.json baselines,
# write the fresh documents to <build-dir>/bench-current and run
# bench_compare.py against every committed baseline — the CI perf gate as
# a one-liner.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="build"
COMPARE=0
for arg in "$@"; do
  case "$arg" in
    --compare) COMPARE=1 ;;
    -*) echo "usage: $0 [build-dir] [--compare]" >&2; exit 2 ;;
    *) BUILD="$arg" ;;
  esac
done

OUT="."
if [ "$COMPARE" -eq 1 ]; then
  OUT="$BUILD/bench-current"
  mkdir -p "$OUT"
fi

if [ ! -x "$BUILD/examples/json_check" ]; then
  echo "bench.sh: $BUILD/examples/json_check not built; run cmake --build $BUILD first" >&2
  exit 1
fi

# Benches with the bench_util.h --json mode.
CUSTOM="bench_cpr bench_ingest bench_execution bench_conciseness \
  bench_extraction bench_synthesis bench_ioc_baseline bench_hunt_leakage \
  bench_hunt_password bench_stats_overhead"
# Google-benchmark binaries with native JSON reporters.
GBENCH="bench_paths bench_obs_overhead bench_log_overhead bench_profiler_overhead \
  bench_history_overhead"

for b in $CUSTOM; do
  name="${b#bench_}"
  echo "=== $b -> $OUT/BENCH_${name}.json ==="
  "$BUILD/bench/$b" --json > "$OUT/BENCH_${name}.json"
  "$BUILD/examples/json_check" "$OUT/BENCH_${name}.json"
done

for b in $GBENCH; do
  name="${b#bench_}"
  echo "=== $b -> $OUT/BENCH_${name}.json ==="
  "$BUILD/bench/$b" --benchmark_format=json > "$OUT/BENCH_${name}.json"
  "$BUILD/examples/json_check" "$OUT/BENCH_${name}.json"
done

echo "bench.sh: all bench documents written and validated"

if [ "$COMPARE" -eq 1 ]; then
  echo "=== bench_compare.py against committed baselines ==="
  scripts/bench_compare.py --baseline-dir . --current-dir "$OUT"
fi
