#!/usr/bin/env python3
"""Compare a fresh bench run against the committed BENCH_*.json baselines.

Fails (exit 1) when any benchmark's latency regressed by more than the
threshold (default 25%). Understands both JSON formats the repo emits:

  * bench_util documents: {"bench": ..., "tables": [{"columns": [...,
    "ms", ...], "rows": [...]}]}. Each row is keyed by the column values
    preceding the "ms" column (e.g. query/mode/events) and its "ms" value
    is the latency.
  * google-benchmark documents: {"benchmarks": [{"name": ...,
    "real_time": ..., "time_unit": ...}]}. Each entry is keyed by name and
    real_time (normalized to ms) is the latency.

Very small timings are skipped (--min-ms, default 0.05 ms): below that,
CI-runner noise dwarfs any real regression and the gate would flap.

Usage:
  scripts/bench_compare.py --baseline-dir . --current-dir fresh/ \
      [--threshold 0.25] [--min-ms 0.05]
"""

import argparse
import glob
import json
import os
import sys

UNIT_TO_MS = {"ns": 1e-6, "us": 1e-3, "ms": 1.0, "s": 1e3}


def load_latencies(path):
    """Returns {key: latency_ms} for either bench JSON format."""
    with open(path) as f:
        doc = json.load(f)
    out = {}
    if "benchmarks" in doc:  # google-benchmark format
        for entry in doc["benchmarks"]:
            if entry.get("run_type") == "aggregate":
                continue
            scale = UNIT_TO_MS.get(entry.get("time_unit", "ns"), 1e-6)
            out[entry["name"]] = float(entry["real_time"]) * scale
    elif "tables" in doc:  # bench_util format
        for table in doc["tables"]:
            columns = table.get("columns", [])
            if "ms" not in columns:
                continue
            ms_index = columns.index("ms")
            for row in table.get("rows", []):
                key_parts = [str(v) for v in row[:ms_index]]
                key = "%s[%s]" % (table.get("name", "?"), "/".join(key_parts))
                # Repeated keys (sweeps over a hidden variable) keep the max
                # so a regression in any repetition is still visible.
                value = float(row[ms_index])
                out[key] = max(out.get(key, 0.0), value)
    return out


def compare_file(name, baseline, current, threshold, min_ms):
    """Returns a list of regression descriptions for one bench document."""
    regressions = []
    compared = skipped = 0
    for key, base_ms in sorted(baseline.items()):
        if key not in current:
            print("  ~ %s: missing from current run, skipped" % key)
            continue
        cur_ms = current[key]
        if base_ms < min_ms:
            skipped += 1
            continue
        compared += 1
        ratio = cur_ms / base_ms if base_ms > 0 else float("inf")
        if ratio > 1.0 + threshold:
            regressions.append(
                "%s :: %s: %.4f ms -> %.4f ms (%.0f%% slower)"
                % (name, key, base_ms, cur_ms, (ratio - 1.0) * 100.0)
            )
    print(
        "  %s: %d compared, %d below %.3f ms noise floor, %d regressed"
        % (name, compared, skipped, min_ms, len(regressions))
    )
    return regressions


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline-dir", default=".",
                        help="directory holding committed BENCH_*.json")
    parser.add_argument("--current-dir", required=True,
                        help="directory holding the fresh BENCH_*.json run")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="allowed fractional slowdown (0.25 = 25%%)")
    parser.add_argument("--min-ms", type=float, default=0.05,
                        help="ignore baselines faster than this (noise)")
    args = parser.parse_args()

    baselines = sorted(glob.glob(os.path.join(args.baseline_dir,
                                              "BENCH_*.json")))
    if not baselines:
        print("bench_compare: no BENCH_*.json baselines in %s"
              % args.baseline_dir, file=sys.stderr)
        return 2

    all_regressions = []
    for baseline_path in baselines:
        name = os.path.basename(baseline_path)
        current_path = os.path.join(args.current_dir, name)
        if not os.path.exists(current_path):
            print("  ~ %s: not produced by current run, skipped" % name)
            continue
        all_regressions += compare_file(
            name,
            load_latencies(baseline_path),
            load_latencies(current_path),
            args.threshold,
            args.min_ms,
        )

    if all_regressions:
        print("\nbench_compare: FAIL — %d regression(s) above %.0f%%:"
              % (len(all_regressions), args.threshold * 100.0))
        for regression in all_regressions:
            print("  ! " + regression)
        return 1
    print("\nbench_compare: OK — no regression above %.0f%%"
          % (args.threshold * 100.0))
    return 0


if __name__ == "__main__":
    sys.exit(main())
