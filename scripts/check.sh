#!/usr/bin/env bash
# Full verification pass: Release build + tests + benches, then an
# ASan+UBSan build + tests. What CI would run. Both configurations build
# with -Werror (RAPTOR_WERROR=ON).
#
# --bench-smoke: stop after the bench smoke step (build + tests + one tiny
# bench in --json mode validated by json_check) — the quick CI path.
# --asan-only: skip the Release half and run just the sanitized build +
# tests — the second CI job, so the two halves run in parallel.
# --tsan: ThreadSanitizer build (RAPTOR_TSAN=ON), then just the Parallel*
# test suites — the concurrency gate for the thread-pool execution paths.
# --ubsan: UBSan-only build (RAPTOR_UBSAN=ON) + full tests — catches UB
# that ASan's instrumentation happens to mask, and runs faster than the
# combined sanitizer job.
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH_SMOKE_ONLY=0
ASAN_ONLY=0
TSAN_ONLY=0
UBSAN_ONLY=0
for arg in "$@"; do
  case "$arg" in
    --bench-smoke) BENCH_SMOKE_ONLY=1 ;;
    --asan-only) ASAN_ONLY=1 ;;
    --tsan) TSAN_ONLY=1 ;;
    --ubsan) UBSAN_ONLY=1 ;;
    *) echo "usage: $0 [--bench-smoke|--asan-only|--tsan|--ubsan]" >&2; exit 2 ;;
  esac
done

if [ "$UBSAN_ONLY" -eq 1 ]; then
  echo "=== UBSan build ==="
  cmake -B build-ubsan -G Ninja -DCMAKE_BUILD_TYPE=Debug -DRAPTOR_UBSAN=ON -DRAPTOR_WERROR=ON >/dev/null
  cmake --build build-ubsan

  echo "=== Tests (UBSan) ==="
  ctest --test-dir build-ubsan --output-on-failure

  echo "UBSAN CHECKS PASSED"
  exit 0
fi

if [ "$TSAN_ONLY" -eq 1 ]; then
  echo "=== TSan build ==="
  cmake -B build-tsan -G Ninja -DCMAKE_BUILD_TYPE=Debug -DRAPTOR_TSAN=ON -DRAPTOR_WERROR=ON >/dev/null
  cmake --build build-tsan

  echo "=== Parallel tests (TSan) ==="
  ctest --test-dir build-tsan -R Parallel --output-on-failure

  echo "TSAN CHECKS PASSED"
  exit 0
fi

if [ "$ASAN_ONLY" -eq 1 ]; then
  echo "=== ASan+UBSan build ==="
  cmake -B build-asan -G Ninja -DCMAKE_BUILD_TYPE=Debug -DASAN=ON -DRAPTOR_WERROR=ON >/dev/null
  cmake --build build-asan

  echo "=== Tests (sanitized) ==="
  ctest --test-dir build-asan --output-on-failure

  echo "ASAN CHECKS PASSED"
  exit 0
fi

echo "=== Release build ==="
cmake -B build -G Ninja -DRAPTOR_WERROR=ON >/dev/null
cmake --build build

echo "=== Tests (Release) ==="
ctest --test-dir build --output-on-failure

echo "=== Bench smoke (--json output parses) ==="
build/bench/bench_conciseness --json > build/BENCH_smoke.json
build/examples/json_check build/BENCH_smoke.json

if [ "$BENCH_SMOKE_ONLY" -eq 1 ]; then
  echo "BENCH SMOKE PASSED"
  exit 0
fi

echo "=== Benches ==="
for b in build/bench/*; do
  [ -x "$b" ] && [ -f "$b" ] && "$b"
done

echo "=== ASan+UBSan build ==="
cmake -B build-asan -G Ninja -DCMAKE_BUILD_TYPE=Debug -DASAN=ON -DRAPTOR_WERROR=ON >/dev/null
cmake --build build-asan

echo "=== Tests (sanitized) ==="
ctest --test-dir build-asan --output-on-failure

echo "ALL CHECKS PASSED"
