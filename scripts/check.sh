#!/usr/bin/env bash
# Full verification pass: Release build + tests + benches, then an
# ASan+UBSan build + tests. What CI would run.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "=== Release build ==="
cmake -B build -G Ninja >/dev/null
cmake --build build

echo "=== Tests (Release) ==="
ctest --test-dir build --output-on-failure

echo "=== Benches ==="
for b in build/bench/*; do
  [ -x "$b" ] && [ -f "$b" ] && "$b"
done

echo "=== ASan+UBSan build ==="
cmake -B build-asan -G Ninja -DCMAKE_BUILD_TYPE=Debug -DASAN=ON >/dev/null
cmake --build build-asan

echo "=== Tests (sanitized) ==="
ctest --test-dir build-asan --output-on-failure

echo "ALL CHECKS PASSED"
