// Core data model for system audit logging (paper §II-A).
//
// System auditing records interactions among system entities as system
// events. Following the paper (and the AIQL/SAQL convention it cites),
// entities are files, processes, and network connections; an event is
// (subject, operation, object) where the subject is always a process.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"

namespace raptor::audit {

/// Monotonic timestamp in nanoseconds since the trace epoch.
using Timestamp = int64_t;

/// Dense entity identifier assigned by the AuditLog on interning.
using EntityId = uint64_t;

/// Dense event identifier (position-stable within an AuditLog).
using EventId = uint64_t;

constexpr EntityId kInvalidEntityId = ~0ULL;

/// \brief The three entity kinds the auditing component captures.
enum class EntityType : uint8_t {
  kFile = 0,
  kProcess = 1,
  kNetwork = 2,
};

/// \brief System call operations, grouped by the paper's three event types:
/// file events, process events, and network events.
enum class Operation : uint8_t {
  // File events.
  kRead = 0,
  kWrite,
  kExecute,
  kDelete,
  kRename,
  kChmod,
  // Process events.
  kFork,
  kStart,
  kKill,
  // Network events.
  kConnect,
  kAccept,
  kSend,
  kRecv,
};

/// Event category derived from the object entity type (paper §II-A).
enum class EventCategory : uint8_t { kFileEvent, kProcessEvent, kNetworkEvent };

/// \brief A system entity with the representative attributes the paper lists:
/// file name/path, process executable name and pid, src/dst IP and port.
///
/// Only the fields relevant to the entity's type are meaningful; the others
/// stay empty/zero. Entities are value types owned by an AuditLog.
struct SystemEntity {
  EntityId id = kInvalidEntityId;
  EntityType type = EntityType::kFile;

  // File attributes.
  std::string path;  ///< Absolute file path ("name" attribute in TBQL).

  // Process attributes.
  std::string exename;  ///< Executable path.
  uint32_t pid = 0;

  // Network connection attributes.
  std::string src_ip;
  std::string dst_ip;
  uint16_t src_port = 0;
  uint16_t dst_port = 0;
  std::string protocol;  ///< "tcp" or "udp".

  /// Stable deduplication key: same key => same logical entity.
  std::string Key() const;

  /// Human-readable one-line rendering for diagnostics.
  std::string ToString() const;
};

/// \brief A system event: subject process performs `op` on an object entity.
struct SystemEvent {
  EventId id = 0;
  EntityId subject = kInvalidEntityId;  ///< Always a process.
  EntityId object = kInvalidEntityId;
  Operation op = Operation::kRead;
  Timestamp start_time = 0;
  Timestamp end_time = 0;
  uint64_t bytes = 0;  ///< Data amount for read/write/send/recv.
  /// Number of raw events folded into this record by CPR (>= 1).
  uint32_t merged_count = 1;
};

/// Enum <-> string conversions (used by the parser, TBQL, and printers).
std::string_view EntityTypeName(EntityType type);
std::string_view OperationName(Operation op);
Result<EntityType> ParseEntityType(std::string_view name);
Result<Operation> ParseOperation(std::string_view name);

/// Categorizes an operation into file/process/network events.
EventCategory CategoryOf(Operation op);

/// Entity type an operation's object must have (e.g. kRead -> kFile).
EntityType ObjectTypeOf(Operation op);

}  // namespace raptor::audit
