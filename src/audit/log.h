// AuditLog: in-memory container for parsed system audit logging data.
//
// Owns all entities and events of a trace. Entities are interned: inserting
// an entity with a key already present returns the existing id, so the same
// file path or process appearing in many log lines maps to one entity, the
// invariant both storage backends rely on.

#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "audit/types.h"

namespace raptor::audit {

/// \brief Owning container for the entities and events of one trace.
class AuditLog {
 public:
  AuditLog() = default;

  // Movable, not copyable (traces can be large).
  AuditLog(const AuditLog&) = delete;
  AuditLog& operator=(const AuditLog&) = delete;
  AuditLog(AuditLog&&) = default;
  AuditLog& operator=(AuditLog&&) = default;

  /// Interns `entity` and returns its id. If an entity with the same Key()
  /// exists, returns the existing id and leaves the stored entity unchanged.
  EntityId AddEntity(SystemEntity entity);

  /// Appends an event; subject/object ids must have been interned. Assigns
  /// and returns the event id.
  EventId AddEvent(SystemEvent event);

  /// Convenience: interns a file entity for `path`.
  EntityId InternFile(std::string path);
  /// Convenience: interns a process entity.
  EntityId InternProcess(uint32_t pid, std::string exename);
  /// Convenience: interns a network connection entity.
  EntityId InternNetwork(std::string src_ip, uint16_t src_port,
                         std::string dst_ip, uint16_t dst_port,
                         std::string protocol = "tcp");

  const SystemEntity& entity(EntityId id) const { return entities_[id]; }
  const SystemEvent& event(EventId id) const { return events_[id]; }

  const std::vector<SystemEntity>& entities() const { return entities_; }
  const std::vector<SystemEvent>& events() const { return events_; }

  size_t entity_count() const { return entities_.size(); }
  size_t event_count() const { return events_.size(); }

  /// Looks up an interned entity by key; kInvalidEntityId when absent.
  EntityId FindByKey(const std::string& key) const;

  /// Replaces the event vector (used by CPR, which rewrites events).
  void ReplaceEvents(std::vector<SystemEvent> events);

  /// Approximate bytes held by the log (entities, interning map, events),
  /// maintained incrementally. A plain counter so the log stays cheaply
  /// movable; the owner (ThreatRaptor) charges deltas to the
  /// ResourceTracker's ingest component.
  size_t ApproxBytes() const { return approx_bytes_; }

 private:
  std::vector<SystemEntity> entities_;
  std::vector<SystemEvent> events_;
  std::unordered_map<std::string, EntityId> key_to_id_;
  size_t approx_bytes_ = 0;
};

}  // namespace raptor::audit
