// Parser for Sysdig's default text output (paper §II-A: "THREATRAPTOR
// leverages a mature system auditing framework, Sysdig, to collect system
// audit logs from a host").
//
// Sysdig's default line format is
//
//   %evt.num %evt.outputtime %evt.cpu %proc.name (%proc.pid) %evt.dir
//   %evt.type %evt.info
//
// e.g.
//
//   100123 16:31:57.779817000 0 tar (842) < read res=4096
//       data=... fd=5(<f>/etc/passwd)            (one line)
//   100126 16:31:58.100000000 1 curl (905) < connect res=0
//       fd=3(<4t>10.10.2.15:51710->161.35.10.8:8080)  (one line)
//   100125 16:31:58.000000000 0 bash (900) < clone res=901 exe=/bin/bash
//   100127 16:31:58.200000000 0 bash (900) < execve res=0 exe=/tmp/cracker
//
// This parser consumes exit-direction ('<') events — the ones carrying
// results — and maps system calls onto the audit model:
//
//   read/readv/pread      -> kRead   (kRecv when the fd is a socket)
//   write/writev/pwrite   -> kWrite  (kSend when the fd is a socket)
//   sendto/sendmsg        -> kSend
//   recvfrom/recvmsg      -> kRecv
//   connect               -> kConnect    accept/accept4 -> kAccept
//   clone/fork/vfork      -> kFork (res > 0, exe = child image)
//   execve                -> kExecute on the image file
//   unlink/unlinkat       -> kDelete     rename/renameat -> kRename
//   chmod/fchmod          -> kChmod
//
// Enter-direction events, unknown syscalls, and events on fds without a
// usable annotation are skipped (counted, not errors) — exactly what a
// deployment does with the Sysdig firehose.

#pragma once

#include <string>
#include <string_view>

#include "audit/log.h"
#include "common/result.h"

namespace raptor::audit {

/// \brief Outcome counters for a parse pass.
struct SysdigParseStats {
  size_t lines = 0;
  size_t events = 0;    ///< Lines that became audit events.
  size_t skipped = 0;   ///< Enter events / unsupported syscalls / no fd info.
  size_t malformed = 0; ///< Lines that did not match the format at all.
};

/// \brief Parser for Sysdig default-format text.
class SysdigParser {
 public:
  /// Parses one line; returns the new event id, NotFound when the line is
  /// valid Sysdig but skipped (enter event, unsupported call), or
  /// ParseError when malformed.
  static Result<EventId> ParseLine(std::string_view line, AuditLog* log);

  /// Parses a whole capture, tolerating skipped lines. Only malformed
  /// lines count against the caller; the stats tell the story.
  static SysdigParseStats ParseText(std::string_view text, AuditLog* log);

  /// Renders an audit event in Sysdig's output format (round-trips through
  /// ParseLine for all supported operation types).
  static std::string FormatEvent(const AuditLog& log, const SystemEvent& event,
                                 uint64_t event_number);
};

}  // namespace raptor::audit
