// Synthetic audit workload generator (substitute for the paper's live
// Sysdig deployment; see DESIGN.md "Substitutions").
//
// The paper's demo (§III) runs two multi-step attacks on a server that
// "continues to resume its routine tasks", so benign and malicious activity
// co-exist. This generator reproduces that setting with ground truth:
// GenerateBenign() emits realistic background system activity (skewed
// process/file popularity, bursty read/write runs that CPR can fold), and
// the Inject*Attack() methods append the exact event chains of the paper's
// two attack scenarios, returning the injected event ids so benches can
// score hunting precision/recall.

#pragma once

#include <string>
#include <vector>

#include "audit/log.h"
#include "common/rng.h"

namespace raptor::audit {

/// \brief Knobs for the benign background workload.
struct GeneratorOptions {
  uint64_t seed = 42;
  size_t num_processes = 40;   ///< Distinct benign process images.
  size_t num_files = 400;      ///< Distinct benign file paths.
  size_t num_remote_ips = 25;  ///< Distinct benign remote endpoints.
  /// Mean inter-event gap; timestamps advance by a jittered multiple.
  Timestamp mean_gap_ns = 1'000'000;  // 1 ms
  /// Probability that a read/write event expands into a burst of identical
  /// syscall-level events (the behavior CPR targets).
  double burst_probability = 0.15;
  size_t burst_max_len = 12;
  /// Probability of a *legitimate* sensitive-resource touch: sshd reading
  /// /etc/passwd and /etc/shadow during logins, the nightly backup job
  /// reading /etc/passwd into an archive. These are exactly the events an
  /// isolated-IOC matcher false-positives on (bench_ioc_baseline, E10)
  /// while behavior-graph hunting — which requires the whole chain under
  /// one process with the right temporal order — ignores them.
  double sensitive_touch_probability = 0.01;
};

/// \brief Ground truth for one injected attack.
struct AttackTrace {
  std::string name;
  std::vector<EventId> event_ids;  ///< Every event the attack generated.
  /// The subset of event_ids that the report text narrates — what a
  /// perfectly synthesized query can be expected to retrieve. Hunting
  /// recall is scored against this set; the un-narrated remainder (fork
  /// chains, protocol handshakes) is only reachable via path patterns or
  /// manual follow-up queries.
  std::vector<EventId> core_event_ids;
  /// The OSCTI-style natural language description of the attack, written the
  /// way a threat report would describe it. Feeding this to the NLP pipeline
  /// reproduces the paper's end-to-end usage scenario.
  std::string report_text;
};

/// \brief Deterministic generator for benign noise and scripted attacks.
///
/// All methods advance one shared monotonic clock, so interleaving calls
/// (benign, attack, more benign) yields a single coherent timeline.
class WorkloadGenerator {
 public:
  explicit WorkloadGenerator(GeneratorOptions options = {});

  /// Appends `count` benign events to `log`.
  void GenerateBenign(size_t count, AuditLog* log);

  /// §III attack 1: "Password Cracking After Shellshock Penetration".
  /// Shellshock penetration -> Dropbox image with C2 address in EXIF ->
  /// download password cracker from C2 -> crack /etc/shadow -> exfiltrate.
  AttackTrace InjectPasswordCrackingAttack(AuditLog* log);

  /// §III attack 2: "Data Leakage After Shellshock Penetration" (the
  /// Figure 2 pipeline): scan file system -> tar sensitive files -> gzip ->
  /// transfer the archive to the C2 server.
  AttackTrace InjectDataLeakageAttack(AuditLog* log);

  /// Appends a chain of processes fork-chained from `root_exe`, ending with
  /// the final process performing `final_op` on a file `target_path`.
  /// Used by the variable-length path pattern benches (§II-D advanced
  /// syntax). Returns the generated event ids.
  std::vector<EventId> InjectForkChain(const std::string& root_exe,
                                       size_t chain_len, Operation final_op,
                                       const std::string& target_path,
                                       AuditLog* log);

  Timestamp now() const { return now_; }

  // Fixed addresses used by the attack scripts (also referenced by the
  // built-in CTI corpus so that extraction and hunting line up).
  static constexpr const char* kAttackerIp = "162.211.33.7";
  static constexpr const char* kVictimIp = "10.10.2.15";
  static constexpr const char* kDropboxIp = "108.160.172.1";
  static constexpr const char* kC2Ip = "161.35.10.8";

 private:
  Timestamp Tick();
  EventId EmitFileEvent(AuditLog* log, EntityId proc, Operation op,
                        const std::string& path, uint64_t bytes);
  EventId EmitForkEvent(AuditLog* log, EntityId parent, uint32_t child_pid,
                        const std::string& child_exe, EntityId* child_out);
  EventId EmitNetEvent(AuditLog* log, EntityId proc, Operation op,
                       const std::string& src_ip, uint16_t src_port,
                       const std::string& dst_ip, uint16_t dst_port,
                       uint64_t bytes);

  GeneratorOptions options_;
  Rng rng_;
  Timestamp now_ = 0;
  uint32_t next_pid_ = 10000;

  // Benign entity pools, materialized lazily on first use.
  std::vector<std::string> benign_exes_;
  std::vector<std::string> benign_files_;
  std::vector<std::string> benign_ips_;
  std::vector<uint32_t> benign_pids_;
};

}  // namespace raptor::audit
