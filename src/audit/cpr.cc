#include "audit/cpr.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

namespace raptor::audit {

namespace {

/// Merge key: events fold only within the same (subject, object, operation)
/// group.
struct GroupKey {
  EntityId subject;
  EntityId object;
  Operation op;

  bool operator==(const GroupKey&) const = default;
};

struct GroupKeyHash {
  size_t operator()(const GroupKey& k) const {
    size_t h = std::hash<uint64_t>()(k.subject);
    h = h * 1315423911u ^ std::hash<uint64_t>()(k.object);
    h = h * 1315423911u ^ static_cast<size_t>(k.op);
    return h;
  }
};

}  // namespace

CprStats ReduceLog(AuditLog* log, const CprOptions& options,
                   std::vector<EventId>* old_to_new) {
  CprStats stats;
  stats.events_before = log->event_count();
  if (old_to_new != nullptr) {
    old_to_new->assign(stats.events_before, 0);
  }

  std::vector<SystemEvent> sorted = log->events();
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const SystemEvent& a, const SystemEvent& b) {
                     return a.start_time < b.start_time;
                   });

  // Pending merged events, one per open group, plus a per-entity index of
  // the groups each entity participates in. An incoming event acts as a
  // causality barrier: it flushes every open group that shares an entity
  // with it but has a different key, because merging across that event would
  // change what dependency tracking observes at the shared entity.
  std::vector<SystemEvent> out;
  out.reserve(sorted.size());
  std::unordered_map<GroupKey, size_t, GroupKeyHash> open;  // key -> out index
  std::unordered_map<EntityId, std::vector<GroupKey>> by_entity;

  auto flush_groups_touching = [&](EntityId entity, const GroupKey& except) {
    auto it = by_entity.find(entity);
    if (it == by_entity.end()) return;
    for (const GroupKey& key : it->second) {
      if (key == except) continue;
      open.erase(key);
    }
    it->second.clear();
    if (except.subject == entity || except.object == entity) {
      it->second.push_back(except);
    }
  };

  for (const SystemEvent& ev : sorted) {
    GroupKey key{ev.subject, ev.object, ev.op};
    flush_groups_touching(ev.subject, key);
    flush_groups_touching(ev.object, key);

    auto it = open.find(key);
    if (it != open.end()) {
      SystemEvent& pending = out[it->second];
      if (ev.start_time - pending.end_time <= options.max_merge_gap_ns) {
        pending.end_time = std::max(pending.end_time, ev.end_time);
        pending.bytes += ev.bytes;
        pending.merged_count += ev.merged_count;
        if (old_to_new != nullptr) (*old_to_new)[ev.id] = it->second;
        continue;
      }
      // Gap too large: close the old group and start a new one.
      open.erase(it);
    }

    if (old_to_new != nullptr) (*old_to_new)[ev.id] = out.size();
    open[key] = out.size();
    auto& groups_s = by_entity[ev.subject];
    if (std::find(groups_s.begin(), groups_s.end(), key) == groups_s.end()) {
      groups_s.push_back(key);
    }
    auto& groups_o = by_entity[ev.object];
    if (std::find(groups_o.begin(), groups_o.end(), key) == groups_o.end()) {
      groups_o.push_back(key);
    }
    out.push_back(ev);
  }

  log->ReplaceEvents(std::move(out));
  stats.events_after = log->event_count();
  return stats;
}

}  // namespace raptor::audit
