#include "audit/cpr.h"

#include <algorithm>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/thread_pool.h"

namespace raptor::audit {

namespace {

/// Merge key: events fold only within the same (subject, object, operation)
/// group.
struct GroupKey {
  EntityId subject;
  EntityId object;
  Operation op;

  bool operator==(const GroupKey&) const = default;
};

struct GroupKeyHash {
  size_t operator()(const GroupKey& k) const {
    size_t h = std::hash<uint64_t>()(k.subject);
    h = h * 1315423911u ^ std::hash<uint64_t>()(k.object);
    h = h * 1315423911u ^ static_cast<size_t>(k.op);
    return h;
  }
};

/// Stable sort by start time, parallelized as a merge sort: sorted runs are
/// built concurrently, then pairwise stable merges fold them together. The
/// run boundaries depend only on (size, run count) and std::merge takes ties
/// from the left range first, so the output is byte-identical to a serial
/// std::stable_sort at any thread count.
void StableSortByStartTime(std::vector<SystemEvent>* events,
                           size_t num_threads) {
  auto cmp = [](const SystemEvent& a, const SystemEvent& b) {
    return a.start_time < b.start_time;
  };
  const size_t n = events->size();
  const size_t threads =
      num_threads == 0 ? ThreadPool::HardwareThreads() : num_threads;
  constexpr size_t kMinParallelSort = 32 * 1024;
  if (threads <= 1 || n < kMinParallelSort) {
    std::stable_sort(events->begin(), events->end(), cmp);
    return;
  }

  ThreadPool& pool = ThreadPool::Shared();
  size_t nruns = 1;  // power of two, so merge rounds pair cleanly
  while (nruns < threads) nruns <<= 1;
  const size_t per = (n + nruns - 1) / nruns;
  std::vector<std::pair<size_t, size_t>> bounds(nruns);
  for (size_t r = 0; r < nruns; ++r) {
    bounds[r] = {std::min(n, r * per), std::min(n, (r + 1) * per)};
  }
  pool.ParallelFor(
      nruns, 1,
      [&](size_t, size_t begin, size_t end) {
        for (size_t r = begin; r < end; ++r) {
          std::stable_sort(events->begin() + bounds[r].first,
                           events->begin() + bounds[r].second, cmp);
        }
      },
      threads);

  std::vector<SystemEvent> buf(n);
  std::vector<SystemEvent>* src = events;
  std::vector<SystemEvent>* dst = &buf;
  for (size_t width = 1; width < nruns; width <<= 1) {
    const size_t pairs = nruns / (2 * width);
    pool.ParallelFor(
        pairs, 1,
        [&](size_t, size_t begin, size_t end) {
          for (size_t p = begin; p < end; ++p) {
            size_t lo = bounds[p * 2 * width].first;
            size_t mid = bounds[p * 2 * width + width].first;
            size_t hi = bounds[p * 2 * width + 2 * width - 1].second;
            std::merge(src->begin() + lo, src->begin() + mid,
                       src->begin() + mid, src->begin() + hi,
                       dst->begin() + lo, cmp);
          }
        },
        threads);
    std::swap(src, dst);
  }
  if (src != events) *events = std::move(*src);
}

}  // namespace

CprStats ReduceLog(AuditLog* log, const CprOptions& options,
                   std::vector<EventId>* old_to_new) {
  CprStats stats;
  stats.events_before = log->event_count();
  if (old_to_new != nullptr) {
    old_to_new->assign(stats.events_before, 0);
  }

  std::vector<SystemEvent> sorted = log->events();
  StableSortByStartTime(&sorted, options.num_threads);

  // Pending merged events, one per open group, plus a per-entity index of
  // the groups each entity participates in. An incoming event acts as a
  // causality barrier: it flushes every open group that shares an entity
  // with it but has a different key, because merging across that event would
  // change what dependency tracking observes at the shared entity.
  std::vector<SystemEvent> out;
  out.reserve(sorted.size());
  std::unordered_map<GroupKey, size_t, GroupKeyHash> open;  // key -> out index
  std::unordered_map<EntityId, std::vector<GroupKey>> by_entity;

  auto flush_groups_touching = [&](EntityId entity, const GroupKey& except) {
    auto it = by_entity.find(entity);
    if (it == by_entity.end()) return;
    for (const GroupKey& key : it->second) {
      if (key == except) continue;
      open.erase(key);
    }
    it->second.clear();
    if (except.subject == entity || except.object == entity) {
      it->second.push_back(except);
    }
  };

  for (const SystemEvent& ev : sorted) {
    GroupKey key{ev.subject, ev.object, ev.op};
    flush_groups_touching(ev.subject, key);
    flush_groups_touching(ev.object, key);

    auto it = open.find(key);
    if (it != open.end()) {
      SystemEvent& pending = out[it->second];
      if (ev.start_time - pending.end_time <= options.max_merge_gap_ns) {
        pending.end_time = std::max(pending.end_time, ev.end_time);
        pending.bytes += ev.bytes;
        pending.merged_count += ev.merged_count;
        if (old_to_new != nullptr) (*old_to_new)[ev.id] = it->second;
        continue;
      }
      // Gap too large: close the old group and start a new one.
      open.erase(it);
    }

    if (old_to_new != nullptr) (*old_to_new)[ev.id] = out.size();
    open[key] = out.size();
    auto& groups_s = by_entity[ev.subject];
    if (std::find(groups_s.begin(), groups_s.end(), key) == groups_s.end()) {
      groups_s.push_back(key);
    }
    auto& groups_o = by_entity[ev.object];
    if (std::find(groups_o.begin(), groups_o.end(), key) == groups_o.end()) {
      groups_o.push_back(key);
    }
    out.push_back(ev);
  }

  log->ReplaceEvents(std::move(out));
  stats.events_after = log->event_count();
  return stats;
}

}  // namespace raptor::audit
