#include "audit/sysdig_parser.h"

#include <charconv>
#include <cstdint>
#include <unordered_map>

#include "common/strings.h"

namespace raptor::audit {

namespace {

/// Parsed `fd=N(<tag>...)` annotation.
struct FdInfo {
  bool valid = false;
  bool is_socket = false;
  std::string path;  ///< File path when !is_socket.
  std::string src_ip, dst_ip;
  uint16_t src_port = 0, dst_port = 0;
  std::string protocol = "tcp";
};

Result<int64_t> ParseClockTime(std::string_view s) {
  // HH:MM:SS[.fraction] -> nanoseconds since midnight.
  auto fail = [&] {
    return Status::ParseError("bad sysdig timestamp: " + std::string(s));
  };
  if (s.size() < 8 || s[2] != ':' || s[5] != ':') return fail();
  auto digits = [&](size_t pos, size_t len, int64_t* out) {
    auto [ptr, ec] =
        std::from_chars(s.data() + pos, s.data() + pos + len, *out);
    return ec == std::errc() && ptr == s.data() + pos + len;
  };
  int64_t h = 0, m = 0, sec = 0;
  if (!digits(0, 2, &h) || !digits(3, 2, &m) || !digits(6, 2, &sec)) {
    return fail();
  }
  int64_t ns = ((h * 60 + m) * 60 + sec) * 1'000'000'000LL;
  if (s.size() > 9 && s[8] == '.') {
    std::string_view frac = s.substr(9);
    if (frac.empty() || frac.size() > 9) return fail();
    int64_t value = 0;
    auto [ptr, ec] =
        std::from_chars(frac.data(), frac.data() + frac.size(), value);
    if (ec != std::errc() || ptr != frac.data() + frac.size()) return fail();
    for (size_t i = frac.size(); i < 9; ++i) value *= 10;
    ns += value;
  }
  return ns;
}

FdInfo ParseFdAnnotation(std::string_view value) {
  FdInfo info;
  size_t open = value.find('(');
  if (open == std::string_view::npos || value.back() != ')') return info;
  std::string_view inner = value.substr(open + 1, value.size() - open - 2);
  if (StartsWith(inner, "<f>")) {
    info.valid = true;
    info.is_socket = false;
    info.path = std::string(inner.substr(3));
    return info;
  }
  for (std::string_view tag : {"<4t>", "<6t>", "<4u>", "<6u>"}) {
    if (!StartsWith(inner, tag)) continue;
    info.protocol = (tag[2] == 'u') ? "udp" : "tcp";
    std::string_view tuple = inner.substr(tag.size());
    size_t arrow = tuple.find("->");
    if (arrow == std::string_view::npos) return info;
    auto parse_endpoint = [](std::string_view ep, std::string* ip,
                             uint16_t* port) {
      size_t colon = ep.rfind(':');
      if (colon == std::string_view::npos) return false;
      *ip = std::string(ep.substr(0, colon));
      std::string_view p = ep.substr(colon + 1);
      uint16_t v = 0;
      auto [ptr, ec] = std::from_chars(p.data(), p.data() + p.size(), v);
      if (ec != std::errc() || ptr != p.data() + p.size()) return false;
      *port = v;
      return true;
    };
    if (parse_endpoint(tuple.substr(0, arrow), &info.src_ip,
                       &info.src_port) &&
        parse_endpoint(tuple.substr(arrow + 2), &info.dst_ip,
                       &info.dst_port)) {
      info.valid = true;
      info.is_socket = true;
    }
    return info;
  }
  return info;
}

enum class CallClass {
  kReadLike,    // read readv pread preadv
  kWriteLike,   // write writev pwrite pwritev
  kSendLike,    // sendto sendmsg send
  kRecvLike,    // recvfrom recvmsg recv
  kConnect,
  kAccept,
  kClone,
  kExecve,
  kUnlink,
  kRename,
  kChmod,
  kUnsupported,
};

CallClass ClassifyCall(std::string_view type) {
  static const std::unordered_map<std::string_view, CallClass> kMap = {
      {"read", CallClass::kReadLike},     {"readv", CallClass::kReadLike},
      {"pread", CallClass::kReadLike},    {"preadv", CallClass::kReadLike},
      {"write", CallClass::kWriteLike},   {"writev", CallClass::kWriteLike},
      {"pwrite", CallClass::kWriteLike},  {"pwritev", CallClass::kWriteLike},
      {"send", CallClass::kSendLike},     {"sendto", CallClass::kSendLike},
      {"sendmsg", CallClass::kSendLike},  {"recv", CallClass::kRecvLike},
      {"recvfrom", CallClass::kRecvLike}, {"recvmsg", CallClass::kRecvLike},
      {"connect", CallClass::kConnect},   {"accept", CallClass::kAccept},
      {"accept4", CallClass::kAccept},    {"clone", CallClass::kClone},
      {"fork", CallClass::kClone},        {"vfork", CallClass::kClone},
      {"execve", CallClass::kExecve},     {"unlink", CallClass::kUnlink},
      {"unlinkat", CallClass::kUnlink},   {"rename", CallClass::kRename},
      {"renameat", CallClass::kRename},   {"chmod", CallClass::kChmod},
      {"fchmod", CallClass::kChmod},
  };
  auto it = kMap.find(type);
  return it == kMap.end() ? CallClass::kUnsupported : it->second;
}

}  // namespace

Result<EventId> SysdigParser::ParseLine(std::string_view line,
                                        AuditLog* log) {
  std::vector<std::string> fields = SplitWhitespace(line);
  // num time cpu name (pid) dir type [info...]
  if (fields.size() < 7) {
    return Status::ParseError("sysdig line has too few fields");
  }
  RAPTOR_ASSIGN_OR_RETURN(int64_t ts, ParseClockTime(fields[1]));
  const std::string& proc_name = fields[3];
  const std::string& pid_field = fields[4];
  if (pid_field.size() < 3 || pid_field.front() != '(' ||
      pid_field.back() != ')') {
    return Status::ParseError("sysdig line has malformed pid field '" +
                              pid_field + "'");
  }
  uint32_t pid = 0;
  {
    std::string_view digits(pid_field.data() + 1, pid_field.size() - 2);
    auto [ptr, ec] =
        std::from_chars(digits.data(), digits.data() + digits.size(), pid);
    if (ec != std::errc() || ptr != digits.data() + digits.size()) {
      return Status::ParseError("sysdig line has bad pid '" + pid_field + "'");
    }
  }
  const std::string& dir = fields[5];
  if (dir != "<" && dir != ">") {
    return Status::ParseError("sysdig line has bad direction '" + dir + "'");
  }
  if (dir == ">") {
    return Status::NotFound("enter event");  // results live on exits
  }
  CallClass call = ClassifyCall(fields[6]);
  if (call == CallClass::kUnsupported) {
    return Status::NotFound("unsupported syscall " + fields[6]);
  }

  // Info key=value fields.
  std::unordered_map<std::string, std::string> kv;
  for (size_t i = 7; i < fields.size(); ++i) {
    size_t eq = fields[i].find('=');
    if (eq == std::string::npos) continue;
    kv[fields[i].substr(0, eq)] = fields[i].substr(eq + 1);
  }
  auto kv_or = [&kv](const char* key, const char* fallback = "") {
    auto it = kv.find(key);
    return it == kv.end() ? std::string(fallback) : it->second;
  };
  int64_t res = 0;
  if (auto it = kv.find("res"); it != kv.end()) {
    (void)std::from_chars(it->second.data(),
                          it->second.data() + it->second.size(), res);
  }
  FdInfo fd;
  if (auto it = kv.find("fd"); it != kv.end()) {
    fd = ParseFdAnnotation(it->second);
  }

  SystemEvent event;
  event.subject = log->InternProcess(pid, proc_name);
  event.start_time = event.end_time = ts;

  switch (call) {
    case CallClass::kReadLike:
    case CallClass::kWriteLike: {
      if (!fd.valid) return Status::NotFound("no usable fd annotation");
      bool is_read = call == CallClass::kReadLike;
      if (fd.is_socket) {
        event.op = is_read ? Operation::kRecv : Operation::kSend;
        event.object = log->InternNetwork(fd.src_ip, fd.src_port, fd.dst_ip,
                                          fd.dst_port, fd.protocol);
      } else {
        event.op = is_read ? Operation::kRead : Operation::kWrite;
        event.object = log->InternFile(fd.path);
      }
      if (res > 0) event.bytes = static_cast<uint64_t>(res);
      break;
    }
    case CallClass::kSendLike:
    case CallClass::kRecvLike: {
      if (!fd.valid || !fd.is_socket) {
        return Status::NotFound("send/recv without socket fd");
      }
      event.op =
          call == CallClass::kSendLike ? Operation::kSend : Operation::kRecv;
      event.object = log->InternNetwork(fd.src_ip, fd.src_port, fd.dst_ip,
                                        fd.dst_port, fd.protocol);
      if (res > 0) event.bytes = static_cast<uint64_t>(res);
      break;
    }
    case CallClass::kConnect:
    case CallClass::kAccept: {
      if (!fd.valid || !fd.is_socket) {
        return Status::NotFound("connect/accept without socket fd");
      }
      event.op = call == CallClass::kConnect ? Operation::kConnect
                                             : Operation::kAccept;
      event.object = log->InternNetwork(fd.src_ip, fd.src_port, fd.dst_ip,
                                        fd.dst_port, fd.protocol);
      break;
    }
    case CallClass::kClone: {
      // Parent's exit carries res=child pid; the child's copy (res=0) and
      // failures (res<0) are skipped.
      if (res <= 0) return Status::NotFound("clone child copy");
      std::string child_exe = kv_or("exe", proc_name.c_str());
      event.op = Operation::kFork;
      event.object =
          log->InternProcess(static_cast<uint32_t>(res), child_exe);
      break;
    }
    case CallClass::kExecve: {
      std::string image = kv_or("exe");
      if (image.empty()) image = kv_or("filename");
      if (image.empty()) return Status::NotFound("execve without image");
      event.op = Operation::kExecute;
      event.object = log->InternFile(image);
      break;
    }
    case CallClass::kUnlink: {
      std::string path = kv_or("name");
      if (path.empty()) path = kv_or("path");
      if (path.empty()) return Status::NotFound("unlink without path");
      event.op = Operation::kDelete;
      event.object = log->InternFile(path);
      break;
    }
    case CallClass::kRename: {
      std::string path = kv_or("oldpath");
      if (path.empty()) path = kv_or("name");
      if (path.empty()) return Status::NotFound("rename without path");
      event.op = Operation::kRename;
      event.object = log->InternFile(path);
      break;
    }
    case CallClass::kChmod: {
      std::string path = kv_or("filename");
      if (path.empty() && fd.valid && !fd.is_socket) path = fd.path;
      if (path.empty()) return Status::NotFound("chmod without path");
      event.op = Operation::kChmod;
      event.object = log->InternFile(path);
      break;
    }
    case CallClass::kUnsupported:
      return Status::NotFound("unsupported");
  }
  return log->AddEvent(event);
}

SysdigParseStats SysdigParser::ParseText(std::string_view text,
                                         AuditLog* log) {
  SysdigParseStats stats;
  size_t start = 0;
  while (start <= text.size()) {
    size_t nl = text.find('\n', start);
    std::string_view line = (nl == std::string_view::npos)
                                ? text.substr(start)
                                : text.substr(start, nl - start);
    std::string_view trimmed = Trim(line);
    if (!trimmed.empty()) {
      ++stats.lines;
      auto result = ParseLine(trimmed, log);
      if (result.ok()) {
        ++stats.events;
      } else if (result.status().IsNotFound()) {
        ++stats.skipped;
      } else {
        ++stats.malformed;
      }
    }
    if (nl == std::string_view::npos) break;
    start = nl + 1;
  }
  return stats;
}

std::string SysdigParser::FormatEvent(const AuditLog& log,
                                      const SystemEvent& event,
                                      uint64_t event_number) {
  const SystemEntity& subj = log.entity(event.subject);
  const SystemEntity& obj = log.entity(event.object);

  int64_t ns = event.start_time % 86'400'000'000'000LL;
  std::string time = StrFormat(
      "%02lld:%02lld:%02lld.%09lld",
      static_cast<long long>(ns / 3'600'000'000'000LL),
      static_cast<long long>(ns / 60'000'000'000LL % 60),
      static_cast<long long>(ns / 1'000'000'000LL % 60),
      static_cast<long long>(ns % 1'000'000'000LL));

  std::string head = StrFormat(
      "%llu %s 0 %s (%u) < ", static_cast<unsigned long long>(event_number),
      time.c_str(), subj.exename.c_str(), subj.pid);

  auto socket_fd = [&obj] {
    return StrFormat("fd=3(<%s>%s:%u->%s:%u)",
                     obj.protocol == "udp" ? "4u" : "4t", obj.src_ip.c_str(),
                     obj.src_port, obj.dst_ip.c_str(), obj.dst_port);
  };
  auto file_fd = [&obj] {
    return StrFormat("fd=5(<f>%s)", obj.path.c_str());
  };

  switch (event.op) {
    case Operation::kRead:
      return head + StrFormat("read res=%llu %s",
                              static_cast<unsigned long long>(event.bytes),
                              file_fd().c_str());
    case Operation::kWrite:
      return head + StrFormat("write res=%llu %s",
                              static_cast<unsigned long long>(event.bytes),
                              file_fd().c_str());
    case Operation::kExecute:
      return head + "execve res=0 exe=" + obj.path;
    case Operation::kDelete:
      return head + "unlink res=0 name=" + obj.path;
    case Operation::kRename:
      return head + "rename res=0 oldpath=" + obj.path;
    case Operation::kChmod:
      return head + "chmod res=0 filename=" + obj.path;
    case Operation::kFork:
    case Operation::kStart:
      return head + StrFormat("clone res=%u exe=%s", obj.pid,
                              obj.exename.c_str());
    case Operation::kKill:
      // No direct sysdig mapping; rendered as an unsupported marker.
      return head + StrFormat("kill pid=%u", obj.pid);
    case Operation::kConnect:
      return head + "connect res=0 " + socket_fd();
    case Operation::kAccept:
      return head + "accept res=4 " + socket_fd();
    case Operation::kSend:
      return head + StrFormat("sendto res=%llu %s",
                              static_cast<unsigned long long>(event.bytes),
                              socket_fd().c_str());
    case Operation::kRecv:
      return head + StrFormat("recvfrom res=%llu %s",
                              static_cast<unsigned long long>(event.bytes),
                              socket_fd().c_str());
  }
  return head;
}

}  // namespace raptor::audit
