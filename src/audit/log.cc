#include "audit/log.h"

#include <cassert>
#include <utility>

namespace raptor::audit {

namespace {

// Per-record overheads of the byte-accounting model (hash-map node for the
// interning key, struct storage for entities/events). Approximate by
// design: the gauges should move with the data, not be malloc-exact.
constexpr size_t kInternEntryOverheadBytes = 4 * sizeof(void*);

size_t EntityBytes(const SystemEntity& entity) {
  return sizeof(SystemEntity) + entity.path.size() + entity.exename.size() +
         entity.src_ip.size() + entity.dst_ip.size() +
         entity.protocol.size();
}

}  // namespace

EntityId AuditLog::AddEntity(SystemEntity entity) {
  std::string key = entity.Key();
  auto it = key_to_id_.find(key);
  if (it != key_to_id_.end()) return it->second;
  EntityId id = entities_.size();
  entity.id = id;
  approx_bytes_ +=
      EntityBytes(entity) + key.size() + kInternEntryOverheadBytes;
  entities_.push_back(std::move(entity));
  key_to_id_.emplace(std::move(key), id);
  return id;
}

EventId AuditLog::AddEvent(SystemEvent event) {
  assert(event.subject < entities_.size());
  assert(event.object < entities_.size());
  assert(entities_[event.subject].type == EntityType::kProcess);
  EventId id = events_.size();
  event.id = id;
  events_.push_back(event);
  approx_bytes_ += sizeof(SystemEvent);
  return id;
}

EntityId AuditLog::InternFile(std::string path) {
  SystemEntity e;
  e.type = EntityType::kFile;
  e.path = std::move(path);
  return AddEntity(std::move(e));
}

EntityId AuditLog::InternProcess(uint32_t pid, std::string exename) {
  SystemEntity e;
  e.type = EntityType::kProcess;
  e.pid = pid;
  e.exename = std::move(exename);
  return AddEntity(std::move(e));
}

EntityId AuditLog::InternNetwork(std::string src_ip, uint16_t src_port,
                                 std::string dst_ip, uint16_t dst_port,
                                 std::string protocol) {
  SystemEntity e;
  e.type = EntityType::kNetwork;
  e.src_ip = std::move(src_ip);
  e.src_port = src_port;
  e.dst_ip = std::move(dst_ip);
  e.dst_port = dst_port;
  e.protocol = std::move(protocol);
  return AddEntity(std::move(e));
}

EntityId AuditLog::FindByKey(const std::string& key) const {
  auto it = key_to_id_.find(key);
  return it == key_to_id_.end() ? kInvalidEntityId : it->second;
}

void AuditLog::ReplaceEvents(std::vector<SystemEvent> events) {
  approx_bytes_ -= events_.size() * sizeof(SystemEvent);
  events_ = std::move(events);
  approx_bytes_ += events_.size() * sizeof(SystemEvent);
  for (size_t i = 0; i < events_.size(); ++i) {
    events_[i].id = i;
  }
}

}  // namespace raptor::audit
