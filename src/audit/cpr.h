// Causality-Preserved Reduction (paper §II-B, technique from Xu et al.,
// "High fidelity data reduction for big data security dependency analyses",
// CCS 2016, the paper's reference [10]).
//
// The OS typically finishes one logical read/write task by distributing the
// data over many system calls, producing runs of near-identical events
// between the same (subject, object) pair. CPR merges such runs while
// preserving causality: two events are only folded together when no
// interleaving event touches either endpoint entity, so forward and backward
// dependency tracking reach exactly the same entities, in the same order,
// before and after reduction.

#pragma once

#include <cstdint>

#include "audit/log.h"

namespace raptor::audit {

/// \brief Tuning knobs for CPR.
struct CprOptions {
  /// Maximum start-time gap (ns) between two events that may be merged.
  /// Events further apart are kept separate even when causality would allow
  /// merging; this bounds the temporal imprecision a merged record carries.
  Timestamp max_merge_gap_ns = 1'000'000'000;  // 1 s
  /// Parallelism for the start-time sort (a stable parallel merge sort; the
  /// result is byte-identical to std::stable_sort at any thread count). The
  /// causality-barrier fold itself is inherently sequential and always runs
  /// on the calling thread. 0 = hardware concurrency; 1 = serial.
  size_t num_threads = 0;
};

/// \brief Result statistics of one reduction pass.
struct CprStats {
  size_t events_before = 0;
  size_t events_after = 0;

  /// events_before / events_after; 1.0 when nothing merged.
  double ReductionRatio() const {
    return events_after == 0
               ? 1.0
               : static_cast<double>(events_before) /
                     static_cast<double>(events_after);
  }
};

/// Runs CPR over `log` in place: events are sorted by start time, mergeable
/// runs are folded (summing bytes, extending the time window, accumulating
/// merged_count), and the log's event vector is replaced by the reduced one.
///
/// When `old_to_new` is non-null it receives, indexed by pre-reduction event
/// id, the id of the post-reduction event each original record ended up in —
/// ground-truth labels survive the reduction through this mapping.
CprStats ReduceLog(AuditLog* log, const CprOptions& options = {},
                   std::vector<EventId>* old_to_new = nullptr);

}  // namespace raptor::audit
