#include "audit/generator.h"

#include "common/strings.h"

namespace raptor::audit {

namespace {

constexpr Timestamp kTraceEpoch = 1'700'000'000'000'000'000LL;

const char* const kBaseExes[] = {
    "/usr/sbin/apache2",  "/usr/bin/python3", "/usr/sbin/sshd",
    "/usr/bin/node",      "/usr/sbin/cron",   "/usr/bin/vim",
    "/usr/bin/git",       "/usr/lib/systemd/systemd",
    "/usr/bin/dockerd",   "/usr/bin/java",    "/usr/bin/postgres",
    "/usr/bin/redis-server",
};

const char* const kBaseFiles[] = {
    "/var/log/syslog",
    "/var/log/apache2/access.log",
    "/var/log/apache2/error.log",
    "/etc/hosts",
    "/etc/resolv.conf",
    "/var/lib/mysql/ibdata1",
    "/home/user/notes.txt",
    "/usr/share/zoneinfo/UTC",
};

}  // namespace

WorkloadGenerator::WorkloadGenerator(GeneratorOptions options)
    : options_(options), rng_(options.seed), now_(kTraceEpoch) {
  benign_exes_.assign(std::begin(kBaseExes), std::end(kBaseExes));
  for (size_t i = benign_exes_.size(); i < options_.num_processes; ++i) {
    benign_exes_.push_back(StrFormat("/usr/bin/svc_%zu", i));
  }
  benign_exes_.resize(options_.num_processes > 0 ? options_.num_processes
                                                 : benign_exes_.size());
  for (size_t i = 0; i < benign_exes_.size(); ++i) {
    benign_pids_.push_back(1000 + static_cast<uint32_t>(i));
  }

  benign_files_.assign(std::begin(kBaseFiles), std::end(kBaseFiles));
  for (size_t i = benign_files_.size(); i < options_.num_files; ++i) {
    benign_files_.push_back(StrFormat("/home/user/data/doc_%zu.txt", i));
  }

  for (size_t i = 0; i < options_.num_remote_ips; ++i) {
    benign_ips_.push_back(StrFormat("151.101.%zu.%zu", i / 16 + 1, i % 16 + 1));
  }
}

Timestamp WorkloadGenerator::Tick() {
  now_ += options_.mean_gap_ns / 2 +
          static_cast<Timestamp>(rng_.Uniform(
              static_cast<uint64_t>(options_.mean_gap_ns) + 1));
  return now_;
}

EventId WorkloadGenerator::EmitFileEvent(AuditLog* log, EntityId proc,
                                         Operation op, const std::string& path,
                                         uint64_t bytes) {
  SystemEvent ev;
  ev.subject = proc;
  ev.object = log->InternFile(path);
  ev.op = op;
  ev.start_time = ev.end_time = Tick();
  ev.bytes = bytes;
  return log->AddEvent(ev);
}

EventId WorkloadGenerator::EmitForkEvent(AuditLog* log, EntityId parent,
                                         uint32_t child_pid,
                                         const std::string& child_exe,
                                         EntityId* child_out) {
  EntityId child = log->InternProcess(child_pid, child_exe);
  if (child_out != nullptr) *child_out = child;
  SystemEvent ev;
  ev.subject = parent;
  ev.object = child;
  ev.op = Operation::kFork;
  ev.start_time = ev.end_time = Tick();
  return log->AddEvent(ev);
}

EventId WorkloadGenerator::EmitNetEvent(AuditLog* log, EntityId proc,
                                        Operation op, const std::string& src_ip,
                                        uint16_t src_port,
                                        const std::string& dst_ip,
                                        uint16_t dst_port, uint64_t bytes) {
  SystemEvent ev;
  ev.subject = proc;
  ev.object = log->InternNetwork(src_ip, src_port, dst_ip, dst_port, "tcp");
  ev.op = op;
  ev.start_time = ev.end_time = Tick();
  ev.bytes = bytes;
  return log->AddEvent(ev);
}

void WorkloadGenerator::GenerateBenign(size_t count, AuditLog* log) {
  size_t emitted = 0;
  while (emitted < count) {
    // Legitimate sensitive-resource activity (see GeneratorOptions).
    if (rng_.Chance(options_.sensitive_touch_probability)) {
      if (rng_.Chance(0.6)) {
        // sshd authenticating a login.
        EntityId sshd = log->InternProcess(22, "/usr/sbin/sshd");
        EmitFileEvent(log, sshd, Operation::kRead, "/etc/passwd", 2048);
        ++emitted;
        if (emitted < count) {
          EmitFileEvent(log, sshd, Operation::kRead, "/etc/shadow", 1024);
          ++emitted;
        }
      } else {
        // The nightly backup job archiving /etc.
        EntityId backup = log->InternProcess(977, "/usr/bin/backupd");
        EmitFileEvent(log, backup, Operation::kRead, "/etc/passwd", 2048);
        ++emitted;
        if (emitted < count) {
          EmitFileEvent(log, backup, Operation::kWrite,
                        "/var/backups/etc.tar", 65536);
          ++emitted;
        }
      }
      continue;
    }

    size_t pi = rng_.Skewed(benign_exes_.size());
    EntityId proc = log->InternProcess(benign_pids_[pi], benign_exes_[pi]);
    double r = rng_.NextDouble();
    if (r < 0.38) {  // read, possibly a syscall burst
      const std::string& path = benign_files_[rng_.Skewed(benign_files_.size())];
      size_t burst = 1;
      if (rng_.Chance(options_.burst_probability)) {
        burst = 2 + rng_.Uniform(options_.burst_max_len - 1);
      }
      for (size_t b = 0; b < burst && emitted < count; ++b, ++emitted) {
        EmitFileEvent(log, proc, Operation::kRead, path,
                      512 + rng_.Uniform(8192));
      }
    } else if (r < 0.63) {  // write, possibly a syscall burst
      const std::string& path = benign_files_[rng_.Skewed(benign_files_.size())];
      size_t burst = 1;
      if (rng_.Chance(options_.burst_probability)) {
        burst = 2 + rng_.Uniform(options_.burst_max_len - 1);
      }
      for (size_t b = 0; b < burst && emitted < count; ++b, ++emitted) {
        EmitFileEvent(log, proc, Operation::kWrite, path,
                      256 + rng_.Uniform(4096));
      }
    } else if (r < 0.73) {  // send
      const std::string& ip = rng_.Pick(benign_ips_);
      EmitNetEvent(log, proc, Operation::kSend, kVictimIp,
                   static_cast<uint16_t>(40000 + rng_.Uniform(20000)), ip, 443,
                   128 + rng_.Uniform(65536));
      ++emitted;
    } else if (r < 0.83) {  // recv
      const std::string& ip = rng_.Pick(benign_ips_);
      EmitNetEvent(log, proc, Operation::kRecv, kVictimIp,
                   static_cast<uint16_t>(40000 + rng_.Uniform(20000)), ip, 443,
                   128 + rng_.Uniform(65536));
      ++emitted;
    } else if (r < 0.88) {  // connect
      const std::string& ip = rng_.Pick(benign_ips_);
      EmitNetEvent(log, proc, Operation::kConnect, kVictimIp,
                   static_cast<uint16_t>(40000 + rng_.Uniform(20000)), ip, 443,
                   0);
      ++emitted;
    } else if (r < 0.93) {  // fork a helper
      size_t ci = rng_.Skewed(benign_exes_.size());
      EmitForkEvent(log, proc, next_pid_++, benign_exes_[ci], nullptr);
      ++emitted;
    } else if (r < 0.97) {  // execute a binary
      size_t ci = rng_.Skewed(benign_exes_.size());
      EmitFileEvent(log, proc, Operation::kExecute, benign_exes_[ci], 0);
      ++emitted;
    } else {  // housekeeping: delete or chmod a temp file
      std::string path = StrFormat("/tmp/work_%llu.tmp",
                                   static_cast<unsigned long long>(
                                       rng_.Uniform(64)));
      EmitFileEvent(log, proc,
                    rng_.Chance(0.5) ? Operation::kDelete : Operation::kChmod,
                    path, 0);
      ++emitted;
    }
  }
}

AttackTrace WorkloadGenerator::InjectPasswordCrackingAttack(AuditLog* log) {
  AttackTrace trace;
  trace.name = "password_cracking_after_shellshock";
  auto add = [&trace](EventId id) { trace.event_ids.push_back(id); };
  auto add_core = [&trace](EventId id) {
    trace.event_ids.push_back(id);
    trace.core_event_ids.push_back(id);
  };

  // Shellshock penetration: apache handles the malicious request and a bash
  // shell is spawned under attacker control.
  EntityId apache = log->InternProcess(800, "/usr/sbin/apache2");
  add(EmitNetEvent(log, apache, Operation::kRecv, kVictimIp, 80, kAttackerIp,
                   45612, 2048));
  EntityId bash = kInvalidEntityId;
  add(EmitForkEvent(log, apache, next_pid_++, "/bin/bash", &bash));

  // Connect to the cloud service and download the image whose EXIF metadata
  // encodes the C2 address.
  add_core(EmitNetEvent(log, bash, Operation::kConnect, kVictimIp, 51620,
                        kDropboxIp, 443, 0));
  add(EmitNetEvent(log, bash, Operation::kRecv, kVictimIp, 51620, kDropboxIp,
                   443, 183500));
  add_core(EmitFileEvent(log, bash, Operation::kWrite,
                         "/tmp/dropbox_image.jpg", 183500));
  add_core(EmitFileEvent(log, bash, Operation::kRead,
                         "/tmp/dropbox_image.jpg", 183500));

  // Download the password cracker from the C2 server and run it.
  add_core(EmitNetEvent(log, bash, Operation::kConnect, kVictimIp, 51621,
                        kC2Ip, 8080, 0));
  add(EmitNetEvent(log, bash, Operation::kRecv, kVictimIp, 51621, kC2Ip, 8080,
                   96000));
  add_core(EmitFileEvent(log, bash, Operation::kWrite, "/tmp/cracker", 96000));
  add(EmitFileEvent(log, bash, Operation::kChmod, "/tmp/cracker", 0));
  EntityId cracker = kInvalidEntityId;
  add(EmitForkEvent(log, bash, next_pid_++, "/tmp/cracker", &cracker));
  add(EmitFileEvent(log, cracker, Operation::kExecute, "/tmp/cracker", 0));

  // Crack the shadow file and exfiltrate the clear text.
  add_core(EmitFileEvent(log, cracker, Operation::kRead, "/etc/shadow", 4096));
  add(EmitFileEvent(log, cracker, Operation::kRead, "/etc/passwd", 2048));
  add_core(EmitFileEvent(log, cracker, Operation::kWrite,
                         "/tmp/crackedpw.txt", 1024));
  add(EmitNetEvent(log, cracker, Operation::kConnect, kVictimIp, 51622, kC2Ip,
                   8080, 0));
  add_core(EmitNetEvent(log, cracker, Operation::kSend, kVictimIp, 51622,
                        kC2Ip, 8080, 1024));

  trace.report_text =
      "The attacker penetrated into the victim host by exploiting the "
      "Shellshock vulnerability. After the penetration, the process "
      "/bin/bash connected to the IP 108.160.172.1 and downloaded the image "
      "/tmp/dropbox_image.jpg. The address of the C2 server was encoded in "
      "the EXIF metadata, and /bin/bash read /tmp/dropbox_image.jpg. "
      "/bin/bash then connected to the IP 161.35.10.8 and downloaded the "
      "password cracker /tmp/cracker. The process /tmp/cracker read the "
      "shadow file /etc/shadow and wrote the cracked passwords to "
      "/tmp/crackedpw.txt. Finally, /tmp/cracker sent the passwords to the "
      "IP 161.35.10.8.";
  return trace;
}

AttackTrace WorkloadGenerator::InjectDataLeakageAttack(AuditLog* log) {
  AttackTrace trace;
  trace.name = "data_leakage_after_shellshock";
  auto add = [&trace](EventId id) { trace.event_ids.push_back(id); };
  auto add_core = [&trace](EventId id) {
    trace.event_ids.push_back(id);
    trace.core_event_ids.push_back(id);
  };

  // Shellshock penetration.
  EntityId apache = log->InternProcess(800, "/usr/sbin/apache2");
  add(EmitNetEvent(log, apache, Operation::kRecv, kVictimIp, 80, kAttackerIp,
                   45733, 2048));
  EntityId bash = kInvalidEntityId;
  add(EmitForkEvent(log, apache, next_pid_++, "/bin/bash", &bash));

  // Scan the file system and scrape the valuable assets into one archive.
  EntityId tar = kInvalidEntityId;
  add(EmitForkEvent(log, bash, next_pid_++, "/bin/tar", &tar));
  add_core(EmitFileEvent(log, tar, Operation::kRead, "/etc/passwd", 2048));
  add(EmitFileEvent(log, tar, Operation::kRead, "/home/user/secret/plans.doc",
                    524288));
  add_core(EmitFileEvent(log, tar, Operation::kWrite, "/tmp/data.tar",
                         540672));

  // Compress the archive.
  EntityId gzip = kInvalidEntityId;
  add(EmitForkEvent(log, bash, next_pid_++, "/bin/gzip", &gzip));
  add_core(EmitFileEvent(log, gzip, Operation::kRead, "/tmp/data.tar",
                         540672));
  add_core(EmitFileEvent(log, gzip, Operation::kWrite, "/tmp/data.tar.gz",
                         131072));

  // Transfer the compressed file back to the C2 server.
  EntityId curl = kInvalidEntityId;
  add(EmitForkEvent(log, bash, next_pid_++, "/usr/bin/curl", &curl));
  add_core(EmitFileEvent(log, curl, Operation::kRead, "/tmp/data.tar.gz",
                         131072));
  add(EmitNetEvent(log, curl, Operation::kConnect, kVictimIp, 51710, kC2Ip,
                   8080, 0));
  add_core(EmitNetEvent(log, curl, Operation::kSend, kVictimIp, 51710, kC2Ip,
                        8080, 131072));

  trace.report_text =
      "The attacker exploited the Shellshock vulnerability to penetrate "
      "into the victim host. After the penetration, the attacker scanned "
      "the file system for valuable assets. The process /bin/tar read the "
      "file /etc/passwd. /bin/tar then wrote the collected data to "
      "/tmp/data.tar. The process /bin/gzip read /tmp/data.tar and wrote "
      "the compressed archive /tmp/data.tar.gz. Finally, the process "
      "/usr/bin/curl read /tmp/data.tar.gz and sent the archive to the IP "
      "161.35.10.8.";
  return trace;
}

std::vector<EventId> WorkloadGenerator::InjectForkChain(
    const std::string& root_exe, size_t chain_len, Operation final_op,
    const std::string& target_path, AuditLog* log) {
  std::vector<EventId> ids;
  EntityId current = log->InternProcess(next_pid_++, root_exe);
  for (size_t i = 0; i < chain_len; ++i) {
    EntityId child = kInvalidEntityId;
    ids.push_back(EmitForkEvent(
        log, current, next_pid_++,
        StrFormat("%s.worker%zu", root_exe.c_str(), i), &child));
    current = child;
  }
  ids.push_back(
      EmitFileEvent(log, current, final_op, target_path, 4096));
  return ids;
}

}  // namespace raptor::audit
