#include "audit/parser.h"

#include <charconv>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/fault_injection.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace raptor::audit {

namespace {

template <typename Int>
Result<Int> ParseInt(std::string_view s, std::string_view key) {
  Int value{};
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc() || ptr != s.data() + s.size()) {
    return Status::ParseError(StrFormat("bad integer for key '%.*s': '%.*s'",
                                        static_cast<int>(key.size()), key.data(),
                                        static_cast<int>(s.size()), s.data()));
  }
  return value;
}

Result<std::string_view> Require(
    const std::unordered_map<std::string_view, std::string_view>& kv,
    std::string_view key) {
  auto it = kv.find(key);
  if (it == kv.end()) {
    return Status::ParseError("missing required key '" + std::string(key) +
                              "'");
  }
  return it->second;
}

}  // namespace

Result<EventId> LogParser::ParseLine(std::string_view line, AuditLog* log) {
  RAPTOR_RETURN_NOT_OK(TriggerFaultPoint("audit.parser.line"));
  std::unordered_map<std::string_view, std::string_view> kv;
  size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && line[i] == ' ') ++i;
    if (i >= line.size()) break;
    size_t eq = line.find('=', i);
    if (eq == std::string_view::npos) {
      return Status::ParseError("expected key=value, got '" +
                                std::string(line.substr(i)) + "'");
    }
    std::string_view key = line.substr(i, eq - i);
    size_t vend = line.find(' ', eq + 1);
    if (vend == std::string_view::npos) vend = line.size();
    kv[key] = line.substr(eq + 1, vend - eq - 1);
    i = vend;
  }

  RAPTOR_ASSIGN_OR_RETURN(std::string_view ts_s, Require(kv, "ts"));
  RAPTOR_ASSIGN_OR_RETURN(Timestamp ts, ParseInt<Timestamp>(ts_s, "ts"));
  RAPTOR_ASSIGN_OR_RETURN(std::string_view pid_s, Require(kv, "pid"));
  RAPTOR_ASSIGN_OR_RETURN(uint32_t pid, ParseInt<uint32_t>(pid_s, "pid"));
  RAPTOR_ASSIGN_OR_RETURN(std::string_view exe, Require(kv, "exe"));
  RAPTOR_ASSIGN_OR_RETURN(std::string_view op_s, Require(kv, "op"));
  RAPTOR_ASSIGN_OR_RETURN(Operation op, ParseOperation(op_s));
  RAPTOR_ASSIGN_OR_RETURN(std::string_view obj_s, Require(kv, "obj"));
  RAPTOR_ASSIGN_OR_RETURN(EntityType obj_type, ParseEntityType(obj_s));

  if (obj_type != ObjectTypeOf(op)) {
    return Status::ParseError(StrFormat(
        "operation '%s' requires object type '%s', got '%s'",
        std::string(OperationName(op)).c_str(),
        std::string(EntityTypeName(ObjectTypeOf(op))).c_str(),
        std::string(EntityTypeName(obj_type)).c_str()));
  }

  SystemEvent event;
  event.subject = log->InternProcess(pid, std::string(exe));
  event.op = op;
  event.start_time = ts;
  event.end_time = ts;
  if (auto it = kv.find("end"); it != kv.end()) {
    RAPTOR_ASSIGN_OR_RETURN(event.end_time,
                            ParseInt<Timestamp>(it->second, "end"));
  }
  if (auto it = kv.find("bytes"); it != kv.end()) {
    RAPTOR_ASSIGN_OR_RETURN(event.bytes,
                            ParseInt<uint64_t>(it->second, "bytes"));
  }

  switch (obj_type) {
    case EntityType::kFile: {
      RAPTOR_ASSIGN_OR_RETURN(std::string_view path, Require(kv, "path"));
      event.object = log->InternFile(std::string(path));
      break;
    }
    case EntityType::kProcess: {
      RAPTOR_ASSIGN_OR_RETURN(std::string_view cpid_s, Require(kv, "cpid"));
      RAPTOR_ASSIGN_OR_RETURN(uint32_t cpid, ParseInt<uint32_t>(cpid_s, "cpid"));
      RAPTOR_ASSIGN_OR_RETURN(std::string_view cexe, Require(kv, "cexe"));
      event.object = log->InternProcess(cpid, std::string(cexe));
      break;
    }
    case EntityType::kNetwork: {
      RAPTOR_ASSIGN_OR_RETURN(std::string_view sip, Require(kv, "srcip"));
      RAPTOR_ASSIGN_OR_RETURN(std::string_view sp_s, Require(kv, "srcport"));
      RAPTOR_ASSIGN_OR_RETURN(uint16_t sp, ParseInt<uint16_t>(sp_s, "srcport"));
      RAPTOR_ASSIGN_OR_RETURN(std::string_view dip, Require(kv, "dstip"));
      RAPTOR_ASSIGN_OR_RETURN(std::string_view dp_s, Require(kv, "dstport"));
      RAPTOR_ASSIGN_OR_RETURN(uint16_t dp, ParseInt<uint16_t>(dp_s, "dstport"));
      std::string proto = "tcp";
      if (auto it = kv.find("proto"); it != kv.end()) {
        proto = std::string(it->second);
      }
      event.object = log->InternNetwork(std::string(sip), sp, std::string(dip),
                                        dp, std::move(proto));
      break;
    }
  }
  return log->AddEvent(event);
}

Status LogParser::ParseText(std::string_view text, AuditLog* log) {
  return ParseText(text, log, ParseOptions{}).status();
}

Result<ParseStats> LogParser::ParseText(std::string_view text, AuditLog* log,
                                        const ParseOptions& options) {
  // One batch of counter updates per ParseText call, whatever its outcome.
  static obs::Counter* lines_total = obs::Registry::Default().GetCounter(
      "raptor_ingest_lines_total", "Audit record lines seen by the parser");
  static obs::Counter* events_total = obs::Registry::Default().GetCounter(
      "raptor_ingest_events_total", "Audit lines parsed into events");
  static obs::Counter* malformed_total = obs::Registry::Default().GetCounter(
      "raptor_ingest_malformed_lines_total",
      "Malformed audit lines (skipped under the error budget or fatal)");
  obs::Span span = obs::Tracer::Default().StartSpan("ingest.parse");

  ParseStats stats;
  auto record_batch = [&](bool budget_exceeded) {
    lines_total->Increment(stats.lines);
    events_total->Increment(stats.events);
    // The line that exceeded the budget was malformed too, even though the
    // skip counter no longer advances for it.
    malformed_total->Increment(stats.skipped + (budget_exceeded ? 1 : 0));
    if (span.active()) {
      span.SetAttr("lines", static_cast<int64_t>(stats.lines));
      span.SetAttr("events", static_cast<int64_t>(stats.events));
      span.SetAttr("skipped", static_cast<int64_t>(stats.skipped));
      if (budget_exceeded) span.Annotate("error budget exceeded");
    }
  };

  // Shared malformed-line handling (serial loop and the parallel commit
  // phase): sampled WARN, error budget, retained samples. Returns the
  // batch-failing status once the budget is exceeded.
  auto handle_malformed = [&](size_t line_no, size_t byte_offset,
                              const Status& status) -> std::optional<Status> {
    std::string error =
        StrFormat("line %zu: %s", line_no, status.message().c_str());
    // Malformed lines are producer-controlled, so sample: commit the
    // first few per window and count the rest.
    static obs::LogSampler* malformed_sampler = new obs::LogSampler(8.0, 2.0);
    obs::Logger::Default()
        .Sampled(obs::LogLevel::kWarn, "audit", "malformed audit line",
                 malformed_sampler)
        .Field("line", static_cast<uint64_t>(line_no))
        .Field("byte_offset", static_cast<uint64_t>(byte_offset))
        .Field("error", status.message());
    if (stats.skipped >= options.error_budget) {
      // Budget exhausted: fail the batch. Events parsed so far stay in
      // the log (callers that need atomicity parse into a scratch log).
      obs::Logger::Default()
          .Log(obs::LogLevel::kError, "audit", "parse error budget exceeded")
          .Field("budget", static_cast<uint64_t>(options.error_budget))
          .Field("line", static_cast<uint64_t>(line_no))
          .Field("byte_offset", static_cast<uint64_t>(byte_offset));
      record_batch(/*budget_exceeded=*/true);
      if (options.error_budget == 0) return Status::ParseError(error);
      return Status::ParseError(
          StrFormat("error budget (%zu malformed lines) exceeded: %s",
                    options.error_budget, error.c_str()));
    }
    ++stats.skipped;
    if (stats.error_samples.size() < options.max_error_samples) {
      stats.error_samples.push_back(std::move(error));
    }
    return std::nullopt;
  };

  const size_t threads = options.num_threads == 0
                             ? ThreadPool::HardwareThreads()
                             : options.num_threads;
  // Below this size the serial parse wins; the gate also keeps small
  // (test-sized) batches on the exact serial code path.
  constexpr size_t kMinParallelBytes = 64 * 1024;
  if (threads > 1 && text.size() >= kMinParallelBytes) {
    // --- Parallel parse. ---
    // The text splits at line boundaries; chunks parse concurrently into
    // private scratch logs; a serial commit pass walks the chunks in input
    // order, re-interning each staged event's entities into the target log.
    // Interning is by entity key, so re-interning in line order assigns
    // exactly the ids the serial parse assigns; event ids, line numbers,
    // byte offsets, error samples, and budget semantics are byte-identical.
    // (Fault-injected ParseLine failures are the one exception: faults fire
    // on worker threads in nondeterministic order across chunks.)
    struct Staged {
      size_t rel_line = 0;    // 1-based line number within the chunk
      size_t rel_offset = 0;  // byte offset within the chunk
      bool ok = false;
      EventId scratch_event = 0;
      std::string_view line;  // trimmed text, for malformed-line replay
    };
    struct Chunk {
      size_t base_offset = 0;
      std::string_view body;
      size_t total_lines = 0;
      AuditLog scratch;
      std::vector<Staged> staged;
    };

    const size_t nchunks =
        std::max<size_t>(2, std::min(threads * 2, text.size() / (16 * 1024)));
    std::vector<std::pair<size_t, size_t>> ranges;  // [begin, end) into text
    size_t range_begin = 0;
    for (size_t i = 1; i < nchunks && range_begin < text.size(); ++i) {
      size_t target = std::max(range_begin, text.size() * i / nchunks);
      size_t nl = text.find('\n', target);
      if (nl == std::string_view::npos) break;
      ranges.emplace_back(range_begin, nl + 1);
      range_begin = nl + 1;
    }
    ranges.emplace_back(range_begin, text.size());

    std::vector<Chunk> chunks(ranges.size());
    for (size_t i = 0; i < ranges.size(); ++i) {
      auto [begin, end] = ranges[i];
      chunks[i].base_offset = begin;
      // Non-final chunks end with '\n'; strip it so the chunk's line count
      // excludes the empty segment after it (the serial loop counts that
      // segment only at the very end of the whole text).
      bool final_chunk = i + 1 == ranges.size();
      chunks[i].body = final_chunk ? text.substr(begin, end - begin)
                                   : text.substr(begin, end - begin - 1);
    }

    ThreadPool::Shared().ParallelFor(
        chunks.size(), 1,
        [&](size_t, size_t chunk_begin, size_t chunk_end) {
          for (size_t c = chunk_begin; c < chunk_end; ++c) {
            Chunk& chunk = chunks[c];
            std::string_view body = chunk.body;
            size_t rel_line = 0;
            size_t start = 0;
            while (start <= body.size()) {
              size_t nl = body.find('\n', start);
              std::string_view line = (nl == std::string_view::npos)
                                          ? body.substr(start)
                                          : body.substr(start, nl - start);
              ++rel_line;
              std::string_view trimmed = Trim(line);
              if (!trimmed.empty() && trimmed[0] != '#') {
                Staged staged;
                staged.rel_line = rel_line;
                staged.rel_offset = start;
                auto parsed = ParseLine(trimmed, &chunk.scratch);
                staged.ok = parsed.ok();
                if (parsed.ok()) {
                  staged.scratch_event = *parsed;
                } else {
                  staged.line = trimmed;
                }
                chunk.staged.push_back(staged);
              }
              if (nl == std::string_view::npos) break;
              start = nl + 1;
            }
            chunk.total_lines = rel_line;
          }
        },
        threads);

    // Ordered commit.
    size_t line_base = 0;
    for (Chunk& chunk : chunks) {
      for (const Staged& staged : chunk.staged) {
        size_t line_no = line_base + staged.rel_line;
        size_t byte_offset = chunk.base_offset + staged.rel_offset;
        ++stats.lines;
        if (staged.ok) {
          SystemEvent ev = chunk.scratch.event(staged.scratch_event);
          const SystemEntity& subj = chunk.scratch.entity(ev.subject);
          ev.subject = log->InternProcess(subj.pid, subj.exename);
          const SystemEntity& obj = chunk.scratch.entity(ev.object);
          switch (obj.type) {
            case EntityType::kFile:
              ev.object = log->InternFile(obj.path);
              break;
            case EntityType::kProcess:
              ev.object = log->InternProcess(obj.pid, obj.exename);
              break;
            case EntityType::kNetwork:
              ev.object = log->InternNetwork(obj.src_ip, obj.src_port,
                                             obj.dst_ip, obj.dst_port,
                                             obj.protocol);
              break;
          }
          log->AddEvent(ev);
          ++stats.events;
          continue;
        }
        // Re-parse the malformed line against the real log: this replays
        // any partial interning the serial parse would have done before
        // failing, and regenerates the identical error message.
        auto replay = ParseLine(staged.line, log);
        if (replay.ok()) {
          // Only possible under fault injection (the fault fired in the
          // worker but not here); keep the successfully parsed event.
          ++stats.events;
          continue;
        }
        if (auto failed =
                handle_malformed(line_no, byte_offset, replay.status())) {
          return *failed;
        }
      }
      line_base += chunk.total_lines;
    }
    record_batch(/*budget_exceeded=*/false);
    return stats;
  }

  size_t line_no = 0;
  size_t start = 0;
  while (start <= text.size()) {
    size_t nl = text.find('\n', start);
    std::string_view line = (nl == std::string_view::npos)
                                ? text.substr(start)
                                : text.substr(start, nl - start);
    ++line_no;
    std::string_view trimmed = Trim(line);
    if (!trimmed.empty() && trimmed[0] != '#') {
      ++stats.lines;
      auto result = ParseLine(trimmed, log);
      if (result.ok()) {
        ++stats.events;
      } else if (auto failed =
                     handle_malformed(line_no, start, result.status())) {
        return *failed;
      }
    }
    if (nl == std::string_view::npos) break;
    start = nl + 1;
  }
  record_batch(/*budget_exceeded=*/false);
  return stats;
}

std::string LogParser::FormatEvent(const AuditLog& log,
                                   const SystemEvent& event) {
  const SystemEntity& subj = log.entity(event.subject);
  const SystemEntity& obj = log.entity(event.object);
  std::string out = StrFormat(
      "ts=%lld pid=%u exe=%s op=%s obj=%s",
      static_cast<long long>(event.start_time), subj.pid, subj.exename.c_str(),
      std::string(OperationName(event.op)).c_str(),
      std::string(EntityTypeName(obj.type)).c_str());
  switch (obj.type) {
    case EntityType::kFile:
      out += " path=" + obj.path;
      break;
    case EntityType::kProcess:
      out += StrFormat(" cpid=%u cexe=%s", obj.pid, obj.exename.c_str());
      break;
    case EntityType::kNetwork:
      out += StrFormat(" srcip=%s srcport=%u dstip=%s dstport=%u proto=%s",
                       obj.src_ip.c_str(), obj.src_port, obj.dst_ip.c_str(),
                       obj.dst_port, obj.protocol.c_str());
      break;
  }
  if (event.end_time != event.start_time) {
    out += StrFormat(" end=%lld", static_cast<long long>(event.end_time));
  }
  if (event.bytes != 0) {
    out += StrFormat(" bytes=%llu", static_cast<unsigned long long>(event.bytes));
  }
  return out;
}

}  // namespace raptor::audit
