// Parser for the textual audit log format (paper §II-A, "Data Collection").
//
// The paper collects logs with Sysdig and parses them into system entities
// and events. We define an equivalent line-oriented key=value record format,
// one event per line:
//
//   ts=<ns> pid=<pid> exe=<path> op=read  obj=file path=/etc/passwd bytes=4096
//   ts=<ns> pid=<pid> exe=<path> op=fork  obj=proc cpid=412 cexe=/bin/bash
//   ts=<ns> pid=<pid> exe=<path> op=connect obj=net srcip=10.0.0.5
//       srcport=51532 dstip=103.5.8.9 dstport=443 proto=tcp  (one line)
//
// Optional keys: end=<ns> (defaults to ts), bytes=<n> (defaults to 0).
// Blank lines and lines starting with '#' are skipped. Fields may appear in
// any order. Parsing interns entities into the target AuditLog.

#pragma once

#include <string>
#include <string_view>

#include "audit/log.h"
#include "common/result.h"

namespace raptor::audit {

/// \brief Parses the textual audit record format into an AuditLog.
class LogParser {
 public:
  /// Parses one record line and appends it to `log`. Returns the new event
  /// id, or a ParseError naming the offending key.
  static Result<EventId> ParseLine(std::string_view line, AuditLog* log);

  /// Parses a whole document (one record per line). Stops at the first
  /// malformed line and reports its 1-based line number.
  static Status ParseText(std::string_view text, AuditLog* log);

  /// Renders `event` from `log` back into the line format (round-trips
  /// through ParseLine).
  static std::string FormatEvent(const AuditLog& log, const SystemEvent& event);
};

}  // namespace raptor::audit
