// Parser for the textual audit log format (paper §II-A, "Data Collection").
//
// The paper collects logs with Sysdig and parses them into system entities
// and events. We define an equivalent line-oriented key=value record format,
// one event per line:
//
//   ts=<ns> pid=<pid> exe=<path> op=read  obj=file path=/etc/passwd bytes=4096
//   ts=<ns> pid=<pid> exe=<path> op=fork  obj=proc cpid=412 cexe=/bin/bash
//   ts=<ns> pid=<pid> exe=<path> op=connect obj=net srcip=10.0.0.5
//       srcport=51532 dstip=103.5.8.9 dstport=443 proto=tcp  (one line)
//
// Optional keys: end=<ns> (defaults to ts), bytes=<n> (defaults to 0).
// Blank lines and lines starting with '#' are skipped. Fields may appear in
// any order. Parsing interns entities into the target AuditLog.

#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "audit/log.h"
#include "common/result.h"

namespace raptor::audit {

/// \brief Outcome of a (possibly tolerant) text parse pass.
struct ParseStats {
  size_t lines = 0;    ///< Record lines seen (blank/comment lines excluded).
  size_t events = 0;   ///< Lines parsed into audit events.
  size_t skipped = 0;  ///< Malformed lines skipped under the error budget.
  /// The first few skipped lines' errors, "line <n>: <message>" — enough to
  /// diagnose a bad producer without retaining the whole firehose.
  std::vector<std::string> error_samples;
};

/// \brief Tolerance knobs for ParseText.
struct ParseOptions {
  /// Malformed lines tolerated before the parse aborts. 0 is strict mode:
  /// the first malformed line fails the whole batch (the historic
  /// behavior). Lines already parsed stay in the log either way.
  size_t error_budget = 0;
  /// Cap on retained ParseStats::error_samples.
  size_t max_error_samples = 5;
  /// Parallel parsing: the text is split at line boundaries, chunks are
  /// parsed concurrently into scratch logs, and events are committed to the
  /// target log in input order — entity interning, event ids, line numbers,
  /// error samples, and budget semantics are byte-identical to the serial
  /// parse. 0 = hardware concurrency; 1 = the exact serial path. Inputs
  /// under ~64 KiB always parse serially (fan-out costs more than it wins).
  size_t num_threads = 0;
};

/// \brief Parses the textual audit record format into an AuditLog.
class LogParser {
 public:
  /// Parses one record line and appends it to `log`. Returns the new event
  /// id, or a ParseError naming the offending key.
  static Result<EventId> ParseLine(std::string_view line, AuditLog* log);

  /// Parses a whole document (one record per line). Stops at the first
  /// malformed line and reports its 1-based line number.
  static Status ParseText(std::string_view text, AuditLog* log);

  /// Error-budgeted parse: skips and counts up to `options.error_budget`
  /// malformed lines, recording the first few errors in the stats. Fails
  /// with ParseError once the budget is exceeded (strict when the budget is
  /// 0, matching ParseText above).
  static Result<ParseStats> ParseText(std::string_view text, AuditLog* log,
                                      const ParseOptions& options);

  /// Renders `event` from `log` back into the line format (round-trips
  /// through ParseLine).
  static std::string FormatEvent(const AuditLog& log, const SystemEvent& event);
};

}  // namespace raptor::audit
