#include "audit/types.h"

#include "common/strings.h"

namespace raptor::audit {

std::string SystemEntity::Key() const {
  switch (type) {
    case EntityType::kFile:
      return "file:" + path;
    case EntityType::kProcess:
      return StrFormat("proc:%u:%s", pid, exename.c_str());
    case EntityType::kNetwork:
      return StrFormat("net:%s:%u>%s:%u/%s", src_ip.c_str(), src_port,
                       dst_ip.c_str(), dst_port, protocol.c_str());
  }
  return "?";
}

std::string SystemEntity::ToString() const {
  switch (type) {
    case EntityType::kFile:
      return StrFormat("file{%s}", path.c_str());
    case EntityType::kProcess:
      return StrFormat("proc{pid=%u exe=%s}", pid, exename.c_str());
    case EntityType::kNetwork:
      return StrFormat("net{%s:%u -> %s:%u %s}", src_ip.c_str(), src_port,
                       dst_ip.c_str(), dst_port, protocol.c_str());
  }
  return "?";
}

std::string_view EntityTypeName(EntityType type) {
  switch (type) {
    case EntityType::kFile:
      return "file";
    case EntityType::kProcess:
      return "proc";
    case EntityType::kNetwork:
      return "net";
  }
  return "?";
}

std::string_view OperationName(Operation op) {
  switch (op) {
    case Operation::kRead:
      return "read";
    case Operation::kWrite:
      return "write";
    case Operation::kExecute:
      return "execute";
    case Operation::kDelete:
      return "delete";
    case Operation::kRename:
      return "rename";
    case Operation::kChmod:
      return "chmod";
    case Operation::kFork:
      return "fork";
    case Operation::kStart:
      return "start";
    case Operation::kKill:
      return "kill";
    case Operation::kConnect:
      return "connect";
    case Operation::kAccept:
      return "accept";
    case Operation::kSend:
      return "send";
    case Operation::kRecv:
      return "recv";
  }
  return "?";
}

Result<EntityType> ParseEntityType(std::string_view name) {
  if (name == "file") return EntityType::kFile;
  if (name == "proc" || name == "process") return EntityType::kProcess;
  if (name == "net" || name == "network" || name == "conn") {
    return EntityType::kNetwork;
  }
  return Status::ParseError("unknown entity type: " + std::string(name));
}

Result<Operation> ParseOperation(std::string_view name) {
  static const struct {
    std::string_view name;
    Operation op;
  } kTable[] = {
      {"read", Operation::kRead},       {"write", Operation::kWrite},
      {"execute", Operation::kExecute}, {"exec", Operation::kExecute},
      {"delete", Operation::kDelete},   {"unlink", Operation::kDelete},
      {"rename", Operation::kRename},   {"chmod", Operation::kChmod},
      {"fork", Operation::kFork},       {"start", Operation::kStart},
      {"kill", Operation::kKill},       {"connect", Operation::kConnect},
      {"accept", Operation::kAccept},   {"send", Operation::kSend},
      {"recv", Operation::kRecv},
  };
  for (const auto& row : kTable) {
    if (row.name == name) return row.op;
  }
  return Status::ParseError("unknown operation: " + std::string(name));
}

EventCategory CategoryOf(Operation op) {
  switch (op) {
    case Operation::kRead:
    case Operation::kWrite:
    case Operation::kExecute:
    case Operation::kDelete:
    case Operation::kRename:
    case Operation::kChmod:
      return EventCategory::kFileEvent;
    case Operation::kFork:
    case Operation::kStart:
    case Operation::kKill:
      return EventCategory::kProcessEvent;
    case Operation::kConnect:
    case Operation::kAccept:
    case Operation::kSend:
    case Operation::kRecv:
      return EventCategory::kNetworkEvent;
  }
  return EventCategory::kFileEvent;
}

EntityType ObjectTypeOf(Operation op) {
  switch (CategoryOf(op)) {
    case EventCategory::kFileEvent:
      return EntityType::kFile;
    case EventCategory::kProcessEvent:
      return EntityType::kProcess;
    case EventCategory::kNetworkEvent:
      return EntityType::kNetwork;
  }
  return EntityType::kFile;
}

}  // namespace raptor::audit
