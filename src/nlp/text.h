// Token and part-of-speech model for the NLP pipeline.
//
// The paper builds its extraction pipeline on spaCy; this reproduction uses
// an equivalent from-scratch stack (see DESIGN.md "Substitutions"). The
// coarse POS tag set below mirrors the Universal POS tags the pipeline's
// rules need.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace raptor::nlp {

/// Coarse universal POS tags.
enum class Pos : uint8_t {
  kNoun,
  kVerb,
  kAux,    ///< Auxiliary verbs (is, was, has, ...).
  kPron,   ///< Pronouns (it, they, ...).
  kDet,    ///< Determiners (the, a, this, ...).
  kAdp,    ///< Adpositions/prepositions (to, from, into, ...).
  kAdj,
  kAdv,
  kConj,   ///< Coordinating and subordinating conjunctions.
  kNum,
  kPart,   ///< Particles (to-infinitive, 's).
  kPunct,
  kOther,
};

std::string_view PosName(Pos pos);

/// \brief One token with its surface form, document offset, and the
/// annotations later stages fill in (POS, lemma).
struct Token {
  std::string text;
  size_t offset = 0;  ///< Char offset of the token in its block.
  Pos pos = Pos::kOther;
  std::string lemma;  ///< Filled by the lemmatizer; empty until then.

  bool IsPunct() const { return pos == Pos::kPunct; }
};

/// \brief A tokenized sentence.
struct Sentence {
  std::vector<Token> tokens;
  size_t offset = 0;  ///< Char offset of the sentence start in its block.
};

}  // namespace raptor::nlp
