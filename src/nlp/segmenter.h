// Block and sentence segmentation (paper §II-C steps 1 and 2) and
// tokenization.
//
// Blocks are the natural paragraphs of an OSCTI article; coreference
// resolution operates within a block. Sentence segmentation runs on
// IOC-protected text, which is what makes the naive period rule safe: after
// protection there are no dotted indicators left to split on.

#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "nlp/text.h"

namespace raptor::nlp {

/// Splits a document into blocks on blank lines. Markdown-style headers
/// (lines starting with '#') start a new block and are kept as their own
/// block. Returns (offset, text) pairs; offsets index into `document`.
struct BlockSpan {
  size_t offset = 0;
  std::string text;
};
std::vector<BlockSpan> SegmentBlocks(std::string_view document);

/// Splits a block into sentences at '.', '!', '?' followed by whitespace or
/// end of text. Common abbreviations (e.g., "e.g.", "i.e.", "etc.") do not
/// break sentences. Offsets index into the block text.
struct SentenceSpan {
  size_t offset = 0;
  std::string text;
};
std::vector<SentenceSpan> SegmentSentences(std::string_view block);

/// Rule-based tokenizer: whitespace split, then leading/trailing punctuation
/// is peeled into separate tokens. Hyphenated words and words containing
/// internal punctuation (the protected dummy never has any) stay whole.
/// Token offsets index into `text`.
std::vector<Token> Tokenize(std::string_view text);

}  // namespace raptor::nlp
