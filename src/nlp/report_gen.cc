#include "nlp/report_gen.h"

#include <algorithm>

#include "common/strings.h"

namespace raptor::nlp {

namespace {

/// A surface verb: past form for active voice, participle for passive, and
/// the lemma the pipeline should extract.
struct SurfaceVerb {
  const char* past;
  const char* participle;
  const char* lemma;
  /// Preposition linking the object ("" = direct object).
  const char* prep;
  /// Noun phrase inserted before a prepositional object ("the collected
  /// data" in "wrote the collected data to X"); "" = none.
  const char* filler;
};

const SurfaceVerb kReadVerbs[] = {
    {"read", "read", "read", "", ""},
    {"scanned", "scanned", "scan", "", ""},
    {"accessed", "accessed", "access", "", ""},
    {"opened", "opened", "open", "", ""},
};
const SurfaceVerb kWriteVerbs[] = {
    {"wrote", "written", "write", "to", "the collected data"},
    {"created", "created", "create", "", ""},
    {"stored", "stored", "store", "in", "the stolen data"},
    {"saved", "saved", "save", "to", "the output"},
};
const SurfaceVerb kConnectVerbs[] = {
    {"connected", "connected", "connect", "to", ""},
    {"communicated", "communicated", "communicate", "with", ""},
    {"contacted", "contacted", "contact", "", ""},
};
const SurfaceVerb kSendVerbs[] = {
    {"sent", "sent", "send", "to", "the harvested data"},
    {"exfiltrated", "exfiltrated", "exfiltrate", "to", "the archive"},
    {"transferred", "transferred", "transfer", "to", "the payload"},
    {"uploaded", "uploaded", "upload", "to", "the stolen files"},
};
const SurfaceVerb kDownloadVerbs[] = {
    {"downloaded", "downloaded", "download", "", ""},
    {"fetched", "fetched", "fetch", "", ""},
    {"retrieved", "retrieved", "retrieve", "", ""},
};
const SurfaceVerb kExecuteVerbs[] = {
    {"executed", "executed", "execute", "", ""},
    {"launched", "launched", "launch", "", ""},
    {"invoked", "invoked", "invoke", "", ""},
};
const SurfaceVerb kDeleteVerbs[] = {
    {"deleted", "deleted", "delete", "", ""},
    {"removed", "removed", "remove", "", ""},
    {"wiped", "wiped", "wipe", "", ""},
};

const char* const kDistractors[] = {
    "The intrusion remained undetected for several days.",
    "The campaign targeted organizations in the energy sector.",
    "Analysts attribute the activity to a financially motivated group.",
    "The operators moved carefully to avoid triggering alerts.",
    "Defenders are advised to rotate credentials promptly.",
};

const char* const kObjectNouns[] = {
    "file", "binary", "script", "payload", "archive", "image",
};

const SurfaceVerb& PickVerb(Rng* rng, VerbClass verb_class) {
  switch (verb_class) {
    case VerbClass::kRead:
      return kReadVerbs[rng->Uniform(std::size(kReadVerbs))];
    case VerbClass::kWrite:
      return kWriteVerbs[rng->Uniform(std::size(kWriteVerbs))];
    case VerbClass::kConnect:
      return kConnectVerbs[rng->Uniform(std::size(kConnectVerbs))];
    case VerbClass::kSend:
      return kSendVerbs[rng->Uniform(std::size(kSendVerbs))];
    case VerbClass::kDownload:
      return kDownloadVerbs[rng->Uniform(std::size(kDownloadVerbs))];
    case VerbClass::kExecute:
      return kExecuteVerbs[rng->Uniform(std::size(kExecuteVerbs))];
    case VerbClass::kDelete:
      return kDeleteVerbs[rng->Uniform(std::size(kDeleteVerbs))];
  }
  return kReadVerbs[0];
}

bool IsIpObject(VerbClass verb_class) {
  return verb_class == VerbClass::kConnect || verb_class == VerbClass::kSend;
}

}  // namespace

ReportGenerator::ReportGenerator(ReportGenOptions options)
    : options_(options), rng_(options.seed) {}

GeneratedReport ReportGenerator::Render(const std::vector<ScriptStep>& steps) {
  GeneratedReport report;
  report.text =
      "The adversary compromised the victim host during the intrusion. ";
  std::string prev_subject;

  auto note_relation = [&report](const std::string& subject,
                                 const char* lemma,
                                 const std::string& object) {
    report.relations.push_back(GeneratedLabel{subject, lemma, object});
    auto note_ioc = [&report](const std::string& text) {
      if (std::find(report.iocs.begin(), report.iocs.end(), text) ==
          report.iocs.end()) {
        report.iocs.push_back(text);
      }
    };
    note_ioc(subject);
    note_ioc(object);
  };

  for (size_t step_index = 0; step_index < steps.size(); ++step_index) {
    const ScriptStep& step = steps[step_index];

    // Coalesce a run of same-subject reads/deletes into one list sentence
    // ("X read /a, /b, and /c.") — common CTI phrasing.
    if ((step.verb == VerbClass::kRead || step.verb == VerbClass::kDelete) &&
        step_index + 1 < steps.size() &&
        steps[step_index + 1].verb == step.verb &&
        steps[step_index + 1].subject == step.subject &&
        rng_.Chance(0.5)) {
      std::vector<std::string> objects{step.object};
      while (step_index + 1 < steps.size() &&
             steps[step_index + 1].verb == step.verb &&
             steps[step_index + 1].subject == step.subject &&
             objects.size() < 3) {
        objects.push_back(steps[++step_index].object);
      }
      const SurfaceVerb& verb = PickVerb(&rng_, step.verb);
      std::string list;
      for (size_t i = 0; i < objects.size(); ++i) {
        if (i > 0) list += (i + 1 == objects.size()) ? ", and " : ", ";
        list += objects[i];
      }
      report.text += StrFormat("The process %s %s %s. ",
                               step.subject.c_str(), verb.past, list.c_str());
      for (const std::string& object : objects) {
        note_relation(step.subject, verb.lemma, object);
      }
      prev_subject = step.subject;
      continue;
    }
    if (rng_.Chance(options_.distractor_probability)) {
      report.text +=
          std::string(kDistractors[rng_.Uniform(std::size(kDistractors))]) +
          " ";
    }

    const SurfaceVerb& verb = PickVerb(&rng_, step.verb);
    bool same_subject = step.subject == prev_subject;
    bool use_pronoun =
        same_subject && rng_.Chance(options_.pronoun_probability);
    // Passive voice only for direct-object verbs ("/x was read by /y").
    bool use_passive = std::string_view(verb.prep).empty() &&
                       !use_pronoun && rng_.Chance(options_.passive_probability);

    std::string object_np;
    if (IsIpObject(step.verb)) {
      object_np = "the IP " + step.object;
    } else if (rng_.Chance(0.5)) {
      object_np = StrFormat("the %s %s",
                            kObjectNouns[rng_.Uniform(std::size(kObjectNouns))],
                            step.object.c_str());
    } else {
      object_np = step.object;
    }

    std::string sentence;
    if (use_passive) {
      sentence = StrFormat("%s was %s by %s.", object_np.c_str(),
                           verb.participle, step.subject.c_str());
      // Capitalize "the".
      if (sentence[0] == 't') sentence[0] = 'T';
    } else {
      std::string subject_np =
          use_pronoun ? "It"
                      : (rng_.Chance(0.5)
                             ? "The process " + step.subject
                             : step.subject);
      std::string adverb = same_subject && !use_pronoun && rng_.Chance(0.3)
                               ? " then"
                               : "";
      if (std::string_view(verb.prep).empty()) {
        sentence = StrFormat("%s%s %s %s.", subject_np.c_str(),
                             adverb.c_str(), verb.past, object_np.c_str());
      } else {
        std::string filler = std::string_view(verb.filler).empty()
                                 ? ""
                                 : std::string(" ") + verb.filler;
        sentence = StrFormat("%s%s %s%s %s %s.", subject_np.c_str(),
                             adverb.c_str(), verb.past, filler.c_str(),
                             verb.prep, object_np.c_str());
      }
    }
    report.text += sentence + " ";
    note_relation(step.subject, verb.lemma, step.object);
    prev_subject = step.subject;
  }
  return report;
}

std::vector<ScriptStep> ReportGenerator::RandomScript(size_t num_steps) {
  static const char* const kWords[] = {
      "updater", "agent",  "helper",  "daemon", "loader", "probe",
      "sync",    "worker", "monitor", "relay",  "cache",  "audit",
  };
  auto word = [&] { return kWords[rng_.Uniform(std::size(kWords))]; };
  auto fresh_path = [&](const char* dir, const char* ext) {
    return StrFormat("%s/%s_%zu%s", dir, word(), ++name_counter_, ext);
  };
  auto fresh_ip = [&] {
    return StrFormat("%u.%u.%u.%u",
                     static_cast<unsigned>(11 + rng_.Uniform(180)),
                     static_cast<unsigned>(1 + rng_.Uniform(250)),
                     static_cast<unsigned>(1 + rng_.Uniform(250)),
                     static_cast<unsigned>(1 + rng_.Uniform(250)));
  };

  std::vector<ScriptStep> steps;
  std::string subject = fresh_path("/usr/bin", "");
  std::string c2 = fresh_ip();
  std::string staging = fresh_path("/tmp", ".dat");
  while (steps.size() < num_steps) {
    switch (rng_.Uniform(6)) {
      case 0:
        steps.push_back({subject, VerbClass::kConnect, c2});
        break;
      case 1: {
        std::string tool = fresh_path("/tmp", ".bin");
        steps.push_back({subject, VerbClass::kDownload, tool});
        if (steps.size() < num_steps && rng_.Chance(0.7)) {
          steps.push_back({subject, VerbClass::kExecute, tool});
          // The tool may take over as the acting process.
          if (rng_.Chance(0.5)) subject = tool;
        }
        break;
      }
      case 2: {
        // Possibly a run of reads the renderer can coalesce into a list.
        size_t n = 1 + rng_.Uniform(3);
        for (size_t k = 0; k < n && steps.size() < num_steps; ++k) {
          steps.push_back(
              {subject, VerbClass::kRead, fresh_path("/etc", ".conf")});
        }
        break;
      }
      case 3:
        steps.push_back({subject, VerbClass::kWrite, staging});
        break;
      case 4:
        steps.push_back({subject, VerbClass::kSend, c2});
        break;
      case 5:
        steps.push_back(
            {subject, VerbClass::kDelete, fresh_path("/var/log", ".log")});
        break;
    }
  }
  steps.resize(num_steps);
  return steps;
}

}  // namespace raptor::nlp
