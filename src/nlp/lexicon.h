// Lexicon: closed-class word lists, the verb vocabulary, and the rule-based
// lemmatizer. This is the knowledge the POS tagger and the relation
// extractor share (spaCy's statistical models stand-in; see DESIGN.md).

#pragma once

#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>

namespace raptor::nlp {

/// \brief Word lists + lemmatization rules for security-report English.
class Lexicon {
 public:
  Lexicon();

  /// Shared immutable instance.
  static const Lexicon& Default();

  // Closed-class membership tests; `lower` must be lowercased.
  bool IsDeterminer(std::string_view lower) const;
  bool IsPronoun(std::string_view lower) const;
  bool IsPreposition(std::string_view lower) const;
  bool IsConjunction(std::string_view lower) const;
  bool IsAuxiliary(std::string_view lower) const;
  bool IsAdverb(std::string_view lower) const;

  /// True when `lemma` is a known verb (base form).
  bool IsKnownVerb(std::string_view lemma) const;

  /// True when `lemma` is a verb that can express an IOC relation (the
  /// "candidate IOC relation verbs" of paper §II-C step 4): read, write,
  /// download, connect, send, execute, ...
  bool IsRelationVerb(std::string_view lemma) const;

  /// Lemmatizes a (lowercased) verb form: irregular table first, then
  /// -ies/-ied/-ing/-ed/-es/-s suffix rules validated against the verb
  /// vocabulary. Returns the input unchanged when no rule applies.
  std::string LemmatizeVerb(std::string_view lower) const;

  /// Strips plural suffixes from a (lowercased) noun.
  std::string LemmatizeNoun(std::string_view lower) const;

 private:
  std::unordered_set<std::string> determiners_;
  std::unordered_set<std::string> pronouns_;
  std::unordered_set<std::string> prepositions_;
  std::unordered_set<std::string> conjunctions_;
  std::unordered_set<std::string> auxiliaries_;
  std::unordered_set<std::string> adverbs_;
  std::unordered_set<std::string> verbs_;
  std::unordered_set<std::string> relation_verbs_;
  std::unordered_map<std::string, std::string> irregular_verbs_;
};

}  // namespace raptor::nlp
