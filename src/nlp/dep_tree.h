// Dependency tree representation plus the annotations the pipeline stages
// attach (paper §II-C steps 3-6).

#pragma once

#include <string>
#include <vector>

#include "nlp/ioc.h"
#include "nlp/text.h"

namespace raptor::nlp {

/// Dependency relations (the subset the extraction rules consult).
enum class DepRel : uint8_t {
  kRoot,
  kNsubj,      ///< Active-voice subject.
  kNsubjPass,  ///< Passive-voice subject.
  kDobj,       ///< Direct object.
  kPrep,       ///< Preposition attached to a verb or noun.
  kPobj,       ///< Object of a preposition.
  kDet,
  kAmod,
  kCompound,   ///< Noun-noun modifier ("the process X": process -> X).
  kAdvmod,
  kAux,
  kAuxPass,
  kConj,
  kCc,
  kMark,       ///< "to" before an infinitive, subordinators.
  kPunct,
  kDep,        ///< Unclassified attachment.
};

std::string_view DepRelName(DepRel rel);

/// \brief One node of a dependency tree with pipeline annotations.
struct DepNode {
  Token token;
  int head = -1;  ///< Parent node index; -1 for the root.
  DepRel rel = DepRel::kDep;
  std::vector<int> children;

  // --- Stage 3: IOC restoration (RemoveIocProtection). ---
  bool is_ioc = false;
  IocSpan ioc;  ///< Valid when is_ioc.

  // --- Stage 4: tree annotation. ---
  bool is_relation_verb_candidate = false;
  bool is_pronoun_mention = false;  ///< Pronoun that may corefer to an IOC.
  /// Any node that may corefer to an IOC: pronouns plus definite NP heads
  /// like "the archive" / "the C2 server". Simplification keeps these.
  bool is_coref_candidate = false;

  // --- Stage 6/7: coreference and merge results. ---
  /// Index into the pipeline's global merged IOC list; -1 until resolved.
  /// Set for IOC nodes (their merged identity) and for coreferring
  /// pronouns (their antecedent's identity).
  int resolved_ioc = -1;

  // --- Stage 5: tree simplification. ---
  bool removed = false;
};

/// \brief A parsed sentence as a dependency tree.
struct DepTree {
  std::vector<DepNode> nodes;
  int root = -1;
  /// Char offset of the sentence within its block (for global ordering).
  size_t sentence_offset = 0;
  /// Char offset of the block within the document.
  size_t block_offset = 0;

  /// Global document offset of node `i`'s token.
  size_t GlobalOffset(int i) const {
    return block_offset + sentence_offset + nodes[i].token.offset;
  }

  /// Recomputes every node's children list from the head pointers.
  void RebuildChildren();

  /// Node indexes from `i` up to the root, inclusive of both.
  std::vector<int> PathToRoot(int i) const;

  /// Lowest common ancestor of `a` and `b` (possibly a or b itself).
  int Lca(int a, int b) const;

  /// Indented one-node-per-line rendering for debugging and tests.
  std::string ToString() const;
};

}  // namespace raptor::nlp
