// Hashed character-n-gram word vectors (spaCy word-vector stand-in).
//
// The IOC scan-and-merge stage (paper §II-C step 7) merges similar IOCs
// "based on both the character-level overlap and the word vector
// similarities". These vectors give the second signal: two strings that
// share many character 3-4-grams land close in cosine space, which catches
// variants like "/tmp/payload_v2.bin" vs "/tmp/payload.bin".

#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <string_view>

namespace raptor::nlp {

inline constexpr size_t kEmbeddingDim = 64;

using Embedding = std::array<float, kEmbeddingDim>;

/// Builds the hashed n-gram embedding of `word` (3- and 4-grams, FNV-1a
/// hashed into kEmbeddingDim signed buckets, L2-normalized).
Embedding EmbedWord(std::string_view word);

/// Cosine similarity in [-1, 1]; 0 when either vector is zero.
double CosineSimilarity(const Embedding& a, const Embedding& b);

}  // namespace raptor::nlp
