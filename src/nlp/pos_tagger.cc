#include "nlp/pos_tagger.h"

#include <cctype>

#include "common/strings.h"

namespace raptor::nlp {

namespace {

bool IsNumber(std::string_view w) {
  bool any_digit = false;
  for (char c : w) {
    if (std::isdigit(static_cast<unsigned char>(c))) {
      any_digit = true;
    } else if (c != '.' && c != ',' && c != '-' && c != '%') {
      return false;
    }
  }
  return any_digit;
}

}  // namespace

void TagPos(std::vector<Token>* tokens, const Lexicon& lexicon) {
  // Pass 1: lexicon + morphology.
  for (Token& t : *tokens) {
    if (t.pos == Pos::kPunct) {
      t.lemma = t.text;
      continue;
    }
    std::string lower = ToLower(t.text);
    if (IsNumber(lower)) {
      t.pos = Pos::kNum;
      t.lemma = lower;
      continue;
    }
    if (lower == "to") {
      // Disambiguated in pass 2 (particle before verb vs preposition).
      t.pos = Pos::kAdp;
      t.lemma = lower;
      continue;
    }
    if (lexicon.IsDeterminer(lower)) {
      t.pos = Pos::kDet;
    } else if (lexicon.IsPronoun(lower)) {
      t.pos = Pos::kPron;
    } else if (lexicon.IsAuxiliary(lower)) {
      t.pos = Pos::kAux;
    } else if (lexicon.IsPreposition(lower)) {
      t.pos = Pos::kAdp;
    } else if (lexicon.IsConjunction(lower)) {
      t.pos = Pos::kConj;
    } else if (lexicon.IsAdverb(lower)) {
      t.pos = Pos::kAdv;
    } else {
      std::string verb_lemma = lexicon.LemmatizeVerb(lower);
      if (lexicon.IsKnownVerb(verb_lemma)) {
        t.pos = Pos::kVerb;
        t.lemma = verb_lemma;
        continue;
      }
      if (lower.size() > 3 && lower.ends_with("ly")) {
        t.pos = Pos::kAdv;
      } else if (lower.size() > 4 &&
                 (lower.ends_with("ous") || lower.ends_with("ful") ||
                  lower.ends_with("ive") || lower.ends_with("able") ||
                  lower.ends_with("ible"))) {
        t.pos = Pos::kAdj;
      } else {
        t.pos = Pos::kNoun;
      }
    }
    t.lemma = (t.pos == Pos::kNoun) ? lexicon.LemmatizeNoun(lower) : lower;
  }

  // Pass 2: local context repairs. Two sweeps so chained NP-internal
  // repairs settle ("the compressed archive": participle -> ADJ on sweep 1
  // lets the base-form rule turn "archive" into a noun on sweep 2).
  for (int sweep = 0; sweep < 2; ++sweep) {
  for (size_t i = 0; i < tokens->size(); ++i) {
    Token& t = (*tokens)[i];
    std::string lower = ToLower(t.text);

    // Participle used as a prenominal modifier: "the collected data",
    // "the compressed archive" — an inflected verb between a determiner or
    // adjective and a nominal is an adjective, not a clause verb.
    if (t.pos == Pos::kVerb && i > 0 && i + 1 < tokens->size() &&
        t.lemma != lower &&
        (lower.ends_with("ed") || lower.ends_with("en") ||
         lower.ends_with("ing"))) {
      Pos prev = (*tokens)[i - 1].pos;
      const Token& next = (*tokens)[i + 1];
      bool next_nominal = next.pos == Pos::kNoun || next.pos == Pos::kPron ||
                          next.pos == Pos::kAdj ||
                          (next.pos == Pos::kVerb &&
                           next.lemma == ToLower(next.text));
      if ((prev == Pos::kDet || prev == Pos::kAdj) && next_nominal) {
        t.pos = Pos::kAdj;
      }
    }

    // A base-form (uninflected) verb inside a noun phrase is a noun: "the
    // download", "the compressed archive". Inflected forms ("downloaded",
    // "wrote") stay verbs — CTI narrative is past tense, so finite verbs
    // after a subject noun keep their tag.
    if (t.pos == Pos::kVerb && i > 0 && t.lemma == lower) {
      Pos prev = (*tokens)[i - 1].pos;
      if (prev == Pos::kDet || prev == Pos::kAdj || prev == Pos::kNoun ||
          prev == Pos::kNum) {
        t.pos = Pos::kNoun;
        t.lemma = lexicon.LemmatizeNoun(lower);
      }
    }

    // "to" + base verb => particle + verb ("attempted to connect").
    if (t.pos == Pos::kAdp && lower == "to" && i + 1 < tokens->size()) {
      const Token& next = (*tokens)[i + 1];
      std::string next_lemma = lexicon.LemmatizeVerb(ToLower(next.text));
      if (lexicon.IsKnownVerb(next_lemma) && next.pos == Pos::kVerb) {
        t.pos = Pos::kPart;
      }
    }

    // Auxiliary before a NOUN-tagged -ed/-en word => passive participle
    // ("was downloaded" where "downloaded" missed the verb list).
    if (i > 0 && (*tokens)[i - 1].pos == Pos::kAux && t.pos == Pos::kNoun &&
        (lower.ends_with("ed") || lower.ends_with("en"))) {
      t.pos = Pos::kVerb;
      t.lemma = lexicon.LemmatizeVerb(lower);
    }
  }
  }
}

}  // namespace raptor::nlp
