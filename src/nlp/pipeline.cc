#include "nlp/pipeline.h"

#include <algorithm>
#include <set>
#include <unordered_set>

#include "common/strings.h"
#include "nlp/embeddings.h"
#include "nlp/pos_tagger.h"
#include "nlp/segmenter.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace raptor::nlp {

ExtractionPipeline::ExtractionPipeline(PipelineOptions options)
    : options_(options), lexicon_(Lexicon::Default()) {}

// --- Stage 3b: IOC restoration after parsing (RemoveIocProtection). ---

void ExtractionPipeline::RestoreIocProtection(
    const ProtectedText& protected_block, DepTree* tree) const {
  for (DepNode& node : tree->nodes) {
    if (node.token.text != kIocDummy) continue;
    const ProtectedText::Replacement* repl = protected_block.FindAtOffset(
        tree->sentence_offset + node.token.offset);
    if (repl == nullptr) continue;
    node.is_ioc = true;
    node.ioc = repl->ioc;
    node.token.text = repl->ioc.text;
  }
}

// --- Ablation path: IOC recognition directly on the (shattered) parse. ---

void ExtractionPipeline::RecognizeUnprotected(std::string_view sentence_text,
                                              DepTree* tree) const {
  std::vector<IocSpan> spans = recognizer_.Recognize(sentence_text);
  for (const IocSpan& span : spans) {
    // Without protection the tokenizer has split most indicators apart; an
    // IOC is only recovered when one token covers the span exactly.
    for (DepNode& node : tree->nodes) {
      if (node.token.offset == span.offset &&
          node.token.text.size() == span.length) {
        node.is_ioc = true;
        node.ioc = span;
        break;
      }
    }
  }
}

// --- Stage 4: tree annotation. ---

namespace {

bool SubjObjRel(DepRel rel) {
  return rel == DepRel::kNsubj || rel == DepRel::kNsubjPass ||
         rel == DepRel::kDobj || rel == DepRel::kPobj;
}

/// Common nouns that corefer to a file-like or host-like IOC when used as a
/// definite NP head ("the archive", "the server").
bool FileLikeNounLemma(const std::string& lemma) {
  static const std::unordered_set<std::string> kSet = {
      "file",   "archive", "image",  "binary", "script", "payload",
      "executable", "document", "library", "sample", "dropper", "implant",
      "backdoor", "tool",
  };
  return kSet.count(lemma) > 0;
}

bool HostLikeNounLemma(const std::string& lemma) {
  static const std::unordered_set<std::string> kSet = {
      "server", "address", "ip", "host", "domain", "endpoint",
  };
  return kSet.count(lemma) > 0;
}

}  // namespace

void ExtractionPipeline::AnnotateTree(DepTree* tree) const {
  static const std::unordered_set<std::string> kCorefPronouns = {
      "it", "they", "them", "itself", "themselves", "which", "who",
  };
  for (DepNode& node : tree->nodes) {
    if (node.is_ioc) continue;
    if (node.token.pos == Pos::kVerb &&
        lexicon_.IsRelationVerb(node.token.lemma)) {
      node.is_relation_verb_candidate = true;
    }
    if (node.token.pos == Pos::kPron &&
        kCorefPronouns.count(ToLower(node.token.text)) > 0) {
      node.is_pronoun_mention = true;
      node.is_coref_candidate = true;
    }
    // Definite NP heads over file-like/host-like common nouns ("the
    // archive", "the C2 server") are coreference candidates too.
    if (node.token.pos == Pos::kNoun && SubjObjRel(node.rel) &&
        (FileLikeNounLemma(node.token.lemma) ||
         HostLikeNounLemma(node.token.lemma))) {
      bool has_det = false;
      bool has_ioc_child = false;
      for (int c : node.children) {
        const DepNode& child = tree->nodes[static_cast<size_t>(c)];
        if (child.rel == DepRel::kDet) has_det = true;
        if (child.is_ioc) has_ioc_child = true;
      }
      if (has_det && !has_ioc_child) node.is_coref_candidate = true;
    }
  }
}

// --- Stage 5: tree simplification. ---

void ExtractionPipeline::SimplifyTree(DepTree* tree) const {
  if (tree->nodes.empty()) return;
  // keep = subtree contains an IOC, a pronoun mention, or a candidate verb.
  std::vector<int> keep(tree->nodes.size(), -1);
  // Process nodes bottom-up: children before parents. A simple reverse
  // topological pass: repeat until fixpoint is overkill; instead compute via
  // DFS from root.
  std::vector<int> order;
  order.reserve(tree->nodes.size());
  std::vector<int> stack{tree->root};
  while (!stack.empty()) {
    int i = stack.back();
    stack.pop_back();
    if (i < 0) continue;
    order.push_back(i);
    for (int c : tree->nodes[static_cast<size_t>(i)].children) {
      stack.push_back(c);
    }
  }
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    DepNode& n = tree->nodes[static_cast<size_t>(*it)];
    bool k = n.is_ioc || n.is_coref_candidate || n.is_relation_verb_candidate;
    for (int c : n.children) {
      if (keep[static_cast<size_t>(c)] == 1) k = true;
    }
    keep[static_cast<size_t>(*it)] = k ? 1 : 0;
  }
  for (size_t i = 0; i < tree->nodes.size(); ++i) {
    if (static_cast<int>(i) == tree->root) continue;
    if (keep[i] == 0) tree->nodes[i].removed = true;
  }
}

// --- Stage 6: coreference resolution within a block. ---

namespace {

bool IsSubjectRel(DepRel rel) {
  return rel == DepRel::kNsubj || rel == DepRel::kNsubjPass;
}

bool IsObjectRel(DepRel rel) {
  return rel == DepRel::kDobj || rel == DepRel::kPobj;
}

}  // namespace

void ExtractionPipeline::ResolveCoreference(
    std::vector<DepTree>* block_trees) const {
  // Chronological list of IOC mentions in the block: (global offset,
  // tree idx, node idx).
  struct Mention {
    size_t offset;
    size_t tree;
    int node;
  };
  std::vector<Mention> mentions;
  auto rebuild_mentions = [&]() {
    mentions.clear();
    for (size_t t = 0; t < block_trees->size(); ++t) {
      const DepTree& tree = (*block_trees)[t];
      for (size_t i = 0; i < tree.nodes.size(); ++i) {
        if (tree.nodes[i].is_ioc && !tree.nodes[i].is_pronoun_mention) {
          mentions.push_back(
              Mention{tree.GlobalOffset(static_cast<int>(i)), t,
                      static_cast<int>(i)});
        }
      }
    }
    std::sort(mentions.begin(), mentions.end(),
              [](const Mention& a, const Mention& b) {
                return a.offset < b.offset;
              });
  };
  rebuild_mentions();

  auto latest_before = [&](size_t offset,
                           auto&& accept) -> const Mention* {
    const Mention* best = nullptr;
    for (const Mention& m : mentions) {
      if (m.offset >= offset) break;
      const DepNode& n = (*block_trees)[m.tree].nodes[static_cast<size_t>(m.node)];
      if (accept(n)) best = &m;
    }
    return best;
  };

  for (size_t t = 0; t < block_trees->size(); ++t) {
    DepTree& tree = (*block_trees)[t];
    for (size_t i = 0; i < tree.nodes.size(); ++i) {
      DepNode& node = tree.nodes[i];
      if (node.is_ioc || node.removed || !node.is_coref_candidate) continue;
      size_t offset = tree.GlobalOffset(static_cast<int>(i));

      const Mention* antecedent = nullptr;
      if (node.is_pronoun_mention) {
        // Match the pronoun's grammatical role first (the paper's "checking
        // their POS tags and dependencies"), then fall back to recency.
        if (IsSubjectRel(node.rel)) {
          antecedent = latest_before(offset, [](const DepNode& n) {
            return IsSubjectRel(n.rel);
          });
        } else if (IsObjectRel(node.rel)) {
          antecedent = latest_before(offset, [](const DepNode& n) {
            return IsObjectRel(n.rel);
          });
        }
        if (antecedent == nullptr) {
          antecedent =
              latest_before(offset, [](const DepNode&) { return true; });
        }
      } else {
        // Definite NP coreference: "the archive", "the C2 server". The
        // antecedent must itself have been a *thing* (object-ish mention) —
        // never a clause subject, or "the archive" right after "the process
        // /usr/bin/scp sent" would resolve to the sending process.
        auto object_ish = [](const DepNode& n) {
          return IsObjectRel(n.rel) || n.rel == DepRel::kNsubjPass;
        };
        if (FileLikeNounLemma(node.token.lemma)) {
          antecedent = latest_before(offset, [&](const DepNode& n) {
            return object_ish(n) && (n.ioc.type == IocType::kFilepath ||
                                     n.ioc.type == IocType::kFilename ||
                                     n.ioc.type == IocType::kUrl);
          });
        } else if (HostLikeNounLemma(node.token.lemma)) {
          antecedent = latest_before(offset, [&](const DepNode& n) {
            return object_ish(n) && (n.ioc.type == IocType::kIp ||
                                     n.ioc.type == IocType::kDomain);
          });
        }
      }

      if (antecedent != nullptr) {
        const DepNode& ant = (*block_trees)[antecedent->tree]
                                 .nodes[static_cast<size_t>(antecedent->node)];
        node.is_ioc = true;
        node.ioc = ant.ioc;
        // The resolved mention keeps its own position; only identity is
        // borrowed from the antecedent.
      }
    }
  }
}

// --- Stage 7: IOC scan and merge. ---

namespace {

/// Guard against over-merging path-like IOCs: "/tmp/data.tar" and
/// "/tmp/data.tar.gz" are distinct entities (a file and the archive derived
/// from it) even though they are character-wise similar. Two paths are merge
/// candidates only when neither is a strict prefix of the other and their
/// final extensions agree.
bool MergeCompatible(const std::string& a, const std::string& b,
                     IocType type) {
  if (type != IocType::kFilepath && type != IocType::kFilename) return true;
  if (a.size() != b.size() &&
      (a.starts_with(b) || b.starts_with(a))) {
    return false;
  }
  auto extension = [](const std::string& s) -> std::string {
    size_t slash = s.find_last_of("/\\");
    size_t dot = s.find_last_of('.');
    if (dot == std::string::npos ||
        (slash != std::string::npos && dot < slash)) {
      return "";
    }
    return s.substr(dot + 1);
  };
  return extension(a) == extension(b);
}

}  // namespace

std::vector<IocEntity> ExtractionPipeline::ScanMergeIocs(
    std::vector<DepTree>* all_trees, std::vector<IocSpan>* raw) const {
  struct Occurrence {
    size_t offset;
    size_t tree;
    int node;
  };
  std::vector<Occurrence> occurrences;
  for (size_t t = 0; t < all_trees->size(); ++t) {
    DepTree& tree = (*all_trees)[t];
    for (size_t i = 0; i < tree.nodes.size(); ++i) {
      if (!tree.nodes[i].is_ioc) continue;
      occurrences.push_back(
          Occurrence{tree.GlobalOffset(static_cast<int>(i)), t,
                     static_cast<int>(i)});
      raw->push_back(tree.nodes[i].ioc);
    }
  }
  std::sort(occurrences.begin(), occurrences.end(),
            [](const Occurrence& a, const Occurrence& b) {
              return a.offset < b.offset;
            });

  std::vector<IocEntity> canon;
  std::vector<Embedding> canon_vecs;
  for (const Occurrence& occ : occurrences) {
    DepNode& node = (*all_trees)[occ.tree].nodes[static_cast<size_t>(occ.node)];
    const std::string& text = node.ioc.text;
    int match = -1;
    for (size_t c = 0; c < canon.size(); ++c) {
      if (canon[c].type != node.ioc.type) continue;
      if (canon[c].text == text) {
        match = static_cast<int>(c);
        break;
      }
      bool alias_hit = std::find(canon[c].aliases.begin(),
                                 canon[c].aliases.end(),
                                 text) != canon[c].aliases.end();
      if (alias_hit) {
        match = static_cast<int>(c);
        break;
      }
      if (options_.enable_ioc_merge && MergeCompatible(canon[c].text, text,
                                                       canon[c].type)) {
        double dice = BigramDiceSimilarity(canon[c].text, text);
        double cos = CosineSimilarity(canon_vecs[c], EmbedWord(text));
        if (dice >= options_.merge_dice_threshold ||
            cos >= options_.merge_cosine_threshold) {
          match = static_cast<int>(c);
          break;
        }
      }
    }
    if (match < 0) {
      IocEntity entity;
      entity.type = node.ioc.type;
      entity.text = text;
      entity.id = static_cast<int>(canon.size());
      canon.push_back(std::move(entity));
      canon_vecs.push_back(EmbedWord(text));
      match = canon.back().id;
    } else if (canon[static_cast<size_t>(match)].text != text) {
      IocEntity& e = canon[static_cast<size_t>(match)];
      if (std::find(e.aliases.begin(), e.aliases.end(), text) ==
          e.aliases.end()) {
        e.aliases.push_back(text);
        // Canonical form: keep the longest (most specific) variant.
        if (text.size() > e.text.size()) {
          e.aliases.push_back(e.text);
          e.text = text;
          canon_vecs[static_cast<size_t>(match)] = EmbedWord(text);
        }
      }
    }
    node.resolved_ioc = match;
  }
  return canon;
}

// --- Stage 8: IOC relation extraction. ---

namespace {

/// Dependency rels from `node` up to (excluding) `lca`, bottom-to-top, plus
/// flags the rules consult.
struct SidePath {
  std::vector<DepRel> rels;
  std::vector<int> nodes;  ///< Path nodes excluding the endpoints' LCA.
  bool via_by = false;     ///< Path crosses a "by" preposition.
  bool crosses_verb = false;  ///< An intermediate node is a verb.
  bool valid = false;
};

SidePath CollectSide(const DepTree& tree, int node, int lca) {
  SidePath side;
  int cur = node;
  size_t guard = 0;
  while (cur != lca && cur >= 0 && guard++ <= tree.nodes.size()) {
    const DepNode& n = tree.nodes[static_cast<size_t>(cur)];
    side.rels.push_back(n.rel);
    side.nodes.push_back(cur);
    if (n.rel == DepRel::kPrep && ToLower(n.token.text) == "by") {
      side.via_by = true;
    }
    if (cur != node && n.token.pos == Pos::kVerb) side.crosses_verb = true;
    cur = n.head;
  }
  side.valid = (cur == lca);
  return side;
}

bool AllRelsIn(const std::vector<DepRel>& rels,
               std::initializer_list<DepRel> allowed) {
  for (DepRel r : rels) {
    if (std::find(allowed.begin(), allowed.end(), r) == allowed.end()) {
      return false;
    }
  }
  return true;
}

bool ContainsRel(const std::vector<DepRel>& rels, DepRel rel) {
  return std::find(rels.begin(), rels.end(), rel) != rels.end();
}

enum class Role { kNone, kSubjectActive, kSubjectPassive, kObject };

Role ClassifySide(const SidePath& side) {
  if (!side.valid || side.rels.empty()) return Role::kNone;
  // Subject paths may traverse NP coordination ("X and Y read ...") but
  // never another verb — a verb on the path means the candidate is the
  // subject of a *different clause* than the LCA's.
  if (!side.crosses_verb &&
      AllRelsIn(side.rels,
                {DepRel::kNsubj, DepRel::kConj, DepRel::kCompound}) &&
      ContainsRel(side.rels, DepRel::kNsubj)) {
    return Role::kSubjectActive;
  }
  if (!side.crosses_verb &&
      AllRelsIn(side.rels,
                {DepRel::kNsubjPass, DepRel::kConj, DepRel::kCompound}) &&
      ContainsRel(side.rels, DepRel::kNsubjPass)) {
    return Role::kSubjectPassive;
  }
  if (AllRelsIn(side.rels, {DepRel::kDobj, DepRel::kPobj, DepRel::kPrep,
                            DepRel::kConj, DepRel::kCompound}) &&
      (ContainsRel(side.rels, DepRel::kDobj) ||
       ContainsRel(side.rels, DepRel::kPobj))) {
    return Role::kObject;
  }
  return Role::kNone;
}

}  // namespace

void ExtractionPipeline::ExtractRelations(const DepTree& tree,
                                          const std::vector<IocEntity>& iocs,
                                          std::vector<IocRelation>* out) const {
  (void)iocs;
  std::vector<int> ioc_nodes;
  for (size_t i = 0; i < tree.nodes.size(); ++i) {
    if (tree.nodes[i].is_ioc && tree.nodes[i].resolved_ioc >= 0 &&
        !tree.nodes[i].removed) {
      ioc_nodes.push_back(static_cast<int>(i));
    }
  }

  for (size_t x = 0; x < ioc_nodes.size(); ++x) {
    for (size_t y = x + 1; y < ioc_nodes.size(); ++y) {
      int a = ioc_nodes[x];
      int b = ioc_nodes[y];
      if (tree.nodes[static_cast<size_t>(a)].resolved_ioc ==
          tree.nodes[static_cast<size_t>(b)].resolved_ioc) {
        continue;  // same entity mentioned twice
      }
      int lca = tree.Lca(a, b);
      if (lca < 0 || lca == a || lca == b) continue;

      SidePath side_a = CollectSide(tree, a, lca);
      SidePath side_b = CollectSide(tree, b, lca);
      Role role_a = ClassifySide(side_a);
      Role role_b = ClassifySide(side_b);

      int subj = -1, obj = -1;
      SidePath* obj_side = nullptr;
      if (role_a == Role::kSubjectActive && role_b == Role::kObject &&
          !side_b.via_by) {
        subj = a;
        obj = b;
        obj_side = &side_b;
      } else if (role_b == Role::kSubjectActive && role_a == Role::kObject &&
                 !side_a.via_by) {
        subj = b;
        obj = a;
        obj_side = &side_a;
      } else if (role_a == Role::kObject && side_a.via_by &&
                 role_b == Role::kSubjectPassive) {
        subj = a;  // agent of a passive clause
        obj = b;
        obj_side = &side_b;
      } else if (role_b == Role::kObject && side_b.via_by &&
                 role_a == Role::kSubjectPassive) {
        subj = b;
        obj = a;
        obj_side = &side_a;
      } else {
        continue;
      }
      (void)obj_side;

      // Relation verb: scan annotated candidates on the three dependency
      // path parts (root->LCA, LCA->subject, LCA->object, plus the LCA
      // itself) and pick the one closest to the object IOC node.
      std::vector<int> candidates;
      auto consider = [&](int i) {
        if (tree.nodes[static_cast<size_t>(i)].is_relation_verb_candidate) {
          candidates.push_back(i);
        }
      };
      consider(lca);
      for (int i : side_a.nodes) consider(i);
      for (int i : side_b.nodes) consider(i);
      for (int cur = tree.nodes[static_cast<size_t>(lca)].head; cur >= 0;
           cur = tree.nodes[static_cast<size_t>(cur)].head) {
        consider(cur);
      }
      if (candidates.empty()) continue;

      size_t obj_offset = tree.GlobalOffset(obj);
      int best = candidates[0];
      size_t best_dist = SIZE_MAX;
      for (int c : candidates) {
        size_t off = tree.GlobalOffset(c);
        size_t dist = off > obj_offset ? off - obj_offset : obj_offset - off;
        if (dist < best_dist ||
            (dist == best_dist && off < tree.GlobalOffset(best))) {
          best = c;
          best_dist = dist;
        }
      }

      IocRelation rel;
      rel.subject_ioc = tree.nodes[static_cast<size_t>(subj)].resolved_ioc;
      rel.object_ioc = tree.nodes[static_cast<size_t>(obj)].resolved_ioc;
      rel.verb = tree.nodes[static_cast<size_t>(best)].token.lemma;
      rel.verb_offset = tree.GlobalOffset(best);
      out->push_back(std::move(rel));
    }
  }
}

// --- Algorithm 1 driver. ---

ExtractionResult ExtractionPipeline::Extract(std::string_view document) const {
  // One batch of counter updates per document, whatever its size.
  static obs::Counter* extractions_total = obs::Registry::Default().GetCounter(
      "raptor_extractions_total", "CTI documents run through NLP extraction");
  static obs::Counter* iocs_total = obs::Registry::Default().GetCounter(
      "raptor_iocs_extracted_total", "Canonical IOC entities extracted");
  static obs::Counter* relations_total = obs::Registry::Default().GetCounter(
      "raptor_relations_extracted_total",
      "Deduplicated IOC relations extracted");
  obs::Tracer& tracer = obs::Tracer::Default();
  obs::Span extract_span = tracer.StartSpan("extract");

  ExtractionResult result;
  std::vector<DepTree> all_trees;

  obs::Span parse_span = tracer.StartSpan("parse_blocks");
  for (const BlockSpan& block : SegmentBlocks(document)) {
    ProtectedText protected_block;
    if (options_.enable_ioc_protection) {
      protected_block = ProtectIocs(block.text, recognizer_);
    } else {
      protected_block.text = block.text;
    }

    std::vector<DepTree> block_trees;
    for (const SentenceSpan& sent : SegmentSentences(protected_block.text)) {
      std::vector<Token> tokens = Tokenize(sent.text);
      TagPos(&tokens, lexicon_);
      DepTree tree = ParseDependency(std::move(tokens), lexicon_);
      tree.sentence_offset = sent.offset;
      tree.block_offset = block.offset;
      if (options_.enable_ioc_protection) {
        RestoreIocProtection(protected_block, &tree);
      } else {
        RecognizeUnprotected(sent.text, &tree);
      }
      AnnotateTree(&tree);
      if (options_.enable_tree_simplification) SimplifyTree(&tree);
      block_trees.push_back(std::move(tree));
    }
    if (options_.enable_coreference) ResolveCoreference(&block_trees);
    for (auto& tree : block_trees) all_trees.push_back(std::move(tree));
  }
  if (parse_span.active()) {
    parse_span.SetAttr("trees", static_cast<int64_t>(all_trees.size()));
  }
  parse_span.End();

  obs::Span merge_span = tracer.StartSpan("merge_iocs");
  std::vector<IocEntity> iocs = ScanMergeIocs(&all_trees, &result.raw_iocs);
  if (merge_span.active()) {
    merge_span.SetAttr("iocs", static_cast<int64_t>(iocs.size()));
  }
  merge_span.End();

  obs::Span relations_span = tracer.StartSpan("relations");
  std::vector<IocRelation> relations;
  for (const DepTree& tree : all_trees) {
    ExtractRelations(tree, iocs, &relations);
  }
  relations_span.End();

  // Stage 10: construct the graph. Triplets are ordered by the occurrence
  // offset of the relation verb and deduplicated; each edge carries its
  // 1-based sequence number.
  std::sort(relations.begin(), relations.end(),
            [](const IocRelation& a, const IocRelation& b) {
              return a.verb_offset < b.verb_offset;
            });
  std::set<std::tuple<int, int, std::string>> seen;
  for (IocEntity& e : iocs) {
    result.graph.AddNode(std::move(e));
  }
  int seq = 0;
  size_t dropped_relations = 0;
  for (const IocRelation& r : relations) {
    auto key = std::make_tuple(r.subject_ioc, r.object_ioc, r.verb);
    if (!seen.insert(key).second) {
      ++dropped_relations;
      continue;
    }
    BehaviorEdge edge;
    edge.src = r.subject_ioc;
    edge.dst = r.object_ioc;
    edge.verb = r.verb;
    edge.sequence = ++seq;
    edge.text_offset = r.verb_offset;
    result.graph.AddEdge(edge);
    result.relations.push_back(r);
  }

  result.trees = std::move(all_trees);
  extractions_total->Increment();
  iocs_total->Increment(result.graph.num_nodes());
  relations_total->Increment(result.relations.size());
  obs::Logger& logger = obs::Logger::Default();
  if (result.graph.num_nodes() == 0) {
    logger
        .Log(obs::LogLevel::kWarn, "nlp", "document yielded no IOCs")
        .Field("bytes", static_cast<uint64_t>(document.size()));
  } else {
    logger.Log(obs::LogLevel::kInfo, "nlp", "extraction complete")
        .Field("iocs", static_cast<uint64_t>(result.graph.num_nodes()))
        .Field("relations", static_cast<uint64_t>(result.relations.size()))
        .Field("raw_iocs", static_cast<uint64_t>(result.raw_iocs.size()));
  }
  if (dropped_relations > 0) {
    logger
        .Log(obs::LogLevel::kDebug, "nlp", "duplicate relations dropped")
        .Field("dropped", static_cast<uint64_t>(dropped_relations));
  }
  if (extract_span.active()) {
    extract_span.SetAttr("iocs",
                         static_cast<int64_t>(result.graph.num_nodes()));
    extract_span.SetAttr("relations",
                         static_cast<int64_t>(result.relations.size()));
  }
  return result;
}

}  // namespace raptor::nlp
