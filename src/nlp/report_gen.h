// Synthetic OSCTI report generator.
//
// Renders an attack script — a chain of (subject IOC, verb class, object
// IOC) steps — into natural-language threat-report prose with controlled
// variety (verb synonyms, active/passive voice, pronoun and definite-NP
// continuations, distractor sentences), together with the ground-truth
// labels the rendering implies. This scales the extraction evaluation (E1)
// beyond the hand-labeled corpus and powers property tests: for any
// generated report, the pipeline's extraction can be scored exactly.

#pragma once

#include <string>
#include <vector>

#include "common/rng.h"
#include "nlp/ioc.h"

namespace raptor::nlp {

/// Verb classes a script step can use; each renders through a set of
/// synonymous surface verbs.
enum class VerbClass : uint8_t {
  kRead,
  kWrite,
  kConnect,   ///< Object must be an IP.
  kSend,      ///< Object must be an IP.
  kDownload,  ///< Object is a file the subject fetches.
  kExecute,
  kDelete,
};

/// \brief One step of an attack script.
struct ScriptStep {
  std::string subject;  ///< IOC text (a path acting as the process).
  VerbClass verb;
  std::string object;  ///< IOC text (path or IP, per the verb class).
};

/// \brief A labeled relation implied by one rendered sentence.
struct GeneratedLabel {
  std::string subject;
  std::string verb;  ///< Lemma of the surface verb actually rendered.
  std::string object;
};

/// \brief A rendered report plus its ground truth.
struct GeneratedReport {
  std::string text;
  std::vector<std::string> iocs;          ///< Distinct IOC strings.
  std::vector<GeneratedLabel> relations;  ///< One per script step.
};

/// \brief Options controlling rendering variety.
struct ReportGenOptions {
  uint64_t seed = 7;
  double passive_probability = 0.25;
  /// Probability of continuing a same-subject step with "It then ...".
  double pronoun_probability = 0.3;
  /// Probability of inserting a no-IOC distractor sentence between steps.
  double distractor_probability = 0.25;
};

/// \brief Renders scripts to prose and samples random scripts.
class ReportGenerator {
 public:
  explicit ReportGenerator(ReportGenOptions options = {});

  /// Renders `steps` into a report with labels.
  GeneratedReport Render(const std::vector<ScriptStep>& steps);

  /// Samples a plausible multi-stage attack script of `num_steps` steps
  /// (connect -> download -> execute -> read -> write -> exfiltrate
  /// motifs over randomly named IOCs).
  std::vector<ScriptStep> RandomScript(size_t num_steps);

 private:
  ReportGenOptions options_;
  Rng rng_;
  size_t name_counter_ = 0;
};

}  // namespace raptor::nlp
