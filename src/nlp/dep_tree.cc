#include "nlp/dep_tree.h"

#include <algorithm>

#include "common/strings.h"

namespace raptor::nlp {

std::string_view DepRelName(DepRel rel) {
  switch (rel) {
    case DepRel::kRoot:
      return "root";
    case DepRel::kNsubj:
      return "nsubj";
    case DepRel::kNsubjPass:
      return "nsubjpass";
    case DepRel::kDobj:
      return "dobj";
    case DepRel::kPrep:
      return "prep";
    case DepRel::kPobj:
      return "pobj";
    case DepRel::kDet:
      return "det";
    case DepRel::kAmod:
      return "amod";
    case DepRel::kCompound:
      return "compound";
    case DepRel::kAdvmod:
      return "advmod";
    case DepRel::kAux:
      return "aux";
    case DepRel::kAuxPass:
      return "auxpass";
    case DepRel::kConj:
      return "conj";
    case DepRel::kCc:
      return "cc";
    case DepRel::kMark:
      return "mark";
    case DepRel::kPunct:
      return "punct";
    case DepRel::kDep:
      return "dep";
  }
  return "?";
}

void DepTree::RebuildChildren() {
  for (auto& n : nodes) n.children.clear();
  for (size_t i = 0; i < nodes.size(); ++i) {
    int head = nodes[i].head;
    if (head >= 0) nodes[head].children.push_back(static_cast<int>(i));
  }
}

std::vector<int> DepTree::PathToRoot(int i) const {
  std::vector<int> path;
  int cur = i;
  while (cur >= 0 && path.size() <= nodes.size()) {
    path.push_back(cur);
    cur = nodes[cur].head;
  }
  return path;
}

int DepTree::Lca(int a, int b) const {
  std::vector<int> pa = PathToRoot(a);
  std::vector<int> pb = PathToRoot(b);
  // Walk from the root ends while they agree.
  int lca = -1;
  auto ia = pa.rbegin();
  auto ib = pb.rbegin();
  while (ia != pa.rend() && ib != pb.rend() && *ia == *ib) {
    lca = *ia;
    ++ia;
    ++ib;
  }
  return lca;
}

std::string DepTree::ToString() const {
  std::string out;
  // Depth-first from root for a readable indented dump.
  std::vector<std::pair<int, int>> stack;  // (node, depth)
  if (root >= 0) stack.emplace_back(root, 0);
  while (!stack.empty()) {
    auto [i, depth] = stack.back();
    stack.pop_back();
    const DepNode& n = nodes[static_cast<size_t>(i)];
    out += std::string(static_cast<size_t>(depth) * 2, ' ');
    out += StrFormat("%s/%s (%s)%s%s\n", n.token.text.c_str(),
                     std::string(PosName(n.token.pos)).c_str(),
                     std::string(DepRelName(n.rel)).c_str(),
                     n.is_ioc ? " [IOC]" : "", n.removed ? " [removed]" : "");
    // Push children in reverse so they pop in order.
    for (auto it = n.children.rbegin(); it != n.children.rend(); ++it) {
      stack.emplace_back(*it, depth + 1);
    }
  }
  return out;
}

std::string_view PosName(Pos pos) {
  switch (pos) {
    case Pos::kNoun:
      return "NOUN";
    case Pos::kVerb:
      return "VERB";
    case Pos::kAux:
      return "AUX";
    case Pos::kPron:
      return "PRON";
    case Pos::kDet:
      return "DET";
    case Pos::kAdp:
      return "ADP";
    case Pos::kAdj:
      return "ADJ";
    case Pos::kAdv:
      return "ADV";
    case Pos::kConj:
      return "CONJ";
    case Pos::kNum:
      return "NUM";
    case Pos::kPart:
      return "PART";
    case Pos::kPunct:
      return "PUNCT";
    case Pos::kOther:
      return "X";
  }
  return "?";
}

}  // namespace raptor::nlp
