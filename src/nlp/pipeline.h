// The threat behavior extraction pipeline (paper §II-C, Algorithm 1).
//
// Given an unstructured OSCTI report, runs:
//   (1) block segmentation          (2) IOC recognition + protection
//   (3) sentence segmentation + dependency parsing + IOC restoration
//   (4) tree annotation             (5) tree simplification
//   (6) coreference resolution      (7) IOC scan & merge
//   (8) IOC relation extraction     (10) behavior graph construction
// and returns the threat behavior graph.
//
// Every stage the paper ablates is a switch in PipelineOptions, which is how
// bench_extraction reproduces the accuracy comparison (E1 in DESIGN.md).

#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "nlp/behavior_graph.h"
#include "nlp/dep_parser.h"
#include "nlp/dep_tree.h"
#include "nlp/ioc.h"
#include "nlp/lexicon.h"

namespace raptor::nlp {

/// \brief Pipeline configuration; defaults are the full THREATRAPTOR
/// pipeline, switches are ablation levers.
struct PipelineOptions {
  /// Replace recognized IOCs with the dummy word before NLP (step 2).
  /// Disabling reproduces the paper's "without IOC protection" baseline.
  bool enable_ioc_protection = true;
  /// Resolve pronouns / definite noun phrases to IOC antecedents (step 6).
  bool enable_coreference = true;
  /// Merge similar IOCs across the document (step 7).
  bool enable_ioc_merge = true;
  /// Prune tree paths that contain no IOC nodes (step 5).
  bool enable_tree_simplification = true;

  /// Character-overlap threshold (bigram Dice) for IOC merging.
  double merge_dice_threshold = 0.85;
  /// Word-vector cosine threshold for IOC merging.
  double merge_cosine_threshold = 0.92;
};

/// \brief One extracted relation triplet before graph construction.
struct IocRelation {
  int subject_ioc = -1;  ///< Merged IOC index.
  int object_ioc = -1;
  std::string verb;
  size_t verb_offset = 0;  ///< Global document offset of the relation verb.
};

/// \brief Full pipeline output: the graph plus intermediate artifacts that
/// tests, benches, and the query synthesizer inspect.
struct ExtractionResult {
  ThreatBehaviorGraph graph;
  std::vector<DepTree> trees;       ///< All block trees (annotated).
  std::vector<IocSpan> raw_iocs;    ///< Every IOC occurrence recognized.
  std::vector<IocRelation> relations;  ///< Deduplicated, offset-ordered.
};

/// \brief The unsupervised extraction pipeline.
class ExtractionPipeline {
 public:
  explicit ExtractionPipeline(PipelineOptions options = {});

  /// Runs Algorithm 1 over `document`.
  ExtractionResult Extract(std::string_view document) const;

  const PipelineOptions& options() const { return options_; }

 private:
  // Stage helpers (see .cc).
  void RestoreIocProtection(const ProtectedText& protected_block,
                            DepTree* tree) const;
  void RecognizeUnprotected(std::string_view sentence_text,
                            DepTree* tree) const;
  void AnnotateTree(DepTree* tree) const;
  void SimplifyTree(DepTree* tree) const;
  void ResolveCoreference(std::vector<DepTree>* block_trees) const;
  std::vector<IocEntity> ScanMergeIocs(std::vector<DepTree>* all_trees,
                                       std::vector<IocSpan>* raw) const;
  void ExtractRelations(const DepTree& tree,
                        const std::vector<IocEntity>& iocs,
                        std::vector<IocRelation>* out) const;

  PipelineOptions options_;
  IocRecognizer recognizer_;
  const Lexicon& lexicon_;
};

}  // namespace raptor::nlp
