// IOC recognition and IOC protection (paper §II-C steps 2-3).
//
// OSCTI text is full of indicators whose special characters (dots, slashes,
// underscores) break general-purpose NLP modules: "/etc/passwd." ends a
// sentence but tokenizers split the path, and "161.35.10.8" looks like four
// sentence boundaries. The paper's fix — the key accuracy lever — is to
// recognize IOCs with regex rules first and replace each with the dummy
// word "something" before segmentation and parsing, then restore them in
// the parsed trees (IOC protection).

#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace raptor::nlp {

/// IOC categories recognized by the regex rule set.
enum class IocType : uint8_t {
  kFilepath,
  kFilename,
  kIp,
  kUrl,
  kDomain,
  kEmail,
  kHashMd5,
  kHashSha1,
  kHashSha256,
  kRegistry,
  kCve,
};

std::string_view IocTypeName(IocType type);
Result<IocType> ParseIocType(std::string_view name);

/// \brief One recognized indicator occurrence in a text.
struct IocSpan {
  size_t offset = 0;  ///< Char offset in the input text.
  size_t length = 0;
  IocType type = IocType::kFilepath;
  std::string text;
};

/// \brief Regex-rule IOC recognizer.
class IocRecognizer {
 public:
  IocRecognizer();

  /// Finds all IOC occurrences, left to right, non-overlapping (longest
  /// match wins on overlap; higher-priority types win ties).
  std::vector<IocSpan> Recognize(std::string_view text) const;

 private:
  struct Rule;
  std::vector<Rule> rules_;

 public:
  ~IocRecognizer();
};

/// The dummy word substituted for each IOC (paper §II-C step 2).
inline constexpr std::string_view kIocDummy = "something";

/// \brief A block of text after IOC protection, with enough bookkeeping to
/// restore the original IOCs after parsing.
struct ProtectedText {
  std::string text;  ///< Input with every IOC replaced by kIocDummy.
  /// Index i holds the IOC that the i-th dummy occurrence replaced, plus the
  /// dummy's char offset in `text`.
  struct Replacement {
    size_t offset;  ///< Offset of the dummy word in `text`.
    IocSpan ioc;
  };
  std::vector<Replacement> replacements;

  /// Returns the replacement whose dummy occupies `offset`, or nullptr.
  const Replacement* FindAtOffset(size_t offset) const;
};

/// Recognizes IOCs in `text` and replaces each with kIocDummy.
ProtectedText ProtectIocs(std::string_view text,
                          const IocRecognizer& recognizer);

}  // namespace raptor::nlp
