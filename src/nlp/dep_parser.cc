#include "nlp/dep_parser.h"

#include <algorithm>

#include "common/strings.h"

namespace raptor::nlp {

namespace {

bool IsNpToken(const Token& t) {
  return t.pos == Pos::kDet || t.pos == Pos::kAdj || t.pos == Pos::kNum ||
         t.pos == Pos::kNoun || t.pos == Pos::kPron;
}

bool IsNpHeadToken(const Token& t) {
  return t.pos == Pos::kNoun || t.pos == Pos::kPron;
}

/// A chunked noun phrase: token range [begin, end) with head index.
struct NounPhrase {
  int begin = 0;
  int end = 0;
  int head = -1;
  bool attached = false;
};

}  // namespace

DepTree ParseDependency(std::vector<Token> tokens, const Lexicon& lexicon) {
  DepTree tree;
  tree.nodes.reserve(tokens.size());
  for (auto& t : tokens) {
    DepNode n;
    n.token = std::move(t);
    tree.nodes.push_back(std::move(n));
  }
  const int n = static_cast<int>(tree.nodes.size());
  if (n == 0) return tree;

  auto pos_of = [&](int i) { return tree.nodes[i].token.pos; };
  auto lemma_of = [&](int i) -> const std::string& {
    return tree.nodes[i].token.lemma;
  };

  // --- Verbs and clause structure. ---
  std::vector<int> verbs;
  for (int i = 0; i < n; ++i) {
    if (pos_of(i) == Pos::kVerb) verbs.push_back(i);
  }

  // Degenerate sentence with no full verb: promote an auxiliary, else root
  // the first contentful token and attach the rest flat.
  if (verbs.empty()) {
    int root = -1;
    for (int i = 0; i < n; ++i) {
      if (pos_of(i) == Pos::kAux) {
        root = i;
        break;
      }
    }
    if (root < 0) {
      for (int i = 0; i < n; ++i) {
        if (pos_of(i) != Pos::kPunct) {
          root = i;
          break;
        }
      }
    }
    if (root < 0) root = 0;
    tree.root = root;
    tree.nodes[root].rel = DepRel::kRoot;
    for (int i = 0; i < n; ++i) {
      if (i == root) continue;
      tree.nodes[i].head = root;
      tree.nodes[i].rel =
          pos_of(i) == Pos::kPunct ? DepRel::kPunct : DepRel::kDep;
    }
    tree.RebuildChildren();
    return tree;
  }

  tree.root = verbs[0];
  tree.nodes[verbs[0]].rel = DepRel::kRoot;
  for (size_t v = 1; v < verbs.size(); ++v) {
    tree.nodes[verbs[v]].head = verbs[v - 1];
    tree.nodes[verbs[v]].rel = DepRel::kConj;
  }

  // Passive detection: a "be"-auxiliary directly governing the verb.
  std::vector<bool> passive(static_cast<size_t>(n), false);
  for (int vi : verbs) {
    for (int i = vi - 1; i >= 0; --i) {
      Pos p = pos_of(i);
      if (p == Pos::kAdv || p == Pos::kPart) continue;
      if (p == Pos::kAux) {
        tree.nodes[i].head = vi;
        bool is_be = lemma_of(i) == "be" ||
                     lexicon.LemmatizeVerb(ToLower(tree.nodes[i].token.text)) ==
                         "be";
        tree.nodes[i].rel = is_be ? DepRel::kAuxPass : DepRel::kAux;
        if (is_be) passive[static_cast<size_t>(vi)] = true;
      }
      break;
    }
  }

  // --- Noun phrase chunking. ---
  std::vector<NounPhrase> nps;
  {
    int i = 0;
    while (i < n) {
      if (!IsNpToken(tree.nodes[i].token) || pos_of(i) == Pos::kVerb ||
          tree.nodes[i].head >= 0) {
        ++i;
        continue;
      }
      NounPhrase np;
      np.begin = i;
      while (i < n && IsNpToken(tree.nodes[i].token) &&
             tree.nodes[i].head < 0) {
        if (IsNpHeadToken(tree.nodes[i].token)) np.head = i;
        ++i;
      }
      np.end = i;
      if (np.head < 0) continue;  // determiner-only run; left for cleanup
      // Intra-NP attachments.
      for (int j = np.begin; j < np.end; ++j) {
        if (j == np.head) continue;
        tree.nodes[j].head = np.head;
        switch (pos_of(j)) {
          case Pos::kDet:
            tree.nodes[j].rel = DepRel::kDet;
            break;
          case Pos::kAdj:
          case Pos::kNum:
            tree.nodes[j].rel = DepRel::kAmod;
            break;
          default:
            tree.nodes[j].rel = DepRel::kCompound;
            break;
        }
      }
      nps.push_back(np);
    }
  }

  // --- Subject assignment: for each clause verb, the last unattached NP
  // between the previous verb and it that is not governed by a preposition.
  auto np_preceded_by_adp = [&](const NounPhrase& np) {
    for (int i = np.begin - 1; i >= 0; --i) {
      Pos p = pos_of(i);
      if (p == Pos::kPunct) continue;
      return p == Pos::kAdp;
    }
    return false;
  };
  // An NP is a subject candidate only when it sits adjacent to its verb:
  // everything between the NP and the verb must be an adverb, auxiliary,
  // particle, or punctuation. This keeps the previous clause's object from
  // being mistaken for the subject of a coordinated verb ("read X and
  // wrote Z" shares the subject; X is not the subject of "wrote").
  auto adjacent_to_verb = [&](const NounPhrase& np, int vi) {
    for (int i = np.end; i < vi; ++i) {
      Pos p = pos_of(i);
      if (p != Pos::kAdv && p != Pos::kAux && p != Pos::kPart &&
          p != Pos::kPunct) {
        return false;
      }
    }
    return true;
  };
  for (size_t v = 0; v < verbs.size(); ++v) {
    int vi = verbs[v];
    int prev = (v == 0) ? -1 : verbs[v - 1];
    int chosen = -1;
    for (size_t k = 0; k < nps.size(); ++k) {
      const NounPhrase& np = nps[k];
      if (np.attached || np.head > vi || np.end > vi) continue;
      if (np.begin <= prev) continue;
      if (np_preceded_by_adp(np)) continue;
      if (!adjacent_to_verb(np, vi)) continue;
      chosen = static_cast<int>(k);
    }
    if (chosen >= 0) {
      NounPhrase& np = nps[static_cast<size_t>(chosen)];
      np.attached = true;
      tree.nodes[np.head].head = vi;
      tree.nodes[np.head].rel = passive[static_cast<size_t>(vi)]
                                    ? DepRel::kNsubjPass
                                    : DepRel::kNsubj;
      // Earlier unattached NPs in the same window coordinate with the
      // subject ("X and Y connected ...").
      for (auto& other : nps) {
        if (!other.attached && other.begin > prev && other.end <= np.begin) {
          other.attached = true;
          tree.nodes[other.head].head = np.head;
          tree.nodes[other.head].rel = DepRel::kConj;
        }
      }
    }
  }

  // --- Remaining NPs: prepositional objects, direct objects, conjuncts.
  auto nearest_verb_left = [&](int i) {
    int best = -1;
    for (int vi : verbs) {
      if (vi < i) best = vi;
    }
    return best;
  };
  std::vector<int> last_object_of(static_cast<size_t>(n), -1);  // verb -> dobj

  for (auto& np : nps) {
    if (np.attached) continue;
    np.attached = true;
    int head = np.head;

    // Look left, skipping punctuation, for the attachment cue.
    int cue = -1;
    for (int i = np.begin - 1; i >= 0; --i) {
      if (pos_of(i) == Pos::kPunct) continue;
      cue = i;
      break;
    }

    if (cue >= 0 && pos_of(cue) == Pos::kAdp) {
      // Prepositional phrase: prep attaches to the governing verb (or the
      // previous NP head when no verb precedes), NP head becomes pobj.
      int gov = nearest_verb_left(cue);
      if (gov < 0) {
        // Attach to the nearest attached NP head on the left.
        for (int i = cue - 1; i >= 0 && gov < 0; --i) {
          if (IsNpHeadToken(tree.nodes[i].token) && tree.nodes[i].head >= 0) {
            gov = i;
          }
        }
      }
      if (gov < 0) gov = tree.root;
      tree.nodes[cue].head = gov;
      tree.nodes[cue].rel = DepRel::kPrep;
      tree.nodes[head].head = cue;
      tree.nodes[head].rel = DepRel::kPobj;
      continue;
    }

    if (cue >= 0 && pos_of(cue) == Pos::kConj) {
      // NP coordination: attach to the most recent attached NP head left of
      // the conjunction (and after the nearest verb), cc to this conjunct.
      int partner = -1;
      for (int i = cue - 1; i >= 0; --i) {
        if (IsNpHeadToken(tree.nodes[i].token) && tree.nodes[i].head >= 0 &&
            (tree.nodes[i].rel == DepRel::kDobj ||
             tree.nodes[i].rel == DepRel::kPobj ||
             tree.nodes[i].rel == DepRel::kNsubj ||
             tree.nodes[i].rel == DepRel::kConj)) {
          partner = i;
          break;
        }
        if (pos_of(i) == Pos::kVerb) break;
      }
      if (partner >= 0) {
        tree.nodes[head].head = partner;
        tree.nodes[head].rel = DepRel::kConj;
        tree.nodes[cue].head = head;
        tree.nodes[cue].rel = DepRel::kCc;
        continue;
      }
    }

    // Direct object of the nearest verb on the left; a second bare NP after
    // the same verb coordinates with the first.
    int gov = nearest_verb_left(np.begin);
    if (gov < 0) gov = tree.root;
    if (last_object_of[static_cast<size_t>(gov)] >= 0) {
      tree.nodes[head].head = last_object_of[static_cast<size_t>(gov)];
      tree.nodes[head].rel = DepRel::kConj;
    } else {
      tree.nodes[head].head = gov;
      tree.nodes[head].rel = DepRel::kDobj;
      last_object_of[static_cast<size_t>(gov)] = head;
    }
  }

  // --- Cleanup: attach every remaining headless token. ---
  for (int i = 0; i < n; ++i) {
    if (i == tree.root || tree.nodes[i].head >= 0) continue;
    DepNode& node = tree.nodes[i];
    switch (pos_of(i)) {
      case Pos::kAdv: {
        int gov = nearest_verb_left(i);
        if (gov < 0) gov = verbs[0];
        node.head = gov;
        node.rel = DepRel::kAdvmod;
        break;
      }
      case Pos::kPart: {
        // "to" before an infinitive: mark of the following verb.
        int gov = -1;
        for (int vi : verbs) {
          if (vi > i) {
            gov = vi;
            break;
          }
        }
        node.head = gov >= 0 ? gov : tree.root;
        node.rel = DepRel::kMark;
        break;
      }
      case Pos::kPunct:
        node.head = tree.root;
        node.rel = DepRel::kPunct;
        break;
      case Pos::kConj:
        node.head = tree.root;
        node.rel = DepRel::kCc;
        break;
      case Pos::kAdp: {
        int gov = nearest_verb_left(i);
        node.head = gov >= 0 ? gov : tree.root;
        node.rel = DepRel::kPrep;
        break;
      }
      default:
        node.head = tree.root;
        node.rel = DepRel::kDep;
        break;
    }
  }

  tree.RebuildChildren();
  return tree;
}

}  // namespace raptor::nlp
