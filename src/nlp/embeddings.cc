#include "nlp/embeddings.h"

namespace raptor::nlp {

namespace {

uint64_t Fnv1a(std::string_view s) {
  uint64_t h = 1469598103934665603ULL;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

Embedding EmbedWord(std::string_view word) {
  Embedding v{};
  for (size_t n : {size_t{3}, size_t{4}}) {
    if (word.size() < n) continue;
    for (size_t i = 0; i + n <= word.size(); ++i) {
      uint64_t h = Fnv1a(word.substr(i, n));
      size_t bucket = h % kEmbeddingDim;
      float sign = ((h >> 32) & 1) ? 1.0f : -1.0f;
      v[bucket] += sign;
    }
  }
  double norm = 0;
  for (float x : v) norm += static_cast<double>(x) * x;
  if (norm > 0) {
    float inv = static_cast<float>(1.0 / std::sqrt(norm));
    for (float& x : v) x *= inv;
  }
  return v;
}

double CosineSimilarity(const Embedding& a, const Embedding& b) {
  double dot = 0;
  for (size_t i = 0; i < kEmbeddingDim; ++i) {
    dot += static_cast<double>(a[i]) * b[i];
  }
  return dot;
}

}  // namespace raptor::nlp
