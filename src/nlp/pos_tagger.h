// Rule-based POS tagger over the lexicon (spaCy tagger stand-in).

#pragma once

#include <vector>

#include "nlp/lexicon.h"
#include "nlp/text.h"

namespace raptor::nlp {

/// Tags every token in `tokens` in place (pos + lemma), using lexicon
/// lookups, morphological suffix rules, and local context repairs.
void TagPos(std::vector<Token>* tokens, const Lexicon& lexicon);

}  // namespace raptor::nlp
