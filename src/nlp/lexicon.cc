#include "nlp/lexicon.h"

namespace raptor::nlp {

namespace {

const char* const kDeterminers[] = {
    "the", "a", "an", "this", "that", "these", "those", "some", "any",
    "each", "every", "all", "both", "no", "another", "such", "its",
    "their", "his", "her", "our", "your",
};

const char* const kPronouns[] = {
    "it", "he", "she", "they", "them", "him", "who", "whom", "which",
    "itself", "themselves", "something", "anything", "everything", "one",
};

const char* const kPrepositions[] = {
    "of",      "to",     "from",   "in",     "into",    "on",     "onto",
    "at",      "by",     "with",   "without", "against", "over",  "via",
    "through", "for",    "after",  "before",  "during",  "within", "under",
    "between", "back",   "across", "toward",  "towards", "inside", "behind",
    "about",   "off",    "up",     "down",    "out",     "as",
};

const char* const kConjunctions[] = {
    "and", "or", "but", "nor", "so", "yet", "while", "when", "where",
    "because", "if", "although", "though", "since", "until", "whereas",
    "once",
};

const char* const kAuxiliaries[] = {
    "is", "are", "was", "were", "be", "been", "being", "am",
    "has", "have", "had", "having", "does", "do", "did", "doing",
    "will", "would", "shall", "should", "can", "could", "may", "might",
    "must",
};

const char* const kAdverbs[] = {
    "then", "finally", "first", "next", "also", "later", "subsequently",
    "additionally", "furthermore", "however", "remotely", "successfully",
    "afterwards", "afterward", "eventually", "immediately", "initially",
    "meanwhile", "moreover", "previously", "quickly", "silently",
    "specifically", "repeatedly", "periodically", "not", "never", "again",
    "already", "still", "often", "early",
};

// Base-form verb vocabulary: the security-domain verbs OSCTI reports use,
// plus the common general verbs needed to parse report prose.
const char* const kVerbs[] = {
    // Security-relevant relation verbs.
    "connect", "download", "upload", "read", "write", "send", "receive",
    "execute", "run", "launch", "spawn", "fork", "create", "delete",
    "remove", "modify", "drop", "install", "exfiltrate", "transfer",
    "steal", "scan", "scrape", "compress", "decompress", "encode", "decode",
    "encrypt", "decrypt", "inject", "open", "close", "access", "exploit",
    "penetrate", "infect", "communicate", "beacon", "request", "resolve",
    "copy", "move", "rename", "extract", "crack", "collect", "gather",
    "harvest", "leak", "overwrite", "append", "query", "contact", "fetch",
    "retrieve", "archive", "pack", "unpack", "load", "invoke", "start",
    "stop", "terminate", "kill", "chmod", "touch", "establish", "listen",
    "bind", "accept", "redirect", "tamper", "wipe", "dump", "log",
    // General verbs.
    "use", "perform", "contain", "include", "attempt", "continue", "begin",
    "make", "take", "get", "give", "go", "come", "see", "find", "show",
    "appear", "become", "allow", "enable", "cause", "target", "attack",
    "compromise", "encode", "embed", "store", "save", "name", "call",
    "describe", "report", "observe", "detect", "identify", "deliver",
    "deploy", "host", "serve", "obtain", "acquire", "place",
};

// Verbs that can express an IOC-to-IOC relation (annotation stage 4 marks
// these as candidates).
const char* const kRelationVerbs[] = {
    "connect", "download", "upload", "read", "write", "send", "receive",
    "execute", "run", "launch", "spawn", "fork", "create", "delete",
    "remove", "modify", "drop", "install", "exfiltrate", "transfer",
    "steal", "scan", "scrape", "compress", "decompress", "encrypt",
    "decrypt", "inject", "open", "access", "communicate", "beacon",
    "request", "resolve", "copy", "move", "rename", "extract", "crack",
    "collect", "harvest", "leak", "overwrite", "append", "query", "contact",
    "fetch", "retrieve", "archive", "load", "invoke", "start", "terminate",
    "kill", "chmod", "establish", "listen", "bind", "dump", "deliver",
    "deploy", "host", "obtain", "acquire", "embed", "store", "save",
    "place", "wipe",
};

const struct {
  const char* form;
  const char* lemma;
} kIrregularVerbs[] = {
    {"sent", "send"},       {"wrote", "write"},     {"written", "write"},
    {"read", "read"},       {"ran", "run"},         {"run", "run"},
    {"stole", "steal"},     {"stolen", "steal"},    {"took", "take"},
    {"taken", "take"},      {"began", "begin"},     {"begun", "begin"},
    {"got", "get"},         {"gotten", "get"},      {"gave", "give"},
    {"given", "give"},      {"made", "make"},       {"did", "do"},
    {"done", "do"},         {"was", "be"},          {"were", "be"},
    {"been", "be"},         {"is", "be"},           {"are", "be"},
    {"am", "be"},           {"had", "have"},        {"has", "have"},
    {"went", "go"},         {"gone", "go"},         {"came", "come"},
    {"saw", "see"},         {"seen", "see"},        {"found", "find"},
    {"shown", "show"},      {"showed", "show"},     {"kept", "keep"},
    {"left", "leave"},      {"built", "build"},     {"bound", "bind"},
    {"held", "hold"},       {"put", "put"},         {"set", "set"},
    {"hid", "hide"},        {"hidden", "hide"},     {"broke", "break"},
    {"broken", "break"},    {"chose", "choose"},    {"chosen", "choose"},
    {"drew", "draw"},       {"drawn", "draw"},      {"spread", "spread"},
};

}  // namespace

Lexicon::Lexicon() {
  for (const char* w : kDeterminers) determiners_.insert(w);
  for (const char* w : kPronouns) pronouns_.insert(w);
  for (const char* w : kPrepositions) prepositions_.insert(w);
  for (const char* w : kConjunctions) conjunctions_.insert(w);
  for (const char* w : kAuxiliaries) auxiliaries_.insert(w);
  for (const char* w : kAdverbs) adverbs_.insert(w);
  for (const char* w : kVerbs) verbs_.insert(w);
  for (const char* w : kRelationVerbs) relation_verbs_.insert(w);
  for (const auto& row : kIrregularVerbs) {
    irregular_verbs_.emplace(row.form, row.lemma);
  }
}

const Lexicon& Lexicon::Default() {
  static const Lexicon* instance = new Lexicon();
  return *instance;
}

bool Lexicon::IsDeterminer(std::string_view w) const {
  return determiners_.count(std::string(w)) > 0;
}
bool Lexicon::IsPronoun(std::string_view w) const {
  return pronouns_.count(std::string(w)) > 0;
}
bool Lexicon::IsPreposition(std::string_view w) const {
  return prepositions_.count(std::string(w)) > 0;
}
bool Lexicon::IsConjunction(std::string_view w) const {
  return conjunctions_.count(std::string(w)) > 0;
}
bool Lexicon::IsAuxiliary(std::string_view w) const {
  return auxiliaries_.count(std::string(w)) > 0;
}
bool Lexicon::IsAdverb(std::string_view w) const {
  return adverbs_.count(std::string(w)) > 0;
}
bool Lexicon::IsKnownVerb(std::string_view lemma) const {
  return verbs_.count(std::string(lemma)) > 0;
}
bool Lexicon::IsRelationVerb(std::string_view lemma) const {
  return relation_verbs_.count(std::string(lemma)) > 0;
}

std::string Lexicon::LemmatizeVerb(std::string_view lower) const {
  std::string w(lower);
  auto irr = irregular_verbs_.find(w);
  if (irr != irregular_verbs_.end()) return irr->second;
  if (verbs_.count(w) > 0) return w;

  auto try_candidates = [this](std::initializer_list<std::string> cands,
                               std::string* out) {
    for (const std::string& c : cands) {
      if (verbs_.count(c) > 0) {
        *out = c;
        return true;
      }
    }
    return false;
  };

  std::string out;
  size_t n = w.size();
  if (n > 4 && w.ends_with("ies")) {
    if (try_candidates({w.substr(0, n - 3) + "y"}, &out)) return out;
  }
  if (n > 4 && w.ends_with("ied")) {
    if (try_candidates({w.substr(0, n - 3) + "y"}, &out)) return out;
  }
  if (n > 4 && w.ends_with("ing")) {
    std::string stem = w.substr(0, n - 3);
    std::initializer_list<std::string> cands = {
        stem, stem + "e",
        (stem.size() >= 2 && stem[stem.size() - 1] == stem[stem.size() - 2])
            ? stem.substr(0, stem.size() - 1)
            : stem};
    if (try_candidates(cands, &out)) return out;
  }
  if (n > 3 && w.ends_with("ed")) {
    std::string stem = w.substr(0, n - 2);
    std::initializer_list<std::string> cands = {
        stem, w.substr(0, n - 1),  // e.g. "received" -> "receive"
        (stem.size() >= 2 && stem[stem.size() - 1] == stem[stem.size() - 2])
            ? stem.substr(0, stem.size() - 1)
            : stem};
    if (try_candidates(cands, &out)) return out;
  }
  if (n > 3 && w.ends_with("es")) {
    if (try_candidates({w.substr(0, n - 2), w.substr(0, n - 1)}, &out)) {
      return out;
    }
  }
  if (n > 2 && w.ends_with("s")) {
    if (try_candidates({w.substr(0, n - 1)}, &out)) return out;
  }
  return w;
}

std::string Lexicon::LemmatizeNoun(std::string_view lower) const {
  std::string w(lower);
  size_t n = w.size();
  if (n > 3 && w.ends_with("ies")) return w.substr(0, n - 3) + "y";
  if (n > 3 && (w.ends_with("ses") || w.ends_with("xes") ||
                w.ends_with("zes") || w.ends_with("hes"))) {
    return w.substr(0, n - 2);
  }
  if (n > 2 && w.ends_with("s") && !w.ends_with("ss") && !w.ends_with("us")) {
    return w.substr(0, n - 1);
  }
  return w;
}

}  // namespace raptor::nlp
