#include "nlp/segmenter.h"

#include <cctype>

#include "common/strings.h"

namespace raptor::nlp {

std::vector<BlockSpan> SegmentBlocks(std::string_view document) {
  std::vector<BlockSpan> blocks;
  size_t pos = 0;
  size_t block_start = std::string_view::npos;
  auto flush = [&](size_t end) {
    if (block_start == std::string_view::npos) return;
    std::string_view raw = document.substr(block_start, end - block_start);
    std::string_view trimmed = Trim(raw);
    if (!trimmed.empty()) {
      size_t lead = static_cast<size_t>(trimmed.data() - raw.data());
      blocks.push_back(BlockSpan{block_start + lead, std::string(trimmed)});
    }
    block_start = std::string_view::npos;
  };

  while (pos <= document.size()) {
    size_t nl = document.find('\n', pos);
    size_t line_end = (nl == std::string_view::npos) ? document.size() : nl;
    std::string_view line = document.substr(pos, line_end - pos);
    std::string_view trimmed = Trim(line);
    if (trimmed.empty()) {
      flush(pos);
    } else if (trimmed[0] == '#') {
      // Header: close the current block and emit the header as its own.
      flush(pos);
      block_start = pos;
      flush(line_end);
    } else if (block_start == std::string_view::npos) {
      block_start = pos;
    }
    if (nl == std::string_view::npos) break;
    pos = nl + 1;
  }
  flush(document.size());
  return blocks;
}

namespace {

bool IsAbbreviation(std::string_view block, size_t period_pos) {
  static constexpr std::string_view kAbbrevs[] = {
      "e.g", "i.e", "etc", "vs", "cf", "Mr", "Mrs", "Dr", "Fig", "al",
  };
  for (std::string_view abbr : kAbbrevs) {
    if (period_pos >= abbr.size() &&
        block.substr(period_pos - abbr.size(), abbr.size()) == abbr) {
      // Must be preceded by a non-word char (or start of text).
      size_t before = period_pos - abbr.size();
      if (before == 0 ||
          !std::isalnum(static_cast<unsigned char>(block[before - 1]))) {
        return true;
      }
    }
  }
  return false;
}

}  // namespace

std::vector<SentenceSpan> SegmentSentences(std::string_view block) {
  std::vector<SentenceSpan> sentences;
  size_t start = 0;
  for (size_t i = 0; i < block.size(); ++i) {
    char c = block[i];
    if (c != '.' && c != '!' && c != '?') continue;
    bool at_end = (i + 1 == block.size());
    bool before_space =
        !at_end && std::isspace(static_cast<unsigned char>(block[i + 1]));
    if (!at_end && !before_space) continue;
    if (c == '.' && IsAbbreviation(block, i)) continue;
    std::string_view raw = block.substr(start, i + 1 - start);
    std::string_view trimmed = Trim(raw);
    if (!trimmed.empty()) {
      size_t lead = static_cast<size_t>(trimmed.data() - raw.data());
      sentences.push_back(SentenceSpan{start + lead, std::string(trimmed)});
    }
    start = i + 1;
  }
  std::string_view tail = Trim(block.substr(start));
  if (!tail.empty()) {
    size_t lead = static_cast<size_t>(tail.data() - (block.data() + start));
    sentences.push_back(SentenceSpan{start + lead, std::string(tail)});
  }
  return sentences;
}

std::vector<Token> Tokenize(std::string_view text) {
  std::vector<Token> tokens;
  auto is_punct = [](char c) {
    return std::ispunct(static_cast<unsigned char>(c)) != 0;
  };
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    if (i >= text.size()) break;
    size_t start = i;
    while (i < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    std::string_view word = text.substr(start, i - start);

    // Peel leading punctuation.
    size_t lead = 0;
    while (lead < word.size() && is_punct(word[lead])) {
      Token t;
      t.text = std::string(1, word[lead]);
      t.offset = start + lead;
      t.pos = Pos::kPunct;
      tokens.push_back(std::move(t));
      ++lead;
    }
    // Peel trailing punctuation (kept aside, emitted after the core).
    size_t trail = word.size();
    while (trail > lead && is_punct(word[trail - 1])) --trail;
    // Core: like general-purpose tokenizers (spaCy's infix rules), split on
    // internal slashes and colons. This is deliberate: it is what shatters
    // unprotected IOCs ("/etc/passwd" -> "/", "etc", "/", "passwd") and why
    // the paper's IOC protection matters. Protected text never contains
    // these characters inside a token.
    size_t seg_start = lead;
    for (size_t p = lead; p <= trail; ++p) {
      bool is_infix =
          p < trail && (word[p] == '/' || word[p] == '\\' || word[p] == ':');
      if (p == trail || is_infix) {
        if (p > seg_start) {
          Token t;
          t.text = std::string(word.substr(seg_start, p - seg_start));
          t.offset = start + seg_start;
          tokens.push_back(std::move(t));
        }
        if (is_infix) {
          Token t;
          t.text = std::string(1, word[p]);
          t.offset = start + p;
          t.pos = Pos::kPunct;
          tokens.push_back(std::move(t));
        }
        seg_start = p + 1;
      }
    }
    for (size_t p = trail; p < word.size(); ++p) {
      Token t;
      t.text = std::string(1, word[p]);
      t.offset = start + p;
      t.pos = Pos::kPunct;
      tokens.push_back(std::move(t));
    }
  }
  return tokens;
}

}  // namespace raptor::nlp
