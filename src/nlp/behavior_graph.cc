#include "nlp/behavior_graph.h"

#include "common/strings.h"

namespace raptor::nlp {

std::string ThreatBehaviorGraph::ToString() const {
  std::string out;
  for (const BehaviorEdge& e : edges_) {
    out += StrFormat("%d: %s -[%s]-> %s\n", e.sequence,
                     node(e.src).text.c_str(), e.verb.c_str(),
                     node(e.dst).text.c_str());
  }
  return out;
}

std::string ThreatBehaviorGraph::ToDot() const {
  std::string out = "digraph threat_behavior {\n  rankdir=LR;\n";
  for (const IocEntity& n : nodes_) {
    out += StrFormat("  n%d [label=\"%s\\n(%s)\"];\n", n.id, n.text.c_str(),
                     std::string(IocTypeName(n.type)).c_str());
  }
  for (const BehaviorEdge& e : edges_) {
    out += StrFormat("  n%d -> n%d [label=\"%d: %s\"];\n", e.src, e.dst,
                     e.sequence, e.verb.c_str());
  }
  out += "}\n";
  return out;
}

}  // namespace raptor::nlp
