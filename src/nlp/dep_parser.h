// Deterministic rule-based dependency parser (paper §II-C step 3; spaCy
// parser stand-in, see DESIGN.md "Substitutions").
//
// OSCTI report prose is overwhelmingly simple declarative English —
// "<subject NP> <verb> <object NP> (<prep> <NP>)* (and <verb> ...)". A
// head-rule parser that (a) chunks noun phrases, (b) assigns one subject
// per clause verb, (c) attaches objects and prepositional phrases to the
// nearest governing verb, and (d) chains coordinated verbs with conj edges
// recovers exactly the dependency structure the relation-extraction rules
// (step 8) consult. Crucially it operates on IOC-protected text, so noun
// phrases are clean ("the file something") — disabling protection is what
// breaks it, which is the paper's ablation.

#pragma once

#include <vector>

#include "nlp/dep_tree.h"
#include "nlp/lexicon.h"
#include "nlp/text.h"

namespace raptor::nlp {

/// Parses one tagged sentence into a dependency tree. Tokens must already
/// have POS tags and lemmas (see TagPos).
DepTree ParseDependency(std::vector<Token> tokens, const Lexicon& lexicon);

}  // namespace raptor::nlp
