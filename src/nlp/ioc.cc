#include "nlp/ioc.h"

#include <algorithm>
#include <regex>

namespace raptor::nlp {

std::string_view IocTypeName(IocType type) {
  switch (type) {
    case IocType::kFilepath:
      return "Filepath";
    case IocType::kFilename:
      return "Filename";
    case IocType::kIp:
      return "IP";
    case IocType::kUrl:
      return "URL";
    case IocType::kDomain:
      return "Domain";
    case IocType::kEmail:
      return "Email";
    case IocType::kHashMd5:
      return "MD5";
    case IocType::kHashSha1:
      return "SHA1";
    case IocType::kHashSha256:
      return "SHA256";
    case IocType::kRegistry:
      return "Registry";
    case IocType::kCve:
      return "CVE";
  }
  return "?";
}

Result<IocType> ParseIocType(std::string_view name) {
  static const struct {
    std::string_view name;
    IocType type;
  } kTable[] = {
      {"Filepath", IocType::kFilepath}, {"Filename", IocType::kFilename},
      {"IP", IocType::kIp},             {"URL", IocType::kUrl},
      {"Domain", IocType::kDomain},     {"Email", IocType::kEmail},
      {"MD5", IocType::kHashMd5},       {"SHA1", IocType::kHashSha1},
      {"SHA256", IocType::kHashSha256}, {"Registry", IocType::kRegistry},
      {"CVE", IocType::kCve},
  };
  for (const auto& row : kTable) {
    if (row.name == name) return row.type;
  }
  return Status::ParseError("unknown IOC type: " + std::string(name));
}

struct IocRecognizer::Rule {
  IocType type;
  int priority;  ///< Lower wins ties at the same offset and length.
  std::regex pattern;
};

IocRecognizer::IocRecognizer() {
  auto add = [this](IocType type, int priority, const char* re) {
    rules_.push_back(Rule{
        type, priority,
        std::regex(re, std::regex::ECMAScript | std::regex::optimize)});
  };
  add(IocType::kCve, 0, R"(CVE-\d{4}-\d{4,7})");
  add(IocType::kUrl, 1, R"(https?://[^\s"'<>)\],]+)");
  add(IocType::kEmail, 2, R"([A-Za-z0-9._%+-]+@[A-Za-z0-9-]+(\.[A-Za-z0-9-]+)+)");
  add(IocType::kIp, 3,
      R"((\d{1,3}\.){3}\d{1,3}(:\d{1,5})?)");
  add(IocType::kHashSha256, 4, R"([a-fA-F0-9]{64})");
  add(IocType::kHashSha1, 5, R"([a-fA-F0-9]{40})");
  add(IocType::kHashMd5, 6, R"([a-fA-F0-9]{32})");
  add(IocType::kRegistry, 7,
      R"(HK(LM|CU|CR|U|CC)(\\[A-Za-z0-9_.\-{}]+)+)");
  // Unix absolute paths (at least one segment) and Windows drive paths.
  add(IocType::kFilepath, 8,
      R"((/[A-Za-z0-9._+\-]+)+/?|[A-Za-z]:(\\[A-Za-z0-9._+\-]+)+)");
  add(IocType::kFilename, 9,
      R"([A-Za-z0-9_\-.]+\.(exe|dll|sys|sh|py|doc|docx|xls|pdf|zip|tar|gz|jpg|jpeg|png|txt|bat|ps1|js|vbs|jar|php|rar|7z|bin|elf|img|iso|apk|scr))");
  add(IocType::kDomain, 10,
      R"(([a-z0-9][a-z0-9\-]*\.)+(com|net|org|io|ru|cn|info|biz|co|onion|xyz|top|site|edu|gov))");
}

IocRecognizer::~IocRecognizer() = default;

std::vector<IocSpan> IocRecognizer::Recognize(std::string_view text) const {
  struct Candidate {
    IocSpan span;
    int priority;
  };
  std::vector<Candidate> candidates;
  for (const Rule& rule : rules_) {
    auto begin = std::cregex_iterator(text.data(), text.data() + text.size(),
                                      rule.pattern);
    auto end = std::cregex_iterator();
    for (auto it = begin; it != end; ++it) {
      const std::cmatch& m = *it;
      IocSpan span;
      span.offset = static_cast<size_t>(m.position(0));
      span.length = static_cast<size_t>(m.length(0));
      span.type = rule.type;
      span.text = m.str(0);
      // A trailing '.' on a path/IP/domain is sentence punctuation, not part
      // of the indicator.
      while (!span.text.empty() && span.text.back() == '.') {
        span.text.pop_back();
        --span.length;
      }
      if (span.length == 0) continue;
      // Hash rules must match standalone hex runs, not substrings of longer
      // ones; filenames/domains must not start mid-word.
      if (span.offset > 0) {
        char prev = text[span.offset - 1];
        bool word_prev = std::isalnum(static_cast<unsigned char>(prev)) ||
                         prev == '.' || prev == '/' || prev == '-' ||
                         prev == '_';
        if (word_prev) continue;
      }
      if (span.offset + span.length < text.size()) {
        char next = text[span.offset + span.length];
        bool word_next = std::isalnum(static_cast<unsigned char>(next));
        if (word_next && (rule.type == IocType::kHashMd5 ||
                          rule.type == IocType::kHashSha1 ||
                          rule.type == IocType::kHashSha256 ||
                          rule.type == IocType::kIp)) {
          continue;
        }
      }
      candidates.push_back(Candidate{std::move(span), rule.priority});
    }
  }

  // Longest-match-wins overlap resolution, priority breaking ties.
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.span.offset != b.span.offset) {
                return a.span.offset < b.span.offset;
              }
              if (a.span.length != b.span.length) {
                return a.span.length > b.span.length;
              }
              return a.priority < b.priority;
            });
  std::vector<IocSpan> out;
  size_t covered_until = 0;
  for (auto& c : candidates) {
    if (c.span.offset < covered_until) continue;
    covered_until = c.span.offset + c.span.length;
    out.push_back(std::move(c.span));
  }
  return out;
}

const ProtectedText::Replacement* ProtectedText::FindAtOffset(
    size_t offset) const {
  for (const auto& r : replacements) {
    if (r.offset == offset) return &r;
  }
  return nullptr;
}

ProtectedText ProtectIocs(std::string_view text,
                          const IocRecognizer& recognizer) {
  ProtectedText out;
  std::vector<IocSpan> spans = recognizer.Recognize(text);
  size_t consumed = 0;
  for (IocSpan& span : spans) {
    out.text.append(text.substr(consumed, span.offset - consumed));
    ProtectedText::Replacement repl;
    repl.offset = out.text.size();
    consumed = span.offset + span.length;
    repl.ioc = std::move(span);
    out.text.append(kIocDummy);
    out.replacements.push_back(std::move(repl));
  }
  out.text.append(text.substr(consumed));
  return out;
}

}  // namespace raptor::nlp
