// Threat behavior graph (paper §II-C step 10): the structured output of the
// extraction pipeline. Nodes are merged IOC entities; edges are extracted
// IOC relations carrying the lemmatized relation verb and a sequence number
// that records the step order in the report text.

#pragma once

#include <string>
#include <vector>

#include "nlp/ioc.h"

namespace raptor::nlp {

/// \brief One merged IOC entity (node).
struct IocEntity {
  int id = -1;
  IocType type = IocType::kFilepath;
  std::string text;  ///< Canonical surface form (longest merged variant).
  std::vector<std::string> aliases;  ///< Other merged surface forms.
};

/// \brief One extracted IOC relation (edge).
struct BehaviorEdge {
  int src = -1;  ///< IocEntity id (the relation's subject).
  int dst = -1;  ///< IocEntity id (the relation's object).
  std::string verb;  ///< Lemmatized relation verb ("read", "download", ...).
  int sequence = 0;  ///< 1-based step order by verb occurrence offset.
  size_t text_offset = 0;  ///< Offset of the relation verb in the document.
};

/// \brief The threat behavior graph.
class ThreatBehaviorGraph {
 public:
  int AddNode(IocEntity node) {
    node.id = static_cast<int>(nodes_.size());
    nodes_.push_back(std::move(node));
    return nodes_.back().id;
  }

  void AddEdge(BehaviorEdge edge) { edges_.push_back(std::move(edge)); }

  const std::vector<IocEntity>& nodes() const { return nodes_; }
  const std::vector<BehaviorEdge>& edges() const { return edges_; }
  const IocEntity& node(int id) const { return nodes_[static_cast<size_t>(id)]; }

  size_t num_nodes() const { return nodes_.size(); }
  size_t num_edges() const { return edges_.size(); }

  /// One edge per line: "3: /bin/tar -[read]-> /etc/passwd".
  std::string ToString() const;

  /// Graphviz dot rendering (the paper's Figure 2 visual).
  std::string ToDot() const;

 private:
  std::vector<IocEntity> nodes_;
  std::vector<BehaviorEdge> edges_;
};

}  // namespace raptor::nlp
