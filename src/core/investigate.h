// Attack investigation on top of hunting (extension; see DESIGN.md).
//
// A hunt retrieves the events the OSCTI report narrates. Investigation
// expands those seeds through causal dependency tracking into the full
// attack subgraph — recovering the steps the report author omitted (the
// initial exploit, fork chains, staging operations) — and renders it as a
// timeline and a Graphviz provenance graph.

#pragma once

#include <string>
#include <vector>

#include "core/threat_raptor.h"
#include "storage/graph/dependency.h"

namespace raptor {

/// \brief The reconstructed attack context around a hunt's matches.
struct InvestigationReport {
  graph::DependencySubgraph subgraph;
  /// Chronological "ts  subject -op-> object" lines for every event in the
  /// subgraph; seed events are marked with '*'.
  std::string timeline;
  /// Graphviz provenance graph (entities as nodes, events as edges; seed
  /// edges highlighted).
  std::string dot;
};

/// Expands `seed_events` (typically HuntReport::result.MatchedEvents())
/// through bidirectional dependency tracking over `system`'s graph store.
/// Requires finalized storage.
Result<InvestigationReport> Investigate(
    const ThreatRaptor& system, const std::vector<audit::EventId>& seeds,
    const graph::TrackingOptions& options = {});

}  // namespace raptor
