#include "core/threat_raptor.h"

#include <algorithm>
#include <chrono>
#include <optional>

#include "common/strings.h"
#include "common/thread_pool.h"
#include "engine/explain.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/resource.h"
#include "obs/trace.h"
#include "storage/persist/snapshot.h"
#include "synthesis/rules.h"
#include "tbql/analyzer.h"
#include "tbql/parser.h"
#include "tbql/printer.h"

namespace raptor {

std::string DegradationReport::ToString() const {
  if (!degraded) return "not degraded";
  std::string out;
  for (const StageFailure& f : failures) {
    out += f.stage + " failed: " + f.error + "\n";
  }
  out += StrFormat("degraded sub-queries: %zu/%zu succeeded",
                   subqueries_succeeded, subqueries_attempted);
  return out;
}

namespace {

/// Translates an executed query's per-operator stats into the generic
/// journal rows (the obs layer has no engine types).
obs::SlowEntry BuildSlowEntry(std::string kind, std::string query_text,
                              const engine::QueryResult& result) {
  const engine::ExecutionStats& stats = result.stats;
  obs::SlowEntry entry;
  entry.kind = std::move(kind);
  entry.query = std::move(query_text);
  entry.total_ms = stats.total_ms;
  entry.bytes = stats.bytes_touched;
  entry.truncated = result.truncated;
  entry.profile = result.profile;
  for (size_t i = 0; i < stats.schedule.size(); ++i) {
    obs::SlowOperator op;
    op.name = stats.schedule[i];
    op.backend = i < stats.pattern_used_graph.size() &&
                         stats.pattern_used_graph[i]
                     ? "graph"
                     : "relational";
    op.access = std::string(engine::AccessPathLabel(stats, i));
    if (i < stats.pattern_rows_examined.size()) {
      op.rows_examined = stats.pattern_rows_examined[i];
    }
    if (i < stats.matches_per_pattern.size()) {
      op.rows_emitted = stats.matches_per_pattern[i];
    }
    if (i < stats.pattern_bytes_touched.size()) {
      op.bytes = stats.pattern_bytes_touched[i];
    }
    if (i < stats.per_pattern_ms.size()) op.ms = stats.per_pattern_ms[i];
    entry.ops.push_back(std::move(op));
  }
  return entry;
}

/// Translates an executed query's estimate-vs-actual rows into the generic
/// misestimate journal shape. `stats_snapshot` summarizes what the
/// estimator saw (filled by the caller, which can reach the storage).
obs::MisestimateEntry BuildMisestimateEntry(
    std::string kind, std::string query_text, std::string stats_snapshot,
    const engine::QueryResult& result) {
  const engine::ExecutionStats& stats = result.stats;
  obs::MisestimateEntry entry;
  entry.kind = std::move(kind);
  entry.query = std::move(query_text);
  entry.stats_snapshot = std::move(stats_snapshot);
  const size_t n =
      std::min(stats.pattern_est_rows.size(), stats.pattern_q_error.size());
  for (size_t i = 0; i < n && i < stats.schedule.size(); ++i) {
    obs::MisestimateOperator op;
    op.name = stats.schedule[i];
    op.backend = i < stats.pattern_used_graph.size() &&
                         stats.pattern_used_graph[i]
                     ? "graph"
                     : "relational";
    op.est_rows = stats.pattern_est_rows[i];
    op.actual_rows = i < stats.matches_per_pattern.size()
                         ? stats.matches_per_pattern[i]
                         : 0;
    op.q_error = stats.pattern_q_error[i];
    entry.worst_q_error = std::max(entry.worst_q_error, op.q_error);
    entry.ops.push_back(std::move(op));
  }
  return entry;
}

}  // namespace

ThreatRaptor::ThreatRaptor(ThreatRaptorOptions options)
    : options_(options),
      pipeline_(options.nlp),
      synthesizer_(options.synthesis) {
  // The journal, like the storage gauges, reflects the most recently
  // constructed system in the process (the server owns exactly one).
  obs::SlowJournal::Default().Configure(options_.slow_journal);
  obs::MisestimateJournal::Default().Configure(options_.misestimate_journal);
  // Same contract for the profiler (starts sampling only when enabled)
  // and the SLO catalog (specs installed here; the API server starts the
  // periodic evaluator so plain library use never spawns a thread).
  obs::Profiler::Default().Configure(options_.profiler);
  // The history store must be configured before the SLO engine: the
  // engine's rolling burn windows live in it, and the two share one clock
  // so burn windows and retention tiers agree on "now".
  obs::MetricsHistory::Default().Configure(options_.history);
  if (!options_.slo.clock) options_.slo.clock = options_.history.clock;
  obs::SloEngine::Default().Configure(options_.slo);
}

ThreatRaptor::~ThreatRaptor() {
  obs::ResourceTracker::Default().Charge(
      obs::Component::kIngest, -static_cast<int64_t>(ingest_charged_));
}

void ThreatRaptor::RechargeIngest() {
  size_t now = log_.ApproxBytes();
  obs::ResourceTracker::Default().Charge(
      obs::Component::kIngest,
      static_cast<int64_t>(now) - static_cast<int64_t>(ingest_charged_));
  ingest_charged_ = now;
}

Status ThreatRaptor::IngestLogText(std::string_view text) {
  if (storage_ready_) {
    return Status::InvalidArgument(
        "storage already finalized; ingestion is frozen");
  }
  Status st = audit::LogParser::ParseText(text, &log_);
  RechargeIngest();
  return st;
}

Result<audit::ParseStats> ThreatRaptor::IngestLogText(
    std::string_view text, const audit::ParseOptions& options) {
  if (storage_ready_) {
    return Status::InvalidArgument(
        "storage already finalized; ingestion is frozen");
  }
  auto stats = audit::LogParser::ParseText(text, &log_, options);
  RechargeIngest();
  return stats;
}

Result<audit::SysdigParseStats> ThreatRaptor::IngestSysdigText(
    std::string_view text) {
  if (storage_ready_) {
    return Status::InvalidArgument(
        "storage already finalized; ingestion is frozen");
  }
  auto stats = audit::SysdigParser::ParseText(text, &log_);
  RechargeIngest();
  return stats;
}

Status ThreatRaptor::SaveTraceSnapshot(const std::string& path) const {
  return persist::SaveSnapshot(log_, path);
}

Status ThreatRaptor::LoadTraceSnapshot(const std::string& path) {
  if (storage_ready_) {
    return Status::InvalidArgument(
        "storage already finalized; ingestion is frozen");
  }
  RAPTOR_ASSIGN_OR_RETURN(log_, persist::LoadSnapshot(path));
  RechargeIngest();
  return Status::OK();
}

Status ThreatRaptor::IngestLiveText(std::string_view text) {
  if (!storage_ready_) {
    return Status::InvalidArgument(
        "live ingestion requires finalized storage; use IngestLogText "
        "before FinalizeStorage()");
  }
  // Lines before a parse failure are already in the log; sync the backends
  // unconditionally so they never lag behind it.
  Status st = audit::LogParser::ParseText(text, &log_);
  rel_->SyncWith(log_);
  graph_->SyncWithLog();
  RechargeIngest();
  return st;
}

Result<audit::ParseStats> ThreatRaptor::IngestLiveText(
    std::string_view text, const audit::ParseOptions& options) {
  if (!storage_ready_) {
    return Status::InvalidArgument(
        "live ingestion requires finalized storage; use IngestLogText "
        "before FinalizeStorage()");
  }
  auto stats = audit::LogParser::ParseText(text, &log_, options);
  rel_->SyncWith(log_);
  graph_->SyncWithLog();
  RechargeIngest();
  return stats;
}

Result<audit::SysdigParseStats> ThreatRaptor::IngestLiveSysdig(
    std::string_view text) {
  if (!storage_ready_) {
    return Status::InvalidArgument(
        "live ingestion requires finalized storage; use IngestSysdigText "
        "before FinalizeStorage()");
  }
  audit::SysdigParseStats stats = audit::SysdigParser::ParseText(text, &log_);
  rel_->SyncWith(log_);
  graph_->SyncWithLog();
  RechargeIngest();
  return stats;
}

audit::AuditLog* ThreatRaptor::mutable_log() {
  return storage_ready_ ? nullptr : &log_;
}

Status ThreatRaptor::FinalizeStorage() {
  if (storage_ready_) return Status::OK();
  if (options_.apply_cpr) {
    cpr_stats_ = audit::ReduceLog(&log_, options_.cpr, &cpr_old_to_new_);
  } else {
    cpr_stats_.events_before = cpr_stats_.events_after = log_.event_count();
  }
  rel_ = std::make_unique<rel::RelationalDatabase>();
  const size_t threads = options_.execution.num_threads == 0
                             ? ThreadPool::HardwareThreads()
                             : options_.execution.num_threads;
  if (threads > 1) {
    // The relational load and the graph build both only read the (now
    // frozen) log, so they can overlap: the graph builds on a pool worker
    // while the relational tables load here.
    auto graph_future = ThreadPool::Shared().Submit(
        [this] { return std::make_unique<graph::GraphStore>(log_); });
    rel_->Load(log_);
    graph_ = graph_future.get();
  } else {
    rel_->Load(log_);
    graph_ = std::make_unique<graph::GraphStore>(log_);
  }
  engine_ = std::make_unique<engine::QueryEngine>(&log_, rel_.get(),
                                                  graph_.get());
  storage_ready_ = true;
  // CPR and any generator writes through mutable_log() changed the log's
  // footprint without passing through an Ingest* call.
  RechargeIngest();
  // Storage-size gauges reflect the most recently finalized system in the
  // process (the server owns exactly one).
  obs::Registry::Default()
      .GetGauge("raptor_storage_events", "Events in finalized storage")
      ->Set(static_cast<int64_t>(log_.event_count()));
  obs::Registry::Default()
      .GetGauge("raptor_storage_entities", "Entities in finalized storage")
      ->Set(static_cast<int64_t>(log_.entity_count()));
  obs::Logger::Default()
      .Log(obs::LogLevel::kInfo, "core", "storage finalized")
      .Field("events", static_cast<uint64_t>(log_.event_count()))
      .Field("entities", static_cast<uint64_t>(log_.entity_count()))
      .Field("cpr_events_before",
             static_cast<uint64_t>(cpr_stats_.events_before))
      .Field("cpr_events_after",
             static_cast<uint64_t>(cpr_stats_.events_after));
  return Status::OK();
}

audit::EventId ThreatRaptor::TranslateEventId(audit::EventId pre_cpr_id) const {
  if (pre_cpr_id < cpr_old_to_new_.size()) return cpr_old_to_new_[pre_cpr_id];
  return pre_cpr_id;
}

std::vector<audit::EventId> ThreatRaptor::TranslateEventIds(
    const std::vector<audit::EventId>& pre_cpr_ids) const {
  std::vector<audit::EventId> out;
  out.reserve(pre_cpr_ids.size());
  for (audit::EventId id : pre_cpr_ids) out.push_back(TranslateEventId(id));
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

nlp::ExtractionResult ThreatRaptor::ExtractBehavior(
    std::string_view report) const {
  return pipeline_.Extract(report);
}

Result<synth::SynthesisResult> ThreatRaptor::SynthesizeQuery(
    const nlp::ThreatBehaviorGraph& graph) const {
  return synthesizer_.Synthesize(graph);
}

Result<engine::QueryResult> ThreatRaptor::ExecuteQuery(
    const tbql::Query& query) {
  return ExecuteQuery(query, options_.execution);
}

std::string ThreatRaptor::StatisticsSnapshot() const {
  if (!storage_ready_ || rel_ == nullptr) return "";
  std::string out;
  for (const stats::TableStatistics* table : rel_->AllStatistics()) {
    out += StrFormat("%s=%llu ", table->name().c_str(),
                     static_cast<unsigned long long>(table->RowCount()));
  }
  if (graph_ != nullptr) {
    out += StrFormat(
        "proc_avg_out_degree=%.2f",
        graph_->OutDegreeStatistics(audit::EntityType::kProcess).AvgDegree());
  }
  return out;
}

Result<engine::QueryResult> ThreatRaptor::ExecuteQuery(
    const tbql::Query& query, const engine::ExecutionOptions& execution) {
  if (!storage_ready_) {
    return Status::InvalidArgument(
        "call FinalizeStorage() before executing queries");
  }
  auto result = engine_->Execute(query, execution);
  if (result.ok()) {
    obs::SlowJournal& journal = obs::SlowJournal::Default();
    if (journal.ShouldRecord(result->stats.total_ms,
                             result->stats.bytes_touched)) {
      journal.Record(
          BuildSlowEntry("query", tbql::Print(query), *result));
    }
    obs::MisestimateJournal& misestimates = obs::MisestimateJournal::Default();
    double worst = 1.0;
    for (double q : result->stats.pattern_q_error) worst = std::max(worst, q);
    if (!result->stats.pattern_q_error.empty() &&
        misestimates.ShouldRecord(worst)) {
      misestimates.Record(BuildMisestimateEntry(
          "query", tbql::Print(query), StatisticsSnapshot(), *result));
    }
  }
  return result;
}

Result<engine::QueryResult> ThreatRaptor::ExecuteTbql(
    std::string_view tbql_text) {
  return ExecuteTbql(tbql_text, options_.execution);
}

Result<engine::QueryResult> ThreatRaptor::ExecuteTbql(
    std::string_view tbql_text, const engine::ExecutionOptions& execution) {
  RAPTOR_ASSIGN_OR_RETURN(tbql::Query query, tbql::Parse(tbql_text));
  RAPTOR_RETURN_NOT_OK(tbql::Analyze(&query));
  return ExecuteQuery(query, execution);
}

std::vector<Result<engine::QueryResult>> ThreatRaptor::ExecuteTbqlBatch(
    const std::vector<std::string>& tbql_texts) {
  return ExecuteTbqlBatch(tbql_texts, options_.execution);
}

std::vector<Result<engine::QueryResult>> ThreatRaptor::ExecuteTbqlBatch(
    const std::vector<std::string>& tbql_texts,
    const engine::ExecutionOptions& execution) {
  std::vector<Result<engine::QueryResult>> results;
  results.reserve(tbql_texts.size());
  if (!storage_ready_) {
    for (size_t i = 0; i < tbql_texts.size(); ++i) {
      results.emplace_back(Status::InvalidArgument(
          "call FinalizeStorage() before executing queries"));
    }
    return results;
  }
  // Parse and analyze every slot first; only the well-formed queries join
  // the shared-scan batch, the rest keep their front-end error.
  std::vector<std::optional<tbql::Query>> parsed(tbql_texts.size());
  std::vector<Status> front_errors(tbql_texts.size(), Status::OK());
  std::vector<const tbql::Query*> batch;
  for (size_t i = 0; i < tbql_texts.size(); ++i) {
    Result<tbql::Query> q = tbql::Parse(tbql_texts[i]);
    Status status = q.status();
    if (status.ok()) {
      status = tbql::Analyze(&*q);
    }
    if (!status.ok()) {
      front_errors[i] = std::move(status);
      continue;
    }
    parsed[i] = std::move(*q);
    batch.push_back(&*parsed[i]);
  }
  std::vector<Result<engine::QueryResult>> executed =
      engine_->ExecuteBatch(batch, execution);
  size_t next = 0;
  for (size_t i = 0; i < tbql_texts.size(); ++i) {
    if (!parsed[i].has_value()) {
      results.emplace_back(front_errors[i]);
      continue;
    }
    Result<engine::QueryResult> result = std::move(executed[next++]);
    if (result.ok()) {
      obs::SlowJournal& journal = obs::SlowJournal::Default();
      if (journal.ShouldRecord(result->stats.total_ms,
                               result->stats.bytes_touched)) {
        journal.Record(
            BuildSlowEntry("query", tbql::Print(*parsed[i]), *result));
      }
    }
    results.push_back(std::move(result));
  }
  return results;
}

namespace {

/// Builds the degraded sub-query for one already-analyzed pattern of the
/// full behavior query: the pattern alone, no temporal constraints.
tbql::Query SinglePatternQuery(const tbql::Pattern& pattern) {
  tbql::Query query;
  query.patterns.push_back(pattern);
  query.returns.push_back(tbql::ReturnItem{pattern.subject.id, ""});
  query.returns.push_back(tbql::ReturnItem{pattern.object.id, ""});
  return query;
}

/// Builds the degraded sub-query for one auditable IOC, matching any event
/// that touches it: file-like IOCs as the object of any file operation
/// (execute covers executables named in reports), IPs as the destination of
/// any network operation. Returns nullopt for non-auditable IOC types.
std::optional<tbql::Query> PerIocQuery(const nlp::IocEntity& ioc) {
  if (!synth::IsAuditableIocType(ioc.type)) return std::nullopt;
  tbql::Query query;
  tbql::Pattern p;
  p.id = "evt1";
  p.subject.type = audit::EntityType::kProcess;
  p.subject.id = "p1";

  tbql::AttrFilter f;
  f.is_string = true;
  if (ioc.type == nlp::IocType::kIp) {
    p.object.type = audit::EntityType::kNetwork;
    p.object.id = "n1";
    f.attr = "dstip";
    f.op = rel::CompareOp::kEq;
    f.string_value = ioc.text;
    p.op.names = {"connect", "send", "recv"};
  } else {
    p.object.type = audit::EntityType::kFile;
    p.object.id = "f1";
    f.attr = "name";
    f.op = rel::CompareOp::kLike;  // recall over precision in degraded mode
    f.string_value = "%" + ioc.text + "%";
    p.op.names = {"read", "write", "execute", "delete", "rename", "chmod"};
  }
  p.object.filters.push_back(std::move(f));
  query.patterns.push_back(std::move(p));
  query.returns.push_back(tbql::ReturnItem{"p1", ""});
  query.returns.push_back(tbql::ReturnItem{
      query.patterns[0].object.id, ""});
  return query;
}

}  // namespace

Result<HuntReport> ThreatRaptor::Hunt(std::string_view oscti_report) {
  return Hunt(oscti_report, options_.hunt);
}

Result<HuntReport> ThreatRaptor::Hunt(std::string_view oscti_report,
                                      const HuntOptions& options) {
  if (!storage_ready_) {
    return Status::InvalidArgument(
        "call FinalizeStorage() before hunting");
  }
  static obs::Counter* hunts_total = obs::Registry::Default().GetCounter(
      "raptor_hunts_total", "Hunts started (report text in, matches out)");
  static obs::Counter* hunts_degraded = obs::Registry::Default().GetCounter(
      "raptor_hunts_degraded_total",
      "Hunts that fell back to degraded per-pattern/per-IOC sub-queries");
  static obs::Histogram* hunt_ms = obs::Registry::Default().GetHistogram(
      "raptor_hunt_ms", "Wall time of one full hunt (ms)");
  hunts_total->Increment();
  obs::Tracer& tracer = obs::Tracer::Default();
  obs::TraceScope trace_scope =
      tracer.BeginTrace("hunt", options.collect_profile);
  auto t0 = std::chrono::steady_clock::now();
  // Stamp timing + profile on whichever report we hand back; error returns
  // skip it and let the TraceScope destructor unwind the trace.
  auto finish = [&](HuntReport* r) {
    double ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
    hunt_ms->Observe(ms);
    if (std::optional<obs::Trace> trace = trace_scope.Finish()) {
      r->profile = obs::AggregateProfile(*trace);
    }
    obs::SlowJournal& journal = obs::SlowJournal::Default();
    if (journal.ShouldRecord(ms, r->result.stats.bytes_touched)) {
      obs::SlowEntry entry = BuildSlowEntry(
          "hunt",
          r->query_text.empty()
              ? std::string(oscti_report.substr(0, 200))
              : r->query_text,
          r->result);
      entry.total_ms = ms;
      // Prefer the hunt-level profile (extract/synthesize/execute stages)
      // over the execution-only one copied from the result.
      if (!r->profile.empty()) entry.profile = r->profile;
      journal.Record(std::move(entry));
    }
  };

  // Per-hunt thread override; 0 keeps the system-wide execution setting.
  engine::ExecutionOptions execution = options_.execution;
  if (options.num_threads != 0) execution.num_threads = options.num_threads;

  HuntReport report;
  report.cpr = cpr_stats_;
  report.extraction = ExtractBehavior(oscti_report);

  auto synthesis = SynthesizeQuery(report.extraction.graph);
  bool have_query = synthesis.ok();
  if (have_query) {
    report.synthesis = *std::move(synthesis);
    report.query_text = tbql::Print(report.synthesis.query);
    auto result = ExecuteQuery(report.synthesis.query, execution);
    if (result.ok()) {
      report.result = *std::move(result);
      finish(&report);
      return report;
    }
    if (!options.allow_degraded) return result.status();
    report.degradation.failures.push_back(
        {"execution", result.status().ToString()});
    obs::Logger::Default()
        .Log(obs::LogLevel::kWarn, "core", "hunt stage failed, degrading")
        .Field("stage", "execution")
        .Field("error", result.status().ToString());
  } else {
    if (!options.allow_degraded) return synthesis.status();
    report.degradation.failures.push_back(
        {"synthesis", synthesis.status().ToString()});
    obs::Logger::Default()
        .Log(obs::LogLevel::kWarn, "core", "hunt stage failed, degrading")
        .Field("stage", "synthesis")
        .Field("error", synthesis.status().ToString());
  }

  // Degraded path: the full behavior query could not run. Fall back to
  // per-pattern sub-queries (when synthesis produced a query) or per-IOC
  // sub-queries (straight from the behavior graph), merge whatever
  // matched, and record what happened.
  report.degradation.degraded = true;
  hunts_degraded->Increment();
  std::vector<std::pair<std::string, tbql::Query>> subqueries;
  if (have_query) {
    for (const tbql::Pattern& p : report.synthesis.query.patterns) {
      subqueries.emplace_back(p.id, SinglePatternQuery(p));
    }
  } else {
    for (const nlp::IocEntity& ioc : report.extraction.graph.nodes()) {
      if (auto q = PerIocQuery(ioc)) {
        subqueries.emplace_back("ioc:" + ioc.text, *std::move(q));
      }
    }
  }

  engine::QueryResult& merged = report.result;
  merged.columns = {"subquery", "pattern", "subject", "object"};
  for (auto& [label, subquery] : subqueries) {
    ++report.degradation.subqueries_attempted;
    if (Status st = tbql::Analyze(&subquery); !st.ok()) continue;
    auto sub = ExecuteQuery(subquery, execution);
    if (!sub.ok()) continue;
    ++report.degradation.subqueries_succeeded;
    for (size_t i = 0; i < sub->matches.size(); ++i) {
      for (const auto& [pattern_id, match] : sub->matches[i]) {
        merged.rows.push_back({label, pattern_id,
                               log_.entity(match.subject).ToString(),
                               log_.entity(match.object).ToString()});
        merged.bindings.push_back(sub->bindings[i]);
        merged.matches.push_back({{pattern_id, match}});
      }
    }
    merged.stats.total_ms += sub->stats.total_ms;
    merged.stats.relational_rows_touched +=
        sub->stats.relational_rows_touched;
    merged.stats.graph_edges_traversed += sub->stats.graph_edges_traversed;
    merged.stats.bytes_touched += sub->stats.bytes_touched;
    merged.stats.intermediate_result_bytes +=
        sub->stats.intermediate_result_bytes;
    merged.stats.plan_cache_hit |= sub->stats.plan_cache_hit;
    merged.stats.shared_scan_patterns += sub->stats.shared_scan_patterns;
    // Append every per-pattern vector together: ExecutionStats keeps them
    // parallel (same length, same order), and a merged result must
    // preserve that invariant even across sub-queries.
    for (size_t k = 0; k < sub->stats.schedule.size(); ++k) {
      merged.stats.schedule.push_back(label + "/" + sub->stats.schedule[k]);
      merged.stats.matches_per_pattern.push_back(
          sub->stats.matches_per_pattern[k]);
      merged.stats.pattern_scores.push_back(sub->stats.pattern_scores[k]);
      merged.stats.pattern_used_graph.push_back(
          sub->stats.pattern_used_graph[k]);
      merged.stats.per_pattern_ms.push_back(sub->stats.per_pattern_ms[k]);
      merged.stats.pattern_was_constrained.push_back(
          sub->stats.pattern_was_constrained[k]);
      merged.stats.pattern_rows_examined.push_back(
          sub->stats.pattern_rows_examined[k]);
      merged.stats.pattern_bytes_touched.push_back(
          sub->stats.pattern_bytes_touched[k]);
      merged.stats.pattern_index_probes.push_back(
          sub->stats.pattern_index_probes[k]);
      merged.stats.pattern_full_scans.push_back(
          sub->stats.pattern_full_scans[k]);
      merged.stats.pattern_segments_scanned.push_back(
          sub->stats.pattern_segments_scanned[k]);
      merged.stats.pattern_segments_pruned.push_back(
          sub->stats.pattern_segments_pruned[k]);
      if (k < sub->stats.pattern_est_rows.size() &&
          k < sub->stats.pattern_q_error.size()) {
        merged.stats.pattern_est_rows.push_back(
            sub->stats.pattern_est_rows[k]);
        merged.stats.pattern_q_error.push_back(
            sub->stats.pattern_q_error[k]);
      }
    }
    if (sub->truncated && !merged.truncated) {
      merged.truncated = true;
      merged.stats.truncation_reason =
          label + ": " + sub->stats.truncation_reason;
    }
  }
  obs::Logger::Default()
      .Log(obs::LogLevel::kInfo, "core", "degraded hunt merged")
      .Field("subqueries_attempted",
             static_cast<uint64_t>(report.degradation.subqueries_attempted))
      .Field("subqueries_succeeded",
             static_cast<uint64_t>(report.degradation.subqueries_succeeded))
      .Field("rows", static_cast<uint64_t>(merged.rows.size()));
  finish(&report);
  return report;
}

}  // namespace raptor
