#include "core/threat_raptor.h"

#include <algorithm>

#include "storage/persist/snapshot.h"
#include "tbql/analyzer.h"
#include "tbql/parser.h"
#include "tbql/printer.h"

namespace raptor {

ThreatRaptor::ThreatRaptor(ThreatRaptorOptions options)
    : options_(options),
      pipeline_(options.nlp),
      synthesizer_(options.synthesis) {}

ThreatRaptor::~ThreatRaptor() = default;

Status ThreatRaptor::IngestLogText(std::string_view text) {
  if (storage_ready_) {
    return Status::InvalidArgument(
        "storage already finalized; ingestion is frozen");
  }
  return audit::LogParser::ParseText(text, &log_);
}

Result<audit::SysdigParseStats> ThreatRaptor::IngestSysdigText(
    std::string_view text) {
  if (storage_ready_) {
    return Status::InvalidArgument(
        "storage already finalized; ingestion is frozen");
  }
  return audit::SysdigParser::ParseText(text, &log_);
}

Status ThreatRaptor::SaveTraceSnapshot(const std::string& path) const {
  return persist::SaveSnapshot(log_, path);
}

Status ThreatRaptor::LoadTraceSnapshot(const std::string& path) {
  if (storage_ready_) {
    return Status::InvalidArgument(
        "storage already finalized; ingestion is frozen");
  }
  RAPTOR_ASSIGN_OR_RETURN(log_, persist::LoadSnapshot(path));
  return Status::OK();
}

Status ThreatRaptor::IngestLiveText(std::string_view text) {
  if (!storage_ready_) {
    return Status::InvalidArgument(
        "live ingestion requires finalized storage; use IngestLogText "
        "before FinalizeStorage()");
  }
  // Lines before a parse failure are already in the log; sync the backends
  // unconditionally so they never lag behind it.
  Status st = audit::LogParser::ParseText(text, &log_);
  rel_->SyncWith(log_);
  graph_->SyncWithLog();
  return st;
}

Result<audit::SysdigParseStats> ThreatRaptor::IngestLiveSysdig(
    std::string_view text) {
  if (!storage_ready_) {
    return Status::InvalidArgument(
        "live ingestion requires finalized storage; use IngestSysdigText "
        "before FinalizeStorage()");
  }
  audit::SysdigParseStats stats = audit::SysdigParser::ParseText(text, &log_);
  rel_->SyncWith(log_);
  graph_->SyncWithLog();
  return stats;
}

audit::AuditLog* ThreatRaptor::mutable_log() {
  return storage_ready_ ? nullptr : &log_;
}

Status ThreatRaptor::FinalizeStorage() {
  if (storage_ready_) return Status::OK();
  if (options_.apply_cpr) {
    cpr_stats_ = audit::ReduceLog(&log_, options_.cpr, &cpr_old_to_new_);
  } else {
    cpr_stats_.events_before = cpr_stats_.events_after = log_.event_count();
  }
  rel_ = std::make_unique<rel::RelationalDatabase>();
  rel_->Load(log_);
  graph_ = std::make_unique<graph::GraphStore>(log_);
  engine_ = std::make_unique<engine::QueryEngine>(&log_, rel_.get(),
                                                  graph_.get());
  storage_ready_ = true;
  return Status::OK();
}

audit::EventId ThreatRaptor::TranslateEventId(audit::EventId pre_cpr_id) const {
  if (pre_cpr_id < cpr_old_to_new_.size()) return cpr_old_to_new_[pre_cpr_id];
  return pre_cpr_id;
}

std::vector<audit::EventId> ThreatRaptor::TranslateEventIds(
    const std::vector<audit::EventId>& pre_cpr_ids) const {
  std::vector<audit::EventId> out;
  out.reserve(pre_cpr_ids.size());
  for (audit::EventId id : pre_cpr_ids) out.push_back(TranslateEventId(id));
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

nlp::ExtractionResult ThreatRaptor::ExtractBehavior(
    std::string_view report) const {
  return pipeline_.Extract(report);
}

Result<synth::SynthesisResult> ThreatRaptor::SynthesizeQuery(
    const nlp::ThreatBehaviorGraph& graph) const {
  return synthesizer_.Synthesize(graph);
}

Result<engine::QueryResult> ThreatRaptor::ExecuteQuery(
    const tbql::Query& query) {
  if (!storage_ready_) {
    return Status::InvalidArgument(
        "call FinalizeStorage() before executing queries");
  }
  return engine_->Execute(query, options_.execution);
}

Result<engine::QueryResult> ThreatRaptor::ExecuteTbql(
    std::string_view tbql_text) {
  RAPTOR_ASSIGN_OR_RETURN(tbql::Query query, tbql::Parse(tbql_text));
  RAPTOR_RETURN_NOT_OK(tbql::Analyze(&query));
  return ExecuteQuery(query);
}

Result<HuntReport> ThreatRaptor::Hunt(std::string_view oscti_report) {
  if (!storage_ready_) {
    return Status::InvalidArgument(
        "call FinalizeStorage() before hunting");
  }
  HuntReport report;
  report.extraction = ExtractBehavior(oscti_report);
  RAPTOR_ASSIGN_OR_RETURN(report.synthesis,
                          SynthesizeQuery(report.extraction.graph));
  report.query_text = tbql::Print(report.synthesis.query);
  RAPTOR_ASSIGN_OR_RETURN(report.result,
                          ExecuteQuery(report.synthesis.query));
  report.cpr = cpr_stats_;
  return report;
}

}  // namespace raptor
