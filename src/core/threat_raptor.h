// ThreatRaptor: the public facade (paper Figure 1).
//
// Wires the full pipeline together: audit log ingestion (data collection),
// CPR + relational/graph storage (data storage), OSCTI threat behavior
// extraction, TBQL query synthesis, and TBQL query execution — plus the
// human-in-the-loop path of executing a hand-written or edited TBQL query.
//
// Typical use (see examples/quickstart.cpp):
//
//   raptor::ThreatRaptor system;
//   raptor::audit::WorkloadGenerator gen;
//   gen.GenerateBenign(100000, system.mutable_log());
//   auto attack = gen.InjectDataLeakageAttack(system.mutable_log());
//   gen.GenerateBenign(100000, system.mutable_log());
//   system.FinalizeStorage();
//   auto hunt = system.Hunt(attack.report_text);   // extract -> synthesize
//   std::cout << hunt->query_text << hunt->result.ToString();

#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "audit/cpr.h"
#include "audit/generator.h"
#include "audit/log.h"
#include "audit/parser.h"
#include "audit/sysdig_parser.h"
#include "common/result.h"
#include "engine/engine.h"
#include "nlp/pipeline.h"
#include "obs/history.h"
#include "obs/misestimate_journal.h"
#include "obs/profile.h"
#include "obs/profiler.h"
#include "obs/slo.h"
#include "obs/slow_journal.h"
#include "storage/graph/graph_store.h"
#include "storage/relational/database.h"
#include "synthesis/synthesizer.h"
#include "tbql/ast.h"

namespace raptor {

/// \brief Hunt-level resilience switches.
struct HuntOptions {
  /// When synthesis or execution of the full behavior query fails, fall
  /// back to per-pattern (or, without a synthesized query, per-IOC)
  /// sub-queries and return whatever matched instead of failing the hunt.
  /// The fallback is recorded in HuntReport::degradation.
  bool allow_degraded = false;
  /// Record a trace for this hunt even when the global tracer is disabled,
  /// and aggregate it into HuntReport::profile (the ?profile=1 path of the
  /// API).
  bool collect_profile = false;
  /// Per-hunt thread count for query execution (the full behavior query and
  /// any degraded sub-queries). 0 = use ExecutionOptions::num_threads from
  /// the system-wide options (whose own 0 means hardware concurrency);
  /// 1 = exact serial execution. Results are byte-identical at any setting.
  size_t num_threads = 0;
};

/// \brief End-to-end configuration; every component's knobs in one place.
struct ThreatRaptorOptions {
  nlp::PipelineOptions nlp;
  synth::SynthesisPlan synthesis;
  engine::ExecutionOptions execution;
  audit::CprOptions cpr;
  HuntOptions hunt;
  /// Thresholds for the slow-hunt journal (obs::SlowJournal::Default()):
  /// hunts/queries whose wall time or bytes touched meet a threshold are
  /// retained with their full profile and operator stats for /api/slow.
  obs::SlowJournalOptions slow_journal;
  /// Threshold/retention for the misestimate journal
  /// (obs::MisestimateJournal::Default()): queries whose worst per-pattern
  /// estimation q-error meets the threshold are retained worst-first with
  /// the query text and a statistics snapshot for /api/misestimates.
  obs::MisestimateJournalOptions misestimate_journal;
  /// Sampling profiler (obs::Profiler::Default()); off by default. When
  /// enabled, a 99 Hz sampler thread aggregates span-stack samples served
  /// at /api/profile. Never affects hunt/query results.
  obs::ProfilerOptions profiler;
  /// Metrics time-series history (obs::MetricsHistory::Default()): the
  /// store is configured at construction; the API server starts the
  /// background collector when enabled. Serves /api/metrics/range, the
  /// SLO engine's rolling burn windows, incident capture, and the
  /// /api/dashboard sparklines.
  obs::HistoryOptions history;
  /// SLO burn-rate alerting (obs::SloEngine::Default()): the default
  /// catalog is installed at construction; the API server starts the
  /// periodic evaluator when enabled. Served at /api/alerts. When
  /// slo.clock is unset it inherits history.clock so windows and
  /// retention agree on time.
  obs::SloOptions slo;
  /// Run Causality-Preserved Reduction before loading storage (paper §II-B).
  bool apply_cpr = true;
};

/// \brief Which hunt stages fell back and why (degraded mode).
struct DegradationReport {
  /// One stage that failed and was worked around.
  struct StageFailure {
    std::string stage;  ///< "synthesis" or "execution".
    std::string error;  ///< The Status that caused the fallback.
  };

  bool degraded = false;  ///< True when any fallback ran.
  std::vector<StageFailure> failures;
  size_t subqueries_attempted = 0;
  size_t subqueries_succeeded = 0;

  /// One line per failure plus the sub-query tally, for logs and the API.
  std::string ToString() const;
};

/// \brief Everything one hunt produced, for inspection and scoring.
struct HuntReport {
  nlp::ExtractionResult extraction;
  synth::SynthesisResult synthesis;
  std::string query_text;       ///< The synthesized TBQL, pretty-printed.
  engine::QueryResult result;
  audit::CprStats cpr;          ///< Stats of the reduction pass (if applied).
  /// Degraded-mode record; degradation.degraded is false on a clean hunt.
  /// In degraded mode `result` holds the merged sub-query matches with
  /// columns (subquery, pattern, subject, object).
  DegradationReport degradation;
  /// Stage-level timing breakdown (extract / synthesize / execute and their
  /// sub-stages) aggregated from this hunt's span tree. Populated whenever a
  /// trace covered the hunt — always under HuntOptions::collect_profile, and
  /// also when the global tracer is enabled (the API's sink).
  obs::Profile profile;
};

/// \brief The THREATRAPTOR system.
class ThreatRaptor {
 public:
  explicit ThreatRaptor(ThreatRaptorOptions options = {});
  ~ThreatRaptor();

  ThreatRaptor(const ThreatRaptor&) = delete;
  ThreatRaptor& operator=(const ThreatRaptor&) = delete;

  // --- Data collection. ---

  /// Parses textual audit records (see audit/parser.h for the format) into
  /// the system's log. Strict: the first malformed line fails the batch.
  Status IngestLogText(std::string_view text);

  /// Error-budgeted variant: tolerates up to `options.error_budget`
  /// malformed lines (skip-and-count; see audit::ParseOptions).
  Result<audit::ParseStats> IngestLogText(std::string_view text,
                                          const audit::ParseOptions& options);

  /// Parses a Sysdig default-format capture (see audit/sysdig_parser.h).
  /// Unsupported/enter lines are skipped, as a deployment would; the
  /// returned stats say how many.
  Result<audit::SysdigParseStats> IngestSysdigText(std::string_view text);

  /// Saves the current log as a binary snapshot (atomic write). Works both
  /// before and after FinalizeStorage (after, the reduced log is saved).
  Status SaveTraceSnapshot(const std::string& path) const;

  /// Loads a snapshot file into the system's log, replacing any previously
  /// ingested data. Must be called before FinalizeStorage().
  Status LoadTraceSnapshot(const std::string& path);

  // --- Live ingestion (continuous monitoring). ---

  /// Appends audit records *after* FinalizeStorage(), updating both storage
  /// backends incrementally; hunts see the new events immediately. Live
  /// events bypass CPR (reduction is a batch pass over historical data).
  Status IngestLiveText(std::string_view text);

  /// Error-budgeted live ingestion. Whatever parsed — even when the budget
  /// is eventually exceeded — is synced to both backends before returning.
  Result<audit::ParseStats> IngestLiveText(std::string_view text,
                                           const audit::ParseOptions& options);

  /// Live counterpart of IngestSysdigText.
  Result<audit::SysdigParseStats> IngestLiveSysdig(std::string_view text);

  /// Direct access to the in-memory log, for generators and bulk loading.
  /// Must not be called after FinalizeStorage().
  audit::AuditLog* mutable_log();

  // --- Data storage. ---

  /// Runs CPR (unless disabled) and loads the relational and graph
  /// backends. Ingestion is frozen afterwards. Idempotent.
  Status FinalizeStorage();

  bool storage_ready() const { return storage_ready_; }
  const audit::AuditLog& log() const { return log_; }

  /// Maps a pre-CPR event id (e.g. a generator ground-truth label) to the
  /// id of the reduced event it was folded into. Identity before
  /// FinalizeStorage() or when CPR is disabled.
  audit::EventId TranslateEventId(audit::EventId pre_cpr_id) const;
  /// Vector version; deduplicates (several originals may fold together).
  std::vector<audit::EventId> TranslateEventIds(
      const std::vector<audit::EventId>& pre_cpr_ids) const;

  const audit::CprStats& cpr_stats() const { return cpr_stats_; }
  const rel::RelationalDatabase& relational() const { return *rel_; }
  const graph::GraphStore& graph() const { return *graph_; }

  // --- Threat behavior extraction (paper §II-C). ---

  /// Runs the NLP pipeline over an OSCTI report.
  nlp::ExtractionResult ExtractBehavior(std::string_view report) const;

  // --- Query synthesis (paper §II-E). ---

  Result<synth::SynthesisResult> SynthesizeQuery(
      const nlp::ThreatBehaviorGraph& graph) const;

  // --- Query execution (paper §II-F). ---

  /// Executes an analyzed query. Requires FinalizeStorage().
  Result<engine::QueryResult> ExecuteQuery(const tbql::Query& query);

  /// Same, but with per-call execution options overriding the system-wide
  /// ones (the API uses this for ?profile=1).
  Result<engine::QueryResult> ExecuteQuery(
      const tbql::Query& query, const engine::ExecutionOptions& execution);

  /// Parses, analyzes, and executes TBQL text — the human-in-the-loop
  /// query-editing path of the paper's web UI.
  Result<engine::QueryResult> ExecuteTbql(std::string_view tbql_text);

  /// Same, with per-call execution options.
  Result<engine::QueryResult> ExecuteTbql(
      std::string_view tbql_text, const engine::ExecutionOptions& execution);

  /// Executes several TBQL queries as one batch: patterns probing
  /// overlapping event windows share a single pass over the columnar
  /// segment store (QueryEngine::ExecuteBatch). Results are positional and
  /// byte-identical to executing each query alone; a query that fails to
  /// parse or analyze yields its error in that slot without affecting the
  /// others.
  std::vector<Result<engine::QueryResult>> ExecuteTbqlBatch(
      const std::vector<std::string>& tbql_texts);
  std::vector<Result<engine::QueryResult>> ExecuteTbqlBatch(
      const std::vector<std::string>& tbql_texts,
      const engine::ExecutionOptions& execution);

  // --- The full pipeline (paper Figure 1). ---

  /// OSCTI report in, matched system auditing records out. Uses the
  /// hunt options from ThreatRaptorOptions.
  Result<HuntReport> Hunt(std::string_view oscti_report);

  /// Hunt with explicit per-call options. With `allow_degraded`, a failed
  /// synthesis falls back to per-IOC sub-queries and a failed execution to
  /// per-pattern sub-queries; the report's DegradationReport records both.
  Result<HuntReport> Hunt(std::string_view oscti_report,
                          const HuntOptions& options);

  const ThreatRaptorOptions& options() const { return options_; }

 private:
  /// Charges the audit log's byte delta (since the last call) to the
  /// ingest memory component; released in the destructor.
  void RechargeIngest();

  /// One-line summary of the statistics the cardinality estimator reads
  /// (table row counts, process out-degree), for misestimate journal
  /// entries. Empty before FinalizeStorage().
  std::string StatisticsSnapshot() const;

  ThreatRaptorOptions options_;
  audit::AuditLog log_;
  size_t ingest_charged_ = 0;
  audit::CprStats cpr_stats_;
  std::vector<audit::EventId> cpr_old_to_new_;
  std::unique_ptr<rel::RelationalDatabase> rel_;
  std::unique_ptr<graph::GraphStore> graph_;
  std::unique_ptr<engine::QueryEngine> engine_;
  nlp::ExtractionPipeline pipeline_;
  synth::QuerySynthesizer synthesizer_;
  bool storage_ready_ = false;
};

}  // namespace raptor
