#include "core/investigate.h"

#include <algorithm>
#include <set>

#include "common/strings.h"

namespace raptor {

namespace {

std::string EntityLabel(const audit::SystemEntity& e) {
  switch (e.type) {
    case audit::EntityType::kFile:
      return e.path;
    case audit::EntityType::kProcess:
      return StrFormat("%s(%u)", e.exename.c_str(), e.pid);
    case audit::EntityType::kNetwork:
      return StrFormat("%s:%u", e.dst_ip.c_str(), e.dst_port);
  }
  return "?";
}

}  // namespace

Result<InvestigationReport> Investigate(
    const ThreatRaptor& system, const std::vector<audit::EventId>& seeds,
    const graph::TrackingOptions& options) {
  if (!system.storage_ready()) {
    return Status::InvalidArgument(
        "call FinalizeStorage() before investigating");
  }
  InvestigationReport report;
  report.subgraph = graph::TrackBidirectional(system.graph(), seeds, options);

  const audit::AuditLog& log = system.log();
  std::set<audit::EventId> seed_set(seeds.begin(), seeds.end());

  // Timeline: subgraph events in chronological order.
  std::vector<audit::EventId> ordered = report.subgraph.events;
  std::sort(ordered.begin(), ordered.end(),
            [&log](audit::EventId a, audit::EventId b) {
              const auto& ea = log.event(a);
              const auto& eb = log.event(b);
              if (ea.start_time != eb.start_time) {
                return ea.start_time < eb.start_time;
              }
              return a < b;
            });
  for (audit::EventId id : ordered) {
    const audit::SystemEvent& ev = log.event(id);
    report.timeline += StrFormat(
        "%c %lld  %s -[%s]-> %s\n", seed_set.count(id) ? '*' : ' ',
        static_cast<long long>(ev.start_time),
        EntityLabel(log.entity(ev.subject)).c_str(),
        std::string(audit::OperationName(ev.op)).c_str(),
        EntityLabel(log.entity(ev.object)).c_str());
  }

  // Provenance graph.
  report.dot = "digraph provenance {\n  rankdir=LR;\n";
  for (audit::EntityId id : report.subgraph.entities) {
    const audit::SystemEntity& e = log.entity(id);
    const char* shape = e.type == audit::EntityType::kProcess ? "box"
                        : e.type == audit::EntityType::kFile  ? "ellipse"
                                                              : "diamond";
    report.dot += StrFormat("  n%llu [label=\"%s\", shape=%s];\n",
                            static_cast<unsigned long long>(id),
                            EntityLabel(e).c_str(), shape);
  }
  for (audit::EventId id : ordered) {
    const audit::SystemEvent& ev = log.event(id);
    report.dot += StrFormat(
        "  n%llu -> n%llu [label=\"%s\"%s];\n",
        static_cast<unsigned long long>(ev.subject),
        static_cast<unsigned long long>(ev.object),
        std::string(audit::OperationName(ev.op)).c_str(),
        seed_set.count(id) ? ", color=red, penwidth=2" : "");
  }
  report.dot += "}\n";
  return report;
}

}  // namespace raptor
