// EXPLAIN ANALYZE rendering: a human-readable account of how the engine
// executed a TBQL query — per-pattern pruning scores, backend choice,
// whether constraint propagation narrowed it, match counts and timings,
// then the totals. The paper's web UI surfaces the execution; this is the
// library equivalent, also available in the tbql_shell example via
// `:explain <query>`.

#pragma once

#include <string>
#include <string_view>

#include "engine/engine.h"
#include "tbql/ast.h"

namespace raptor::engine {

/// Formats an executed query's plan and measurements.
std::string ExplainAnalyze(const tbql::Query& query,
                           const QueryResult& result);

/// Access-path label for step `i` of `stats`: "graph" for path searches,
/// else "index" / "fullscan" / "mixed" / "none" from the step's relational
/// counters. Shared by the text and JSON explain renderings.
std::string_view AccessPathLabel(const ExecutionStats& stats, size_t i);

}  // namespace raptor::engine
