// TBQL query execution engine (paper §II-F).
//
// Each basic event pattern compiles to a relational plan (entity tables
// joined with the event table, exactly what the paper compiles to SQL);
// each variable-length path pattern compiles to a graph search (what the
// paper compiles to Cypher). The engine computes a pruning score per
// pattern from its declared constraints (path patterns additionally favor
// smaller maximum lengths), then schedules execution so that when two
// patterns share an entity, the higher-scoring one runs first and its
// results constrain the other (filter propagation). A final consistency
// join enforces shared-entity identity and the with-clause temporal order.

#pragma once

#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "audit/log.h"
#include "common/result.h"
#include "engine/plan_cache.h"
#include "obs/profile.h"
#include "storage/graph/graph_store.h"
#include "storage/relational/database.h"
#include "tbql/ast.h"

namespace raptor::engine {

/// \brief Execution switches; the defaults are THREATRAPTOR's behavior and
/// the `false` settings are the unscheduled baseline of bench_execution.
struct ExecutionOptions {
  /// Order patterns by pruning score instead of declaration order.
  bool use_pruning_scores = true;
  /// Feed each executed pattern's entity bindings into the patterns that
  /// share those entities.
  bool propagate_constraints = true;
  /// Safety cap on joined result rows.
  size_t max_rows = 1'000'000;
  /// Wall-clock budget for one Execute() call in milliseconds; 0 =
  /// unbounded. On expiry the engine stops where it is (relational scan,
  /// graph search, or consistency join) and returns the partial result with
  /// QueryResult::truncated set.
  uint64_t deadline_ms = 0;
  /// Cap on graph edges traversed across all path patterns of one
  /// Execute() call; 0 = unbounded. Exceeding it truncates like the
  /// deadline does.
  uint64_t max_graph_edges = 0;
  /// Record a trace for this execution even when the global tracer is
  /// disabled, and aggregate it into QueryResult::profile (the ?profile=1
  /// path of the API).
  bool collect_profile = false;
  /// Predict per-pattern cardinalities from the data statistics
  /// (storage/stats/) before execution: estimates break pruning-score ties
  /// in the scheduler (lower estimated rows first) and populate
  /// ExecutionStats::pattern_est_rows / pattern_q_error for explain.
  /// Estimates are a pure function of the load-time statistics, so enabling
  /// this preserves byte-identical results at any thread count.
  bool use_cardinality_estimates = true;
  /// Parallelism for this execution: relational scans and join probes are
  /// partitioned, graph path searches fan out over source entities, and
  /// patterns sharing no entities run concurrently within a scheduling
  /// wave. 0 = hardware concurrency; 1 = the exact serial execution path.
  /// Results are byte-identical at any setting (see DESIGN.md, "Parallel
  /// execution"); only timing-dependent fields (per-pattern milliseconds,
  /// deadline truncation points) can differ.
  size_t num_threads = 0;
  /// Answer event patterns from the columnar segment store (zone-map
  /// pruning, bloom filters, operation bitmaps) instead of row-store
  /// scans. The columnar path emits matches in exactly the row-store
  /// order, so results stay byte-identical either way; `false` is the
  /// row-store baseline arm of bench_execution.
  bool use_columnar = true;
  /// Reuse cached plans (schedule order, estimates, pruned segment lists)
  /// keyed by query fingerprint; entries invalidate when SyncWith() lands
  /// new data. Plans are thread-count independent, so a cached plan never
  /// changes results.
  bool use_plan_cache = true;
};

/// \brief One match of one pattern: the event chain (length 1 for basic
/// patterns) plus its endpoint entities.
struct PatternMatch {
  std::vector<audit::EventId> events;  ///< Hops, in order.
  audit::EntityId subject = audit::kInvalidEntityId;
  audit::EntityId object = audit::kInvalidEntityId;
  audit::Timestamp start_time = 0;  ///< Start of the first hop.
  audit::Timestamp end_time = 0;    ///< End of the final hop.
};

/// \brief Per-execution measurements, used by the benches.
struct ExecutionStats {
  double total_ms = 0;
  uint64_t relational_rows_touched = 0;
  uint64_t graph_edges_traversed = 0;
  /// Pattern ids in the order the scheduler executed them.
  std::vector<std::string> schedule;
  /// Matches produced per pattern (same order as `schedule`).
  std::vector<size_t> matches_per_pattern;
  /// Static pruning score per executed pattern (same order).
  std::vector<double> pattern_scores;
  /// Backend used per executed pattern: true = graph, false = relational.
  std::vector<bool> pattern_used_graph;
  /// Wall time per pattern execution, ms (same order).
  std::vector<double> per_pattern_ms;
  /// Whether each pattern ran with at least one entity pre-bound by an
  /// earlier pattern's results (constraint propagation in effect).
  std::vector<bool> pattern_was_constrained;
  /// Per-operator counters (same order as `schedule`; rows emitted is
  /// `matches_per_pattern`). Rows examined counts relational rows touched
  /// plus graph edges traversed by the step; bytes price those rows/edges
  /// at the backing store's row width. Like the other per-pattern vectors
  /// these are deterministic at any thread count.
  std::vector<uint64_t> pattern_rows_examined;
  std::vector<uint64_t> pattern_bytes_touched;
  std::vector<uint64_t> pattern_index_probes;
  std::vector<uint64_t> pattern_full_scans;
  /// Estimated rows per executed pattern (same order as `schedule`),
  /// computed before execution from the data statistics with the same
  /// constraint propagation the scheduler applies. Empty when
  /// ExecutionOptions::use_cardinality_estimates is off.
  std::vector<double> pattern_est_rows;
  /// q-error of each estimate against the observed match count:
  /// max(est, actual) / min(est, actual), both floored at 1.
  std::vector<double> pattern_q_error;
  /// Columnar segments whose row data each pattern read, and segments its
  /// probes skipped via zone maps or bloom filters (same order as
  /// `schedule`; zero for graph patterns and row-store executions). Like
  /// the other per-pattern vectors, deterministic at any thread count.
  std::vector<uint64_t> pattern_segments_scanned;
  std::vector<uint64_t> pattern_segments_pruned;
  /// Total bytes touched (sum of pattern_bytes_touched).
  uint64_t bytes_touched = 0;
  /// Bytes of intermediate result sets (pattern matches + projected rows)
  /// this execution held, as charged to the engine memory component.
  uint64_t intermediate_result_bytes = 0;
  /// Why the result was truncated ("deadline of 5 ms exceeded during
  /// pattern 'evt2' (graph search)", "max_graph_edges (1000) reached", "row
  /// cap (1000000) reached", ...); empty when complete.
  std::string truncation_reason;
  /// Thread count this execution resolved to (diagnostic; not part of the
  /// deterministic result contract, like total_ms/per_pattern_ms).
  size_t num_threads = 1;
  /// Scheduling waves that ran more than one pattern concurrently.
  size_t parallel_waves = 0;
  /// Whether this execution reused a cached plan.
  bool plan_cache_hit = false;
  /// Patterns whose matches came out of a shared segment pass (a multi-
  /// pattern wave or an ExecuteBatch scan) rather than a private scan.
  /// Diagnostic: like parallel_waves, this depends on the thread count and
  /// batching, though the matches themselves do not.
  size_t shared_scan_patterns = 0;
};

/// \brief A fully joined query result.
struct QueryResult {
  /// Return-clause column headers ("p1.exename", ...).
  std::vector<std::string> columns;
  /// Projected values, one vector per result row.
  std::vector<std::vector<std::string>> rows;
  /// Entity bindings per row, keyed by TBQL entity id.
  std::vector<std::map<std::string, audit::EntityId>> bindings;
  /// Matched events per row, keyed by pattern id.
  std::vector<std::map<std::string, PatternMatch>> matches;
  ExecutionStats stats;
  /// Stage-level timing breakdown aggregated from this execution's span
  /// tree. Populated whenever a trace covered the execution — always under
  /// ExecutionOptions::collect_profile, and also when an enclosing trace
  /// (a hunt with profiling, or the tracer's HTTP sink) was active.
  obs::Profile profile;
  /// Set when an execution budget (deadline, graph-edge cap, row cap)
  /// stopped execution early: the rows present are valid matches but the
  /// result may be incomplete. stats.truncation_reason says why.
  bool truncated = false;

  /// All distinct event ids across every row and pattern (the audit records
  /// the hunt flags as malicious; benches score these against ground truth).
  std::vector<audit::EventId> MatchedEvents() const;

  /// Tabular rendering of columns + rows.
  std::string ToString() const;
};

/// \brief The execution engine over one loaded trace.
///
/// Owns nothing: the audit log, relational database, and graph store must
/// outlive the engine.
class QueryEngine {
 public:
  QueryEngine(const audit::AuditLog* log, rel::RelationalDatabase* rel_db,
              graph::GraphStore* graph_db);
  ~QueryEngine();

  /// Executes an analyzed TBQL query. The query must have passed
  /// tbql::Analyze (the facade and synthesizer guarantee this).
  Result<QueryResult> Execute(const tbql::Query& query,
                              const ExecutionOptions& options = {}) const;

  /// Executes N analyzed queries as one batch: their unconstrained event
  /// patterns (no entity filters, no shared-entity propagation into them)
  /// are served by a single shared pass over the columnar segments, then
  /// each query completes normally in order. Every returned result is
  /// byte-identical to the corresponding Execute() call.
  std::vector<Result<QueryResult>> ExecuteBatch(
      const std::vector<const tbql::Query*>& queries,
      const ExecutionOptions& options = {}) const;

  /// Pruning score of one pattern (exposed for tests and benches):
  /// one point per declared constraint (attribute filters on both entities,
  /// time window), and for path patterns a penalty growing with the maximum
  /// path length.
  static double PruningScore(const tbql::Pattern& pattern);

  /// The plan cache (exposed for tests and /api/stats).
  const PlanCache& plan_cache() const { return *plan_cache_; }

 private:
  struct PatternExecution;   // defined in engine.cc
  struct PlanPrelude;        // defined in engine.cc
  struct SharedScanResult;   // defined in engine.cc

  /// Everything Execute() decides before running patterns: scores,
  /// estimates, schedule order, case-C classification — from the plan
  /// cache when possible.
  PlanPrelude MakePrelude(const tbql::Query& query,
                          const ExecutionOptions& options) const;

  Result<QueryResult> ExecuteInternal(
      const tbql::Query& query, const ExecutionOptions& options,
      const std::unordered_map<size_t, SharedScanResult>* shared) const;

  const audit::AuditLog* log_;
  rel::RelationalDatabase* rel_;
  graph::GraphStore* graph_;
  /// Mutable: Execute() is logically const; the cache is a memo. Its own
  /// mutex makes concurrent executions safe.
  std::unique_ptr<PlanCache> plan_cache_;
};

}  // namespace raptor::engine
