// Cardinality estimation for TBQL patterns (the predict half of the
// observe→predict→verify loop; ROADMAP item 2's selectivity-fed execution).
//
// The estimator reads the data statistics maintained at load/sync time
// (storage/stats/) and predicts, before execution, how many rows each
// pattern will produce:
//
//   event patterns   sum over the pattern's operations of the exact per-op
//                    event count (optype heavy hitters), scaled by the time
//                    window's equi-depth selectivity and the subject/object
//                    entity-filter selectivities (NDV + heavy hitters +
//                    min/max + LIKE sample; attribute independence assumed)
//   path patterns    estimated source entities × per-hop branching factor
//                    (average out-degree × op-mix fraction) × sink
//                    selectivity, summed over the allowed hop counts
//
// Estimates are a pure function of the statistics, which are frozen during
// query execution (stats advance only on the serial load/sync path), so
// feeding them to the scheduler preserves byte-identical results at any
// thread count.

#pragma once

#include <string>
#include <vector>

#include "storage/graph/graph_store.h"
#include "storage/relational/database.h"
#include "tbql/ast.h"

namespace raptor::engine {

/// q-error of an estimate against the observed row count:
/// max(est, actual) / min(est, actual) with both floored at 1, so a
/// perfect estimate (including 0 predicted, 0 observed) scores 1.0.
double QError(double est_rows, double actual_rows);

/// \brief Pre-execution row estimates over one loaded trace's statistics.
class CardinalityEstimator {
 public:
  /// Both stores must outlive the estimator. The graph store may be null
  /// (estimates for path patterns then fall back to the relational stats).
  CardinalityEstimator(const rel::RelationalDatabase* rel,
                       const graph::GraphStore* graph);

  /// Estimated number of entity-table rows matching `ref`'s filters.
  double EstimateEntityMatches(const tbql::EntityRef& ref) const;

  /// Estimated rows of one pattern executed without constraint
  /// propagation.
  double EstimatePattern(const tbql::Pattern& pattern) const;

  /// Estimates for each executed pattern, in schedule order
  /// (`query.patterns[order[i]]` -> result[i]). With constraint
  /// propagation, a pattern whose entity was bound by an earlier pattern
  /// is scaled down by the earlier pattern's estimated distinct endpoint
  /// count — the estimator's mirror of filter propagation.
  std::vector<double> EstimateSchedule(const tbql::Query& query,
                                       const std::vector<size_t>& order,
                                       bool propagate_constraints) const;

 private:
  /// Core model: estimated rows given absolute candidate-entity counts for
  /// the two endpoints.
  double EstimateWithCandidates(const tbql::Pattern& pattern,
                                double subject_candidates,
                                double object_candidates) const;

  /// Exact-ish count of events whose optype equals `op` (heavy hitters on
  /// the low-cardinality optype column track all operations).
  double EventsWithOp(audit::Operation op) const;

  const rel::RelationalDatabase* rel_;
  const graph::GraphStore* graph_;
};

}  // namespace raptor::engine
