#include "engine/explain.h"

#include <map>

#include "common/strings.h"
#include "tbql/printer.h"

namespace raptor::engine {

std::string_view AccessPathLabel(const ExecutionStats& stats, size_t i) {
  if (i < stats.pattern_used_graph.size() && stats.pattern_used_graph[i]) {
    return "graph";
  }
  // Any consulted segment metadata means the step ran against the columnar
  // event store (probe or shared scan), whatever it then pruned.
  uint64_t segments =
      (i < stats.pattern_segments_scanned.size()
           ? stats.pattern_segments_scanned[i]
           : 0) +
      (i < stats.pattern_segments_pruned.size()
           ? stats.pattern_segments_pruned[i]
           : 0);
  if (segments > 0) return "columnar";
  uint64_t probes =
      i < stats.pattern_index_probes.size() ? stats.pattern_index_probes[i]
                                            : 0;
  uint64_t scans =
      i < stats.pattern_full_scans.size() ? stats.pattern_full_scans[i] : 0;
  if (probes > 0 && scans > 0) return "mixed";
  if (probes > 0) return "index";
  if (scans > 0) return "fullscan";
  return "none";
}

std::string ExplainAnalyze(const tbql::Query& query,
                           const QueryResult& result) {
  std::map<std::string, const tbql::Pattern*> by_id;
  for (const tbql::Pattern& p : query.patterns) by_id[p.id] = &p;

  std::string out = "EXPLAIN ANALYZE\n";
  const ExecutionStats& stats = result.stats;
  for (size_t i = 0; i < stats.schedule.size(); ++i) {
    const std::string& id = stats.schedule[i];
    auto it = by_id.find(id);
    const tbql::Pattern* p = it == by_id.end() ? nullptr : it->second;

    out += StrFormat("  step %zu: %-6s", i + 1, id.c_str());
    if (p != nullptr) {
      out += StrFormat("  %s %s %s", tbql::PrintEntity(p->subject).c_str(),
                       p->is_path
                           ? StrFormat("~>(%zu~%zu)[%s]", p->min_hops,
                                       p->max_hops,
                                       Join(p->op.names, "||").c_str())
                                 .c_str()
                           : Join(p->op.names, "||").c_str(),
                       tbql::PrintEntity(p->object).c_str());
    }
    out += "\n";
    bool graph_backend =
        i < stats.pattern_used_graph.size() && stats.pattern_used_graph[i];
    double score =
        i < stats.pattern_scores.size() ? stats.pattern_scores[i] : 0;
    bool constrained = i < stats.pattern_was_constrained.size() &&
                       stats.pattern_was_constrained[i];
    size_t matches =
        i < stats.matches_per_pattern.size() ? stats.matches_per_pattern[i]
                                             : 0;
    double ms = i < stats.per_pattern_ms.size() ? stats.per_pattern_ms[i] : 0;
    out += StrFormat(
        "          backend=%s score=%.1f %s matches=%zu time=%.3fms\n",
        graph_backend ? "graph (Cypher-equivalent)"
                      : "relational (SQL-equivalent)",
        score,
        constrained ? "constrained-by-propagation" : "unconstrained",
        matches, ms);
    uint64_t examined = i < stats.pattern_rows_examined.size()
                            ? stats.pattern_rows_examined[i]
                            : 0;
    uint64_t bytes = i < stats.pattern_bytes_touched.size()
                         ? stats.pattern_bytes_touched[i]
                         : 0;
    uint64_t probes = i < stats.pattern_index_probes.size()
                          ? stats.pattern_index_probes[i]
                          : 0;
    uint64_t scans =
        i < stats.pattern_full_scans.size() ? stats.pattern_full_scans[i] : 0;
    double selectivity =
        examined == 0 ? 0.0
                      : static_cast<double>(matches) /
                            static_cast<double>(examined);
    out += StrFormat(
        "          access=%s rows_examined=%llu rows_emitted=%zu "
        "selectivity=%.4f bytes=%llu index_probes=%llu full_scans=%llu\n",
        std::string(AccessPathLabel(stats, i)).c_str(),
        static_cast<unsigned long long>(examined), matches, selectivity,
        static_cast<unsigned long long>(bytes),
        static_cast<unsigned long long>(probes),
        static_cast<unsigned long long>(scans));
    uint64_t segs_scanned = i < stats.pattern_segments_scanned.size()
                                ? stats.pattern_segments_scanned[i]
                                : 0;
    uint64_t segs_pruned = i < stats.pattern_segments_pruned.size()
                               ? stats.pattern_segments_pruned[i]
                               : 0;
    if (segs_scanned + segs_pruned > 0) {
      out += StrFormat(
          "          segments_scanned=%llu segments_pruned=%llu\n",
          static_cast<unsigned long long>(segs_scanned),
          static_cast<unsigned long long>(segs_pruned));
    }
    // Timing-free by design: like every other per-pattern line except the
    // time= field, it is byte-identical at any thread count.
    if (i < stats.pattern_est_rows.size() && i < stats.pattern_q_error.size()) {
      out += StrFormat("          est_rows=%.1f actual_rows=%zu q_error=%.2f\n",
                       stats.pattern_est_rows[i], matches,
                       stats.pattern_q_error[i]);
    }
  }
  out += StrFormat(
      "  join: %zu result rows; %zu temporal + %zu attribute constraints\n",
      result.rows.size(), query.temporal.size(),
      query.attr_relationships.size());
  out += StrFormat("  plan: cache=%s shared_scan_patterns=%zu\n",
                   stats.plan_cache_hit ? "hit" : "miss",
                   stats.shared_scan_patterns);
  out += StrFormat(
      "  totals: %.3f ms, %llu relational rows touched, %llu graph edges "
      "traversed, %llu bytes touched, %llu intermediate bytes\n",
      stats.total_ms,
      static_cast<unsigned long long>(stats.relational_rows_touched),
      static_cast<unsigned long long>(stats.graph_edges_traversed),
      static_cast<unsigned long long>(stats.bytes_touched),
      static_cast<unsigned long long>(stats.intermediate_result_bytes));
  if (result.truncated) {
    out += StrFormat("  truncated: %s\n", stats.truncation_reason.c_str());
  }
  if (!result.profile.empty()) {
    out += StrFormat("  profile: %.3f ms total\n", result.profile.total_ms);
    for (const obs::StageStat& s : result.profile.stages) {
      out += StrFormat("    %-24s %8.3f ms  (x%zu)\n", s.stage.c_str(), s.ms,
                       s.count);
    }
  }
  return out;
}

}  // namespace raptor::engine
