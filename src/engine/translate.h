// Backend query rendering: the SQL and Cypher text a TBQL query compiles
// to (paper §II-F). The engine executes the equivalent plans natively; the
// rendered text is what a human would otherwise have to write by hand, and
// is what the conciseness comparison (bench_conciseness, E3 in DESIGN.md)
// measures TBQL against.

#pragma once

#include <string>

#include "tbql/ast.h"

namespace raptor::engine {

/// Renders the SQL a basic event pattern compiles to: the entity tables
/// joined with the event table, with all filters as WHERE conjuncts. For a
/// whole query, renders one joined SELECT across all patterns including the
/// shared-entity equalities and the temporal order conditions.
std::string RenderSql(const tbql::Query& query);

/// Renders the equivalent Cypher: one MATCH per pattern (path patterns use
/// Cypher's variable-length relationship syntax), WHERE filters, RETURN.
std::string RenderCypher(const tbql::Query& query);

}  // namespace raptor::engine
