#include "engine/estimator.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace raptor::engine {

namespace {

// Row estimates are capped well below overflow so downstream arithmetic
// (q-error, JSON rendering) stays finite.
constexpr double kMaxEstimate = 1e15;

rel::Value FilterLiteral(const tbql::AttrFilter& f) {
  if (f.is_string) return rel::Value(f.string_value);
  return rel::Value(f.int_value);
}

/// Selectivity of one attribute filter against the column's statistics.
double FilterSelectivity(const stats::ColumnStatistics& col, uint64_t rows,
                         const tbql::AttrFilter& f) {
  const rel::Value literal = FilterLiteral(f);
  switch (f.op) {
    case rel::CompareOp::kEq:
      return col.EqualitySelectivity(literal, rows);
    case rel::CompareOp::kNe:
      return 1.0 - col.EqualitySelectivity(literal, rows);
    case rel::CompareOp::kLt:
      if (!f.is_string) return col.RangeSelectivity(std::nullopt, f.int_value - 1);
      return 1.0 / 3.0;
    case rel::CompareOp::kLe:
      if (!f.is_string) return col.RangeSelectivity(std::nullopt, f.int_value);
      return 1.0 / 3.0;
    case rel::CompareOp::kGt:
      if (!f.is_string) return col.RangeSelectivity(f.int_value + 1, std::nullopt);
      return 1.0 / 3.0;
    case rel::CompareOp::kGe:
      if (!f.is_string) return col.RangeSelectivity(f.int_value, std::nullopt);
      return 1.0 / 3.0;
    case rel::CompareOp::kLike:
      return col.LikeSelectivity(f.is_string ? f.string_value
                                             : literal.ToString());
    case rel::CompareOp::kNotLike:
      return 1.0 - col.LikeSelectivity(f.is_string ? f.string_value
                                                   : literal.ToString());
  }
  return 1.0;
}

double Clamp01(double x) { return std::min(1.0, std::max(0.0, x)); }

/// Fraction of all events whose operation is in `ops`.
double OpMixFraction(const stats::TableStatistics& events,
                     const std::vector<audit::Operation>& ops) {
  const uint64_t rows = events.RowCount();
  if (rows == 0 || ops.empty()) return 0.0;
  const stats::ColumnStatistics* optype = events.Column("optype");
  if (optype == nullptr) return 1.0;
  double total = 0;
  for (audit::Operation op : ops) {
    total += optype->EqualitySelectivity(
        rel::Value(static_cast<int64_t>(op)), rows);
  }
  return Clamp01(total);
}

}  // namespace

double QError(double est_rows, double actual_rows) {
  double e = std::max(1.0, est_rows);
  double a = std::max(1.0, actual_rows);
  return std::max(e, a) / std::min(e, a);
}

CardinalityEstimator::CardinalityEstimator(const rel::RelationalDatabase* rel,
                                           const graph::GraphStore* graph)
    : rel_(rel), graph_(graph) {}

double CardinalityEstimator::EstimateEntityMatches(
    const tbql::EntityRef& ref) const {
  const stats::TableStatistics& table = rel_->EntityStatistics(ref.type);
  const uint64_t rows = table.RowCount();
  if (rows == 0) return 0.0;
  double sel = 1.0;
  for (const tbql::AttrFilter& f : ref.filters) {
    const stats::ColumnStatistics* col = table.Column(f.attr);
    if (col == nullptr) continue;  // analyzer validated attribute names
    sel *= Clamp01(FilterSelectivity(*col, rows, f));
  }
  return static_cast<double>(rows) * Clamp01(sel);
}

double CardinalityEstimator::EventsWithOp(audit::Operation op) const {
  const stats::TableStatistics& events = rel_->events_statistics();
  const uint64_t rows = events.RowCount();
  if (rows == 0) return 0.0;
  const stats::ColumnStatistics* optype = events.Column("optype");
  if (optype == nullptr) return static_cast<double>(rows);
  return optype->EqualitySelectivity(rel::Value(static_cast<int64_t>(op)),
                                     rows) *
         static_cast<double>(rows);
}

double CardinalityEstimator::EstimateWithCandidates(
    const tbql::Pattern& pattern, double subject_candidates,
    double object_candidates) const {
  const stats::TableStatistics& events = rel_->events_statistics();
  if (events.RowCount() == 0) return 0.0;

  const double subj_rows = static_cast<double>(
      rel_->EntityStatistics(pattern.subject.type).RowCount());
  const double obj_rows = static_cast<double>(
      rel_->EntityStatistics(pattern.object.type).RowCount());
  const double subj_frac =
      subj_rows == 0 ? 0.0 : Clamp01(subject_candidates / subj_rows);
  const double obj_frac =
      obj_rows == 0 ? 0.0 : Clamp01(object_candidates / obj_rows);

  // Time-window selectivity from the starttime equi-depth histogram (the
  // engine's window predicates are on starttime).
  double window_sel = 1.0;
  if (pattern.window_start || pattern.window_end) {
    const stats::ColumnStatistics* start = events.Column("starttime");
    if (start != nullptr) {
      window_sel = start->RangeSelectivity(pattern.window_start,
                                           pattern.window_end);
    }
  }

  if (!pattern.is_path) {
    // Per-op exact counts scaled by the endpoint fractions. An operation
    // whose object type disagrees with the declared object entity cannot
    // match (the subject of any event is a process by the audit model).
    double est = 0;
    for (audit::Operation op : pattern.op.ops) {
      if (audit::ObjectTypeOf(op) != pattern.object.type) continue;
      est += EventsWithOp(op) * obj_frac;
    }
    est *= window_sel * subj_frac;
    return std::min(est, kMaxEstimate);
  }

  // Path pattern: sources × per-hop branching × sink selectivity, summed
  // over the allowed hop counts. Branching = average out-degree of process
  // nodes × the fraction of events usable as that kind of hop.
  double avg_out = 1.0;
  if (graph_ != nullptr) {
    avg_out = graph_->OutDegreeStatistics(audit::EntityType::kProcess)
                  .AvgDegree();
  } else if (subj_rows > 0) {
    avg_out = static_cast<double>(events.RowCount()) / subj_rows;
  }
  // Intermediate hops chain processes (fork/start/execute, the engine's
  // default intermediate-op set); the final hop uses the pattern's ops.
  const double intermediate_frac =
      OpMixFraction(events, {audit::Operation::kFork, audit::Operation::kStart,
                             audit::Operation::kExecute});
  const double final_frac = OpMixFraction(events, pattern.op.ops);
  const double branch_intermediate =
      std::max(0.0, avg_out * intermediate_frac);
  const double branch_final = std::max(0.0, avg_out * final_frac);

  double est = 0;
  const size_t max_hops = std::min<size_t>(pattern.max_hops, 32);
  for (size_t hops = std::max<size_t>(pattern.min_hops, 1); hops <= max_hops;
       ++hops) {
    double paths = subject_candidates * branch_final;
    for (size_t h = 1; h < hops; ++h) paths *= branch_intermediate;
    est += std::min(paths, kMaxEstimate);
    if (est >= kMaxEstimate) break;
  }
  est *= obj_frac * window_sel;
  return std::min(est, kMaxEstimate);
}

double CardinalityEstimator::EstimatePattern(
    const tbql::Pattern& pattern) const {
  return EstimateWithCandidates(pattern,
                                EstimateEntityMatches(pattern.subject),
                                EstimateEntityMatches(pattern.object));
}

std::vector<double> CardinalityEstimator::EstimateSchedule(
    const tbql::Query& query, const std::vector<size_t>& order,
    bool propagate_constraints) const {
  std::vector<double> out;
  out.reserve(order.size());
  // Entity id -> estimated distinct entities bound by earlier patterns.
  std::unordered_map<std::string, double> bound;
  for (size_t idx : order) {
    const tbql::Pattern& p = query.patterns[idx];
    double subj = EstimateEntityMatches(p.subject);
    double obj = EstimateEntityMatches(p.object);
    if (propagate_constraints) {
      auto s_it = bound.find(p.subject.id);
      if (s_it != bound.end()) subj = std::min(subj, s_it->second);
      auto o_it = bound.find(p.object.id);
      if (o_it != bound.end()) obj = std::min(obj, o_it->second);
    }
    const double est = EstimateWithCandidates(p, subj, obj);
    out.push_back(est);
    if (propagate_constraints) {
      // A pattern cannot bind more distinct endpoints than it has matches
      // or candidates — the estimator's mirror of filter propagation.
      bound[p.subject.id] = std::min(subj, std::max(est, 1.0));
      bound[p.object.id] = std::min(obj, std::max(est, 1.0));
    }
  }
  return out;
}

}  // namespace raptor::engine
