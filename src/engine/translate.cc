#include "engine/translate.h"

#include "common/strings.h"

namespace raptor::engine {

namespace {

const char* EntityTableName(audit::EntityType type) {
  switch (type) {
    case audit::EntityType::kFile:
      return "files";
    case audit::EntityType::kProcess:
      return "procs";
    case audit::EntityType::kNetwork:
      return "nets";
  }
  return "?";
}

std::string SqlLiteral(const tbql::AttrFilter& f) {
  if (f.is_string) return "'" + f.string_value + "'";
  return std::to_string(f.int_value);
}

std::string SqlOp(rel::CompareOp op) {
  switch (op) {
    case rel::CompareOp::kLike:
      return "LIKE";
    case rel::CompareOp::kNotLike:
      return "NOT LIKE";
    case rel::CompareOp::kNe:
      return "<>";
    default:
      return std::string(rel::CompareOpName(op));
  }
}

std::string OpList(const tbql::OpExpr& op) {
  std::vector<std::string> quoted;
  for (const std::string& name : op.names) quoted.push_back("'" + name + "'");
  return Join(quoted, ", ");
}

}  // namespace

std::string RenderSql(const tbql::Query& query) {
  std::string sql = "SELECT ";
  {
    std::vector<std::string> cols;
    for (const tbql::ReturnItem& r : query.returns) {
      cols.push_back(r.entity_id + "." + r.attr);
    }
    sql += Join(cols, ", ") + "\n";
  }

  // FROM: one event-table alias per pattern, one entity-table alias per
  // distinct entity id.
  std::vector<std::string> from;
  std::vector<std::string> where;
  std::vector<std::string> seen_entities;
  auto add_entity = [&](const tbql::EntityRef& e) {
    for (const std::string& s : seen_entities) {
      if (s == e.id) return;
    }
    seen_entities.push_back(e.id);
    from.push_back(StrFormat("%s AS %s", EntityTableName(e.type),
                             e.id.c_str()));
    for (const tbql::AttrFilter& f : e.filters) {
      where.push_back(StrFormat("%s.%s %s %s", e.id.c_str(), f.attr.c_str(),
                                SqlOp(f.op).c_str(), SqlLiteral(f).c_str()));
    }
  };

  for (const tbql::Pattern& p : query.patterns) {
    from.push_back("events AS " + p.id);
    add_entity(p.subject);
    add_entity(p.object);
    where.push_back(
        StrFormat("%s.subject = %s.id", p.id.c_str(), p.subject.id.c_str()));
    where.push_back(
        StrFormat("%s.object = %s.id", p.id.c_str(), p.object.id.c_str()));
    if (p.op.names.size() == 1) {
      where.push_back(
          StrFormat("%s.optype = '%s'", p.id.c_str(), p.op.names[0].c_str()));
    } else {
      where.push_back(
          StrFormat("%s.optype IN (%s)", p.id.c_str(), OpList(p.op).c_str()));
    }
    if (p.window_start) {
      where.push_back(StrFormat("%s.starttime >= %lld", p.id.c_str(),
                                static_cast<long long>(*p.window_start)));
    }
    if (p.window_end) {
      where.push_back(StrFormat("%s.starttime <= %lld", p.id.c_str(),
                                static_cast<long long>(*p.window_end)));
    }
    if (p.is_path) {
      // SQL cannot express variable-length paths directly; a recursive CTE
      // per path pattern would be required. Rendered as a comment to keep
      // the output executable-looking (and to be fair in the conciseness
      // comparison this counts characters the human must still write).
      where.push_back(StrFormat(
          "/* %s requires a WITH RECURSIVE CTE over events (hops %zu..%zu) */",
          p.id.c_str(), p.min_hops, p.max_hops));
    }
  }
  for (const tbql::TemporalConstraint& tc : query.temporal) {
    where.push_back(StrFormat("%s.starttime < %s.starttime", tc.first.c_str(),
                              tc.second.c_str()));
  }
  for (const tbql::AttrRelationship& rel : query.attr_relationships) {
    where.push_back(StrFormat(
        "%s.%s = %s.%s", rel.first_pattern.c_str(),
        rel.first_is_subject ? "subject" : "object",
        rel.second_pattern.c_str(),
        rel.second_is_subject ? "subject" : "object"));
  }

  sql += "FROM " + Join(from, ",\n     ") + "\n";
  sql += "WHERE " + Join(where, "\n  AND ") + ";";
  return sql;
}

std::string RenderCypher(const tbql::Query& query) {
  std::string cy;
  std::vector<std::string> where;
  std::vector<std::string> declared;
  auto entity_node = [&](const tbql::EntityRef& e) {
    bool first_use = true;
    for (const std::string& s : declared) {
      if (s == e.id) first_use = false;
    }
    std::string label;
    switch (e.type) {
      case audit::EntityType::kFile:
        label = "File";
        break;
      case audit::EntityType::kProcess:
        label = "Process";
        break;
      case audit::EntityType::kNetwork:
        label = "Connection";
        break;
    }
    if (!first_use) return "(" + e.id + ")";
    declared.push_back(e.id);
    for (const tbql::AttrFilter& f : e.filters) {
      std::string lit = f.is_string ? "'" + f.string_value + "'"
                                    : std::to_string(f.int_value);
      if (f.op == rel::CompareOp::kLike) {
        std::string regex = ReplaceAll(f.string_value, "%", ".*");
        where.push_back(
            StrFormat("%s.%s =~ '%s'", e.id.c_str(), f.attr.c_str(),
                      regex.c_str()));
      } else {
        where.push_back(StrFormat("%s.%s %s %s", e.id.c_str(), f.attr.c_str(),
                                  SqlOp(f.op).c_str(), lit.c_str()));
      }
    }
    return "(" + e.id + ":" + label + ")";
  };

  for (const tbql::Pattern& p : query.patterns) {
    std::string subj = entity_node(p.subject);
    std::string obj = entity_node(p.object);
    std::string reltypes;
    for (size_t i = 0; i < p.op.names.size(); ++i) {
      if (i > 0) reltypes += "|";
      reltypes += ToLower(p.op.names[i]);
    }
    if (p.is_path) {
      cy += StrFormat("MATCH %s-[:EVENT*%zu..%zu]->%s\n", subj.c_str(),
                      p.min_hops, p.max_hops, obj.c_str());
      where.push_back(StrFormat(
          "last(relationships(%s_path)).optype IN ['%s']", p.id.c_str(),
          Join(p.op.names, "', '").c_str()));
    } else {
      cy += StrFormat("MATCH %s-[%s:EVENT {optype: '%s'}]->%s\n", subj.c_str(),
                      p.id.c_str(), reltypes.c_str(), obj.c_str());
    }
    if (p.window_start) {
      where.push_back(StrFormat("%s.starttime >= %lld", p.id.c_str(),
                                static_cast<long long>(*p.window_start)));
    }
    if (p.window_end) {
      where.push_back(StrFormat("%s.starttime <= %lld", p.id.c_str(),
                                static_cast<long long>(*p.window_end)));
    }
  }
  for (const tbql::TemporalConstraint& tc : query.temporal) {
    where.push_back(StrFormat("%s.starttime < %s.starttime", tc.first.c_str(),
                              tc.second.c_str()));
  }
  for (const tbql::AttrRelationship& rel : query.attr_relationships) {
    where.push_back(StrFormat(
        "id(%sNode(%s)) = id(%sNode(%s))",
        rel.first_is_subject ? "start" : "end", rel.first_pattern.c_str(),
        rel.second_is_subject ? "start" : "end", rel.second_pattern.c_str()));
  }
  if (!where.empty()) {
    cy += "WHERE " + Join(where, "\n  AND ") + "\n";
  }
  std::vector<std::string> rets;
  for (const tbql::ReturnItem& r : query.returns) {
    rets.push_back(r.entity_id + "." + r.attr);
  }
  cy += "RETURN " + Join(rets, ", ") + ";";
  return cy;
}

}  // namespace raptor::engine
