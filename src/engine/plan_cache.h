// Bounded LRU cache of analyzed-TBQL execution plans.
//
// A plan records every pre-execution decision Execute() makes that is a
// pure function of (query text, plan-affecting options, data generation):
// the schedule order, the pruning scores, the cardinality estimates, and
// the columnar access paths (the zone-map-pruned segment list per
// unconstrained pattern). Thread count is deliberately NOT part of the key
// — the determinism contract says those decisions are identical at any
// thread count, so a plan built at 1 thread serves an 8-thread execution.
//
// Entries are tagged with the RelationalDatabase generation they were built
// against; SyncWith() bumps the generation, so the first lookup after new
// data lands evicts the stale entry and misses (counted as both an eviction
// and a miss in the raptor_plan_cache_* metrics).

#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace raptor::engine {

/// \brief One cached plan. Immutable after insertion (shared_ptr lets
/// executions keep reading an entry the cache has since evicted).
struct CachedPlan {
  uint64_t generation = 0;  ///< Data version the plan was built against.
  /// Pattern execution order (indexes into Query::patterns).
  std::vector<size_t> order;
  /// Static pruning score per pattern (indexed by pattern, not schedule).
  std::vector<double> scores;
  /// Unconstrained cardinality estimate per pattern; empty when estimates
  /// were disabled.
  std::vector<double> est_unconstrained;
  /// Binding-aware estimate per pattern (the EstimateSchedule mirror);
  /// empty when estimates were disabled.
  std::vector<double> est_by_pattern;
  /// Chosen columnar access path per pattern: the zone-map-pruned segment
  /// list of each pattern that ran an unconstrained operation scan. Absent
  /// entries mean the pattern used a different access path (entity probe,
  /// graph search) or was never reached.
  std::unordered_map<size_t, std::vector<uint32_t>> scan_segments;
};

/// \brief Bounded, thread-safe LRU keyed by plan fingerprint
/// (tbql::Print(query) + plan-affecting option flags).
class PlanCache {
 public:
  static constexpr size_t kDefaultCapacity = 128;

  explicit PlanCache(size_t capacity = kDefaultCapacity);

  /// Returns the entry for `key` if present and built at `generation`;
  /// counts a hit. A stale-generation entry is evicted and counts a miss
  /// plus an eviction; a absent key counts a miss.
  std::shared_ptr<const CachedPlan> Lookup(const std::string& key,
                                           uint64_t generation);

  /// Inserts (or replaces) the entry for `key`, evicting the least recently
  /// used entry beyond capacity.
  void Insert(const std::string& key, std::shared_ptr<const CachedPlan> plan);

  size_t size() const;
  size_t capacity() const { return capacity_; }

  /// Lifetime counters (mirrored into the metrics registry as
  /// raptor_plan_cache_{hits,misses,evictions}_total).
  uint64_t hits() const;
  uint64_t misses() const;
  uint64_t evictions() const;

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const CachedPlan> plan;
  };

  void EvictLocked(std::list<Entry>::iterator it);

  const size_t capacity_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  ///< Front = most recently used.
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace raptor::engine
