#include "engine/plan_cache.h"

#include "obs/metrics.h"

namespace raptor::engine {

namespace {

obs::Counter* HitCounter() {
  static obs::Counter* c = obs::Registry::Default().GetCounter(
      "raptor_plan_cache_hits_total",
      "Query executions that reused a cached plan");
  return c;
}

obs::Counter* MissCounter() {
  static obs::Counter* c = obs::Registry::Default().GetCounter(
      "raptor_plan_cache_misses_total",
      "Query executions that built a fresh plan");
  return c;
}

obs::Counter* EvictionCounter() {
  static obs::Counter* c = obs::Registry::Default().GetCounter(
      "raptor_plan_cache_evictions_total",
      "Cached plans dropped (LRU capacity or stale data generation)");
  return c;
}

}  // namespace

PlanCache::PlanCache(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

std::shared_ptr<const CachedPlan> PlanCache::Lookup(const std::string& key,
                                                    uint64_t generation) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    MissCounter()->Increment();
    return nullptr;
  }
  if (it->second->plan->generation != generation) {
    // SyncWith() has landed new data since this plan was built.
    EvictLocked(it->second);
    ++misses_;
    MissCounter()->Increment();
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++hits_;
  HitCounter()->Increment();
  return it->second->plan;
}

void PlanCache::Insert(const std::string& key,
                       std::shared_ptr<const CachedPlan> plan) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->plan = std::move(plan);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{key, std::move(plan)});
  index_[key] = lru_.begin();
  while (lru_.size() > capacity_) {
    EvictLocked(std::prev(lru_.end()));
  }
}

void PlanCache::EvictLocked(std::list<Entry>::iterator it) {
  ++evictions_;
  EvictionCounter()->Increment();
  index_.erase(it->key);
  lru_.erase(it);
}

size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

uint64_t PlanCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

uint64_t PlanCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

uint64_t PlanCache::evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}

}  // namespace raptor::engine
