#include "engine/engine.h"

#include <algorithm>
#include <chrono>
#include <functional>

#include "common/fault_injection.h"
#include "common/strings.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace raptor::engine {

using audit::EntityId;
using audit::EntityType;
using audit::EventId;
using audit::Operation;
using audit::SystemEntity;
using audit::SystemEvent;

namespace {

using Binding = std::unordered_set<EntityId>;

rel::Value FilterValue(const tbql::AttrFilter& f) {
  if (f.is_string) return rel::Value(f.string_value);
  return rel::Value(f.int_value);
}

/// Applies a comparison between two values (the filter language outside a
/// table context, used for graph sink predicates).
bool CompareValues(const rel::Value& cell, rel::CompareOp op,
                   const rel::Value& rhs) {
  switch (op) {
    case rel::CompareOp::kEq:
      return cell == rhs;
    case rel::CompareOp::kNe:
      return cell != rhs;
    case rel::CompareOp::kLt:
      return cell < rhs;
    case rel::CompareOp::kLe:
      return cell <= rhs;
    case rel::CompareOp::kGt:
      return cell > rhs;
    case rel::CompareOp::kGe:
      return cell >= rhs;
    case rel::CompareOp::kLike:
      return cell.is_string() && rhs.is_string() &&
             LikeMatch(cell.AsString(), rhs.AsString());
    case rel::CompareOp::kNotLike:
      return !(cell.is_string() && rhs.is_string() &&
               LikeMatch(cell.AsString(), rhs.AsString()));
  }
  return false;
}

/// Attribute accessor on an audit entity (graph-side filter evaluation and
/// result projection).
rel::Value EntityAttrValue(const SystemEntity& e, const std::string& attr) {
  if (attr == "id") return rel::Value(static_cast<int64_t>(e.id));
  switch (e.type) {
    case EntityType::kFile:
      if (attr == "name") return rel::Value(e.path);
      break;
    case EntityType::kProcess:
      if (attr == "exename") return rel::Value(e.exename);
      if (attr == "pid") return rel::Value(static_cast<int64_t>(e.pid));
      break;
    case EntityType::kNetwork:
      if (attr == "srcip") return rel::Value(e.src_ip);
      if (attr == "srcport") return rel::Value(static_cast<int64_t>(e.src_port));
      if (attr == "dstip") return rel::Value(e.dst_ip);
      if (attr == "dstport") return rel::Value(static_cast<int64_t>(e.dst_port));
      if (attr == "protocol") return rel::Value(e.protocol);
      break;
  }
  return rel::Value(std::string());
}

bool EntityMatchesFilters(const SystemEntity& e,
                          const std::vector<tbql::AttrFilter>& filters) {
  for (const tbql::AttrFilter& f : filters) {
    if (!CompareValues(EntityAttrValue(e, f.attr), f.op, FilterValue(f))) {
      return false;
    }
  }
  return true;
}

}  // namespace

double QueryEngine::PruningScore(const tbql::Pattern& pattern) {
  double score = static_cast<double>(pattern.subject.filters.size() +
                                     pattern.object.filters.size());
  if (pattern.window_start && pattern.window_end) score += 1.0;
  if (pattern.op.ops.size() == 1) score += 0.5;  // narrower operation
  if (pattern.is_path) {
    // Longer maximum paths are more expensive to search; derate them.
    score -= static_cast<double>(pattern.max_hops);
  }
  return score;
}

struct QueryEngine::PatternExecution {
  const tbql::Pattern* pattern = nullptr;
  std::vector<PatternMatch> matches;
};

Result<QueryResult> QueryEngine::Execute(const tbql::Query& query,
                                         const ExecutionOptions& options) const {
  RAPTOR_RETURN_NOT_OK(TriggerFaultPoint("engine.execute"));
  static obs::Counter* queries_total = obs::Registry::Default().GetCounter(
      "raptor_queries_total", "TBQL query executions started");
  static obs::Histogram* query_ms = obs::Registry::Default().GetHistogram(
      "raptor_query_ms", "Wall time of one query execution (ms)");
  queries_total->Increment();

  obs::Tracer& tracer = obs::Tracer::Default();
  // Top-level when called directly; a subtree span when a hunt (or the
  // HTTP request trace) is already recording on this thread.
  obs::TraceScope trace_scope =
      tracer.BeginTrace("execute", options.collect_profile);

  auto t0 = std::chrono::steady_clock::now();
  rel_->ResetStats();
  graph_->ResetStats();

  QueryResult result;

  // Execution budgets. The first budget to trip records its reason and
  // flips `truncated`; everything already computed stays in the result.
  std::chrono::steady_clock::time_point deadline{};
  if (options.deadline_ms > 0) {
    deadline = t0 + std::chrono::milliseconds(options.deadline_ms);
  }
  auto deadline_exceeded = [&deadline] {
    return deadline != std::chrono::steady_clock::time_point{} &&
           std::chrono::steady_clock::now() > deadline;
  };
  // `code` labels the truncation counter ("deadline", "max_graph_edges",
  // "row_cap"); `reason` is the human-readable stats string.
  auto truncate = [&result, &trace_scope](std::string_view code,
                                          std::string reason) {
    if (!result.truncated) {
      result.truncated = true;
      result.stats.truncation_reason = std::move(reason);
      obs::Registry::Default()
          .GetCounter("raptor_query_truncations_total",
                      "Query executions stopped early by a budget, by cause",
                      {{"reason", std::string(code)}})
          ->Increment();
      trace_scope.root().Annotate("truncated: " +
                                  result.stats.truncation_reason);
      obs::Logger::Default()
          .Log(obs::LogLevel::kWarn, "engine", "query truncated")
          .Field("reason", code)
          .Field("detail", result.stats.truncation_reason);
    }
  };
  if (query.return_count) {
    result.columns.push_back("count");
  } else {
    for (const tbql::ReturnItem& item : query.returns) {
      result.columns.push_back(item.entity_id + "." + item.attr);
    }
  }
  size_t row_cap = options.max_rows;
  if (query.limit) row_cap = std::min(row_cap, *query.limit);

  // --- Candidate-id computation against the relational backend. ---
  // The analyzer unifies filters per entity id, so the filter-selection
  // result is execution-invariant per entity and is cached: an entity used
  // by several patterns (the shared-identity sugar) costs one entity-table
  // select, not one per pattern.
  std::unordered_map<std::string, Binding> bindings;
  std::unordered_map<std::string, std::vector<EntityId>> filter_cache;
  auto candidate_ids =
      [&](const tbql::EntityRef& e) -> std::optional<std::vector<EntityId>> {
    auto bound_it = bindings.find(e.id);
    const Binding* bound =
        bound_it == bindings.end() ? nullptr : &bound_it->second;
    if (e.filters.empty() && bound == nullptr) return std::nullopt;

    std::vector<EntityId> ids;
    if (!e.filters.empty()) {
      auto cached = filter_cache.find(e.id);
      if (cached == filter_cache.end()) {
        rel::Table& table = rel_->EntityTable(e.type);
        rel::Conjunction preds;
        for (const tbql::AttrFilter& f : e.filters) {
          rel::ColumnId col = table.schema().Find(f.attr);
          if (col == rel::kInvalidColumn) continue;  // analyzer validated
          preds.push_back(rel::Predicate{col, f.op, FilterValue(f)});
        }
        rel::ColumnId id_col = table.schema().Find("id");
        std::vector<EntityId> selected;
        for (rel::RowId row : table.Select(preds)) {
          selected.push_back(
              static_cast<EntityId>(table.row(row)[id_col].AsInt()));
        }
        cached = filter_cache.emplace(e.id, std::move(selected)).first;
      }
      for (EntityId id : cached->second) {
        if (bound == nullptr || bound->count(id) > 0) ids.push_back(id);
      }
    } else {
      ids.assign(bound->begin(), bound->end());
      std::sort(ids.begin(), ids.end());
    }
    return ids;
  };

  // --- Per-pattern execution. ---
  auto execute_event_pattern =
      [&](const tbql::Pattern& p) -> std::vector<PatternMatch> {
    std::vector<PatternMatch> matches;
    auto subj_ids = candidate_ids(p.subject);
    auto obj_ids = candidate_ids(p.object);

    std::unordered_set<EntityId> subj_set, obj_set;
    if (subj_ids) subj_set.insert(subj_ids->begin(), subj_ids->end());
    if (obj_ids) obj_set.insert(obj_ids->begin(), obj_ids->end());
    std::unordered_set<int64_t> op_set;
    for (Operation op : p.op.ops) op_set.insert(static_cast<int64_t>(op));

    rel::Table& events = rel_->events();
    const rel::Schema& schema = events.schema();
    rel::ColumnId c_subject = schema.Find("subject");
    rel::ColumnId c_object = schema.Find("object");
    rel::ColumnId c_optype = schema.Find("optype");
    rel::ColumnId c_start = schema.Find("starttime");
    rel::ColumnId c_end = schema.Find("endtime");
    rel::ColumnId c_id = schema.Find("id");

    rel::Conjunction base;
    if (p.window_start) {
      base.push_back(
          rel::Predicate{c_start, rel::CompareOp::kGe, *p.window_start});
    }
    if (p.window_end) {
      base.push_back(
          rel::Predicate{c_start, rel::CompareOp::kLe, *p.window_end});
    }

    auto emit_row = [&](rel::RowId row) {
      const rel::Row& r = events.row(row);
      if (op_set.count(r[c_optype].AsInt()) == 0) return;
      auto subj = static_cast<EntityId>(r[c_subject].AsInt());
      auto obj = static_cast<EntityId>(r[c_object].AsInt());
      if (subj_ids && subj_set.count(subj) == 0) return;
      if (obj_ids && obj_set.count(obj) == 0) return;
      PatternMatch m;
      m.events.push_back(static_cast<EventId>(r[c_id].AsInt()));
      m.subject = subj;
      m.object = obj;
      m.start_time = r[c_start].AsInt();
      m.end_time = r[c_end].AsInt();
      matches.push_back(std::move(m));
    };

    // Probe the event table on the narrower entity side; fall back to an
    // operation-type index probe when neither side constrains. The deadline
    // is polled between index probes, so a truncated scan still returns the
    // matches emitted so far.
    auto scan_deadline_hit = [&] {
      if (!deadline_exceeded()) return false;
      truncate("deadline",
               StrFormat("deadline of %llu ms exceeded during pattern '%s' "
                         "(relational scan)",
                         static_cast<unsigned long long>(options.deadline_ms),
                         p.id.c_str()));
      return true;
    };
    bool probe_subject =
        subj_ids && (!obj_ids || subj_ids->size() <= obj_ids->size());
    if (probe_subject) {
      for (EntityId id : *subj_ids) {
        if (scan_deadline_hit()) break;
        rel::Conjunction preds = base;
        preds.push_back(rel::Predicate{c_subject, rel::CompareOp::kEq,
                                       static_cast<int64_t>(id)});
        for (rel::RowId row : events.Select(preds)) emit_row(row);
      }
    } else if (obj_ids) {
      for (EntityId id : *obj_ids) {
        if (scan_deadline_hit()) break;
        rel::Conjunction preds = base;
        preds.push_back(rel::Predicate{c_object, rel::CompareOp::kEq,
                                       static_cast<int64_t>(id)});
        for (rel::RowId row : events.Select(preds)) emit_row(row);
      }
    } else {
      for (Operation op : p.op.ops) {
        if (scan_deadline_hit()) break;
        rel::Conjunction preds = base;
        preds.push_back(rel::Predicate{c_optype, rel::CompareOp::kEq,
                                       static_cast<int64_t>(op)});
        for (rel::RowId row : events.Select(preds)) emit_row(row);
      }
    }
    return matches;
  };

  auto execute_path_pattern =
      [&](const tbql::Pattern& p) -> std::vector<PatternMatch> {
    std::vector<PatternMatch> matches;
    auto subj_ids = candidate_ids(p.subject);
    std::vector<EntityId> sources;
    if (subj_ids) {
      sources = *subj_ids;
    } else {
      for (const SystemEntity& e : log_->entities()) {
        if (e.type == p.subject.type) sources.push_back(e.id);
      }
    }

    auto obj_bound_it = bindings.find(p.object.id);
    const Binding* obj_bound =
        obj_bound_it == bindings.end() ? nullptr : &obj_bound_it->second;
    const tbql::EntityRef& object = p.object;
    graph::NodePredicate sink_pred = [&object, obj_bound](const SystemEntity& e) {
      if (e.type != object.type) return false;
      if (obj_bound != nullptr && obj_bound->count(e.id) == 0) return false;
      return EntityMatchesFilters(e, object.filters);
    };

    graph::PathConstraints constraints;
    constraints.min_hops = p.min_hops;
    constraints.max_hops = p.max_hops;
    constraints.final_ops = p.op.ops;
    if (p.window_start) constraints.window_start = *p.window_start;
    if (p.window_end) constraints.window_end = *p.window_end;

    // Bound the search: remaining edge budget (max_graph_edges spans all
    // path patterns of this call; graph stats were reset at entry) plus the
    // call-wide deadline.
    graph::SearchLimits limits;
    limits.deadline = deadline;
    if (options.max_graph_edges != 0) {
      uint64_t used = graph_->stats().edges_traversed;
      if (used >= options.max_graph_edges) {
        truncate("max_graph_edges",
                 StrFormat("max_graph_edges (%llu) reached before pattern "
                           "'%s' (graph search)",
                           static_cast<unsigned long long>(
                               options.max_graph_edges),
                           p.id.c_str()));
        return matches;
      }
      limits.max_edges = options.max_graph_edges - used;
    }

    std::vector<graph::PathMatch> paths =
        graph_->FindPaths(sources, sink_pred, constraints, &limits);
    if (limits.hit) {
      if (std::string_view(limits.reason) == "max_edges") {
        truncate("max_graph_edges",
                 StrFormat("max_graph_edges (%llu) reached during pattern "
                           "'%s' (graph search)",
                           static_cast<unsigned long long>(
                               options.max_graph_edges),
                           p.id.c_str()));
      } else {
        truncate("deadline",
                 StrFormat("deadline of %llu ms exceeded during pattern "
                           "'%s' (graph search)",
                           static_cast<unsigned long long>(
                               options.deadline_ms),
                           p.id.c_str()));
      }
    }
    for (const graph::PathMatch& pm : paths) {
      PatternMatch m;
      m.events = pm.hops;
      m.subject = pm.source;
      m.object = pm.sink;
      m.start_time = log_->event(pm.hops.front()).start_time;
      m.end_time = log_->event(pm.hops.back()).end_time;
      matches.push_back(std::move(m));
    }
    return matches;
  };

  // --- Scheduling (paper §II-F): highest pruning score first among the
  // patterns connected to what has already executed. ---
  const size_t n = query.patterns.size();
  std::vector<bool> done(n, false);
  std::vector<double> scores(n);
  for (size_t i = 0; i < n; ++i) scores[i] = PruningScore(query.patterns[i]);

  std::vector<PatternExecution> executions;
  executions.reserve(n);

  for (size_t step = 0; step < n; ++step) {
    // A tripped budget ends scheduling: patterns not yet executed are
    // dropped from the (truncated) result rather than run over-budget.
    if (result.truncated) break;
    if (deadline_exceeded()) {
      truncate("deadline",
               StrFormat("deadline of %llu ms exceeded before pattern "
                         "%zu of %zu",
                         static_cast<unsigned long long>(options.deadline_ms),
                         step + 1, n));
      break;
    }
    RAPTOR_RETURN_NOT_OK(TriggerFaultPoint("engine.pattern"));
    obs::Span schedule_span = tracer.StartSpan("schedule");
    size_t pick = n;
    if (!options.use_pruning_scores) {
      for (size_t i = 0; i < n; ++i) {
        if (!done[i]) {
          pick = i;
          break;
        }
      }
    } else {
      double best = -1e18;
      for (size_t i = 0; i < n; ++i) {
        if (done[i]) continue;
        double eff = scores[i];
        // Strongly prefer patterns whose entities are already bound: their
        // execution is constrained by previous results.
        if (bindings.count(query.patterns[i].subject.id) > 0) eff += 100.0;
        if (bindings.count(query.patterns[i].object.id) > 0) eff += 100.0;
        if (eff > best) {
          best = eff;
          pick = i;
        }
      }
    }
    const tbql::Pattern& p = query.patterns[pick];
    done[pick] = true;
    schedule_span.End();

    PatternExecution exec;
    exec.pattern = &p;
    bool constrained = bindings.count(p.subject.id) > 0 ||
                       bindings.count(p.object.id) > 0;
    obs::Span pattern_span =
        tracer.StartSpan(p.is_path ? "graph_search" : "scan");
    auto p0 = std::chrono::steady_clock::now();
    exec.matches = p.is_path ? execute_path_pattern(p)
                             : execute_event_pattern(p);
    if (pattern_span.active()) {
      pattern_span.SetAttr("pattern", p.id);
      pattern_span.SetAttr("backend",
                           std::string_view(p.is_path ? "graph" : "relational"));
      pattern_span.SetAttr("pruning_score", scores[pick]);
      pattern_span.SetAttr("constrained", constrained);
      pattern_span.SetAttr("matches",
                           static_cast<int64_t>(exec.matches.size()));
    }
    pattern_span.End();
    double pattern_ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - p0)
                            .count();
    obs::Logger::Default()
        .Log(obs::LogLevel::kDebug, "engine", "pattern scheduled")
        .Field("pattern", p.id)
        .Field("backend", std::string_view(p.is_path ? "graph" : "relational"))
        .Field("pruning_score", scores[pick])
        .Field("constrained", constrained)
        .Field("matches", static_cast<uint64_t>(exec.matches.size()))
        .Field("ms", pattern_ms);
    result.stats.per_pattern_ms.push_back(pattern_ms);
    result.stats.schedule.push_back(p.id);
    result.stats.matches_per_pattern.push_back(exec.matches.size());
    result.stats.pattern_scores.push_back(scores[pick]);
    result.stats.pattern_used_graph.push_back(p.is_path);
    result.stats.pattern_was_constrained.push_back(constrained);

    if (options.propagate_constraints) {
      Binding subj_seen, obj_seen;
      for (const PatternMatch& m : exec.matches) {
        subj_seen.insert(m.subject);
        obj_seen.insert(m.object);
      }
      bindings[p.subject.id] = std::move(subj_seen);
      bindings[p.object.id] = std::move(obj_seen);
    }
    executions.push_back(std::move(exec));
  }

  // --- Consistency join over pattern matches. ---
  // Join in ascending match-count order: small match sets first prune the
  // backtracking tree fastest. (Pure optimization; any order yields the
  // same rows, which the fuzz suite asserts.)
  std::stable_sort(executions.begin(), executions.end(),
                   [](const PatternExecution& a, const PatternExecution& b) {
                     return a.matches.size() < b.matches.size();
                   });
  std::map<std::string, EntityId> assignment;
  std::map<std::string, PatternMatch> chosen;
  Status join_status = Status::OK();

  // Temporal and attribute-relationship constraints, checked on each fully
  // assembled row.
  // Constraints whose patterns a tripped budget skipped are vacuously
  // satisfied — a truncated result joins only the patterns that executed.
  auto temporal_ok = [&](const std::map<std::string, PatternMatch>& evts) {
    for (const tbql::TemporalConstraint& tc : query.temporal) {
      auto a = evts.find(tc.first);
      auto b = evts.find(tc.second);
      if (a == evts.end() || b == evts.end()) continue;
      if (!(a->second.start_time < b->second.start_time)) return false;
    }
    for (const tbql::AttrRelationship& rel : query.attr_relationships) {
      auto a = evts.find(rel.first_pattern);
      auto b = evts.find(rel.second_pattern);
      if (a == evts.end() || b == evts.end()) continue;
      EntityId first = rel.first_is_subject ? a->second.subject
                                            : a->second.object;
      EntityId second = rel.second_is_subject ? b->second.subject
                                              : b->second.object;
      if (first != second) return false;
    }
    return true;
  };

  size_t count = 0;
  uint64_t join_steps = 0;
  bool join_aborted = false;
  std::function<void(size_t)> join = [&](size_t depth) {
    if (!join_status.ok() || count >= row_cap || join_aborted) return;
    // The backtracking join can explode combinatorially; poll the deadline
    // every few thousand steps and keep the rows assembled so far.
    if ((++join_steps & 0xFFF) == 0 && deadline_exceeded()) {
      truncate("deadline",
               StrFormat("deadline of %llu ms exceeded during the "
                         "consistency join",
                         static_cast<unsigned long long>(options.deadline_ms)));
      join_aborted = true;
      return;
    }
    if (depth == executions.size()) {
      if (!temporal_ok(chosen)) return;
      ++count;
      if (query.return_count) return;  // only the count is materialized
      result.bindings.push_back(assignment);
      result.matches.push_back(chosen);
      std::vector<std::string> row;
      for (const tbql::ReturnItem& item : query.returns) {
        auto it = assignment.find(item.entity_id);
        if (it == assignment.end()) {
          row.push_back("?");
          continue;
        }
        row.push_back(
            EntityAttrValue(log_->entity(it->second), item.attr).ToString());
      }
      result.rows.push_back(std::move(row));
      return;
    }
    const PatternExecution& exec = executions[depth];
    const std::string& subj_id = exec.pattern->subject.id;
    const std::string& obj_id = exec.pattern->object.id;
    for (const PatternMatch& m : exec.matches) {
      auto s_it = assignment.find(subj_id);
      if (s_it != assignment.end() && s_it->second != m.subject) continue;
      auto o_it = assignment.find(obj_id);
      if (o_it != assignment.end() && o_it->second != m.object) continue;
      bool new_s = s_it == assignment.end();
      bool new_o = o_it == assignment.end();
      if (new_s) assignment[subj_id] = m.subject;
      if (new_o) assignment[obj_id] = m.object;
      chosen[exec.pattern->id] = m;
      join(depth + 1);
      chosen.erase(exec.pattern->id);
      if (new_s) assignment.erase(subj_id);
      if (new_o) assignment.erase(obj_id);
    }
  };
  {
    obs::Span join_span = tracer.StartSpan("join");
    join(0);
    if (join_span.active()) {
      join_span.SetAttr("rows", static_cast<int64_t>(count));
    }
  }
  RAPTOR_RETURN_NOT_OK(join_status);
  // Hitting the safety row cap truncates; hitting a user-written LIMIT is
  // the requested behavior, not truncation.
  bool cap_is_user_limit = query.limit && *query.limit <= options.max_rows;
  if (count >= row_cap && !cap_is_user_limit) {
    truncate("row_cap", StrFormat("row cap (%zu) reached", row_cap));
  }
  if (query.return_count) {
    result.rows.push_back({std::to_string(count)});
  }

  result.stats.relational_rows_touched = rel_->TotalRowsTouched();
  result.stats.graph_edges_traversed = graph_->stats().edges_traversed;
  result.stats.total_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  query_ms->Observe(result.stats.total_ms);
  if (std::optional<obs::Trace> trace = trace_scope.Finish()) {
    result.profile = obs::AggregateProfile(*trace);
  }
  return result;
}

std::vector<EventId> QueryResult::MatchedEvents() const {
  std::unordered_set<EventId> seen;
  std::vector<EventId> out;
  for (const auto& row : matches) {
    for (const auto& [pattern_id, match] : row) {
      for (EventId ev : match.events) {
        if (seen.insert(ev).second) out.push_back(ev);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string QueryResult::ToString() const {
  std::string out = Join(columns, " | ") + "\n";
  for (const auto& row : rows) {
    out += Join(row, " | ") + "\n";
  }
  return out;
}

}  // namespace raptor::engine
