#include "engine/engine.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <functional>

#include "common/fault_injection.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "engine/estimator.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/resource.h"
#include "obs/trace.h"
#include "tbql/printer.h"

namespace raptor::engine {

using audit::EntityId;
using audit::EntityType;
using audit::EventId;
using audit::Operation;
using audit::SystemEntity;
using audit::SystemEvent;

namespace {

using Binding = std::unordered_set<EntityId>;

rel::Value FilterValue(const tbql::AttrFilter& f) {
  if (f.is_string) return rel::Value(f.string_value);
  return rel::Value(f.int_value);
}

/// Applies a comparison between two values (the filter language outside a
/// table context, used for graph sink predicates).
bool CompareValues(const rel::Value& cell, rel::CompareOp op,
                   const rel::Value& rhs) {
  switch (op) {
    case rel::CompareOp::kEq:
      return cell == rhs;
    case rel::CompareOp::kNe:
      return cell != rhs;
    case rel::CompareOp::kLt:
      return cell < rhs;
    case rel::CompareOp::kLe:
      return cell <= rhs;
    case rel::CompareOp::kGt:
      return cell > rhs;
    case rel::CompareOp::kGe:
      return cell >= rhs;
    case rel::CompareOp::kLike:
      return cell.is_string() && rhs.is_string() &&
             LikeMatch(cell.AsString(), rhs.AsString());
    case rel::CompareOp::kNotLike:
      return !(cell.is_string() && rhs.is_string() &&
               LikeMatch(cell.AsString(), rhs.AsString()));
  }
  return false;
}

/// Attribute accessor on an audit entity (graph-side filter evaluation and
/// result projection).
rel::Value EntityAttrValue(const SystemEntity& e, const std::string& attr) {
  if (attr == "id") return rel::Value(static_cast<int64_t>(e.id));
  switch (e.type) {
    case EntityType::kFile:
      if (attr == "name") return rel::Value(e.path);
      break;
    case EntityType::kProcess:
      if (attr == "exename") return rel::Value(e.exename);
      if (attr == "pid") return rel::Value(static_cast<int64_t>(e.pid));
      break;
    case EntityType::kNetwork:
      if (attr == "srcip") return rel::Value(e.src_ip);
      if (attr == "srcport") return rel::Value(static_cast<int64_t>(e.src_port));
      if (attr == "dstip") return rel::Value(e.dst_ip);
      if (attr == "dstport") return rel::Value(static_cast<int64_t>(e.dst_port));
      if (attr == "protocol") return rel::Value(e.protocol);
      break;
  }
  return rel::Value(std::string());
}

bool EntityMatchesFilters(const SystemEntity& e,
                          const std::vector<tbql::AttrFilter>& filters) {
  for (const tbql::AttrFilter& f : filters) {
    if (!CompareValues(EntityAttrValue(e, f.attr), f.op, FilterValue(f))) {
      return false;
    }
  }
  return true;
}

}  // namespace

double QueryEngine::PruningScore(const tbql::Pattern& pattern) {
  double score = static_cast<double>(pattern.subject.filters.size() +
                                     pattern.object.filters.size());
  if (pattern.window_start && pattern.window_end) score += 1.0;
  if (pattern.op.ops.size() == 1) score += 0.5;  // narrower operation
  if (pattern.is_path) {
    // Longer maximum paths are more expensive to search; derate them.
    score -= static_cast<double>(pattern.max_hops);
  }
  return score;
}

struct QueryEngine::PatternExecution {
  const tbql::Pattern* pattern = nullptr;
  std::vector<PatternMatch> matches;
};

/// Everything Execute() decides before any pattern runs. All of it is a
/// pure function of (query, plan-affecting options, data generation), which
/// is what makes it cacheable and thread-count independent.
struct QueryEngine::PlanPrelude {
  bool estimate = false;
  bool columnar = false;
  std::string key;  ///< Plan-cache key; empty when the cache is disabled.
  std::shared_ptr<const CachedPlan> cached;  ///< Non-null on a cache hit.
  std::shared_ptr<CachedPlan> fresh;  ///< Built this call; inserted at end.
  std::vector<double> scores;             // indexed by pattern
  std::vector<double> est_unconstrained;  // indexed by pattern
  std::vector<double> est_by_pattern;     // indexed by pattern
  std::vector<size_t> order;              // schedule
  /// Per pattern: will it execute as an unconstrained event scan (no
  /// entity filters, no bindings propagated into it)? Mirrors the
  /// candidate_ids nullopt rule against the final schedule.
  std::vector<bool> case_c;
};

/// Output of one probe of a shared segment pass, keyed back to the pattern
/// it serves. The records already honor the pattern's operation set and
/// time window; the consuming member only re-emits them as matches.
struct QueryEngine::SharedScanResult {
  std::vector<rel::EventRecord> records;
  rel::SegmentProbeStats stats;
  bool complete = true;
};

QueryEngine::QueryEngine(const audit::AuditLog* log,
                         rel::RelationalDatabase* rel_db,
                         graph::GraphStore* graph_db)
    : log_(log),
      rel_(rel_db),
      graph_(graph_db),
      plan_cache_(std::make_unique<PlanCache>()) {}

QueryEngine::~QueryEngine() = default;

QueryEngine::PlanPrelude QueryEngine::MakePrelude(
    const tbql::Query& query, const ExecutionOptions& options) const {
  PlanPrelude pre;
  const size_t n = query.patterns.size();
  pre.estimate =
      options.use_cardinality_estimates && rel_->statistics_enabled();
  // The columnar layout is maintained in lockstep with the events table;
  // the equality check is a safety net for hand-built databases.
  pre.columnar = options.use_columnar &&
                 rel_->event_segments().num_rows() ==
                     static_cast<size_t>(rel_->events().num_rows());

  if (options.use_plan_cache) {
    pre.key = StrFormat("prune=%d|prop=%d|est=%d|col=%d|",
                        options.use_pruning_scores ? 1 : 0,
                        options.propagate_constraints ? 1 : 0,
                        pre.estimate ? 1 : 0, pre.columnar ? 1 : 0) +
              tbql::Print(query);
    pre.cached = plan_cache_->Lookup(pre.key, rel_->generation());
  }

  if (pre.cached != nullptr) {
    pre.scores = pre.cached->scores;
    pre.order = pre.cached->order;
    pre.est_unconstrained = pre.cached->est_unconstrained;
    pre.est_by_pattern = pre.cached->est_by_pattern;
  } else {
    pre.scores.resize(n);
    for (size_t i = 0; i < n; ++i) {
      pre.scores[i] = PruningScore(query.patterns[i]);
    }
    // Pre-execution cardinality estimates. The statistics are frozen
    // during queries (maintained only on the serial load/sync path), so
    // the estimates — and the scheduling decisions they feed — are
    // identical at every thread count.
    CardinalityEstimator estimator(rel_, graph_);
    if (pre.estimate) {
      pre.est_unconstrained.resize(n);
      for (size_t i = 0; i < n; ++i) {
        pre.est_unconstrained[i] =
            estimator.EstimatePattern(query.patterns[i]);
      }
    }

    // Static schedule (paper §II-F): highest pruning score first among the
    // patterns connected to what has already executed. The pick rule
    // depends only on WHICH entity ids are bound, so the complete order is
    // computable before anything runs.
    obs::Span schedule_span = obs::Tracer::Default().StartSpan("schedule");
    pre.order.reserve(n);
    std::vector<bool> done(n, false);
    std::unordered_set<std::string> bound;
    for (size_t step = 0; step < n; ++step) {
      size_t pick = n;
      if (!options.use_pruning_scores) {
        for (size_t i = 0; i < n; ++i) {
          if (!done[i]) {
            pick = i;
            break;
          }
        }
      } else {
        double best = -1e18;
        for (size_t i = 0; i < n; ++i) {
          if (done[i]) continue;
          double eff = pre.scores[i];
          // Strongly prefer patterns whose entities are already bound:
          // their execution is constrained by previous results.
          if (bound.count(query.patterns[i].subject.id) > 0) eff += 100.0;
          if (bound.count(query.patterns[i].object.id) > 0) eff += 100.0;
          // Estimates break exact score ties: cheaper (fewer predicted
          // rows) first, so its bindings prune the more expensive twin.
          if (eff > best ||
              (pre.estimate && pick < n && eff == best &&
               pre.est_unconstrained[i] < pre.est_unconstrained[pick])) {
            best = eff;
            pick = i;
          }
        }
      }
      done[pick] = true;
      pre.order.push_back(pick);
      if (options.propagate_constraints) {
        bound.insert(query.patterns[pick].subject.id);
        bound.insert(query.patterns[pick].object.id);
      }
    }
    schedule_span.End();

    // Binding-aware estimates for the final schedule (the estimator's
    // mirror of filter propagation), indexed back by pattern.
    if (pre.estimate) {
      pre.est_by_pattern.assign(n, 0.0);
      std::vector<double> sched_est = estimator.EstimateSchedule(
          query, pre.order, options.propagate_constraints);
      for (size_t i = 0; i < pre.order.size(); ++i) {
        pre.est_by_pattern[pre.order[i]] = sched_est[i];
      }
    }

    if (!pre.key.empty()) {
      pre.fresh = std::make_shared<CachedPlan>();
      pre.fresh->generation = rel_->generation();
      pre.fresh->order = pre.order;
      pre.fresh->scores = pre.scores;
      pre.fresh->est_unconstrained = pre.est_unconstrained;
      pre.fresh->est_by_pattern = pre.est_by_pattern;
    }
  }

  // Which patterns will run unconstrained? Mirrors candidate_ids: a side
  // yields no candidate list iff it has no filters and no earlier-scheduled
  // pattern bound its entity id.
  pre.case_c.assign(n, false);
  {
    std::unordered_set<std::string> bound;
    for (size_t idx : pre.order) {
      const tbql::Pattern& p = query.patterns[idx];
      pre.case_c[idx] = !p.is_path && p.subject.filters.empty() &&
                        p.object.filters.empty() &&
                        bound.count(p.subject.id) == 0 &&
                        bound.count(p.object.id) == 0;
      if (options.propagate_constraints) {
        bound.insert(p.subject.id);
        bound.insert(p.object.id);
      }
    }
  }
  return pre;
}

Result<QueryResult> QueryEngine::Execute(const tbql::Query& query,
                                         const ExecutionOptions& options) const {
  return ExecuteInternal(query, options, nullptr);
}

std::vector<Result<QueryResult>> QueryEngine::ExecuteBatch(
    const std::vector<const tbql::Query*>& queries,
    const ExecutionOptions& options) const {
  const bool columnar = options.use_columnar &&
                        rel_->event_segments().num_rows() ==
                            static_cast<size_t>(rel_->events().num_rows());

  // Collect the patterns a shared pass can serve: filterless, non-path,
  // and — under constraint propagation — using entity ids no other pattern
  // of the same query mentions, so no binding can ever constrain them.
  // (Prediction only: a pattern this misses simply scans privately, and a
  // precomputed result is consumed only if the member really plans an
  // unconstrained scan, so results are identical either way.)
  struct ProbeRef {
    size_t query;
    size_t pattern;
  };
  std::vector<ProbeRef> refs;
  std::vector<rel::EventSegmentStore::OpScanProbe> probes;
  if (columnar) {
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      const tbql::Query& q = *queries[qi];
      for (size_t i = 0; i < q.patterns.size(); ++i) {
        const tbql::Pattern& p = q.patterns[i];
        if (p.is_path || !p.subject.filters.empty() ||
            !p.object.filters.empty()) {
          continue;
        }
        bool isolated = true;
        if (options.propagate_constraints) {
          for (size_t o = 0; o < q.patterns.size() && isolated; ++o) {
            if (o == i) continue;
            const tbql::Pattern& other = q.patterns[o];
            for (const std::string* id :
                 {&other.subject.id, &other.object.id}) {
              if (*id == p.subject.id || *id == p.object.id) {
                isolated = false;
                break;
              }
            }
          }
        }
        if (!isolated) continue;
        rel::EventSegmentStore::OpScanProbe probe;
        probe.ops.reserve(p.op.ops.size());
        for (Operation op : p.op.ops) {
          probe.ops.push_back(static_cast<int64_t>(op));
        }
        probe.window_start = p.window_start;
        probe.window_end = p.window_end;
        refs.push_back({qi, i});
        probes.push_back(std::move(probe));
      }
    }
  }

  std::vector<std::unordered_map<size_t, SharedScanResult>> shared(
      queries.size());
  if (refs.size() >= 2) {
    static obs::Histogram* shared_hist = obs::Registry::Default().GetHistogram(
        "raptor_shared_scan_patterns",
        "Patterns served per shared segment scan",
        obs::ExponentialBuckets(1.0, 2.0, 8));
    std::vector<std::vector<rel::EventRecord>> outs;
    std::vector<rel::SegmentProbeStats> pstats;
    rel_->event_segments().SharedOpScan(probes, nullptr, &outs, &pstats);
    for (size_t k = 0; k < refs.size(); ++k) {
      SharedScanResult r;
      r.records = std::move(outs[k]);
      r.stats = pstats[k];
      shared[refs[k].query].emplace(refs[k].pattern, std::move(r));
    }
    shared_hist->Observe(static_cast<double>(refs.size()));
  }

  std::vector<Result<QueryResult>> results;
  results.reserve(queries.size());
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    results.push_back(ExecuteInternal(
        *queries[qi], options, shared[qi].empty() ? nullptr : &shared[qi]));
  }
  return results;
}

Result<QueryResult> QueryEngine::ExecuteInternal(
    const tbql::Query& query, const ExecutionOptions& options,
    const std::unordered_map<size_t, SharedScanResult>* shared) const {
  RAPTOR_RETURN_NOT_OK(TriggerFaultPoint("engine.execute"));
  static obs::Counter* queries_total = obs::Registry::Default().GetCounter(
      "raptor_queries_total", "TBQL query executions started");
  static obs::Histogram* query_ms = obs::Registry::Default().GetHistogram(
      "raptor_query_ms", "Wall time of one query execution (ms)");
  queries_total->Increment();

  obs::Tracer& tracer = obs::Tracer::Default();
  // Top-level when called directly; a subtree span when a hunt (or the
  // HTTP request trace) is already recording on this thread.
  obs::TraceScope trace_scope =
      tracer.BeginTrace("execute", options.collect_profile);

  auto t0 = std::chrono::steady_clock::now();
  rel_->ResetStats();
  graph_->ResetStats();

  QueryResult result;

  // Execution budgets. The first budget to trip records its reason and
  // flips `truncated`; everything already computed stays in the result.
  std::chrono::steady_clock::time_point deadline{};
  if (options.deadline_ms > 0) {
    deadline = t0 + std::chrono::milliseconds(options.deadline_ms);
  }
  auto deadline_exceeded = [&deadline] {
    return deadline != std::chrono::steady_clock::time_point{} &&
           std::chrono::steady_clock::now() > deadline;
  };
  // `code` labels the truncation counter ("deadline", "max_graph_edges",
  // "row_cap"); `reason` is the human-readable stats string.
  auto truncate = [&result, &trace_scope](std::string_view code,
                                          std::string reason) {
    if (!result.truncated) {
      result.truncated = true;
      result.stats.truncation_reason = std::move(reason);
      obs::Registry::Default()
          .GetCounter("raptor_query_truncations_total",
                      "Query executions stopped early by a budget, by cause",
                      {{"reason", std::string(code)}})
          ->Increment();
      trace_scope.root().Annotate("truncated: " +
                                  result.stats.truncation_reason);
      obs::Logger::Default()
          .Log(obs::LogLevel::kWarn, "engine", "query truncated")
          .Field("reason", code)
          .Field("detail", result.stats.truncation_reason);
    }
  };
  if (query.return_count) {
    result.columns.push_back("count");
  } else {
    for (const tbql::ReturnItem& item : query.returns) {
      result.columns.push_back(item.entity_id + "." + item.attr);
    }
  }
  size_t row_cap = options.max_rows;
  if (query.limit) row_cap = std::min(row_cap, *query.limit);

  // --- Parallelism. ---
  // The thread count resolves here once; `pool` is non-null only when this
  // execution may fan out. threads == 1 is the exact serial flow: every
  // wave below holds a single pattern and every scan/search call is serial.
  const size_t threads = options.num_threads == 0 ? ThreadPool::HardwareThreads()
                                                  : options.num_threads;
  ThreadPool* pool = threads > 1 ? &ThreadPool::Shared() : nullptr;
  result.stats.num_threads = threads;

  // --- Plan: schedule order, scores, estimates, access-path decisions ---
  // from the plan cache when a fresh-generation entry exists, computed (and
  // cached) otherwise. None of it depends on the thread count.
  PlanPrelude pre = MakePrelude(query, options);
  result.stats.plan_cache_hit = pre.cached != nullptr;
  const size_t n = query.patterns.size();
  const bool estimate = pre.estimate;
  const std::vector<double>& scores = pre.scores;
  const std::vector<double>& est_by_pattern = pre.est_by_pattern;
  const std::vector<size_t>& order = pre.order;

  // --- Candidate-id computation against the relational backend. ---
  // The analyzer unifies filters per entity id, so the filter-selection
  // result is execution-invariant per entity and is cached: an entity used
  // by several patterns (the shared-identity sugar) costs one entity-table
  // select, not one per pattern. Always called on the scheduling thread in
  // schedule order, so the cache needs no lock and a fill is charged to the
  // same pattern at any thread count.
  std::unordered_map<std::string, Binding> bindings;
  std::unordered_map<std::string, std::vector<EntityId>> filter_cache;
  auto candidate_ids = [&](const tbql::EntityRef& e,
                           rel::TableStats* scan_stats)
      -> std::optional<std::vector<EntityId>> {
    auto bound_it = bindings.find(e.id);
    const Binding* bound =
        bound_it == bindings.end() ? nullptr : &bound_it->second;
    if (e.filters.empty() && bound == nullptr) return std::nullopt;

    std::vector<EntityId> ids;
    if (!e.filters.empty()) {
      auto cached = filter_cache.find(e.id);
      if (cached == filter_cache.end()) {
        rel::Table& table = rel_->EntityTable(e.type);
        rel::Conjunction preds;
        for (const tbql::AttrFilter& f : e.filters) {
          rel::ColumnId col = table.schema().Find(f.attr);
          if (col == rel::kInvalidColumn) continue;  // analyzer validated
          preds.push_back(rel::Predicate{col, f.op, FilterValue(f)});
        }
        rel::ColumnId id_col = table.schema().Find("id");
        std::vector<EntityId> selected;
        rel::ScanOptions scan{pool, threads, 4096, scan_stats};
        for (rel::RowId row : table.Select(preds, scan)) {
          selected.push_back(
              static_cast<EntityId>(table.row(row)[id_col].AsInt()));
        }
        cached = filter_cache.emplace(e.id, std::move(selected)).first;
      }
      for (EntityId id : cached->second) {
        if (bound == nullptr || bound->count(id) > 0) ids.push_back(id);
      }
    } else {
      ids.assign(bound->begin(), bound->end());
      std::sort(ids.begin(), ids.end());
    }
    return ids;
  };

  // --- Per-member execution. ---
  // A "member" is one pattern inside a scheduling wave. Members run with
  // private outputs (matches, stats deltas, truncation verdicts); a serial
  // commit loop folds them into the result in schedule order, which is what
  // makes the result byte-identical to the serial engine at any thread
  // count.
  struct MemberPlan {
    const tbql::Pattern* p = nullptr;
    size_t pattern_index = 0;
    bool constrained = false;
    bool skip = false;  ///< Budget exhausted before the pattern; don't run.
    std::optional<std::vector<EntityId>> subj_ids;
    std::optional<std::vector<EntityId>> obj_ids;  // event patterns only
    const Binding* obj_bound = nullptr;            // path patterns only
    /// Exact-budget mode: limits.max_edges = local_max_edges, counted the
    /// way the serial engine counts the remaining call-wide budget.
    bool exact_graph_budget = false;
    uint64_t local_max_edges = 0;
    /// Unconstrained event pattern served by the columnar segment store.
    bool columnar_scan = false;
    /// Zone-map-pruned segment list for a columnar scan (points into the
    /// cached plan, the fresh plan being built, or `owned_segments`).
    const std::vector<uint32_t>* scan_segments = nullptr;
    std::vector<uint32_t> owned_segments;
    /// Precomputed shared-scan output (wave- or batch-level); consumed
    /// instead of scanning.
    const SharedScanResult* shared = nullptr;
  };
  struct MemberRun {
    std::vector<PatternMatch> matches;
    rel::TableStats rel_stats;
    rel::SegmentProbeStats seg_stats;
    bool used_shared = false;
    uint64_t graph_edges = 0;
    double ms = 0;
    std::string trunc_code;  // "deadline" / "max_graph_edges"; empty = none
    std::string trunc_reason;
  };

  auto run_event_member = [&](const MemberPlan& plan, ThreadPool* member_pool,
                              MemberRun* run) {
    const tbql::Pattern& p = *plan.p;
    std::unordered_set<EntityId> subj_set, obj_set;
    if (plan.subj_ids) {
      subj_set.insert(plan.subj_ids->begin(), plan.subj_ids->end());
    }
    if (plan.obj_ids) {
      obj_set.insert(plan.obj_ids->begin(), plan.obj_ids->end());
    }
    std::unordered_set<int64_t> op_set;
    for (Operation op : p.op.ops) op_set.insert(static_cast<int64_t>(op));

    rel::Table& events = rel_->events();
    const rel::Schema& schema = events.schema();
    rel::ColumnId c_subject = schema.Find("subject");
    rel::ColumnId c_object = schema.Find("object");
    rel::ColumnId c_optype = schema.Find("optype");
    rel::ColumnId c_start = schema.Find("starttime");
    rel::ColumnId c_end = schema.Find("endtime");
    rel::ColumnId c_id = schema.Find("id");

    rel::Conjunction base;
    if (p.window_start) {
      base.push_back(
          rel::Predicate{c_start, rel::CompareOp::kGe, *p.window_start});
    }
    if (p.window_end) {
      base.push_back(
          rel::Predicate{c_start, rel::CompareOp::kLe, *p.window_end});
    }

    auto emit_row = [&](rel::RowId row, std::vector<PatternMatch>* out) {
      const rel::Row& r = events.row(row);
      if (op_set.count(r[c_optype].AsInt()) == 0) return;
      auto subj = static_cast<EntityId>(r[c_subject].AsInt());
      auto obj = static_cast<EntityId>(r[c_object].AsInt());
      if (plan.subj_ids && subj_set.count(subj) == 0) return;
      if (plan.obj_ids && obj_set.count(obj) == 0) return;
      PatternMatch m;
      m.events.push_back(static_cast<EventId>(r[c_id].AsInt()));
      m.subject = subj;
      m.object = obj;
      m.start_time = r[c_start].AsInt();
      m.end_time = r[c_end].AsInt();
      out->push_back(std::move(m));
    };
    // Columnar probes apply every residual filter themselves, so their
    // records convert to matches directly.
    auto emit_record = [](const rel::EventRecord& rec,
                          std::vector<PatternMatch>* out) {
      PatternMatch m;
      m.events.push_back(static_cast<EventId>(rec.id));
      m.subject = static_cast<EntityId>(rec.subject);
      m.object = static_cast<EntityId>(rec.object);
      m.start_time = rec.start_time;
      m.end_time = rec.end_time;
      out->push_back(std::move(m));
    };
    auto deadline_reason = [&] {
      return StrFormat("deadline of %llu ms exceeded during pattern '%s' "
                       "(relational scan)",
                       static_cast<unsigned long long>(options.deadline_ms),
                       p.id.c_str());
    };

    // A shared segment pass (wave- or batch-level) already produced this
    // pattern's records; re-emitting them preserves the scan order.
    if (plan.shared != nullptr) {
      for (const rel::EventRecord& rec : plan.shared->records) {
        emit_record(rec, &run->matches);
      }
      run->seg_stats.Add(plan.shared->stats);
      run->used_shared = true;
      if (!plan.shared->complete && run->trunc_code.empty()) {
        run->trunc_code = "deadline";
        run->trunc_reason = deadline_reason();
      }
      return;
    }

    const rel::EventSegmentStore& segs = rel_->event_segments();
    // Probe the event table on the narrower entity side; fall back to an
    // operation-type scan when neither side constrains. The deadline is
    // polled between probes, so a truncated scan still returns valid
    // matches. With a pool the probe loop is partitioned; concatenating
    // chunk outputs in chunk order reproduces the serial match order.
    auto run_probes = [&](const std::vector<EntityId>& ids, rel::ColumnId col,
                          rel::EventSegmentStore::Side side) {
      // Columnar probes resolve the opposite-side filter in the store.
      const std::unordered_set<uint64_t>* other_filter =
          side == rel::EventSegmentStore::Side::kSubject
              ? (plan.obj_ids ? &obj_set : nullptr)
              : (plan.subj_ids ? &subj_set : nullptr);
      auto probe_one = [&](EntityId id, std::vector<PatternMatch>* matches,
                           rel::TableStats* row_stats,
                           rel::SegmentProbeStats* seg_stats) {
        if (pre.columnar) {
          std::vector<rel::EventRecord> records;
          segs.ProbeEntity(side, static_cast<int64_t>(id), op_set,
                           p.window_start, p.window_end, other_filter,
                           &records, seg_stats);
          for (const rel::EventRecord& rec : records) {
            emit_record(rec, matches);
          }
        } else {
          rel::Conjunction preds = base;
          preds.push_back(rel::Predicate{col, rel::CompareOp::kEq,
                                         static_cast<int64_t>(id)});
          rel::ScanOptions scan{nullptr, 1, 4096, row_stats};
          for (rel::RowId row : events.Select(preds, scan)) {
            emit_row(row, matches);
          }
        }
      };
      constexpr size_t kProbeGrain = 16;
      if (member_pool != nullptr && ids.size() >= 2 * kProbeGrain) {
        size_t nparts =
            std::min((ids.size() + kProbeGrain - 1) / kProbeGrain, threads * 4);
        size_t per = (ids.size() + nparts - 1) / nparts;
        struct Chunk {
          std::vector<PatternMatch> matches;
          rel::TableStats stats;
          rel::SegmentProbeStats seg_stats;
          bool deadline_hit = false;
        };
        std::vector<Chunk> chunks(nparts);
        member_pool->ParallelFor(
            nparts, 1,
            [&](size_t, size_t begin, size_t end) {
              for (size_t part = begin; part < end; ++part) {
                Chunk& chunk = chunks[part];
                size_t lo = part * per;
                size_t hi = std::min(ids.size(), lo + per);
                for (size_t i = lo; i < hi; ++i) {
                  if (deadline_exceeded()) {
                    chunk.deadline_hit = true;
                    break;
                  }
                  probe_one(ids[i], &chunk.matches, &chunk.stats,
                            &chunk.seg_stats);
                }
              }
            },
            threads);
        for (Chunk& chunk : chunks) {
          run->matches.insert(run->matches.end(),
                              std::make_move_iterator(chunk.matches.begin()),
                              std::make_move_iterator(chunk.matches.end()));
          run->rel_stats.rows_scanned += chunk.stats.rows_scanned;
          run->rel_stats.index_probes += chunk.stats.index_probes;
          run->rel_stats.rows_from_index += chunk.stats.rows_from_index;
          run->rel_stats.full_scans += chunk.stats.full_scans;
          run->rel_stats.bytes_touched += chunk.stats.bytes_touched;
          run->seg_stats.Add(chunk.seg_stats);
          if (chunk.deadline_hit && run->trunc_code.empty()) {
            run->trunc_code = "deadline";
            run->trunc_reason = deadline_reason();
          }
        }
      } else {
        for (EntityId id : ids) {
          if (deadline_exceeded()) {
            run->trunc_code = "deadline";
            run->trunc_reason = deadline_reason();
            break;
          }
          probe_one(id, &run->matches, &run->rel_stats, &run->seg_stats);
        }
      }
    };

    bool probe_subject =
        plan.subj_ids &&
        (!plan.obj_ids || plan.subj_ids->size() <= plan.obj_ids->size());
    if (probe_subject) {
      run_probes(*plan.subj_ids, c_subject,
                 rel::EventSegmentStore::Side::kSubject);
    } else if (plan.obj_ids) {
      run_probes(*plan.obj_ids, c_object,
                 rel::EventSegmentStore::Side::kObject);
    } else if (plan.columnar_scan) {
      // Unconstrained pattern, columnar path: one pass over the zone-map
      // surviving segments, reading only the declared operations' bitmaps.
      std::vector<rel::EventSegmentStore::OpScanProbe> probes(1);
      rel::EventSegmentStore::OpScanProbe& probe = probes[0];
      probe.ops.reserve(p.op.ops.size());
      for (Operation op : p.op.ops) {
        probe.ops.push_back(static_cast<int64_t>(op));
      }
      probe.window_start = p.window_start;
      probe.window_end = p.window_end;
      probe.segments = plan.scan_segments;
      std::function<bool()> stop = [&] { return deadline_exceeded(); };
      std::vector<std::vector<rel::EventRecord>> outs;
      std::vector<rel::SegmentProbeStats> pstats;
      bool complete = segs.SharedOpScan(
          probes, options.deadline_ms > 0 ? &stop : nullptr, &outs, &pstats);
      run->seg_stats.Add(pstats[0]);
      for (const rel::EventRecord& rec : outs[0]) {
        emit_record(rec, &run->matches);
      }
      if (!complete && run->trunc_code.empty()) {
        run->trunc_code = "deadline";
        run->trunc_reason = deadline_reason();
      }
    } else {
      // Unconstrained pattern, row-store baseline: one probe per operation
      // type. The per-probe Select may parallelize internally (a full-scan
      // fallback partitions across the pool).
      const double op_scan_est =
          estimate && est_by_pattern.size() > plan.pattern_index
              ? est_by_pattern[plan.pattern_index]
              : 0.0;
      for (Operation op : p.op.ops) {
        if (deadline_exceeded()) {
          run->trunc_code = "deadline";
          run->trunc_reason = deadline_reason();
          break;
        }
        rel::Conjunction preds = base;
        preds.push_back(rel::Predicate{c_optype, rel::CompareOp::kEq,
                                       static_cast<int64_t>(op)});
        rel::ScanOptions scan{member_pool, threads, 4096, &run->rel_stats};
        // Estimator-driven reservation: a full-scan fallback pre-sizes its
        // hit vector from the predicted row count instead of growing from
        // empty (clamped inside Select to the table size).
        scan.expected_rows = static_cast<size_t>(
            std::min(op_scan_est / static_cast<double>(p.op.ops.size()),
                     1e9));
        for (rel::RowId row : events.Select(preds, scan)) {
          emit_row(row, &run->matches);
        }
      }
    }
  };

  auto run_path_member = [&](const MemberPlan& plan, ThreadPool* member_pool,
                             std::atomic<uint64_t>* shared_edges,
                             MemberRun* run) {
    const tbql::Pattern& p = *plan.p;
    std::vector<EntityId> sources;
    if (plan.subj_ids) {
      sources = *plan.subj_ids;
    } else {
      for (const SystemEntity& e : log_->entities()) {
        if (e.type == p.subject.type) sources.push_back(e.id);
      }
    }

    const Binding* obj_bound = plan.obj_bound;
    const tbql::EntityRef& object = p.object;
    graph::NodePredicate sink_pred = [&object,
                                      obj_bound](const SystemEntity& e) {
      if (e.type != object.type) return false;
      if (obj_bound != nullptr && obj_bound->count(e.id) == 0) return false;
      return EntityMatchesFilters(e, object.filters);
    };

    graph::PathConstraints constraints;
    constraints.min_hops = p.min_hops;
    constraints.max_hops = p.max_hops;
    constraints.final_ops = p.op.ops;
    if (p.window_start) constraints.window_start = *p.window_start;
    if (p.window_end) constraints.window_end = *p.window_end;

    // Bound the search: the remaining edge budget (max_graph_edges spans
    // all path patterns of this call) plus the call-wide deadline. A
    // singleton wave gets the exact serial budget; members of a multi-
    // pattern wave share one atomic so the cap still holds globally, and
    // the commit loop re-runs anything the shared budget touched.
    graph::SearchLimits limits;
    limits.deadline = deadline;
    if (plan.exact_graph_budget) {
      limits.max_edges = plan.local_max_edges;
    } else if (shared_edges != nullptr && options.max_graph_edges != 0) {
      limits.shared_edges = shared_edges;
      limits.shared_max_edges = options.max_graph_edges;
    }

    graph::SearchParallelism par;
    par.pool = member_pool;
    par.num_threads = member_pool != nullptr ? threads : 1;
    std::vector<graph::PathMatch> paths =
        graph_->FindPaths(sources, sink_pred, constraints, &limits,
                          member_pool != nullptr ? &par : nullptr);
    run->graph_edges = limits.edges_traversed;
    if (limits.hit) {
      if (std::string_view(limits.reason) == "max_edges") {
        run->trunc_code = "max_graph_edges";
        run->trunc_reason =
            StrFormat("max_graph_edges (%llu) reached during pattern '%s' "
                      "(graph search)",
                      static_cast<unsigned long long>(options.max_graph_edges),
                      p.id.c_str());
      } else {
        run->trunc_code = "deadline";
        run->trunc_reason =
            StrFormat("deadline of %llu ms exceeded during pattern '%s' "
                      "(graph search)",
                      static_cast<unsigned long long>(options.deadline_ms),
                      p.id.c_str());
      }
    }
    for (const graph::PathMatch& pm : paths) {
      PatternMatch m;
      m.events = pm.hops;
      m.subject = pm.source;
      m.object = pm.sink;
      m.start_time = log_->event(pm.hops.front()).start_time;
      m.end_time = log_->event(pm.hops.back()).end_time;
      run->matches.push_back(std::move(m));
    }
  };

  auto before_pattern_reason = [&](const tbql::Pattern& p) {
    return StrFormat("max_graph_edges (%llu) reached before pattern '%s' "
                     "(graph search)",
                     static_cast<unsigned long long>(options.max_graph_edges),
                     p.id.c_str());
  };

  // --- Wave partition: a wave is a maximal schedule prefix of patterns
  // that pairwise share no entity ids. Every member of a wave sees the same
  // bindings whether the wave runs serially or concurrently, so members may
  // run in parallel; the commit loop folds them back in schedule order. ---
  std::vector<std::pair<size_t, size_t>> waves;  // [begin, end) into `order`
  for (size_t s = 0; s < order.size();) {
    size_t e = s + 1;
    if (pool != nullptr) {
      std::unordered_set<std::string> wave_entities{
          query.patterns[order[s]].subject.id,
          query.patterns[order[s]].object.id};
      while (e < order.size()) {
        const tbql::Pattern& q = query.patterns[order[e]];
        if (wave_entities.count(q.subject.id) > 0 ||
            wave_entities.count(q.object.id) > 0) {
          break;
        }
        wave_entities.insert(q.subject.id);
        wave_entities.insert(q.object.id);
        ++e;
      }
    }
    waves.emplace_back(s, e);
    s = e;
  }

  // --- Wave execution. ---
  std::vector<PatternExecution> executions;
  executions.reserve(n);
  uint64_t committed_graph_edges = 0;
  uint64_t committed_rel_rows = 0;
  uint64_t committed_bytes = 0;
  size_t committed_patterns = 0;
  // Intermediate result sets (committed pattern matches, then projected
  // rows) are charged to the engine memory component for the life of this
  // call; the peak watermark survives the scope's release.
  obs::MemoryScope mem_scope(obs::Component::kEngine);

  for (const auto& [wave_begin, wave_end] : waves) {
    // A tripped budget ends scheduling: patterns not yet committed are
    // dropped from the (truncated) result rather than run over-budget.
    if (result.truncated) break;
    if (deadline_exceeded()) {
      truncate("deadline",
               StrFormat("deadline of %llu ms exceeded before pattern "
                         "%zu of %zu",
                         static_cast<unsigned long long>(options.deadline_ms),
                         committed_patterns + 1, n));
      break;
    }
    const size_t wave_size = wave_end - wave_begin;
    for (size_t j = 0; j < wave_size; ++j) {
      RAPTOR_RETURN_NOT_OK(TriggerFaultPoint("engine.pattern"));
    }
    const bool multi = wave_size > 1;
    if (multi) ++result.stats.parallel_waves;

    // Plan members on this thread, in schedule order.
    std::vector<MemberPlan> plans(wave_size);
    std::vector<MemberRun> runs(wave_size);
    for (size_t j = 0; j < wave_size; ++j) {
      const size_t idx = order[wave_begin + j];
      const tbql::Pattern& p = query.patterns[idx];
      MemberPlan& plan = plans[j];
      plan.p = &p;
      plan.pattern_index = idx;
      plan.constrained = bindings.count(p.subject.id) > 0 ||
                         bindings.count(p.object.id) > 0;
      plan.subj_ids = candidate_ids(p.subject, &runs[j].rel_stats);
      if (p.is_path) {
        auto it = bindings.find(p.object.id);
        plan.obj_bound = it == bindings.end() ? nullptr : &it->second;
        if (!multi && options.max_graph_edges != 0) {
          if (committed_graph_edges >= options.max_graph_edges) {
            plan.skip = true;
            runs[j].trunc_code = "max_graph_edges";
            runs[j].trunc_reason = before_pattern_reason(p);
          } else {
            plan.exact_graph_budget = true;
            plan.local_max_edges =
                options.max_graph_edges - committed_graph_edges;
          }
        }
      } else {
        plan.obj_ids = candidate_ids(p.object, &runs[j].rel_stats);
        if (pre.columnar && !plan.subj_ids && !plan.obj_ids) {
          // Unconstrained event pattern: columnar segment scan. The access
          // path (the zone-map-pruned segment list) comes from the cached
          // plan when present, is computed here otherwise, and is recorded
          // into the plan being built. Batch-precomputed shared results
          // short-circuit the scan entirely.
          plan.columnar_scan = true;
          if (shared != nullptr) {
            auto it = shared->find(idx);
            if (it != shared->end()) plan.shared = &it->second;
          }
          if (plan.shared == nullptr) {
            if (pre.cached != nullptr) {
              auto it = pre.cached->scan_segments.find(idx);
              if (it != pre.cached->scan_segments.end()) {
                plan.scan_segments = &it->second;
              }
            }
            if (plan.scan_segments == nullptr) {
              std::vector<uint32_t> pruned =
                  rel_->event_segments().PruneByWindow(p.window_start,
                                                       p.window_end);
              if (pre.fresh != nullptr) {
                // unordered_map nodes are stable; the pointer survives.
                auto& slot = pre.fresh->scan_segments[idx];
                slot = std::move(pruned);
                plan.scan_segments = &slot;
              } else {
                plan.owned_segments = std::move(pruned);
                plan.scan_segments = &plan.owned_segments;
              }
            }
          }
        }
      }
    }

    // Wave-level shared scan: two or more members of this wave running
    // unconstrained columnar scans share one segment pass. Their outputs
    // are per-member (and per-operation) buckets, so each member's matches
    // are byte-identical to a private scan; only wall-clock changes.
    std::vector<SharedScanResult> wave_shared;
    if (multi) {
      std::vector<size_t> shared_members;
      for (size_t j = 0; j < wave_size; ++j) {
        if (!plans[j].skip && plans[j].columnar_scan &&
            plans[j].shared == nullptr) {
          shared_members.push_back(j);
        }
      }
      if (shared_members.size() >= 2) {
        static obs::Histogram* shared_hist =
            obs::Registry::Default().GetHistogram(
                "raptor_shared_scan_patterns",
                "Patterns served per shared segment scan",
                obs::ExponentialBuckets(1.0, 2.0, 8));
        std::vector<rel::EventSegmentStore::OpScanProbe> probes;
        probes.reserve(shared_members.size());
        for (size_t j : shared_members) {
          const tbql::Pattern& p = *plans[j].p;
          rel::EventSegmentStore::OpScanProbe probe;
          probe.ops.reserve(p.op.ops.size());
          for (Operation op : p.op.ops) {
            probe.ops.push_back(static_cast<int64_t>(op));
          }
          probe.window_start = p.window_start;
          probe.window_end = p.window_end;
          probe.segments = plans[j].scan_segments;
          probes.push_back(std::move(probe));
        }
        std::function<bool()> stop = [&] { return deadline_exceeded(); };
        std::vector<std::vector<rel::EventRecord>> outs;
        std::vector<rel::SegmentProbeStats> pstats;
        bool complete = rel_->event_segments().SharedOpScan(
            probes, options.deadline_ms > 0 ? &stop : nullptr, &outs,
            &pstats);
        wave_shared.resize(shared_members.size());
        for (size_t k = 0; k < shared_members.size(); ++k) {
          wave_shared[k].records = std::move(outs[k]);
          wave_shared[k].stats = pstats[k];
          wave_shared[k].complete = complete;
          plans[shared_members[k]].shared = &wave_shared[k];
        }
        shared_hist->Observe(static_cast<double>(shared_members.size()));
      }
    }

    std::atomic<uint64_t> wave_edges{committed_graph_edges};

    auto run_member = [&](size_t j, ThreadPool* member_pool) {
      const MemberPlan& plan = plans[j];
      MemberRun& run = runs[j];
      obs::Span span =
          tracer.StartSpan(plan.p->is_path ? "graph_search" : "scan");
      auto m0 = std::chrono::steady_clock::now();
      if (!plan.skip) {
        if (plan.p->is_path) {
          run_path_member(plan, member_pool, multi ? &wave_edges : nullptr,
                          &run);
        } else {
          run_event_member(plan, member_pool, &run);
        }
      }
      if (span.active()) {
        span.SetAttr("pattern", plan.p->id);
        span.SetAttr("backend", std::string_view(plan.p->is_path
                                                     ? "graph"
                                                     : "relational"));
        span.SetAttr("pruning_score", scores[plan.pattern_index]);
        span.SetAttr("constrained", plan.constrained);
        span.SetAttr("matches", static_cast<int64_t>(run.matches.size()));
      }
      span.End();
      run.ms = std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - m0)
                   .count();
    };

    if (!multi) {
      // Singleton wave: the pattern runs on this thread and may use the
      // whole pool internally (partitioned probes, per-source search).
      run_member(0, pool);
    } else {
      pool->ParallelFor(
          wave_size, 1,
          [&](size_t, size_t begin, size_t end) {
            for (size_t j = begin; j < end; ++j) run_member(j, nullptr);
          },
          std::min(threads, wave_size));
    }

    // Serial commit in schedule order. Speculative work a budget should
    // have stopped is discarded or replayed with the exact remaining
    // budget, so the committed result never depends on scheduling luck.
    for (size_t j = 0; j < wave_size; ++j) {
      if (result.truncated) break;
      MemberPlan& plan = plans[j];
      MemberRun& run = runs[j];
      const tbql::Pattern& p = *plan.p;
      if (multi && p.is_path && options.max_graph_edges != 0) {
        if (committed_graph_edges >= options.max_graph_edges) {
          rel::TableStats planned = run.rel_stats;
          double spent_ms = run.ms;
          run = MemberRun{};
          run.rel_stats = planned;
          run.ms = spent_ms;
          run.trunc_code = "max_graph_edges";
          run.trunc_reason = before_pattern_reason(p);
        } else if (run.trunc_code == "max_graph_edges" ||
                   committed_graph_edges + run.graph_edges >
                       options.max_graph_edges) {
          MemberRun redo;
          redo.rel_stats = run.rel_stats;
          redo.ms = run.ms;
          plan.exact_graph_budget = true;
          plan.local_max_edges =
              options.max_graph_edges - committed_graph_edges;
          run_path_member(plan, nullptr, nullptr, &redo);
          run = std::move(redo);
        }
      }
      result.stats.per_pattern_ms.push_back(run.ms);
      result.stats.schedule.push_back(p.id);
      result.stats.matches_per_pattern.push_back(run.matches.size());
      result.stats.pattern_scores.push_back(scores[plan.pattern_index]);
      result.stats.pattern_used_graph.push_back(p.is_path);
      result.stats.pattern_was_constrained.push_back(plan.constrained);
      const uint64_t step_rel_rows = run.rel_stats.rows_scanned +
                                     run.rel_stats.rows_from_index +
                                     run.seg_stats.rows_scanned;
      const uint64_t step_bytes =
          run.rel_stats.bytes_touched +
          run.seg_stats.rows_scanned * rel::EventSegmentStore::kApproxRowBytes +
          run.graph_edges * sizeof(graph::GraphEdge);
      result.stats.pattern_rows_examined.push_back(step_rel_rows +
                                                   run.graph_edges);
      result.stats.pattern_bytes_touched.push_back(step_bytes);
      result.stats.pattern_index_probes.push_back(run.rel_stats.index_probes +
                                                  run.seg_stats.probes);
      result.stats.pattern_full_scans.push_back(run.rel_stats.full_scans);
      result.stats.pattern_segments_scanned.push_back(
          run.seg_stats.segments_scanned);
      result.stats.pattern_segments_pruned.push_back(
          run.seg_stats.segments_pruned());
      if (run.used_shared) ++result.stats.shared_scan_patterns;
      {
        static obs::Counter* pruned_zone = obs::Registry::Default().GetCounter(
            "raptor_segments_pruned_total",
            "Columnar segments skipped before reading row data, by reason",
            {{"reason", "zone_map"}});
        static obs::Counter* pruned_bloom = obs::Registry::Default().GetCounter(
            "raptor_segments_pruned_total",
            "Columnar segments skipped before reading row data, by reason",
            {{"reason", "bloom"}});
        pruned_zone->Increment(run.seg_stats.segments_pruned_zone);
        pruned_bloom->Increment(run.seg_stats.segments_pruned_bloom);
      }
      if (estimate) {
        static obs::Histogram* qerror_hist =
            obs::Registry::Default().GetHistogram(
                "raptor_estimate_qerror",
                "q-error of per-pattern cardinality estimates "
                "(max(est,actual)/min(est,actual), floored at 1)",
                obs::ExponentialBuckets(1.0, 2.0, 12));
        const double est = est_by_pattern[plan.pattern_index];
        const double qerr =
            QError(est, static_cast<double>(run.matches.size()));
        result.stats.pattern_est_rows.push_back(est);
        result.stats.pattern_q_error.push_back(qerr);
        qerror_hist->Observe(qerr);
      }
      committed_graph_edges += run.graph_edges;
      committed_rel_rows += step_rel_rows;
      committed_bytes += step_bytes;
      obs::Logger::Default()
          .Log(obs::LogLevel::kDebug, "engine", "pattern scheduled")
          .Field("pattern", p.id)
          .Field("backend",
                 std::string_view(p.is_path ? "graph" : "relational"))
          .Field("pruning_score", scores[plan.pattern_index])
          .Field("constrained", plan.constrained)
          .Field("matches", static_cast<uint64_t>(run.matches.size()))
          .Field("ms", run.ms);
      if (options.propagate_constraints) {
        Binding subj_seen, obj_seen;
        for (const PatternMatch& m : run.matches) {
          subj_seen.insert(m.subject);
          obj_seen.insert(m.object);
        }
        bindings[p.subject.id] = std::move(subj_seen);
        bindings[p.object.id] = std::move(obj_seen);
      }
      int64_t match_bytes = 0;
      for (const PatternMatch& m : run.matches) {
        match_bytes += static_cast<int64_t>(sizeof(PatternMatch) +
                                            m.events.size() * sizeof(EventId));
      }
      mem_scope.Charge(match_bytes);
      PatternExecution exec;
      exec.pattern = &p;
      exec.matches = std::move(run.matches);
      executions.push_back(std::move(exec));
      ++committed_patterns;
      if (!run.trunc_code.empty()) {
        truncate(run.trunc_code, std::move(run.trunc_reason));
      }
    }
  }

  // --- Consistency join over pattern matches. ---
  // Join in ascending match-count order: small match sets first prune the
  // backtracking tree fastest. (Pure optimization; any order yields the
  // same rows, which the fuzz suite asserts.)
  std::stable_sort(executions.begin(), executions.end(),
                   [](const PatternExecution& a, const PatternExecution& b) {
                     return a.matches.size() < b.matches.size();
                   });
  std::map<std::string, EntityId> assignment;
  std::map<std::string, PatternMatch> chosen;
  Status join_status = Status::OK();

  // Temporal and attribute-relationship constraints, checked on each fully
  // assembled row.
  // Constraints whose patterns a tripped budget skipped are vacuously
  // satisfied — a truncated result joins only the patterns that executed.
  auto temporal_ok = [&](const std::map<std::string, PatternMatch>& evts) {
    for (const tbql::TemporalConstraint& tc : query.temporal) {
      auto a = evts.find(tc.first);
      auto b = evts.find(tc.second);
      if (a == evts.end() || b == evts.end()) continue;
      if (!(a->second.start_time < b->second.start_time)) return false;
    }
    for (const tbql::AttrRelationship& rel : query.attr_relationships) {
      auto a = evts.find(rel.first_pattern);
      auto b = evts.find(rel.second_pattern);
      if (a == evts.end() || b == evts.end()) continue;
      EntityId first = rel.first_is_subject ? a->second.subject
                                            : a->second.object;
      EntityId second = rel.second_is_subject ? b->second.subject
                                              : b->second.object;
      if (first != second) return false;
    }
    return true;
  };

  size_t count = 0;
  uint64_t join_steps = 0;
  bool join_aborted = false;
  std::function<void(size_t)> join = [&](size_t depth) {
    if (!join_status.ok() || count >= row_cap || join_aborted) return;
    // The backtracking join can explode combinatorially; poll the deadline
    // every few thousand steps and keep the rows assembled so far.
    if ((++join_steps & 0xFFF) == 0 && deadline_exceeded()) {
      truncate("deadline",
               StrFormat("deadline of %llu ms exceeded during the "
                         "consistency join",
                         static_cast<unsigned long long>(options.deadline_ms)));
      join_aborted = true;
      return;
    }
    if (depth == executions.size()) {
      if (!temporal_ok(chosen)) return;
      ++count;
      if (query.return_count) return;  // only the count is materialized
      result.bindings.push_back(assignment);
      result.matches.push_back(chosen);
      std::vector<std::string> row;
      for (const tbql::ReturnItem& item : query.returns) {
        auto it = assignment.find(item.entity_id);
        if (it == assignment.end()) {
          row.push_back("?");
          continue;
        }
        row.push_back(
            EntityAttrValue(log_->entity(it->second), item.attr).ToString());
      }
      result.rows.push_back(std::move(row));
      return;
    }
    const PatternExecution& exec = executions[depth];
    const std::string& subj_id = exec.pattern->subject.id;
    const std::string& obj_id = exec.pattern->object.id;
    for (const PatternMatch& m : exec.matches) {
      auto s_it = assignment.find(subj_id);
      if (s_it != assignment.end() && s_it->second != m.subject) continue;
      auto o_it = assignment.find(obj_id);
      if (o_it != assignment.end() && o_it->second != m.object) continue;
      bool new_s = s_it == assignment.end();
      bool new_o = o_it == assignment.end();
      if (new_s) assignment[subj_id] = m.subject;
      if (new_o) assignment[obj_id] = m.object;
      chosen[exec.pattern->id] = m;
      join(depth + 1);
      chosen.erase(exec.pattern->id);
      if (new_s) assignment.erase(subj_id);
      if (new_o) assignment.erase(obj_id);
    }
  };
  {
    obs::Span join_span = tracer.StartSpan("join");
    join(0);
    if (join_span.active()) {
      join_span.SetAttr("rows", static_cast<int64_t>(count));
    }
  }
  RAPTOR_RETURN_NOT_OK(join_status);
  // Hitting the safety row cap truncates; hitting a user-written LIMIT is
  // the requested behavior, not truncation.
  bool cap_is_user_limit = query.limit && *query.limit <= options.max_rows;
  if (count >= row_cap && !cap_is_user_limit) {
    truncate("row_cap", StrFormat("row cap (%zu) reached", row_cap));
  }
  if (query.return_count) {
    result.rows.push_back({std::to_string(count)});
  }

  {
    int64_t row_bytes = 0;
    for (const auto& row : result.rows) {
      row_bytes += static_cast<int64_t>(sizeof(row));
      for (const std::string& cell : row) {
        row_bytes += static_cast<int64_t>(sizeof(cell) + cell.size());
      }
    }
    mem_scope.Charge(row_bytes);
  }

  // Committed per-pattern sums, not the live backend counters: these are
  // deterministic at any thread count (speculative work the commit loop
  // discarded is excluded) and unaffected by concurrent executions.
  result.stats.relational_rows_touched = committed_rel_rows;
  result.stats.graph_edges_traversed = committed_graph_edges;
  result.stats.bytes_touched = committed_bytes;
  result.stats.intermediate_result_bytes =
      static_cast<uint64_t>(mem_scope.charged());
  // Publish the freshly built plan (schedule, estimates, access paths).
  // Patterns a budget stopped before planning stay absent from
  // scan_segments and are filled in by a later execution.
  if (pre.fresh != nullptr) plan_cache_->Insert(pre.key, pre.fresh);
  result.stats.total_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  query_ms->Observe(result.stats.total_ms);
  if (std::optional<obs::Trace> trace = trace_scope.Finish()) {
    result.profile = obs::AggregateProfile(*trace);
  }
  return result;
}

std::vector<EventId> QueryResult::MatchedEvents() const {
  std::unordered_set<EventId> seen;
  std::vector<EventId> out;
  for (const auto& row : matches) {
    for (const auto& [pattern_id, match] : row) {
      for (EventId ev : match.events) {
        if (seen.insert(ev).second) out.push_back(ev);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string QueryResult::ToString() const {
  std::string out = Join(columns, " | ") + "\n";
  for (const auto& row : rows) {
    out += Join(row, " | ") + "\n";
  }
  return out;
}

}  // namespace raptor::engine
