#include "synthesis/synthesizer.h"

#include <algorithm>
#include <map>
#include <set>
#include <tuple>

#include "common/fault_injection.h"
#include "common/strings.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "synthesis/rules.h"
#include "tbql/analyzer.h"

namespace raptor::synth {

using audit::EntityType;

namespace {

/// Stable key for "this graph node used as this entity type". A Filepath
/// IOC that appears both as a subject (process) and as an object (file)
/// denotes two different system entities and gets two TBQL ids.
using EntityKey = std::pair<int, EntityType>;

tbql::EntityRef MakeEntity(const nlp::IocEntity& ioc, EntityType type,
                           const std::string& id,
                           const SynthesisPlan& plan) {
  tbql::EntityRef e;
  e.type = type;
  e.id = id;
  tbql::AttrFilter f;
  f.is_string = true;
  switch (type) {
    case EntityType::kProcess:
      // Report authors write "tar" or "/bin/tar" interchangeably; match the
      // executable path by substring.
      f.attr = "exename";
      f.op = rel::CompareOp::kLike;
      f.string_value = "%" + ioc.text + "%";
      break;
    case EntityType::kFile:
      f.attr = "name";
      if (plan.like_match_files) {
        f.op = rel::CompareOp::kLike;
        f.string_value = "%" + ioc.text + "%";
      } else {
        f.op = rel::CompareOp::kEq;
        f.string_value = ioc.text;
      }
      break;
    case EntityType::kNetwork:
      f.attr = "dstip";
      f.op = rel::CompareOp::kEq;
      f.string_value = ioc.text;
      break;
  }
  e.filters.push_back(std::move(f));
  return e;
}

}  // namespace

Result<SynthesisResult> QuerySynthesizer::Synthesize(
    const nlp::ThreatBehaviorGraph& graph) const {
  RAPTOR_RETURN_NOT_OK(TriggerFaultPoint("synthesis.synthesize"));
  static obs::Counter* syntheses_total = obs::Registry::Default().GetCounter(
      "raptor_syntheses_total", "Behavior graphs run through TBQL synthesis");
  static obs::Counter* patterns_total = obs::Registry::Default().GetCounter(
      "raptor_patterns_synthesized_total",
      "TBQL patterns emitted by the synthesizer");
  syntheses_total->Increment();
  obs::Span span = obs::Tracer::Default().StartSpan("synthesize");

  SynthesisResult result;

  // (1) Screening: keep only nodes whose IOC type auditing captures.
  std::vector<bool> node_ok(graph.num_nodes(), false);
  for (const nlp::IocEntity& n : graph.nodes()) {
    if (IsAuditableIocType(n.type)) {
      node_ok[static_cast<size_t>(n.id)] = true;
    } else {
      result.screened_nodes.push_back(n.id);
    }
  }

  // (2)-(3) Map edges and synthesize patterns in sequence order.
  std::vector<nlp::BehaviorEdge> edges = graph.edges();
  std::sort(edges.begin(), edges.end(),
            [](const nlp::BehaviorEdge& a, const nlp::BehaviorEdge& b) {
              return a.sequence < b.sequence;
            });

  std::map<EntityKey, std::string> entity_ids;
  size_t proc_count = 0, file_count = 0, net_count = 0;
  auto entity_id_for = [&](int node, EntityType type) {
    // Processes and files reuse one TBQL id per graph node: the same
    // executable or path is the same system entity, and the shared id is
    // exactly the paper's implicit-join sugar. Network connections do NOT:
    // every flow to an IP is a distinct connection entity (distinct source
    // port), so each network pattern gets a fresh id and the dstip filter
    // carries the IOC constraint.
    if (type == EntityType::kNetwork) {
      return StrFormat("n%zu", ++net_count);
    }
    EntityKey key{node, type};
    auto it = entity_ids.find(key);
    if (it != entity_ids.end()) return it->second;
    std::string id;
    switch (type) {
      case EntityType::kProcess:
        id = StrFormat("p%zu", ++proc_count);
        break;
      case EntityType::kFile:
        id = StrFormat("f%zu", ++file_count);
        break;
      default:
        break;
    }
    entity_ids.emplace(key, id);
    return id;
  };

  tbql::Query query;
  std::string prev_pattern_id;
  // Dedup: distinct behavior edges can map to the same system-level pattern
  // (e.g. "read the archive" and "send the archive" both become p read f);
  // a duplicate pattern would break the strict temporal order.
  std::set<std::tuple<std::string, std::string, std::string>> synthesized;
  for (size_t i = 0; i < edges.size(); ++i) {
    const nlp::BehaviorEdge& edge = edges[i];
    if (!node_ok[static_cast<size_t>(edge.src)] ||
        !node_ok[static_cast<size_t>(edge.dst)]) {
      continue;  // endpoint screened out
    }
    const nlp::IocEntity& src = graph.node(edge.src);
    const nlp::IocEntity& dst = graph.node(edge.dst);
    std::optional<MappedRelation> mapped =
        MapRelation(edge.verb, src.type, dst.type);
    if (!mapped) {
      result.unmapped_edges.push_back(static_cast<int>(i));
      continue;
    }

    std::string subj_id = entity_id_for(edge.src, EntityType::kProcess);
    std::string obj_id = entity_id_for(edge.dst, mapped->object_type);
    std::string op_name(audit::OperationName(mapped->op));
    if (!synthesized.insert({subj_id, op_name, obj_id}).second) continue;

    tbql::Pattern p;
    p.id = StrFormat("evt%zu", query.patterns.size() + 1);
    p.subject = MakeEntity(src, EntityType::kProcess, subj_id, plan_);
    p.object = MakeEntity(dst, mapped->object_type, obj_id, plan_);
    p.op.names.push_back(op_name);

    // User-defined plan: tolerate omitted intermediate processes with a
    // variable-length path pattern (never for process events — a fork edge
    // is already the chaining step itself).
    if (plan_.use_path_patterns &&
        audit::CategoryOf(mapped->op) != audit::EventCategory::kProcessEvent) {
      p.is_path = true;
      p.min_hops = plan_.path_min_hops;
      p.max_hops = plan_.path_max_hops;
    }
    if (plan_.window) {
      p.window_start = plan_.window->first;
      p.window_end = plan_.window->second;
    }

    // (4) Temporal order follows the edge sequence numbers.
    if (!prev_pattern_id.empty()) {
      query.temporal.push_back(tbql::TemporalConstraint{prev_pattern_id, p.id});
    }
    prev_pattern_id = p.id;
    query.patterns.push_back(std::move(p));
  }

  if (!result.screened_nodes.empty() || !result.unmapped_edges.empty()) {
    obs::Logger::Default()
        .Log(obs::LogLevel::kWarn, "synthesis",
             "behavior graph partially mapped")
        .Field("screened_nodes",
               static_cast<uint64_t>(result.screened_nodes.size()))
        .Field("unmapped_edges",
               static_cast<uint64_t>(result.unmapped_edges.size()));
  }

  if (query.patterns.empty()) {
    obs::Logger::Default()
        .Log(obs::LogLevel::kError, "synthesis", "no mappable threat behavior")
        .Field("nodes", static_cast<uint64_t>(graph.num_nodes()))
        .Field("edges", static_cast<uint64_t>(edges.size()));
    return Status::NotFound(
        "no mappable threat behavior: every edge was screened out or had no "
        "relation mapping rule");
  }

  // (5) Return clause: all entity ids (the analyzer expands the default
  // attributes).
  RAPTOR_RETURN_NOT_OK(tbql::Analyze(&query));
  patterns_total->Increment(query.patterns.size());
  if (span.active()) {
    span.SetAttr("patterns", static_cast<int64_t>(query.patterns.size()));
    span.SetAttr("screened_nodes",
                 static_cast<int64_t>(result.screened_nodes.size()));
  }
  obs::Logger::Default()
      .Log(obs::LogLevel::kInfo, "synthesis", "query synthesized")
      .Field("patterns", static_cast<uint64_t>(query.patterns.size()))
      .Field("temporal_constraints",
             static_cast<uint64_t>(query.temporal.size()));
  result.query = std::move(query);
  return result;
}

}  // namespace raptor::synth
