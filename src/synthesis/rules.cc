#include "synthesis/rules.h"

#include <string>
#include <unordered_map>
#include <unordered_set>

namespace raptor::synth {

using audit::EntityType;
using audit::Operation;
using nlp::IocType;

bool IsAuditableIocType(IocType type) {
  switch (type) {
    case IocType::kFilepath:
    case IocType::kFilename:
    case IocType::kIp:
      return true;
    default:
      return false;
  }
}

namespace {

bool IsFileLike(IocType t) {
  return t == IocType::kFilepath || t == IocType::kFilename;
}

const std::unordered_set<std::string>& VerbSet(const char* const* begin,
                                               size_t count) {
  // Helper to build static sets in the tables below.
  static std::unordered_map<const char* const*, std::unordered_set<std::string>>
      cache;
  auto it = cache.find(begin);
  if (it == cache.end()) {
    std::unordered_set<std::string> s;
    for (size_t i = 0; i < count; ++i) s.insert(begin[i]);
    it = cache.emplace(begin, std::move(s)).first;
  }
  return it->second;
}

#define VERB_SET(name, ...)                                        \
  bool name(const std::string& v) {                                \
    static const char* const kWords[] = {__VA_ARGS__};             \
    return VerbSet(kWords, sizeof(kWords) / sizeof(kWords[0]))     \
        .count(v) > 0;                                             \
  }

VERB_SET(IsReadVerb, "read", "scan", "open", "access", "load", "collect",
         "harvest", "steal", "parse", "extract")
VERB_SET(IsWriteVerb, "write", "download", "create", "drop", "save", "store",
         "modify", "append", "overwrite", "dump", "archive", "compress",
         "encrypt", "decrypt", "encode", "decode", "pack", "place", "install",
         "embed", "put", "copy")
VERB_SET(IsExecVerb, "execute", "run", "launch", "invoke")
VERB_SET(IsForkVerb, "fork", "spawn", "start")
VERB_SET(IsDeleteVerb, "delete", "remove", "wipe", "unlink")
VERB_SET(IsRenameVerb, "rename", "move")
VERB_SET(IsChmodVerb, "chmod")
VERB_SET(IsConnectVerb, "connect", "communicate", "beacon", "contact",
         "establish", "resolve", "query", "request")
VERB_SET(IsSendVerb, "send", "upload", "transfer", "exfiltrate", "leak",
         "post")
VERB_SET(IsRecvVerb, "receive", "fetch", "retrieve", "download")
VERB_SET(IsKillVerb, "kill", "terminate", "stop")

#undef VERB_SET

}  // namespace

std::optional<MappedRelation> MapRelation(std::string_view verb_sv,
                                          IocType subject_type,
                                          IocType object_type) {
  // Subjects synthesize to processes, so only file-like subjects (the
  // process's executable) are mappable.
  if (!IsFileLike(subject_type)) return std::nullopt;
  std::string verb(verb_sv);

  if (IsFileLike(object_type)) {
    // Process-creating verbs turn the file object into a process entity.
    if (IsForkVerb(verb)) {
      return MappedRelation{Operation::kFork, EntityType::kProcess};
    }
    if (IsKillVerb(verb)) {
      return MappedRelation{Operation::kKill, EntityType::kProcess};
    }
    if (IsExecVerb(verb)) {
      return MappedRelation{Operation::kExecute, EntityType::kFile};
    }
    if (IsReadVerb(verb)) {
      return MappedRelation{Operation::kRead, EntityType::kFile};
    }
    if (IsWriteVerb(verb)) {
      return MappedRelation{Operation::kWrite, EntityType::kFile};
    }
    if (IsDeleteVerb(verb)) {
      return MappedRelation{Operation::kDelete, EntityType::kFile};
    }
    if (IsRenameVerb(verb)) {
      return MappedRelation{Operation::kRename, EntityType::kFile};
    }
    if (IsChmodVerb(verb)) {
      return MappedRelation{Operation::kChmod, EntityType::kFile};
    }
    // "send the archive": a file object of a send verb is a read (the
    // process reads the file before shipping it out).
    if (IsSendVerb(verb)) {
      return MappedRelation{Operation::kRead, EntityType::kFile};
    }
    return std::nullopt;
  }

  if (object_type == IocType::kIp) {
    if (IsSendVerb(verb)) {
      return MappedRelation{Operation::kSend, EntityType::kNetwork};
    }
    if (IsRecvVerb(verb)) {
      return MappedRelation{Operation::kRecv, EntityType::kNetwork};
    }
    if (IsConnectVerb(verb)) {
      return MappedRelation{Operation::kConnect, EntityType::kNetwork};
    }
    // Reads/writes against a remote address are traffic.
    if (IsReadVerb(verb)) {
      return MappedRelation{Operation::kRecv, EntityType::kNetwork};
    }
    if (IsWriteVerb(verb)) {
      return MappedRelation{Operation::kSend, EntityType::kNetwork};
    }
    return std::nullopt;
  }

  return std::nullopt;
}

}  // namespace raptor::synth
