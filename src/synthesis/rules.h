// Relation-to-operation mapping rules for TBQL query synthesis (paper
// §II-E): each threat-behavior-graph edge's natural-language relation verb
// is mapped to a TBQL operation according to the verb and the IOC types of
// its endpoints (e.g. the "download" relation between two Filepath IOCs
// maps to the "write" operation — a process writes the downloaded data to
// a file).

#pragma once

#include <optional>
#include <string_view>

#include "audit/types.h"
#include "nlp/ioc.h"

namespace raptor::synth {

/// \brief Result of mapping one IOC relation.
struct MappedRelation {
  audit::Operation op;
  /// Entity type the object IOC synthesizes to. Usually follows the
  /// operation category, but e.g. a "fork"-like verb turns a Filepath
  /// object into a process entity.
  audit::EntityType object_type;
};

/// IOC types the system auditing component captures (screening keeps only
/// nodes of these types; paper §II-E "starts with a screening").
bool IsAuditableIocType(nlp::IocType type);

/// Maps (relation verb lemma, subject IOC type, object IOC type) to a TBQL
/// operation, or nullopt when no rule applies (the edge is skipped).
std::optional<MappedRelation> MapRelation(std::string_view verb,
                                          nlp::IocType subject_type,
                                          nlp::IocType object_type);

}  // namespace raptor::synth
