// TBQL query synthesis from a threat behavior graph (paper §II-E).
//
// Steps: (1) screen out nodes whose IOC types auditing does not capture;
// (2) map each remaining edge's relation verb to a TBQL operation;
// (3) synthesize subject/object entities from the edge endpoints (subjects
// are processes with an exename filter, objects follow the mapped type);
// (4) synthesize the with clause from edge sequence numbers; (5) synthesize
// the return clause from all entity ids. User-defined plans synthesize
// other patterns (path patterns) and attributes (time windows).

#pragma once

#include <optional>
#include <utility>
#include <vector>

#include "audit/types.h"
#include "common/result.h"
#include "nlp/behavior_graph.h"
#include "tbql/ast.h"

namespace raptor::synth {

/// \brief A synthesis plan. The default plan emits one basic event pattern
/// per edge; the knobs implement the paper's user-defined plans.
struct SynthesisPlan {
  /// Emit variable-length path patterns instead of single-hop event
  /// patterns for file/network edges, tolerating intermediate processes
  /// that the report's author omitted (paper §II-D motivation).
  bool use_path_patterns = false;
  size_t path_min_hops = 1;
  size_t path_max_hops = 3;

  /// Optional time window attached to every synthesized pattern.
  std::optional<std::pair<audit::Timestamp, audit::Timestamp>> window;

  /// Match file names with a substring LIKE ("%/tmp/data.tar%") rather than
  /// exactly. Process exenames always match with LIKE (report authors write
  /// "tar" or "/bin/tar" interchangeably).
  bool like_match_files = false;
};

/// \brief Synthesis output plus a record of what screening dropped.
struct SynthesisResult {
  tbql::Query query;
  std::vector<int> screened_nodes;  ///< Node ids dropped by type screening.
  std::vector<int> unmapped_edges;  ///< Edge indexes with no mapping rule.
};

/// \brief Synthesizes TBQL queries from threat behavior graphs.
class QuerySynthesizer {
 public:
  explicit QuerySynthesizer(SynthesisPlan plan = {}) : plan_(plan) {}

  /// Synthesizes a query; fails with NotFound when no edge is mappable.
  /// The returned query is already analyzed (sugar expanded).
  Result<SynthesisResult> Synthesize(
      const nlp::ThreatBehaviorGraph& graph) const;

  const SynthesisPlan& plan() const { return plan_; }

 private:
  SynthesisPlan plan_;
};

}  // namespace raptor::synth
