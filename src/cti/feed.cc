#include "cti/feed.h"

#include <algorithm>

#include "common/json.h"
#include "common/strings.h"
#include "synthesis/rules.h"
#include "tbql/analyzer.h"

namespace raptor::cti {

namespace {

/// Parses one STIX comparison pattern "[<object-path> = '<value>']".
Result<Indicator> ParsePattern(const std::string& pattern) {
  std::string_view s = Trim(pattern);
  if (s.size() < 2 || s.front() != '[' || s.back() != ']') {
    return Status::ParseError("STIX pattern must be bracketed: " + pattern);
  }
  s = Trim(s.substr(1, s.size() - 2));
  size_t eq = s.find('=');
  if (eq == std::string_view::npos) {
    return Status::ParseError("STIX pattern has no comparison: " + pattern);
  }
  std::string path = ToLower(Trim(s.substr(0, eq)));
  std::string_view value_sv = Trim(s.substr(eq + 1));
  if (value_sv.size() < 2 || value_sv.front() != '\'' ||
      value_sv.back() != '\'') {
    return Status::ParseError("STIX pattern value must be quoted: " + pattern);
  }
  Indicator indicator;
  indicator.value = std::string(value_sv.substr(1, value_sv.size() - 2));

  if (path == "file:name" || path == "file:path") {
    indicator.type = StartsWith(indicator.value, "/") ||
                             indicator.value.find(":\\") != std::string::npos
                         ? nlp::IocType::kFilepath
                         : nlp::IocType::kFilename;
  } else if (path == "process:name") {
    indicator.type = nlp::IocType::kFilepath;
  } else if (path == "ipv4-addr:value") {
    indicator.type = nlp::IocType::kIp;
  } else if (path == "domain-name:value") {
    indicator.type = nlp::IocType::kDomain;
  } else if (path == "url:value") {
    indicator.type = nlp::IocType::kUrl;
  } else if (StartsWith(path, "file:hashes.")) {
    std::string alg = ToLower(ReplaceAll(path.substr(12), "'", ""));
    if (alg == "md5") {
      indicator.type = nlp::IocType::kHashMd5;
    } else if (alg == "sha-1" || alg == "sha1") {
      indicator.type = nlp::IocType::kHashSha1;
    } else {
      indicator.type = nlp::IocType::kHashSha256;
    }
  } else {
    return Status::Unsupported("unsupported STIX object path: " + path);
  }
  return indicator;
}

}  // namespace

Result<std::vector<Indicator>> ParseStixBundle(std::string_view json_text) {
  RAPTOR_ASSIGN_OR_RETURN(Json bundle, Json::Parse(json_text));
  if (bundle["type"].AsString() != "bundle") {
    return Status::InvalidArgument("not a STIX bundle (type != 'bundle')");
  }
  if (!bundle["objects"].is_array()) {
    return Status::InvalidArgument("bundle has no 'objects' array");
  }
  std::vector<Indicator> indicators;
  for (const Json& object : bundle["objects"].AsArray()) {
    if (object["type"].AsString() != "indicator") continue;
    if (!object["pattern"].is_string()) {
      return Status::InvalidArgument("indicator without a pattern");
    }
    RAPTOR_ASSIGN_OR_RETURN(Indicator indicator,
                            ParsePattern(object["pattern"].AsString()));
    indicator.id = object["id"].AsString();
    indicator.name = object["name"].AsString();
    indicators.push_back(std::move(indicator));
  }
  return indicators;
}

std::vector<Indicator> IndicatorsFromText(
    std::string_view text, const nlp::IocRecognizer& recognizer) {
  std::vector<Indicator> indicators;
  for (const nlp::IocSpan& span : recognizer.Recognize(text)) {
    bool seen = std::any_of(indicators.begin(), indicators.end(),
                            [&](const Indicator& i) {
                              return i.type == span.type &&
                                     i.value == span.text;
                            });
    if (seen) continue;
    Indicator indicator;
    indicator.type = span.type;
    indicator.value = span.text;
    indicators.push_back(std::move(indicator));
  }
  return indicators;
}

std::vector<tbql::Query> SynthesizeIocQueries(
    const std::vector<Indicator>& indicators) {
  std::vector<tbql::Query> queries;
  for (const Indicator& indicator : indicators) {
    if (!synth::IsAuditableIocType(indicator.type)) continue;

    tbql::Query query;
    tbql::Pattern p;
    p.id = "evt1";
    p.subject.type = audit::EntityType::kProcess;
    p.subject.id = "p";

    tbql::AttrFilter filter;
    filter.is_string = true;
    if (indicator.type == nlp::IocType::kIp) {
      p.object.type = audit::EntityType::kNetwork;
      p.object.id = "n";
      filter.attr = "dstip";
      filter.op = rel::CompareOp::kEq;
      filter.string_value = indicator.value;
      p.op.names = {"connect", "send", "recv"};
    } else {
      p.object.type = audit::EntityType::kFile;
      p.object.id = "f";
      filter.attr = "name";
      filter.op = rel::CompareOp::kLike;
      filter.string_value = "%" + indicator.value + "%";
      p.op.names = {"read", "write", "execute", "delete"};
    }
    p.object.filters.push_back(std::move(filter));
    query.patterns.push_back(std::move(p));
    if (!tbql::Analyze(&query).ok()) continue;  // defensive; cannot fail
    queries.push_back(std::move(query));
  }
  return queries;
}

std::string ToStixBundle(const std::vector<Indicator>& indicators) {
  Json::Array objects;
  size_t counter = 0;
  for (const Indicator& indicator : indicators) {
    std::string path;
    std::string value = indicator.value;
    switch (indicator.type) {
      case nlp::IocType::kFilepath:
      case nlp::IocType::kFilename:
        path = "file:name";
        break;
      case nlp::IocType::kIp:
        path = "ipv4-addr:value";
        break;
      case nlp::IocType::kDomain:
        path = "domain-name:value";
        break;
      case nlp::IocType::kUrl:
        path = "url:value";
        break;
      case nlp::IocType::kHashMd5:
        path = "file:hashes.'MD5'";
        break;
      case nlp::IocType::kHashSha1:
        path = "file:hashes.'SHA-1'";
        break;
      case nlp::IocType::kHashSha256:
        path = "file:hashes.'SHA-256'";
        break;
      default:
        continue;  // no STIX mapping (registry, CVE)
    }
    Json::Object object;
    object["type"] = "indicator";
    object["id"] = indicator.id.empty()
                       ? StrFormat("indicator--%zu", ++counter)
                       : indicator.id;
    if (!indicator.name.empty()) object["name"] = indicator.name;
    std::string pattern = "[";
    pattern += path;
    pattern += " = '";
    pattern += value;
    pattern += "']";
    object["pattern"] = std::move(pattern);
    objects.push_back(Json(std::move(object)));
  }
  Json::Object bundle;
  bundle["type"] = "bundle";
  bundle["objects"] = Json(std::move(objects));
  return Json(std::move(bundle)).Dump(2);
}

}  // namespace raptor::cti
