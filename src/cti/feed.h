// Structured OSCTI feed ingestion (paper §I).
//
// The paper motivates ThreatRaptor by contrasting structured OSCTI feeds —
// STIX-style lists of isolated Indicators of Compromise — with the
// connected, multi-step threat behavior extractable from unstructured
// reports: "these disconnected IOCs lack the capability to uncover the
// complete threat scenario". This module ingests a STIX 2-like bundle and
// synthesizes the corresponding *IOC-only* hunting queries (one per
// indicator, no relations, no temporal order), which is exactly the
// baseline bench_ioc_baseline (E10) compares against behavior-graph
// hunting.

#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "nlp/ioc.h"
#include "tbql/ast.h"

namespace raptor::cti {

/// \brief One indicator from a structured feed.
struct Indicator {
  std::string id;    ///< STIX object id (may be empty).
  std::string name;  ///< Human-readable label (may be empty).
  nlp::IocType type = nlp::IocType::kFilepath;
  std::string value;
};

/// Parses a STIX 2-style bundle:
///
/// ```json
/// {"type": "bundle", "objects": [
///   {"type": "indicator", "id": "indicator--1", "name": "cracker",
///    "pattern": "[file:name = '/tmp/cracker']"},
///   {"type": "indicator", "pattern": "[ipv4-addr:value = '161.35.10.8']"}
/// ]}
/// ```
///
/// Supported pattern comparisons: `file:name`, `file:path`,
/// `process:name`, `ipv4-addr:value`, `domain-name:value`, `url:value`,
/// and `file:hashes.'<ALG>'`. Objects that are not indicators are skipped;
/// an indicator with an unsupported pattern yields an Unsupported error
/// naming it (strictness over silent loss).
Result<std::vector<Indicator>> ParseStixBundle(std::string_view json_text);

/// Extracts indicators from free text with the regex recognizer — turns
/// any report into the "structured feed view" of itself (deduplicated).
std::vector<Indicator> IndicatorsFromText(std::string_view text,
                                          const nlp::IocRecognizer& recognizer);

/// Synthesizes one IOC-only TBQL query per *auditable* indicator (files and
/// IPs; see synth::IsAuditableIocType): any process touching the file with
/// any file operation, or any flow to the address. Queries are analyzed and
/// ready to execute. Non-auditable indicators are skipped.
std::vector<tbql::Query> SynthesizeIocQueries(
    const std::vector<Indicator>& indicators);

/// Serializes indicators back to a STIX-like bundle (round-trips through
/// ParseStixBundle).
std::string ToStixBundle(const std::vector<Indicator>& indicators);

}  // namespace raptor::cti
