#include "tbql/parser.h"

#include "common/strings.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tbql/lexer.h"

namespace raptor::tbql {

namespace {

/// Keywords that terminate or structure the pattern list.
bool IsKeyword(const QueryToken& t, std::string_view kw) {
  return t.kind == TokenKind::kIdent && EqualsIgnoreCase(t.text, kw);
}

bool IsEntityTypeKeyword(const QueryToken& t) {
  return t.kind == TokenKind::kIdent &&
         (EqualsIgnoreCase(t.text, "proc") || EqualsIgnoreCase(t.text, "file") ||
          EqualsIgnoreCase(t.text, "net") ||
          EqualsIgnoreCase(t.text, "process") ||
          EqualsIgnoreCase(t.text, "network"));
}

class Parser {
 public:
  explicit Parser(std::vector<QueryToken> tokens)
      : tokens_(std::move(tokens)) {}

  Result<Query> ParseQuery() {
    Query query;
    // Pattern declarations until 'with' / 'return' / 'limit' / EOF.
    while (!AtEnd() && !IsKeyword(Peek(), "with") &&
           !IsKeyword(Peek(), "return") && !IsKeyword(Peek(), "limit")) {
      RAPTOR_ASSIGN_OR_RETURN(Pattern p, ParsePatternDecl());
      if (p.id.empty()) {
        p.id = StrFormat("evt%zu", query.patterns.size() + 1);
      }
      query.patterns.push_back(std::move(p));
      if (Peek().kind == TokenKind::kSemicolon) Advance();
    }
    if (query.patterns.empty()) {
      return Error("query declares no event patterns");
    }
    if (IsKeyword(Peek(), "with")) {
      Advance();
      while (true) {
        RAPTOR_RETURN_NOT_OK(ParseWithItem(&query));
        if (Peek().kind != TokenKind::kComma) break;
        Advance();
      }
    }
    if (IsKeyword(Peek(), "return")) {
      Advance();
      if (IsKeyword(Peek(), "count")) {
        Advance();
        query.return_count = true;
      } else {
        while (true) {
          RAPTOR_ASSIGN_OR_RETURN(ReturnItem item, ParseReturnItem());
          query.returns.push_back(std::move(item));
          if (Peek().kind != TokenKind::kComma) break;
          Advance();
        }
      }
    }
    if (IsKeyword(Peek(), "limit")) {
      Advance();
      RAPTOR_ASSIGN_OR_RETURN(QueryToken n, Expect(TokenKind::kInt));
      if (n.int_value <= 0) return Error("limit must be positive");
      query.limit = static_cast<size_t>(n.int_value);
    }
    if (!AtEnd()) {
      return Error(StrFormat("unexpected %s after end of query",
                             std::string(TokenKindName(Peek().kind)).c_str()));
    }
    return query;
  }

 private:
  const QueryToken& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const QueryToken& Advance() { return tokens_[pos_++]; }
  bool AtEnd() const { return Peek().kind == TokenKind::kEof; }

  Status Error(std::string msg) const {
    const QueryToken& t = Peek();
    return Status::ParseError(
        StrFormat("line %zu column %zu: %s", t.line, t.column, msg.c_str()));
  }

  Result<QueryToken> Expect(TokenKind kind) {
    if (Peek().kind != kind) {
      return Error(StrFormat("expected %s, found %s",
                             std::string(TokenKindName(kind)).c_str(),
                             std::string(TokenKindName(Peek().kind)).c_str()));
    }
    return Advance();
  }

  Result<Pattern> ParsePatternDecl() {
    Pattern p;
    // Optional "evtN :" label.
    if (Peek().kind == TokenKind::kIdent &&
        Peek(1).kind == TokenKind::kColon) {
      p.id = Advance().text;
      Advance();  // ':'
    }
    RAPTOR_ASSIGN_OR_RETURN(p.subject, ParseEntity());

    if (Peek().kind == TokenKind::kPathArrow) {
      Advance();
      p.is_path = true;
      p.min_hops = 1;
      p.max_hops = 5;  // default bound for unbounded-looking paths
      if (Peek().kind == TokenKind::kLParen) {
        Advance();
        RAPTOR_ASSIGN_OR_RETURN(QueryToken lo, Expect(TokenKind::kInt));
        RAPTOR_RETURN_NOT_OK(Expect(TokenKind::kTilde).status());
        RAPTOR_ASSIGN_OR_RETURN(QueryToken hi, Expect(TokenKind::kInt));
        RAPTOR_RETURN_NOT_OK(Expect(TokenKind::kRParen).status());
        p.min_hops = static_cast<size_t>(lo.int_value);
        p.max_hops = static_cast<size_t>(hi.int_value);
      }
      RAPTOR_RETURN_NOT_OK(Expect(TokenKind::kLBracket).status());
      RAPTOR_ASSIGN_OR_RETURN(p.op, ParseOpExpr());
      RAPTOR_RETURN_NOT_OK(Expect(TokenKind::kRBracket).status());
    } else {
      RAPTOR_ASSIGN_OR_RETURN(p.op, ParseOpExpr());
    }
    RAPTOR_ASSIGN_OR_RETURN(p.object, ParseEntity());

    if (IsKeyword(Peek(), "from")) {
      Advance();
      RAPTOR_ASSIGN_OR_RETURN(QueryToken lo, Expect(TokenKind::kInt));
      if (!IsKeyword(Peek(), "to")) return Error("expected 'to' in window");
      Advance();
      RAPTOR_ASSIGN_OR_RETURN(QueryToken hi, Expect(TokenKind::kInt));
      p.window_start = lo.int_value;
      p.window_end = hi.int_value;
    }
    return p;
  }

  Result<EntityRef> ParseEntity() {
    EntityRef e;
    if (!IsEntityTypeKeyword(Peek())) {
      return Error("expected entity type ('proc', 'file', or 'net')");
    }
    RAPTOR_ASSIGN_OR_RETURN(e.type,
                            audit::ParseEntityType(ToLower(Advance().text)));
    RAPTOR_ASSIGN_OR_RETURN(QueryToken id, Expect(TokenKind::kIdent));
    e.id = id.text;
    if (Peek().kind == TokenKind::kLBracket) {
      Advance();
      while (true) {
        RAPTOR_ASSIGN_OR_RETURN(AttrFilter f, ParseFilter());
        e.filters.push_back(std::move(f));
        if (Peek().kind == TokenKind::kComma ||
            Peek().kind == TokenKind::kAndAnd) {
          Advance();
          continue;
        }
        break;
      }
      RAPTOR_RETURN_NOT_OK(Expect(TokenKind::kRBracket).status());
    }
    return e;
  }

  Result<AttrFilter> ParseFilter() {
    AttrFilter f;
    // Optional attribute name + comparator; a bare literal uses the default
    // attribute and '='.
    if (Peek().kind == TokenKind::kIdent) {
      f.attr = Advance().text;
      switch (Peek().kind) {
        case TokenKind::kEq:
          f.op = rel::CompareOp::kEq;
          break;
        case TokenKind::kNe:
          f.op = rel::CompareOp::kNe;
          break;
        case TokenKind::kLt:
          f.op = rel::CompareOp::kLt;
          break;
        case TokenKind::kLe:
          f.op = rel::CompareOp::kLe;
          break;
        case TokenKind::kGt:
          f.op = rel::CompareOp::kGt;
          break;
        case TokenKind::kGe:
          f.op = rel::CompareOp::kGe;
          break;
        default:
          return Error("expected comparison operator in filter");
      }
      Advance();
    } else {
      f.op = rel::CompareOp::kEq;
    }
    if (Peek().kind == TokenKind::kString) {
      f.is_string = true;
      f.string_value = Advance().text;
    } else if (Peek().kind == TokenKind::kInt) {
      f.is_string = false;
      f.int_value = Advance().int_value;
    } else {
      return Error("expected string or integer literal in filter");
    }
    return f;
  }

  Result<OpExpr> ParseOpExpr() {
    OpExpr op;
    while (true) {
      RAPTOR_ASSIGN_OR_RETURN(QueryToken name, Expect(TokenKind::kIdent));
      op.names.push_back(ToLower(name.text));
      if (Peek().kind == TokenKind::kOrOr || IsKeyword(Peek(), "or")) {
        Advance();
        continue;
      }
      break;
    }
    return op;
  }

  Result<bool> ParseRole() {
    RAPTOR_ASSIGN_OR_RETURN(QueryToken role, Expect(TokenKind::kIdent));
    if (EqualsIgnoreCase(role.text, "srcid")) return true;
    if (EqualsIgnoreCase(role.text, "dstid")) return false;
    return Error("expected 'srcid' or 'dstid' after '.'");
  }

  Status ParseWithItem(Query* query) {
    RAPTOR_ASSIGN_OR_RETURN(QueryToken a, Expect(TokenKind::kIdent));
    // Attribute relationship: "evt1.srcid = evt2.dstid".
    if (Peek().kind == TokenKind::kDot) {
      Advance();
      AttrRelationship rel;
      rel.first_pattern = a.text;
      RAPTOR_ASSIGN_OR_RETURN(rel.first_is_subject, ParseRole());
      RAPTOR_RETURN_NOT_OK(Expect(TokenKind::kEq).status());
      RAPTOR_ASSIGN_OR_RETURN(QueryToken b, Expect(TokenKind::kIdent));
      rel.second_pattern = b.text;
      RAPTOR_RETURN_NOT_OK(Expect(TokenKind::kDot).status());
      RAPTOR_ASSIGN_OR_RETURN(rel.second_is_subject, ParseRole());
      query->attr_relationships.push_back(std::move(rel));
      return Status::OK();
    }
    // Temporal constraint.
    TemporalConstraint tc;
    if (IsKeyword(Peek(), "before") || Peek().kind == TokenKind::kArrow) {
      Advance();
      RAPTOR_ASSIGN_OR_RETURN(QueryToken b, Expect(TokenKind::kIdent));
      tc.first = a.text;
      tc.second = b.text;
    } else if (IsKeyword(Peek(), "after")) {
      Advance();
      RAPTOR_ASSIGN_OR_RETURN(QueryToken b, Expect(TokenKind::kIdent));
      tc.first = b.text;
      tc.second = a.text;
    } else {
      return Error("expected 'before', 'after', '->', or '.' in with clause");
    }
    query->temporal.push_back(std::move(tc));
    return Status::OK();
  }

  Result<ReturnItem> ParseReturnItem() {
    ReturnItem item;
    RAPTOR_ASSIGN_OR_RETURN(QueryToken id, Expect(TokenKind::kIdent));
    item.entity_id = id.text;
    if (Peek().kind == TokenKind::kDot) {
      Advance();
      RAPTOR_ASSIGN_OR_RETURN(QueryToken attr, Expect(TokenKind::kIdent));
      item.attr = ToLower(attr.text);
    }
    return item;
  }

  std::vector<QueryToken> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Query> Parse(std::string_view source) {
  static obs::Counter* parse_errors = obs::Registry::Default().GetCounter(
      "raptor_tbql_parse_errors_total", "TBQL sources rejected by the parser");
  obs::Span span = obs::Tracer::Default().StartSpan("tbql.parse");
  auto reject = [&](Status status) {
    parse_errors->Increment();
    if (span.active()) span.Annotate("parse error: " + status.message());
    obs::Logger::Default()
        .Log(obs::LogLevel::kWarn, "tbql", "query rejected by parser")
        .Field("error", status.message())
        .Field("source_bytes", static_cast<uint64_t>(source.size()));
    return status;
  };
  auto tokens = Lex(source);
  if (!tokens.ok()) return reject(tokens.status());
  Parser parser(std::move(tokens).value());
  Result<Query> query = parser.ParseQuery();
  if (!query.ok()) return reject(query.status());
  return query;
}

}  // namespace raptor::tbql
