#include "tbql/analyzer.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "common/strings.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace raptor::tbql {

std::string_view DefaultAttribute(audit::EntityType type) {
  switch (type) {
    case audit::EntityType::kFile:
      return "name";
    case audit::EntityType::kProcess:
      return "exename";
    case audit::EntityType::kNetwork:
      return "dstip";
  }
  return "name";
}

bool IsValidAttribute(audit::EntityType type, std::string_view attr) {
  switch (type) {
    case audit::EntityType::kFile:
      return attr == "name" || attr == "path" || attr == "id";
    case audit::EntityType::kProcess:
      return attr == "exename" || attr == "pid" || attr == "id";
    case audit::EntityType::kNetwork:
      return attr == "srcip" || attr == "srcport" || attr == "dstip" ||
             attr == "dstport" || attr == "protocol" || attr == "id";
  }
  return false;
}

namespace {

Status AnalyzeEntity(EntityRef* entity) {
  for (AttrFilter& f : entity->filters) {
    if (f.attr.empty()) {
      f.attr = std::string(DefaultAttribute(entity->type));
    } else {
      f.attr = ToLower(f.attr);
      if (f.attr == "path" && entity->type == audit::EntityType::kFile) {
        f.attr = "name";  // alias
      }
    }
    if (!IsValidAttribute(entity->type, f.attr)) {
      return Status::InvalidArgument(StrFormat(
          "entity '%s': attribute '%s' is not valid for type '%s'",
          entity->id.c_str(), f.attr.c_str(),
          std::string(audit::EntityTypeName(entity->type)).c_str()));
    }
    // '%' wildcard with '=' / '!=' means (NOT) LIKE.
    if (f.is_string && Contains(f.string_value, "%")) {
      if (f.op == rel::CompareOp::kEq) f.op = rel::CompareOp::kLike;
      if (f.op == rel::CompareOp::kNe) f.op = rel::CompareOp::kNotLike;
    }
  }
  return Status::OK();
}

Status AnalyzeImpl(Query* query) {
  // Pattern ids unique.
  std::unordered_set<std::string> pattern_ids;
  for (const Pattern& p : query->patterns) {
    if (!pattern_ids.insert(p.id).second) {
      return Status::InvalidArgument("duplicate pattern id '" + p.id + "'");
    }
  }

  // Entity consistency: same id => same type; filters accumulate.
  struct EntityInfo {
    audit::EntityType type;
    std::vector<AttrFilter> filters;
  };
  std::map<std::string, EntityInfo> entities;  // ordered for stable output

  for (Pattern& p : query->patterns) {
    if (p.subject.type != audit::EntityType::kProcess) {
      return Status::InvalidArgument(StrFormat(
          "pattern '%s': subjects must be processes (paper §II-A)",
          p.id.c_str()));
    }
    // Operations.
    if (p.op.names.empty()) {
      return Status::InvalidArgument("pattern '" + p.id + "': no operation");
    }
    p.op.ops.clear();
    for (const std::string& name : p.op.names) {
      RAPTOR_ASSIGN_OR_RETURN(audit::Operation op,
                              audit::ParseOperation(name));
      if (audit::ObjectTypeOf(op) != p.object.type) {
        return Status::TypeError(StrFormat(
            "pattern '%s': operation '%s' requires a '%s' object, got '%s'",
            p.id.c_str(), name.c_str(),
            std::string(audit::EntityTypeName(audit::ObjectTypeOf(op)))
                .c_str(),
            std::string(audit::EntityTypeName(p.object.type)).c_str()));
      }
      p.op.ops.push_back(op);
    }
    // Path bounds.
    if (p.is_path) {
      if (p.min_hops < 1 || p.min_hops > p.max_hops) {
        return Status::InvalidArgument(StrFormat(
            "pattern '%s': invalid path bounds (%zu~%zu)", p.id.c_str(),
            p.min_hops, p.max_hops));
      }
      if (p.max_hops > 16) {
        return Status::InvalidArgument(StrFormat(
            "pattern '%s': path bound %zu exceeds the limit of 16",
            p.id.c_str(), p.max_hops));
      }
    }
    if (p.window_start && p.window_end && *p.window_start > *p.window_end) {
      return Status::InvalidArgument(
          "pattern '" + p.id + "': window start exceeds window end");
    }

    for (EntityRef* e : {&p.subject, &p.object}) {
      RAPTOR_RETURN_NOT_OK(AnalyzeEntity(e));
      auto it = entities.find(e->id);
      if (it == entities.end()) {
        entities.emplace(e->id, EntityInfo{e->type, e->filters});
      } else {
        if (it->second.type != e->type) {
          return Status::TypeError(StrFormat(
              "entity '%s' used with conflicting types '%s' and '%s'",
              e->id.c_str(),
              std::string(audit::EntityTypeName(it->second.type)).c_str(),
              std::string(audit::EntityTypeName(e->type)).c_str()));
        }
        for (const AttrFilter& f : e->filters) {
          if (std::find(it->second.filters.begin(), it->second.filters.end(),
                        f) == it->second.filters.end()) {
            it->second.filters.push_back(f);
          }
        }
      }
    }
  }

  // Propagate accumulated filters back to every declaration of an entity,
  // so reusing an id anywhere applies all of its filters everywhere.
  for (Pattern& p : query->patterns) {
    for (EntityRef* e : {&p.subject, &p.object}) {
      e->filters = entities.at(e->id).filters;
    }
  }

  // Temporal constraints reference declared patterns and must be acyclic.
  for (const TemporalConstraint& tc : query->temporal) {
    if (pattern_ids.count(tc.first) == 0) {
      return Status::NotFound("with clause references unknown pattern '" +
                              tc.first + "'");
    }
    if (pattern_ids.count(tc.second) == 0) {
      return Status::NotFound("with clause references unknown pattern '" +
                              tc.second + "'");
    }
    if (tc.first == tc.second) {
      return Status::InvalidArgument(
          "with clause orders pattern '" + tc.first + "' against itself");
    }
  }
  // Attribute relationships reference declared patterns, and the compared
  // roles must refer to entities of the same type (identity across types is
  // unsatisfiable).
  {
    std::unordered_map<std::string, const Pattern*> by_id;
    for (const Pattern& p : query->patterns) by_id[p.id] = &p;
    for (const AttrRelationship& rel : query->attr_relationships) {
      auto first = by_id.find(rel.first_pattern);
      auto second = by_id.find(rel.second_pattern);
      if (first == by_id.end()) {
        return Status::NotFound(
            "with clause references unknown pattern '" + rel.first_pattern +
            "'");
      }
      if (second == by_id.end()) {
        return Status::NotFound(
            "with clause references unknown pattern '" + rel.second_pattern +
            "'");
      }
      if (rel.first_pattern == rel.second_pattern &&
          rel.first_is_subject == rel.second_is_subject) {
        return Status::InvalidArgument(
            "with clause relates a pattern role to itself");
      }
      auto type_of = [](const Pattern& p, bool is_subject) {
        return is_subject ? p.subject.type : p.object.type;
      };
      if (type_of(*first->second, rel.first_is_subject) !=
          type_of(*second->second, rel.second_is_subject)) {
        return Status::TypeError(StrFormat(
            "attribute relationship %s.%s = %s.%s compares entities of "
            "different types",
            rel.first_pattern.c_str(), rel.first_is_subject ? "srcid" : "dstid",
            rel.second_pattern.c_str(),
            rel.second_is_subject ? "srcid" : "dstid"));
      }
    }
  }

  {
    // Cycle check via Kahn's algorithm over the before-edges.
    std::unordered_map<std::string, int> indegree;
    std::unordered_map<std::string, std::vector<std::string>> adj;
    for (const Pattern& p : query->patterns) indegree[p.id] = 0;
    for (const TemporalConstraint& tc : query->temporal) {
      adj[tc.first].push_back(tc.second);
      ++indegree[tc.second];
    }
    std::vector<std::string> ready;
    for (auto& [id, deg] : indegree) {
      if (deg == 0) ready.push_back(id);
    }
    size_t seen = 0;
    while (!ready.empty()) {
      std::string id = std::move(ready.back());
      ready.pop_back();
      ++seen;
      for (const std::string& next : adj[id]) {
        if (--indegree[next] == 0) ready.push_back(next);
      }
    }
    if (seen != indegree.size()) {
      return Status::InvalidArgument(
          "with clause temporal constraints form a cycle");
    }
  }

  // Return clause: `return count` projects only the row count and takes no
  // items; otherwise default to all entities and expand default attributes.
  if (query->return_count) {
    if (!query->returns.empty()) {
      return Status::InvalidArgument(
          "'return count' cannot be combined with other return items");
    }
    return Status::OK();
  }
  if (query->returns.empty()) {
    for (const auto& [id, info] : entities) {
      ReturnItem item;
      item.entity_id = id;
      query->returns.push_back(std::move(item));
    }
  }
  for (ReturnItem& item : query->returns) {
    auto it = entities.find(item.entity_id);
    if (it == entities.end()) {
      return Status::NotFound("return clause references unknown entity '" +
                              item.entity_id + "'");
    }
    if (item.attr.empty()) {
      item.attr = std::string(DefaultAttribute(it->second.type));
    } else if (item.attr == "path" &&
               it->second.type == audit::EntityType::kFile) {
      item.attr = "name";
    } else if (!IsValidAttribute(it->second.type, item.attr)) {
      return Status::InvalidArgument(StrFormat(
          "return clause: attribute '%s' is not valid for entity '%s'",
          item.attr.c_str(), item.entity_id.c_str()));
    }
  }
  return Status::OK();
}

}  // namespace

Status Analyze(Query* query) {
  static obs::Counter* analyze_errors = obs::Registry::Default().GetCounter(
      "raptor_tbql_analyze_errors_total",
      "TBQL queries rejected by semantic analysis");
  obs::Span span = obs::Tracer::Default().StartSpan("tbql.analyze");
  Status status = AnalyzeImpl(query);
  if (!status.ok()) {
    analyze_errors->Increment();
    if (span.active()) span.Annotate("analyze error: " + status.message());
    obs::Logger::Default()
        .Log(obs::LogLevel::kWarn, "tbql", "query rejected by analyzer")
        .Field("error", status.message())
        .Field("patterns", static_cast<uint64_t>(query->patterns.size()));
  }
  return status;
}

}  // namespace raptor::tbql
