// Recursive-descent parser for TBQL (grammar in ast.h).

#pragma once

#include <string_view>

#include "common/result.h"
#include "tbql/ast.h"

namespace raptor::tbql {

/// Parses TBQL source into an (unanalyzed) Query AST. Run Analyze() next to
/// validate and expand the syntactic sugar.
Result<Query> Parse(std::string_view source);

}  // namespace raptor::tbql
