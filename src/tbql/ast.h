// TBQL abstract syntax tree (paper §II-D).
//
// TBQL treats system entities and events as first-class citizens. A query
// declares one or more event patterns — each `(subject, operation, object)`
// with optional entity attribute filters and time windows — an optional
// `with` clause of temporal relationships, and a `return` clause. The
// advanced syntax declares variable-length event path patterns
// (`proc p ~>(2~4)[read] file f`).
//
// Concrete grammar accepted by the parser (the paper shows examples, not a
// grammar; this is the reconstruction, also documented in README.md):
//
//   query     := pattern_decl+ with_clause? return_clause?
//   pattern_decl := (IDENT ':')? (event_pattern | path_pattern) ';'?
//   event_pattern := entity operation entity window?
//   path_pattern  := entity '~>' bounds? '[' operation ']' entity window?
//   bounds    := '(' INT '~' INT ')'
//   operation := IDENT ('||' IDENT)*            // read || write
//   entity    := ('proc'|'file'|'net') IDENT ('[' filters ']')?
//   filters   := filter (',' filter | '&&' filter)*
//   filter    := (IDENT cmp)? literal           // attr omitted => default
//   cmp       := '=' | '!=' | '<' | '<=' | '>' | '>='
//   window    := 'from' INT 'to' INT
//   with_clause   := 'with' with_item (',' with_item)*
//   with_item := temporal | attr_rel
//   temporal  := IDENT ('before'|'after'|'->') IDENT
//   attr_rel  := IDENT '.' role '=' IDENT '.' role   // role: srcid|dstid
//   return_clause := 'return' ('count' | item (',' item)*)
//   item      := IDENT ('.' IDENT)?             // attr omitted => default
//   limit_clause  := 'limit' INT                // optional, after return
//
// Syntactic sugar (paper §II-D): an omitted filter attribute or return
// attribute means the default attribute of the entity type — "name" for
// files, "exename" for processes, "dstip" for network connections — and
// '=' against a literal containing '%' means a LIKE match. Reusing an
// entity identifier across patterns asserts the referred entities are the
// same (an implicit attribute relationship).

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "audit/types.h"
#include "storage/relational/predicate.h"

namespace raptor::tbql {

/// \brief One attribute filter inside an entity declaration.
struct AttrFilter {
  /// Attribute name; empty until the analyzer substitutes the default.
  std::string attr;
  rel::CompareOp op = rel::CompareOp::kEq;
  /// Exactly one of the two literals is meaningful, per is_string.
  bool is_string = true;
  std::string string_value;
  int64_t int_value = 0;

  bool operator==(const AttrFilter&) const = default;
};

/// \brief An entity reference: type, identifier, filters.
struct EntityRef {
  audit::EntityType type = audit::EntityType::kProcess;
  std::string id;
  std::vector<AttrFilter> filters;
};

/// \brief Event operation expression: a disjunction of operation names
/// ("read || write"). Names are validated by the analyzer.
struct OpExpr {
  std::vector<std::string> names;
  /// Filled by the analyzer.
  std::vector<audit::Operation> ops;
};

/// \brief One declared pattern: a basic event pattern, or a variable-length
/// path pattern when is_path is set.
struct Pattern {
  std::string id;  ///< evt1, evt2, ... (auto-named when omitted).
  EntityRef subject;
  EntityRef object;
  OpExpr op;

  bool is_path = false;
  size_t min_hops = 1;  ///< Path bounds; 1..max for `~>(min~max)`.
  size_t max_hops = 1;

  /// Optional time window ("from T to T").
  std::optional<int64_t> window_start;
  std::optional<int64_t> window_end;
};

/// \brief One `with` clause constraint: pattern `first` occurs before
/// pattern `second` ("evt1 before evt2" / "evt2 after evt1" / "evt1 -> evt2").
struct TemporalConstraint {
  std::string first;
  std::string second;
};

/// \brief One explicit attribute relationship between event patterns
/// (paper §II-D): "evt1.srcid = evt2.srcid" asserts the subject of evt1 is
/// the same entity as the subject of evt2. Roles are `srcid` (subject) and
/// `dstid` (object). This is the form the shared-entity-id sugar expands
/// to; it is also directly writable.
struct AttrRelationship {
  std::string first_pattern;
  bool first_is_subject = true;  ///< srcid => subject, dstid => object.
  std::string second_pattern;
  bool second_is_subject = true;
};

/// \brief One `return` item: entity id plus attribute (defaulted when
/// omitted).
struct ReturnItem {
  std::string entity_id;
  std::string attr;  ///< Empty until the analyzer substitutes the default.
};

/// \brief A parsed TBQL query.
struct Query {
  std::vector<Pattern> patterns;
  std::vector<TemporalConstraint> temporal;
  std::vector<AttrRelationship> attr_relationships;
  std::vector<ReturnItem> returns;
  /// `return count`: project only the number of result rows.
  bool return_count = false;
  /// `limit N`: cap the result rows.
  std::optional<size_t> limit;
};

/// Default attribute of an entity type (paper §II-D: the most commonly used
/// attribute in security analysis).
std::string_view DefaultAttribute(audit::EntityType type);

/// Valid filter/return attribute names per entity type.
bool IsValidAttribute(audit::EntityType type, std::string_view attr);

}  // namespace raptor::tbql
