// Semantic analysis for TBQL queries: validation plus expansion of the
// paper's syntactic sugar (default attributes, shared-entity identity,
// default return clause).

#pragma once

#include "common/result.h"
#include "tbql/ast.h"

namespace raptor::tbql {

/// Validates and rewrites `query` in place:
///  - pattern ids unique; temporal constraints reference declared patterns
///    and form no cycle;
///  - subjects are processes; operation names parse and agree with the
///    object entity type; path bounds are sane;
///  - an entity id reused across patterns has a consistent type (its filters
///    are the union of all declarations, the shared-identity sugar);
///  - empty filter/return attributes become the type's default attribute
///    ("name"/"exename"/"dstip"); '=' against a '%'-pattern becomes LIKE;
///  - an empty return clause becomes "return every declared entity".
Status Analyze(Query* query);

}  // namespace raptor::tbql
