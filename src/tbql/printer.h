// Pretty-printer: renders a Query AST back to canonical TBQL text.

#pragma once

#include <string>

#include "tbql/ast.h"

namespace raptor::tbql {

/// Renders `query` as canonical TBQL (one pattern per line, then the with
/// and return clauses). Round-trips through Parse + Analyze.
std::string Print(const Query& query);

/// Renders one entity reference ("proc p1[exename = \"%/bin/tar%\"]").
std::string PrintEntity(const EntityRef& entity);

}  // namespace raptor::tbql
