#include "tbql/lexer.h"

#include <cctype>

#include "common/strings.h"

namespace raptor::tbql {

std::string_view TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kIdent:
      return "identifier";
    case TokenKind::kString:
      return "string";
    case TokenKind::kInt:
      return "integer";
    case TokenKind::kColon:
      return "':'";
    case TokenKind::kComma:
      return "','";
    case TokenKind::kSemicolon:
      return "';'";
    case TokenKind::kDot:
      return "'.'";
    case TokenKind::kLBracket:
      return "'['";
    case TokenKind::kRBracket:
      return "']'";
    case TokenKind::kLParen:
      return "'('";
    case TokenKind::kRParen:
      return "')'";
    case TokenKind::kEq:
      return "'='";
    case TokenKind::kNe:
      return "'!='";
    case TokenKind::kLt:
      return "'<'";
    case TokenKind::kLe:
      return "'<='";
    case TokenKind::kGt:
      return "'>'";
    case TokenKind::kGe:
      return "'>='";
    case TokenKind::kOrOr:
      return "'||'";
    case TokenKind::kAndAnd:
      return "'&&'";
    case TokenKind::kArrow:
      return "'->'";
    case TokenKind::kPathArrow:
      return "'~>'";
    case TokenKind::kTilde:
      return "'~'";
    case TokenKind::kEof:
      return "end of query";
  }
  return "?";
}

Result<std::vector<QueryToken>> Lex(std::string_view source) {
  std::vector<QueryToken> tokens;
  size_t line = 1, col = 1;
  size_t i = 0;
  auto make = [&](TokenKind kind) {
    QueryToken t;
    t.kind = kind;
    t.line = line;
    t.column = col;
    return t;
  };
  auto advance = [&](size_t n) {
    for (size_t k = 0; k < n; ++k) {
      if (i < source.size() && source[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
      ++i;
    }
  };

  while (i < source.size()) {
    char c = source[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance(1);
      continue;
    }
    // Comments.
    if (c == '#' || (c == '/' && i + 1 < source.size() &&
                     source[i + 1] == '/')) {
      while (i < source.size() && source[i] != '\n') advance(1);
      continue;
    }
    // Identifiers and keywords (also path-friendly idents start a letter).
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      QueryToken t = make(TokenKind::kIdent);
      size_t start = i;
      while (i < source.size() &&
             (std::isalnum(static_cast<unsigned char>(source[i])) ||
              source[i] == '_')) {
        advance(1);
      }
      t.text = std::string(source.substr(start, i - start));
      tokens.push_back(std::move(t));
      continue;
    }
    // Integers.
    if (std::isdigit(static_cast<unsigned char>(c))) {
      QueryToken t = make(TokenKind::kInt);
      size_t start = i;
      while (i < source.size() &&
             std::isdigit(static_cast<unsigned char>(source[i]))) {
        advance(1);
      }
      t.text = std::string(source.substr(start, i - start));
      t.int_value = std::stoll(t.text);
      tokens.push_back(std::move(t));
      continue;
    }
    // Strings.
    if (c == '"' || c == '\'') {
      char quote = c;
      QueryToken t = make(TokenKind::kString);
      advance(1);
      std::string text;
      bool closed = false;
      while (i < source.size()) {
        if (source[i] == '\\' && i + 1 < source.size()) {
          text += source[i + 1];
          advance(2);
          continue;
        }
        if (source[i] == quote) {
          advance(1);
          closed = true;
          break;
        }
        text += source[i];
        advance(1);
      }
      if (!closed) {
        return Status::ParseError(
            StrFormat("line %zu: unterminated string literal", t.line));
      }
      t.text = std::move(text);
      tokens.push_back(std::move(t));
      continue;
    }
    // Operators and punctuation.
    auto two = [&](char a, char b) {
      return c == a && i + 1 < source.size() && source[i + 1] == b;
    };
    QueryToken t = make(TokenKind::kEof);
    if (two('~', '>')) {
      t.kind = TokenKind::kPathArrow;
      advance(2);
    } else if (two('-', '>')) {
      t.kind = TokenKind::kArrow;
      advance(2);
    } else if (two('!', '=')) {
      t.kind = TokenKind::kNe;
      advance(2);
    } else if (two('<', '=')) {
      t.kind = TokenKind::kLe;
      advance(2);
    } else if (two('>', '=')) {
      t.kind = TokenKind::kGe;
      advance(2);
    } else if (two('|', '|')) {
      t.kind = TokenKind::kOrOr;
      advance(2);
    } else if (two('&', '&')) {
      t.kind = TokenKind::kAndAnd;
      advance(2);
    } else {
      switch (c) {
        case ':':
          t.kind = TokenKind::kColon;
          break;
        case ',':
          t.kind = TokenKind::kComma;
          break;
        case ';':
          t.kind = TokenKind::kSemicolon;
          break;
        case '.':
          t.kind = TokenKind::kDot;
          break;
        case '[':
          t.kind = TokenKind::kLBracket;
          break;
        case ']':
          t.kind = TokenKind::kRBracket;
          break;
        case '(':
          t.kind = TokenKind::kLParen;
          break;
        case ')':
          t.kind = TokenKind::kRParen;
          break;
        case '=':
          t.kind = TokenKind::kEq;
          break;
        case '<':
          t.kind = TokenKind::kLt;
          break;
        case '>':
          t.kind = TokenKind::kGt;
          break;
        case '~':
          t.kind = TokenKind::kTilde;
          break;
        default:
          return Status::ParseError(StrFormat(
              "line %zu column %zu: unexpected character '%c'", line, col, c));
      }
      advance(1);
    }
    tokens.push_back(std::move(t));
  }
  tokens.push_back(make(TokenKind::kEof));
  return tokens;
}

}  // namespace raptor::tbql
