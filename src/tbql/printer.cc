#include "tbql/printer.h"

#include "common/strings.h"

namespace raptor::tbql {

namespace {

std::string PrintFilter(const AttrFilter& f) {
  // LIKE/NOT LIKE render back as '='/'!=' with the '%' pattern (the sugar
  // the analyzer expanded).
  rel::CompareOp op = f.op;
  if (op == rel::CompareOp::kLike) op = rel::CompareOp::kEq;
  if (op == rel::CompareOp::kNotLike) op = rel::CompareOp::kNe;
  std::string value = f.is_string ? "\"" + f.string_value + "\""
                                  : std::to_string(f.int_value);
  if (f.attr.empty()) return value;
  return StrFormat("%s %s %s", f.attr.c_str(),
                   std::string(rel::CompareOpName(op)).c_str(), value.c_str());
}

}  // namespace

std::string PrintEntity(const EntityRef& entity) {
  std::string out(audit::EntityTypeName(entity.type));
  out += " " + entity.id;
  if (!entity.filters.empty()) {
    out += "[";
    for (size_t i = 0; i < entity.filters.size(); ++i) {
      if (i > 0) out += ", ";
      out += PrintFilter(entity.filters[i]);
    }
    out += "]";
  }
  return out;
}

std::string Print(const Query& query) {
  std::string out;
  for (const Pattern& p : query.patterns) {
    out += p.id + ": " + PrintEntity(p.subject);
    std::string ops = Join(p.op.names, " || ");
    if (p.is_path) {
      out += StrFormat(" ~>(%zu~%zu)[%s] ", p.min_hops, p.max_hops,
                       ops.c_str());
    } else {
      out += " " + ops + " ";
    }
    out += PrintEntity(p.object);
    if (p.window_start && p.window_end) {
      out += StrFormat(" from %lld to %lld",
                       static_cast<long long>(*p.window_start),
                       static_cast<long long>(*p.window_end));
    }
    out += "\n";
  }
  if (!query.temporal.empty() || !query.attr_relationships.empty()) {
    out += "with ";
    bool first = true;
    for (const TemporalConstraint& tc : query.temporal) {
      if (!first) out += ", ";
      first = false;
      out += tc.first + " before " + tc.second;
    }
    for (const AttrRelationship& rel : query.attr_relationships) {
      if (!first) out += ", ";
      first = false;
      out += rel.first_pattern + (rel.first_is_subject ? ".srcid" : ".dstid") +
             " = " + rel.second_pattern +
             (rel.second_is_subject ? ".srcid" : ".dstid");
    }
    out += "\n";
  }
  if (query.return_count) {
    out += "return count\n";
  } else if (!query.returns.empty()) {
    out += "return ";
    for (size_t i = 0; i < query.returns.size(); ++i) {
      if (i > 0) out += ", ";
      out += query.returns[i].entity_id;
      if (!query.returns[i].attr.empty()) {
        out += "." + query.returns[i].attr;
      }
    }
    out += "\n";
  }
  if (query.limit) {
    out += StrFormat("limit %zu\n", *query.limit);
  }
  return out;
}

}  // namespace raptor::tbql
