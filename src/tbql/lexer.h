// Lexer for TBQL, the Threat Behavior Query Language (paper §II-D).
//
// The paper builds TBQL with ANTLR 4; this reproduction uses a hand-written
// lexer + recursive-descent parser (same grammar, zero dependencies, better
// error messages).

#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace raptor::tbql {

enum class TokenKind : uint8_t {
  kIdent,       // p1, evt1, read, proc
  kString,      // "%/bin/tar%"
  kInt,         // 42
  kColon,       // :
  kComma,       // ,
  kSemicolon,   // ;
  kDot,         // .
  kLBracket,    // [
  kRBracket,    // ]
  kLParen,      // (
  kRParen,      // )
  kEq,          // =
  kNe,          // !=
  kLt,          // <
  kLe,          // <=
  kGt,          // >
  kGe,          // >=
  kOrOr,        // ||
  kAndAnd,      // &&
  kArrow,       // ->
  kPathArrow,   // ~>
  kTilde,       // ~
  kEof,
};

std::string_view TokenKindName(TokenKind kind);

/// \brief One lexed token with source position for error reporting.
struct QueryToken {
  TokenKind kind = TokenKind::kEof;
  std::string text;    ///< Identifier text or unescaped string contents.
  int64_t int_value = 0;
  size_t line = 1;
  size_t column = 1;
};

/// Lexes `source` into tokens (kEof-terminated). Comments run from '//' or
/// '#' to end of line. Returns a ParseError naming line/column on bad input.
Result<std::vector<QueryToken>> Lex(std::string_view source);

}  // namespace raptor::tbql
