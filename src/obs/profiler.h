// Low-overhead sampling profiler: a sampler thread periodically snapshots
// every registered thread's current span stack (published by the tracer on
// span open/close) and aggregates the samples into folded-stack counts —
// the format flamegraph.pl and speedscope consume unmodified. Served at
// GET /api/profile.
//
// Design for near-zero disabled cost, mirroring the tracer and logger:
// span open/close sites call profiler_internal::PublishSpanStack through
// trace.cc unconditionally, but the call is gated on one relaxed atomic
// load (`g_tracking`); when the profiler is stopped that load is the whole
// cost. When tracking is on, the publisher rebuilds the thread's open-span
// name stack from the tracer's source of truth (never incrementally), so a
// profiler started mid-trace self-corrects on the next span operation; the
// generation counter bumped by Start() marks stacks published before the
// current run as stale, and the sampler counts those threads as idle.
//
// Threads opt in via the ProfiledThread RAII guard (one per thread):
// thread-pool workers, the HTTP accept thread, and workload drivers
// register themselves; unregistered threads cost nothing and are invisible
// to the sampler.
//
// Queue-wait attribution: a capture window diffs the pool's
// raptor_pool_task_wait_ms / raptor_pool_task_ms histogram sums and
// renders the wait as a synthetic `pool-worker;queue-wait` folded entry
// (scaled to sample counts), so time tasks spent queued — which no span
// covers — still shows up in the flame graph.
//
// Dependency-free (standard library + obs only); see metrics.h for why.

#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace raptor::obs {

/// \brief Profiler knobs (ThreatRaptorOptions::profiler). Off by default:
/// profiling is an opt-in diagnostic, never an always-on cost.
struct ProfilerOptions {
  bool enabled = false;
  /// Sampling frequency. 99 Hz (the perf convention) avoids lockstep with
  /// 100 Hz periodic work while keeping overhead well under 5%.
  double hz = 99.0;
};

/// Frames kept per sampled stack; deeper stacks are truncated root-first
/// (the root context survives, the deepest leaves fold into their parent).
inline constexpr size_t kMaxProfileDepth = 32;
/// Characters kept per frame name.
inline constexpr size_t kMaxProfileFrame = 47;

struct SpanStackSlot;  // internal (profiler.cc)

/// \brief One aggregated profile: folded-stack sample counts plus the
/// window's queue-wait attribution.
struct ProfileSnapshot {
  /// "thread;frame;frame" -> samples. Idle registered threads sample as
  /// "thread;idle"; the synthetic "pool-worker;queue-wait" entry carries
  /// the capture window's queued-task wait (captures only).
  std::map<std::string, uint64_t> folded;
  uint64_t total_samples = 0;  ///< Sum over all stacks, idle included.
  double duration_s = 0;       ///< Profiled wall time covered.
  double hz = 0;               ///< Configured sampling frequency.
  /// Pool-task queue wait / run time accumulated in the window (captures
  /// only; exact milliseconds, unlike the sampled stacks).
  double queue_wait_ms = 0;
  double queue_run_ms = 0;
};

/// \brief RAII registration of the calling thread with the sampler. One
/// per thread; the name becomes the root frame of every stack sampled off
/// this thread ("pool-worker", "http", ...).
class ProfiledThread {
 public:
  explicit ProfiledThread(std::string_view name);
  ~ProfiledThread();

  ProfiledThread(const ProfiledThread&) = delete;
  ProfiledThread& operator=(const ProfiledThread&) = delete;

 private:
  std::shared_ptr<SpanStackSlot> slot_;
};

/// \brief The process-wide sampling profiler.
class Profiler {
 public:
  static Profiler& Default();

  /// Installs new options: stops a running sampler, clears accumulated
  /// samples, and starts sampling when `options.enabled`. The ThreatRaptor
  /// constructor calls this with ThreatRaptorOptions::profiler.
  void Configure(const ProfilerOptions& options);
  ProfilerOptions options() const;

  /// Starts the sampler thread and span-stack tracking. Idempotent.
  void Start();
  /// Stops sampling (accumulated samples are kept for Snapshot).
  void Stop();
  bool running() const;

  /// Cumulative samples since the last Configure.
  ProfileSnapshot Snapshot() const;

  /// Blocks for `seconds` and returns only the samples collected in that
  /// window, with queue-wait attribution. Starts the sampler temporarily
  /// when it is not already running.
  ProfileSnapshot Capture(double seconds);

  /// Folded-stack text: one "frame;frame;... count" line per stack,
  /// consumable by flamegraph.pl / speedscope unmodified.
  static std::string RenderFolded(const ProfileSnapshot& snapshot);

  /// Threads currently registered via ProfiledThread.
  size_t registered_threads() const;

 private:
  friend class ProfiledThread;

  void Register(std::shared_ptr<SpanStackSlot> slot);
  void Unregister(SpanStackSlot* slot);
  void StartLocked();
  void SampleOnce();
  void SamplerLoop();
  ProfileSnapshot SnapshotLocked() const;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  ProfilerOptions options_;
  std::vector<std::shared_ptr<SpanStackSlot>> slots_;
  std::map<std::string, uint64_t> counts_;
  uint64_t total_samples_ = 0;
  bool running_ = false;
  double accumulated_s_ = 0;  ///< Sampled seconds of finished runs.
  std::chrono::steady_clock::time_point started_{};
  std::thread sampler_;
};

namespace profiler_internal {

/// Span-stack tracking switch, read (relaxed) by every span open/close.
extern std::atomic<bool> g_tracking;
/// Bumped by Profiler::Start(); slots stamped with an older generation
/// hold stacks from a previous run and sample as idle.
extern std::atomic<uint64_t> g_generation;

inline bool Tracking() {
  return g_tracking.load(std::memory_order_relaxed);
}

/// Publishes the calling thread's current open-span names (root first)
/// into its registered slot; depth 0 marks the thread idle. No-op for
/// unregistered threads. Called by trace.cc on every span open/close while
/// tracking is on.
void PublishSpanStack(const std::string_view* frames, size_t depth);

}  // namespace profiler_internal

}  // namespace raptor::obs
