#include "obs/incident.h"

#include "obs/metrics.h"

namespace raptor::obs {

IncidentJournal& IncidentJournal::Default() {
  static IncidentJournal* journal = new IncidentJournal();  // leaked singleton
  return *journal;
}

void IncidentJournal::Configure(const IncidentJournalOptions& options) {
  std::lock_guard<std::mutex> lock(mu_);
  options_ = options;
  if (options_.max_incidents == 0) options_.max_incidents = 1;
  incidents_.clear();
}

IncidentJournalOptions IncidentJournal::options() const {
  std::lock_guard<std::mutex> lock(mu_);
  return options_;
}

void IncidentJournal::SetBundleHook(BundleHook hook) {
  std::lock_guard<std::mutex> lock(mu_);
  hook_ = std::move(hook);
}

std::string IncidentJournal::BuildBundle() const {
  BundleHook hook;
  {
    std::lock_guard<std::mutex> lock(mu_);
    hook = hook_;
  }
  return hook ? hook() : std::string();
}

uint64_t IncidentJournal::Record(Incident incident) {
  uint64_t id;
  std::string slo;
  {
    std::lock_guard<std::mutex> lock(mu_);
    incident.id = next_id_++;
    id = incident.id;
    slo = incident.slo;
    incidents_.push_back(std::move(incident));
    while (incidents_.size() > options_.max_incidents) {
      incidents_.pop_front();
    }
  }
  Registry::Default()
      .GetCounter("raptor_incidents_total",
                  "Incidents captured on SLO pending->firing transitions",
                  {{"slo", slo}})
      ->Increment();
  return id;
}

void IncidentJournal::MarkResolved(std::string_view slo, uint64_t t_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = incidents_.rbegin(); it != incidents_.rend(); ++it) {
    if (it->slo == slo && it->resolved_at_ms == 0) {
      it->resolved_at_ms = t_ms;
      return;
    }
  }
}

std::vector<Incident> IncidentJournal::Snapshot(size_t limit) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Incident> out;
  size_t n = incidents_.size();
  if (limit != 0 && limit < n) n = limit;
  out.reserve(n);
  for (auto it = incidents_.rbegin(); it != incidents_.rend() && out.size() < n;
       ++it) {
    out.push_back(*it);
  }
  return out;
}

size_t IncidentJournal::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return incidents_.size();
}

void IncidentJournal::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  incidents_.clear();
}

}  // namespace raptor::obs
