#include "obs/profiler.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>

#include "obs/metrics.h"

namespace raptor::obs {

namespace {

// Folded-format metacharacters (';' separates frames, ' ' separates the
// count) are rewritten so arbitrary span/thread names can't corrupt lines.
void AppendSanitized(std::string_view name, char* out, size_t cap) {
  size_t n = std::min(name.size(), cap);
  for (size_t i = 0; i < n; ++i) {
    char c = name[i];
    if (c == ';' || c == ' ' || c == '\n' || c == '\t' || c == '\0') c = '_';
    out[i] = c;
  }
  out[n] = '\0';
}

double PoolHistogramSum(const char* name) {
  const Histogram* h = Registry::Default().FindHistogram(name);
  return h == nullptr ? 0.0 : h->Sum();
}

}  // namespace

/// One registered thread's published span stack. The writer (that thread,
/// on every span open/close while tracking is on) and the reader (the
/// sampler, at the sampling frequency) synchronize on the slot mutex; at
/// 99 Hz the sampler-side contention is negligible.
struct SpanStackSlot {
  std::mutex mu;
  std::string thread_name;  ///< Sanitized; immutable after registration.
  uint64_t generation = 0;  ///< Profiler run that published `frames`.
  uint32_t depth = 0;       ///< 0 = idle (no open spans).
  char frames[kMaxProfileDepth][kMaxProfileFrame + 1];
};

namespace {
thread_local SpanStackSlot* g_slot = nullptr;
}  // namespace

namespace profiler_internal {

std::atomic<bool> g_tracking{false};
std::atomic<uint64_t> g_generation{0};

void PublishSpanStack(const std::string_view* frames, size_t depth) {
  SpanStackSlot* slot = g_slot;
  if (slot == nullptr) return;
  uint64_t generation = g_generation.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(slot->mu);
  slot->generation = generation;
  slot->depth = static_cast<uint32_t>(std::min(depth, kMaxProfileDepth));
  for (uint32_t i = 0; i < slot->depth; ++i) {
    AppendSanitized(frames[i], slot->frames[i], kMaxProfileFrame);
  }
}

}  // namespace profiler_internal

ProfiledThread::ProfiledThread(std::string_view name) {
  slot_ = std::make_shared<SpanStackSlot>();
  char sanitized[kMaxProfileFrame + 1];
  AppendSanitized(name.empty() ? std::string_view("thread") : name, sanitized,
                  kMaxProfileFrame);
  slot_->thread_name = sanitized;
  Profiler::Default().Register(slot_);
  g_slot = slot_.get();
}

ProfiledThread::~ProfiledThread() {
  if (g_slot == slot_.get()) g_slot = nullptr;
  Profiler::Default().Unregister(slot_.get());
}

Profiler& Profiler::Default() {
  static Profiler* profiler = new Profiler();  // leaked: outlives everything
  return *profiler;
}

void Profiler::Configure(const ProfilerOptions& options) {
  Stop();
  {
    std::lock_guard<std::mutex> lock(mu_);
    options_ = options;
    counts_.clear();
    total_samples_ = 0;
    accumulated_s_ = 0;
  }
  if (options.enabled) Start();
}

ProfilerOptions Profiler::options() const {
  std::lock_guard<std::mutex> lock(mu_);
  return options_;
}

void Profiler::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  StartLocked();
}

void Profiler::StartLocked() {
  if (running_) return;
  profiler_internal::g_generation.fetch_add(1, std::memory_order_relaxed);
  profiler_internal::g_tracking.store(true, std::memory_order_relaxed);
  running_ = true;
  started_ = std::chrono::steady_clock::now();
  sampler_ = std::thread([this] { SamplerLoop(); });
}

void Profiler::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    running_ = false;
    accumulated_s_ +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      started_)
            .count();
    profiler_internal::g_tracking.store(false, std::memory_order_relaxed);
  }
  cv_.notify_all();
  sampler_.join();
}

bool Profiler::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

void Profiler::Register(std::shared_ptr<SpanStackSlot> slot) {
  std::lock_guard<std::mutex> lock(mu_);
  slots_.push_back(std::move(slot));
}

void Profiler::Unregister(SpanStackSlot* slot) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = slots_.begin(); it != slots_.end(); ++it) {
    if (it->get() == slot) {
      slots_.erase(it);
      return;
    }
  }
}

void Profiler::SamplerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  const auto period = std::chrono::duration_cast<
      std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(1.0 / std::max(1.0, options_.hz)));
  auto next = std::chrono::steady_clock::now() + period;
  while (running_) {
    cv_.wait_until(lock, next, [this] { return !running_; });
    if (!running_) break;
    // Fixed schedule: a slow tick doesn't shift later ones, so sample
    // counts scale with wall time even under scheduling jitter.
    next += period;
    SampleOnce();
  }
}

void Profiler::SampleOnce() {
  // mu_ is held (slots_ stable). Lock order is mu_ -> slot->mu; publishers
  // take only slot->mu, Register/Unregister only mu_ — no cycle.
  uint64_t generation =
      profiler_internal::g_generation.load(std::memory_order_relaxed);
  std::string key;
  for (const auto& slot : slots_) {
    key.assign(slot->thread_name);
    {
      std::lock_guard<std::mutex> slot_lock(slot->mu);
      if (slot->generation != generation || slot->depth == 0) {
        key += ";idle";
      } else {
        for (uint32_t i = 0; i < slot->depth; ++i) {
          key += ';';
          key += slot->frames[i];
        }
      }
    }
    ++counts_[key];
    ++total_samples_;
  }
}

ProfileSnapshot Profiler::SnapshotLocked() const {
  ProfileSnapshot snapshot;
  snapshot.folded = counts_;
  snapshot.total_samples = total_samples_;
  snapshot.hz = options_.hz;
  snapshot.duration_s = accumulated_s_;
  if (running_) {
    snapshot.duration_s +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      started_)
            .count();
  }
  return snapshot;
}

ProfileSnapshot Profiler::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return SnapshotLocked();
}

ProfileSnapshot Profiler::Capture(double seconds) {
  seconds = std::max(0.0, seconds);
  bool was_running;
  {
    std::lock_guard<std::mutex> lock(mu_);
    was_running = running_;
    if (!running_) StartLocked();
  }
  ProfileSnapshot before = Snapshot();
  double wait_before = PoolHistogramSum("raptor_pool_task_wait_ms");
  double run_before = PoolHistogramSum("raptor_pool_task_ms");

  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));

  ProfileSnapshot after = Snapshot();
  ProfileSnapshot window;
  window.hz = after.hz;
  window.duration_s = after.duration_s - before.duration_s;
  window.total_samples = after.total_samples - before.total_samples;
  for (const auto& [stack, count] : after.folded) {
    uint64_t base = 0;
    auto it = before.folded.find(stack);
    if (it != before.folded.end()) base = it->second;
    if (count > base) window.folded[stack] = count - base;
  }
  window.queue_wait_ms =
      PoolHistogramSum("raptor_pool_task_wait_ms") - wait_before;
  window.queue_run_ms = PoolHistogramSum("raptor_pool_task_ms") - run_before;
  // Render queue wait as samples at this profile's frequency so the
  // synthetic frame is proportionate next to the sampled stacks.
  if (window.queue_wait_ms > 0 && window.hz > 0) {
    auto samples = static_cast<uint64_t>(
        std::llround(window.queue_wait_ms * window.hz / 1000.0));
    if (samples > 0) window.folded["pool-worker;queue-wait"] += samples;
  }
  if (!was_running) Stop();
  return window;
}

std::string Profiler::RenderFolded(const ProfileSnapshot& snapshot) {
  std::string out;
  for (const auto& [stack, count] : snapshot.folded) {
    out += stack;
    out += ' ';
    out += std::to_string(count);
    out += '\n';
  }
  return out;
}

size_t Profiler::registered_threads() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slots_.size();
}

}  // namespace raptor::obs
