// Trace-correlated structured logging with a bounded in-memory ring (the
// "flight recorder" served at GET /api/logs).
//
// Records are leveled (DEBUG/INFO/WARN/ERROR) key-value documents that
// automatically carry the id of the trace active on the calling thread
// (obs::Tracer), which is what lets one `GET /api/logs?trace=<id>` pull
// every decision the engine narrated during one hunt.
//
// Design for near-zero disabled cost, mirroring the tracer: every call
// site goes through Logger::Log unconditionally; when the logger is
// disabled (no sink attached) or the record's level is below the
// threshold, the returned LogEvent is inert and the call costs two relaxed
// atomic loads — no allocation, no formatting. Field() values attached to
// an inert event are never materialized by the caller pattern
//
//   logger.Log(LogLevel::kWarn, "engine", "query truncated")
//       .Field("pattern", p.id)
//       .Field("reason", code);
//
// because Field() on an inert event returns immediately. Call sites that
// must *compute* an expensive value first should guard on active().
//
// The ring is lock-cheap: one short mutex hold per committed record (and
// commits only happen when a sink is attached). Per-(subsystem,level)
// emission and drop counters live in obs::Registry:
//
//   raptor_log_records_total{subsystem,level}          committed records
//   raptor_log_dropped_total{subsystem,level,reason}   reason = "ring_evicted"
//                                                      (overflow) | "sampled"
//                                                      (token bucket said no)
//
// Hot-path sites (e.g. malformed audit lines, which an adversarial
// producer controls) log through a LogSampler token bucket: the first
// `burst` records in a window commit, the rest are counted, and the next
// committed record carries a `suppressed` tally so nothing is silently
// lost.
//
// Dependency-free (standard library + obs only); raptor_common links this
// library, so it must not link anything above obs.

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace raptor::obs {

enum class LogLevel : uint8_t { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Canonical lower-case level name ("debug", "info", "warn", "error").
std::string_view LogLevelName(LogLevel level);

/// Parses a level name, case-insensitive; nullopt for unknown names.
std::optional<LogLevel> ParseLogLevel(std::string_view name);

/// \brief One committed log record.
struct LogRecord {
  uint64_t seq = 0;      ///< Monotonic per-process sequence number.
  uint64_t unix_ms = 0;  ///< Wall clock at commit.
  uint64_t trace_id = 0; ///< Active trace on the emitting thread; 0 = none.
  LogLevel level = LogLevel::kInfo;
  std::string subsystem;  ///< Closed set: "audit", "nlp", "synthesis",
                          ///< "tbql", "engine", "storage", "core",
                          ///< "server", "fault", "slo".
  std::string message;    ///< Static description; variability goes in fields.
  std::vector<std::pair<std::string, std::string>> fields;
  /// Records the sampler dropped since the previous committed record of
  /// this site (0 for unsampled sites).
  uint64_t suppressed = 0;
};

/// \brief Token bucket for hot-path log sites: admits the first `burst`
/// records, then refills at `refill_per_sec`; everything else is counted.
/// Thread-safe; call sites hold one in a function-local static.
class LogSampler {
 public:
  LogSampler(double burst, double refill_per_sec);

  /// Consumes one token when available. On failure the caller's record is
  /// dropped and the suppression tally grows.
  bool Admit();

  /// Suppressed-since-last-admit tally, consumed by the next committed
  /// record.
  uint64_t TakeSuppressed();

  uint64_t suppressed_total() const {
    return suppressed_total_.load(std::memory_order_relaxed);
  }

 private:
  std::mutex mu_;
  double tokens_;
  const double burst_;
  const double refill_per_sec_;
  std::chrono::steady_clock::time_point last_refill_;
  std::atomic<uint64_t> pending_suppressed_{0};
  std::atomic<uint64_t> suppressed_total_{0};
};

class Logger;

/// \brief Builder for one record. Inert (all methods no-ops) when the
/// logger declined the record; commits to the ring at destruction or
/// explicit Commit(). Movable, not copyable.
class LogEvent {
 public:
  LogEvent() = default;
  LogEvent(LogEvent&& other) noexcept { *this = std::move(other); }
  LogEvent& operator=(LogEvent&& other) noexcept;
  LogEvent(const LogEvent&) = delete;
  LogEvent& operator=(const LogEvent&) = delete;
  ~LogEvent() { Commit(); }

  bool active() const { return record_ != nullptr; }

  LogEvent& Field(std::string_view key, std::string_view value);
  LogEvent& Field(std::string_view key, const char* value) {
    return Field(key, std::string_view(value));
  }
  LogEvent& Field(std::string_view key, const std::string& value) {
    return Field(key, std::string_view(value));
  }
  LogEvent& Field(std::string_view key, int64_t value);
  LogEvent& Field(std::string_view key, uint64_t value);
  LogEvent& Field(std::string_view key, double value);
  LogEvent& Field(std::string_view key, bool value);

  /// Pushes the record into the ring. Idempotent.
  void Commit();

 private:
  friend class Logger;
  LogEvent(Logger* logger, std::unique_ptr<LogRecord> record)
      : logger_(logger), record_(std::move(record)) {}

  Logger* logger_ = nullptr;
  std::unique_ptr<LogRecord> record_;
};

/// \brief Filter for Logger::Snapshot (the /api/logs query parameters).
struct LogFilter {
  std::optional<LogLevel> min_level;  ///< Keep records at/above this level.
  std::string subsystem;              ///< Exact match; empty = any.
  uint64_t trace_id = 0;              ///< Exact match; 0 = any.
  size_t limit = 0;  ///< Keep only the newest N matches; 0 = all.
};

/// \brief The process-wide structured logger ("flight recorder").
class Logger {
 public:
  static Logger& Default();

  /// Whether Log() records at all. Flipped on when a sink attaches (the
  /// HTTP API does this at registration); library users keep the zero-cost
  /// disabled path.
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Minimum level recorded (default kInfo; DEBUG narration is opt-in).
  void set_min_level(LogLevel level) {
    min_level_.store(static_cast<uint8_t>(level), std::memory_order_relaxed);
  }
  LogLevel min_level() const {
    return static_cast<LogLevel>(min_level_.load(std::memory_order_relaxed));
  }

  /// Ring capacity (default 2048 records; overflow evicts the oldest and
  /// bumps the ring_evicted drop counter).
  void set_capacity(size_t capacity);
  size_t capacity() const;

  /// Opens a record. Inert when disabled or below the level threshold.
  LogEvent Log(LogLevel level, std::string_view subsystem,
               std::string_view message);

  /// Sampled variant for hot paths: when the bucket declines, the record
  /// is dropped, counted under reason="sampled", and the next admitted
  /// record carries the suppressed tally.
  LogEvent Sampled(LogLevel level, std::string_view subsystem,
                   std::string_view message, LogSampler* sampler);

  /// Matching records, oldest first (the newest `filter.limit` of them).
  std::vector<LogRecord> Snapshot(const LogFilter& filter = {}) const;

  /// Records committed since process start (evictions do not subtract).
  uint64_t records_committed() const {
    return committed_.load(std::memory_order_relaxed);
  }

  /// Drops everything in the ring (test support).
  void Clear();

 private:
  friend class LogEvent;
  void Commit(std::unique_ptr<LogRecord> record);

  std::atomic<bool> enabled_{false};
  std::atomic<uint8_t> min_level_{static_cast<uint8_t>(LogLevel::kInfo)};
  std::atomic<uint64_t> next_seq_{1};
  std::atomic<uint64_t> committed_{0};
  mutable std::mutex mu_;
  size_t capacity_ = 2048;
  std::deque<LogRecord> ring_;
};

}  // namespace raptor::obs
