#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>

namespace raptor::obs {

namespace {

/// Formats a double the way Prometheus expects: integral values without a
/// fractional part, everything else with enough digits to round-trip.
std::string FormatNumber(double value) {
  if (value == static_cast<double>(static_cast<long long>(value)) &&
      value > -1e15 && value < 1e15) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%lld",
                  static_cast<long long>(value));
    return buffer;
  }
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

void AppendEscaped(std::string* out, std::string_view value) {
  for (char c : value) {
    switch (c) {
      case '\\':
        *out += "\\\\";
        break;
      case '"':
        *out += "\\\"";
        break;
      case '\n':
        *out += "\\n";
        break;
      default:
        *out += c;
    }
  }
}

void AppendEscapedHelp(std::string* out, std::string_view help) {
  for (char c : help) {
    if (c == '\\') {
      *out += "\\\\";
    } else if (c == '\n') {
      *out += "\\n";
    } else {
      *out += c;
    }
  }
}

/// Dummy instruments returned on family-type conflicts: updates land in an
/// unregistered instrument instead of corrupting the exposition.
Counter* DummyCounter() {
  static Counter* dummy = new Counter();
  return dummy;
}
Gauge* DummyGauge() {
  static Gauge* dummy = new Gauge();
  return dummy;
}
Histogram* DummyHistogram() {
  static Histogram* dummy = new Histogram(LatencyBucketsMs());
  return dummy;
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      buckets_(new std::atomic<uint64_t>[bounds_.size() + 1]) {
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::Observe(double value) {
  size_t bucket =
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin();
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double sum = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(sum, sum + value,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<double> LatencyBucketsMs() {
  return {0.05, 0.1, 0.25, 0.5, 1,   2.5,  5,    10,   25,
          50,   100, 250,  500, 1000, 2500, 5000, 10000};
}

std::vector<double> ExponentialBuckets(double start, double factor,
                                       size_t count) {
  std::vector<double> bounds;
  bounds.reserve(count);
  double bound = start;
  for (size_t i = 0; i < count; ++i) {
    bounds.push_back(bound);
    bound *= factor;
  }
  return bounds;
}

std::string RenderLabels(const LabelSet& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ",";
    first = false;
    out += key;
    out += "=\"";
    AppendEscaped(&out, value);
    out += "\"";
  }
  out += "}";
  return out;
}

Registry& Registry::Default() {
  static Registry* registry = new Registry();
  return *registry;
}

Registry::Family* Registry::GetFamily(std::string_view name,
                                      std::string_view help, Type type) {
  auto it = families_.find(name);
  if (it == families_.end()) {
    Family family;
    family.type = type;
    family.help = std::string(help);
    it = families_.emplace(std::string(name), std::move(family)).first;
  }
  if (it->second.type != type) return nullptr;
  if (it->second.help.empty() && !help.empty()) {
    it->second.help = std::string(help);
  }
  return &it->second;
}

Counter* Registry::GetCounter(std::string_view name, std::string_view help,
                              const LabelSet& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Family* family = GetFamily(name, help, Type::kCounter);
  if (family == nullptr) return DummyCounter();
  auto& child = family->counters[RenderLabels(labels)];
  if (child == nullptr) child = std::make_unique<Counter>();
  return child.get();
}

Gauge* Registry::GetGauge(std::string_view name, std::string_view help,
                          const LabelSet& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Family* family = GetFamily(name, help, Type::kGauge);
  if (family == nullptr) return DummyGauge();
  auto& child = family->gauges[RenderLabels(labels)];
  if (child == nullptr) child = std::make_unique<Gauge>();
  return child.get();
}

Histogram* Registry::GetHistogram(std::string_view name,
                                  std::string_view help,
                                  std::vector<double> bounds,
                                  const LabelSet& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Family* family = GetFamily(name, help, Type::kHistogram);
  if (family == nullptr) return DummyHistogram();
  if (family->bounds.empty()) {
    family->bounds = bounds.empty() ? LatencyBucketsMs() : std::move(bounds);
  }
  auto& child = family->histograms[RenderLabels(labels)];
  if (child == nullptr) child = std::make_unique<Histogram>(family->bounds);
  return child.get();
}

uint64_t Registry::CounterValue(std::string_view name,
                                const LabelSet& labels) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = families_.find(name);
  if (it == families_.end() || it->second.type != Type::kCounter) return 0;
  auto child = it->second.counters.find(RenderLabels(labels));
  if (child == it->second.counters.end()) return 0;
  return child->second->Value();
}

int64_t Registry::GaugeValue(std::string_view name,
                             const LabelSet& labels) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = families_.find(name);
  if (it == families_.end() || it->second.type != Type::kGauge) return 0;
  auto child = it->second.gauges.find(RenderLabels(labels));
  if (child == it->second.gauges.end()) return 0;
  return child->second->Value();
}

uint64_t Registry::CounterFamilySum(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = families_.find(name);
  if (it == families_.end() || it->second.type != Type::kCounter) return 0;
  uint64_t sum = 0;
  for (const auto& [labels, counter] : it->second.counters) {
    sum += counter->Value();
  }
  return sum;
}

const Histogram* Registry::FindHistogram(std::string_view name,
                                         const LabelSet& labels) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = families_.find(name);
  if (it == families_.end() || it->second.type != Type::kHistogram) {
    return nullptr;
  }
  auto child = it->second.histograms.find(RenderLabels(labels));
  if (child == it->second.histograms.end()) return nullptr;
  return child->second.get();
}

std::vector<std::pair<LabelSet, const Histogram*>> Registry::HistogramChildren(
    std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<LabelSet, const Histogram*>> children;
  auto it = families_.find(name);
  if (it == families_.end() || it->second.type != Type::kHistogram) {
    return children;
  }
  for (const auto& [labels, histogram] : it->second.histograms) {
    children.emplace_back(ParseRenderedLabels(labels), histogram.get());
  }
  return children;
}

std::vector<FamilySnapshot> Registry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<FamilySnapshot> out;
  out.reserve(families_.size());
  for (const auto& [name, family] : families_) {
    FamilySnapshot snapshot;
    snapshot.name = name;
    snapshot.help = family.help;
    switch (family.type) {
      case Type::kCounter:
        snapshot.type = "counter";
        for (const auto& [labels, counter] : family.counters) {
          MetricSample sample;
          sample.labels = ParseRenderedLabels(labels);
          sample.value = static_cast<double>(counter->Value());
          snapshot.samples.push_back(std::move(sample));
        }
        break;
      case Type::kGauge:
        snapshot.type = "gauge";
        for (const auto& [labels, gauge] : family.gauges) {
          MetricSample sample;
          sample.labels = ParseRenderedLabels(labels);
          sample.value = static_cast<double>(gauge->Value());
          snapshot.samples.push_back(std::move(sample));
        }
        break;
      case Type::kHistogram:
        snapshot.type = "histogram";
        for (const auto& [labels, histogram] : family.histograms) {
          MetricSample sample;
          sample.labels = ParseRenderedLabels(labels);
          uint64_t cumulative = 0;
          for (size_t i = 0; i < histogram->bounds().size(); ++i) {
            cumulative += histogram->BucketCount(i);
            sample.buckets.emplace_back(histogram->bounds()[i], cumulative);
          }
          sample.sum = histogram->Sum();
          sample.count = histogram->Count();
          snapshot.samples.push_back(std::move(sample));
        }
        break;
    }
    out.push_back(std::move(snapshot));
  }
  return out;
}

std::string Registry::RenderPrometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, family] : families_) {
    if (!family.help.empty()) {
      out += "# HELP " + name + " ";
      AppendEscapedHelp(&out, family.help);
      out += "\n";
    }
    out += "# TYPE " + name + " ";
    switch (family.type) {
      case Type::kCounter:
        out += "counter\n";
        for (const auto& [labels, counter] : family.counters) {
          out += name + labels + " " +
                 FormatNumber(static_cast<double>(counter->Value())) + "\n";
        }
        break;
      case Type::kGauge:
        out += "gauge\n";
        for (const auto& [labels, gauge] : family.gauges) {
          out += name + labels + " " +
                 FormatNumber(static_cast<double>(gauge->Value())) + "\n";
        }
        break;
      case Type::kHistogram:
        out += "histogram\n";
        for (const auto& [labels, histogram] : family.histograms) {
          // The exposition's bucket counts are cumulative and each bucket
          // line needs the `le` label appended to the child's labels.
          std::string label_prefix =
              labels.empty() ? "{"
                             : labels.substr(0, labels.size() - 1) + ",";
          uint64_t cumulative = 0;
          for (size_t i = 0; i < histogram->bounds().size(); ++i) {
            cumulative += histogram->BucketCount(i);
            out += name + "_bucket" + label_prefix + "le=\"" +
                   FormatNumber(histogram->bounds()[i]) + "\"} " +
                   FormatNumber(static_cast<double>(cumulative)) + "\n";
          }
          cumulative += histogram->BucketCount(histogram->bounds().size());
          out += name + "_bucket" + label_prefix + "le=\"+Inf\"} " +
                 FormatNumber(static_cast<double>(cumulative)) + "\n";
          out += name + "_sum" + labels + " " +
                 FormatNumber(histogram->Sum()) + "\n";
          out += name + "_count" + labels + " " +
                 FormatNumber(static_cast<double>(histogram->Count())) + "\n";
        }
        break;
    }
  }
  return out;
}

void Registry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  families_.clear();
}

LabelSet ParseRenderedLabels(std::string_view rendered) {
  LabelSet labels;
  if (rendered.size() < 2 || rendered.front() != '{') return labels;
  size_t i = 1;
  while (i < rendered.size() && rendered[i] != '}') {
    size_t eq = rendered.find('=', i);
    if (eq == std::string_view::npos || eq + 1 >= rendered.size() ||
        rendered[eq + 1] != '"') {
      break;  // malformed; RenderLabels never produces this
    }
    std::string key(rendered.substr(i, eq - i));
    std::string value;
    size_t j = eq + 2;
    while (j < rendered.size() && rendered[j] != '"') {
      if (rendered[j] == '\\' && j + 1 < rendered.size()) {
        char escaped = rendered[j + 1];
        value += escaped == 'n' ? '\n' : escaped;
        j += 2;
      } else {
        value += rendered[j];
        ++j;
      }
    }
    labels.emplace_back(std::move(key), std::move(value));
    i = j + 1;                                   // past closing quote
    if (i < rendered.size() && rendered[i] == ',') ++i;
  }
  return labels;
}

double HistogramQuantile(const Histogram& histogram, double q) {
  uint64_t count = histogram.Count();
  if (count == 0) return 0;
  q = std::min(1.0, std::max(0.0, q));
  double target = q * static_cast<double>(count);
  const std::vector<double>& bounds = histogram.bounds();
  uint64_t cumulative = 0;
  for (size_t i = 0; i < bounds.size(); ++i) {
    uint64_t in_bucket = histogram.BucketCount(i);
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) >= target) {
      // The first bucket spans (-inf, bounds[0]]; interpolate from 0 for
      // the usual all-positive latency buckets, but never from above the
      // bucket's own upper bound when bounds[0] is negative.
      double lower = i == 0 ? std::min(0.0, bounds[0]) : bounds[i - 1];
      double fraction = (target - static_cast<double>(cumulative)) /
                        static_cast<double>(in_bucket);
      return lower + (bounds[i] - lower) * fraction;
    }
    cumulative += in_bucket;
  }
  // Target falls in the +Inf bucket: clamp to the largest finite bound.
  return bounds.empty() ? 0 : bounds.back();
}

}  // namespace raptor::obs
