#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>

namespace raptor::obs {

namespace {

/// Formats a double the way Prometheus expects: integral values without a
/// fractional part, everything else with enough digits to round-trip.
std::string FormatNumber(double value) {
  if (value == static_cast<double>(static_cast<long long>(value)) &&
      value > -1e15 && value < 1e15) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%lld",
                  static_cast<long long>(value));
    return buffer;
  }
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

void AppendEscaped(std::string* out, std::string_view value) {
  for (char c : value) {
    switch (c) {
      case '\\':
        *out += "\\\\";
        break;
      case '"':
        *out += "\\\"";
        break;
      case '\n':
        *out += "\\n";
        break;
      default:
        *out += c;
    }
  }
}

void AppendEscapedHelp(std::string* out, std::string_view help) {
  for (char c : help) {
    if (c == '\\') {
      *out += "\\\\";
    } else if (c == '\n') {
      *out += "\\n";
    } else {
      *out += c;
    }
  }
}

/// Dummy instruments returned on family-type conflicts: updates land in an
/// unregistered instrument instead of corrupting the exposition.
Counter* DummyCounter() {
  static Counter* dummy = new Counter();
  return dummy;
}
Gauge* DummyGauge() {
  static Gauge* dummy = new Gauge();
  return dummy;
}
Histogram* DummyHistogram() {
  static Histogram* dummy = new Histogram(LatencyBucketsMs());
  return dummy;
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      buckets_(new std::atomic<uint64_t>[bounds_.size() + 1]) {
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::Observe(double value) {
  size_t bucket =
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin();
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double sum = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(sum, sum + value,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<double> LatencyBucketsMs() {
  return {0.05, 0.1, 0.25, 0.5, 1,   2.5,  5,    10,   25,
          50,   100, 250,  500, 1000, 2500, 5000, 10000};
}

std::vector<double> ExponentialBuckets(double start, double factor,
                                       size_t count) {
  std::vector<double> bounds;
  bounds.reserve(count);
  double bound = start;
  for (size_t i = 0; i < count; ++i) {
    bounds.push_back(bound);
    bound *= factor;
  }
  return bounds;
}

std::string RenderLabels(const LabelSet& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ",";
    first = false;
    out += key;
    out += "=\"";
    AppendEscaped(&out, value);
    out += "\"";
  }
  out += "}";
  return out;
}

Registry& Registry::Default() {
  static Registry* registry = new Registry();
  return *registry;
}

Registry::Family* Registry::GetFamily(std::string_view name,
                                      std::string_view help, Type type) {
  auto it = families_.find(name);
  if (it == families_.end()) {
    Family family;
    family.type = type;
    family.help = std::string(help);
    it = families_.emplace(std::string(name), std::move(family)).first;
  }
  if (it->second.type != type) return nullptr;
  if (it->second.help.empty() && !help.empty()) {
    it->second.help = std::string(help);
  }
  return &it->second;
}

Counter* Registry::GetCounter(std::string_view name, std::string_view help,
                              const LabelSet& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Family* family = GetFamily(name, help, Type::kCounter);
  if (family == nullptr) return DummyCounter();
  auto& child = family->counters[RenderLabels(labels)];
  if (child == nullptr) child = std::make_unique<Counter>();
  return child.get();
}

Gauge* Registry::GetGauge(std::string_view name, std::string_view help,
                          const LabelSet& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Family* family = GetFamily(name, help, Type::kGauge);
  if (family == nullptr) return DummyGauge();
  auto& child = family->gauges[RenderLabels(labels)];
  if (child == nullptr) child = std::make_unique<Gauge>();
  return child.get();
}

Histogram* Registry::GetHistogram(std::string_view name,
                                  std::string_view help,
                                  std::vector<double> bounds,
                                  const LabelSet& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Family* family = GetFamily(name, help, Type::kHistogram);
  if (family == nullptr) return DummyHistogram();
  if (family->bounds.empty()) {
    family->bounds = bounds.empty() ? LatencyBucketsMs() : std::move(bounds);
  }
  auto& child = family->histograms[RenderLabels(labels)];
  if (child == nullptr) child = std::make_unique<Histogram>(family->bounds);
  return child.get();
}

uint64_t Registry::CounterValue(std::string_view name,
                                const LabelSet& labels) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = families_.find(name);
  if (it == families_.end() || it->second.type != Type::kCounter) return 0;
  auto child = it->second.counters.find(RenderLabels(labels));
  if (child == it->second.counters.end()) return 0;
  return child->second->Value();
}

int64_t Registry::GaugeValue(std::string_view name,
                             const LabelSet& labels) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = families_.find(name);
  if (it == families_.end() || it->second.type != Type::kGauge) return 0;
  auto child = it->second.gauges.find(RenderLabels(labels));
  if (child == it->second.gauges.end()) return 0;
  return child->second->Value();
}

std::string Registry::RenderPrometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, family] : families_) {
    if (!family.help.empty()) {
      out += "# HELP " + name + " ";
      AppendEscapedHelp(&out, family.help);
      out += "\n";
    }
    out += "# TYPE " + name + " ";
    switch (family.type) {
      case Type::kCounter:
        out += "counter\n";
        for (const auto& [labels, counter] : family.counters) {
          out += name + labels + " " +
                 FormatNumber(static_cast<double>(counter->Value())) + "\n";
        }
        break;
      case Type::kGauge:
        out += "gauge\n";
        for (const auto& [labels, gauge] : family.gauges) {
          out += name + labels + " " +
                 FormatNumber(static_cast<double>(gauge->Value())) + "\n";
        }
        break;
      case Type::kHistogram:
        out += "histogram\n";
        for (const auto& [labels, histogram] : family.histograms) {
          // The exposition's bucket counts are cumulative and each bucket
          // line needs the `le` label appended to the child's labels.
          std::string label_prefix =
              labels.empty() ? "{"
                             : labels.substr(0, labels.size() - 1) + ",";
          uint64_t cumulative = 0;
          for (size_t i = 0; i < histogram->bounds().size(); ++i) {
            cumulative += histogram->BucketCount(i);
            out += name + "_bucket" + label_prefix + "le=\"" +
                   FormatNumber(histogram->bounds()[i]) + "\"} " +
                   FormatNumber(static_cast<double>(cumulative)) + "\n";
          }
          cumulative += histogram->BucketCount(histogram->bounds().size());
          out += name + "_bucket" + label_prefix + "le=\"+Inf\"} " +
                 FormatNumber(static_cast<double>(cumulative)) + "\n";
          out += name + "_sum" + labels + " " +
                 FormatNumber(histogram->Sum()) + "\n";
          out += name + "_count" + labels + " " +
                 FormatNumber(static_cast<double>(histogram->Count())) + "\n";
        }
        break;
    }
  }
  return out;
}

void Registry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  families_.clear();
}

}  // namespace raptor::obs
