// Bounded misestimate journal: the worst cardinality-estimation misses,
// each retained with the query text, a snapshot of the statistics the
// estimator saw, and per-operator estimate-vs-actual rows — enough to
// diagnose why the estimator was wrong without re-running the query.
//
// Like the slow journal, this layer is deliberately generic (plain strings
// and doubles) so obs stays free of engine types; the core layer
// translates `engine::ExecutionStats` into `MisestimateOperator` rows.
// Served at `GET /api/misestimates` and folded into `/api/debug/bundle`.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace raptor::obs {

/// One executed pattern's estimate against its observed row count.
struct MisestimateOperator {
  std::string name;     ///< Step label (pattern id).
  std::string backend;  ///< "relational" or "graph".
  double est_rows = 0;
  uint64_t actual_rows = 0;
  double q_error = 1;  ///< max(est,actual)/min(est,actual), floored at 1.
};

/// One recorded misestimated execution.
struct MisestimateEntry {
  uint64_t id = 0;       ///< Journal-assigned, monotonically increasing.
  uint64_t unix_ms = 0;  ///< Wall-clock time the entry was recorded.
  std::string kind;      ///< "query" or "hunt".
  std::string query;     ///< TBQL text.
  double worst_q_error = 1;  ///< Max q-error across the operators.
  /// Human-readable summary of the statistics the estimator read (table
  /// row counts and such), captured at record time.
  std::string stats_snapshot;
  std::vector<MisestimateOperator> ops;
};

/// Threshold and retention. A threshold of 0 records every execution.
struct MisestimateJournalOptions {
  /// Record when any operator's q-error meets or exceeds this.
  double q_error_threshold = 4.0;
  size_t capacity = 32;  ///< Entries retained; the journal keeps the worst
                         ///< offenders, evicting the mildest miss first.
};

/// Bounded, thread-safe journal of cardinality misestimates. Unlike the
/// slow journal's FIFO retention, eviction keeps the worst offenders: when
/// full, a new entry replaces the retained entry with the smallest
/// worst_q_error (and only if it is worse than that entry).
class MisestimateJournal {
 public:
  /// The process-wide journal used by built-in instrumentation.
  static MisestimateJournal& Default();

  void Configure(const MisestimateJournalOptions& options);
  MisestimateJournalOptions options() const;

  /// True when `worst_q_error` meets or exceeds the threshold.
  bool ShouldRecord(double worst_q_error) const;

  /// Appends an entry, assigning its id and timestamp. When the journal is
  /// full the mildest retained entry is evicted if the new entry is worse;
  /// otherwise the new entry is dropped and 0 is returned. Also bumps
  /// raptor_misestimate_journal_entries_total{kind}.
  uint64_t Record(MisestimateEntry entry);

  /// Retained entries sorted worst-first; `limit` 0 means all.
  std::vector<MisestimateEntry> Snapshot(size_t limit = 0) const;

  std::optional<MisestimateEntry> Find(uint64_t id) const;

  void Clear();

 private:
  mutable std::mutex mu_;
  MisestimateJournalOptions options_;
  std::deque<MisestimateEntry> entries_;  // Insertion order.
  uint64_t next_id_ = 1;
};

}  // namespace raptor::obs
