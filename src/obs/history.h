// Bounded in-process metrics time-series history (the substrate behind
// GET /api/metrics/range, history-backed SLO burn rates, incident capture,
// and the built-in dashboard).
//
// A background collector thread samples Registry::Default().Snapshot() at
// a fixed interval (default 1 s) into per-series ring buffers with three
// multi-resolution retention tiers:
//
//   tier 0 (raw)     1 s resolution x 15 min
//   tier 1 (mid)    10 s resolution x  2 h
//   tier 2 (coarse) 60 s resolution x 24 h
//
// A sample lands in tier 0; when it crosses a coarser tier's bucket
// boundary, the completed bucket folds down with deterministic semantics
// per metric kind:
//
//   counters    last cumulative value in the bucket (rates are deltas at
//               query time, with counter-reset handling)
//   gauges      avg / min / max over the bucket (all three retained)
//   histograms  last cumulative bucket counts, so windowed rates and
//               quantiles are answerable at any resolution via bucket
//               deltas between the window's edges
//
// Rings are delta-encoded: timestamps are 32-bit offsets from a per-ring
// base, and histogram points store per-bucket increments vs the previous
// sample (cumulative counts are reconstructed by a front-to-back walk,
// which every window query performs anyway). All retained bytes are
// charged to obs::ResourceTracker (Component::kHistory) and self-reported
// as raptor_history_* metrics.
//
// Beyond the collector, Append() lets other obs subsystems use the store
// as their time-series substrate — the SLO engine records its per-SLO
// good/bad tallies and burn rates here, which is what makes its windows
// "history-backed" and incident capture able to freeze the offending
// window.
//
// Time comes from an injectable obs::Clock (ManualClock in tests), so
// tier boundaries, retention eviction, and range output are byte-for-byte
// deterministic under a stepped clock.
//
// Dependency-free (standard library + obs only): raptor_common links
// against raptor_obs, so this header must not reach outside src/obs.

#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/clock.h"
#include "obs/metrics.h"

namespace raptor::obs {

/// \brief What a series measures; fixes its downsampling and the range
/// aggregations that apply to it.
enum class SeriesKind { kCounter, kGauge, kHistogram };

/// Canonical lower-case kind name ("counter", "gauge", "histogram").
std::string_view SeriesKindName(SeriesKind kind);

/// \brief One retention tier: sample resolution and how far back it keeps.
struct HistoryTier {
  double interval_s = 1;
  double retention_s = 900;
};

/// \brief Knobs for the history store (ThreatRaptorOptions::history).
struct HistoryOptions {
  /// Install the store and let the API start the collector thread.
  bool enabled = true;
  /// Collector sampling interval. Appends between ticks are accepted at
  /// any rate; the tiers bound memory regardless.
  double sample_interval_s = 1.0;
  /// Retention tiers, finest first. Intervals must be ascending; each
  /// coarser tier folds completed buckets of the finer stream.
  std::vector<HistoryTier> tiers = {{1, 900}, {10, 7200}, {60, 86400}};
  /// Hard cap on distinct series; new series beyond it are dropped and
  /// counted in raptor_history_series_dropped_total.
  size_t max_series = 2048;
  /// Injectable time source; null means wall time (SystemClock).
  std::shared_ptr<Clock> clock;
};

/// \brief Range-query aggregation functions (the `agg=` parameter).
enum class RangeAgg { kRate, kAvg, kMin, kMax, kLast, kP50, kP99 };

/// Parses "rate|avg|min|max|last|p50|p99"; nullopt otherwise.
std::optional<RangeAgg> ParseRangeAgg(std::string_view name);
std::string_view RangeAggName(RangeAgg agg);

/// \brief One range query (GET /api/metrics/range).
struct RangeRequest {
  std::string name;  ///< Metric family name (required).
  /// Optional label filter: only series whose label set contains this
  /// key=value pair match. Empty key means no filter.
  std::string label_key;
  std::string label_value;
  uint64_t start_ms = 0;  ///< Window start (unix ms), inclusive.
  uint64_t end_ms = 0;    ///< Window end (unix ms), inclusive.
  uint64_t step_ms = 0;   ///< Output step; 0 = the serving tier's interval.
  RangeAgg agg = RangeAgg::kAvg;
};

/// \brief One aggregated output point.
struct RangePoint {
  uint64_t t_ms = 0;  ///< Step-bucket start.
  double value = 0;
};

/// \brief One matching series' aggregated points.
struct RangeSeries {
  LabelSet labels;
  std::vector<RangePoint> points;
};

/// \brief A range query's answer. `error` is empty on success (the obs
/// library has no Status type; the API maps it to a 400).
struct RangeResult {
  std::string error;
  SeriesKind kind = SeriesKind::kGauge;
  size_t tier = 0;  ///< Index of the tier that served the query.
  double tier_interval_s = 0;
  uint64_t step_ms = 0;  ///< Effective step after defaulting/clamping.
  std::vector<RangeSeries> series;
};

/// \brief Summary of one series over a time window (the SLO engine's
/// burn-rate substrate).
struct WindowStats {
  size_t points = 0;
  double first = 0;
  double last = 0;
  double min = 0;
  double max = 0;
  double avg = 0;
  /// Counter semantics: sum of non-negative consecutive deltas; a
  /// decrease (counter reset) contributes the post-reset value.
  double increase = 0;
};

/// \brief A raw window of one series, for incident capture: every retained
/// point (histograms dump their cumulative count) between two timestamps.
struct SeriesWindow {
  std::string name;
  LabelSet labels;
  SeriesKind kind = SeriesKind::kGauge;
  std::vector<RangePoint> points;
};

/// \brief The process-wide metrics history store.
///
/// Configure installs options and clears retained data (no thread); the
/// API server calls Start when HistoryOptions::enabled to run the
/// collector. CollectNow lets tests drive sampling deterministically
/// against an injected ManualClock.
class MetricsHistory {
 public:
  /// Implementation detail (per-series rings + accumulators); public only
  /// so file-scope helpers in history.cc can name it.
  struct Series;

  MetricsHistory();
  ~MetricsHistory();

  MetricsHistory(const MetricsHistory&) = delete;
  MetricsHistory& operator=(const MetricsHistory&) = delete;

  /// The process-wide store behind /api/metrics/range and the SLO engine.
  static MetricsHistory& Default();

  /// Stops a running collector, drops every series, and installs the
  /// options. The ThreatRaptor constructor calls this.
  void Configure(const HistoryOptions& options);
  HistoryOptions options() const;

  void Start();
  void Stop();
  bool running() const;

  /// One collector tick at the clock's current time: snapshots the
  /// registry and appends every instrument to its series.
  void CollectNow();

  /// Current time on the injected clock (unix ms).
  uint64_t NowUnixMs() const;

  /// The registry snapshot taken by the most recent collector tick;
  /// nullptr before the first tick. /api/watch reuses this instead of
  /// re-snapshotting the registry per streamed frame.
  std::shared_ptr<const std::vector<FamilySnapshot>> LatestSnapshot() const;

  /// Appends one scalar sample to a series (created on first use; the
  /// kind is fixed then). Out-of-order timestamps (<= the series' newest)
  /// are dropped. This is the programmatic path the SLO engine uses.
  void Append(std::string_view name, const LabelSet& labels, SeriesKind kind,
              uint64_t t_ms, double value);

  /// Drops one series from every tier (the SLO engine clears its series
  /// on Configure).
  void RemoveSeries(std::string_view name, const LabelSet& labels);

  /// Summary of `[t0_ms, t1_ms]` (inclusive) for one scalar series, from
  /// the finest tier whose retention covers t0. nullopt when the series
  /// does not exist or has no points in the window.
  std::optional<WindowStats> Window(std::string_view name,
                                    const LabelSet& labels, uint64_t t0_ms,
                                    uint64_t t1_ms) const;

  /// Aggregated range query over every matching child series (the
  /// /api/metrics/range handler).
  RangeResult Range(const RangeRequest& request) const;

  /// Every child series of `name` dumped raw over `[t0_ms, t1_ms]`
  /// (incident capture freezes these).
  std::vector<SeriesWindow> WindowDump(std::string_view name, uint64_t t0_ms,
                                       uint64_t t1_ms) const;

  /// The kind of `name`'s series, or nullopt when never seen.
  std::optional<SeriesKind> Kind(std::string_view name) const;

  size_t SeriesCount() const;
  /// Approximate retained bytes (also charged to Component::kHistory and
  /// published as raptor_history_bytes).
  size_t ApproxBytes() const;

  /// Collector ticks performed (raptor_history_samples_total mirror).
  uint64_t Ticks() const;

 private:
  void CollectorLoop();
  Series* FindOrCreateLocked(std::string_view name, const LabelSet& labels,
                             SeriesKind kind,
                             const std::vector<double>* bounds);
  const Series* FindLocked(std::string_view name, const LabelSet& labels) const;
  void AppendLocked(Series* series, uint64_t t_ms, double value,
                    const std::vector<uint64_t>* cumulative, uint64_t count,
                    double sum);
  /// Picks the finest tier whose retention covers `t0` relative to `now`.
  size_t TierForLocked(uint64_t t0_ms, uint64_t now_ms) const;
  void PublishSelfMetricsLocked();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  HistoryOptions options_;
  /// Keyed by name + rendered labels (the registry child convention).
  std::map<std::string, std::unique_ptr<Series>, std::less<>> series_;
  std::shared_ptr<const std::vector<FamilySnapshot>> latest_;
  uint64_t ticks_ = 0;
  uint64_t dropped_series_ = 0;
  size_t approx_bytes_ = 0;
  int64_t charged_bytes_ = 0;  ///< What ResourceTracker currently holds.
  bool running_ = false;
  std::thread collector_;
};

}  // namespace raptor::obs
