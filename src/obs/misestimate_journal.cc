#include "obs/misestimate_journal.h"

#include <algorithm>
#include <chrono>

#include "obs/metrics.h"

namespace raptor::obs {

MisestimateJournal& MisestimateJournal::Default() {
  static MisestimateJournal* journal = new MisestimateJournal();
  return *journal;
}

void MisestimateJournal::Configure(const MisestimateJournalOptions& options) {
  std::lock_guard<std::mutex> lock(mu_);
  options_ = options;
  if (options_.capacity == 0) options_.capacity = 1;
  while (entries_.size() > options_.capacity) {
    // Shrinking the capacity drops the mildest misses first.
    auto mildest = std::min_element(
        entries_.begin(), entries_.end(),
        [](const MisestimateEntry& a, const MisestimateEntry& b) {
          return a.worst_q_error < b.worst_q_error;
        });
    entries_.erase(mildest);
  }
}

MisestimateJournalOptions MisestimateJournal::options() const {
  std::lock_guard<std::mutex> lock(mu_);
  return options_;
}

bool MisestimateJournal::ShouldRecord(double worst_q_error) const {
  std::lock_guard<std::mutex> lock(mu_);
  return worst_q_error >= options_.q_error_threshold;
}

uint64_t MisestimateJournal::Record(MisestimateEntry entry) {
  entry.unix_ms = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  std::string kind = entry.kind;
  uint64_t id = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (entries_.size() >= options_.capacity) {
      auto mildest = std::min_element(
          entries_.begin(), entries_.end(),
          [](const MisestimateEntry& a, const MisestimateEntry& b) {
            return a.worst_q_error < b.worst_q_error;
          });
      if (mildest->worst_q_error >= entry.worst_q_error) return 0;
      entries_.erase(mildest);
    }
    id = next_id_++;
    entry.id = id;
    entries_.push_back(std::move(entry));
  }
  Registry::Default()
      .GetCounter("raptor_misestimate_journal_entries_total",
                  "Executions recorded by the misestimate journal",
                  {{"kind", kind}})
      ->Increment();
  return id;
}

std::vector<MisestimateEntry> MisestimateJournal::Snapshot(size_t limit) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MisestimateEntry> out(entries_.begin(), entries_.end());
  std::sort(out.begin(), out.end(),
            [](const MisestimateEntry& a, const MisestimateEntry& b) {
              if (a.worst_q_error != b.worst_q_error) {
                return a.worst_q_error > b.worst_q_error;
              }
              return a.id > b.id;  // Newer first among equals.
            });
  if (limit != 0 && limit < out.size()) out.resize(limit);
  return out;
}

std::optional<MisestimateEntry> MisestimateJournal::Find(uint64_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const MisestimateEntry& entry : entries_) {
    if (entry.id == id) return entry;
  }
  return std::nullopt;
}

void MisestimateJournal::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
}

}  // namespace raptor::obs
