// Bounded slow-hunt journal: the last N hunts/queries that blew past a
// latency or bytes threshold, each retained with its full span profile,
// per-operator statistics, and query text — enough to post-mortem a slow
// hunt without reproducing it.
//
// The journal is deliberately generic (plain strings and counters) so that
// the obs layer stays free of engine types; the core layer translates
// `engine::ExecutionStats` into `SlowOperator` rows when it records an
// entry. Served at `GET /api/slow` and folded into `/api/debug/bundle`.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "obs/profile.h"

namespace raptor::obs {

/// One execution step of a recorded hunt (a pattern scan, index probe, or
/// graph path search).
struct SlowOperator {
  std::string name;     ///< Step label (pattern id or edge description).
  std::string backend;  ///< "relational" or "graph".
  std::string access;   ///< "index", "fullscan", "mixed", "graph", "none".
  uint64_t rows_examined = 0;
  uint64_t rows_emitted = 0;
  uint64_t bytes = 0;  ///< Approximate bytes touched by the step.
  double ms = 0;
};

/// One over-threshold hunt or query.
struct SlowEntry {
  uint64_t id = 0;       ///< Journal-assigned, monotonically increasing.
  uint64_t unix_ms = 0;  ///< Wall-clock time the entry was recorded.
  std::string kind;      ///< "query" or "hunt".
  std::string query;     ///< TBQL text (or report excerpt for hunts).
  std::string trigger;   ///< Which threshold fired: "latency" or "bytes".
  double total_ms = 0;
  uint64_t bytes = 0;  ///< Total bytes touched across operators.
  bool truncated = false;
  Profile profile;  ///< Full span profile, when one was collected.
  std::vector<SlowOperator> ops;
};

/// Thresholds and retention for the journal. A threshold of 0 disables
/// that trigger.
struct SlowJournalOptions {
  double latency_threshold_ms = 250;
  uint64_t bytes_threshold = 64ull << 20;
  size_t capacity = 32;  ///< Entries retained; oldest evicted first.
};

/// Bounded, thread-safe journal of slow executions.
class SlowJournal {
 public:
  /// The process-wide journal used by built-in instrumentation.
  static SlowJournal& Default();

  void Configure(const SlowJournalOptions& options);
  SlowJournalOptions options() const;

  /// True when either enabled threshold is met or exceeded.
  bool ShouldRecord(double total_ms, uint64_t bytes) const;

  /// Appends an entry (evicting the oldest past capacity), assigning its
  /// id, timestamp, and trigger. Returns the assigned id. Also bumps
  /// raptor_slow_journal_entries_total{kind}.
  uint64_t Record(SlowEntry entry);

  /// Newest-first copy of the retained entries; `limit` 0 means all.
  std::vector<SlowEntry> Snapshot(size_t limit = 0) const;

  std::optional<SlowEntry> Find(uint64_t id) const;

  void Clear();

 private:
  mutable std::mutex mu_;
  SlowJournalOptions options_;
  std::deque<SlowEntry> entries_;  // Oldest first.
  uint64_t next_id_ = 1;
};

}  // namespace raptor::obs
